package cpelide

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/workloads"
)

// mustWorkload builds one of the paper's benchmarks at the given scale.
func mustWorkload(t *testing.T, name string, scale float64) *Workload {
	t.Helper()
	w, err := workloads.Build(name, NewAllocator(4096), workloads.Params{Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// crosscheckProtocols is the differential campaign's protocol set (the
// ISSUE-4 quartet; RemoteBank is covered by the fuzz matrix instead).
var crosscheckProtocols = []Protocol{
	ProtocolBaseline, ProtocolCPElide, ProtocolHMG, ProtocolHMGWriteBack,
}

// runCase runs one generated case under one protocol with an oracle
// attached, asserting the run-level invariants that hold for every correct
// protocol; it returns the report and the bound oracle.
func runCase(t *testing.T, c *gen.Case, p Protocol, opt Options) (*Report, *Oracle) {
	t.Helper()
	opt.Protocol = p
	opt.Placement = c.Placement
	opt.Oracle = NewOracle(p)
	rep, err := RunStreams(DefaultConfig(4), c.Specs, opt)
	if err != nil {
		t.Fatalf("%s / %v: %v", c.Name, p, err)
	}
	if err := rep.CheckConsistency(); err != nil {
		t.Fatalf("%s / %v: runtime checker: %v", c.Name, p, err)
	}
	return rep, opt.Oracle
}

// TestCrosscheckCampaign is the in-tree slice of the differential campaign:
// random DAGs under all four protocols, asserting (a) the oracle finds no
// violation, (b) the final memory images are byte-identical across the
// protocols, and (c) CPElide's boundary sync operations are a subset of
// Baseline's. CI runs the full 500-DAG campaign through cmd/crosscheck.
func TestCrosscheckCampaign(t *testing.T) {
	n := uint64(60)
	if testing.Short() {
		n = 15
	}
	for seed := uint64(0); seed < n; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c := gen.Generate(seed, gen.Config{Chiplets: 4})
			var baseRep *Report
			var baseOracle *Oracle
			for _, p := range crosscheckProtocols {
				rep, o := runCase(t, c, p, Options{})
				if err := o.Err(); err != nil {
					t.Fatalf("%s / %v: %v", c.Name, p, err)
				}
				switch p {
				case ProtocolBaseline:
					baseRep, baseOracle = rep, o
				default:
					if rep.ImageHash != baseRep.ImageHash {
						t.Fatalf("%s: memory image diverged: %v %#x vs Baseline %#x",
							c.Name, p, rep.ImageHash, baseRep.ImageHash)
					}
				}
				if p == ProtocolCPElide {
					if broken := o.SubsetOf(baseOracle); len(broken) != 0 {
						t.Fatalf("%s: CPElide issued ops Baseline did not: %+v", c.Name, broken)
					}
				}
			}
		})
	}
}

// TestCrosscheckEvictionStress forces the Chiplet Coherence Table through
// constant capacity evictions (3 rows, shrunken caches) — the regression
// campaign for the eviction path: a victim whose copies outlive its row
// would surface here as an oracle violation or a stale read.
func TestCrosscheckEvictionStress(t *testing.T) {
	n := uint64(40)
	if testing.Short() {
		n = 10
	}
	for seed := uint64(1000); seed < 1000+n; seed++ {
		c := gen.Generate(seed, gen.Config{Chiplets: 4, MaxStructs: 7})
		opt := Options{
			Protocol:            ProtocolCPElide,
			Placement:           c.Placement,
			CPElideTableEntries: 3,
			Oracle:              NewOracle(ProtocolCPElide),
		}
		cfg := DefaultConfig(4)
		cfg.L2SizeBytes = 256 << 10
		cfg.L3SizeBytes = 512 << 10
		rep, err := RunStreams(cfg, c.Specs, opt)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if err := rep.CheckConsistency(); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if err := opt.Oracle.Err(); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
	}
}

// TestMutationTeeth proves the oracle has teeth: each deliberate CP
// weakening must be caught. Ground truth for "the mutation actually broke
// this case" is the runtime checker (stale reads) or a memory-image
// divergence against the unmutated run; the oracle must flag every such
// case (zero false negatives) and must fire on at least a third of the
// campaign per mutation kind.
func TestMutationTeeth(t *testing.T) {
	n := uint64(40)
	if testing.Short() {
		n = 10
	}
	for _, mut := range []Mutation{MutateDropAcquire, MutateDropRelease, MutateWrongChiplet} {
		mut := mut
		t.Run(mut.String(), func(t *testing.T) {
			detected, broken := 0, 0
			for seed := uint64(0); seed < n; seed++ {
				c := gen.Generate(seed, gen.Config{Chiplets: 4})
				clean, err := RunStreams(DefaultConfig(4), c.Specs,
					Options{Protocol: ProtocolCPElide, Placement: c.Placement})
				if err != nil {
					t.Fatal(err)
				}
				o := NewOracle(ProtocolCPElide)
				rep, err := RunStreams(DefaultConfig(4), c.Specs, Options{
					Protocol:  ProtocolCPElide,
					Placement: c.Placement,
					Oracle:    o,
					Mutate:    mut,
				})
				if err != nil {
					t.Fatal(err)
				}
				hurt := rep.StaleReads > 0 || rep.ImageHash != clean.ImageHash
				if hurt {
					broken++
					if o.Violations() == 0 {
						t.Fatalf("%s: false negative: mutation %s broke the run "+
							"(stale=%d, image %#x vs %#x) but the oracle saw nothing",
							c.Name, mut, rep.StaleReads, rep.ImageHash, clean.ImageHash)
					}
				}
				if o.Violations() > 0 {
					detected++
				}
			}
			if detected == 0 {
				t.Fatalf("mutation %s never detected across %d DAGs", mut, n)
			}
			if detected < int(n)/3 {
				t.Errorf("mutation %s detected in only %d/%d DAGs", mut, detected, n)
			}
			t.Logf("%s: oracle fired on %d/%d DAGs (%d provably broken)", mut, detected, n, broken)
		})
	}
}

// TestOracleRejectsNoRangeInfo: whole-structure declarations make the last
// writer ambiguous, so attaching an oracle to such a run must error rather
// than risk false verdicts.
func TestOracleRejectsNoRangeInfo(t *testing.T) {
	c := gen.Generate(7, gen.Config{Chiplets: 4})
	_, err := RunStreams(DefaultConfig(4), c.Specs, Options{
		Protocol:    ProtocolCPElide,
		NoRangeInfo: true,
		Oracle:      NewOracle(ProtocolCPElide),
	})
	if err == nil {
		t.Fatal("oracle accepted a NoRangeInfo run")
	}
}

// TestOracleOnPaperWorkloads attaches the oracle to a few of the paper's
// real benchmarks, under both annotation styles the oracle supports.
func TestOracleOnPaperWorkloads(t *testing.T) {
	for _, name := range []string{"hotspot", "color", "pennant"} {
		for _, infer := range []bool{false, true} {
			w := mustWorkload(t, name, 0.25)
			o := NewOracle(ProtocolCPElide)
			rep, err := Run(DefaultConfig(4), w, Options{
				Protocol:         ProtocolCPElide,
				InferAnnotations: infer,
				Oracle:           o,
			})
			if err != nil {
				t.Fatalf("%s infer=%v: %v", name, infer, err)
			}
			if err := rep.CheckConsistency(); err != nil {
				t.Fatalf("%s infer=%v: %v", name, infer, err)
			}
			if err := o.Err(); err != nil {
				t.Fatalf("%s infer=%v: %v", name, infer, err)
			}
			if rep.Oracle == nil || rep.Oracle.Kernels == 0 {
				t.Fatalf("%s infer=%v: report oracle summary missing", name, infer)
			}
		}
	}
}
