// Package cpelide is a simulation library reproducing "CPElide: Efficient
// Multi-Chiplet GPU Implicit Synchronization" (MICRO 2024).
//
// It models a multi-chiplet GPU (per-CU L1s, per-chiplet L2s, a banked
// shared L3 as the inter-chiplet ordering point, first-touch NUMA page
// placement, and a bandwidth-limited crossbar) and three coherence
// configurations:
//
//   - Baseline: the VIPER-chiplet protocol with conservative GPU-wide L2
//     flush+invalidate at every kernel boundary.
//   - CPElide: the paper's contribution — a Chiplet Coherence Table in the
//     global command processor that tracks data structures per chiplet and
//     performs lazy, chiplet-targeted acquires and releases only when a
//     cross-chiplet dependence requires them.
//   - HMG: the state-of-the-art hierarchical coherence protocol (write
//     through L2s with a per-chiplet sharer directory), plus its write-back
//     ablation variant.
//
// Every run is functionally checked: all caches carry data versions and any
// read observing a version older than the newest write is reported as a
// stale read, so eliding a required synchronization is detected, not just
// mistimed.
//
// The top-level entry point is Run (one workload, one configuration) or
// RunStreams (multi-stream). The workloads package provides descriptors for
// the paper's 24 benchmarks, and the experiments package regenerates each
// figure and table.
package cpelide

import (
	"context"
	"fmt"
	"time"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cp"
	"repro/internal/energy"
	"repro/internal/event"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/hip"
	"repro/internal/hmg"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/oracle"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Re-exported types so library users can build machines and workloads
// without reaching into internal packages.
type (
	// Config is the simulated GPU description (Table I parameters).
	Config = config.GPU
	// Workload is a benchmark: allocations plus a dynamic kernel sequence.
	Workload = kernels.Workload
	// Kernel is a static kernel description.
	Kernel = kernels.Kernel
	// Arg binds a data structure into a kernel.
	Arg = kernels.Arg
	// DataStructure is one global-memory allocation.
	DataStructure = kernels.DataStructure
	// Allocator hands out page-aligned data-structure addresses.
	Allocator = kernels.Allocator
	// StreamSpec binds a workload's kernel sequence to a chiplet set.
	StreamSpec = cp.StreamSpec
	// Sheet is a set of named simulation counters.
	Sheet = stats.Sheet
	// EnergyBreakdown is the Figure 9 energy decomposition.
	EnergyBreakdown = energy.Breakdown
	// TraceRecorder records a run's timeline (kernel spans, sync ops,
	// elision audits) for Chrome-trace export; see Options.Trace.
	TraceRecorder = trace.Recorder
	// Histogram is a log2-bucketed latency histogram.
	Histogram = stats.Histogram
	// FaultConfig selects a deterministic fault-injection campaign; see
	// Options.Faults.
	FaultConfig = faults.Config
	// FaultCounters tallies what a run's fault injector and CP watchdog did.
	FaultCounters = faults.Counters
	// Oracle is the golden-model consistency checker; see Options.Oracle
	// and NewOracle.
	Oracle = oracle.Oracle
	// OracleSummary is an oracle's campaign digest.
	OracleSummary = oracle.Summary
	// OracleViolation is one detected memory-model violation.
	OracleViolation = oracle.Violation
	// PhaseProfiler samples host wall-time attribution per simulator phase;
	// see Options.Profiler and NewPhaseProfiler.
	PhaseProfiler = metrics.PhaseProfiler
	// PhaseProfile is a finished wall-time attribution.
	PhaseProfile = metrics.PhaseProfile
	// PhaseSamples is one phase's share of a PhaseProfile.
	PhaseSamples = metrics.PhaseSamples
)

// NewPhaseProfiler returns a phase profiler to pass in Options.Profiler.
// intervalNS is the sampling period in nanoseconds (<= 0 selects the
// default, 500µs). Profilers are single-use: one profiler per run.
func NewPhaseProfiler(intervalNS int64) *PhaseProfiler {
	return metrics.NewPhaseProfiler(time.Duration(intervalNS))
}

// ParseFaultSpec parses a comma-separated fault specification (the
// cpelide-sim -faults syntax, e.g. "drop=0.1,parity=0.01") into a
// FaultConfig; see faults.ParseSpec for the key list.
func ParseFaultSpec(spec string) (*FaultConfig, error) { return faults.ParseSpec(spec) }

// NewTrace returns a trace recorder to pass in Options.Trace. limit > 0
// enables ring-buffer mode, retaining only the most recent limit events so
// long sweeps stay bounded; limit <= 0 retains everything.
func NewTrace(limit int) *TraceRecorder { return trace.New(limit) }

// Access modes and patterns, re-exported.
const (
	Read      = kernels.Read
	ReadWrite = kernels.ReadWrite

	Linear    = kernels.Linear
	Strided   = kernels.Strided
	Stencil   = kernels.Stencil
	Broadcast = kernels.Broadcast
	Indirect  = kernels.Indirect
)

// HIP-like runtime (the paper's extended ROCm interface), re-exported.
type (
	// Runtime is the HIP-like runtime used to author workloads with the
	// paper's hipSetAccessMode / hipSetAccessModeRange annotations.
	Runtime = hip.Runtime
	// GPUStream is an in-order launch queue, optionally chiplet-bound.
	GPUStream = hip.Stream
	// KernelConfig carries per-kernel execution parameters.
	KernelConfig = hip.KernelConfig
)

// NewRuntime returns a HIP-like runtime with the default page alignment.
func NewRuntime() *Runtime { return hip.NewRuntime(config.Default(4).PageSize) }

// Page placement policies and WG schedules, re-exported.
const (
	PlacementFirstTouch  = cp.PlacementFirstTouch
	PlacementInterleaved = cp.PlacementInterleaved
	PlacementSingle      = cp.PlacementSingle

	RoundRobinCU = kernels.RoundRobinCU
	ChunkedCU    = kernels.ChunkedCU
)

// FuseAdjacent applies software kernel fusion to a workload (the Section VI
// alternative to implicit-synchronization elision).
func FuseAdjacent(w *Workload, maxArgs, maxLDSBytes int) *Workload {
	return kernels.FuseAdjacent(w, kernels.FusionConfig{MaxArgs: maxArgs, MaxLDSBytes: maxLDSBytes})
}

// Annotation options for Runtime.SetAccessMode, re-exported from the
// HIP-like runtime.
var (
	WithHalo            = hip.WithHalo
	WithStride          = hip.WithStride
	WithGather          = hip.WithGather
	WithWorklist        = hip.WithWorklist
	WithReadModifyWrite = hip.WithReadModifyWrite
)

// DefaultConfig returns the Table I machine with n chiplets (2, 4, 6, 7 in
// the paper; 1 is accepted for the monolithic equivalent).
func DefaultConfig(nChiplets int) Config { return config.Default(nChiplets) }

// MonolithicConfig returns the infeasible monolithic GPU equivalent to an
// n-chiplet system, used by Figure 2.
func MonolithicConfig(equivalentChiplets int) Config {
	return config.Monolithic(equivalentChiplets)
}

// MGPUConfig returns a multi-GPU system of MCM-GPUs (Section VI): gpus
// packages of chipletsPerGPU chiplets each, connected by the inter-GPU
// interconnect. CPElide's global view spans all chiplets, so its elision
// applies across the whole system.
func MGPUConfig(gpus, chipletsPerGPU int) Config {
	g := config.Default(gpus * chipletsPerGPU)
	g.NumGPUs = gpus
	return g
}

// NewAllocator returns an allocator for workload data structures, starting
// at the simulator's heap base with the given page alignment.
func NewAllocator(pageSize int) *Allocator {
	return kernels.NewAllocator(HeapBase, pageSize)
}

// HeapBase is where workload allocations start.
const HeapBase mem.Addr = 0x1000_0000

// Protocol selects the coherence configuration of a run.
type Protocol int

const (
	// ProtocolBaseline is the conservative VIPER-chiplet baseline.
	ProtocolBaseline Protocol = iota
	// ProtocolCPElide is the paper's proposal.
	ProtocolCPElide
	// ProtocolHMG is the state-of-the-art comparator (write-through L2s).
	ProtocolHMG
	// ProtocolHMGWriteBack is HMG's write-back ablation variant.
	ProtocolHMGWriteBack
	// ProtocolRemoteBank is the paper's design alternative (a): the L2s
	// form a NUCA-style shared cache whose remote banks serve every remote
	// access — no boundary synchronization, no requester-side caching.
	ProtocolRemoteBank
)

func (p Protocol) String() string {
	switch p {
	case ProtocolBaseline:
		return "Baseline"
	case ProtocolCPElide:
		return "CPElide"
	case ProtocolHMG:
		return "HMG"
	case ProtocolHMGWriteBack:
		return "HMG-WB"
	case ProtocolRemoteBank:
		return "RemoteBank"
	}
	return fmt.Sprintf("Protocol(%d)", int(p))
}

// Options tunes a run.
type Options struct {
	Protocol Protocol

	// NoRangeInfo degrades annotations from hipSetAccessModeRange to
	// hipSetAccessMode: access modes are still known but each assigned
	// chiplet conservatively declares whole-structure ranges.
	NoRangeInfo bool

	// CPElideRangeOps enables the fine-grained hardware range-flush
	// extension (Section VI).
	CPElideRangeOps bool
	// CPElideTableEntries overrides the Chiplet Coherence Table capacity.
	CPElideTableEntries int

	// HMGDirLinesPerEntry overrides the directory granularity (default 4
	// lines per entry; 1 for the precision ablation).
	HMGDirLinesPerEntry int
	// HMGDirEntries overrides the per-chiplet directory capacity.
	HMGDirEntries int

	// DriverManaged moves CPElide's table to the GPU driver (the Section
	// VI alternative): identical decisions, but every kernel launch pays a
	// host round trip for the CP to report scheduling information, which
	// cannot be hidden by the on-device launch pipeline.
	DriverManaged bool

	// Placement selects the NUMA page placement policy (default first
	// touch, as in the paper).
	Placement cp.PagePlacement

	// InferAnnotations derives declared ranges from a profiling pass
	// (record-and-replay automation) instead of static annotations.
	InferAnnotations bool

	// Scheduler selects the local CPs' WG-to-CU assignment.
	Scheduler kernels.CUSchedule

	// SyncLatencySets serializes N sets of every kernel boundary's
	// acquire/release latency instead of one — the Section VI methodology
	// for conservatively mimicking 8-chiplet (N=2) and 16-chiplet (N=4)
	// synchronization overhead on a 4-chiplet simulation. Cache contents
	// are untouched; only the exposed latency scales.
	SyncLatencySets int

	// Trace, when non-nil, records the run's timeline into the recorder:
	// kernel spans per stream, flush/invalidate operations per chiplet with
	// line counts, per-launch synchronization exposure, inter-chiplet
	// transfer volumes, and (under CPElide) the elision audit log. Tracing
	// is observational only — it changes no simulation counter.
	Trace *trace.Recorder

	// PerKernelStats populates Report.PerKernel with a counter-sheet delta
	// per dynamic kernel (plus a final end-of-program entry).
	PerKernelStats bool

	// Faults, when non-nil and enabled, injects deterministic seed-driven
	// faults (dropped/delayed acks, link-degradation windows, coherence-table
	// parity errors) and arms the CP watchdog's retry/degradation machinery.
	// A nil or disabled config runs byte-identically to a build without the
	// fault subsystem.
	Faults *FaultConfig

	// Oracle, when non-nil, attaches the golden-model consistency checker
	// (build one with NewOracle): it observes every boundary's executed
	// synchronization plan and independently verifies, from the memory-model
	// rules alone, that no load could observe a stale value. Observational
	// only — no simulation counter changes. Oracles are single-use; query
	// Oracle.Err / Oracle.Summary after the run. Incompatible with
	// NoRangeInfo (whole-structure write declarations make the last writer
	// ambiguous); such runs return an error.
	Oracle *Oracle

	// Mutate deliberately weakens the command processor's synchronization
	// plans before execution — mutation testing for the oracle and the
	// runtime staleness checker. MutateNone for real runs.
	Mutate Mutation

	// Profiler, when non-nil, samples host wall-time attribution per
	// simulator phase (calendar, CP, CCT, sync, kernel, NoC) during the run;
	// the result lands in Report.Profile. Profiling is observational only —
	// phase marks are atomic stores the simulation never reads back — and
	// wall-clock values are excluded from every determinism comparison.
	// Profilers are single-use: pass a fresh NewPhaseProfiler per run.
	Profiler *PhaseProfiler

	// Calendar selects the event engine's calendar implementation: the
	// default timer wheel or the reference binary heap (kept for
	// differential testing). The two deliver events in identical
	// (time, schedule-order) sequence, so every report is byte-identical
	// regardless of the choice.
	Calendar event.CalendarKind
}

// CalendarKind selects the event engine's calendar implementation.
type CalendarKind = event.CalendarKind

// Calendar kinds for Options.Calendar, re-exported from the event package.
const (
	CalendarWheel = event.CalendarWheel
	CalendarHeap  = event.CalendarHeap
)

// Mutation selects a deliberate CP weakening for mutation testing.
type Mutation int

const (
	// MutateNone runs the protocol's plans unmodified.
	MutateNone Mutation = iota
	// MutateDropAcquire removes every acquire (invalidate) operation.
	MutateDropAcquire
	// MutateDropRelease removes every release (flush) operation.
	MutateDropRelease
	// MutateWrongChiplet retargets every operation to the next chiplet,
	// modeling a CP that syncs, but syncs the wrong caches.
	MutateWrongChiplet
)

func (m Mutation) String() string {
	switch m {
	case MutateNone:
		return "none"
	case MutateDropAcquire:
		return "drop-acquire"
	case MutateDropRelease:
		return "drop-release"
	case MutateWrongChiplet:
		return "wrong-chiplet"
	}
	return fmt.Sprintf("Mutation(%d)", int(m))
}

// ParseMutation parses the cmd/crosscheck -mutate syntax.
func ParseMutation(s string) (Mutation, error) {
	switch s {
	case "", "none":
		return MutateNone, nil
	case "drop-acquire":
		return MutateDropAcquire, nil
	case "drop-release":
		return MutateDropRelease, nil
	case "wrong-chiplet":
		return MutateWrongChiplet, nil
	}
	return MutateNone, fmt.Errorf("cpelide: unknown mutation %q (want drop-acquire, drop-release or wrong-chiplet)", s)
}

// NewOracle returns a consistency oracle for checking a run under the given
// protocol: Baseline and CPElide get the boundary-synchronization rules;
// HMG, HMG-WB and RemoteBank keep their L2s hardware-coherent, so their
// oracle only journals the sync footprint for cross-protocol comparison.
func NewOracle(p Protocol) *Oracle {
	switch p {
	case ProtocolBaseline, ProtocolCPElide:
		return oracle.New(oracle.BoundarySync)
	default:
		return oracle.New(oracle.HardwareCoherent)
	}
}

// Report is the outcome of one run.
type Report struct {
	Workload string
	Protocol string
	Chiplets int

	// Cycles is total execution time in GPU core cycles.
	Cycles uint64
	// Sheet holds every raw counter.
	Sheet *Sheet
	// Energy is the memory-subsystem energy breakdown.
	Energy EnergyBreakdown
	// StaleReads counts functional coherence violations (must be zero).
	StaleReads uint64
	// Kernels is the number of dynamic kernels executed.
	Kernels uint64
	// Accesses is the number of simulated line-granularity accesses.
	Accesses uint64

	// PerKernel is the per-dynamic-kernel breakdown (Options.PerKernelStats
	// only): one entry per launch in execution order, plus a final
	// "(finalize)" entry holding end-of-program activity. Merging every
	// entry's Sheet reconstructs the run-total Sheet exactly (sums for
	// additive counters, maxima for peak counters).
	PerKernel []KernelStats

	// KernelDur and SyncStall are latency histograms over all dynamic
	// kernels: total kernel duration and exposed synchronization stall,
	// both in core cycles.
	KernelDur *Histogram
	SyncStall *Histogram

	// Faults tallies the injected faults and watchdog reactions when
	// Options.Faults was enabled (nil otherwise).
	Faults *FaultCounters `json:",omitempty"`

	// ImageHash digests the final memory image (per-line latest and
	// committed versions). Identical workloads must produce identical
	// hashes under every correct protocol; the crosscheck campaign compares
	// them across Baseline/CPElide/HMG/HMG-WB.
	ImageHash uint64

	// Oracle is the consistency oracle's digest when Options.Oracle was
	// attached (nil otherwise).
	Oracle *OracleSummary `json:",omitempty"`

	// Profile is the host wall-time phase attribution when Options.Profiler
	// was attached (nil otherwise). Wall-clock data: two otherwise identical
	// runs differ here, which is why determinism comparisons strip it.
	Profile *PhaseProfile `json:",omitempty"`
}

// CheckConsistency is the runtime consistency checker's verdict: it returns
// an error if the run observed any stale read — a load that saw a version
// older than the newest committed write, meaning a required synchronization
// was elided or lost. It must return nil under every fault schedule; a
// failure is a correctness bug in the protocol or the degradation machinery,
// never an acceptable outcome of injected faults.
func (r *Report) CheckConsistency() error {
	if r.StaleReads != 0 {
		return fmt.Errorf("cpelide: consistency violated: %d stale read(s) observed (workload %s, protocol %s)",
			r.StaleReads, r.Workload, r.Protocol)
	}
	return nil
}

// KernelStats is one dynamic kernel's slice of the run.
type KernelStats struct {
	// Kernel is the static kernel name ("(finalize)" for the trailing
	// end-of-program entry).
	Kernel string `json:"kernel"`
	// Inst is the dynamic kernel index within its stream (-1 for finalize).
	Inst   int `json:"inst"`
	Stream int `json:"stream"`
	// Start and End bound the kernel's span in core cycles.
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
	// Cycles is the kernel's duration including exposed synchronization;
	// SyncCycles is the exposed synchronization portion.
	Cycles     uint64 `json:"cycles"`
	SyncCycles uint64 `json:"sync_cycles"`
	// Sheet is the counter delta attributed to this kernel.
	Sheet *Sheet `json:"sheet"`
}

// Flits returns the run's interconnect traffic by Figure 10's classes.
func (r *Report) Flits() (l1l2, l2l3, remote uint64) {
	return r.Sheet.Get(stats.FlitsL1L2), r.Sheet.Get(stats.FlitsL2L3), r.Sheet.Get(stats.FlitsRemote)
}

// TotalFlits returns the run's total interconnect traffic.
func (r *Report) TotalFlits() uint64 {
	a, b, c := r.Flits()
	return a + b + c
}

// EnergyRatio returns r's total memory-subsystem energy relative to base's
// (1.0 = equal; lower is better).
func EnergyRatio(r, base *Report) float64 { return energy.Ratio(r.Energy, base.Energy) }

// Speedup returns base.Cycles / r.Cycles.
func (r *Report) Speedup(base *Report) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(r.Cycles)
}

// Run executes workload w on cfg under the selected protocol. The workload
// runs as a single stream across all chiplets, like the paper's
// single-stream evaluation.
func Run(cfg Config, w *Workload, opt Options) (*Report, error) {
	return RunContext(context.Background(), cfg, w, opt)
}

// RunContext is Run with cancellation: the command processor polls ctx at
// every kernel boundary and abandons the simulation once it is canceled
// (the in-flight kernel completes first — the simulated GPU has no
// preemption). A canceled run returns a nil Report and an error wrapping
// ctx's error.
func RunContext(ctx context.Context, cfg Config, w *Workload, opt Options) (*Report, error) {
	return RunStreamsContext(ctx, cfg, []StreamSpec{{Workload: w}}, opt)
}

// RunStreams executes multiple concurrent streams (Section VI's
// multi-stream study). Each stream's workload must use disjoint
// allocations.
func RunStreams(cfg Config, specs []StreamSpec, opt Options) (*Report, error) {
	return RunStreamsContext(context.Background(), cfg, specs, opt)
}

// RunStreamsContext is RunStreams with kernel-boundary cancellation; see
// RunContext.
func RunStreamsContext(ctx context.Context, cfg Config, specs []StreamSpec, opt Options) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("cpelide: no streams")
	}
	bounds := mem.Range{Lo: HeapBase, Hi: HeapBase}
	names := ""
	var seed uint64
	for i, s := range specs {
		if s.Workload == nil {
			return nil, fmt.Errorf("cpelide: stream %d has no workload", i)
		}
		bounds = bounds.Union(s.Workload.Bounds())
		if i > 0 {
			names += "+"
		}
		names += s.Workload.Name
		seed ^= s.Workload.Seed
	}

	sheet := stats.New()
	m, err := machine.New(cfg, bounds, sheet)
	if err != nil {
		return nil, err
	}
	m.Trace = opt.Trace
	var injector *faults.Injector
	if opt.Faults.Enabled() {
		injector = faults.NewInjector(*opt.Faults, sheet, opt.Trace)
		m.SetFaults(injector)
	}
	var proto coherence.Protocol
	switch opt.Protocol {
	case ProtocolBaseline:
		proto = coherence.NewBaseline(m)
	case ProtocolCPElide:
		p, err := core.NewWithOptions(m, core.Options{
			RangeOps:     opt.CPElideRangeOps,
			TableEntries: opt.CPElideTableEntries,
		})
		if err != nil {
			return nil, err
		}
		proto = p
	case ProtocolHMG, ProtocolHMGWriteBack:
		p, err := hmg.New(m, hmg.Options{
			WriteBack:     opt.Protocol == ProtocolHMGWriteBack,
			DirEntries:    opt.HMGDirEntries,
			LinesPerEntry: opt.HMGDirLinesPerEntry,
		})
		if err != nil {
			return nil, err
		}
		proto = p
	case ProtocolRemoteBank:
		proto = coherence.NewRemoteBank(m)
	default:
		return nil, fmt.Errorf("cpelide: unknown protocol %v", opt.Protocol)
	}
	if opt.DriverManaged {
		proto = &driverManagedProtocol{Protocol: proto, cycles: cfg.DriverRoundTripCycles()}
	}
	if opt.SyncLatencySets > 1 {
		proto = &scaledSyncProtocol{Protocol: proto, sets: opt.SyncLatencySets}
	}
	if opt.Mutate != MutateNone {
		// Outermost wrapper: observers (and the machine) see the weakened
		// plan, exactly as a buggy CP would have issued it.
		proto = &mutatedProtocol{Protocol: proto, kind: opt.Mutate, chiplets: cfg.NumChiplets}
	}

	x := gpu.New(m, proto, seed)
	x.Sched = opt.Scheduler
	if opt.Profiler != nil {
		// Guarded assignment: a typed-nil *PhaseProfiler must not become a
		// non-nil event.Profiler interface in the executor.
		x.Prof = opt.Profiler
		opt.Profiler.Start()
		defer opt.Profiler.Stop()
	}
	if opt.Oracle != nil {
		if opt.NoRangeInfo {
			return nil, fmt.Errorf("cpelide: the oracle requires range-precise annotations (NoRangeInfo declares whole-structure writes on every chiplet, making the last writer ambiguous)")
		}
		if err := opt.Oracle.Bind(cfg.NumChiplets, cfg.LineSize, m.Pages.HomeIfPlaced, opt.Trace); err != nil {
			return nil, err
		}
		x.Obs = opt.Oracle
	}
	runner, err := cp.NewRunner(x, specs, cp.RunnerConfig{
		RangeInfo:        !opt.NoRangeInfo,
		Placement:        opt.Placement,
		InferAnnotations: opt.InferAnnotations,
		PerKernel:        opt.PerKernelStats,
		Ctx:              ctx,
		Calendar:         opt.Calendar,
	})
	if err != nil {
		return nil, err
	}
	cycles, err := runner.Run()
	if err != nil {
		return nil, fmt.Errorf("cpelide: simulation failed: %w", err)
	}
	if runner.Canceled() {
		return nil, fmt.Errorf("cpelide: run canceled after %d dynamic kernels: %w",
			len(runner.Records), ctx.Err())
	}

	rep := &Report{
		Workload:   names,
		Protocol:   proto.Name(),
		Chiplets:   cfg.NumChiplets,
		Cycles:     cycles,
		Sheet:      sheet,
		Energy:     energy.FromSheet(sheet),
		StaleReads: m.Mem.StaleReads(),
		Kernels:    sheet.Get(stats.KernelsLaunched),
		KernelDur:  stats.NewHistogram("kernel duration (cycles)"),
		SyncStall:  stats.NewHistogram("sync stall (cycles)"),
	}
	rep.ImageHash = m.Mem.ImageHash()
	if opt.Oracle != nil {
		rep.Oracle = opt.Oracle.Summary()
	}
	if opt.Profiler != nil {
		opt.Profiler.Stop() // idempotent with the deferred Stop
		rep.Profile = opt.Profiler.Profile()
	}
	if injector != nil {
		c := injector.Counters()
		rep.Faults = &c
	}
	for _, rec := range runner.Records {
		rep.Accesses += rec.Result.Accesses
		rep.KernelDur.Observe(rec.Result.Cycles)
		rep.SyncStall.Observe(rec.Result.SyncCycles)
	}
	if opt.PerKernelStats {
		rep.PerKernel = make([]KernelStats, 0, len(runner.Records)+1)
		for _, rec := range runner.Records {
			rep.PerKernel = append(rep.PerKernel, KernelStats{
				Kernel:     rec.Launch.Kernel.Name,
				Inst:       rec.Launch.Inst,
				Stream:     rec.Launch.Stream,
				Start:      uint64(rec.Start),
				End:        uint64(rec.End),
				Cycles:     rec.Result.Cycles,
				SyncCycles: rec.Result.SyncCycles,
				Sheet:      rec.Delta,
			})
		}
		rep.PerKernel = append(rep.PerKernel, KernelStats{
			Kernel: "(finalize)",
			Inst:   -1,
			Start:  uint64(cycles),
			End:    uint64(cycles),
			Sheet:  runner.FinalDelta,
		})
	}
	return rep, nil
}

// scaledSyncProtocol serializes N copies of every launch plan's
// synchronization latency: the paper's conservative methodology for
// projecting 8- and 16-chiplet overheads from a smaller simulation
// (Section VI). The operations themselves run once; only their exposed
// latency repeats, which overestimates larger systems (real ones would
// overlap the extra chiplets' operations).
type scaledSyncProtocol struct {
	coherence.Protocol
	sets int
}

func (p *scaledSyncProtocol) PreLaunch(l *coherence.Launch) coherence.SyncPlan {
	plan := p.Protocol.PreLaunch(l)
	plan.LatencyFactor = p.sets
	return plan
}

// DegradeChiplet forwards watchdog degradation through the wrapper so a
// wrapped stateful protocol still abandons its beliefs.
func (p *scaledSyncProtocol) DegradeChiplet(c int) { degradeChiplet(p.Protocol, c) }

// ConservativeReset forwards mid-plan interruption resets likewise.
func (p *scaledSyncProtocol) ConservativeReset() { conservativeReset(p.Protocol) }

// driverManagedProtocol charges the host round trip the driver-managed
// alternative pays on every launch: the CP must ship scheduling decisions
// to the driver and wait for its synchronization verdict (Section VI;
// prior work shows the added latency hurts, which is why CPElide lives in
// the global CP).
type driverManagedProtocol struct {
	coherence.Protocol
	cycles int
}

func (p *driverManagedProtocol) PreLaunch(l *coherence.Launch) coherence.SyncPlan {
	plan := p.Protocol.PreLaunch(l)
	plan.HostRoundTripCycles += p.cycles
	return plan
}

// DegradeChiplet forwards watchdog degradation through the wrapper so a
// wrapped stateful protocol still abandons its beliefs.
func (p *driverManagedProtocol) DegradeChiplet(c int) { degradeChiplet(p.Protocol, c) }

// ConservativeReset forwards mid-plan interruption resets likewise.
func (p *driverManagedProtocol) ConservativeReset() { conservativeReset(p.Protocol) }

// mutatedProtocol weakens every synchronization plan the wrapped protocol
// produces — mutation testing for the consistency machinery. It wraps
// outermost so the executor, the machine, and any observer all see the
// weakened plan.
type mutatedProtocol struct {
	coherence.Protocol
	kind     Mutation
	chiplets int
}

func (p *mutatedProtocol) PreLaunch(l *coherence.Launch) coherence.SyncPlan {
	plan := p.Protocol.PreLaunch(l)
	plan.Ops = p.mutateOps(plan.Ops)
	return plan
}

func (p *mutatedProtocol) Finalize() coherence.SyncPlan {
	plan := p.Protocol.Finalize()
	plan.Ops = p.mutateOps(plan.Ops)
	return plan
}

func (p *mutatedProtocol) mutateOps(ops []coherence.SyncOp) []coherence.SyncOp {
	out := ops[:0]
	for _, op := range ops {
		switch p.kind {
		case MutateDropAcquire:
			if op.Kind == coherence.Acquire {
				continue
			}
		case MutateDropRelease:
			if op.Kind == coherence.Release {
				continue
			}
		case MutateWrongChiplet:
			op.Chiplet = (op.Chiplet + 1) % p.chiplets
		case MutateNone:
			// Pass-through; the op is kept as issued.
		}
		out = append(out, op)
	}
	return out
}

// DegradeChiplet forwards watchdog degradation through the wrapper so a
// wrapped stateful protocol still abandons its beliefs.
func (p *mutatedProtocol) DegradeChiplet(c int) { degradeChiplet(p.Protocol, c) }

// ConservativeReset forwards mid-plan interruption resets likewise.
func (p *mutatedProtocol) ConservativeReset() { conservativeReset(p.Protocol) }

func degradeChiplet(p coherence.Protocol, c int) {
	if d, ok := p.(coherence.Degradable); ok {
		d.DegradeChiplet(c)
	}
}

func conservativeReset(p coherence.Protocol) {
	if d, ok := p.(coherence.Degradable); ok {
		d.ConservativeReset()
	}
}
