// Multistream: Section VI's concurrent-kernel study — two independent
// streams, each bound to half the chiplets with hipSetDevice, running
// BabelStream-style triads side by side. CPElide tracks each stream's data
// placement and elides the synchronization that the baseline performs
// GPU-wide, across both streams' chiplets, on every kernel boundary.
//
//	go run ./examples/multistream
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	rt := cpelide.NewRuntime()

	buildStream := func(tag string, chiplets ...int) {
		const n = 256 * 1024
		a := rt.Malloc("a_"+tag, n, 8)
		b := rt.Malloc("b_"+tag, n, 8)
		c := rt.Malloc("c_"+tag, n, 8)

		triad := rt.Kernel("triad_"+tag, 240, cpelide.KernelConfig{ComputePerWG: 180})
		rt.SetAccessMode(triad, b, cpelide.Read, cpelide.Linear)
		rt.SetAccessMode(triad, c, cpelide.Read, cpelide.Linear)
		rt.SetAccessMode(triad, a, cpelide.ReadWrite, cpelide.Linear)

		add := rt.Kernel("add_"+tag, 240, cpelide.KernelConfig{ComputePerWG: 180})
		rt.SetAccessMode(add, a, cpelide.Read, cpelide.Linear)
		rt.SetAccessMode(add, b, cpelide.Read, cpelide.Linear)
		rt.SetAccessMode(add, c, cpelide.ReadWrite, cpelide.Linear)

		s := rt.Stream()
		rt.SetDevice(s, chiplets...) // bind stream to its chiplets
		for i := 0; i < 12; i++ {
			rt.LaunchKernelGGL(s, triad)
			rt.LaunchKernelGGL(s, add)
		}
	}
	buildStream("s0", 0, 1)
	buildStream("s1", 2, 3)

	specs, err := rt.Streams()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("two concurrent streams on chiplets {0,1} and {2,3}:")
	cfg := cpelide.DefaultConfig(4)
	var base *cpelide.Report
	for _, p := range []cpelide.Protocol{
		cpelide.ProtocolBaseline, cpelide.ProtocolCPElide, cpelide.ProtocolHMG,
	} {
		rep, err := cpelide.RunStreams(cfg, specs, cpelide.Options{Protocol: p})
		if err != nil {
			log.Fatal(err)
		}
		if base == nil {
			base = rep
		}
		fmt.Printf("  %-8s %9d cycles  speedup %.2fx  kernels %d\n",
			rep.Protocol, rep.Cycles, rep.Speedup(base), rep.Kernels)
	}
}
