// Quickstart: the paper's Listing 1 — an iterated Square kernel with
// hipSetAccessMode annotations — run on a 4-chiplet GPU under all three
// coherence configurations.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/stats"
)

func main() {
	// Square Kernel with Array A (R) as input and Array C (R/W) as output
	// (Listing 1 of the paper).
	rt := cpelide.NewRuntime()
	const n = 512 * 1024
	aBuf := rt.Malloc("A_d", n, 4)
	cBuf := rt.Malloc("C_d", n, 4)

	square := rt.Kernel("square", 480, cpelide.KernelConfig{ComputePerWG: 130})
	rt.SetAccessMode(square, cBuf, cpelide.ReadWrite, cpelide.Linear) // hipSetAccessMode(square, C_d, 'R/W')
	rt.SetAccessMode(square, aBuf, cpelide.Read, cpelide.Linear)      // hipSetAccessMode(square, A_d, 'R')

	initK := rt.Kernel("init", 480, cpelide.KernelConfig{ComputePerWG: 100})
	rt.SetAccessMode(initK, aBuf, cpelide.ReadWrite, cpelide.Linear)

	s := rt.Stream()
	rt.LaunchKernelGGL(s, initK)
	for i := 0; i < 20; i++ {
		rt.LaunchKernelGGL(s, square) // hipLaunchKernelGGL(square, ..., C_d, A_d, N)
	}
	specs, err := rt.Streams()
	if err != nil {
		log.Fatal(err)
	}

	cfg := cpelide.DefaultConfig(4)
	fmt.Println("square kernel, 21 launches, 4-chiplet GPU:")
	var base *cpelide.Report
	for _, p := range []cpelide.Protocol{
		cpelide.ProtocolBaseline, cpelide.ProtocolCPElide, cpelide.ProtocolHMG,
	} {
		rep, err := cpelide.RunStreams(cfg, specs, cpelide.Options{Protocol: p})
		if err != nil {
			log.Fatal(err)
		}
		if base == nil {
			base = rep
		}
		fmt.Printf("  %-8s %9d cycles  speedup %.2fx  L2 hit rate %4.1f%%  flits %d\n",
			rep.Protocol, rep.Cycles, rep.Speedup(base),
			100*stats.Ratio(rep.Sheet.Get(stats.L2Hits), rep.Sheet.Get(stats.L2Accesses)),
			rep.TotalFlits())
		if p == cpelide.ProtocolCPElide {
			fmt.Printf("           acquires elided %d, releases elided %d (issued: %d, %d)\n",
				rep.Sheet.Get(stats.AcquiresElided), rep.Sheet.Get(stats.ReleasesElided),
				rep.Sheet.Get(stats.AcquiresIssued), rep.Sheet.Get(stats.ReleasesIssued))
		}
	}
}
