// Stencil: a Hotspot3D-style iterative thermal solver — the workload class
// where CPElide shines (+37% in the paper). The ping-ponged temperature
// grids and the read-only power array stay live in the chiplet L2s; CPElide
// flushes only what the stencil halo actually shares between chiplets and
// never invalidates, while the baseline flushes and invalidates every L2 at
// every kernel boundary.
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/stats"
)

func main() {
	rt := cpelide.NewRuntime()
	const cells = 1024 * 1024 // 4 MB per grid
	tIn := rt.Malloc("temp_in", cells, 4)
	tOut := rt.Malloc("temp_out", cells, 4)
	power := rt.Malloc("power", cells, 4)

	step := func(name string, in, out *cpelide.DataStructure) *cpelide.Kernel {
		k := rt.Kernel(name, 480, cpelide.KernelConfig{ComputePerWG: 260})
		// The stencil reads each WG's slab plus a 4-line halo into the
		// neighboring slabs; the halo is what forces CPElide's releases.
		rt.SetAccessModeRange(k, in, cpelide.Read, cpelide.Stencil, cpelide.WithHalo(4))
		rt.SetAccessModeRange(k, power, cpelide.Read, cpelide.Linear)
		rt.SetAccessModeRange(k, out, cpelide.ReadWrite, cpelide.Linear)
		return k
	}
	even := step("hotspot_even", tIn, tOut)
	odd := step("hotspot_odd", tOut, tIn)

	s := rt.Stream()
	for i := 0; i < 20; i++ {
		rt.LaunchKernelGGL(s, even)
		rt.LaunchKernelGGL(s, odd)
	}
	specs, err := rt.Streams()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("hotspot3D-style stencil, 40 kernels, 4-chiplet GPU:")
	cfg := cpelide.DefaultConfig(4)
	var base *cpelide.Report
	for _, p := range []cpelide.Protocol{
		cpelide.ProtocolBaseline, cpelide.ProtocolCPElide, cpelide.ProtocolHMG,
	} {
		rep, err := cpelide.RunStreams(cfg, specs, cpelide.Options{Protocol: p})
		if err != nil {
			log.Fatal(err)
		}
		if base == nil {
			base = rep
		}
		fmt.Printf("  %-8s %9d cycles  speedup %.2fx  energy %.2fx  L2 invalidations %d\n",
			rep.Protocol, rep.Cycles, rep.Speedup(base), cpelide.EnergyRatio(rep, base),
			rep.Sheet.Get(stats.L2InvOps))
	}

	// The fine-grained hardware range-flush extension (Section VI): flush
	// only the tracked halo ranges instead of whole L2s.
	rng, err := cpelide.RunStreams(cfg, specs, cpelide.Options{
		Protocol: cpelide.ProtocolCPElide, CPElideRangeOps: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-8s %9d cycles  speedup %.2fx  (range-based flushes)\n",
		"CPE-rng", rng.Cycles, rng.Speedup(base))
}
