// Graph: an SSSP-style irregular workload with indirect gathers over
// read-only topology and atomic scatter relaxations — the access patterns
// that hurt HMG (home-node caching of low-locality remote data, directory
// churn) while CPElide's elided acquires keep the topology resident.
//
//	go run ./examples/graph
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/stats"
)

func main() {
	rt := cpelide.NewRuntime()
	const nodes = 1024 * 1024
	adj := rt.Malloc("adjacency", nodes*4, 4)
	weights := rt.Malloc("weights", nodes*4, 4)
	dist := rt.Malloc("dist", nodes, 4)
	mask := rt.Malloc("mask", nodes, 4)

	relax := rt.Kernel("relax", 480, cpelide.KernelConfig{ComputePerWG: 280})
	rt.SetAccessMode(relax, mask, cpelide.Read, cpelide.Linear)
	rt.SetAccessMode(relax, adj, cpelide.Read, cpelide.Indirect,
		cpelide.WithGather(2, 0.7), cpelide.WithWorklist(96))
	rt.SetAccessMode(relax, weights, cpelide.Read, cpelide.Indirect,
		cpelide.WithGather(1, 0.7), cpelide.WithWorklist(96))
	// Distance relaxations are atomic scatter updates: declared R/W over
	// the whole array since software cannot bound them statically.
	rt.SetAccessMode(relax, dist, cpelide.ReadWrite, cpelide.Indirect,
		cpelide.WithGather(1, 0), cpelide.WithWorklist(32))

	check := rt.Kernel("convergence", 480, cpelide.KernelConfig{ComputePerWG: 200})
	rt.SetAccessMode(check, dist, cpelide.Read, cpelide.Linear)
	rt.SetAccessMode(check, mask, cpelide.ReadWrite, cpelide.Linear)

	s := rt.Stream()
	for round := 0; round < 5; round++ {
		for i := 0; i < 4; i++ {
			rt.LaunchKernelGGL(s, relax)
		}
		rt.LaunchKernelGGL(s, check)
	}
	specs, err := rt.Streams()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("SSSP-style graph workload, 25 kernels, 4-chiplet GPU:")
	cfg := cpelide.DefaultConfig(4)
	var base *cpelide.Report
	for _, p := range []cpelide.Protocol{
		cpelide.ProtocolBaseline, cpelide.ProtocolCPElide, cpelide.ProtocolHMG,
	} {
		rep, err := cpelide.RunStreams(cfg, specs, cpelide.Options{Protocol: p})
		if err != nil {
			log.Fatal(err)
		}
		if base == nil {
			base = rep
		}
		_, _, remote := rep.Flits()
		fmt.Printf("  %-8s %9d cycles  speedup %.2fx  remote flits %9d  dir evictions %d\n",
			rep.Protocol, rep.Cycles, rep.Speedup(base), remote,
			rep.Sheet.Get(stats.DirEvictions))
	}
}
