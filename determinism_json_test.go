package cpelide

import (
	"bytes"
	"encoding/json"
	"testing"
)

// Two identical runs must serialize to byte-identical JSON. Replayability
// (DESIGN §11) is claimed at artifact granularity — the whole Report,
// including per-kernel breakdowns and histograms — not just headline
// counters, and the cpelint determinism pass (DESIGN §12) exists to keep the
// simulation core free of wall-clock reads, unseeded rand, and map-order
// leaks that would break this test.
func TestReportJSONByteIdentical(t *testing.T) {
	faulted, err := ParseFaultSpec("drop=0.1,delay=0.05,link=0.01")
	if err != nil {
		t.Fatal(err)
	}
	faulted.Seed = 7
	cases := []struct {
		name string
		opt  Options
	}{
		{"baseline", Options{Protocol: ProtocolBaseline, PerKernelStats: true}},
		{"cpelide", Options{Protocol: ProtocolCPElide, PerKernelStats: true}},
		{"hmg", Options{Protocol: ProtocolHMG, PerKernelStats: true}},
		{"cpelide-faulted", Options{Protocol: ProtocolCPElide, PerKernelStats: true, Faults: faulted}},
	}
	for _, c := range cases {
		run := func() []byte {
			t.Helper()
			rep, err := Run(DefaultConfig(4), producerConsumer(4), c.opt)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			buf, err := json.Marshal(rep)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			return buf
		}
		first, second := run(), run()
		if !bytes.Equal(first, second) {
			t.Errorf("%s: two identical runs produced different JSON reports\nfirst:  %.200s\nsecond: %.200s",
				c.name, first, second)
		}
	}
}

// Attaching a phase profiler must not perturb the simulation: with the
// wall-clock Profile field stripped, profiled runs serialize byte-identically
// to each other and to an unprofiled run. This is the contract that lets
// -profile ride along on any experiment without invalidating its results.
func TestReportJSONByteIdenticalWithProfiler(t *testing.T) {
	run := func(profile bool) []byte {
		t.Helper()
		opt := Options{Protocol: ProtocolCPElide, PerKernelStats: true}
		if profile {
			opt.Profiler = NewPhaseProfiler(0)
		}
		rep, err := Run(DefaultConfig(4), producerConsumer(4), opt)
		if err != nil {
			t.Fatal(err)
		}
		if profile {
			if rep.Profile == nil {
				t.Fatal("profiled run returned no Profile")
			}
			if rep.Profile.Switches == 0 {
				t.Error("profiled run recorded no phase switches")
			}
			rep.Profile = nil // strip the wall-clock data
		} else if rep.Profile != nil {
			t.Fatal("unprofiled run returned a Profile")
		}
		buf, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	p1, p2, bare := run(true), run(true), run(false)
	if !bytes.Equal(p1, p2) {
		t.Error("two profiled runs differ after stripping Profile")
	}
	if !bytes.Equal(p1, bare) {
		t.Error("profiled run differs from unprofiled run: the profiler perturbed the simulation")
	}
}
