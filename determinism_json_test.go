package cpelide

import (
	"bytes"
	"encoding/json"
	"testing"
)

// Two identical runs must serialize to byte-identical JSON. Replayability
// (DESIGN §11) is claimed at artifact granularity — the whole Report,
// including per-kernel breakdowns and histograms — not just headline
// counters, and the cpelint determinism pass (DESIGN §12) exists to keep the
// simulation core free of wall-clock reads, unseeded rand, and map-order
// leaks that would break this test.
func TestReportJSONByteIdentical(t *testing.T) {
	faulted, err := ParseFaultSpec("drop=0.1,delay=0.05,link=0.01")
	if err != nil {
		t.Fatal(err)
	}
	faulted.Seed = 7
	cases := []struct {
		name string
		opt  Options
	}{
		{"baseline", Options{Protocol: ProtocolBaseline, PerKernelStats: true}},
		{"cpelide", Options{Protocol: ProtocolCPElide, PerKernelStats: true}},
		{"hmg", Options{Protocol: ProtocolHMG, PerKernelStats: true}},
		{"cpelide-faulted", Options{Protocol: ProtocolCPElide, PerKernelStats: true, Faults: faulted}},
	}
	for _, c := range cases {
		run := func() []byte {
			t.Helper()
			rep, err := Run(DefaultConfig(4), producerConsumer(4), c.opt)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			buf, err := json.Marshal(rep)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			return buf
		}
		first, second := run(), run()
		if !bytes.Equal(first, second) {
			t.Errorf("%s: two identical runs produced different JSON reports\nfirst:  %.200s\nsecond: %.200s",
				c.name, first, second)
		}
	}
}
