package cpelide

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomWorkload builds a random-but-well-formed workload: random structure
// sizes, access patterns, modes, grid sizes, and kernel sequences. One
// design invariant is preserved, mirroring the studied benchmarks: a
// structure is either a scatter target (only ever written atomically) or a
// normal structure (written through the write-back path) — GPU programs
// don't mix the two on the same array within a phase, and the simulator's
// data-race-freedom assumption relies on it.
func randomWorkload(seed int64) *Workload {
	rnd := rand.New(rand.NewSource(seed))
	alloc := NewAllocator(4096)

	type structInfo struct {
		ds      *DataStructure
		scatter bool
	}
	nStructs := 2 + rnd.Intn(6)
	structs := make([]structInfo, nStructs)
	for i := range structs {
		elems := (1 + rnd.Intn(64)) * 4096
		structs[i] = structInfo{
			ds:      alloc.Alloc(fmt.Sprintf("s%d", i), elems, 4),
			scatter: rnd.Intn(4) == 0,
		}
	}

	nKernels := 1 + rnd.Intn(6)
	protoKernels := make([]*Kernel, nKernels)
	for i := range protoKernels {
		k := &Kernel{
			Name:         fmt.Sprintf("k%d", i),
			WGs:          8 + rnd.Intn(200),
			ComputePerWG: uint32(rnd.Intn(3000)),
			MLPFactor:    0.5 + rnd.Float64()*2,
		}
		nArgs := 1 + rnd.Intn(4)
		usedInKernel := map[*DataStructure]bool{}
		for a := 0; a < nArgs; a++ {
			s := structs[rnd.Intn(nStructs)]
			// One argument per structure per kernel: a kernel that both
			// writes a structure and reads it across partition boundaries
			// (halo, gather) or atomically would be an intra-kernel data
			// race, which SC-for-HRF programs do not contain.
			if usedInKernel[s.ds] {
				continue
			}
			usedInKernel[s.ds] = true
			arg := Arg{DS: s.ds}
			if s.scatter {
				// Scatter targets: atomic updates or linear reads.
				if rnd.Intn(2) == 0 {
					arg.Mode = ReadWrite
					arg.Pattern = Indirect
					arg.ReadModifyWrite = true
					arg.WorkLinesPerWG = 1 + rnd.Intn(16)
				} else {
					arg.Mode = Read
					arg.Pattern = Linear
				}
			} else {
				switch rnd.Intn(5) {
				case 0:
					arg.Mode = Read
					arg.Pattern = Linear
				case 1:
					arg.Mode = Read
					arg.Pattern = Stencil
					arg.HaloLines = 1 + rnd.Intn(4)
				case 2:
					arg.Mode = Read
					arg.Pattern = Indirect
					arg.TouchesPerLine = 1 + rnd.Intn(3)
					arg.HotFraction = rnd.Float64()
					arg.WorkLinesPerWG = 1 + rnd.Intn(16)
				case 3:
					arg.Mode = Read
					arg.Pattern = Broadcast
				default:
					arg.Mode = ReadWrite
					arg.Pattern = Linear
					arg.ReadModifyWrite = rnd.Intn(2) == 0
				}
			}
			k.Args = append(k.Args, arg)
		}
		protoKernels[i] = k
	}

	w := &Workload{
		Name: fmt.Sprintf("fuzz-%d", seed),
		Seed: uint64(seed)*2654435761 + 1,
	}
	seqLen := 3 + rnd.Intn(15)
	for i := 0; i < seqLen; i++ {
		w.Sequence = append(w.Sequence, protoKernels[rnd.Intn(nKernels)])
	}
	seen := map[*DataStructure]bool{}
	for _, k := range w.Sequence {
		for _, a := range k.Args {
			if !seen[a.DS] {
				seen[a.DS] = true
				w.Structures = append(w.Structures, a.DS)
			}
		}
	}
	return w
}

// TestFuzzRandomWorkloadsCoherent drives randomized workloads through every
// protocol and several machine shapes, asserting the staleness checker
// stays silent. This is the adversarial counterpart of the per-benchmark
// integration tests: it explores argument combinations, grid shapes, and
// kernel interleavings no hand-written benchmark covers.
func TestFuzzRandomWorkloadsCoherent(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 12
	}
	shapes := []struct {
		chiplets int
		opt      Options
	}{
		{2, Options{Protocol: ProtocolCPElide}},
		{4, Options{Protocol: ProtocolCPElide}},
		{7, Options{Protocol: ProtocolCPElide}},
		{4, Options{Protocol: ProtocolCPElide, NoRangeInfo: true}},
		{4, Options{Protocol: ProtocolCPElide, CPElideRangeOps: true}},
		{4, Options{Protocol: ProtocolCPElide, CPElideTableEntries: 3}},
		{4, Options{Protocol: ProtocolBaseline}},
		{4, Options{Protocol: ProtocolHMG}},
		{3, Options{Protocol: ProtocolHMG, HMGDirEntries: 128}},
		{4, Options{Protocol: ProtocolHMGWriteBack}},
		{4, Options{Protocol: ProtocolRemoteBank}},
		{5, Options{Protocol: ProtocolRemoteBank}},
		{1, Options{Protocol: ProtocolBaseline}},
		{-2, Options{Protocol: ProtocolCPElide}}, // 2 GPUs x 3 chiplets
		{-2, Options{Protocol: ProtocolHMG}},
	}
	for seed := int64(0); seed < int64(trials); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w := randomWorkload(seed)
			shape := shapes[int(seed)%len(shapes)]
			var cfg Config
			switch {
			case shape.chiplets == 1:
				cfg = MonolithicConfig(4)
			case shape.chiplets < 0:
				cfg = MGPUConfig(-shape.chiplets, 3)
			default:
				cfg = DefaultConfig(shape.chiplets)
			}
			// Shrink caches so eviction paths get exercised too.
			if seed%3 == 0 {
				cfg.L2SizeBytes = 256 << 10
				cfg.L3SizeBytes = 512 << 10
			}
			rep, err := Run(cfg, w, shape.opt)
			if err != nil {
				t.Fatalf("%+v: %v", shape, err)
			}
			if rep.StaleReads != 0 {
				t.Fatalf("%+v: %d stale reads (workload %s)",
					shape, rep.StaleReads, w.Name)
			}
		})
	}
}

// TestFuzzCrossProtocolWorkConservation: the protocols disagree on timing
// and traffic but must all simulate the same kernel grid — same number of
// dynamic kernels for any random workload.
func TestFuzzCrossProtocolWorkConservation(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		w := randomWorkload(seed)
		var kernelsRun []uint64
		for _, p := range allProtocols {
			rep, err := Run(DefaultConfig(4), w, Options{Protocol: p})
			if err != nil {
				t.Fatal(err)
			}
			kernelsRun = append(kernelsRun, rep.Kernels)
		}
		for i := 1; i < len(kernelsRun); i++ {
			if kernelsRun[i] != kernelsRun[0] {
				t.Fatalf("seed %d: protocols ran different kernel counts: %v",
					seed, kernelsRun)
			}
		}
	}
}
