// Command sweep explores the simulator's parameter space around the paper's
// configuration: chiplet counts, L2 capacities, Chiplet Coherence Table
// sizes, interconnect bandwidths, and HMG directory shapes. Each sweep
// prints one row per point with CPElide's and HMG's speedups over the
// baseline, so design-space trends are visible beyond the paper's fixed
// Table I machine.
//
// Usage:
//
//	sweep -workload babelstream -param chiplets
//	sweep -workload sssp -param l2size -scale 0.5
//	sweep -workload babelstream -param table -protocol cpelide
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/workloads"
)

type point struct {
	label string
	cfg   cpelide.Config
	opt   cpelide.Options
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	var (
		workload = flag.String("workload", "babelstream", "benchmark to sweep")
		param    = flag.String("param", "chiplets", "chiplets | l2size | table | linkbw | dirlines")
		scale    = flag.Float64("scale", 1.0, "workload footprint scale")
		iters    = flag.Int("iters", 0, "iteration override")
	)
	flag.Parse()

	points, err := buildSweep(*param)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sweep %s over %s\n", *workload, *param)
	fmt.Printf("%-18s %14s %14s %12s %12s\n",
		"point", "base-cycles", "cpelide", "speedup", "hmg-speedup")
	wp := workloads.Params{Scale: *scale, Iters: *iters}
	for _, pt := range points {
		run := func(p cpelide.Protocol) *cpelide.Report {
			alloc := cpelide.NewAllocator(pt.cfg.PageSize)
			w, err := workloads.Build(*workload, alloc, wp)
			if err != nil {
				log.Fatal(err)
			}
			opt := pt.opt
			opt.Protocol = p
			rep, err := cpelide.Run(pt.cfg, w, opt)
			if err != nil {
				log.Fatal(err)
			}
			if rep.StaleReads != 0 {
				log.Fatalf("%s/%v: %d stale reads", pt.label, p, rep.StaleReads)
			}
			return rep
		}
		base := run(cpelide.ProtocolBaseline)
		elide := run(cpelide.ProtocolCPElide)
		hmg := run(cpelide.ProtocolHMG)
		fmt.Printf("%-18s %14d %14d %11.3fx %11.3fx\n",
			pt.label, base.Cycles, elide.Cycles, elide.Speedup(base), hmg.Speedup(base))
	}
}

func buildSweep(param string) ([]point, error) {
	var points []point
	switch param {
	case "chiplets":
		for _, n := range []int{2, 4, 6, 7} {
			points = append(points, point{
				label: fmt.Sprintf("chiplets=%d", n),
				cfg:   cpelide.DefaultConfig(n),
			})
		}
	case "l2size":
		for _, mb := range []int{2, 4, 8, 16} {
			cfg := cpelide.DefaultConfig(4)
			cfg.L2SizeBytes = mb << 20
			points = append(points, point{
				label: fmt.Sprintf("l2=%dMB", mb),
				cfg:   cfg,
			})
		}
	case "table":
		for _, e := range []int{4, 8, 16, 64, 256} {
			points = append(points, point{
				label: fmt.Sprintf("table=%d", e),
				cfg:   cpelide.DefaultConfig(4),
				opt:   cpelide.Options{CPElideTableEntries: e},
			})
		}
	case "linkbw":
		for _, gbs := range []float64{192, 384, 768, 1536} {
			cfg := cpelide.DefaultConfig(4)
			cfg.InterChipletBWGBs = gbs
			points = append(points, point{
				label: fmt.Sprintf("link=%.0fGB/s", gbs),
				cfg:   cfg,
			})
		}
	case "dirlines":
		for _, l := range []int{1, 2, 4, 8} {
			points = append(points, point{
				label: fmt.Sprintf("dirlines=%d", l),
				cfg:   cpelide.DefaultConfig(4),
				opt:   cpelide.Options{HMGDirLinesPerEntry: l},
			})
		}
	default:
		return nil, fmt.Errorf("unknown -param %q", param)
	}
	return points, nil
}
