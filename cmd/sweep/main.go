// Command sweep explores the simulator's parameter space around the paper's
// configuration: chiplet counts, L2 capacities, Chiplet Coherence Table
// sizes, interconnect bandwidths, and HMG directory shapes. Each sweep
// prints one row per point with CPElide's and HMG's speedups over the
// baseline, so design-space trends are visible beyond the paper's fixed
// Table I machine.
//
// All (point x protocol) runs are submitted to the experiment farm in one
// batch, so they execute concurrently across cores and the farm's
// content-addressed cache collapses duplicate points — e.g. the table and
// dirlines sweeps vary knobs the Baseline ignores, so every Baseline row
// is one simulation shared across all points.
//
// Usage:
//
//	sweep -workload babelstream -param chiplets
//	sweep -workload sssp -param l2size -scale 0.5
//	sweep -workload babelstream -param table -stats
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/farm"
	"repro/internal/workloads"
)

type point struct {
	label string
	cfg   cpelide.Config
	opt   cpelide.Options
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	var (
		workload  = flag.String("workload", "babelstream", "benchmark to sweep")
		param     = flag.String("param", "chiplets", "chiplets | l2size | table | linkbw | dirlines")
		scale     = flag.Float64("scale", 1.0, "workload footprint scale")
		iters     = flag.Int("iters", 0, "iteration override")
		workers   = flag.Int("workers", 0, "farm worker goroutines (0 = all CPUs)")
		showStats = flag.Bool("stats", false, "print farm cache/run counters after the sweep")
	)
	flag.Parse()

	points, err := buildSweep(*param)
	if err != nil {
		log.Fatal(err)
	}

	protocols := []cpelide.Protocol{
		cpelide.ProtocolBaseline, cpelide.ProtocolCPElide, cpelide.ProtocolHMG,
	}
	wp := workloads.Params{Scale: *scale, Iters: *iters}
	jobs := make([]farm.Job, 0, len(points)*len(protocols))
	for _, pt := range points {
		for _, proto := range protocols {
			opt := pt.opt
			opt.Protocol = proto
			jobs = append(jobs, farm.Job{Workload: *workload, Params: wp, Config: pt.cfg, Options: opt})
		}
	}

	eng := farm.New(farm.Options{Workers: *workers})
	defer eng.Close()
	reps, err := eng.Do(context.Background(), jobs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sweep %s over %s\n", *workload, *param)
	fmt.Printf("%-18s %14s %14s %12s %12s\n",
		"point", "base-cycles", "cpelide", "speedup", "hmg-speedup")
	for i, pt := range points {
		base, elide, hmg := reps[3*i], reps[3*i+1], reps[3*i+2]
		if n := base.StaleReads + elide.StaleReads + hmg.StaleReads; n != 0 {
			log.Fatalf("%s: %d stale reads", pt.label, n)
		}
		fmt.Printf("%-18s %14d %14d %11.3fx %11.3fx\n",
			pt.label, base.Cycles, elide.Cycles, elide.Speedup(base), hmg.Speedup(base))
	}
	if *showStats {
		c := eng.Counters()
		fmt.Printf("farm: jobs=%d runs=%d cache-hits=%d dedup-waits=%d\n",
			c.Jobs, c.Runs, c.CacheHits, c.DedupWaits)
	}
}

func buildSweep(param string) ([]point, error) {
	var points []point
	switch param {
	case "chiplets":
		for _, n := range []int{2, 4, 6, 7} {
			points = append(points, point{
				label: fmt.Sprintf("chiplets=%d", n),
				cfg:   cpelide.DefaultConfig(n),
			})
		}
	case "l2size":
		for _, mb := range []int{2, 4, 8, 16} {
			cfg := cpelide.DefaultConfig(4)
			cfg.L2SizeBytes = mb << 20
			points = append(points, point{
				label: fmt.Sprintf("l2=%dMB", mb),
				cfg:   cfg,
			})
		}
	case "table":
		for _, e := range []int{4, 8, 16, 64, 256} {
			points = append(points, point{
				label: fmt.Sprintf("table=%d", e),
				cfg:   cpelide.DefaultConfig(4),
				opt:   cpelide.Options{CPElideTableEntries: e},
			})
		}
	case "linkbw":
		for _, gbs := range []float64{192, 384, 768, 1536} {
			cfg := cpelide.DefaultConfig(4)
			cfg.InterChipletBWGBs = gbs
			points = append(points, point{
				label: fmt.Sprintf("link=%.0fGB/s", gbs),
				cfg:   cfg,
			})
		}
	case "dirlines":
		for _, l := range []int{1, 2, 4, 8} {
			points = append(points, point{
				label: fmt.Sprintf("dirlines=%d", l),
				cfg:   cpelide.DefaultConfig(4),
				opt:   cpelide.Options{HMGDirLinesPerEntry: l},
			})
		}
	default:
		return nil, fmt.Errorf("unknown -param %q", param)
	}
	return points, nil
}
