// Command crosscheck runs the differential correctness campaign: seeded
// random kernel DAGs (internal/gen) executed under Baseline, CPElide, HMG
// and HMG-WB, each run checked three ways —
//
//  1. the golden-model consistency oracle (internal/oracle) must find no
//     memory-model violation given the sync operations the CP issued,
//  2. the final memory image must be byte-identical across all protocols,
//  3. CPElide's per-boundary sync operations must be a subset of Baseline's.
//
// Mutation mode (-mutate drop-acquire|drop-release|wrong-chiplet|all)
// deliberately weakens the CP under CPElide and asserts the oracle catches
// every weakening that provably corrupted the run (zero false negatives),
// proving the oracle has teeth.
//
// The -json report (schema crosscheck/v1) carries the campaign size,
// divergence counts and oracle verdicts; CI uploads it as the
// BENCH_crosscheck artifact. Exit status is nonzero on any failure.
//
// Usage:
//
//	crosscheck -n 500 -mutate all -mutate-n 100 -json BENCH_crosscheck.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	cpelide "repro"
	"repro/internal/gen"
)

var protocols = []cpelide.Protocol{
	cpelide.ProtocolBaseline,
	cpelide.ProtocolCPElide,
	cpelide.ProtocolHMG,
	cpelide.ProtocolHMGWriteBack,
}

type protocolStats struct {
	Runs             uint64 `json:"runs"`
	OracleViolations uint64 `json:"oracle_violations"`
	StaleReads       uint64 `json:"stale_reads"`
	SyncOps          uint64 `json:"sync_ops"`
}

type campaignReport struct {
	DAGs             int                       `json:"dags"`
	Protocols        []string                  `json:"protocols"`
	Edges            gen.EdgeStats             `json:"edges"`
	ImageDivergences int                       `json:"image_divergences"`
	SubsetViolations int                       `json:"subset_violations"`
	ByProtocol       map[string]*protocolStats `json:"by_protocol"`
	// ElisionRatio is CPElide's sync ops over Baseline's across the
	// campaign (lower = more elision; must be <= 1 by the subset property).
	ElisionRatio float64  `json:"elision_ratio"`
	Failures     []string `json:"failures,omitempty"`
}

type mutationReport struct {
	Kind string `json:"kind"`
	DAGs int    `json:"dags"`
	// Detected counts DAGs where the oracle flagged the weakened run;
	// Broken counts DAGs the mutation provably corrupted (stale reads or a
	// memory-image divergence against the unmutated run). FalseNegatives
	// counts broken-but-undetected DAGs and must be zero.
	Detected       int      `json:"detected"`
	Broken         int      `json:"broken"`
	FalseNegatives int      `json:"false_negatives"`
	Failures       []string `json:"failures,omitempty"`
}

type report struct {
	Schema    string            `json:"schema"`
	Chiplets  int               `json:"chiplets"`
	Seed      uint64            `json:"seed"`
	Campaign  *campaignReport   `json:"campaign,omitempty"`
	Mutations []*mutationReport `json:"mutations,omitempty"`
	OK        bool              `json:"ok"`
}

func main() {
	var (
		n        = flag.Int("n", 500, "unmutated campaign size (DAGs); 0 skips it")
		seed     = flag.Uint64("seed", 0, "first DAG seed")
		chiplets = flag.Int("chiplets", 4, "chiplets in the simulated GPU")
		mutate   = flag.String("mutate", "", "mutation campaign: drop-acquire, drop-release, wrong-chiplet or all")
		mutateN  = flag.Int("mutate-n", 100, "mutation campaign size (DAGs per kind)")
		jsonPath = flag.String("json", "", "write the crosscheck/v1 report to this file")
		verbose  = flag.Bool("v", false, "log each DAG")
	)
	flag.Parse()

	rep := &report{Schema: "crosscheck/v1", Chiplets: *chiplets, Seed: *seed, OK: true}
	if *n > 0 {
		rep.Campaign = runCampaign(*n, *seed, *chiplets, *verbose)
		if len(rep.Campaign.Failures) > 0 {
			rep.OK = false
		}
	}
	var kinds []cpelide.Mutation
	switch *mutate {
	case "":
	case "all":
		kinds = []cpelide.Mutation{
			cpelide.MutateDropAcquire, cpelide.MutateDropRelease, cpelide.MutateWrongChiplet,
		}
	default:
		m, err := cpelide.ParseMutation(*mutate)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		kinds = []cpelide.Mutation{m}
	}
	for _, m := range kinds {
		mr := runMutation(m, *mutateN, *seed, *chiplets, *verbose)
		rep.Mutations = append(rep.Mutations, mr)
		if mr.FalseNegatives > 0 || mr.Detected == 0 || len(mr.Failures) > 0 {
			rep.OK = false
		}
	}

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	summarize(rep)
	if !rep.OK {
		os.Exit(1)
	}
}

func runCampaign(n int, seed uint64, chiplets int, verbose bool) *campaignReport {
	cr := &campaignReport{
		DAGs:       n,
		ByProtocol: map[string]*protocolStats{},
	}
	for _, p := range protocols {
		cr.Protocols = append(cr.Protocols, p.String())
		cr.ByProtocol[p.String()] = &protocolStats{}
	}
	fail := func(format string, args ...any) {
		cr.Failures = append(cr.Failures, fmt.Sprintf(format, args...))
		fmt.Fprintf(os.Stderr, "FAIL: "+format+"\n", args...)
	}
	for i := 0; i < n; i++ {
		s := seed + uint64(i)
		c := gen.Generate(s, gen.Config{Chiplets: chiplets})
		cr.Edges.RAW += c.Edges.RAW
		cr.Edges.WAR += c.Edges.WAR
		cr.Edges.WAW += c.Edges.WAW
		var baseHash uint64
		var baseOracle, elideOracle *cpelide.Oracle
		for _, p := range protocols {
			o := cpelide.NewOracle(p)
			r, err := cpelide.RunStreams(cpelide.DefaultConfig(chiplets), c.Specs, cpelide.Options{
				Protocol:  p,
				Placement: c.Placement,
				Oracle:    o,
			})
			if err != nil {
				fail("%s / %v: %v", c.Name, p, err)
				continue
			}
			ps := cr.ByProtocol[p.String()]
			ps.Runs++
			ps.StaleReads += r.StaleReads
			ps.SyncOps += uint64(r.Oracle.SyncOps)
			ps.OracleViolations += o.Violations()
			if err := o.Err(); err != nil {
				fail("%s / %v: %v", c.Name, p, err)
			}
			if r.StaleReads > 0 {
				fail("%s / %v: %d stale reads", c.Name, p, r.StaleReads)
			}
			switch p {
			case cpelide.ProtocolBaseline:
				baseHash = r.ImageHash
				baseOracle = o
			default:
				if r.ImageHash != baseHash {
					cr.ImageDivergences++
					fail("%s: %v memory image %#x diverges from Baseline %#x",
						c.Name, p, r.ImageHash, baseHash)
				}
			}
			if p == cpelide.ProtocolCPElide {
				elideOracle = o
			}
		}
		if baseOracle != nil && elideOracle != nil {
			if broken := elideOracle.SubsetOf(baseOracle); len(broken) > 0 {
				cr.SubsetViolations += len(broken)
				fail("%s: CPElide issued %d boundary op set(s) exceeding Baseline's", c.Name, len(broken))
			}
		}
		if verbose {
			fmt.Printf("dag %d: %d edges ok\n", s, c.Edges.Total())
		}
	}
	if b := cr.ByProtocol[cpelide.ProtocolBaseline.String()]; b != nil && b.SyncOps > 0 {
		e := cr.ByProtocol[cpelide.ProtocolCPElide.String()]
		cr.ElisionRatio = float64(e.SyncOps) / float64(b.SyncOps)
	}
	return cr
}

func runMutation(m cpelide.Mutation, n int, seed uint64, chiplets int, verbose bool) *mutationReport {
	mr := &mutationReport{Kind: m.String(), DAGs: n}
	fail := func(format string, args ...any) {
		mr.Failures = append(mr.Failures, fmt.Sprintf(format, args...))
		fmt.Fprintf(os.Stderr, "FAIL: "+format+"\n", args...)
	}
	for i := 0; i < n; i++ {
		s := seed + uint64(i)
		c := gen.Generate(s, gen.Config{Chiplets: chiplets})
		clean, err := cpelide.RunStreams(cpelide.DefaultConfig(chiplets), c.Specs, cpelide.Options{
			Protocol:  cpelide.ProtocolCPElide,
			Placement: c.Placement,
		})
		if err != nil {
			fail("%s (clean): %v", c.Name, err)
			continue
		}
		o := cpelide.NewOracle(cpelide.ProtocolCPElide)
		mutated, err := cpelide.RunStreams(cpelide.DefaultConfig(chiplets), c.Specs, cpelide.Options{
			Protocol:  cpelide.ProtocolCPElide,
			Placement: c.Placement,
			Oracle:    o,
			Mutate:    m,
		})
		if err != nil {
			fail("%s (%s): %v", c.Name, m, err)
			continue
		}
		broken := mutated.StaleReads > 0 || mutated.ImageHash != clean.ImageHash
		detected := o.Violations() > 0
		if broken {
			mr.Broken++
			if !detected {
				mr.FalseNegatives++
				fail("%s: %s broke the run (stale=%d, image %#x vs %#x) undetected",
					c.Name, m, mutated.StaleReads, mutated.ImageHash, clean.ImageHash)
			}
		}
		if detected {
			mr.Detected++
		}
		if verbose {
			fmt.Printf("dag %d / %s: broken=%v detected=%v\n", s, m, broken, detected)
		}
	}
	if mr.Detected == 0 {
		fail("mutation %s: never detected across %d DAGs", m, n)
	}
	return mr
}

func summarize(rep *report) {
	if c := rep.Campaign; c != nil {
		fmt.Printf("campaign: %d DAGs x %d protocols, %d hazard edges, %d image divergences, %d subset violations, elision ratio %.3f\n",
			c.DAGs, len(c.Protocols), c.Edges.Total(), c.ImageDivergences, c.SubsetViolations, c.ElisionRatio)
		for _, p := range c.Protocols {
			ps := c.ByProtocol[p]
			fmt.Printf("  %-10s runs=%d oracle_violations=%d stale_reads=%d sync_ops=%d\n",
				p, ps.Runs, ps.OracleViolations, ps.StaleReads, ps.SyncOps)
		}
	}
	for _, m := range rep.Mutations {
		fmt.Printf("mutation %-13s %d DAGs: detected=%d broken=%d false_negatives=%d\n",
			m.Kind, m.DAGs, m.Detected, m.Broken, m.FalseNegatives)
	}
	if rep.OK {
		fmt.Println("crosscheck: OK")
	} else {
		fmt.Println("crosscheck: FAILED")
	}
}
