package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/farm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpelide-server: ")
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "farm worker goroutines (0 = all CPUs)")
		queueCap = flag.Int("queue", 64, "pending-job queue capacity (full queue => 429)")
		cacheCap = flag.Int("cache", farm.DefaultCacheEntries, "result cache entries (negative disables caching)")
		jobTO    = flag.Duration("job-timeout", 0, "per-attempt deadline for one simulation (0 = none)")
		retries  = flag.Int("retries", 0, "extra attempts for transiently failed jobs (timeouts, panics)")
	)
	flag.Parse()

	eng := farm.New(farm.Options{
		Workers:      *workers,
		CacheEntries: *cacheCap,
		JobTimeout:   *jobTO,
		Retries:      *retries,
	})
	s := newServer(eng, *queueCap)
	httpSrv := &http.Server{Addr: *addr, Handler: s.handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s (%d workers, queue %d)", *addr, eng.Workers(), *queueCap)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting connections, let queued jobs finish,
	// then stop the farm workers.
	log.Print("signal received, draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	s.Drain()
	eng.Close()
	c := eng.Counters()
	log.Printf("drained: jobs=%d runs=%d cache-hits=%d errors=%d", c.Jobs, c.Runs, c.CacheHits, c.Errors)
}
