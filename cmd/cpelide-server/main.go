package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/farm"
	"repro/internal/metrics"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		debugAddr = flag.String("debug-addr", "", "optional debug listen address serving net/http/pprof (e.g. localhost:6060); empty disables")
		workers   = flag.Int("workers", 0, "farm worker goroutines (0 = all CPUs)")
		queueCap  = flag.Int("queue", 64, "pending-job queue capacity (full queue => 429)")
		cacheCap  = flag.Int("cache", farm.DefaultCacheEntries, "result cache entries (negative disables caching)")
		jobTO     = flag.Duration("job-timeout", 0, "per-attempt deadline for one simulation (0 = none)")
		retries   = flag.Int("retries", 0, "extra attempts for transiently failed jobs (timeouts, panics)")
		logJSON   = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	)
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler).With("component", "cpelide-server")

	reg := metrics.NewRegistry()
	eng := farm.New(farm.Options{
		Workers:      *workers,
		CacheEntries: *cacheCap,
		JobTimeout:   *jobTO,
		Retries:      *retries,
		Metrics:      reg,
	})
	s := newServer(eng, *queueCap)
	s.instrument(reg, logger)
	httpSrv := &http.Server{Addr: *addr, Handler: s.handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "workers", eng.Workers(), "queue", *queueCap)

	var debugSrv *http.Server
	if *debugAddr != "" {
		// The profiling surface is a separate listener so it can stay bound
		// to localhost while the API listens publicly.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{Addr: *debugAddr, Handler: dmux}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "addr", *debugAddr, "err", err)
			}
		}()
		logger.Info("pprof listening", "addr", *debugAddr)
	}

	select {
	case err := <-errc:
		logger.Error("listener failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting connections, let queued jobs finish,
	// then stop the farm workers.
	logger.Info("signal received, draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("http shutdown", "err", err)
	}
	if debugSrv != nil {
		_ = debugSrv.Shutdown(shutdownCtx)
	}
	s.Drain()
	eng.Close()
	c := eng.Counters()
	logger.Info("drained", "jobs", c.Jobs, "runs", c.Runs, "cache_hits", c.CacheHits, "errors", c.Errors)
}
