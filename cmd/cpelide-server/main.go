// Command cpelide-server runs the experiment-farm HTTP server
// (internal/server): standalone by default, or as one worker in a cluster
// when pointed at a cpelide-coordinator. In worker mode it registers itself
// on startup, serves health checks at /healthz, and deregisters on shutdown.
//
// With -store, results are persisted to a content-addressed on-disk store
// under the in-memory LRU; on startup the cache is warmed from the most
// recently written entries, so a restarted worker (or a fresh one pointed at
// a shared directory) serves prior results without re-simulating.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/diskstore"
	"repro/internal/farm"
	"repro/internal/metrics"
	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		debugAddr = flag.String("debug-addr", "", "optional debug listen address serving net/http/pprof (e.g. localhost:6060); empty disables")
		workers   = flag.Int("workers", 0, "farm worker goroutines (0 = all CPUs)")
		queueCap  = flag.Int("queue", 64, "pending-job queue capacity (full queue => 429)")
		cacheCap  = flag.Int("cache", farm.DefaultCacheEntries, "result cache entries (negative disables caching)")
		jobTO     = flag.Duration("job-timeout", 0, "per-attempt deadline for one simulation (0 = none)")
		retries   = flag.Int("retries", 0, "extra attempts for transiently failed jobs (timeouts, panics)")
		logJSON   = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")

		storeDir    = flag.String("store", "", "persistent result-store directory (empty disables; share it between workers for a cluster-wide store)")
		coordinator = flag.String("coordinator", "", "coordinator base URL to register with (empty = standalone)")
		advertise   = flag.String("advertise", "", "base URL workers advertise to the coordinator (default http://localhost<addr>)")
		nodeName    = flag.String("node", "", "worker name for routing and metrics (default worker<addr>)")
		weight      = flag.Int("weight", 1, "Maglev capacity weight relative to other workers")
	)
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler).With("component", "cpelide-server")

	reg := metrics.NewRegistry()
	opts := farm.Options{
		Workers:      *workers,
		CacheEntries: *cacheCap,
		JobTimeout:   *jobTO,
		Retries:      *retries,
		Metrics:      reg,
	}

	var store *diskstore.Store
	if *storeDir != "" {
		var err error
		if store, err = diskstore.Open(*storeDir); err != nil {
			logger.Error("open result store", "dir", *storeDir, "err", err)
			os.Exit(1)
		}
		corrupt := reg.Counter("store_corrupt_total",
			"Store entries that failed integrity validation and were quarantined.")
		store.OnCorrupt = func(key string) {
			corrupt.Inc()
			logger.Warn("store entry quarantined", "key", key)
		}
		opts.Store = store
	}

	eng := farm.New(opts)
	if store != nil && *cacheCap >= 0 {
		// Warm the LRU from the store's freshest entries so a restart (or a
		// new worker on a shared store) starts hot instead of cold.
		capacity := *cacheCap
		if capacity == 0 {
			capacity = farm.DefaultCacheEntries
		}
		keys, err := store.RecentKeys(capacity)
		if err != nil {
			logger.Warn("scan result store for warm-start", "err", err)
		} else if n := eng.Warm(keys); n > 0 {
			logger.Info("cache warmed from store", "dir", *storeDir, "entries", n)
		}
	}

	s := server.New(eng, *queueCap)
	s.Instrument(reg, logger)
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "workers", eng.Workers(), "queue", *queueCap)

	// Worker mode: announce ourselves to the coordinator once the listener
	// is up; a failed registration is fatal because unregistered workers
	// never receive traffic.
	if *coordinator != "" {
		worker := cluster.Worker{
			Name:   *nodeName,
			URL:    *advertise,
			Weight: *weight,
		}
		if worker.URL == "" {
			worker.URL = guessAdvertiseURL(*addr)
		}
		if worker.Name == "" {
			worker.Name = "worker" + *addr
		}
		regCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
		err := cluster.RegisterWorker(regCtx, nil, *coordinator, worker)
		cancel()
		if err != nil {
			logger.Error("register with coordinator", "coordinator", *coordinator, "err", err)
			os.Exit(1)
		}
		logger.Info("registered", "coordinator", *coordinator,
			"node", worker.Name, "url", worker.URL, "weight", worker.Weight)
		defer func() {
			deregCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := cluster.DeregisterWorker(deregCtx, nil, *coordinator, worker.Name); err != nil {
				logger.Warn("deregister", "err", err)
			}
		}()
	}

	var debugSrv *http.Server
	if *debugAddr != "" {
		// The profiling surface is a separate listener so it can stay bound
		// to localhost while the API listens publicly.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{Addr: *debugAddr, Handler: dmux}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "addr", *debugAddr, "err", err)
			}
		}()
		logger.Info("pprof listening", "addr", *debugAddr)
	}

	select {
	case err := <-errc:
		logger.Error("listener failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting connections, let queued jobs finish,
	// then stop the farm workers.
	logger.Info("signal received, draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("http shutdown", "err", err)
	}
	if debugSrv != nil {
		_ = debugSrv.Shutdown(shutdownCtx)
	}
	s.Drain()
	eng.Close()
	c := eng.Counters()
	logger.Info("drained", "jobs", c.Jobs, "runs", c.Runs, "cache_hits", c.CacheHits,
		"store_hits", c.StoreHits, "errors", c.Errors)
}

// guessAdvertiseURL turns a listen address into a base URL other processes
// on the same host can reach; multi-host deployments must pass -advertise.
func guessAdvertiseURL(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "http://" + addr
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		host = "localhost"
	}
	return fmt.Sprintf("http://%s:%s", host, port)
}
