// Command loadgen replays a configurable job mix against a cpelide-server
// or cpelide-coordinator and reports latency percentiles, throughput, and
// cache behavior. It exits nonzero if any job was lost or failed, so CI can
// use a campaign as a cluster-correctness gate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	var (
		addr        = flag.String("addr", "http://localhost:8070", "server or coordinator base URL")
		jobs        = flag.Int("jobs", 100, "total submissions")
		distinct    = flag.Int("distinct", 0, "distinct job bodies (0 = jobs); repeats exercise caches")
		concurrency = flag.Int("concurrency", 8, "parallel clients")
		mixSpec     = flag.String("mix", "square=2,pathfinder=1,btree/hmg=1", "weighted mix: workload[/protocol][=weight],...")
		scale       = flag.Float64("scale", 0.05, "base workload scale")
		seed        = flag.Int64("seed", 1, "schedule seed (campaigns are reproducible per seed)")
		poll        = flag.Duration("poll", 25*time.Millisecond, "status-poll interval")
		jobTimeout  = flag.Duration("job-timeout", 120*time.Second, "per-job completion bound; beyond it a job counts as lost")
		retryBase   = flag.Duration("retry-base", 50*time.Millisecond, "first backoff after a transient transport error (coordinator bounce)")
		retryMax    = flag.Duration("retry-max", 2*time.Second, "transient-error backoff cap")
		jsonOut     = flag.Bool("json", false, "print the result as JSON instead of text")
		outPath     = flag.String("out", "", "also write the JSON result to this file")
	)
	flag.Parse()

	mix, err := cluster.ParseMix(*mixSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := cluster.Campaign{
		BaseURL:        *addr,
		Jobs:           *jobs,
		Distinct:       *distinct,
		Concurrency:    *concurrency,
		Scale:          *scale,
		Mix:            mix,
		Seed:           *seed,
		PollInterval:   *poll,
		JobTimeout:     *jobTimeout,
		RetryBaseDelay: *retryBase,
		RetryMaxDelay:  *retryMax,
	}.Run(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if *jsonOut {
		fmt.Println(string(blob))
	} else {
		fmt.Printf("jobs        %d (completed %d, failed %d, lost %d, resubmits %d, transient retries %d)\n",
			res.Jobs, res.Completed, res.Failed, res.Lost, res.Resubmits, res.TransientRetries)
		fmt.Printf("elapsed     %.1f ms  (%.1f jobs/s)\n", res.ElapsedMS, res.ThroughputJPS)
		fmt.Printf("latency ms  p50 %.1f  p90 %.1f  p99 %.1f\n", res.P50MS, res.P90MS, res.P99MS)
		fmt.Printf("cache       hit rate %.2f (lru %d, dedup %d, store %d; runs %d)\n",
			res.CacheHitRate, res.CacheHits, res.DedupWaits, res.StoreHits, res.Runs)
	}
	if res.Lost > 0 || res.Failed > 0 {
		os.Exit(1)
	}
}
