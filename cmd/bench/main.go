// Command bench is the repo's performance-trajectory driver: it runs a fixed
// matrix of simulator benchmarks through testing.Benchmark, emits the results
// as JSON (BENCH_core.json is the committed baseline), and gates regressions
// by comparing two result files.
//
// Usage:
//
//	bench -out BENCH_core.json                 # measure and write the baseline
//	bench -out current.json
//	bench -baseline BENCH_core.json -against current.json \
//	      -metrics allocs,cycles,accesses      # CI gate, machine-independent
//	bench -baseline current.json -against current.json -plant 1.25
//	                                           # must exit 1 (gate self-test)
//
// Two metric classes are reported. ns_per_op, bytes_per_op, and allocs_per_op
// come from testing.Benchmark; cycles and accesses are the simulation's own
// deterministic outputs, identical on every machine — CI gates on the
// machine-independent set (allocs, cycles, accesses) against the committed
// baseline, while ns_per_op tracks the local trajectory and powers the
// planted-slowdown self-test. The emitted phases section is the phase
// profiler's attribution for one representative run, answering "where would
// optimization effort go" next to every baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"testing"

	"repro"
	"repro/internal/workloads"
)

// benchCase is one matrix entry: a workload at a fixed scale under one
// protocol. The matrix is small enough to run in CI on every push but covers
// the three protocol families whose hot paths differ most.
type benchCase struct {
	Workload string
	Scale    float64
	Protocol cpelide.Protocol
}

var matrix = []benchCase{
	{"square", 0.1, cpelide.ProtocolBaseline},
	{"square", 0.1, cpelide.ProtocolCPElide},
	{"square", 0.1, cpelide.ProtocolHMG},
	{"babelstream", 0.1, cpelide.ProtocolBaseline},
	{"babelstream", 0.1, cpelide.ProtocolCPElide},
	{"babelstream", 0.1, cpelide.ProtocolHMG},
}

// benchResult is one benchmark's record in the results file.
type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Cycles and Accesses are the run's deterministic simulation outputs:
	// identical across machines, so regressions in them are algorithmic,
	// never noise.
	Cycles   uint64 `json:"cycles"`
	Accesses uint64 `json:"accesses"`
}

// benchFile is the results-file schema.
type benchFile struct {
	Schema     string                 `json:"schema"`
	GoVersion  string                 `json:"go_version"`
	Benchmarks []benchResult          `json:"benchmarks"`
	Phases     []cpelide.PhaseSamples `json:"phases,omitempty"`
	PhaseNote  string                 `json:"phase_note,omitempty"`
}

const schemaV1 = "cpelide-bench/v1"

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	testing.Init() // registers test.benchtime so testing.Benchmark honors it
	var (
		out        = flag.String("out", "", "write measured results to this file ('-' or empty = stdout when not gating)")
		baseline   = flag.String("baseline", "", "gate: results file to compare against (the reference)")
		against    = flag.String("against", "", "gate: results file under test (skips measuring; default = measure now)")
		maxRegress = flag.Float64("max-regress", 0.10, "gate: fail when any gated metric regresses by more than this fraction")
		metricsCSV = flag.String("metrics", "ns,allocs,cycles,accesses", "gate: comma-separated metrics to gate (ns, bytes, allocs, cycles, accesses)")
		plant      = flag.Float64("plant", 1.0, "multiply the under-test ns_per_op and allocs_per_op by this factor (gate self-test: 1.25 must fail)")
		benchtime  = flag.String("benchtime", "", "override testing benchtime (e.g. 200ms) for quicker local runs")
		calFlag    = flag.String("calendar", "wheel", "event calendar to measure with (wheel or heap); simulation metrics are identical, only host time differs")
	)
	flag.Parse()

	switch *calFlag {
	case "", "wheel":
		calendar = cpelide.CalendarWheel
	case "heap":
		calendar = cpelide.CalendarHeap
	default:
		log.Fatalf("bad -calendar %q: want wheel or heap", *calFlag)
	}

	if *benchtime != "" {
		if err := flag.Lookup("test.benchtime").Value.Set(*benchtime); err != nil {
			log.Fatalf("bad -benchtime: %v", err)
		}
	}

	var cur *benchFile
	if *against != "" {
		var err error
		if cur, err = load(*against); err != nil {
			log.Fatal(err)
		}
	} else {
		cur = measure()
	}
	if *plant != 1.0 {
		planted := *cur
		planted.Benchmarks = append([]benchResult(nil), cur.Benchmarks...)
		for i := range planted.Benchmarks {
			planted.Benchmarks[i].NsPerOp *= *plant
			planted.Benchmarks[i].AllocsPerOp = int64(float64(planted.Benchmarks[i].AllocsPerOp) * *plant)
		}
		cur = &planted
		log.Printf("planted a %.0f%% ns_per_op and allocs_per_op regression for the gate self-test", 100*(*plant-1))
	}

	if *baseline != "" {
		base, err := load(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		if failures := gate(base, cur, *maxRegress, strings.Split(*metricsCSV, ",")); len(failures) > 0 {
			for _, f := range failures {
				log.Print(f)
			}
			log.Fatalf("gate FAILED: %d regression(s) beyond %.0f%%", len(failures), 100**maxRegress)
		}
		log.Printf("gate passed: no metric regressed beyond %.0f%%", 100**maxRegress)
		if *out == "" {
			return
		}
	}

	enc := func(w *os.File) {
		e := json.NewEncoder(w)
		e.SetIndent("", "  ")
		if err := e.Encode(cur); err != nil {
			log.Fatal(err)
		}
	}
	if *out == "" || *out == "-" {
		enc(os.Stdout)
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc(f)
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d benchmarks)", *out, len(cur.Benchmarks))
}

func load(path string) (*benchFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != schemaV1 {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, f.Schema, schemaV1)
	}
	return &f, nil
}

// measure runs the matrix and one profiled representative run.
func measure() *benchFile {
	out := &benchFile{Schema: schemaV1, GoVersion: runtime.Version()}
	for _, c := range matrix {
		name := fmt.Sprintf("%s/%s", c.Workload, strings.ToLower(c.Protocol.String()))
		var rep *cpelide.Report
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = runOne(c, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		if rep == nil {
			log.Fatalf("%s: benchmark produced no report", name)
		}
		out.Benchmarks = append(out.Benchmarks, benchResult{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Cycles:      rep.Cycles,
			Accesses:    rep.Accesses,
		})
		log.Printf("%-24s %12.0f ns/op %10d allocs/op %14d cycles", name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocsPerOp(), rep.Cycles)
	}

	// Phase attribution for one representative configuration: where the
	// simulator's host time actually goes, committed alongside the numbers it
	// explains. Sample fast (50µs) so even a short run is attributed.
	pc := matrix[1] // square/cpelide
	prof := cpelide.NewPhaseProfiler(50_000)
	rep, err := runOne(pc, prof)
	if err != nil {
		log.Fatal(err)
	}
	if rep.Profile != nil {
		out.Phases = rep.Profile.Phases
		out.PhaseNote = fmt.Sprintf("%s/%s, sample counts are wall-clock and not gated",
			pc.Workload, strings.ToLower(pc.Protocol.String()))
	}
	return out
}

func runOne(c benchCase, prof *cpelide.PhaseProfiler) (*cpelide.Report, error) {
	cfg := cpelide.DefaultConfig(4)
	alloc := cpelide.NewAllocator(cfg.PageSize)
	w, err := workloads.Build(c.Workload, alloc, workloads.Params{Scale: c.Scale})
	if err != nil {
		return nil, err
	}
	return cpelide.Run(cfg, w, cpelide.Options{Protocol: c.Protocol, Profiler: prof, Calendar: calendar})
}

// calendar is the event-calendar implementation the whole matrix runs on,
// set once from the -calendar flag.
var calendar cpelide.CalendarKind

// gate compares the under-test results to the baseline and returns one
// message per violation: a gated metric more than maxRegress worse, or a
// baseline benchmark missing from the run. New benchmarks (in cur, not in
// base) pass — the matrix is allowed to grow.
func gate(base, cur *benchFile, maxRegress float64, gateMetrics []string) []string {
	want := map[string]bool{}
	for _, m := range gateMetrics {
		want[strings.TrimSpace(m)] = true
	}
	curBy := map[string]benchResult{}
	for _, b := range cur.Benchmarks {
		curBy[b.Name] = b
	}
	var failures []string
	check := func(name, metric string, baseV, curV float64) {
		if !want[metric] || baseV <= 0 {
			return
		}
		ratio := curV / baseV
		if ratio > 1+maxRegress {
			failures = append(failures, fmt.Sprintf(
				"%s: %s regressed %.1f%% (%.0f -> %.0f, limit %.0f%%)",
				name, metric, 100*(ratio-1), baseV, curV, 100*maxRegress))
		}
	}
	for _, b := range base.Benchmarks {
		c, ok := curBy[b.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: benchmark missing from results under test", b.Name))
			continue
		}
		check(b.Name, "ns", b.NsPerOp, c.NsPerOp)
		check(b.Name, "bytes", float64(b.BytesPerOp), float64(c.BytesPerOp))
		check(b.Name, "allocs", float64(b.AllocsPerOp), float64(c.AllocsPerOp))
		check(b.Name, "cycles", float64(b.Cycles), float64(c.Cycles))
		check(b.Name, "accesses", float64(b.Accesses), float64(c.Accesses))
	}
	return failures
}
