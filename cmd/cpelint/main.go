// Command cpelint is the multichecker for the repository's static
// invariants: determinism of the simulation core, event-engine scheduling
// safety, errors-not-panics in library code, and suppression hygiene for
// //cpelint:ignore directives (DESIGN §12).
//
// It runs in two modes:
//
//	cpelint [-json] [packages]    # standalone, e.g. go run ./cmd/cpelint ./...
//	cpelint <unit>.cfg            # as a `go vet -vettool=` backend
//
// Standalone mode loads packages itself (internal/analysis/load) and exits 1
// when any diagnostic survives the ignore directives. Vettool mode speaks
// the go vet unit-checker protocol: it receives one JSON config per
// compilation unit, analyzes it, writes the (empty) facts file go vet
// expects, and exits 2 on findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
	"repro/internal/analysis/suite"
)

// version participates in go vet's action cache key (reported via -V=full);
// bump it when pass behavior changes so cached clean verdicts are not
// replayed over new rules.
const version = "v1.1.0"

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if err := suite.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 3
	}
	// go vet handshake: tool identity for the build cache, then the flag
	// inventory. Both must answer before flag parsing.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			fmt.Printf("cpelint version %s\n", version)
			return 0
		case "-flags", "--flags":
			fmt.Println("[]")
			return 0
		}
	}

	fs := flag.NewFlagSet("cpelint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	list := fs.Bool("list", false, "list the passes and exit")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: cpelint [-json] [packages]  |  cpelint <unit>.cfg")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 3
	}
	if *list {
		for _, a := range suite.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVetUnit(rest[0])
	}
	return runStandalone(rest, *jsonOut)
}

func runStandalone(patterns []string, jsonOut bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cpelint:", err)
		return 3
	}
	units, err := load.Packages(dir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 3
	}
	var diags []analysis.UnitDiagnostic
	for _, u := range units {
		ds, err := analysis.RunUnit(u.Fset, u.Files, u.Pkg, u.Info, u.GoVersion, suite.Analyzers())
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpelint: %s: %v\n", u.ImportPath, err)
			return 3
		}
		diags = append(diags, ds...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Message < diags[j].Message
	})
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "cpelint:", err)
			return 3
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		if !jsonOut {
			fmt.Fprintf(os.Stderr, "cpelint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// vetConfig is the JSON unit description go vet hands to -vettool backends.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cpelint:", err)
		return 3
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cpelint: parsing %s: %v\n", cfgPath, err)
		return 3
	}
	// go vet requires the facts file regardless of findings. cpelint's
	// passes are fact-free, so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "cpelint:", err)
			return 3
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, gf := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, gf, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpelint:", err)
			return 3
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		ef, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(ef)
	}
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		GoVersion: cfg.GoVersion,
		Error:     func(error) {},
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "cpelint: %s: %v\n", cfg.ImportPath, err)
		return 3
	}
	diags, err := analysis.RunUnit(fset, files, pkg, info, cfg.GoVersion, suite.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "cpelint: %s: %v\n", cfg.ImportPath, err)
		return 3
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: [%s] %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
