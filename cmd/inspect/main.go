// Command inspect prints what the global command processor sees for a
// benchmark: its data structures, the per-kernel argument metadata
// (modes, patterns, per-chiplet ranges), the dynamic kernel sequence, and a
// dry-run of the Chiplet Coherence Table's decisions for the first launches.
//
// With -audit it instead runs a full CPElide simulation and prints the
// elision audit log: per kernel boundary, which implicit acquires/releases
// were issued vs. elided on each chiplet, and the coherence-table state
// that justified the decision.
//
// With -phases it reads a report JSON file (a single library Report or a
// cpelide-sim -json array) and prints each run's phase-profile table — the
// host wall-time attribution a profiled run recorded.
//
// Usage:
//
//	inspect -workload hotspot3D
//	inspect -workload sssp -launches 8 -chiplets 4
//	inspect -workload color -audit -launches 12
//	cpelide-sim -workload square -profile -json | inspect -phases -
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro"
	"repro/internal/core"
	"repro/internal/cp"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("inspect: ")
	var (
		name     = flag.String("workload", "square", "benchmark name")
		chiplets = flag.Int("chiplets", 4, "chiplet count for partitioning")
		launches = flag.Int("launches", 6, "number of launches to dry-run through the table")
		scale    = flag.Float64("scale", 1.0, "footprint scale")
		audit    = flag.Bool("audit", false, "run a CPElide simulation and print the elision audit log")
		showTbl  = flag.Bool("audit-table", false, "with -audit, also print each boundary's pre-launch table state")
		phases   = flag.String("phases", "", "print phase-profile tables from a report JSON file ('-' = stdin) and exit")
	)
	flag.Parse()

	if *phases != "" {
		if err := runPhases(*phases); err != nil {
			log.Fatal(err)
		}
		return
	}

	alloc := kernels.NewAllocator(0x1000_0000, 4096)
	w, err := workloads.Build(*name, alloc, workloads.Params{Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}

	if *audit {
		runAudit(w, *chiplets, *launches, *showTbl)
		return
	}

	fmt.Printf("%s (%s reuse) — %d structures, %d dynamic kernels, %.1f MB footprint\n\n",
		w.Name, w.Class, len(w.Structures), len(w.Sequence),
		float64(w.FootprintBytes())/(1<<20))

	fmt.Println("data structures:")
	for _, d := range w.Structures {
		fmt.Printf("  %-12s base=%#x  %8.2f MB  elem=%dB\n",
			d.Name, d.Base, float64(d.Bytes)/(1<<20), d.ElemSize)
	}

	fmt.Println("\nstatic kernels:")
	seen := map[*kernels.Kernel]bool{}
	for _, k := range w.Sequence {
		if seen[k] {
			continue
		}
		seen[k] = true
		fmt.Printf("  %-24s WGs=%-4d compute/WG=%-6d LDS/WG=%d\n",
			k.Name, k.WGs, k.ComputePerWG, k.LDSBytesPerWG)
		for _, a := range k.Args {
			extra := ""
			switch a.Pattern {
			case kernels.Stencil:
				extra = fmt.Sprintf(" halo=%d", a.HaloLines)
			case kernels.Indirect:
				extra = fmt.Sprintf(" touches=%d hot=%.2f", a.TouchesPerLine, a.HotFraction)
			case kernels.Linear, kernels.Strided, kernels.Broadcast:
				// No per-pattern detail beyond the pattern name itself.
			}
			fmt.Printf("    %-12s %-4s %-10s%s\n", a.DS.Name, a.Mode, a.Pattern, extra)
		}
	}

	fmt.Printf("\nChiplet Coherence Table dry-run (%d chiplets, first %d launches):\n",
		*chiplets, *launches)
	fmt.Println("  (annotation metadata only — without page-placement knowledge the")
	fmt.Println("  table is more conservative than in a full simulation)")
	table, err := core.NewTable(core.Config{Chiplets: *chiplets})
	if err != nil {
		fmt.Fprintln(os.Stderr, "inspect:", err)
		os.Exit(2)
	}
	chs := make([]int, *chiplets)
	for i := range chs {
		chs[i] = i
	}
	for inst, k := range w.Sequence {
		if inst >= *launches {
			break
		}
		l := cp.BuildLaunch(k, inst, 0, chs, 64, true)
		views := make([]core.ArgView, 0, len(k.Args))
		for ai, a := range k.Args {
			v := core.ArgView{
				Base:   a.DS.Base,
				Full:   a.DS.Range(),
				Mode:   a.Mode,
				Ranges: make([]mem.RangeSet, *chiplets),
			}
			for slot, c := range chs {
				v.Ranges[c] = l.ArgRanges[ai][slot]
			}
			views = append(views, v)
		}
		ops := table.OnKernelLaunch(views)
		fmt.Printf("  #%-3d %-24s -> %d ops", inst, k.Name, len(ops))
		for _, op := range ops {
			kind := "acquire"
			if op.Flush {
				kind = "release"
			}
			fmt.Printf(" [%s c%d]", kind, op.Chiplet)
		}
		fmt.Println()
	}
	fmt.Printf("\n%s", table)
}

// runAudit executes the workload under CPElide with tracing enabled and
// prints the elision audit log: what every kernel boundary issued vs.
// elided, per chiplet, and a run summary.
func runAudit(w *kernels.Workload, chiplets, launches int, showTable bool) {
	rec := trace.New(0)
	rep, err := cpelide.Run(cpelide.DefaultConfig(chiplets), w, cpelide.Options{
		Protocol: cpelide.ProtocolCPElide,
		Trace:    rec,
	})
	if err != nil {
		log.Fatal(err)
	}

	audits := rec.Audits()
	fmt.Printf("%s under CPElide on %d chiplets: %d dynamic kernels, %d cycles, %d stale reads\n\n",
		w.Name, chiplets, rep.Kernels, rep.Cycles, rep.StaleReads)
	fmt.Printf("elision audit log (first %d of %d boundaries):\n", min(launches, len(audits)), len(audits))
	var acqI, relI, acqE, relE uint64
	for i, a := range audits {
		acqI += a.AcquiresIssued
		relI += a.ReleasesIssued
		acqE += a.AcquiresElided
		relE += a.ReleasesElided
		if i >= launches {
			continue
		}
		var ops []string
		for _, d := range a.Decisions {
			switch {
			case d.ReleaseIssued && d.AcquireIssued:
				ops = append(ops, fmt.Sprintf("c%d:rel+acq", d.Chiplet))
			case d.ReleaseIssued:
				ops = append(ops, fmt.Sprintf("c%d:rel", d.Chiplet))
			case d.AcquireIssued:
				ops = append(ops, fmt.Sprintf("c%d:acq", d.Chiplet))
			}
		}
		issued := strings.Join(ops, " ")
		if issued == "" {
			issued = "all elided"
		}
		fmt.Printf("  @%-10d #%-3d %-24s issued[%s]  elided acq/rel %d/%d\n",
			a.Ts, a.Inst, a.Kernel, issued, a.AcquiresElided, a.ReleasesElided)
		if showTable && a.Table != "" {
			for _, line := range strings.Split(strings.TrimRight(a.Table, "\n"), "\n") {
				fmt.Printf("      %s\n", line)
			}
		}
	}
	fmt.Printf("\ntotals: acquires issued/elided %d/%d, releases issued/elided %d/%d\n",
		acqI, acqE, relI, relE)
	fmt.Printf("trace: %d events recorded\n", rec.Len())
}

// phaseEntry is the subset of a report record -phases needs. Field pairs
// cover both spellings: the library Report marshals Go field names
// (Workload/Protocol/Profile), cpelide-sim -json uses lowercase tags.
type phaseEntry struct {
	Workload  string                `json:"workload"`
	Protocol  string                `json:"protocol"`
	Profile   *cpelide.PhaseProfile `json:"profile"`
	WorkloadU string                `json:"Workload"`
	ProtocolU string                `json:"Protocol"`
	ProfileU  *cpelide.PhaseProfile `json:"Profile"`
}

func (e phaseEntry) unify() (workload, protocol string, prof *cpelide.PhaseProfile) {
	workload, protocol, prof = e.Workload, e.Protocol, e.Profile
	if workload == "" {
		workload = e.WorkloadU
	}
	if protocol == "" {
		protocol = e.ProtocolU
	}
	if prof == nil {
		prof = e.ProfileU
	}
	return workload, protocol, prof
}

// runPhases prints the phase-profile table of every run recorded in a report
// JSON file: a single Report object (cpelide.Run output) or a cpelide-sim
// -json array. Runs without a profile are counted, not an error — only a
// file with no profiles at all fails, since that usually means -profile was
// forgotten.
func runPhases(path string) error {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}

	var entries []phaseEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		var single phaseEntry
		if err := json.Unmarshal(data, &single); err != nil {
			return fmt.Errorf("%s: not a report JSON object or array: %w", path, err)
		}
		entries = []phaseEntry{single}
	}

	printed := 0
	for _, e := range entries {
		workload, protocol, prof := e.unify()
		if prof == nil {
			continue
		}
		label := workload
		if protocol != "" {
			label += "/" + protocol
		}
		fmt.Printf("%s %s", label, prof)
		printed++
	}
	if printed == 0 {
		return fmt.Errorf("%s: no phase profiles in %d record(s) (was the run made with -profile / Options.Profiler?)", path, len(entries))
	}
	if skipped := len(entries) - printed; skipped > 0 {
		fmt.Printf("(%d record(s) had no profile)\n", skipped)
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
