// Command inspect prints what the global command processor sees for a
// benchmark: its data structures, the per-kernel argument metadata
// (modes, patterns, per-chiplet ranges), the dynamic kernel sequence, and a
// dry-run of the Chiplet Coherence Table's decisions for the first launches.
//
// With -audit it instead runs a full CPElide simulation and prints the
// elision audit log: per kernel boundary, which implicit acquires/releases
// were issued vs. elided on each chiplet, and the coherence-table state
// that justified the decision.
//
// Usage:
//
//	inspect -workload hotspot3D
//	inspect -workload sssp -launches 8 -chiplets 4
//	inspect -workload color -audit -launches 12
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro"
	"repro/internal/core"
	"repro/internal/cp"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("inspect: ")
	var (
		name     = flag.String("workload", "square", "benchmark name")
		chiplets = flag.Int("chiplets", 4, "chiplet count for partitioning")
		launches = flag.Int("launches", 6, "number of launches to dry-run through the table")
		scale    = flag.Float64("scale", 1.0, "footprint scale")
		audit    = flag.Bool("audit", false, "run a CPElide simulation and print the elision audit log")
		showTbl  = flag.Bool("audit-table", false, "with -audit, also print each boundary's pre-launch table state")
	)
	flag.Parse()

	alloc := kernels.NewAllocator(0x1000_0000, 4096)
	w, err := workloads.Build(*name, alloc, workloads.Params{Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}

	if *audit {
		runAudit(w, *chiplets, *launches, *showTbl)
		return
	}

	fmt.Printf("%s (%s reuse) — %d structures, %d dynamic kernels, %.1f MB footprint\n\n",
		w.Name, w.Class, len(w.Structures), len(w.Sequence),
		float64(w.FootprintBytes())/(1<<20))

	fmt.Println("data structures:")
	for _, d := range w.Structures {
		fmt.Printf("  %-12s base=%#x  %8.2f MB  elem=%dB\n",
			d.Name, d.Base, float64(d.Bytes)/(1<<20), d.ElemSize)
	}

	fmt.Println("\nstatic kernels:")
	seen := map[*kernels.Kernel]bool{}
	for _, k := range w.Sequence {
		if seen[k] {
			continue
		}
		seen[k] = true
		fmt.Printf("  %-24s WGs=%-4d compute/WG=%-6d LDS/WG=%d\n",
			k.Name, k.WGs, k.ComputePerWG, k.LDSBytesPerWG)
		for _, a := range k.Args {
			extra := ""
			switch a.Pattern {
			case kernels.Stencil:
				extra = fmt.Sprintf(" halo=%d", a.HaloLines)
			case kernels.Indirect:
				extra = fmt.Sprintf(" touches=%d hot=%.2f", a.TouchesPerLine, a.HotFraction)
			}
			fmt.Printf("    %-12s %-4s %-10s%s\n", a.DS.Name, a.Mode, a.Pattern, extra)
		}
	}

	fmt.Printf("\nChiplet Coherence Table dry-run (%d chiplets, first %d launches):\n",
		*chiplets, *launches)
	fmt.Println("  (annotation metadata only — without page-placement knowledge the")
	fmt.Println("  table is more conservative than in a full simulation)")
	table, err := core.NewTable(core.Config{Chiplets: *chiplets})
	if err != nil {
		fmt.Fprintln(os.Stderr, "inspect:", err)
		os.Exit(2)
	}
	chs := make([]int, *chiplets)
	for i := range chs {
		chs[i] = i
	}
	for inst, k := range w.Sequence {
		if inst >= *launches {
			break
		}
		l := cp.BuildLaunch(k, inst, 0, chs, 64, true)
		views := make([]core.ArgView, 0, len(k.Args))
		for ai, a := range k.Args {
			v := core.ArgView{
				Base:   a.DS.Base,
				Full:   a.DS.Range(),
				Mode:   a.Mode,
				Ranges: make([]mem.RangeSet, *chiplets),
			}
			for slot, c := range chs {
				v.Ranges[c] = l.ArgRanges[ai][slot]
			}
			views = append(views, v)
		}
		ops := table.OnKernelLaunch(views)
		fmt.Printf("  #%-3d %-24s -> %d ops", inst, k.Name, len(ops))
		for _, op := range ops {
			kind := "acquire"
			if op.Flush {
				kind = "release"
			}
			fmt.Printf(" [%s c%d]", kind, op.Chiplet)
		}
		fmt.Println()
	}
	fmt.Printf("\n%s", table)
}

// runAudit executes the workload under CPElide with tracing enabled and
// prints the elision audit log: what every kernel boundary issued vs.
// elided, per chiplet, and a run summary.
func runAudit(w *kernels.Workload, chiplets, launches int, showTable bool) {
	rec := trace.New(0)
	rep, err := cpelide.Run(cpelide.DefaultConfig(chiplets), w, cpelide.Options{
		Protocol: cpelide.ProtocolCPElide,
		Trace:    rec,
	})
	if err != nil {
		log.Fatal(err)
	}

	audits := rec.Audits()
	fmt.Printf("%s under CPElide on %d chiplets: %d dynamic kernels, %d cycles, %d stale reads\n\n",
		w.Name, chiplets, rep.Kernels, rep.Cycles, rep.StaleReads)
	fmt.Printf("elision audit log (first %d of %d boundaries):\n", min(launches, len(audits)), len(audits))
	var acqI, relI, acqE, relE uint64
	for i, a := range audits {
		acqI += a.AcquiresIssued
		relI += a.ReleasesIssued
		acqE += a.AcquiresElided
		relE += a.ReleasesElided
		if i >= launches {
			continue
		}
		var ops []string
		for _, d := range a.Decisions {
			switch {
			case d.ReleaseIssued && d.AcquireIssued:
				ops = append(ops, fmt.Sprintf("c%d:rel+acq", d.Chiplet))
			case d.ReleaseIssued:
				ops = append(ops, fmt.Sprintf("c%d:rel", d.Chiplet))
			case d.AcquireIssued:
				ops = append(ops, fmt.Sprintf("c%d:acq", d.Chiplet))
			}
		}
		issued := strings.Join(ops, " ")
		if issued == "" {
			issued = "all elided"
		}
		fmt.Printf("  @%-10d #%-3d %-24s issued[%s]  elided acq/rel %d/%d\n",
			a.Ts, a.Inst, a.Kernel, issued, a.AcquiresElided, a.ReleasesElided)
		if showTable && a.Table != "" {
			for _, line := range strings.Split(strings.TrimRight(a.Table, "\n"), "\n") {
				fmt.Printf("      %s\n", line)
			}
		}
	}
	fmt.Printf("\ntotals: acquires issued/elided %d/%d, releases issued/elided %d/%d\n",
		acqI, acqE, relI, relE)
	fmt.Printf("trace: %d events recorded\n", rec.Len())
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
