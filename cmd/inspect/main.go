// Command inspect prints what the global command processor sees for a
// benchmark: its data structures, the per-kernel argument metadata
// (modes, patterns, per-chiplet ranges), the dynamic kernel sequence, and a
// dry-run of the Chiplet Coherence Table's decisions for the first launches.
//
// Usage:
//
//	inspect -workload hotspot3D
//	inspect -workload sssp -launches 8 -chiplets 4
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cp"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("inspect: ")
	var (
		name     = flag.String("workload", "square", "benchmark name")
		chiplets = flag.Int("chiplets", 4, "chiplet count for partitioning")
		launches = flag.Int("launches", 6, "number of launches to dry-run through the table")
		scale    = flag.Float64("scale", 1.0, "footprint scale")
	)
	flag.Parse()

	alloc := kernels.NewAllocator(0x1000_0000, 4096)
	w, err := workloads.Build(*name, alloc, workloads.Params{Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s (%s reuse) — %d structures, %d dynamic kernels, %.1f MB footprint\n\n",
		w.Name, w.Class, len(w.Structures), len(w.Sequence),
		float64(w.FootprintBytes())/(1<<20))

	fmt.Println("data structures:")
	for _, d := range w.Structures {
		fmt.Printf("  %-12s base=%#x  %8.2f MB  elem=%dB\n",
			d.Name, d.Base, float64(d.Bytes)/(1<<20), d.ElemSize)
	}

	fmt.Println("\nstatic kernels:")
	seen := map[*kernels.Kernel]bool{}
	for _, k := range w.Sequence {
		if seen[k] {
			continue
		}
		seen[k] = true
		fmt.Printf("  %-24s WGs=%-4d compute/WG=%-6d LDS/WG=%d\n",
			k.Name, k.WGs, k.ComputePerWG, k.LDSBytesPerWG)
		for _, a := range k.Args {
			extra := ""
			switch a.Pattern {
			case kernels.Stencil:
				extra = fmt.Sprintf(" halo=%d", a.HaloLines)
			case kernels.Indirect:
				extra = fmt.Sprintf(" touches=%d hot=%.2f", a.TouchesPerLine, a.HotFraction)
			}
			fmt.Printf("    %-12s %-4s %-10s%s\n", a.DS.Name, a.Mode, a.Pattern, extra)
		}
	}

	fmt.Printf("\nChiplet Coherence Table dry-run (%d chiplets, first %d launches):\n",
		*chiplets, *launches)
	fmt.Println("  (annotation metadata only — without page-placement knowledge the")
	fmt.Println("  table is more conservative than in a full simulation)")
	table := core.NewTable(core.Config{Chiplets: *chiplets})
	chs := make([]int, *chiplets)
	for i := range chs {
		chs[i] = i
	}
	for inst, k := range w.Sequence {
		if inst >= *launches {
			break
		}
		l := cp.BuildLaunch(k, inst, 0, chs, 64, true)
		views := make([]core.ArgView, 0, len(k.Args))
		for ai, a := range k.Args {
			v := core.ArgView{
				Base:   a.DS.Base,
				Full:   a.DS.Range(),
				Mode:   a.Mode,
				Ranges: make([]mem.RangeSet, *chiplets),
			}
			for slot, c := range chs {
				v.Ranges[c] = l.ArgRanges[ai][slot]
			}
			views = append(views, v)
		}
		ops := table.OnKernelLaunch(views)
		fmt.Printf("  #%-3d %-24s -> %d ops", inst, k.Name, len(ops))
		for _, op := range ops {
			kind := "acquire"
			if op.Flush {
				kind = "release"
			}
			fmt.Printf(" [%s c%d]", kind, op.Chiplet)
		}
		fmt.Println()
	}
	fmt.Printf("\n%s", table)
}
