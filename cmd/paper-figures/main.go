// Command paper-figures regenerates every table and figure of the CPElide
// paper's evaluation section and prints the series the paper plots.
//
// Every simulation point fans out across the experiment farm's worker
// pool, and points shared between figures (e.g. the 4-chiplet Baseline
// run) hit the farm's content-addressed cache instead of re-simulating.
//
// Usage:
//
//	paper-figures                 # everything (minutes)
//	paper-figures -only fig8 -chiplets 4
//	paper-figures -scale 0.25     # quick pass at reduced footprints
//	paper-figures -workers 1      # serial execution (same bytes, slower)
//	paper-figures -farm-trace farm.json   # Perfetto timeline of the farm
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/farm"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paper-figures: ")
	var (
		only     = flag.String("only", "", "comma-separated subset: fig2,fig8,fig9,fig10,table2,scaling,multistream,ablations,extensions")
		scale    = flag.Float64("scale", 1.0, "workload footprint scale")
		iters    = flag.Int("iters", 0, "override iterative workloads' iteration count")
		chiplets = flag.String("chiplets", "2,4,6,7", "chiplet counts for fig8")
		loads    = flag.String("workloads", "", "comma-separated benchmark subset")
		asJSON   = flag.Bool("json", false, "emit results as JSON instead of text tables")
		workers  = flag.Int("workers", 0, "farm worker goroutines (0 = all CPUs, 1 = serial)")
		farmTr   = flag.String("farm-trace", "", "write a Chrome/Perfetto trace of farm activity to this file")
		farmSt   = flag.Bool("farm-stats", false, "print farm cache/run counters on exit")
	)
	flag.Parse()
	emitJSON = *asJSON

	var rec *trace.Recorder
	if *farmTr != "" {
		rec = trace.New(1 << 20)
	}
	eng := farm.New(farm.Options{Workers: *workers, Trace: rec})
	defer eng.Close()

	p := experiments.Params{Scale: *scale, Iters: *iters, Farm: eng}
	if *loads != "" {
		p.Workloads = strings.Split(*loads, ",")
	}
	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	if sel("fig2") {
		show(experiments.Figure2(p))
	}
	if sel("fig8") {
		var ns []int
		for _, s := range strings.Split(*chiplets, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil {
				log.Fatalf("bad -chiplets value %q", s)
			}
			ns = append(ns, n)
		}
		results, err := experiments.Figure8(p, ns...)
		if err != nil {
			log.Fatal(err)
		}
		for _, n := range ns {
			show(results[n], nil)
		}
	}
	if sel("fig9") {
		show(experiments.Figure9(p))
	}
	if sel("fig10") {
		show(experiments.Figure10(p))
	}
	if sel("table2") {
		show(experiments.TableII(p))
	}
	if sel("scaling") {
		show(experiments.ScalingStudy(p))
	}
	if sel("multistream") {
		show(experiments.MultiStream(p))
	}
	if sel("ablations") {
		show(experiments.HMGWriteBack(p))
		show(experiments.RangeOps(p))
		show(experiments.AnnotationGranularity(p))
		show(experiments.TableSize(p))
		show(experiments.DirGranularity(p))
	}
	if sel("extensions") {
		show(experiments.DriverManaged(p))
		show(experiments.PagePlacement(p))
		show(experiments.InferredAnnotations(p))
		show(experiments.Scheduling(p))
		show(experiments.KernelFusion(p))
		show(experiments.RemoteBankComparison(p))
		show(experiments.MGPU(p))
	}

	if *farmTr != "" {
		if err := rec.WriteChromeFile(*farmTr); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote farm trace to %s", *farmTr)
	}
	if *farmSt {
		c := eng.Counters()
		fmt.Fprintf(os.Stderr, "farm: jobs=%d runs=%d cache-hits=%d dedup-waits=%d evictions=%d\n",
			c.Jobs, c.Runs, c.CacheHits, c.DedupWaits, c.Evictions)
	}
}

var emitJSON bool

func show(res *experiments.Result, err error) {
	if err != nil {
		log.Fatal(err)
	}
	if emitJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Println(res)
}
