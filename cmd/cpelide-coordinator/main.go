// Command cpelide-coordinator fronts a fleet of cpelide-server workers as
// one experiment farm: jobs are routed by content hash through a Maglev
// table, dead workers are detected by health polling, and their unfinished
// jobs are replayed onto the survivors. Workers register themselves at
// startup (cpelide-server -coordinator) or via POST /v1/workers/register.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/journal"
	"repro/internal/metrics"
)

func main() {
	var (
		addr          = flag.String("addr", ":8070", "listen address")
		healthEvery   = flag.Duration("health-interval", 250*time.Millisecond, "worker health-probe period")
		failThreshold = flag.Int("fail-threshold", 2, "consecutive failed probes before a worker is marked dead")
		proxyTimeout  = flag.Duration("proxy-timeout", 30*time.Second, "per-request bound for proxied calls")
		tableSize     = flag.Uint64("maglev-m", 0, "Maglev table size (prime; 0 = 65537)")
		journalPath   = flag.String("journal", "", "write-ahead journal path; restart over the same file recovers unfinished jobs and worker membership (empty = no journal)")
		hedgeAfter    = flag.Duration("hedge-after", 0, "re-issue a slow submit to the next backend after this delay (0 = no hedging)")
		hedgePct      = flag.Float64("hedge-percentile", 0.99, "raise the hedge delay to this observed submit-latency quantile")
		logJSON       = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	)
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler).With("component", "cpelide-coordinator")

	var jnl *journal.Journal
	if *journalPath != "" {
		var err error
		jnl, err = journal.Open(*journalPath, journal.Options{})
		if err != nil {
			logger.Error("open journal", "path", *journalPath, "err", err)
			os.Exit(1)
		}
		st := jnl.Stats()
		logger.Info("journal open", "path", *journalPath,
			"recovered_jobs", st.RecoveredJobs, "recovered_workers", st.RecoveredWorkers,
			"truncated_bytes", st.TruncatedBytes)
	}

	reg := metrics.NewRegistry()
	coord, err := cluster.NewCoordinator(cluster.Options{
		TableSize:       *tableSize,
		HealthInterval:  *healthEvery,
		FailThreshold:   *failThreshold,
		ProxyTimeout:    *proxyTimeout,
		Metrics:         reg,
		Logger:          logger,
		Journal:         jnl,
		HedgeAfter:      *hedgeAfter,
		HedgePercentile: *hedgePct,
	})
	if err != nil {
		logger.Error("start coordinator", "err", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: coord.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "health_interval", *healthEvery)

	select {
	case err := <-errc:
		logger.Error("listener failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("signal received, shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("http shutdown", "err", err)
	}
	coord.Close()
}
