// Command cpelide-coordinator fronts a fleet of cpelide-server workers as
// one experiment farm: jobs are routed by content hash through a Maglev
// table, dead workers are detected by health polling, and their unfinished
// jobs are replayed onto the survivors. Workers register themselves at
// startup (cpelide-server -coordinator) or via POST /v1/workers/register.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
)

func main() {
	var (
		addr          = flag.String("addr", ":8070", "listen address")
		healthEvery   = flag.Duration("health-interval", 250*time.Millisecond, "worker health-probe period")
		failThreshold = flag.Int("fail-threshold", 2, "consecutive failed probes before a worker is marked dead")
		proxyTimeout  = flag.Duration("proxy-timeout", 30*time.Second, "per-request bound for proxied calls")
		tableSize     = flag.Uint64("maglev-m", 0, "Maglev table size (prime; 0 = 65537)")
		logJSON       = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	)
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler).With("component", "cpelide-coordinator")

	reg := metrics.NewRegistry()
	coord, err := cluster.NewCoordinator(cluster.Options{
		TableSize:      *tableSize,
		HealthInterval: *healthEvery,
		FailThreshold:  *failThreshold,
		ProxyTimeout:   *proxyTimeout,
		Metrics:        reg,
		Logger:         logger,
	})
	if err != nil {
		logger.Error("start coordinator", "err", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: coord.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "health_interval", *healthEvery)

	select {
	case err := <-errc:
		logger.Error("listener failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("signal received, shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("http shutdown", "err", err)
	}
	coord.Close()
}
