// Command cpelide-sim runs one benchmark (or all of them) on the simulated
// multi-chiplet GPU under one or more coherence configurations and prints a
// comparison table.
//
// Usage:
//
//	cpelide-sim -workload babelstream -chiplets 4
//	cpelide-sim -all -chiplets 4 -scale 0.5
//	cpelide-sim -workload bfs -protocols Baseline,CPElide,HMG -v
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro"
	"repro/internal/stats"
	"repro/internal/workloads"
)

var protocolByName = map[string]cpelide.Protocol{
	"baseline": cpelide.ProtocolBaseline,
	"cpelide":  cpelide.ProtocolCPElide,
	"hmg":      cpelide.ProtocolHMG,
	"hmg-wb":   cpelide.ProtocolHMGWriteBack,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpelide-sim: ")
	var (
		workload  = flag.String("workload", "", "benchmark name (see -list)")
		all       = flag.Bool("all", false, "run every benchmark")
		list      = flag.Bool("list", false, "list benchmarks and exit")
		chiplets  = flag.Int("chiplets", 4, "number of chiplets (1 = monolithic equivalent of 4)")
		scale     = flag.Float64("scale", 1.0, "footprint scale factor")
		iters     = flag.Int("iters", 0, "override iterative workloads' iteration count")
		protoList = flag.String("protocols", "Baseline,CPElide,HMG", "comma-separated protocols")
		verbose   = flag.Bool("v", false, "print per-run counter sheets")
	)
	flag.Parse()

	if *list {
		for _, s := range workloads.All() {
			fmt.Printf("%-16s %-18s input: %s\n", s.Name, "("+s.Class.String()+")", s.Input)
		}
		return
	}

	var protos []cpelide.Protocol
	for _, name := range strings.Split(*protoList, ",") {
		p, ok := protocolByName[strings.ToLower(strings.TrimSpace(name))]
		if !ok {
			log.Fatalf("unknown protocol %q (want Baseline, CPElide, HMG, HMG-WB)", name)
		}
		protos = append(protos, p)
	}

	var names []string
	switch {
	case *all:
		names = workloads.Names()
	case *workload != "":
		names = []string{*workload}
	default:
		flag.Usage()
		os.Exit(2)
	}

	params := workloads.Params{Scale: *scale, Iters: *iters}
	var cfg cpelide.Config
	if *chiplets == 1 {
		cfg = cpelide.MonolithicConfig(4)
	} else {
		cfg = cpelide.DefaultConfig(*chiplets)
	}

	fmt.Printf("%-16s %10s %14s %10s %9s %12s %8s\n",
		"workload", "protocol", "cycles", "speedup", "energy", "flits", "stale")
	for _, name := range names {
		var base *cpelide.Report
		for _, p := range protos {
			alloc := cpelide.NewAllocator(cfg.PageSize)
			w, err := workloads.Build(name, alloc, params)
			if err != nil {
				log.Fatal(err)
			}
			rep, err := cpelide.Run(cfg, w, cpelide.Options{Protocol: p})
			if err != nil {
				log.Fatal(err)
			}
			if base == nil {
				base = rep
			}
			fmt.Printf("%-16s %10s %14d %9.3fx %9.3f %12d %8d\n",
				name, rep.Protocol, rep.Cycles, rep.Speedup(base),
				cpelide.EnergyRatio(rep, base), rep.TotalFlits(), rep.StaleReads)
			if *verbose {
				fmt.Println(rep.Sheet)
				fmt.Printf("  L2 hit rate: %.1f%%  elided acq/rel: %d/%d\n",
					100*stats.Ratio(rep.Sheet.Get(stats.L2Hits), rep.Sheet.Get(stats.L2Accesses)),
					rep.Sheet.Get(stats.AcquiresElided), rep.Sheet.Get(stats.ReleasesElided))
			}
		}
	}
}
