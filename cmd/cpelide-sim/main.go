// Command cpelide-sim runs one benchmark (or all of them) on the simulated
// multi-chiplet GPU under one or more coherence configurations and prints a
// comparison table.
//
// Usage:
//
//	cpelide-sim -workload babelstream -chiplets 4
//	cpelide-sim -all -chiplets 4 -scale 0.5
//	cpelide-sim -workload bfs -protocols Baseline,CPElide,HMG -v
//	cpelide-sim -workload babelstream -trace out.json      # Perfetto timeline
//	cpelide-sim -workload babelstream -per-kernel          # per-kernel table
//	cpelide-sim -all -json > results.json                  # machine-readable
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro"
	"repro/internal/stats"
	"repro/internal/workloads"
)

var protocolByName = map[string]cpelide.Protocol{
	"baseline": cpelide.ProtocolBaseline,
	"cpelide":  cpelide.ProtocolCPElide,
	"hmg":      cpelide.ProtocolHMG,
	"hmg-wb":   cpelide.ProtocolHMGWriteBack,
}

// runJSON is one run's machine-readable record (-json mode): the headline
// comparison columns plus the full counter sheet, so sweeps and CI can diff
// results without scraping the text table.
type runJSON struct {
	Workload    string                 `json:"workload"`
	Protocol    string                 `json:"protocol"`
	Chiplets    int                    `json:"chiplets"`
	Cycles      uint64                 `json:"cycles"`
	Speedup     float64                `json:"speedup"`
	EnergyRatio float64                `json:"energy_ratio"`
	FlitsL1L2   uint64                 `json:"flits_l1_l2"`
	FlitsL2L3   uint64                 `json:"flits_l2_l3"`
	FlitsRemote uint64                 `json:"flits_remote"`
	TotalFlits  uint64                 `json:"total_flits"`
	StaleReads  uint64                 `json:"stale_reads"`
	Kernels     uint64                 `json:"kernels"`
	Accesses    uint64                 `json:"accesses"`
	Sheet       *cpelide.Sheet         `json:"sheet"`
	PerKernel   []cpelide.KernelStats  `json:"per_kernel,omitempty"`
	Faults      *cpelide.FaultCounters `json:"faults,omitempty"`
	Profile     *cpelide.PhaseProfile  `json:"profile,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpelide-sim: ")
	var (
		workload   = flag.String("workload", "", "benchmark name (see -list)")
		all        = flag.Bool("all", false, "run every benchmark")
		list       = flag.Bool("list", false, "list benchmarks and exit")
		chiplets   = flag.Int("chiplets", 4, "number of chiplets (1 = monolithic equivalent of 4)")
		scale      = flag.Float64("scale", 1.0, "footprint scale factor")
		iters      = flag.Int("iters", 0, "override iterative workloads' iteration count")
		protoList  = flag.String("protocols", "Baseline,CPElide,HMG", "comma-separated protocols")
		verbose    = flag.Bool("v", false, "print per-run counter sheets")
		tracePath  = flag.String("trace", "", "write each run's timeline as Chrome trace-event JSON (open in Perfetto)")
		traceLimit = flag.Int("trace-limit", 0, "ring-buffer the trace to the most recent N events (0 = keep all)")
		perKernel  = flag.Bool("per-kernel", false, "print a per-kernel cycle/counter breakdown for every run")
		jsonOut    = flag.Bool("json", false, "emit the full comparison as JSON on stdout instead of the text table")
		faultSpec  = flag.String("faults", "", "fault-injection spec, e.g. drop=0.1,delay=0.05,link=0.01,parity=0.002 (see package faults)")
		faultSeed  = flag.Uint64("fault-seed", 1, "seed for the deterministic fault schedule")
		profile    = flag.Bool("profile", false, "sample host wall-time per simulator phase; table goes to stderr (stdout stays byte-identical), -json adds a profile field")
	)
	flag.Parse()

	var faultCfg *cpelide.FaultConfig
	if *faultSpec != "" {
		var err error
		faultCfg, err = cpelide.ParseFaultSpec(*faultSpec)
		if err != nil {
			log.Fatal(err)
		}
		faultCfg.Seed = *faultSeed
	}

	if *list {
		for _, s := range workloads.All() {
			fmt.Printf("%-16s %-18s input: %s\n", s.Name, "("+s.Class.String()+")", s.Input)
		}
		return
	}

	var protos []cpelide.Protocol
	for _, name := range strings.Split(*protoList, ",") {
		p, ok := protocolByName[strings.ToLower(strings.TrimSpace(name))]
		if !ok {
			log.Fatalf("unknown protocol %q (want Baseline, CPElide, HMG, HMG-WB)", name)
		}
		protos = append(protos, p)
	}

	var names []string
	switch {
	case *all:
		names = workloads.Names()
	case *workload != "":
		names = []string{*workload}
	default:
		flag.Usage()
		os.Exit(2)
	}

	params := workloads.Params{Scale: *scale, Iters: *iters}
	var cfg cpelide.Config
	if *chiplets == 1 {
		cfg = cpelide.MonolithicConfig(4)
	} else {
		cfg = cpelide.DefaultConfig(*chiplets)
	}

	singleRun := len(names) == 1 && len(protos) == 1
	var jsonRuns []runJSON
	if !*jsonOut {
		fmt.Printf("%-16s %10s %14s %10s %9s %12s %8s\n",
			"workload", "protocol", "cycles", "speedup", "energy", "flits", "stale")
	}
	for _, name := range names {
		var base *cpelide.Report
		for _, p := range protos {
			alloc := cpelide.NewAllocator(cfg.PageSize)
			w, err := workloads.Build(name, alloc, params)
			if err != nil {
				log.Fatal(err)
			}
			opt := cpelide.Options{Protocol: p, PerKernelStats: *perKernel, Faults: faultCfg}
			var rec *cpelide.TraceRecorder
			if *tracePath != "" {
				rec = cpelide.NewTrace(*traceLimit)
				opt.Trace = rec
			}
			if *profile {
				opt.Profiler = cpelide.NewPhaseProfiler(0)
			}
			rep, err := cpelide.Run(cfg, w, opt)
			if err != nil {
				log.Fatal(err)
			}
			if faultCfg != nil {
				// Under injection the run is only meaningful if degradation
				// preserved coherence: any stale read is a protocol bug.
				if err := rep.CheckConsistency(); err != nil {
					log.Fatalf("%s/%s: %v", name, rep.Protocol, err)
				}
			}
			if base == nil {
				base = rep
			}
			l1l2, l2l3, remote := rep.Flits()
			if *jsonOut {
				jsonRuns = append(jsonRuns, runJSON{
					Workload:    name,
					Protocol:    rep.Protocol,
					Chiplets:    rep.Chiplets,
					Cycles:      rep.Cycles,
					Speedup:     rep.Speedup(base),
					EnergyRatio: cpelide.EnergyRatio(rep, base),
					FlitsL1L2:   l1l2,
					FlitsL2L3:   l2l3,
					FlitsRemote: remote,
					TotalFlits:  rep.TotalFlits(),
					StaleReads:  rep.StaleReads,
					Kernels:     rep.Kernels,
					Accesses:    rep.Accesses,
					Sheet:       rep.Sheet,
					PerKernel:   rep.PerKernel,
					Faults:      rep.Faults,
					Profile:     rep.Profile,
				})
			} else {
				fmt.Printf("%-16s %10s %14d %9.3fx %9.3f %12d %8d\n",
					name, rep.Protocol, rep.Cycles, rep.Speedup(base),
					cpelide.EnergyRatio(rep, base), rep.TotalFlits(), rep.StaleReads)
				if fc := rep.Faults; fc != nil {
					fmt.Printf("  faults: %d req-drops, %d ack-drops, %d ack-delays, %d link-windows, %d parity; watchdog: %d retries, %d degradations\n",
						fc.ReqDrops, fc.AckDrops, fc.AckDelays, fc.LinkWindows, fc.ParityErrors, fc.Retries, fc.Degradations)
				}
				if *verbose {
					fmt.Println(rep.Sheet)
					fmt.Printf("  L2 hit rate: %.1f%%  elided acq/rel: %d/%d\n",
						100*stats.Ratio(rep.Sheet.Get(stats.L2Hits), rep.Sheet.Get(stats.L2Accesses)),
						rep.Sheet.Get(stats.AcquiresElided), rep.Sheet.Get(stats.ReleasesElided))
				}
				if *perKernel {
					printPerKernel(rep)
				}
			}
			if rep.Profile != nil {
				// Wall-clock data goes to stderr so stdout stays
				// byte-identical across repeated runs.
				fmt.Fprintf(os.Stderr, "%s/%s %s", name, rep.Protocol, rep.Profile)
			}
			if rec != nil {
				out := *tracePath
				if !singleRun {
					out = perRunPath(out, name, rep.Protocol)
				}
				if err := rec.WriteChromeFile(out); err != nil {
					log.Fatalf("writing trace: %v", err)
				}
				if !*jsonOut {
					fmt.Printf("  trace: %s (%d events", out, rec.Len())
					if d := rec.Dropped(); d > 0 {
						fmt.Printf(", %d dropped by ring buffer", d)
					}
					fmt.Println(")")
				}
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonRuns); err != nil {
			log.Fatal(err)
		}
	}
}

// printPerKernel renders the Report.PerKernel breakdown and the latency
// histograms for one run.
func printPerKernel(rep *cpelide.Report) {
	fmt.Printf("  %4s %-24s %12s %10s %8s %10s %10s\n",
		"#", "kernel", "cycles", "sync", "l2hit%", "flits", "elided")
	for _, ks := range rep.PerKernel {
		s := ks.Sheet
		flits := s.Get(stats.FlitsL1L2) + s.Get(stats.FlitsL2L3) + s.Get(stats.FlitsRemote)
		elided := s.Get(stats.AcquiresElided) + s.Get(stats.ReleasesElided)
		inst := fmt.Sprintf("%d", ks.Inst)
		if ks.Inst < 0 {
			inst = "-"
		}
		fmt.Printf("  %4s %-24s %12d %10d %7.1f%% %10d %10d\n",
			inst, ks.Kernel, ks.Cycles, ks.SyncCycles,
			100*stats.Ratio(s.Get(stats.L2Hits), s.Get(stats.L2Accesses)),
			flits, elided)
	}
	fmt.Printf("  %s  %s", rep.KernelDur, rep.SyncStall)
}

// perRunPath inserts the run identity before the path's extension so a
// multi-run invocation writes one trace file per (workload, protocol).
func perRunPath(path, workload, protocol string) string {
	ext := filepath.Ext(path)
	return fmt.Sprintf("%s.%s.%s%s",
		strings.TrimSuffix(path, ext), workload, strings.ToLower(protocol), ext)
}
