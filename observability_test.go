package cpelide

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Per-kernel deltas must recombine to the run total exactly: merging every
// PerKernel entry's Sheet (sums for additive counters, maxima for peaks)
// reconstructs the run-total Sheet.
func TestPerKernelDeltasRecombine(t *testing.T) {
	for _, build := range []func(int) *Workload{smallSquare, producerConsumer} {
		w := build(5)
		for _, p := range []Protocol{ProtocolBaseline, ProtocolCPElide} {
			rep, err := Run(DefaultConfig(4), w, Options{Protocol: p, PerKernelStats: true})
			if err != nil {
				t.Fatalf("%s/%v: %v", w.Name, p, err)
			}
			if len(rep.PerKernel) != int(rep.Kernels)+1 {
				t.Fatalf("%s/%v: %d PerKernel entries for %d kernels (+1 finalize)",
					w.Name, p, len(rep.PerKernel), rep.Kernels)
			}
			last := rep.PerKernel[len(rep.PerKernel)-1]
			if last.Kernel != "(finalize)" || last.Inst != -1 {
				t.Errorf("%s/%v: trailing entry = %q inst %d", w.Name, p, last.Kernel, last.Inst)
			}
			total := stats.New()
			for _, ks := range rep.PerKernel {
				total.Merge(ks.Sheet)
			}
			if !total.Equal(rep.Sheet) {
				t.Errorf("%s/%v: recombined deltas != run total\nrecombined:\n%s\ntotal:\n%s",
					w.Name, p, total, rep.Sheet)
			}
		}
	}
}

// Tracing is observational only: enabling the recorder and per-kernel stats
// must not change a single counter.
func TestTracingChangesNoCounters(t *testing.T) {
	for _, p := range allProtocols {
		w := producerConsumer(4)
		plain, err := Run(DefaultConfig(4), w, Options{Protocol: p})
		if err != nil {
			t.Fatal(err)
		}
		rec := trace.New(0)
		traced, err := Run(DefaultConfig(4), producerConsumer(4), Options{
			Protocol: p, Trace: rec, PerKernelStats: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if plain.Cycles != traced.Cycles || plain.TotalFlits() != traced.TotalFlits() ||
			plain.StaleReads != traced.StaleReads {
			t.Errorf("%v: tracing changed headline numbers: %d/%d cycles, %d/%d flits, %d/%d stale",
				p, plain.Cycles, traced.Cycles, plain.TotalFlits(), traced.TotalFlits(),
				plain.StaleReads, traced.StaleReads)
		}
		if !plain.Sheet.Equal(traced.Sheet) {
			t.Errorf("%v: tracing changed the counter sheet\nplain:\n%s\ntraced:\n%s",
				p, plain.Sheet, traced.Sheet)
		}
		if rec.Len() == 0 {
			t.Errorf("%v: recorder captured nothing", p)
		}
	}
}

// The audit log must account for every sync.acquires_elided /
// sync.releases_elided (and issued) increment: summing the audit records
// reproduces the sheet counters exactly.
func TestAuditAccountsForElisionCounters(t *testing.T) {
	for _, build := range []func(int) *Workload{smallSquare, producerConsumer} {
		w := build(6)
		rec := trace.New(0)
		rep, err := Run(DefaultConfig(4), w, Options{Protocol: ProtocolCPElide, Trace: rec})
		if err != nil {
			t.Fatal(err)
		}
		audits := rec.Audits()
		if uint64(len(audits)) != rep.Kernels {
			t.Fatalf("%s: %d audits for %d kernels", w.Name, len(audits), rep.Kernels)
		}
		var acqI, relI, acqE, relE uint64
		for _, a := range audits {
			acqI += a.AcquiresIssued
			relI += a.ReleasesIssued
			acqE += a.AcquiresElided
			relE += a.ReleasesElided
			// Per-chiplet decisions agree with the boundary's issue counts.
			var decAcq, decRel uint64
			for _, d := range a.Decisions {
				if d.AcquireIssued {
					decAcq++
				}
				if d.ReleaseIssued {
					decRel++
				}
			}
			if decAcq != a.AcquiresIssued || decRel != a.ReleasesIssued {
				t.Errorf("%s #%d: decisions %d acq / %d rel vs counts %d/%d",
					w.Name, a.Inst, decAcq, decRel, a.AcquiresIssued, a.ReleasesIssued)
			}
		}
		s := rep.Sheet
		if acqI != s.Get(stats.AcquiresIssued) || relI != s.Get(stats.ReleasesIssued) ||
			acqE != s.Get(stats.AcquiresElided) || relE != s.Get(stats.ReleasesElided) {
			t.Errorf("%s: audit totals acq %d/%d rel %d/%d != sheet acq %d/%d rel %d/%d (issued/elided)",
				w.Name, acqI, acqE, relI, relE,
				s.Get(stats.AcquiresIssued), s.Get(stats.AcquiresElided),
				s.Get(stats.ReleasesIssued), s.Get(stats.ReleasesElided))
		}
	}
}

// The Chrome trace must contain a span for every launched kernel and
// flush/invalidate events on every chiplet under the Baseline protocol
// (which synchronizes GPU-wide at each boundary).
func TestChromeTraceCompleteness(t *testing.T) {
	const chiplets = 4
	rec := trace.New(0)
	rep, err := Run(DefaultConfig(chiplets), producerConsumer(3), Options{
		Protocol: ProtocolBaseline, Trace: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   uint64 `json:"ts"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	var kernelSpans uint64
	releaseChiplets := map[int]bool{}
	acquireChiplets := map[int]bool{}
	var last uint64
	for _, e := range parsed.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if e.Ts < last {
			t.Fatalf("timestamps not monotone: %d after %d", e.Ts, last)
		}
		last = e.Ts
		switch {
		case e.Pid == 1 && e.Ph == "X":
			kernelSpans++
		case e.Pid == 2 && e.Name == "release":
			releaseChiplets[e.Tid] = true
		case e.Pid == 2 && e.Name == "acquire":
			acquireChiplets[e.Tid] = true
		}
	}
	if kernelSpans != rep.Kernels {
		t.Errorf("%d kernel spans in trace for %d launched kernels", kernelSpans, rep.Kernels)
	}
	for c := 0; c < chiplets; c++ {
		if !releaseChiplets[c] {
			t.Errorf("no flush (release) event for chiplet %d", c)
		}
		if !acquireChiplets[c] {
			t.Errorf("no invalidate (acquire) event for chiplet %d", c)
		}
	}
}
