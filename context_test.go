// Tests for the context-aware run façade: cancellation stops a simulation
// at the next kernel boundary, and a background context behaves exactly
// like the context-free entry points.
package cpelide_test

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"repro"
	"repro/internal/workloads"
)

func buildFor(t *testing.T, cfg cpelide.Config, name string, p workloads.Params) *cpelide.Workload {
	t.Helper()
	alloc := cpelide.NewAllocator(cfg.PageSize)
	w, err := workloads.Build(name, alloc, p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRunContextCanceledBeforeStart(t *testing.T) {
	cfg := cpelide.DefaultConfig(4)
	w := buildFor(t, cfg, "square", workloads.Params{Scale: 0.1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := cpelide.RunContext(ctx, cfg, w, cpelide.Options{})
	if rep != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("got (%v, %v), want (nil, context.Canceled)", rep, err)
	}
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	cfg := cpelide.DefaultConfig(4)
	p := workloads.Params{Scale: 0.1}
	a, err := cpelide.Run(cfg, buildFor(t, cfg, "square", p), cpelide.Options{Protocol: cpelide.ProtocolCPElide})
	if err != nil {
		t.Fatal(err)
	}
	b, err := cpelide.RunContext(context.Background(), cfg,
		buildFor(t, cfg, "square", p), cpelide.Options{Protocol: cpelide.ProtocolCPElide})
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("RunContext(Background) report differs from Run")
	}
}

func TestRunStreamsContextCanceled(t *testing.T) {
	cfg := cpelide.DefaultConfig(4)
	alloc := cpelide.NewAllocator(cfg.PageSize)
	w1, err := workloads.Build("square", alloc, workloads.Params{Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	w2, err := workloads.Build("btree", alloc, workloads.Params{Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = cpelide.RunStreamsContext(ctx, cfg, []cpelide.StreamSpec{
		{Workload: w1, Chiplets: []int{0, 1}},
		{Workload: w2, Chiplets: []int{2, 3}},
	}, cpelide.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
