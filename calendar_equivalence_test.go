package cpelide

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/workloads"
)

// runReportJSON executes one workload under the given options and returns
// the marshaled Report.
func runReportJSON(t *testing.T, name string, scale float64, opt Options) []byte {
	t.Helper()
	cfg := DefaultConfig(4)
	alloc := NewAllocator(cfg.PageSize)
	w, err := workloads.Build(name, alloc, workloads.Params{Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(cfg, w, opt)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestCalendarEquivalenceWorkloads is the differential lock on the timer
// wheel: every workload x protocol cell must produce a byte-identical JSON
// report whether the event engine runs on the wheel or on the reference
// binary heap. The two calendars are only interchangeable if they deliver
// events in the exact same (time, schedule-order) sequence, so any wheel
// bucketing, re-sort, or rebase bug shows up here as a report diff.
func TestCalendarEquivalenceWorkloads(t *testing.T) {
	protocols := []Protocol{ProtocolBaseline, ProtocolCPElide, ProtocolHMG}
	names := []string{"square", "babelstream"}
	for _, name := range names {
		for _, p := range protocols {
			t.Run(fmt.Sprintf("%s/%v", name, p), func(t *testing.T) {
				opt := Options{Protocol: p, PerKernelStats: true}
				opt.Calendar = CalendarHeap
				heap := runReportJSON(t, name, 0.1, opt)
				opt.Calendar = CalendarWheel
				wheel := runReportJSON(t, name, 0.1, opt)
				if !bytes.Equal(heap, wheel) {
					t.Errorf("heap and wheel calendars produced different reports\nheap:  %.300s\nwheel: %.300s",
						heap, wheel)
				}
			})
		}
	}
}

// TestCalendarEquivalenceGeneratedDAGs extends the differential lock to
// randomized multi-stream kernel DAGs, which exercise concurrent streams —
// the case where event ordering (same-cycle FIFO ties across streams)
// actually decides the simulation outcome.
func TestCalendarEquivalenceGeneratedDAGs(t *testing.T) {
	protocols := []Protocol{ProtocolBaseline, ProtocolCPElide, ProtocolHMG}
	for _, seed := range []uint64{3, 71, 424242} {
		c := gen.Generate(seed, gen.Config{Chiplets: 4, MaxKernels: 6, MaxStreams: 3})
		for _, p := range protocols {
			t.Run(fmt.Sprintf("%s/%v", c.Name, p), func(t *testing.T) {
				run := func(k CalendarKind) []byte {
					opt := Options{Protocol: p, Placement: c.Placement, PerKernelStats: true, Calendar: k}
					rep, err := RunStreams(DefaultConfig(4), c.Specs, opt)
					if err != nil {
						t.Fatal(err)
					}
					buf, err := json.Marshal(rep)
					if err != nil {
						t.Fatal(err)
					}
					return buf
				}
				heap, wheel := run(CalendarHeap), run(CalendarWheel)
				if !bytes.Equal(heap, wheel) {
					t.Errorf("heap and wheel calendars diverged on generated DAG %s", c.Name)
				}
			})
		}
	}
}
