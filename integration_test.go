package cpelide

import (
	"testing"

	"repro/internal/kernels"
)

// smallSquare builds a Square-like iterative workload small enough for unit
// tests: C = A*A repeated, with full range annotations.
func smallSquare(iters int) *Workload {
	alloc := NewAllocator(4096)
	a := alloc.Alloc("A", 64*1024, 4) // 256 KiB
	c := alloc.Alloc("C", 64*1024, 4)
	k := &Kernel{
		Name: "square",
		Args: []Arg{
			{DS: c, Mode: ReadWrite, Pattern: Linear},
			{DS: a, Mode: Read, Pattern: Linear},
		},
		WGs:          128,
		ComputePerWG: 100,
	}
	init := &Kernel{
		Name:         "init",
		Args:         []Arg{{DS: a, Mode: ReadWrite, Pattern: Linear}},
		WGs:          128,
		ComputePerWG: 50,
	}
	w := &Workload{
		Name:       "square-test",
		Structures: []*DataStructure{a, c},
		Seed:       42,
	}
	w.Sequence = append(w.Sequence, init)
	for i := 0; i < iters; i++ {
		w.Sequence = append(w.Sequence, k)
	}
	return w
}

// producerConsumer builds a workload where a structure written by one
// kernel's chiplet partition is read with a shifted partition by the next,
// forcing genuine cross-chiplet dependences that CPElide must synchronize.
func producerConsumer(iters int) *Workload {
	alloc := NewAllocator(4096)
	a := alloc.Alloc("A", 64*1024, 4)
	b := alloc.Alloc("B", 64*1024, 4)
	produce := &Kernel{
		Name: "produce",
		Args: []Arg{
			{DS: a, Mode: ReadWrite, Pattern: Linear},
			{DS: b, Mode: Read, Pattern: Linear},
		},
		WGs:          96,
		ComputePerWG: 50,
	}
	// consume reads A via an indirect pattern: every chiplet may read any
	// line of A, so the producer chiplets' dirty data must be visible.
	consume := &Kernel{
		Name: "consume",
		Args: []Arg{
			{DS: a, Mode: kernels.Read, Pattern: Indirect, TouchesPerLine: 2},
			{DS: b, Mode: ReadWrite, Pattern: Linear},
		},
		WGs:          96,
		ComputePerWG: 50,
	}
	w := &Workload{
		Name:       "producer-consumer",
		Structures: []*DataStructure{a, b},
		Seed:       7,
	}
	for i := 0; i < iters; i++ {
		w.Sequence = append(w.Sequence, produce, consume)
	}
	return w
}

var allProtocols = []Protocol{ProtocolBaseline, ProtocolCPElide, ProtocolHMG, ProtocolHMGWriteBack, ProtocolRemoteBank}

func TestSmokeAllProtocolsNoStaleReads(t *testing.T) {
	for _, build := range []func(int) *Workload{smallSquare, producerConsumer} {
		w := build(6)
		for _, p := range allProtocols {
			rep, err := Run(DefaultConfig(4), w, Options{Protocol: p})
			if err != nil {
				t.Fatalf("%s/%v: %v", w.Name, p, err)
			}
			if rep.StaleReads != 0 {
				t.Errorf("%s/%v: %d stale reads", w.Name, p, rep.StaleReads)
			}
			if rep.Cycles == 0 {
				t.Errorf("%s/%v: zero cycles", w.Name, p)
			}
			if rep.Accesses == 0 {
				t.Errorf("%s/%v: zero accesses", w.Name, p)
			}
		}
	}
}

func TestCPElideBeatsBaselineOnIterativeReuse(t *testing.T) {
	// Enough iterations that the one-time 6 us CPElide table-processing
	// exposure amortizes, as in any real iterative workload.
	w := smallSquare(60)
	base, err := Run(DefaultConfig(4), w, Options{Protocol: ProtocolBaseline})
	if err != nil {
		t.Fatal(err)
	}
	elide, err := Run(DefaultConfig(4), w, Options{Protocol: ProtocolCPElide})
	if err != nil {
		t.Fatal(err)
	}
	if elide.Cycles >= base.Cycles {
		t.Errorf("CPElide (%d cycles) not faster than Baseline (%d cycles)",
			elide.Cycles, base.Cycles)
	}
}

func TestDeterminism(t *testing.T) {
	for _, p := range allProtocols {
		a, err := Run(DefaultConfig(4), producerConsumer(4), Options{Protocol: p})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(DefaultConfig(4), producerConsumer(4), Options{Protocol: p})
		if err != nil {
			t.Fatal(err)
		}
		if a.Cycles != b.Cycles || a.TotalFlits() != b.TotalFlits() {
			t.Errorf("%v: nondeterministic: %d vs %d cycles, %d vs %d flits",
				p, a.Cycles, b.Cycles, a.TotalFlits(), b.TotalFlits())
		}
	}
}

func TestMonolithicRuns(t *testing.T) {
	rep, err := Run(MonolithicConfig(4), smallSquare(6), Options{Protocol: ProtocolBaseline})
	if err != nil {
		t.Fatal(err)
	}
	if rep.StaleReads != 0 {
		t.Errorf("monolithic: %d stale reads", rep.StaleReads)
	}
}
