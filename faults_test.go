// Randomized fault-campaign tests: sweep message-loss rates with parity
// errors and link degradation enabled, across seeds and protocols, and
// assert the robustness invariant — under any fault schedule the watchdog's
// retries and graceful degradation preserve coherence (zero stale reads)
// and every run terminates. Also pins determinism (same seed, same report)
// and the byte-identity of disabled injection.
package cpelide_test

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// campaignProtocols are the three coherence configurations every fault
// schedule is replayed under.
var campaignProtocols = []cpelide.Protocol{
	cpelide.ProtocolBaseline, cpelide.ProtocolCPElide, cpelide.ProtocolHMG,
}

func runFaulted(t testing.TB, name string, proto cpelide.Protocol, fc *cpelide.FaultConfig) *cpelide.Report {
	t.Helper()
	cfg := cpelide.DefaultConfig(4)
	alloc := cpelide.NewAllocator(cfg.PageSize)
	w, err := workloads.Build(name, alloc, workloads.Params{Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cpelide.Run(cfg, w, cpelide.Options{Protocol: proto, Faults: fc})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestFaultCampaign sweeps drop rates 0-20% with ack delays, link
// degradation, and table parity errors enabled, across seeds and the three
// protocols. Every run must complete (the watchdog's attempt bound
// guarantees termination) with zero stale reads: degradation may only err
// toward more synchronization, never less.
func TestFaultCampaign(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 3
	}
	dropRates := []float64{0, 0.05, 0.1, 0.2}

	var grand cpelide.FaultCounters
	for _, proto := range campaignProtocols {
		proto := proto
		t.Run(fmt.Sprint(proto), func(t *testing.T) {
			var total cpelide.FaultCounters
			for _, drop := range dropRates {
				for seed := 0; seed < seeds; seed++ {
					fc := &cpelide.FaultConfig{
						Seed:            uint64(seed),
						ReqDropRate:     drop,
						AckDropRate:     drop,
						AckDelayRate:    0.05,
						LinkDegradeRate: 0.02,
						TableParityRate: 0.05,
					}
					rep := runFaulted(t, "square", proto, fc)
					if err := rep.CheckConsistency(); err != nil {
						t.Fatalf("drop=%v seed=%d: %v", drop, seed, err)
					}
					if rep.Faults == nil {
						t.Fatalf("drop=%v seed=%d: enabled campaign reported no fault counters", drop, seed)
					}
					total.ReqDrops += rep.Faults.ReqDrops
					total.AckDrops += rep.Faults.AckDrops
					total.AckDelays += rep.Faults.AckDelays
					total.LinkWindows += rep.Faults.LinkWindows
					total.ParityErrors += rep.Faults.ParityErrors
					total.Retries += rep.Faults.Retries
					total.Degradations += rep.Faults.Degradations
				}
			}
			// The campaign must exercise each protocol's actual fault
			// surface (individual runs may see none). HMG is directory-based
			// write-through coherence: it issues no kernel-boundary sync
			// messages to drop and has no coherence table for parity, so
			// only link degradation applies to it.
			if proto != cpelide.ProtocolHMG {
				if total.ReqDrops == 0 || total.AckDrops == 0 || total.AckDelays == 0 {
					t.Errorf("campaign dropped/delayed no sync messages: %+v", total)
				}
				if total.Retries == 0 {
					t.Errorf("campaign never triggered the watchdog: %+v", total)
				}
			}
			if proto == cpelide.ProtocolCPElide && total.ParityErrors == 0 {
				t.Errorf("campaign hit no table parity errors: %+v", total)
			}
			grand.LinkWindows += total.LinkWindows
			grand.Degradations += total.Degradations
		})
	}
	if grand.LinkWindows == 0 {
		t.Errorf("campaign opened no link-degradation windows: %+v", grand)
	}
	if !testing.Short() && grand.Degradations == 0 {
		t.Errorf("full campaign never exercised graceful degradation: %+v", grand)
	}
}

// TestFaultDeterminism pins the reproducibility contract: a fault schedule
// is a pure function of (seed, event order), so rerunning a seed yields a
// byte-identical report, and a different seed yields a different schedule.
func TestFaultDeterminism(t *testing.T) {
	fc := func(seed uint64) *cpelide.FaultConfig {
		return &cpelide.FaultConfig{
			Seed: seed, ReqDropRate: 0.1, AckDropRate: 0.1,
			AckDelayRate: 0.05, LinkDegradeRate: 0.02, TableParityRate: 0.01,
		}
	}
	for _, proto := range campaignProtocols {
		a := marshalReport(t, runFaulted(t, "square", proto, fc(7)))
		b := marshalReport(t, runFaulted(t, "square", proto, fc(7)))
		if a != b {
			t.Errorf("%v: same fault seed produced different reports", proto)
		}
		// HMG's only fault surface is the rare link window, so two seeds
		// can legitimately coincide; the seed-sensitivity check needs a
		// protocol with sync messages to drop.
		if proto == cpelide.ProtocolHMG {
			continue
		}
		c := marshalReport(t, runFaulted(t, "square", proto, fc(8)))
		if a == c {
			t.Errorf("%v: seeds 7 and 8 produced identical reports", proto)
		}
	}
}

// TestFaultsDisabledByteIdentical pins the nil-safe no-op contract: a nil
// fault config, a zero config, and a config with only a seed set (no rates)
// must all produce byte-identical reports — instrumentation off is
// indistinguishable from instrumentation absent.
func TestFaultsDisabledByteIdentical(t *testing.T) {
	for _, proto := range campaignProtocols {
		base := marshalReport(t, runFaulted(t, "square", proto, nil))
		for name, fc := range map[string]*cpelide.FaultConfig{
			"zero config": {},
			"seed only":   {Seed: 5},
			"knobs only":  {MaxAttempts: 9, TimeoutCycles: 77},
		} {
			if got := marshalReport(t, runFaulted(t, "square", proto, fc)); got != base {
				t.Errorf("%v: disabled fault config (%s) changed the report", proto, name)
			}
		}
	}
}

func marshalReport(t testing.TB, rep *cpelide.Report) string {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// BenchmarkFaultCampaign is the CI smoke campaign: a small seeded sweep
// whose headline metrics — stale reads (must stay 0), watchdog activity,
// and the fraction of elisions CPElide retains under faults — are uploaded
// as a JSON artifact.
func BenchmarkFaultCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var stale, retries, degradations uint64
		var elidedFaulty, elidedClean uint64
		for _, proto := range campaignProtocols {
			clean := runFaulted(b, "square", proto, nil)
			for seed := 0; seed < 5; seed++ {
				fc := &cpelide.FaultConfig{
					Seed:            uint64(seed),
					ReqDropRate:     0.1,
					AckDropRate:     0.1,
					AckDelayRate:    0.05,
					LinkDegradeRate: 0.02,
					TableParityRate: 0.01,
				}
				rep := runFaulted(b, "square", proto, fc)
				stale += rep.StaleReads
				retries += rep.Faults.Retries
				degradations += rep.Faults.Degradations
				if proto == cpelide.ProtocolCPElide {
					elidedFaulty += rep.Sheet.Get(stats.AcquiresElided) + rep.Sheet.Get(stats.ReleasesElided)
					elidedClean += clean.Sheet.Get(stats.AcquiresElided) + clean.Sheet.Get(stats.ReleasesElided)
				}
			}
		}
		b.ReportMetric(float64(stale), "stale-reads")
		b.ReportMetric(float64(retries), "watchdog-retries")
		b.ReportMetric(float64(degradations), "degradations")
		if elidedClean > 0 {
			b.ReportMetric(float64(elidedFaulty)/float64(elidedClean), "elision-retained")
		}
	}
}
