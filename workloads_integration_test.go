package cpelide

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/cp"
	"repro/internal/gpu"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// buildBench constructs one of the paper's benchmarks at reduced scale.
func buildBench(t *testing.T, name string, scale float64) *Workload {
	t.Helper()
	alloc := NewAllocator(4096)
	w, err := workloads.Build(name, alloc, workloads.Params{Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestAllBenchmarksAllProtocolsCoherent is the central correctness gate:
// every Table II benchmark under every protocol and several machine shapes
// must complete with zero stale reads — i.e. no protocol ever elides a
// synchronization correctness required.
func TestAllBenchmarksAllProtocolsCoherent(t *testing.T) {
	scale := 0.1
	chiplets := []int{4}
	if !testing.Short() {
		chiplets = []int{2, 4, 7}
	}
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, n := range chiplets {
				cfg := DefaultConfig(n)
				for _, p := range allProtocols {
					w := buildBench(t, name, scale)
					rep, err := Run(cfg, w, Options{Protocol: p})
					if err != nil {
						t.Fatalf("%d chiplets / %v: %v", n, p, err)
					}
					if rep.StaleReads != 0 {
						t.Errorf("%d chiplets / %v: %d stale reads",
							n, p, rep.StaleReads)
					}
					if rep.Cycles == 0 || rep.Accesses == 0 {
						t.Errorf("%d chiplets / %v: empty run", n, p)
					}
				}
			}
		})
	}
}

// TestCPElideVariantsCoherent exercises the ablation configurations through
// full benchmarks: range-based operations, mode-only annotations, and a
// tiny Chiplet Coherence Table that forces constant eviction.
func TestCPElideVariantsCoherent(t *testing.T) {
	variants := []Options{
		{Protocol: ProtocolCPElide, CPElideRangeOps: true},
		{Protocol: ProtocolCPElide, NoRangeInfo: true},
		{Protocol: ProtocolCPElide, CPElideTableEntries: 4},
		{Protocol: ProtocolCPElide, NoRangeInfo: true, CPElideTableEntries: 4},
		{Protocol: ProtocolCPElide, SyncLatencySets: 4},
		{Protocol: ProtocolHMG, HMGDirLinesPerEntry: 1},
		{Protocol: ProtocolHMG, HMGDirEntries: 256},
	}
	names := workloads.Names()
	if testing.Short() {
		names = []string{"babelstream", "hotspot3D", "sssp", "btree"}
	}
	for _, name := range names {
		for i, opt := range variants {
			w := buildBench(t, name, 0.1)
			rep, err := Run(DefaultConfig(4), w, opt)
			if err != nil {
				t.Fatalf("%s variant %d: %v", name, i, err)
			}
			if rep.StaleReads != 0 {
				t.Errorf("%s variant %d: %d stale reads", name, i, rep.StaleReads)
			}
		}
	}
}

// TestTinyTableStillCorrectButSlower: a 4-entry table forces evictions with
// conservative synchronization; correctness must hold and elision decrease.
func TestTinyTableStillCorrectButSlower(t *testing.T) {
	w := buildBench(t, "babelstream", 0.25)
	full, err := Run(DefaultConfig(4), w, Options{Protocol: ProtocolCPElide})
	if err != nil {
		t.Fatal(err)
	}
	w2 := buildBench(t, "babelstream", 0.25)
	tiny, err := Run(DefaultConfig(4), w2, Options{Protocol: ProtocolCPElide, CPElideTableEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tiny.StaleReads != 0 {
		t.Fatalf("tiny table incoherent: %d stale reads", tiny.StaleReads)
	}
	fullOps := full.Sheet.Get(stats.ReleasesIssued) + full.Sheet.Get(stats.AcquiresIssued)
	tinyOps := tiny.Sheet.Get(stats.ReleasesIssued) + tiny.Sheet.Get(stats.AcquiresIssued)
	if tinyOps <= fullOps {
		t.Errorf("tiny table issued %d ops, full table %d — eviction sync missing",
			tinyOps, fullOps)
	}
}

// TestBrokenProtocolIsCaught: a protocol that never synchronizes must trip
// the staleness checker on a producer-consumer workload — proof that the
// checker has teeth.
func TestBrokenProtocolIsCaught(t *testing.T) {
	w := buildBench(t, "hotspot3D", 0.1)
	cfg := DefaultConfig(4)
	sheet := stats.New()
	m := must(machine.New(cfg, w.Bounds(), sheet))
	x := gpu.New(m, &elideEverything{coherence.NewBaseline(m)}, w.Seed)
	runner, err := cp.NewRunner(x, []StreamSpec{{Workload: w}}, cp.RunnerConfig{RangeInfo: true})
	if err != nil {
		t.Fatal(err)
	}
	runner.Run()
	if m.Mem.StaleReads() == 0 {
		t.Fatal("elide-everything protocol produced no stale reads; checker is blind")
	}
}

// elideEverything is deliberately broken: it never flushes or invalidates.
type elideEverything struct{ *coherence.Baseline }

func (p *elideEverything) PreLaunch(*coherence.Launch) coherence.SyncPlan {
	return coherence.SyncPlan{}
}
func (p *elideEverything) Finalize() coherence.SyncPlan { return coherence.SyncPlan{} }

// TestMultiStreamDisjointCoherent runs two concurrent streams.
func TestMultiStreamDisjointCoherent(t *testing.T) {
	alloc := NewAllocator(4096)
	w0, err := workloads.Build("square", alloc, workloads.Params{Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	w1, err := workloads.Build("hotspot3D", alloc, workloads.Params{Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range allProtocols {
		rep, err := RunStreams(DefaultConfig(4), []StreamSpec{
			{Workload: w0, Chiplets: []int{0, 1}},
			{Workload: w1, Chiplets: []int{2, 3}},
		}, Options{Protocol: p})
		if err != nil {
			t.Fatal(err)
		}
		if rep.StaleReads != 0 {
			t.Errorf("%v: %d stale reads", p, rep.StaleReads)
		}
	}
}

// TestChipletScalingTrend: CPElide's advantage over HMG grows (or at least
// does not invert) from 4 to 7 chiplets on a streaming workload, the
// Section V-C scaling claim.
func TestChipletScalingTrend(t *testing.T) {
	ratio := func(n int) float64 {
		w := buildBench(t, "square", 0.25)
		e, err := Run(DefaultConfig(n), w, Options{Protocol: ProtocolCPElide})
		if err != nil {
			t.Fatal(err)
		}
		w2 := buildBench(t, "square", 0.25)
		h, err := Run(DefaultConfig(n), w2, Options{Protocol: ProtocolHMG})
		if err != nil {
			t.Fatal(err)
		}
		return float64(h.Cycles) / float64(e.Cycles)
	}
	if r4, r7 := ratio(4), ratio(7); r7 < r4*0.9 {
		t.Errorf("CPElide-over-HMG shrank sharply with chiplets: %.3f -> %.3f", r4, r7)
	}
}

// must unwraps constructor errors in tests, where geometry is known-valid.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
