package cpelide

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/cp"
	"repro/internal/gpu"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// TestStaleDebug is a diagnostic harness: it runs one workload under
// CPElide with per-kernel stale-read attribution. Enabled manually while
// hunting coherence bugs; kept because it prints nothing when healthy.
func TestStaleDebug(t *testing.T) {
	for _, name := range []string{"hotspot", "hacc", "color", "pennant"} {
		alloc := NewAllocator(4096)
		w, err := workloads.Build(name, alloc, workloads.Params{Scale: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(4)
		sheet := stats.New()
		m := machine.New(cfg, w.Bounds(), sheet)
		proto, err := core.New(m)
		if err != nil {
			t.Fatal(err)
		}
		x := gpu.New(m, proto, w.Seed)

		cur := "?"
		reported := 0
		m.Mem.OnStale = func(line mem.Addr, obs, latest uint32) {
			if reported >= 3 {
				return
			}
			reported++
			ds := "?"
			for _, d := range w.Structures {
				if d.Range().Contains(line) {
					ds = d.Name
				}
			}
			t.Errorf("%s: stale read in kernel %s: line %#x (struct %s, off %d) observed v%d latest v%d\n%s",
				name, cur, line, ds, line-HeapBase, obs, latest, proto.Table)
		}

		chs := []int{0, 1, 2, 3}
		for inst, k := range w.Sequence {
			l := cp.BuildLaunch(k, inst, 0, chs, cfg.LineSize, true)
			cur = fmt.Sprintf("#%d %s", inst, k.Name)
			x.RunKernel(l, inst == 0)
			if reported >= 3 {
				break
			}
		}
	}
}
