package cpelide

import (
	"testing"
)

// TestStaleDebug is a diagnostic harness: it runs staleness-prone workloads
// under CPElide with the consistency oracle attached and reports both
// verdicts — the runtime staleness checker's and the oracle's — with the
// oracle's per-rule attribution (rule, line, home/writer/accessor chiplets,
// kernel) when either fires. Kept because it prints nothing when healthy
// and localizes the failing happens-before edge when not.
func TestStaleDebug(t *testing.T) {
	for _, name := range []string{"hotspot", "hacc", "color", "pennant"} {
		w := mustWorkload(t, name, 0.25)
		o := NewOracle(ProtocolCPElide)
		rep, err := Run(DefaultConfig(4), w, Options{
			Protocol: ProtocolCPElide,
			Oracle:   o,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.StaleReads == 0 && o.Violations() == 0 {
			continue
		}
		t.Errorf("%s: runtime checker: %d stale reads; oracle: %v",
			name, rep.StaleReads, o.ByRule())
		for _, v := range o.Details() {
			t.Errorf("%s: %v", name, v)
		}
	}
}
