package coherence

import (
	"testing"

	"repro/internal/config"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/stats"
)

// smallCfg returns a 4-chiplet machine cheap enough for unit tests.
func smallCfg() config.GPU {
	g := config.Default(4)
	g.CUsPerChiplet = 4
	g.L1SizeBytes = 1 << 10
	g.L2SizeBytes = 64 << 10
	g.L3SizeBytes = 128 << 10
	return g
}

func newMachine(t *testing.T, cfg config.GPU) *machine.Machine {
	t.Helper()
	bounds := mem.Range{Lo: 0x1000_0000, Hi: 0x1000_0000 + 16<<20}
	return must(machine.New(cfg, bounds, stats.New()))
}

// place homes one page for each chiplet deterministically.
func place(m *machine.Machine) (local, remote mem.Addr) {
	local = 0x1000_0000
	remote = 0x1000_0000 + 0x1000
	m.Pages.PlaceRange(mem.Range{Lo: local, Hi: local + 0x1000}, 0)
	m.Pages.PlaceRange(mem.Range{Lo: remote, Hi: remote + 0x1000}, 1)
	return
}

func TestBaselineLocalStoreIsWriteBack(t *testing.T) {
	m := newMachine(t, smallCfg())
	b := NewBaseline(m)
	local, _ := place(m)
	res := b.Access(0, 0, local, true, false)
	if res.Cycles != m.Cfg.L2LocalLatency {
		t.Errorf("local store latency = %d", res.Cycles)
	}
	if m.L2[0].DirtyLines() != 1 {
		t.Errorf("dirty lines = %d, want 1 (write-back)", m.L2[0].DirtyLines())
	}
	if m.Mem.Committed(local) != 0 {
		t.Error("write-back store committed immediately")
	}
}

func TestBaselineRemoteStoreWritesThrough(t *testing.T) {
	m := newMachine(t, smallCfg())
	b := NewBaseline(m)
	_, remote := place(m)
	s0 := m.Sheet.Get(stats.FlitsRemote)
	b.Access(0, 0, remote, true, false)
	if m.L2[0].ValidLines() != 0 {
		t.Error("remote store cached locally")
	}
	if m.Mem.Committed(remote) != 1 {
		t.Error("remote store not committed to the ordering point")
	}
	if m.Sheet.Get(stats.FlitsRemote) == s0 {
		t.Error("remote store produced no crossbar traffic")
	}
}

func TestBaselineRemoteReadNotCached(t *testing.T) {
	m := newMachine(t, smallCfg())
	b := NewBaseline(m)
	_, remote := place(m)
	r1 := b.Access(0, 0, remote, false, false)
	if r1.Cycles < m.Cfg.L2RemoteLatency {
		t.Errorf("remote read latency = %d, want >= %d", r1.Cycles, m.Cfg.L2RemoteLatency)
	}
	if m.L2[0].ValidLines() != 0 {
		t.Error("CPElide/baseline protocol must not cache remote reads in L2")
	}
	// L1 does cache it within the kernel.
	r2 := b.Access(0, 0, remote, false, false)
	if r2.Level != LevelL1 {
		t.Errorf("second read level = %v, want L1", r2.Level)
	}
}

func TestBaselineLocalReadPath(t *testing.T) {
	m := newMachine(t, smallCfg())
	b := NewBaseline(m)
	local, _ := place(m)
	r1 := b.Access(0, 0, local, false, false)
	if r1.Level != LevelDRAM && r1.Level != LevelL3 {
		t.Errorf("cold read level = %v", r1.Level)
	}
	// Second read from another CU hits the L2.
	r2 := b.Access(0, 1, local, false, false)
	if r2.Level != LevelL2 || r2.Cycles != m.Cfg.L2LocalLatency {
		t.Errorf("warm read = %+v", r2)
	}
}

func TestBaselinePreLaunchFlushesEverything(t *testing.T) {
	m := newMachine(t, smallCfg())
	b := NewBaseline(m)
	plan := b.PreLaunch(&Launch{})
	fl, inv := 0, 0
	for _, op := range plan.Ops {
		if op.Kind == Release {
			fl++
		} else {
			inv++
		}
		if !op.Ranges.Empty() {
			t.Error("baseline ops must be whole-cache")
		}
	}
	if fl != 4 || inv != 4 {
		t.Errorf("ops = %d flushes %d invals, want 4+4", fl, inv)
	}
	if plan.CPCycles != m.Cfg.CPLatencyCycles() {
		t.Errorf("CPCycles = %d", plan.CPCycles)
	}
}

func TestBaselineMonolithicSkipsL2Sync(t *testing.T) {
	cfg := config.Monolithic(4)
	cfg.CUsPerChiplet = 4
	m := newMachine(t, cfg)
	b := NewBaseline(m)
	if plan := b.PreLaunch(&Launch{}); len(plan.Ops) != 0 {
		t.Error("monolithic baseline issued L2 sync ops")
	}
}

func TestBaselineAtomicCommitsImmediately(t *testing.T) {
	m := newMachine(t, smallCfg())
	b := NewBaseline(m)
	_, remote := place(m)
	b.Access(0, 0, remote, true, true)
	if m.Mem.Committed(remote) != 1 || m.Mem.Latest(remote) != 1 {
		t.Error("atomic write not committed at the ordering point")
	}
	if m.L2[0].ValidLines() != 0 || m.L2[1].ValidLines() != 0 {
		t.Error("atomic access allocated in an L2")
	}
}

func TestMonolithicAtomicAtL2(t *testing.T) {
	cfg := config.Monolithic(4)
	cfg.CUsPerChiplet = 4
	m := newMachine(t, cfg)
	b := NewBaseline(m)
	line := mem.Addr(0x1000_0000)
	b.Access(0, 0, line, true, true)
	if m.L2[0].DirtyLines() != 1 {
		t.Error("monolithic atomic should land dirty in the shared L2")
	}
	// A subsequent read must observe the atomic's version (the checker
	// validates this internally; a stale read would bump the counter).
	b.Access(0, 1, line, false, false)
	if m.Mem.StaleReads() != 0 {
		t.Error("monolithic atomic left stale data")
	}
}

func TestFinalizeFlushesAllChiplets(t *testing.T) {
	m := newMachine(t, smallCfg())
	b := NewBaseline(m)
	plan := b.Finalize()
	if len(plan.Ops) != 4 {
		t.Errorf("finalize ops = %d", len(plan.Ops))
	}
	for _, op := range plan.Ops {
		if op.Kind != Release {
			t.Error("finalize must only flush")
		}
	}
}

func TestLaunchPartOf(t *testing.T) {
	l := &Launch{Chiplets: []int{1, 3}}
	if l.PartOf(3) != 1 || l.PartOf(1) != 0 || l.PartOf(0) != -1 {
		t.Error("PartOf wrong")
	}
}

func TestSyncKindString(t *testing.T) {
	if Release.String() != "release" || Acquire.String() != "acquire" {
		t.Error("SyncKind strings wrong")
	}
}

// TestWriteReadAcrossChipletsNeedsFlush reproduces the core hazard the
// whole system exists for: producer writes locally, consumer reads the
// committed copy remotely — without a flush it observes stale data, and the
// version checker must catch it.
func TestWriteReadAcrossChipletsNeedsFlush(t *testing.T) {
	m := newMachine(t, smallCfg())
	b := NewBaseline(m)
	local, _ := place(m)
	b.Access(0, 0, local, true, false) // dirty v1 in chiplet 0's L2
	b.Access(1, 0, local, false, false)
	if m.Mem.StaleReads() != 1 {
		t.Fatalf("checker missed the stale remote read (count=%d)", m.Mem.StaleReads())
	}
	// Now flush chiplet 0 and read again: fresh.
	m.FlushL2(0)
	b.Access(1, 1, local, false, false)
	if m.Mem.StaleReads() != 1 {
		t.Error("read after flush still stale")
	}
}

func TestRemoteBankSingleLocation(t *testing.T) {
	m := newMachine(t, smallCfg())
	p := NewRemoteBank(m)
	local, remote := place(m)

	// Remote write lands dirty at the home bank, nowhere else.
	p.Access(0, 0, remote, true, false)
	if m.L2[0].ValidLines() != 0 {
		t.Error("remote write cached at requester")
	}
	if m.L2[1].DirtyLines() != 1 {
		t.Error("remote write not dirty at home bank")
	}
	// Remote read is served by the home bank with the newest data, with no
	// synchronization in between.
	m.InvalidateL1s(0)
	r := p.Access(2, 0, remote, false, false)
	if r.Level != LevelL2Remote || r.Cycles != m.Cfg.L2RemoteLatency {
		t.Errorf("remote read = %+v", r)
	}
	if m.Mem.StaleReads() != 0 {
		t.Error("remote-bank read stale")
	}
	// No boundary ops at all.
	if plan := p.PreLaunch(&Launch{}); len(plan.Ops) != 0 {
		t.Error("RemoteBank issued boundary ops")
	}
	// Local path behaves like a normal write-back L2.
	p.Access(0, 0, local, true, false)
	if m.L2[0].DirtyLines() != 1 {
		t.Error("local write not write-back")
	}
	if len(p.Finalize().Ops) != 4 {
		t.Error("finalize must flush all banks")
	}
}

func TestRemoteBankAtomics(t *testing.T) {
	m := newMachine(t, smallCfg())
	p := NewRemoteBank(m)
	_, remote := place(m)
	p.Access(0, 0, remote, true, true)
	if m.Mem.Committed(remote) != 1 {
		t.Error("atomic not committed at the ordering point")
	}
	m.InvalidateL1s(3)
	p.Access(3, 0, remote, false, false)
	if m.Mem.StaleReads() != 0 {
		t.Error("read after atomic stale")
	}
}

// must unwraps constructor errors in tests, where geometry is known-valid.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
