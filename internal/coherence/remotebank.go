package coherence

import (
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/stats"
)

// reqBytes is the request/ack message size on the interconnect.
const reqBytes = 8

// RemoteBank implements the paper's design alternative (a) from Section
// II-A: the per-chiplet L2s form one NUCA-style shared cache, and every
// access to a remotely homed line is forwarded to the home chiplet's L2
// bank ("incur additional latency to access a shared cache's remote bank"
// [116]). Each line has exactly one possible L2 location — its home bank —
// so no L2 copy can ever go stale and kernel boundaries need no L2
// synchronization at all. The price is the crossbar round trip and remote
// latency on every remote access, with no requester-side caching.
//
// The baseline the paper evaluates is alternative (b); RemoteBank is the
// other end of the design space and shows why CPElide's middle ground wins:
// it keeps (b)'s local caching and elides (b)'s synchronization instead of
// giving up locality the way (a) does.
type RemoteBank struct {
	M *machine.Machine
}

// NewRemoteBank returns the NUCA-style protocol over machine m.
func NewRemoteBank(m *machine.Machine) *RemoteBank { return &RemoteBank{M: m} }

// Name implements Protocol.
func (p *RemoteBank) Name() string { return "RemoteBank" }

// PreLaunch performs no L2 synchronization: a line's only L2 location is
// its home bank, so there is nothing to invalidate and flushing can wait
// for eviction or program end.
func (p *RemoteBank) PreLaunch(l *Launch) SyncPlan {
	return SyncPlan{CPCycles: p.M.Cfg.CPLatencyCycles()}
}

// Access routes every request to the line's home L2 bank.
func (p *RemoteBank) Access(chiplet, cu int, line mem.Addr, write, atomic bool) AccessResult {
	m := p.M
	cfg := &m.Cfg
	home := m.Home(line, chiplet)
	local := home == chiplet

	if write || atomic {
		ver := m.Mem.Store(line)
		if atomic {
			// The home bank is the per-line ordering point; the RMW
			// executes there like any other access.
			m.Mem.Commit(line, ver)
		}
		m.L1WriteThrough(chiplet, cu, line, ver)
		m.Sheet.Inc(stats.L2Accesses)
		cy := cfg.L2LocalLatency
		if !local {
			cy = cfg.L2RemoteLatency
			m.Fabric.Remote(chiplet, home, reqBytes+cfg.LineSize)
			m.Sheet.Inc(stats.L2RemoteHits)
		}
		if m.L2[home].Write(line, ver) {
			m.Sheet.Inc(stats.L2Hits)
			m.BookL2(home, cfg.LineSize)
			return AccessResult{Cycles: cy, Level: levelFor(local)}
		}
		m.Sheet.Inc(stats.L2Misses)
		m.BookL2(home, cfg.LineSize+cfg.LineSize/2)
		p.fillHome(home, line, ver, true)
		return AccessResult{Cycles: cy, Level: levelFor(local)}
	}

	// Read path: L1, then the home bank.
	if ver, hit := m.L1Read(chiplet, cu, line); hit {
		m.Mem.Observe(line, ver)
		return AccessResult{Cycles: cfg.L1Latency, Level: LevelL1}
	}
	m.Sheet.Inc(stats.L2Accesses)
	cy := cfg.L2LocalLatency
	if !local {
		cy = m.RemoteLatency(chiplet, home)
		m.Fabric.Remote(chiplet, home, reqBytes+cfg.LineSize)
	}
	if ver, hit := m.L2[home].Read(line); hit {
		m.Sheet.Inc(stats.L2Hits)
		m.BookL2(home, cfg.LineSize)
		if !local {
			m.Sheet.Inc(stats.L2RemoteHits)
		}
		m.Mem.Observe(line, ver)
		m.L1Fill(chiplet, cu, line, ver)
		return AccessResult{Cycles: cy, Level: levelFor(local)}
	}
	m.Sheet.Inc(stats.L2Misses)
	m.BookL2(home, cfg.LineSize+cfg.LineSize/2)
	ver, extra := m.L3Read(line, home, home)
	m.Mem.Observe(line, ver)
	p.fillHome(home, line, ver, false)
	m.L1Fill(chiplet, cu, line, ver)
	return AccessResult{Cycles: cy + extra - cfg.L3Latency, Level: LevelL3}
}

func levelFor(local bool) Level {
	if local {
		return LevelL2
	}
	return LevelL2Remote
}

// fillHome installs a line in its home bank, writing dirty victims back.
func (p *RemoteBank) fillHome(home int, line mem.Addr, ver uint32, dirty bool) {
	if ev := p.M.L2[home].Fill(line, ver, dirty); ev.Evicted && ev.Dirty {
		p.M.CommitWriteback(ev.Line, ev.Ver, home)
	}
}

// Finalize flushes all banks' dirty lines at program end.
func (p *RemoteBank) Finalize() SyncPlan {
	var plan SyncPlan
	for c := 0; c < p.M.Cfg.NumChiplets; c++ {
		plan.Ops = append(plan.Ops, SyncOp{Chiplet: c, Kind: Release})
	}
	return plan
}
