// Package coherence defines the coherence-protocol interface the simulated
// GPU's command processors drive, plus the baseline VIPER-chiplet protocol
// (Section IV-C of the paper): per-chiplet write-back L2s for locally homed
// data, write-through forwarding of remote stores to the home node, remote
// reads served by the home L3 bank without local caching, and conservative
// GPU-wide L2 flush+invalidate at every kernel boundary.
package coherence

import (
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/stats"
)

// Launch is one dynamic kernel instance as the global CP sees it: the
// kernel, its chiplet assignment under static kernel-wide partitioning, and
// the per-argument, per-chiplet address-range metadata provided by the
// hipSetAccessMode / hipSetAccessModeRange annotations.
type Launch struct {
	Kernel *kernels.Kernel
	Inst   int // dynamic kernel index within the workload
	Stream int

	// Chiplets lists the chiplets the kernel's WGs are partitioned across,
	// ascending. Partition i of len(Chiplets) runs on Chiplets[i].
	Chiplets []int

	// ArgRanges[a][i] is the declared address-range set of argument a on
	// Chiplets[i]. When only access modes were annotated
	// (hipSetAccessMode), every chiplet's set is the structure's full
	// range.
	ArgRanges [][]mem.RangeSet
}

// PartOf returns the partition slot of chiplet c in the launch, or -1.
func (l *Launch) PartOf(c int) int {
	for i, ch := range l.Chiplets {
		if ch == c {
			return i
		}
	}
	return -1
}

// SyncKind distinguishes the two implicit synchronization operations.
type SyncKind uint8

const (
	// Release flushes a chiplet's dirty L2 data to the ordering point.
	Release SyncKind = iota
	// Acquire invalidates a chiplet's L2 (writing dirty lines back first).
	Acquire
)

func (k SyncKind) String() string {
	if k == Release {
		return "release"
	}
	return "acquire"
}

// SyncOp is one chiplet-targeted synchronization operation. With an empty
// range set the operation covers the whole cache — the default, since the
// global CP works on virtual addresses and cannot target physical L2 lines
// (Section VI). A non-empty set models the fine-grained hardware
// range-flush extension.
type SyncOp struct {
	Chiplet int
	Kind    SyncKind
	Ranges  mem.RangeSet
}

// SyncPlan is everything a protocol wants done before a kernel's WGs
// dispatch.
type SyncPlan struct {
	// Ops may alias a protocol-owned scratch buffer (see Baseline.TakeOps):
	// the slice is valid only until the protocol's next PreLaunch or
	// Finalize call. Consumers that outlive the boundary must copy the ops.
	Ops []SyncOp
	// CPCycles is command-processor processing time (table lookups,
	// acquire/release generation) in core cycles; it is hidden behind
	// enqueue-ahead for all but the first kernel.
	CPCycles int
	// Messages counts global CP <-> local CP crossbar messages implied by
	// the plan (requests + acks + launch enables).
	Messages int
	// LatencyFactor serializes the plan's exposed latency this many times
	// (default 1). The Section VI chiplet-scaling study sets 2 or 4 to
	// mimic 8- and 16-chiplet synchronization cost conservatively.
	LatencyFactor int
	// HostRoundTripCycles is off-device latency (driver-managed
	// synchronization) exposed serially before the launch, never hidden by
	// the CP pipeline.
	HostRoundTripCycles int
}

// Level reports where an access was served, for tests and diagnostics.
type Level uint8

const (
	LevelL1 Level = iota
	LevelL2
	LevelL2Remote // another chiplet's L2 (HMG home-node access)
	LevelL3
	LevelDRAM
)

// AccessResult is the timing outcome of one line-granularity access.
type AccessResult struct {
	Cycles int
	Level  Level
}

// Protocol is a coherence policy: it decides what implicit synchronization
// happens at kernel launches and how individual accesses route through the
// hierarchy.
type Protocol interface {
	Name() string

	// PreLaunch is called once per kernel launch, before WG dispatch, with
	// the launch's argument metadata. The returned plan's operations are
	// executed (and their latency exposed) before any WG issues memory
	// accesses.
	PreLaunch(l *Launch) SyncPlan

	// Access performs one memory access by a CU.
	Access(chiplet, cu int, line mem.Addr, write, atomic bool) AccessResult

	// Finalize is called after the last kernel so outstanding dirty data
	// reaches the ordering point (the device-level release at the end of
	// the program).
	Finalize() SyncPlan
}

// Degradable is implemented by protocols that keep synchronization state the
// CP may have to abandon under faults: when the watchdog gives up on a
// targeted operation (DegradeChiplet) or a run is interrupted mid-plan
// (ConservativeReset), the tracked state is marked so conservatively that
// every future boundary synchronizes at least as much as the baseline would.
// Stateless protocols (Baseline, HMG's flush-free boundaries) need not
// implement it — they have no belief to abandon.
type Degradable interface {
	// DegradeChiplet abandons tracked state for one chiplet after the
	// reliable fallback (full L2 flush+invalidate) was applied to it.
	DegradeChiplet(chiplet int)
	// ConservativeReset abandons tracked state for every chiplet.
	ConservativeReset()
}

// ---------------------------------------------------------------------------
// Baseline VIPER-chiplet protocol.
// ---------------------------------------------------------------------------

// Baseline implements the extended VIPER GPU coherence protocol for
// chiplet-based GPUs. Its access path is shared with CPElide (which changes
// only the kernel-boundary behavior, not the protocol).
type Baseline struct {
	M *machine.Machine

	// opsScratch is the reusable backing array for the SyncPlan.Ops slices
	// this protocol (and protocols embedding it) builds. A plan is consumed
	// by the executor before the protocol's next PreLaunch/Finalize call —
	// kernel dispatch is synchronous and observers copy what they keep — so
	// every boundary can reuse the previous boundary's allocation.
	opsScratch []SyncOp
}

// TakeOps returns the protocol-owned, length-zero buffer for building the
// next SyncPlan's Ops. The resulting plan is valid only until the next
// PreLaunch or Finalize call on this protocol; callers that keep ops longer
// must copy them. Pass the built slice to KeepOps so a grown backing array
// is reused at the next boundary.
func (b *Baseline) TakeOps() []SyncOp { return b.opsScratch[:0] }

// KeepOps stores a slice obtained from TakeOps (and possibly grown by
// appends) back into the protocol for reuse.
func (b *Baseline) KeepOps(ops []SyncOp) { b.opsScratch = ops }

// NewBaseline returns the baseline protocol over machine m.
func NewBaseline(m *machine.Machine) *Baseline { return &Baseline{M: m} }

// Name implements Protocol.
func (b *Baseline) Name() string { return "Baseline" }

// PreLaunch conservatively performs the GPU-wide implicit synchronization of
// current designs: every chiplet's L2 is flushed and invalidated at every
// kernel boundary, because the L3 is the inter-chiplet ordering point and
// the VI protocol tracks no sharers. On a monolithic GPU the L2 is the
// ordering point, so only the L1s are invalidated (handled by the executor
// for every protocol).
func (b *Baseline) PreLaunch(l *Launch) SyncPlan {
	if b.M.Cfg.IsMonolithic() {
		return SyncPlan{CPCycles: b.M.Cfg.CPLatencyCycles()}
	}
	plan := SyncPlan{CPCycles: b.M.Cfg.CPLatencyCycles()}
	ops := b.TakeOps()
	for c := 0; c < b.M.Cfg.NumChiplets; c++ {
		ops = append(ops,
			SyncOp{Chiplet: c, Kind: Release},
			SyncOp{Chiplet: c, Kind: Acquire},
		)
	}
	b.KeepOps(ops)
	plan.Ops = ops
	plan.Messages = 2 // broadcast + gathered acks modeled as one each way
	return plan
}

// Access implements the VIPER-chiplet access path. Locally homed lines are
// cached write-back in the chiplet's L2; remotely homed lines are never
// cached locally — reads forward to the home node and stores write through
// to it. Atomic accesses (scatter updates) execute at the home L3 bank, the
// ordering point, and bypass the L2s entirely.
func (b *Baseline) Access(chiplet, cu int, line mem.Addr, write, atomic bool) AccessResult {
	m := b.M
	cfg := &m.Cfg
	home := m.Home(line, chiplet)

	if atomic {
		return b.atomicAccess(chiplet, cu, line, write, home)
	}

	if write {
		ver := m.Mem.Store(line)
		m.L1WriteThrough(chiplet, cu, line, ver)
		m.Sheet.Inc(stats.L2Accesses)
		if home == chiplet {
			// Local store: write-back with write-allocate.
			if m.L2[chiplet].Write(line, ver) {
				m.Sheet.Inc(stats.L2Hits)
				m.BookL2(chiplet, cfg.LineSize)
				return AccessResult{Cycles: cfg.L2LocalLatency, Level: LevelL2}
			}
			// Write-allocate without fetch: VIPER's byte-granular dirty
			// masks let full-line streaming stores install without reading
			// the line from below.
			m.Sheet.Inc(stats.L2Misses)
			m.BookL2(chiplet, cfg.LineSize+cfg.LineSize/2)
			b.fillL2(chiplet, line, ver, true)
			return AccessResult{Cycles: cfg.L2LocalLatency, Level: LevelL2}
		}
		// Remote store: write through to the home node; no local copy.
		m.Sheet.Inc(stats.L2Misses)
		m.Sheet.Inc(stats.L2WriteThru)
		cy := m.L3Write(line, ver, chiplet, home)
		return AccessResult{Cycles: cy, Level: LevelL3}
	}

	// Read path.
	if ver, hit := m.L1Read(chiplet, cu, line); hit {
		m.Mem.Observe(line, ver)
		return AccessResult{Cycles: cfg.L1Latency, Level: LevelL1}
	}
	m.Sheet.Inc(stats.L2Accesses)
	if home == chiplet {
		if ver, hit := m.L2[chiplet].Read(line); hit {
			m.Sheet.Inc(stats.L2Hits)
			m.BookL2(chiplet, cfg.LineSize)
			m.Mem.Observe(line, ver)
			m.L1Fill(chiplet, cu, line, ver)
			return AccessResult{Cycles: cfg.L2LocalLatency, Level: LevelL2}
		}
	}
	m.Sheet.Inc(stats.L2Misses)
	ver, cy := m.L3Read(line, chiplet, home)
	m.Mem.Observe(line, ver)
	if home == chiplet {
		m.BookL2(chiplet, cfg.LineSize+cfg.LineSize/2)
		b.fillL2(chiplet, line, ver, false)
	}
	m.L1Fill(chiplet, cu, line, ver)
	level := LevelL3
	if cy >= cfg.L3Latency+cfg.DRAMLatency {
		level = LevelDRAM
	}
	return AccessResult{Cycles: cy, Level: level}
}

// atomicAccess executes a read-modify-write at the ordering point: the
// shared L2 on a monolithic GPU, the home L3 bank on a chiplet GPU.
func (b *Baseline) atomicAccess(chiplet, cu int, line mem.Addr, write bool, home int) AccessResult {
	m := b.M
	cfg := &m.Cfg
	if cfg.IsMonolithic() {
		m.Sheet.Inc(stats.L2Accesses)
		ver, hit := m.L2[0].Read(line)
		cy := cfg.L2LocalLatency
		if hit {
			m.Sheet.Inc(stats.L2Hits)
		} else {
			m.Sheet.Inc(stats.L2Misses)
			v, extra := m.L3Read(line, 0, 0)
			ver, cy = v, extra
		}
		m.Mem.Observe(line, ver)
		if write {
			b.fillL2(0, line, m.Mem.Store(line), true)
		}
		return AccessResult{Cycles: cy, Level: LevelL2}
	}
	ver, cy := m.L3Read(line, chiplet, home)
	m.Mem.Observe(line, ver)
	if write {
		nv := m.Mem.Store(line)
		m.Mem.Commit(line, nv)
		m.L3[home].Fill(line, 0, true)
	}
	return AccessResult{Cycles: cy, Level: LevelL3}
}

// fillL2 installs a line in the chiplet's L2, writing back a dirty victim.
func (b *Baseline) fillL2(chiplet int, line mem.Addr, ver uint32, dirty bool) {
	m := b.M
	if ev := m.L2[chiplet].Fill(line, ver, dirty); ev.Evicted && ev.Dirty {
		m.CommitWriteback(ev.Line, ev.Ver, chiplet)
	}
}

// Finalize flushes every chiplet's dirty data — the device-level release at
// program end that all configurations pay.
func (b *Baseline) Finalize() SyncPlan {
	var plan SyncPlan
	ops := b.TakeOps()
	for c := 0; c < b.M.Cfg.NumChiplets; c++ {
		ops = append(ops, SyncOp{Chiplet: c, Kind: Release})
	}
	b.KeepOps(ops)
	plan.Ops = ops
	return plan
}
