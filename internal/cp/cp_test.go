package cp

import (
	"context"
	"testing"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/stats"
)

func smallCfg() config.GPU {
	g := config.Default(4)
	g.CUsPerChiplet = 4
	g.L1SizeBytes = 1 << 10
	g.L2SizeBytes = 64 << 10
	g.L3SizeBytes = 128 << 10
	return g
}

func buildWorkload(name string, kernelsN int) *kernels.Workload {
	alloc := kernels.NewAllocator(0x1000_0000, 4096)
	a := alloc.Alloc("a", 16*1024, 4)
	b := alloc.Alloc("b", 16*1024, 4)
	k := &kernels.Kernel{
		Name: "k", WGs: 16, ComputePerWG: 100,
		Args: []kernels.Arg{
			{DS: a, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: b, Mode: kernels.ReadWrite, Pattern: kernels.Linear},
		},
	}
	w := &kernels.Workload{
		Name: name, Structures: []*kernels.DataStructure{a, b}, Seed: 5,
	}
	for i := 0; i < kernelsN; i++ {
		w.Sequence = append(w.Sequence, k)
	}
	return w
}

func TestBuildLaunchRangeMetadata(t *testing.T) {
	w := buildWorkload("w", 1)
	k := w.Sequence[0]
	l := BuildLaunch(k, 3, 0, []int{0, 1, 2, 3}, 64, true)
	if l.Inst != 3 || len(l.ArgRanges) != 2 {
		t.Fatal("launch shape wrong")
	}
	// Per-chiplet ranges partition the structure.
	var total uint64
	for slot := 0; slot < 4; slot++ {
		rs := l.ArgRanges[0][slot]
		total += rs.Size()
		for other := slot + 1; other < 4; other++ {
			if rs.OverlapsSet(l.ArgRanges[0][other]) {
				t.Fatal("partition ranges overlap")
			}
		}
	}
	if total != 16*1024*4 {
		t.Errorf("ranges cover %d bytes", total)
	}
	// Mode-only metadata: full structure everywhere.
	lm := BuildLaunch(k, 0, 0, []int{0, 1}, 64, false)
	for slot := 0; slot < 2; slot++ {
		if lm.ArgRanges[0][slot].Size() != 16*1024*4 {
			t.Error("mode-only ranges must be whole-structure")
		}
	}
}

func newRunner(t *testing.T, specs []StreamSpec) (*Runner, *machine.Machine) {
	t.Helper()
	bounds := mem.Range{Lo: 0x1000_0000, Hi: 0x1000_0000 + 8<<20}
	m := must(machine.New(smallCfg(), bounds, stats.New()))
	x := gpu.New(m, coherence.NewBaseline(m), 1)
	r, err := NewRunner(x, specs, RunnerConfig{RangeInfo: true})
	if err != nil {
		t.Fatal(err)
	}
	return r, m
}

func TestRunnerSerializesSingleStream(t *testing.T) {
	r, m := newRunner(t, []StreamSpec{{Workload: buildWorkload("w", 5)}})
	total, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("zero cycles")
	}
	if len(r.Records) != 5 {
		t.Fatalf("records = %d", len(r.Records))
	}
	for i := 1; i < len(r.Records); i++ {
		if r.Records[i].Start < r.Records[i-1].End {
			t.Fatal("stream kernels overlapped")
		}
	}
	if m.Sheet.Get(stats.KernelsLaunched) != 5 {
		t.Error("kernel counter wrong")
	}
	if m.Sheet.Get(stats.TotalCycles) != total {
		t.Error("TotalCycles not recorded")
	}
}

func TestRunnerOverlapsDisjointStreams(t *testing.T) {
	// Two streams bound to disjoint chiplet pairs run concurrently.
	alloc0 := kernels.NewAllocator(0x1000_0000, 4096)
	_ = alloc0
	w0 := buildWorkload("s0", 4)
	// Second stream needs disjoint allocations.
	alloc := kernels.NewAllocator(0x1100_0000, 4096)
	a := alloc.Alloc("a2", 16*1024, 4)
	k := &kernels.Kernel{
		Name: "k2", WGs: 16, ComputePerWG: 100,
		Args: []kernels.Arg{{DS: a, Mode: kernels.ReadWrite, Pattern: kernels.Linear}},
	}
	w1 := &kernels.Workload{Name: "s1", Structures: []*kernels.DataStructure{a}, Seed: 9}
	for i := 0; i < 4; i++ {
		w1.Sequence = append(w1.Sequence, k)
	}

	bounds := mem.Range{Lo: 0x1000_0000, Hi: 0x1100_0000 + 8<<20}
	m := must(machine.New(smallCfg(), bounds, stats.New()))
	x := gpu.New(m, coherence.NewBaseline(m), 1)
	r, err := NewRunner(x, []StreamSpec{
		{Workload: w0, Chiplets: []int{0, 1}},
		{Workload: w1, Chiplets: []int{2, 3}},
	}, RunnerConfig{RangeInfo: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	overlapped := false
	for _, a := range r.Records {
		for _, b := range r.Records {
			if a.Launch.Stream != b.Launch.Stream && a.Start < b.End && b.Start < a.End {
				overlapped = true
			}
		}
	}
	if !overlapped {
		t.Error("disjoint streams never executed concurrently")
	}
}

func TestRunnerSharedChipletsSerialize(t *testing.T) {
	w0 := buildWorkload("s0", 3)
	alloc := kernels.NewAllocator(0x1100_0000, 4096)
	a := alloc.Alloc("a2", 16*1024, 4)
	k := &kernels.Kernel{
		Name: "k2", WGs: 16, ComputePerWG: 100,
		Args: []kernels.Arg{{DS: a, Mode: kernels.ReadWrite, Pattern: kernels.Linear}},
	}
	w1 := &kernels.Workload{Name: "s1", Structures: []*kernels.DataStructure{a}, Seed: 9,
		Sequence: []*kernels.Kernel{k, k, k}}

	bounds := mem.Range{Lo: 0x1000_0000, Hi: 0x1100_0000 + 8<<20}
	m := must(machine.New(smallCfg(), bounds, stats.New()))
	x := gpu.New(m, coherence.NewBaseline(m), 1)
	r, err := NewRunner(x, []StreamSpec{{Workload: w0}, {Workload: w1}}, RunnerConfig{RangeInfo: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	for _, a := range r.Records {
		for _, b := range r.Records {
			if &a != &b && a.Launch != b.Launch &&
				a.Start < b.End && b.Start < a.Start {
				// Overlap is only legal when chiplet sets are disjoint;
				// both streams here use all chiplets.
				if a.Launch.Stream != b.Launch.Stream {
					t.Fatal("streams sharing chiplets overlapped")
				}
			}
		}
	}
}

func TestRunnerRejectsBadBinding(t *testing.T) {
	bounds := mem.Range{Lo: 0x1000_0000, Hi: 0x1000_0000 + 8<<20}
	m := must(machine.New(smallCfg(), bounds, stats.New()))
	x := gpu.New(m, coherence.NewBaseline(m), 1)
	_, err := NewRunner(x, []StreamSpec{{Workload: buildWorkload("w", 1), Chiplets: []int{9}}}, RunnerConfig{RangeInfo: true})
	if err == nil {
		t.Error("invalid chiplet binding accepted")
	}
}

func TestPrePlacePartitionsLinearStructures(t *testing.T) {
	w := buildWorkload("w", 1)
	_, m := newRunner(t, []StreamSpec{{Workload: w}})
	ds := w.Structures[0]
	// First and last pages should be homed at the first and last chiplets.
	if h := m.Pages.HomeIfPlaced(ds.Base); h != 0 {
		t.Errorf("first page home = %d", h)
	}
	if h := m.Pages.HomeIfPlaced(ds.Base + mem.Addr(ds.Bytes) - 1); h != 3 {
		t.Errorf("last page home = %d", h)
	}
}

func TestPrePlaceInterleavesIndirect(t *testing.T) {
	alloc := kernels.NewAllocator(0x1000_0000, 4096)
	d := alloc.Alloc("d", 64*1024, 4) // 64 pages
	k := &kernels.Kernel{
		Name: "g", WGs: 16, ComputePerWG: 10,
		Args: []kernels.Arg{{DS: d, Mode: kernels.Read, Pattern: kernels.Indirect}},
	}
	w := &kernels.Workload{Name: "w", Structures: []*kernels.DataStructure{d},
		Sequence: []*kernels.Kernel{k}}
	_, m := newRunner(t, []StreamSpec{{Workload: w}})
	// Round-robin: consecutive pages alternate homes.
	h0 := m.Pages.HomeIfPlaced(d.Base)
	h1 := m.Pages.HomeIfPlaced(d.Base + 4096)
	h4 := m.Pages.HomeIfPlaced(d.Base + 4*4096)
	if h0 == h1 || h0 != h4 {
		t.Errorf("indirect placement not round-robin: %d %d %d", h0, h1, h4)
	}
}

func TestInferArgRangesCoverAccesses(t *testing.T) {
	alloc := kernels.NewAllocator(0x1000_0000, 4096)
	d := alloc.Alloc("d", 64*1024, 4)
	idx := alloc.Alloc("idx", 64*1024, 4)
	k := &kernels.Kernel{
		Name: "g", WGs: 32, ComputePerWG: 10,
		Args: []kernels.Arg{
			{DS: d, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: idx, Mode: kernels.Read, Pattern: kernels.Indirect,
				TouchesPerLine: 2, HotFraction: 0.3},
		},
	}
	inferred := InferArgRanges(k, 1, 42, 4, 4, 64, 4096)
	if len(inferred) != 2 || len(inferred[0]) != 4 {
		t.Fatal("inferred shape wrong")
	}
	// Replay: every access must fall in the inferred ranges, and the
	// indirect arg's inferred ranges must be tighter than the whole
	// structure (that is the point of profiling).
	var indirectSize uint64
	for slot := 0; slot < 4; slot++ {
		slot := slot
		kernels.Generate(k, 1, 42, slot, 4, 4, 64, func(a kernels.Access) {
			if !inferred[a.Arg][slot].Contains(a.Line) {
				t.Fatalf("slot %d: access %#x outside inferred ranges", slot, a.Line)
			}
		})
		indirectSize += inferred[1][slot].Size()
	}
	if indirectSize >= 4*idx.Bytes {
		t.Error("inferred indirect ranges not tighter than whole-structure declaration")
	}
}

func TestPlacementPolicies(t *testing.T) {
	w := buildWorkload("w", 1)
	bounds := mem.Range{Lo: 0x1000_0000, Hi: 0x1000_0000 + 8<<20}
	m := must(machine.New(smallCfg(), bounds, stats.New()))
	x := gpu.New(m, coherence.NewBaseline(m), 1)
	if _, err := NewRunner(x, []StreamSpec{{Workload: w}},
		RunnerConfig{RangeInfo: true, Placement: PlacementSingle}); err != nil {
		t.Fatal(err)
	}
	ds := w.Structures[0]
	if m.Pages.HomeIfPlaced(ds.Base) != 0 || m.Pages.HomeIfPlaced(ds.Base+mem.Addr(ds.Bytes)-1) != 0 {
		t.Error("single placement not on chiplet 0")
	}

	m2 := must(machine.New(smallCfg(), bounds, stats.New()))
	x2 := gpu.New(m2, coherence.NewBaseline(m2), 1)
	w2 := buildWorkload("w2", 1)
	if _, err := NewRunner(x2, []StreamSpec{{Workload: w2}},
		RunnerConfig{RangeInfo: true, Placement: PlacementInterleaved}); err != nil {
		t.Fatal(err)
	}
	d2 := w2.Structures[0]
	if m2.Pages.HomeIfPlaced(d2.Base) == m2.Pages.HomeIfPlaced(d2.Base+4096) {
		t.Error("interleaved placement not alternating")
	}
}

// pollCancelCtx is a deterministic mid-run cancellation source: it reports
// not-canceled for the first polls-1 Done() calls and canceled from the
// polls-th call onward. The runner polls once at dispatch entry and once
// before every kernel launch, so the cancel lands between two kernels of a
// live run, never before it starts or after it ends.
type pollCancelCtx struct {
	context.Context
	polls  int
	closed chan struct{}
	n      int
}

func (c *pollCancelCtx) Done() <-chan struct{} {
	c.n++
	if c.n >= c.polls {
		return c.closed
	}
	return nil
}

func (c *pollCancelCtx) Err() error {
	if c.n >= c.polls {
		return context.Canceled
	}
	return nil
}

// TestCancelMidRunDegradesTable is the regression test for cancellation
// landing between a kernel boundary's synchronization operations: a stateful
// protocol's tracked beliefs must be conservatively abandoned (every tracked
// entry degraded to Dirty) so continued use can only over-synchronize,
// never elide a needed acquire.
func TestCancelMidRunDegradesTable(t *testing.T) {
	bounds := mem.Range{Lo: 0x1000_0000, Hi: 0x1000_0000 + 8<<20}
	m := must(machine.New(smallCfg(), bounds, stats.New()))
	proto, err := core.New(m)
	if err != nil {
		t.Fatal(err)
	}
	x := gpu.New(m, proto, 1)
	ctx := &pollCancelCtx{Context: context.Background(), polls: 4, closed: make(chan struct{})}
	close(ctx.closed)
	r, err := NewRunner(x, []StreamSpec{{Workload: buildWorkload("w", 8)}},
		RunnerConfig{RangeInfo: true, Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if !r.Canceled() {
		t.Fatal("runner did not observe the cancellation")
	}
	if len(r.Records) == 0 {
		t.Fatal("cancel landed before any kernel ran; the fixture must cancel mid-run")
	}
	if len(r.Records) == 8 {
		t.Fatal("cancel landed after the run completed; the fixture must cancel mid-run")
	}
	if proto.Table.Degradations == 0 {
		t.Fatal("cancel mid-run did not conservatively reset the coherence table")
	}
	if got := m.Sheet.Get(stats.TableDegradations); got != uint64(m.Cfg.NumChiplets) {
		t.Fatalf("sheet %s=%d, want one degradation per chiplet (%d)",
			stats.TableDegradations, got, m.Cfg.NumChiplets)
	}
}

// must unwraps constructor errors in tests, where geometry is known-valid.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
