// Package cp models the redesigned command-processor hierarchy of Figure 4b:
// a global CP that interfaces with the host, holds the hardware queues, and
// dispatches work across chiplets, plus per-chiplet local CPs that dispatch
// WGs and execute cache maintenance. Streams map to hardware queues; kernels
// within a stream execute in order while different streams run concurrently
// on their bound chiplets (the paper binds stream i to chiplet set j via
// hipSetDevice).
package cp

import (
	"context"
	"fmt"

	"repro/internal/coherence"
	"repro/internal/event"
	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/stats"
)

// StreamSpec is one GPU stream: a kernel sequence bound to a chiplet set.
type StreamSpec struct {
	Workload *kernels.Workload
	// Chiplets binds the stream; nil binds it to all chiplets.
	Chiplets []int
}

// Record is the execution record of one dynamic kernel.
type Record struct {
	Launch *coherence.Launch
	Start  event.Time
	End    event.Time
	Result gpu.KernelResult

	// Delta is the kernel's counter activity (RunnerConfig.PerKernel only):
	// additive counters hold the increase during this kernel, peak/level
	// counters their running absolute value. Merging every Record's Delta
	// plus the Runner's FinalDelta reconstructs the run-total sheet.
	Delta *stats.Sheet
}

// PagePlacement selects the NUMA page placement policy (Section IV-C1 uses
// first touch; the paper notes "different placement policies can skew
// performance").
type PagePlacement uint8

const (
	// PlacementFirstTouch homes each page on its overwhelming first
	// toucher: partition-aligned for partitioned structures, interleaved
	// for broadcast/gather structures every chiplet races to.
	PlacementFirstTouch PagePlacement = iota
	// PlacementInterleaved round-robins every structure's pages across
	// the stream's chiplets.
	PlacementInterleaved
	// PlacementSingle homes everything on the stream's first chiplet —
	// the naive "allocate on device 0" policy with maximal remote traffic.
	PlacementSingle
)

// RunnerConfig selects the software-visible policies of a run.
type RunnerConfig struct {
	// RangeInfo selects hipSetAccessModeRange metadata (per-chiplet
	// ranges); false degrades to hipSetAccessMode (whole-structure ranges
	// per assigned chiplet), the annotation ablation.
	RangeInfo bool
	// Placement is the page placement policy.
	Placement PagePlacement
	// InferAnnotations derives each launch's declared ranges from a
	// profiling pass over its actual accesses (record-and-replay style
	// automation of the paper's annotations) instead of static analysis.
	InferAnnotations bool
	// PerKernel snapshots the stats sheet at every kernel boundary and
	// attaches the delta to each Record (plus the Runner's FinalDelta for
	// end-of-program activity).
	PerKernel bool
	// Ctx, when non-nil, is polled at every kernel boundary: once it is
	// canceled the runner stops dispatching, drains the event calendar, and
	// Canceled reports true. Kernels already dispatched complete (the
	// simulated GPU has no preemption), so cancellation latency is one
	// kernel span.
	Ctx context.Context
	// Calendar selects the event engine's calendar implementation (default
	// timer wheel; the reference heap is kept for differential testing).
	// Both deliver events in identical order, so reports are byte-identical.
	Calendar event.CalendarKind
}

// Runner owns the global CP's dispatch loop over the event engine.
type Runner struct {
	Eng *event.Engine
	X   *gpu.Executor
	Cfg RunnerConfig

	streams     []*streamState
	chipletBusy []event.Time
	Records     []Record

	// FinalDelta is the counter activity after the last kernel (end-of-
	// program releases, total-cycle accounting) when Cfg.PerKernel is set.
	FinalDelta *stats.Sheet

	canceled bool
	err      error // first internal failure (e.g. a causality bug); Run returns it
}

type streamState struct {
	id       int
	chiplets []int
	launches []*coherence.Launch
	next     int
	prevEnd  event.Time
	started  bool
}

// NewRunner builds a runner for the given streams on executor x.
func NewRunner(x *gpu.Executor, specs []StreamSpec, rc RunnerConfig) (*Runner, error) {
	m := x.M
	r := &Runner{
		Eng:         event.NewWithCalendar(rc.Calendar),
		X:           x,
		Cfg:         rc,
		chipletBusy: make([]event.Time, m.Cfg.NumChiplets),
	}
	for i, spec := range specs {
		if err := spec.Workload.Validate(); err != nil {
			return nil, err
		}
		chs := spec.Chiplets
		if len(chs) == 0 {
			chs = allChiplets(m.Cfg.NumChiplets)
		}
		for _, c := range chs {
			if c < 0 || c >= m.Cfg.NumChiplets {
				return nil, fmt.Errorf("cp: stream %d bound to invalid chiplet %d", i, c)
			}
		}
		ss := &streamState{id: i, chiplets: chs}
		for inst, k := range spec.Workload.Sequence {
			l := BuildLaunch(k, inst, i, chs, m.Cfg.LineSize, rc.RangeInfo)
			if rc.InferAnnotations {
				l.ArgRanges = InferArgRanges(k, inst, spec.Workload.Seed,
					len(chs), m.Cfg.CUsPerChiplet, m.Cfg.LineSize, m.Cfg.PageSize)
			}
			ss.launches = append(ss.launches, l)
		}
		r.streams = append(r.streams, ss)
		prePlace(m, spec.Workload, chs, rc.Placement)
	}
	// The engine clocks the recorder and the fault injector so emissions
	// deep in the machine carry launch-boundary timestamps without any time
	// plumbing. Both calls are nil-safe, and m.Faults is read at delivery
	// time so an injector installed after NewRunner is still clocked.
	rec := m.Trace
	r.Eng.OnDeliver = func(t event.Time) {
		rec.SetNow(uint64(t))
		m.Faults.SetNow(uint64(t))
	}
	// The engine and the executor share the executor's profiler so calendar
	// time, CP dispatch, and kernel execution are attributed separately.
	r.Eng.Prof = x.Prof
	return r, nil
}

func allChiplets(n int) []int {
	chs := make([]int, n)
	for i := range chs {
		chs[i] = i
	}
	return chs
}

// BuildLaunch assembles the launch packet the global CP's packet processor
// consumes: the kernel plus per-argument, per-chiplet range metadata.
func BuildLaunch(k *kernels.Kernel, inst, stream int, chiplets []int, lineSize int, rangeInfo bool) *coherence.Launch {
	l := &coherence.Launch{
		Kernel:   k,
		Inst:     inst,
		Stream:   stream,
		Chiplets: chiplets,
	}
	l.ArgRanges = make([][]mem.RangeSet, len(k.Args))
	backing := make([]mem.RangeSet, len(k.Args)*len(chiplets))
	for ai := range k.Args {
		l.ArgRanges[ai] = backing[ai*len(chiplets) : (ai+1)*len(chiplets) : (ai+1)*len(chiplets)]
		for slot := range chiplets {
			if rangeInfo {
				l.ArgRanges[ai][slot] = kernels.ArgRanges(k, ai, slot, len(chiplets), lineSize)
			} else {
				// hipSetAccessMode only: mode is known, ranges are not, so
				// every assigned chiplet conservatively declares the full
				// structure.
				l.ArgRanges[ai][slot] = mem.NewRangeSet(k.Args[ai].DS.Range())
			}
		}
	}
	return l
}

// prePlace warms first-touch page placement to what racing WGs on a live
// GPU converge to. Serial trace processing would otherwise home pages on
// whichever chiplet happens to be processed first — e.g. a neighbor's
// single halo-line read would win a boundary page its owner touches 4096
// times, and broadcast sweeps would home everything on chiplet 0.
//
//   - Linear / Strided / Stencil structures: each page goes to the chiplet
//     whose WG partition covers it in the first kernel that uses the
//     structure (the overwhelming first toucher).
//   - Broadcast / Indirect structures: pages interleave round-robin across
//     the stream's chiplets (every chiplet races every page).
func prePlace(m *machine.Machine, w *kernels.Workload, chiplets []int, policy PagePlacement) {
	if m.Cfg.NumChiplets == 1 {
		return
	}
	if policy == PlacementSingle {
		for _, d := range w.Structures {
			m.Pages.PlaceRange(d.Range(), chiplets[0])
		}
		return
	}
	interleave := func(d *kernels.DataStructure) {
		ps := mem.Addr(m.Cfg.PageSize)
		r := d.Range()
		i := 0
		for lo := r.Lo; lo < r.Hi; lo += ps {
			hi := lo + ps
			if hi > r.Hi {
				hi = r.Hi
			}
			m.Pages.PlaceRange(mem.Range{Lo: lo, Hi: hi}, chiplets[i%len(chiplets)])
			i++
		}
	}
	if policy == PlacementInterleaved {
		for _, d := range w.Structures {
			interleave(d)
		}
		return
	}
	placed := map[*kernels.DataStructure]bool{}
	for _, k := range w.Sequence {
		for ai := range k.Args {
			a := &k.Args[ai]
			if placed[a.DS] {
				continue
			}
			placed[a.DS] = true
			if a.Pattern == kernels.Broadcast || a.Pattern == kernels.Indirect {
				interleave(a.DS)
				continue
			}
			for slot, c := range chiplets {
				r := kernels.PartitionByteRange(a.DS, k.WGs, len(chiplets), slot, m.Cfg.LineSize)
				m.Pages.PlaceRange(r, c)
			}
		}
	}
}

// Run executes all streams to completion and returns the total cycle count
// (including the end-of-program releases). A non-nil error reports an
// internal failure (a causality bug surfaced by the event engine); the
// returned cycle count is then meaningless.
func (r *Runner) Run() (uint64, error) {
	if err := r.Eng.Schedule(0, event.HandlerFunc(r.dispatch), nil); err != nil {
		return 0, err
	}
	end := r.Eng.Run()
	if r.err != nil {
		return 0, r.err
	}
	var pre *stats.Sheet
	if r.Cfg.PerKernel {
		pre = r.X.M.Sheet.Clone()
	}
	total := uint64(end) + r.X.Finalize()
	r.X.M.Sheet.Set(stats.TotalCycles, total)
	if r.Cfg.PerKernel {
		r.FinalDelta = r.X.M.Sheet.DeltaFrom(pre)
	}
	return total, nil
}

// fail records the first internal error and stops the event loop.
func (r *Runner) fail(err error) {
	if r.err == nil {
		r.err = err
	}
	r.Eng.Stop()
}

// cancelRun stops dispatching because Cfg.Ctx was canceled. The cancel can
// land between a boundary's synchronization operations, so a stateful
// protocol's tracked beliefs (some ops executed, some not) are no longer
// trustworthy: they are conservatively abandoned so any continued use of the
// protocol instance can only over-synchronize.
func (r *Runner) cancelRun() {
	r.canceled = true
	if d, ok := r.X.P.(coherence.Degradable); ok {
		d.ConservativeReset()
	}
	r.Eng.Stop()
}

// Canceled reports whether the run was stopped early because Cfg.Ctx was
// canceled before every kernel had dispatched.
func (r *Runner) Canceled() bool { return r.canceled }

// ctxDone polls Cfg.Ctx without blocking.
func (r *Runner) ctxDone() bool {
	if r.Cfg.Ctx == nil {
		return false
	}
	select {
	case <-r.Cfg.Ctx.Done():
		return true
	default:
		return false
	}
}

// dispatch issues every stream whose head kernel is ready at the current
// time, then relies on completion events to re-trigger.
func (r *Runner) dispatch(event.Event) {
	if p := r.Eng.Prof; p != nil {
		prev := p.SetPhase(event.PhaseCP)
		defer p.SetPhase(prev)
	}
	now := r.Eng.Now()
	if r.ctxDone() {
		r.cancelRun()
		return
	}
	for _, ss := range r.streams {
		for ss.next < len(ss.launches) && r.ready(ss, now) {
			if r.ctxDone() {
				r.cancelRun()
				return
			}
			l := ss.launches[ss.next]
			exposeCP := !ss.started
			ss.started = true
			sheet, rec := r.X.M.Sheet, r.X.M.Trace
			var pre *stats.Sheet
			if r.Cfg.PerKernel {
				pre = sheet.Clone()
			}
			var remote0 uint64
			if rec != nil {
				remote0 = sheet.Get(stats.FlitsRemote)
			}
			res := r.X.RunKernel(l, exposeCP)
			endT := now + event.Time(res.Cycles)
			record := Record{Launch: l, Start: now, End: endT, Result: res}
			if r.Cfg.PerKernel {
				record.Delta = sheet.DeltaFrom(pre)
			}
			if rec != nil {
				rec.Kernel(ss.id, l.Kernel.Name, l.Inst, uint64(now), res.Cycles, res.SyncCycles)
				rec.Transfer(ss.id, l.Inst, sheet.Get(stats.FlitsRemote)-remote0)
			}
			r.Records = append(r.Records, record)
			ss.prevEnd = endT
			for _, c := range ss.chiplets {
				r.chipletBusy[c] = endT
			}
			ss.next++
			if endT > now {
				if err := r.Eng.Schedule(endT, event.HandlerFunc(r.dispatch), nil); err != nil {
					r.fail(err)
					return
				}
				break // later kernels of this stream wait for completion
			}
		}
	}
}

// ready reports whether stream ss's next kernel can start now.
func (r *Runner) ready(ss *streamState, now event.Time) bool {
	if ss.prevEnd > now {
		return false
	}
	for _, c := range ss.chiplets {
		if r.chipletBusy[c] > now {
			return false
		}
	}
	return true
}
