package cp

import (
	"repro/internal/kernels"
	"repro/internal/mem"
)

// InferArgRanges profiles one dynamic kernel instance and returns the
// page-granularity address ranges each chiplet partition actually touches,
// per argument — the record-and-replay automation of the paper's
// annotations (Section VI: "recent compiler and runtime work showed that
// identifying such information can potentially be automated"). The result
// has the same shape as Launch.ArgRanges: [argument][partition slot].
//
// Because access generation is deterministic, the recorded ranges cover the
// replayed accesses exactly; they are typically much tighter than static
// annotations for indirect arguments (which must otherwise declare the
// whole structure).
func InferArgRanges(k *kernels.Kernel, inst int, seed uint64, nparts, cus, lineSize, pageSize int) [][]mem.RangeSet {
	out := make([][]mem.RangeSet, len(k.Args))
	for ai := range out {
		out[ai] = make([]mem.RangeSet, nparts)
	}
	pageMask := ^mem.Addr(pageSize - 1)
	for slot := 0; slot < nparts; slot++ {
		pages := make([]map[mem.Addr]bool, len(k.Args))
		for ai := range pages {
			pages[ai] = map[mem.Addr]bool{}
		}
		kernels.Generate(k, inst, seed, slot, nparts, cus, lineSize,
			func(a kernels.Access) {
				pages[a.Arg][a.Line&pageMask] = true
			})
		for ai := range pages {
			var rs mem.RangeSet
			for p := range pages[ai] {
				rs.Add(mem.Range{Lo: p, Hi: p + mem.Addr(pageSize)})
			}
			out[ai][slot] = rs
		}
	}
	return out
}
