package cp_test

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cp"
	"repro/internal/event"
	"repro/internal/gen"
	"repro/internal/gpu"
	"repro/internal/hmg"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/stats"
)

// TestEventPoolNoLeaks drives a large sample of generated kernel DAGs
// through complete runs and asserts the engine's event pool balances: every
// event the runner scheduled was delivered (or recycled by Reset) and
// returned to the free list, so PoolOutstanding is zero and the calendar is
// empty when Run returns. A handler squirreling away a pooled event — or the
// engine dropping one — shows up here as a nonzero outstanding count. The CI
// race job runs this file under -race, which additionally catches any
// use-after-recycle write to a pooled event's fields.
func TestEventPoolNoLeaks(t *testing.T) {
	dags := 500
	if testing.Short() {
		dags = 50
	}
	cfg := config.Default(4)
	cfg.CUsPerChiplet = 4
	cfg.L1SizeBytes = 1 << 10
	cfg.L2SizeBytes = 64 << 10
	cfg.L3SizeBytes = 128 << 10

	for seed := 0; seed < dags; seed++ {
		c := gen.Generate(uint64(seed), gen.Config{Chiplets: 4, MaxKernels: 5, MaxStreams: 3})
		bounds := mem.Range{Lo: gen.HeapBase, Hi: gen.HeapBase}
		for _, s := range c.Specs {
			bounds = bounds.Union(s.Workload.Bounds())
		}
		m, err := machine.New(cfg, bounds, stats.New())
		if err != nil {
			t.Fatal(err)
		}
		var p coherence.Protocol
		switch seed % 3 {
		case 0:
			p = coherence.NewBaseline(m)
		case 1:
			if p, err = core.New(m); err != nil {
				t.Fatal(err)
			}
		default:
			if p, err = hmg.New(m, hmg.Options{}); err != nil {
				t.Fatal(err)
			}
		}
		x := gpu.New(m, p, uint64(seed))
		cal := event.CalendarWheel
		if seed%2 == 1 {
			cal = event.CalendarHeap
		}
		r, err := cp.NewRunner(x, c.Specs, cp.RunnerConfig{
			RangeInfo: true,
			Placement: c.Placement,
			Calendar:  cal,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if n := r.Eng.PoolOutstanding(); n != 0 {
			t.Fatalf("seed %d (%s, %v): %d events still outstanding after Run",
				seed, c.Name, cal, n)
		}
		if n := r.Eng.Pending(); n != 0 {
			t.Fatalf("seed %d: %d events still pending after Run", seed, n)
		}
	}
}
