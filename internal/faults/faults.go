// Package faults is the deterministic fault-injection subsystem: a
// seed-driven injector that perturbs the simulated machine's inter-chiplet
// links and the global CP's SRAM state so the robustness machinery (the CP
// watchdog, retry/backoff, and graceful degradation to the baseline
// flush+invalidate) can be exercised and measured.
//
// Three fault classes are modeled:
//
//   - Message loss and delay on the global CP <-> local CP path: an implicit
//     acquire/release request can be dropped before it reaches the local CP
//     (the operation never executes) or its completion ack can be dropped or
//     delayed on the way back (the operation executed but the CP cannot know).
//   - Transient link degradation: for a window of cycles the inter-chiplet
//     links run at a latency/bandwidth multiplier, as after a lane failure or
//     thermal throttle.
//   - Chiplet Coherence Table parity errors: an SRAM row is detected corrupt
//     at launch time, so none of the table's tracked state can be trusted for
//     that boundary.
//
// Every decision is drawn from a splitmix64 stream seeded by Config.Seed, so
// a fault schedule is a pure function of (seed, simulation event order):
// campaigns are reproducible and failures bisectable. A nil *Injector is a
// valid no-fault sink, mirroring the stats.Sheet and trace.Recorder
// conventions, so instrumented paths pay one nil check when injection is off
// and are byte-identical to an uninstrumented build.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Config selects the fault campaign. The zero value injects nothing;
// Enabled reports whether any fault class is active.
type Config struct {
	// Seed seeds the injector's deterministic RNG stream.
	Seed uint64 `json:"seed,omitempty"`

	// ReqDropRate is the probability that a synchronization request (an
	// implicit acquire/release sent to a local CP) is lost before it
	// executes; the CP watchdog times out and retries.
	ReqDropRate float64 `json:"req_drop_rate,omitempty"`
	// AckDropRate is the probability that an executed operation's ack is
	// lost on the way back; the operation happened but the CP must assume
	// it did not.
	AckDropRate float64 `json:"ack_drop_rate,omitempty"`
	// AckDelayRate is the probability a delivered ack is late by
	// AckDelayCycles (exposed serially, no retry).
	AckDelayRate float64 `json:"ack_delay_rate,omitempty"`
	// AckDelayCycles is the extra latency of a delayed ack. Default 500.
	AckDelayCycles int `json:"ack_delay_cycles,omitempty"`

	// LinkDegradeRate is the per-kernel-boundary probability that a link
	// degradation window opens (when none is active).
	LinkDegradeRate float64 `json:"link_degrade_rate,omitempty"`
	// LinkDegradeFactor multiplies remote latency and divides inter-chiplet
	// bandwidth while a window is active. Default 4.
	LinkDegradeFactor float64 `json:"link_degrade_factor,omitempty"`
	// LinkDegradeCycles is the window length in core cycles. Default 50000.
	LinkDegradeCycles uint64 `json:"link_degrade_cycles,omitempty"`

	// TableParityRate is the per-kernel-launch probability that a Chiplet
	// Coherence Table parity error is detected, forcing the conservative
	// reset and a baseline-equivalent full synchronization for that boundary.
	TableParityRate float64 `json:"table_parity_rate,omitempty"`

	// MaxAttempts bounds the watchdog's retransmissions of one operation;
	// after MaxAttempts un-acked tries the CP degrades gracefully (full
	// L2 flush+invalidate plus a conservative table mark). Default 4.
	MaxAttempts int `json:"max_attempts,omitempty"`
	// TimeoutCycles is the watchdog's initial ack timeout; it backs off
	// exponentially (x2 per retry) up to BackoffCapCycles. Default 2000.
	TimeoutCycles int `json:"timeout_cycles,omitempty"`
	// BackoffCapCycles caps the exponential backoff. Default 16x
	// TimeoutCycles.
	BackoffCapCycles int `json:"backoff_cap_cycles,omitempty"`
}

// Enabled reports whether the configuration injects any fault at all.
func (c *Config) Enabled() bool {
	if c == nil {
		return false
	}
	return c.ReqDropRate > 0 || c.AckDropRate > 0 || c.AckDelayRate > 0 ||
		c.LinkDegradeRate > 0 || c.TableParityRate > 0
}

// withDefaults fills the magnitude/watchdog knobs that are zero.
func (c Config) withDefaults() Config {
	if c.AckDelayCycles <= 0 {
		c.AckDelayCycles = 500
	}
	if c.LinkDegradeFactor <= 1 {
		c.LinkDegradeFactor = 4
	}
	if c.LinkDegradeCycles == 0 {
		c.LinkDegradeCycles = 50_000
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.TimeoutCycles <= 0 {
		c.TimeoutCycles = 2000
	}
	if c.BackoffCapCycles <= 0 {
		c.BackoffCapCycles = 16 * c.TimeoutCycles
	}
	return c
}

// Canonical returns the configuration with every defaultable knob made
// explicit, so equivalent spellings (zero vs. explicit default) hash alike
// in content-addressed job keys.
func (c Config) Canonical() Config { return c.withDefaults() }

// ParseSpec parses a comma-separated fault specification like
//
//	drop=0.1,delay=0.05,link=0.01,parity=0.002
//
// into a Config. Recognized keys (rates are probabilities in [0,1]):
//
//	drop=R          both req-drop and ack-drop
//	req-drop=R      request loss rate
//	ack-drop=R      ack loss rate
//	delay=R         ack delay rate
//	delay-cycles=N  delayed-ack latency
//	link=R          link-degradation window rate (per kernel boundary)
//	link-factor=F   degradation latency multiplier / bandwidth divisor
//	link-window=N   degradation window length in cycles
//	parity=R        table parity-error rate (per launch)
//	attempts=N      watchdog attempts before graceful degradation
//	timeout=N       initial watchdog timeout in cycles
//	backoff-cap=N   backoff cap in cycles
func ParseSpec(spec string) (*Config, error) {
	c := &Config{}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("faults: field %q is not key=value", field)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		setRate := func(dst ...*float64) error {
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return fmt.Errorf("faults: %s=%q is not a rate in [0,1]", key, val)
			}
			for _, d := range dst {
				*d = f
			}
			return nil
		}
		setInt := func(dst *int) error {
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return fmt.Errorf("faults: %s=%q is not a non-negative integer", key, val)
			}
			*dst = n
			return nil
		}
		var err error
		switch key {
		case "drop":
			err = setRate(&c.ReqDropRate, &c.AckDropRate)
		case "req-drop":
			err = setRate(&c.ReqDropRate)
		case "ack-drop":
			err = setRate(&c.AckDropRate)
		case "delay":
			err = setRate(&c.AckDelayRate)
		case "delay-cycles":
			err = setInt(&c.AckDelayCycles)
		case "link":
			err = setRate(&c.LinkDegradeRate)
		case "link-factor":
			f, ferr := strconv.ParseFloat(val, 64)
			if ferr != nil || f < 1 {
				err = fmt.Errorf("faults: link-factor=%q must be >= 1", val)
			} else {
				c.LinkDegradeFactor = f
			}
		case "link-window":
			n, nerr := strconv.ParseUint(val, 10, 64)
			if nerr != nil {
				err = fmt.Errorf("faults: link-window=%q is not a cycle count", val)
			} else {
				c.LinkDegradeCycles = n
			}
		case "parity":
			err = setRate(&c.TableParityRate)
		case "attempts":
			err = setInt(&c.MaxAttempts)
		case "timeout":
			err = setInt(&c.TimeoutCycles)
		case "backoff-cap":
			err = setInt(&c.BackoffCapCycles)
		default:
			err = fmt.Errorf("faults: unknown key %q (want %s)", key, strings.Join(specKeys, ", "))
		}
		if err != nil {
			return nil, err
		}
	}
	return c, nil
}

var specKeys = func() []string {
	ks := []string{"drop", "req-drop", "ack-drop", "delay", "delay-cycles",
		"link", "link-factor", "link-window", "parity", "attempts", "timeout", "backoff-cap"}
	sort.Strings(ks)
	return ks
}()

// Counters tallies what the injector and the watchdog actually did.
type Counters struct {
	ReqDrops      uint64 `json:"req_drops"`
	AckDrops      uint64 `json:"ack_drops"`
	AckDelays     uint64 `json:"ack_delays"`
	DelayCycles   uint64 `json:"delay_cycles"`
	LinkWindows   uint64 `json:"link_windows"`
	ParityErrors  uint64 `json:"parity_errors"`
	Retries       uint64 `json:"retries"`
	BackoffCycles uint64 `json:"backoff_cycles"`
	Degradations  uint64 `json:"degradations"`
}

// Injector draws fault decisions from a deterministic stream and accounts
// them into the run's stats sheet and trace. It is single-threaded, like the
// simulator that consults it. A nil *Injector injects nothing.
type Injector struct {
	cfg   Config
	state uint64 // splitmix64 state
	sheet *stats.Sheet
	rec   *trace.Recorder

	now       uint64
	linkUntil uint64

	c Counters
}

// NewInjector builds an injector for cfg, accounting into sheet and rec
// (either may be nil).
func NewInjector(cfg Config, sheet *stats.Sheet, rec *trace.Recorder) *Injector {
	cfg = cfg.withDefaults()
	return &Injector{cfg: cfg, state: cfg.Seed, sheet: sheet, rec: rec}
}

// next advances the splitmix64 stream: deterministic, platform-independent,
// and independent of Go's math/rand versioning.
func (i *Injector) next() uint64 {
	i.state += 0x9e3779b97f4a7c15
	z := i.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chance draws one uniform variate and reports whether it fell under p.
// p <= 0 consumes nothing, so enabling one fault class does not shift the
// streams of the others.
func (i *Injector) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	return float64(i.next()>>11)/(1<<53) < p
}

// SetNow advances the injector's clock; the event engine drives this as it
// delivers events, like the trace recorder's clock.
func (i *Injector) SetNow(t uint64) {
	if i == nil {
		return
	}
	i.now = t
}

// MaxAttempts returns the watchdog's attempt bound (>= 1).
func (i *Injector) MaxAttempts() int { return i.cfg.MaxAttempts }

// TimeoutCycles returns the watchdog's initial ack timeout.
func (i *Injector) TimeoutCycles() int { return i.cfg.TimeoutCycles }

// BackoffCapCycles returns the exponential-backoff cap.
func (i *Injector) BackoffCapCycles() int { return i.cfg.BackoffCapCycles }

// DropRequest decides whether a synchronization request to chiplet's local
// CP is lost before executing.
func (i *Injector) DropRequest(chiplet int) bool {
	if i == nil || !i.chance(i.cfg.ReqDropRate) {
		return false
	}
	i.c.ReqDrops++
	i.sheet.Inc(stats.FaultReqDrops)
	i.rec.Fault(chiplet, "req-drop", 0)
	return true
}

// DropAck decides whether an executed operation's completion ack is lost.
func (i *Injector) DropAck(chiplet int) bool {
	if i == nil || !i.chance(i.cfg.AckDropRate) {
		return false
	}
	i.c.AckDrops++
	i.sheet.Inc(stats.FaultAckDrops)
	i.rec.Fault(chiplet, "ack-drop", 0)
	return true
}

// AckDelay returns the extra cycles a delivered ack is late by (0 = on time).
func (i *Injector) AckDelay(chiplet int) int {
	if i == nil || !i.chance(i.cfg.AckDelayRate) {
		return 0
	}
	d := i.cfg.AckDelayCycles
	i.c.AckDelays++
	i.c.DelayCycles += uint64(d)
	i.sheet.Inc(stats.FaultAckDelays)
	i.sheet.Add(stats.FaultDelayCycles, uint64(d))
	i.rec.Fault(chiplet, "ack-delay", uint64(d))
	return d
}

// TableParity decides whether this kernel launch detects a Chiplet Coherence
// Table parity error.
func (i *Injector) TableParity() bool {
	if i == nil || !i.chance(i.cfg.TableParityRate) {
		return false
	}
	i.c.ParityErrors++
	i.sheet.Inc(stats.FaultTableParity)
	i.rec.Fault(-1, "table-parity", 0)
	return true
}

// OnKernelBoundary rolls for a new link-degradation window at a kernel
// boundary (when none is active).
func (i *Injector) OnKernelBoundary() {
	if i == nil || i.now < i.linkUntil || !i.chance(i.cfg.LinkDegradeRate) {
		return
	}
	i.linkUntil = i.now + i.cfg.LinkDegradeCycles
	i.c.LinkWindows++
	i.sheet.Inc(stats.FaultLinkWindows)
	i.rec.Fault(-1, "link-degrade", i.cfg.LinkDegradeCycles)
}

// LinkDegraded reports whether a link-degradation window is active.
func (i *Injector) LinkDegraded() bool {
	return i != nil && i.now < i.linkUntil
}

// LinkFactor returns the active latency multiplier (and bandwidth divisor)
// of the inter-chiplet links: 1 when healthy.
func (i *Injector) LinkFactor() float64 {
	if i.LinkDegraded() {
		return i.cfg.LinkDegradeFactor
	}
	return 1
}

// NoteRetry accounts one watchdog retransmission of an un-acked operation
// after waiting timeout cycles.
func (i *Injector) NoteRetry(chiplet int, timeout uint64) {
	if i == nil {
		return
	}
	i.c.Retries++
	i.c.BackoffCycles += timeout
	i.sheet.Inc(stats.WatchdogRetries)
	i.sheet.Add(stats.WatchdogBackoffCycles, timeout)
	i.rec.Fault(chiplet, "watchdog-retry", timeout)
}

// NoteDegradation accounts one graceful degradation: the watchdog gave up on
// targeted synchronization for chiplet and fell back to the baseline full
// L2 flush+invalidate.
func (i *Injector) NoteDegradation(chiplet int) {
	if i == nil {
		return
	}
	i.c.Degradations++
	i.sheet.Inc(stats.WatchdogDegradations)
	i.rec.Fault(chiplet, "watchdog-degrade", 0)
}

// Counters returns a snapshot of the injection tallies.
func (i *Injector) Counters() Counters {
	if i == nil {
		return Counters{}
	}
	return i.c
}
