package faults

import (
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/trace"
)

func TestParseSpec(t *testing.T) {
	c, err := ParseSpec("drop=0.1, delay=0.05,link=0.01,parity=0.002,attempts=6,timeout=1000")
	if err != nil {
		t.Fatal(err)
	}
	if c.ReqDropRate != 0.1 || c.AckDropRate != 0.1 {
		t.Errorf("drop= must set both loss rates, got req=%v ack=%v", c.ReqDropRate, c.AckDropRate)
	}
	if c.AckDelayRate != 0.05 || c.LinkDegradeRate != 0.01 || c.TableParityRate != 0.002 {
		t.Errorf("rates parsed wrong: %+v", c)
	}
	if c.MaxAttempts != 6 || c.TimeoutCycles != 1000 {
		t.Errorf("watchdog knobs parsed wrong: %+v", c)
	}

	c, err = ParseSpec("req-drop=0.2,ack-drop=0.3,delay-cycles=750,link-factor=8,link-window=1000,backoff-cap=9000")
	if err != nil {
		t.Fatal(err)
	}
	if c.ReqDropRate != 0.2 || c.AckDropRate != 0.3 || c.AckDelayCycles != 750 {
		t.Errorf("split drop keys parsed wrong: %+v", c)
	}
	if c.LinkDegradeFactor != 8 || c.LinkDegradeCycles != 1000 || c.BackoffCapCycles != 9000 {
		t.Errorf("link/backoff knobs parsed wrong: %+v", c)
	}

	if c, err := ParseSpec(""); err != nil || c.Enabled() {
		t.Errorf("empty spec must parse to a disabled config, got (%+v, %v)", c, err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"drop",          // not key=value
		"drop=1.5",      // rate out of range
		"drop=-0.1",     // negative rate
		"drop=x",        // not a number
		"attempts=-2",   // negative integer
		"link-factor=0", // multiplier below 1
		"link-window=x", // not a cycle count
		"wat=1",         // unknown key
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted an invalid spec", spec)
		}
	}
	// The unknown-key error teaches the vocabulary.
	_, err := ParseSpec("wat=1")
	if err == nil || !strings.Contains(err.Error(), "parity") {
		t.Errorf("unknown-key error %v does not list the recognized keys", err)
	}
}

func TestEnabled(t *testing.T) {
	var nilCfg *Config
	if nilCfg.Enabled() {
		t.Error("nil config reports enabled")
	}
	if (&Config{Seed: 42, MaxAttempts: 9}).Enabled() {
		t.Error("config with only watchdog knobs set injects nothing and must be disabled")
	}
	for _, c := range []Config{
		{ReqDropRate: 0.1}, {AckDropRate: 0.1}, {AckDelayRate: 0.1},
		{LinkDegradeRate: 0.1}, {TableParityRate: 0.1},
	} {
		if !c.Enabled() {
			t.Errorf("config %+v must be enabled", c)
		}
	}
}

func TestCanonicalFillsDefaults(t *testing.T) {
	c := Config{AckDropRate: 0.5}.Canonical()
	if c.AckDelayCycles != 500 || c.LinkDegradeFactor != 4 || c.LinkDegradeCycles != 50_000 {
		t.Errorf("magnitude defaults wrong: %+v", c)
	}
	if c.MaxAttempts != 4 || c.TimeoutCycles != 2000 || c.BackoffCapCycles != 16*2000 {
		t.Errorf("watchdog defaults wrong: %+v", c)
	}
	if c2 := c.Canonical(); c2 != c {
		t.Error("Canonical is not idempotent")
	}
}

// TestDeterminism pins the splitmix64 stream: the same seed yields the same
// decision sequence, a different seed a different one.
func TestDeterminism(t *testing.T) {
	draw := func(seed uint64) []bool {
		inj := NewInjector(Config{Seed: seed, AckDropRate: 0.5}, nil, nil)
		out := make([]bool, 64)
		for k := range out {
			out[k] = inj.DropAck(0)
		}
		return out
	}
	a, b := draw(7), draw(7)
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("same seed diverged at draw %d", k)
		}
	}
	c := draw(8)
	same := true
	for k := range a {
		if a[k] != c[k] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical 64-draw sequences")
	}
}

// TestZeroRateConsumesNothing pins the stream-independence property: a
// disabled fault class must not consume draws, so enabling one class never
// shifts another class's schedule.
func TestZeroRateConsumesNothing(t *testing.T) {
	a := NewInjector(Config{Seed: 3, AckDropRate: 0.5}, nil, nil)
	b := NewInjector(Config{Seed: 3, AckDropRate: 0.5, ReqDropRate: 0}, nil, nil)
	for k := 0; k < 64; k++ {
		b.DropRequest(0) // rate 0: must not advance the stream
		if a.DropAck(0) != b.DropAck(0) {
			t.Fatalf("zero-rate DropRequest shifted the ack stream at draw %d", k)
		}
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	inj.SetNow(100)
	inj.OnKernelBoundary()
	inj.NoteRetry(0, 10)
	inj.NoteDegradation(0)
	if inj.DropRequest(0) || inj.DropAck(0) || inj.TableParity() || inj.LinkDegraded() {
		t.Error("nil injector injected a fault")
	}
	if inj.AckDelay(0) != 0 || inj.LinkFactor() != 1 {
		t.Error("nil injector perturbed latency")
	}
	if inj.Counters() != (Counters{}) {
		t.Error("nil injector counted something")
	}
}

// TestLinkWindow drives the clock through one degradation window.
func TestLinkWindow(t *testing.T) {
	inj := NewInjector(Config{Seed: 1, LinkDegradeRate: 1, LinkDegradeFactor: 3, LinkDegradeCycles: 100}, nil, nil)
	if inj.LinkDegraded() {
		t.Fatal("degraded before any boundary")
	}
	inj.SetNow(10)
	inj.OnKernelBoundary() // rate 1: must open a window
	if !inj.LinkDegraded() || inj.LinkFactor() != 3 {
		t.Fatalf("window not open: degraded=%v factor=%v", inj.LinkDegraded(), inj.LinkFactor())
	}
	inj.SetNow(109)
	if !inj.LinkDegraded() {
		t.Fatal("window closed early")
	}
	inj.SetNow(110)
	if inj.LinkDegraded() || inj.LinkFactor() != 1 {
		t.Fatal("window did not close at now+cycles")
	}
	if got := inj.Counters().LinkWindows; got != 1 {
		t.Fatalf("LinkWindows=%d, want 1", got)
	}
}

// TestAccounting checks decisions land in the counters, the stats sheet, and
// the trace.
func TestAccounting(t *testing.T) {
	sheet := stats.New()
	rec := trace.New(0)
	inj := NewInjector(Config{Seed: 1, AckDropRate: 1, AckDelayRate: 1, AckDelayCycles: 42}, sheet, rec)
	if !inj.DropAck(2) {
		t.Fatal("rate-1 ack drop did not fire")
	}
	if d := inj.AckDelay(1); d != 42 {
		t.Fatalf("AckDelay=%d, want 42", d)
	}
	inj.NoteRetry(3, 2000)
	inj.NoteDegradation(3)

	c := inj.Counters()
	if c.AckDrops != 1 || c.AckDelays != 1 || c.DelayCycles != 42 || c.Retries != 1 || c.Degradations != 1 {
		t.Fatalf("counters wrong: %+v", c)
	}
	if sheet.Get(stats.FaultAckDrops) != 1 || sheet.Get(stats.FaultDelayCycles) != 42 ||
		sheet.Get(stats.WatchdogRetries) != 1 || sheet.Get(stats.WatchdogBackoffCycles) != 2000 ||
		sheet.Get(stats.WatchdogDegradations) != 1 {
		t.Fatal("sheet mirror wrong")
	}
	var kinds []string
	for _, e := range rec.Events() {
		if e.Kind == trace.KindFault {
			kinds = append(kinds, e.Name)
		}
	}
	want := []string{"ack-drop", "ack-delay", "watchdog-retry", "watchdog-degrade"}
	if len(kinds) != len(want) {
		t.Fatalf("trace fault events %v, want %v", kinds, want)
	}
	for k := range want {
		if kinds[k] != want[k] {
			t.Fatalf("trace fault events %v, want %v", kinds, want)
		}
	}
}
