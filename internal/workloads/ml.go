package workloads

import "repro/internal/kernels"

// ML benchmarks: the DeepBench RNNs (GRU and LSTM, each in the paper's two
// input configurations) and the DNNMark-style CNN.
//
// The RNNs have producer-consumer inter-kernel reuse (hidden state chained
// through timestep kernels) plus read-only weight matrices re-read by every
// gate GEMM — input matrix weights whose reuse CPElide preserves across
// kernels. Weights are sharded across chiplets (persistent-RNN style), so
// each chiplet re-reads its own shard; the paper reports HMG slightly (~3%)
// ahead of CPElide on the RNNs thanks to remote-read caching, which this
// descriptor reproduces as rough parity.

func init() {
	register(Spec{
		Name:  "rnn-gru-small",
		Class: kernels.ModerateHighReuse,
		Input: "BS:4, TS:2, Hidden Layers: 256",
		Build: func(a *kernels.Allocator, p Params) *kernels.Workload {
			return rnn(a, p, "rnn-gru-small", 3, 256, 16)
		},
	})
	register(Spec{
		Name:  "rnn-gru-large",
		Class: kernels.ModerateHighReuse,
		Input: "BS:16, TS:4, Hidden Layers: 512",
		Build: func(a *kernels.Allocator, p Params) *kernels.Workload {
			return rnn(a, p, "rnn-gru-large", 3, 512, 10)
		},
	})
	register(Spec{
		Name:  "rnn-lstm-small",
		Class: kernels.ModerateHighReuse,
		Input: "BS:4, TS:2, Hidden Layers: 256",
		Build: func(a *kernels.Allocator, p Params) *kernels.Workload {
			return rnn(a, p, "rnn-lstm-small", 4, 256, 16)
		},
	})
	register(Spec{
		Name:  "rnn-lstm-large",
		Class: kernels.ModerateHighReuse,
		Input: "BS:16, TS:4, Hidden Layers: 512",
		Build: func(a *kernels.Allocator, p Params) *kernels.Workload {
			return rnn(a, p, "rnn-lstm-large", 4, 512, 10)
		},
	})
	register(Spec{
		Name:  "cnn",
		Class: kernels.LowReuse,
		Input: "128x128x3, BS:4 (Conv+Pool+FC)",
		Build: cnn,
	})
}

// rnn builds a recurrent network inference: per timestep, one GEMM kernel
// per gate (broadcast-reading that gate's weight matrices, shared by all
// chiplets) followed by a state-update kernel producing the hidden state
// the next timestep consumes. The gate GEMMs are compute-heavy, so the
// shared-weight remote reads mostly hide under the ALU time; what remains
// is HMG's slight edge from caching remote reads, which CPElide does not.
func rnn(alloc *kernels.Allocator, p Params, name string, gates, hidden, timesteps int) *kernels.Workload {
	// Per-gate weights: input-to-hidden + hidden-to-hidden matrices,
	// sharded across chiplets like persistent-RNN weight placement.
	wElems := p.scale(4 * hidden * hidden)
	var weights []*kernels.DataStructure
	for g := 0; g < gates; g++ {
		weights = append(weights, alloc.Alloc(fmt2("weights_g%d", g), wElems, 4))
	}
	stateElems := p.scale(hidden * hidden / 2)
	h0 := alloc.Alloc("h0", stateElems, 4)
	h1 := alloc.Alloc("h1", stateElems, 4)
	gatesBuf := alloc.Alloc("gates", p.scale(gates*hidden*hidden/4), 4)
	x := alloc.Alloc("x", stateElems, 4)
	const wgs = 480

	compute := uint32(1900)
	if hidden >= 512 {
		compute = 6200
	}
	gateK := func(g int, hin *kernels.DataStructure, name string) *kernels.Kernel {
		return &kernels.Kernel{
			Name: name,
			Args: []kernels.Arg{
				{DS: weights[g], Mode: kernels.Read, Pattern: kernels.Linear},
				{DS: x, Mode: kernels.Read, Pattern: kernels.Linear},
				{DS: hin, Mode: kernels.Read, Pattern: kernels.Linear},
				{DS: gatesBuf, Mode: kernels.ReadWrite, Pattern: kernels.Linear},
			},
			WGs: wgs, ComputePerWG: compute, LDSBytesPerWG: 16384,
		}
	}
	updateK := func(hin, hout *kernels.DataStructure, name string) *kernels.Kernel {
		return &kernels.Kernel{
			Name: name,
			Args: []kernels.Arg{
				{DS: gatesBuf, Mode: kernels.Read, Pattern: kernels.Linear},
				{DS: hin, Mode: kernels.Read, Pattern: kernels.Linear},
				{DS: hout, Mode: kernels.ReadWrite, Pattern: kernels.Linear},
			},
			WGs: wgs, ComputePerWG: compute / 6,
		}
	}
	var even, odd []*kernels.Kernel
	for g := 0; g < gates; g++ {
		even = append(even, gateK(g, h0, fmt2("gate%d_even", g)))
		odd = append(odd, gateK(g, h1, fmt2("gate%d_odd", g)))
	}
	even = append(even, updateK(h0, h1, "update_even"))
	odd = append(odd, updateK(h1, h0, "update_odd"))
	var seq []*kernels.Kernel
	for t := 0; t < p.iters(timesteps); t++ {
		if t%2 == 0 {
			seq = append(seq, even...)
		} else {
			seq = append(seq, odd...)
		}
	}
	return workload(name, kernels.ModerateHighReuse, 0x2111, seq)
}

// cnn: convolution + pooling + fully connected inference. Each activation
// is produced by one kernel and consumed by exactly the next, and the
// convolutions are strongly compute-bound, so no protocol gains much (the
// paper groups CNN with the compute-bound benchmarks).
func cnn(alloc *kernels.Allocator, p Params) *kernels.Workload {
	input := alloc.Alloc("input", p.scale(196608), 4) // 128x128x3 x BS4
	filters1 := alloc.Alloc("filters1", 36864, 4)
	act1 := alloc.Alloc("act1", p.scale(1048576), 4)
	pool1 := alloc.Alloc("pool1", p.scale(262144), 4)
	filters2 := alloc.Alloc("filters2", 73728, 4)
	act2 := alloc.Alloc("act2", p.scale(524288), 4)
	pool2 := alloc.Alloc("pool2", p.scale(131072), 4)
	fcW := alloc.Alloc("fc_weights", p.scale(1048576), 4)
	out := alloc.Alloc("out", 8192, 4)
	const wgs = 480

	conv := func(in, f, outDS *kernels.DataStructure, name string) *kernels.Kernel {
		return &kernels.Kernel{
			Name: name,
			Args: []kernels.Arg{
				{DS: in, Mode: kernels.Read, Pattern: kernels.Stencil, HaloLines: 1},
				{DS: f, Mode: kernels.Read, Pattern: kernels.Broadcast},
				{DS: outDS, Mode: kernels.ReadWrite, Pattern: kernels.Linear},
			},
			WGs: wgs, ComputePerWG: 14000, LDSBytesPerWG: 32768,
		}
	}
	pool := func(in, outDS *kernels.DataStructure, name string) *kernels.Kernel {
		return &kernels.Kernel{
			Name: name,
			Args: []kernels.Arg{
				{DS: in, Mode: kernels.Read, Pattern: kernels.Linear},
				{DS: outDS, Mode: kernels.ReadWrite, Pattern: kernels.Linear},
			},
			WGs: wgs, ComputePerWG: 900,
		}
	}
	fc := &kernels.Kernel{
		Name: "fc",
		Args: []kernels.Arg{
			{DS: pool2, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: fcW, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: out, Mode: kernels.ReadWrite, Pattern: kernels.Linear},
		},
		WGs: wgs, ComputePerWG: 5000, LDSBytesPerWG: 16384,
	}
	seq := []*kernels.Kernel{
		conv(input, filters1, act1, "conv1"),
		pool(act1, pool1, "pool1"),
		conv(pool1, filters2, act2, "conv2"),
		pool(act2, pool2, "pool2"),
		fc,
	}
	// The paper's CNN runs several batches back to back.
	full := repeat(nil, p.iters(3), seq...)
	return workload("cnn", kernels.LowReuse, 0xC44, full)
}
