// Package workloads provides descriptors for the paper's 24 benchmarks
// (Table II): traditional GPGPU, graph analytics, ML, and HPC applications
// spanning diverse inter-kernel access patterns.
//
// Each descriptor reproduces the kernel-boundary-relevant behavior of the
// original: the dynamic kernel sequence, the data structures with their
// access modes and address ranges, the inter-kernel reuse pattern
// (iterative, producer-consumer, stencil ping-pong, graph-irregular,
// LDS-staged), the memory footprint relative to the 8 MB per-chiplet L2 and
// 16 MB L3, and where each sits between compute- and memory-bound. CPElide
// acts on exactly this information — kernel argument metadata and WG
// placement — so these descriptors exercise the same decision points as the
// originals.
package workloads

import (
	"fmt"
	"sort"

	"repro/internal/kernels"
)

// Params tunes workload construction.
type Params struct {
	// Scale multiplies data-structure footprints (default 1.0, the paper's
	// inputs). Tests use smaller scales; the kernel sequences are
	// unchanged.
	Scale float64
	// Iters overrides the iteration count of iterative workloads (0 keeps
	// each workload's default).
	Iters int
}

func (p Params) scale(elems int) int {
	if p.Scale <= 0 || p.Scale == 1 {
		return elems
	}
	v := int(float64(elems) * p.Scale)
	// Keep slicing and paging well-formed: at least one line per WG at
	// reasonable grid sizes, rounded to 4 Ki elements.
	const q = 4096
	if v < q {
		return q
	}
	return v / q * q
}

func (p Params) iters(def int) int {
	if p.Iters > 0 {
		return p.Iters
	}
	return def
}

// Spec is one registered benchmark.
type Spec struct {
	// Name matches Table II.
	Name string
	// Class is the paper's reuse grouping.
	Class kernels.ReuseClass
	// Input documents the Table II input the descriptor mirrors.
	Input string
	// Build constructs the workload using alloc for data structures.
	Build func(alloc *kernels.Allocator, p Params) *kernels.Workload
}

var registry []Spec

func register(s Spec) { registry = append(registry, s) }

// All returns every benchmark in Table II order (moderate-to-high reuse
// first, then low reuse).
func All() []Spec {
	out := make([]Spec, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class == kernels.ModerateHighReuse
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Names returns all benchmark names.
func Names() []string {
	specs := All()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// ByClass returns the benchmarks in one reuse class.
func ByClass(c kernels.ReuseClass) []Spec {
	var out []Spec
	for _, s := range All() {
		if s.Class == c {
			out = append(out, s)
		}
	}
	return out
}

// Get returns the named benchmark.
func Get(name string) (Spec, bool) {
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Build constructs the named benchmark.
func Build(name string, alloc *kernels.Allocator, p Params) (*kernels.Workload, error) {
	s, ok := Get(name)
	if !ok {
		return nil, fmt.Errorf("workloads: unknown benchmark %q", name)
	}
	w := s.Build(alloc, p)
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// fmt2 is shorthand for fmt.Sprintf in workload builders.
func fmt2(f string, args ...any) string { return fmt.Sprintf(f, args...) }

// repeat appends n copies of the given kernels to seq, in order, modeling
// iterative launch loops.
func repeat(seq []*kernels.Kernel, n int, ks ...*kernels.Kernel) []*kernels.Kernel {
	for i := 0; i < n; i++ {
		seq = append(seq, ks...)
	}
	return seq
}

// workload assembles the Workload with its structure list derived from the
// kernel sequence.
func workload(name string, class kernels.ReuseClass, seed uint64, seq []*kernels.Kernel) *kernels.Workload {
	seen := map[*kernels.DataStructure]bool{}
	var ds []*kernels.DataStructure
	for _, k := range seq {
		for _, a := range k.Args {
			if !seen[a.DS] {
				seen[a.DS] = true
				ds = append(ds, a.DS)
			}
		}
	}
	return &kernels.Workload{
		Name:       name,
		Class:      class,
		Structures: ds,
		Sequence:   seq,
		Seed:       seed,
	}
}
