package workloads

import (
	"testing"

	"repro/internal/kernels"
)

// TestTableIIInventory pins the benchmark suite to the paper's Table II:
// 24 workloads, 18 moderate-to-high reuse and 6 low reuse.
func TestTableIIInventory(t *testing.T) {
	all := All()
	if len(all) != 24 {
		t.Fatalf("registered %d benchmarks, want 24", len(all))
	}
	high := ByClass(kernels.ModerateHighReuse)
	low := ByClass(kernels.LowReuse)
	if len(high) != 18 || len(low) != 6 {
		t.Errorf("classes = %d high, %d low; want 18, 6", len(high), len(low))
	}
	// Table II's low-reuse group.
	wantLow := map[string]bool{
		"btree": true, "cnn": true, "dwt2d": true,
		"nw": true, "pathfinder": true, "srad_v2": true,
	}
	for _, s := range low {
		if !wantLow[s.Name] {
			t.Errorf("%s classified low-reuse, not in Table II's group", s.Name)
		}
	}
	seen := map[string]bool{}
	for _, s := range all {
		if seen[s.Name] {
			t.Errorf("duplicate benchmark %s", s.Name)
		}
		seen[s.Name] = true
		if s.Input == "" {
			t.Errorf("%s missing Table II input", s.Name)
		}
	}
}

func TestAllWorkloadsBuildAndValidate(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			alloc := kernels.NewAllocator(0x1000_0000, 4096)
			w, err := Build(s.Name, alloc, Params{Scale: 0.1})
			if err != nil {
				t.Fatal(err)
			}
			if len(w.Sequence) == 0 || len(w.Structures) == 0 {
				t.Fatal("empty workload")
			}
			if w.Seed == 0 {
				t.Error("workload needs a nonzero seed")
			}
			// Dynamic kernel counts stay within the paper's observed
			// range (up to 510 dynamic kernels).
			if len(w.Sequence) > 510 {
				t.Errorf("%d dynamic kernels exceeds the paper's max", len(w.Sequence))
			}
			// Every kernel tracks at most 8 unique structures after the
			// coherence table's per-kernel coarsening threshold... the raw
			// argument count may exceed it, but not absurdly.
			for _, k := range w.Sequence {
				if len(k.Args) > 12 {
					t.Errorf("kernel %s has %d args", k.Name, len(k.Args))
				}
			}
		})
	}
}

func TestScaleShrinksFootprint(t *testing.T) {
	a1 := kernels.NewAllocator(0x1000_0000, 4096)
	full, err := Build("babelstream", a1, Params{})
	if err != nil {
		t.Fatal(err)
	}
	a2 := kernels.NewAllocator(0x1000_0000, 4096)
	small, err := Build("babelstream", a2, Params{Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if small.FootprintBytes() >= full.FootprintBytes() {
		t.Errorf("scale did not shrink: %d vs %d",
			small.FootprintBytes(), full.FootprintBytes())
	}
	// BabelStream's paper input: three 4 MB arrays of 524288 doubles.
	if full.Structures[0].Elems() != 524288 {
		t.Errorf("babelstream n = %d, want 524288", full.Structures[0].Elems())
	}
}

func TestItersOverride(t *testing.T) {
	a := kernels.NewAllocator(0x1000_0000, 4096)
	w, err := Build("square", a, Params{Scale: 0.1, Iters: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Sequence) != 4 { // init + 3 iterations
		t.Errorf("sequence = %d kernels", len(w.Sequence))
	}
}

func TestGetUnknown(t *testing.T) {
	if _, ok := Get("nope"); ok {
		t.Error("unknown benchmark found")
	}
	a := kernels.NewAllocator(0x1000_0000, 4096)
	if _, err := Build("nope", a, Params{}); err == nil {
		t.Error("unknown benchmark built")
	}
}

// TestFootprintsMatchDesignIntent pins the working-set relationships the
// reproduction relies on: streaming suites fit the aggregate L2, SRAD and
// BTree exceed it.
func TestFootprintsMatchDesignIntent(t *testing.T) {
	const aggregateL2 = 4 * 8 << 20
	foot := func(name string) uint64 {
		a := kernels.NewAllocator(0x1000_0000, 4096)
		w, err := Build(name, a, Params{})
		if err != nil {
			t.Fatal(err)
		}
		return w.FootprintBytes()
	}
	if f := foot("babelstream"); f >= aggregateL2 {
		t.Errorf("babelstream footprint %d should fit aggregate L2", f)
	}
	if f := foot("srad_v2"); f <= aggregateL2 {
		t.Errorf("srad_v2 footprint %d should exceed aggregate L2", f)
	}
	if f := foot("btree"); f <= aggregateL2 {
		t.Errorf("btree footprint %d should exceed aggregate L2", f)
	}
	if f := foot("lud"); f >= 8<<20 {
		t.Errorf("lud matrix %d should fit a single chiplet L2", f)
	}
}
