package workloads

import "repro/internal/kernels"

// HPC and traditional GPGPU benchmarks: HACC, Lulesh, Pennant, LUD,
// Gaussian, Backprop, BTree.

func init() {
	register(Spec{
		Name:  "hacc",
		Class: kernels.ModerateHighReuse,
		Input: "0.5 0.1 512 0.1 2 N 12 rcb",
		Build: hacc,
	})
	register(Spec{
		Name:  "lulesh",
		Class: kernels.ModerateHighReuse,
		Input: "1.0e-2 10",
		Build: lulesh,
	})
	register(Spec{
		Name:  "pennant",
		Class: kernels.ModerateHighReuse,
		Input: "noh.pnt",
		Build: pennant,
	})
	register(Spec{
		Name:  "lud",
		Class: kernels.ModerateHighReuse,
		Input: "512.dat",
		Build: lud,
	})
	register(Spec{
		Name:  "gaussian",
		Class: kernels.ModerateHighReuse,
		Input: "256x256",
		Build: gaussian,
	})
	register(Spec{
		Name:  "backprop",
		Class: kernels.ModerateHighReuse,
		Input: "65536",
		Build: backprop,
	})
	register(Spec{
		Name:  "btree",
		Class: kernels.LowReuse,
		Input: "mil.txt",
		Build: btree,
	})
}

// hacc: n-body short-force particle kernels. Plenty of MLP hides the
// baseline's L2 misses, so CPElide's reuse preservation translates into
// little speedup (the paper groups HACC with FW and Gaussian).
func hacc(alloc *kernels.Allocator, p Params) *kernels.Workload {
	n := p.scale(131072) // 3 MB per 3-vector array: fits the shared L3
	pos := alloc.Alloc("pos", n*3, 8)
	vel := alloc.Alloc("vel", n*3, 8)
	force := alloc.Alloc("force", n*3, 8)
	const wgs = 480
	forceK := &kernels.Kernel{
		Name: "hacc_force",
		Args: []kernels.Arg{
			{DS: pos, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: pos, Mode: kernels.Read, Pattern: kernels.Indirect,
				TouchesPerLine: 1, HotFraction: 0.3, WorkLinesPerWG: 64},
			{DS: force, Mode: kernels.ReadWrite, Pattern: kernels.Linear},
		},
		WGs: wgs, ComputePerWG: 2400, MLPFactor: 2.2,
	}
	updateK := &kernels.Kernel{
		Name: "hacc_update",
		Args: []kernels.Arg{
			{DS: force, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: vel, Mode: kernels.ReadWrite, Pattern: kernels.Linear, ReadModifyWrite: true},
			{DS: pos, Mode: kernels.ReadWrite, Pattern: kernels.Linear, ReadModifyWrite: true},
		},
		WGs: wgs, ComputePerWG: 1200, MLPFactor: 2.2,
	}
	seq := repeat(nil, p.iters(8), forceK, updateK)
	return workload("hacc", kernels.ModerateHighReuse, 0x4ACC, seq)
}

// lulesh: unstructured shock hydrodynamics; a mix of linear sweeps and
// indirect gathers over node/element arrays (+16% in the paper).
func lulesh(alloc *kernels.Allocator, p Params) *kernels.Workload {
	n := p.scale(262144)
	coords := alloc.Alloc("coords", n*3, 8)
	forces := alloc.Alloc("forces", n*3, 8)
	energy := alloc.Alloc("energy", n, 8)
	volumes := alloc.Alloc("volumes", n, 8)
	nodelist := alloc.Alloc("nodelist", n*2, 4)
	const wgs = 480
	calcForce := &kernels.Kernel{
		Name: "CalcForceForNodes",
		Args: []kernels.Arg{
			{DS: coords, Mode: kernels.Read, Pattern: kernels.Stencil, HaloLines: 2},
			{DS: nodelist, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: coords, Mode: kernels.Read, Pattern: kernels.Indirect,
				TouchesPerLine: 1, HotFraction: 0.4},
			{DS: forces, Mode: kernels.ReadWrite, Pattern: kernels.Linear},
		},
		WGs: wgs, ComputePerWG: 640,
	}
	advance := &kernels.Kernel{
		Name: "LagrangeNodal",
		Args: []kernels.Arg{
			{DS: forces, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: coords, Mode: kernels.ReadWrite, Pattern: kernels.Linear, ReadModifyWrite: true},
		},
		WGs: wgs, ComputePerWG: 380,
	}
	eos := &kernels.Kernel{
		Name: "EvalEOS",
		Args: []kernels.Arg{
			{DS: volumes, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: energy, Mode: kernels.ReadWrite, Pattern: kernels.Linear, ReadModifyWrite: true},
		},
		WGs: wgs, ComputePerWG: 520,
	}
	seq := repeat(nil, p.iters(10), calcForce, advance, eos)
	return workload("lulesh", kernels.ModerateHighReuse, 0x1013, seq)
}

// pennant: unstructured mesh hydrodynamics. The mesh topology (points,
// read via indirect gathers into a hot subset) changes only on occasional
// remesh steps, while the per-cycle kernels stream zone/side/density arrays
// whose partitions stay on their chiplets — the working set "fits into the
// aggregate L2 capacity", giving CPElide the +38% the paper reports.
func pennant(alloc *kernels.Allocator, p Params) *kernels.Workload {
	n := p.scale(393216)
	pts := alloc.Alloc("points", n, 8)
	zones := alloc.Alloc("zones", n, 8)
	sides := alloc.Alloc("sides", n*2, 8)
	rho := alloc.Alloc("rho", n, 8)
	const wgs = 480
	gather := &kernels.Kernel{
		Name: "pennant_gather",
		Args: []kernels.Arg{
			{DS: pts, Mode: kernels.Read, Pattern: kernels.Indirect,
				TouchesPerLine: 1, HotFraction: 0.25, WorkLinesPerWG: 24},
			{DS: sides, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: zones, Mode: kernels.ReadWrite, Pattern: kernels.Linear},
		},
		WGs: wgs, ComputePerWG: 420,
	}
	corner := &kernels.Kernel{
		Name: "pennant_cornerforce",
		Args: []kernels.Arg{
			{DS: zones, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: rho, Mode: kernels.ReadWrite, Pattern: kernels.Linear, ReadModifyWrite: true},
		},
		WGs: wgs, ComputePerWG: 360,
	}
	advect := &kernels.Kernel{
		Name: "pennant_advect",
		Args: []kernels.Arg{
			{DS: rho, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: sides, Mode: kernels.ReadWrite, Pattern: kernels.Linear, ReadModifyWrite: true},
		},
		WGs: wgs, ComputePerWG: 360,
	}
	remesh := &kernels.Kernel{
		Name: "pennant_remesh",
		Args: []kernels.Arg{
			{DS: sides, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: pts, Mode: kernels.ReadWrite, Pattern: kernels.Linear, ReadModifyWrite: true},
		},
		WGs: wgs, ComputePerWG: 360,
	}
	var seq []*kernels.Kernel
	for i := 0; i < p.iters(12); i++ {
		seq = append(seq, gather, corner, advect)
		if i%5 == 4 {
			seq = append(seq, remesh)
		}
	}
	return workload("pennant", kernels.ModerateHighReuse, 0x9E2217, seq)
}

// lud: blocked LU decomposition of a 1 MB matrix that fits comfortably in
// each chiplet's L2 and is re-touched by all three kernels every iteration
// through LDS staging (+48% in the paper — its largest gain; ~0% remote
// traffic because the partitions never cross).
func lud(alloc *kernels.Allocator, p Params) *kernels.Workload {
	n := p.scale(1024 * 1024)
	m := alloc.Alloc("matrix", n, 4)
	const wgs = 480
	diag := &kernels.Kernel{
		Name: "lud_diagonal",
		Args: []kernels.Arg{
			{DS: m, Mode: kernels.ReadWrite, Pattern: kernels.Linear, ReadModifyWrite: true},
		},
		WGs: 64, ComputePerWG: 900, LDSBytesPerWG: 32768,
	}
	peri := &kernels.Kernel{
		Name: "lud_perimeter",
		Args: []kernels.Arg{
			{DS: m, Mode: kernels.ReadWrite, Pattern: kernels.Linear, ReadModifyWrite: true},
		},
		WGs: 192, ComputePerWG: 700, LDSBytesPerWG: 32768,
	}
	internal := &kernels.Kernel{
		Name: "lud_internal",
		Args: []kernels.Arg{
			{DS: m, Mode: kernels.ReadWrite, Pattern: kernels.Linear, ReadModifyWrite: true},
		},
		WGs: wgs, ComputePerWG: 420, LDSBytesPerWG: 32768,
	}
	seq := repeat(nil, p.iters(10), diag, peri, internal)
	return workload("lud", kernels.ModerateHighReuse, 0x10D, seq)
}

// gaussian: row elimination with two tiny kernels per row — hundreds of
// dynamic kernels (the paper's workloads reach 510) over a small matrix.
// High MLP and a footprint that fits the shared L3 keep the baseline's
// misses cheap, so CPElide gains little.
func gaussian(alloc *kernels.Allocator, p Params) *kernels.Workload {
	n := p.scale(256 * 256)
	a := alloc.Alloc("a", n, 4)
	b := alloc.Alloc("b", 16384, 4)
	const wgs = 240
	fan1 := &kernels.Kernel{
		Name: "fan1",
		Args: []kernels.Arg{
			{DS: a, Mode: kernels.ReadWrite, Pattern: kernels.Linear, ReadModifyWrite: true},
		},
		WGs: wgs, ComputePerWG: 1100, MLPFactor: 2.0,
	}
	fan2 := &kernels.Kernel{
		Name: "fan2",
		Args: []kernels.Arg{
			{DS: a, Mode: kernels.ReadWrite, Pattern: kernels.Linear, ReadModifyWrite: true},
			{DS: b, Mode: kernels.ReadWrite, Pattern: kernels.Linear, ReadModifyWrite: true},
		},
		WGs: wgs, ComputePerWG: 1300, MLPFactor: 2.0,
	}
	seq := repeat(nil, p.iters(120), fan1, fan2)
	return workload("gaussian", kernels.ModerateHighReuse, 0x6A55, seq)
}

// backprop: three-phase LDS-staged layers — load into LDS, compute, write
// back — where inter-kernel locality helps only the global-memory phases
// (+10% in the paper).
func backprop(alloc *kernels.Allocator, p Params) *kernels.Workload {
	in := alloc.Alloc("input", p.scale(65536), 4)
	w1 := alloc.Alloc("weights1", p.scale(1048576), 4)
	hidden := alloc.Alloc("hidden", p.scale(65536), 4)
	delta := alloc.Alloc("delta", p.scale(65536), 4)
	const wgs = 480
	forward := &kernels.Kernel{
		Name: "bpnn_layerforward",
		Args: []kernels.Arg{
			{DS: in, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: w1, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: hidden, Mode: kernels.ReadWrite, Pattern: kernels.Linear},
		},
		WGs: wgs, ComputePerWG: 520, LDSBytesPerWG: 32768,
	}
	adjust := &kernels.Kernel{
		Name: "bpnn_adjust_weights",
		Args: []kernels.Arg{
			{DS: delta, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: hidden, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: w1, Mode: kernels.ReadWrite, Pattern: kernels.Linear, ReadModifyWrite: true},
		},
		WGs: wgs, ComputePerWG: 480, LDSBytesPerWG: 32768,
	}
	seq := repeat(nil, p.iters(8), forward, adjust)
	return workload("backprop", kernels.ModerateHighReuse, 0xBAC2, seq)
}

// btree: batched key lookups walking a 48 MB tree — random reads far larger
// than the aggregate L2, touched once per batch. No reuse to preserve, and
// HMG's directory (12K entries x 4 lines) thrashes on the random remote
// reads (the paper: Baseline outperforms HMG ~15% here).
func btree(alloc *kernels.Allocator, p Params) *kernels.Workload {
	tree := alloc.Alloc("tree", p.scale(6*1024*1024), 8)
	keys := alloc.Alloc("keys", p.scale(262144), 4)
	res := alloc.Alloc("results", p.scale(262144), 4)
	const wgs = 480
	findK := &kernels.Kernel{
		Name: "findK",
		Args: []kernels.Arg{
			{DS: keys, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: tree, Mode: kernels.Read, Pattern: kernels.Indirect,
				TouchesPerLine: 6, WorkLinesPerWG: 40},
			{DS: res, Mode: kernels.ReadWrite, Pattern: kernels.Linear},
		},
		WGs: wgs, ComputePerWG: 300,
	}
	findRange := &kernels.Kernel{
		Name: "findRangeK",
		Args: []kernels.Arg{
			{DS: keys, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: tree, Mode: kernels.Read, Pattern: kernels.Indirect,
				TouchesPerLine: 6, WorkLinesPerWG: 40},
			{DS: res, Mode: kernels.ReadWrite, Pattern: kernels.Linear},
		},
		WGs: wgs, ComputePerWG: 300,
	}
	seq := repeat(nil, p.iters(3), findK, findRange)
	return workload("btree", kernels.LowReuse, 0xB7EE, seq)
}
