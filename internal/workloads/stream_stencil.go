package workloads

import "repro/internal/kernels"

// Streaming and stencil benchmarks: BabelStream, Square, Hotspot,
// Hotspot3D, SRAD_v2, DWT2D, NW, Pathfinder.

func init() {
	register(Spec{
		Name:  "babelstream",
		Class: kernels.ModerateHighReuse,
		Input: "524288",
		Build: babelStream,
	})
	register(Spec{
		Name:  "square",
		Class: kernels.ModerateHighReuse,
		Input: "524288 1 2 2048 256",
		Build: square,
	})
	register(Spec{
		Name:  "hotspot",
		Class: kernels.ModerateHighReuse,
		Input: "512 2 20 temp_512 power_512",
		Build: hotspot,
	})
	register(Spec{
		Name:  "hotspot3D",
		Class: kernels.ModerateHighReuse,
		Input: "512 8 20 power_512x8 temp_512x8",
		Build: hotspot3D,
	})
	register(Spec{
		Name:  "srad_v2",
		Class: kernels.LowReuse,
		Input: "2048 2048 0 127 0 127 0.5 2",
		Build: sradV2,
	})
	register(Spec{
		Name:  "dwt2d",
		Class: kernels.LowReuse,
		Input: "rgb.bmp 4096x4096",
		Build: dwt2d,
	})
	register(Spec{
		Name:  "nw",
		Class: kernels.LowReuse,
		Input: "8192 10",
		Build: needlemanWunsch,
	})
	register(Spec{
		Name:  "pathfinder",
		Class: kernels.LowReuse,
		Input: "200000 100 20",
		Build: pathfinder,
	})
}

// babelStream: five iterative streaming kernels (copy/mul/add/triad/dot)
// over three 4 MB arrays. Uniform linear partitions give each chiplet a
// working set that fits its L2, so CPElide elides everything but the final
// flush; HMG's write-through L2s pay per-store L2-L3 traffic instead.
func babelStream(alloc *kernels.Allocator, p Params) *kernels.Workload {
	n := p.scale(524288)
	a := alloc.Alloc("a", n, 8)
	b := alloc.Alloc("b", n, 8)
	c := alloc.Alloc("c", n, 8)
	sums := alloc.Alloc("sums", 4096, 8)
	const wgs = 480

	initK := &kernels.Kernel{
		Name: "init_arrays",
		Args: []kernels.Arg{
			{DS: a, Mode: kernels.ReadWrite, Pattern: kernels.Linear},
			{DS: b, Mode: kernels.ReadWrite, Pattern: kernels.Linear},
			{DS: c, Mode: kernels.ReadWrite, Pattern: kernels.Linear},
		},
		WGs: wgs, ComputePerWG: 120,
	}
	copyK := &kernels.Kernel{
		Name: "copy",
		Args: []kernels.Arg{
			{DS: a, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: c, Mode: kernels.ReadWrite, Pattern: kernels.Linear},
		},
		WGs: wgs, ComputePerWG: 120,
	}
	mulK := &kernels.Kernel{
		Name: "mul",
		Args: []kernels.Arg{
			{DS: c, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: b, Mode: kernels.ReadWrite, Pattern: kernels.Linear},
		},
		WGs: wgs, ComputePerWG: 150,
	}
	addK := &kernels.Kernel{
		Name: "add",
		Args: []kernels.Arg{
			{DS: a, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: b, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: c, Mode: kernels.ReadWrite, Pattern: kernels.Linear},
		},
		WGs: wgs, ComputePerWG: 180,
	}
	triadK := &kernels.Kernel{
		Name: "triad",
		Args: []kernels.Arg{
			{DS: b, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: c, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: a, Mode: kernels.ReadWrite, Pattern: kernels.Linear},
		},
		WGs: wgs, ComputePerWG: 180,
	}
	dotK := &kernels.Kernel{
		Name: "dot",
		Args: []kernels.Arg{
			{DS: a, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: b, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: sums, Mode: kernels.ReadWrite, Pattern: kernels.Linear, ReadModifyWrite: true},
		},
		WGs: wgs, ComputePerWG: 200, LDSBytesPerWG: 2048,
	}
	seq := []*kernels.Kernel{initK}
	seq = repeat(seq, p.iters(10), copyK, mulK, addK, triadK, dotK)
	return workload("babelstream", kernels.ModerateHighReuse, 0xBA8E, seq)
}

// square: the paper's Listing 1 example — C = A*A iterated, read-only input
// reused every kernel.
func square(alloc *kernels.Allocator, p Params) *kernels.Workload {
	n := p.scale(524288)
	a := alloc.Alloc("A", n, 4)
	c := alloc.Alloc("C", n, 4)
	const wgs = 480
	initK := &kernels.Kernel{
		Name: "init",
		Args: []kernels.Arg{
			{DS: a, Mode: kernels.ReadWrite, Pattern: kernels.Linear},
		},
		WGs: wgs, ComputePerWG: 100,
	}
	sq := &kernels.Kernel{
		Name: "square",
		Args: []kernels.Arg{
			{DS: c, Mode: kernels.ReadWrite, Pattern: kernels.Linear},
			{DS: a, Mode: kernels.Read, Pattern: kernels.Linear},
		},
		WGs: wgs, ComputePerWG: 130,
	}
	seq := []*kernels.Kernel{initK}
	seq = repeat(seq, p.iters(20), sq)
	return workload("square", kernels.ModerateHighReuse, 0x504A, seq)
}

// hotspot: 2D thermal stencil, ping-ponging two 1 MB temperature grids.
// Compute-bound (the paper: "bottlenecked by compute stalls"), so extra L2
// hits barely help any protocol.
func hotspot(alloc *kernels.Allocator, p Params) *kernels.Workload {
	n := p.scale(512 * 512)
	t0 := alloc.Alloc("temp0", n, 4)
	t1 := alloc.Alloc("temp1", n, 4)
	power := alloc.Alloc("power", n, 4)
	const wgs = 480
	step := func(in, out *kernels.DataStructure, name string) *kernels.Kernel {
		return &kernels.Kernel{
			Name: name,
			Args: []kernels.Arg{
				{DS: in, Mode: kernels.Read, Pattern: kernels.Stencil, HaloLines: 1},
				{DS: power, Mode: kernels.Read, Pattern: kernels.Linear},
				{DS: out, Mode: kernels.ReadWrite, Pattern: kernels.Linear},
			},
			WGs: wgs, ComputePerWG: 9000, LDSBytesPerWG: 16384,
		}
	}
	seq := repeat(nil, p.iters(20), step(t0, t1, "hotspot_even"), step(t1, t0, "hotspot_odd"))
	return workload("hotspot", kernels.ModerateHighReuse, 0x4075, seq)
}

// hotspot3D: memory-bound 3D stencil over 4 MB grids with a read-only power
// array; inter-kernel L2 reuse of the read-only and ping-pong arrays is what
// CPElide preserves (+37% in the paper).
func hotspot3D(alloc *kernels.Allocator, p Params) *kernels.Workload {
	n := p.scale(1024 * 1024)
	t0 := alloc.Alloc("temp_in", n, 4)
	t1 := alloc.Alloc("temp_out", n, 4)
	power := alloc.Alloc("power", n, 4)
	const wgs = 480
	step := func(in, out *kernels.DataStructure, name string) *kernels.Kernel {
		return &kernels.Kernel{
			Name: name,
			Args: []kernels.Arg{
				{DS: in, Mode: kernels.Read, Pattern: kernels.Stencil, HaloLines: 4},
				{DS: power, Mode: kernels.Read, Pattern: kernels.Linear},
				{DS: out, Mode: kernels.ReadWrite, Pattern: kernels.Linear},
			},
			WGs: wgs, ComputePerWG: 260,
		}
	}
	seq := repeat(nil, p.iters(20), step(t0, t1, "hotspot3D_even"), step(t1, t0, "hotspot3D_odd"))
	return workload("hotspot3D", kernels.ModerateHighReuse, 0x4073, seq)
}

// sradV2: speckle-reducing anisotropic diffusion over 16 MB images. The
// per-iteration working set (64 MB) far exceeds the aggregate L2, so there
// is no reuse for anyone to preserve; HMG additionally suffers directory
// evictions (the paper: Baseline outperforms HMG here by ~15%).
func sradV2(alloc *kernels.Allocator, p Params) *kernels.Workload {
	n := p.scale(2048 * 2048)
	img := alloc.Alloc("J", n, 4)
	coef := alloc.Alloc("c", n, 4)
	dN := alloc.Alloc("dN", n, 4)
	dS := alloc.Alloc("dS", n, 4)
	const wgs = 480
	srad1 := &kernels.Kernel{
		Name: "srad_kernel1",
		Args: []kernels.Arg{
			{DS: img, Mode: kernels.Read, Pattern: kernels.Stencil, HaloLines: 2},
			{DS: coef, Mode: kernels.ReadWrite, Pattern: kernels.Linear},
			{DS: dN, Mode: kernels.ReadWrite, Pattern: kernels.Linear},
			{DS: dS, Mode: kernels.ReadWrite, Pattern: kernels.Linear},
		},
		WGs: wgs, ComputePerWG: 420,
	}
	srad2 := &kernels.Kernel{
		Name: "srad_kernel2",
		Args: []kernels.Arg{
			{DS: coef, Mode: kernels.Read, Pattern: kernels.Stencil, HaloLines: 1},
			{DS: dN, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: dS, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: img, Mode: kernels.ReadWrite, Pattern: kernels.Linear, ReadModifyWrite: true},
		},
		WGs: wgs, ComputePerWG: 420,
	}
	seq := repeat(nil, p.iters(4), srad1, srad2)
	return workload("srad_v2", kernels.LowReuse, 0x54AD, seq)
}

// dwt2d: discrete wavelet transform levels, each kernel consuming one level
// and producing the next quarter-sized one. The 16 MB level-0 read dominates
// and is touched once — little inter-kernel reuse.
func dwt2d(alloc *kernels.Allocator, p Params) *kernels.Workload {
	const wgs = 480
	level := func(in, out *kernels.DataStructure, name string) *kernels.Kernel {
		return &kernels.Kernel{
			Name: name,
			Args: []kernels.Arg{
				{DS: in, Mode: kernels.Read, Pattern: kernels.Linear},
				{DS: out, Mode: kernels.ReadWrite, Pattern: kernels.Linear},
			},
			WGs: wgs, ComputePerWG: 600, LDSBytesPerWG: 8192,
		}
	}
	var seq []*kernels.Kernel
	for f := 0; f < p.iters(3); f++ {
		// Each frame decomposes fresh image data into fresh level buffers
		// (double buffering): every byte is produced once and consumed
		// once, which is what makes DWT2D a low-reuse workload.
		l0 := alloc.Alloc(fmt2("frame%d", f), p.scale(4096*1024), 4)
		l1 := alloc.Alloc(fmt2("l1_f%d", f), p.scale(1024*1024), 4)
		l2 := alloc.Alloc(fmt2("l2_f%d", f), p.scale(256*1024), 4)
		l3 := alloc.Alloc(fmt2("l3_f%d", f), p.scale(64*1024), 4)
		seq = append(seq,
			level(l0, l1, fmt2("fdwt_l1_f%d", f)),
			level(l1, l2, fmt2("fdwt_l2_f%d", f)),
			level(l2, l3, fmt2("fdwt_l3_f%d", f)),
		)
	}
	return workload("dwt2d", kernels.LowReuse, 0xD472, seq)
}

// needlemanWunsch: anti-diagonal wavefront over a large score matrix,
// modeled as per-strip kernels that touch each 4 MB strip once (plus the
// read-only reference strip) — essentially no inter-kernel reuse.
func needlemanWunsch(alloc *kernels.Allocator, p Params) *kernels.Workload {
	const strips = 8
	const wgs = 480
	var seq []*kernels.Kernel
	for i := 0; i < strips; i++ {
		items := alloc.Alloc(fmt2("items%d", i), p.scale(1024*1024), 4)
		ref := alloc.Alloc(fmt2("ref%d", i), p.scale(1024*1024), 4)
		seq = append(seq, &kernels.Kernel{
			Name: fmt2("nw_strip%d", i),
			Args: []kernels.Arg{
				{DS: ref, Mode: kernels.Read, Pattern: kernels.Linear},
				{DS: items, Mode: kernels.ReadWrite, Pattern: kernels.Linear, ReadModifyWrite: true},
			},
			WGs: wgs, ComputePerWG: 6000, LDSBytesPerWG: 8192,
		})
	}
	return workload("nw", kernels.LowReuse, 0x2117, seq)
}

// pathfinder: dynamic programming over a grid streamed row-block by
// row-block; each wall chunk is read exactly once, only the small result
// ping-pong rows are reused.
func pathfinder(alloc *kernels.Allocator, p Params) *kernels.Workload {
	const chunks = 20
	const wgs = 480
	r0 := alloc.Alloc("result0", p.scale(200*1024), 4)
	r1 := alloc.Alloc("result1", p.scale(200*1024), 4)
	var seq []*kernels.Kernel
	for i := 0; i < chunks; i++ {
		wall := alloc.Alloc(fmt2("wall%d", i), p.scale(1024*1024), 4)
		in, out := r0, r1
		if i%2 == 1 {
			in, out = r1, r0
		}
		seq = append(seq, &kernels.Kernel{
			Name: fmt2("dynproc%d", i),
			Args: []kernels.Arg{
				{DS: wall, Mode: kernels.Read, Pattern: kernels.Linear},
				{DS: in, Mode: kernels.Read, Pattern: kernels.Stencil, HaloLines: 1},
				{DS: out, Mode: kernels.ReadWrite, Pattern: kernels.Linear},
			},
			WGs: wgs, ComputePerWG: 260, LDSBytesPerWG: 4096,
		})
	}
	return workload("pathfinder", kernels.LowReuse, 0x9AFF, seq)
}
