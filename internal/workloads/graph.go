package workloads

import "repro/internal/kernels"

// Graph analytics benchmarks (Pannotia / Rodinia): BFS, Color-max, SSSP,
// and FW. Their irregular, input-dependent accesses produce many remote
// reads under first-touch placement; read-only graph topology reused across
// iterations is where CPElide's elided acquires pay off, while HMG's
// home-node caching of low-locality remote data pollutes L2s and churns the
// directory.

func init() {
	register(Spec{
		Name:  "bfs",
		Class: kernels.ModerateHighReuse,
		Input: "graph128k.txt",
		Build: bfs,
	})
	register(Spec{
		Name:  "color",
		Class: kernels.ModerateHighReuse,
		Input: "AK.gr",
		Build: colorMax,
	})
	register(Spec{
		Name:  "sssp",
		Class: kernels.ModerateHighReuse,
		Input: "AK.gr",
		Build: sssp,
	})
	register(Spec{
		Name:  "fw",
		Class: kernels.ModerateHighReuse,
		Input: "512_65536.gr",
		Build: floydWarshall,
	})
}

// bfs: level-synchronous breadth-first search. Row offsets are read
// linearly, neighbor gathers are irregular over the 16 MB edge array, and
// cost updates are atomic scatters. Reuse potential is limited (the paper
// reports only +6% for CPElide) because each level touches different
// frontier regions.
func bfs(alloc *kernels.Allocator, p Params) *kernels.Workload {
	nodes := p.scale(1024 * 1024)
	rowOff := alloc.Alloc("row_offsets", nodes, 4)
	edges := alloc.Alloc("edges", nodes*4, 4)
	cost := alloc.Alloc("cost", nodes, 4)
	frontier := alloc.Alloc("frontier", nodes, 1)
	const wgs = 480
	level := &kernels.Kernel{
		Name: "bfs_level",
		Args: []kernels.Arg{
			{DS: frontier, Mode: kernels.ReadWrite, Pattern: kernels.Linear, ReadModifyWrite: true},
			{DS: rowOff, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: edges, Mode: kernels.Read, Pattern: kernels.Indirect,
				TouchesPerLine: 2, WorkLinesPerWG: 48},
			{DS: cost, Mode: kernels.ReadWrite, Pattern: kernels.Indirect,
				TouchesPerLine: 1, WorkLinesPerWG: 24, ReadModifyWrite: true},
		},
		WGs: wgs, ComputePerWG: 260,
	}
	seq := repeat(nil, p.iters(12), level)
	return workload("bfs", kernels.ModerateHighReuse, 0xBF5, seq)
}

// colorMax: greedy graph coloring. Read-mostly topology and node values are
// reused across iterations; avoiding unnecessary acquires on them is where
// CPElide gains (+16% in the paper).
func colorMax(alloc *kernels.Allocator, p Params) *kernels.Workload {
	nodes := p.scale(1024 * 1024)
	adj := alloc.Alloc("adj", nodes*4, 4)
	vals := alloc.Alloc("node_vals", nodes, 4)
	colors := alloc.Alloc("colors", nodes, 4)
	maxes := alloc.Alloc("max_vals", nodes, 4)
	const wgs = 480
	color1 := &kernels.Kernel{
		Name: "color_max1",
		Args: []kernels.Arg{
			{DS: vals, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: adj, Mode: kernels.Read, Pattern: kernels.Indirect,
				TouchesPerLine: 2, HotFraction: 0.6, WorkLinesPerWG: 96},
			{DS: maxes, Mode: kernels.ReadWrite, Pattern: kernels.Indirect,
				TouchesPerLine: 1, WorkLinesPerWG: 32, ReadModifyWrite: true},
		},
		WGs: wgs, ComputePerWG: 260,
	}
	color2 := &kernels.Kernel{
		Name: "color_max2",
		Args: []kernels.Arg{
			{DS: maxes, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: vals, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: colors, Mode: kernels.ReadWrite, Pattern: kernels.Linear},
		},
		WGs: wgs, ComputePerWG: 220,
	}
	seq := repeat(nil, p.iters(14), color1, color2)
	return workload("color", kernels.ModerateHighReuse, 0xC0104, seq)
}

// sssp: Bellman-Ford-style single-source shortest paths. Relaxation rounds
// atomically scatter distance updates while re-reading the read-only
// topology (adjacency, weights) and the frontier mask; a convergence-check
// kernel reads the distances every few rounds. CPElide's elided acquires
// preserve the topology's inter-kernel L2 reuse across relaxation rounds
// (+14% in the paper).
func sssp(alloc *kernels.Allocator, p Params) *kernels.Workload {
	nodes := p.scale(1024 * 1024)
	adj := alloc.Alloc("adj", nodes*4, 4)
	weights := alloc.Alloc("weights", nodes*4, 4)
	dist := alloc.Alloc("dist", nodes, 4)
	mask := alloc.Alloc("mask", nodes, 4)
	const wgs = 480
	relax := &kernels.Kernel{
		Name: "sssp_relax",
		Args: []kernels.Arg{
			{DS: mask, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: adj, Mode: kernels.Read, Pattern: kernels.Indirect,
				TouchesPerLine: 2, HotFraction: 0.7, WorkLinesPerWG: 96},
			{DS: weights, Mode: kernels.Read, Pattern: kernels.Indirect,
				TouchesPerLine: 1, HotFraction: 0.7, WorkLinesPerWG: 96},
			{DS: dist, Mode: kernels.ReadWrite, Pattern: kernels.Indirect,
				TouchesPerLine: 1, WorkLinesPerWG: 32, ReadModifyWrite: true},
		},
		WGs: wgs, ComputePerWG: 280,
	}
	update := &kernels.Kernel{
		Name: "sssp_update",
		Args: []kernels.Arg{
			{DS: dist, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: mask, Mode: kernels.ReadWrite, Pattern: kernels.Linear},
		},
		WGs: wgs, ComputePerWG: 200,
	}
	var seq []*kernels.Kernel
	for i := 0; i < p.iters(5); i++ {
		seq = append(seq, relax, relax, relax, relax, update)
	}
	return workload("sssp", kernels.ModerateHighReuse, 0x555B, seq)
}

// floydWarshall: each k-iteration kernel read-modify-writes the whole
// distance matrix in place. The matrix is small and the kernels are
// comparison-heavy with abundant MLP, so the baseline's refetches hide and
// CPElide's gain is modest, as the paper reports.
func floydWarshall(alloc *kernels.Allocator, p Params) *kernels.Workload {
	n := p.scale(524288) // the paper's small graph: a 2 MB distance matrix
	dist := alloc.Alloc("dist", n, 4)
	const wgs = 480
	step := &kernels.Kernel{
		Name: "fw_step",
		Args: []kernels.Arg{
			{DS: dist, Mode: kernels.ReadWrite, Pattern: kernels.Linear, ReadModifyWrite: true},
		},
		WGs: wgs, ComputePerWG: 4400, MLPFactor: 2.6,
	}
	seq := repeat(nil, p.iters(48), step)
	return workload("fw", kernels.ModerateHighReuse, 0xF1, seq)
}
