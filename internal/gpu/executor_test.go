package gpu

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/stats"
)

func smallCfg() config.GPU {
	g := config.Default(4)
	g.CUsPerChiplet = 4
	g.L1SizeBytes = 1 << 10
	g.L2SizeBytes = 64 << 10
	g.L3SizeBytes = 128 << 10
	return g
}

func setup(t *testing.T) (*Executor, *machine.Machine) {
	t.Helper()
	m := must(machine.New(smallCfg(), mem.Range{Lo: 0x1000_0000, Hi: 0x1000_0000 + 8<<20}, stats.New()))
	return New(m, coherence.NewBaseline(m), 7), m
}

func mkLaunch(computePerWG uint32, elems int) *coherence.Launch {
	alloc := kernels.NewAllocator(0x1000_0000, 4096)
	a := alloc.Alloc("a", elems, 4)
	b := alloc.Alloc("b", elems, 4)
	k := &kernels.Kernel{
		Name: "k", WGs: 16, ComputePerWG: computePerWG,
		LDSBytesPerWG: 1024,
		Args: []kernels.Arg{
			{DS: a, Mode: kernels.Read, Pattern: kernels.Linear},
			{DS: b, Mode: kernels.ReadWrite, Pattern: kernels.Linear},
		},
	}
	l := &coherence.Launch{Kernel: k, Chiplets: []int{0, 1, 2, 3}}
	l.ArgRanges = make([][]mem.RangeSet, len(k.Args))
	for ai := range k.Args {
		l.ArgRanges[ai] = make([]mem.RangeSet, 4)
		for slot := 0; slot < 4; slot++ {
			l.ArgRanges[ai][slot] = kernels.ArgRanges(k, ai, slot, 4, 64)
		}
	}
	return l
}

func TestExecutePlanOverlapsWithCPPipeline(t *testing.T) {
	// Shrink the CP pipeline window so the test cache's modest dirty drain
	// can outlast it.
	g := smallCfg()
	g.CPLatencyUS = 0.05
	m := must(machine.New(g, mem.Range{Lo: 0x1000_0000, Hi: 0x1000_0000 + 8<<20}, stats.New()))
	x := New(m, coherence.NewBaseline(m), 7)
	// Empty plan costs nothing.
	if cy := x.ExecutePlan(coherence.SyncPlan{}); cy != 0 {
		t.Errorf("empty plan cost %d", cy)
	}
	// With the full 2us pipeline window, a cheap flush hides entirely.
	xFull, _ := setup(t)
	plan := coherence.SyncPlan{Ops: []coherence.SyncOp{{Chiplet: 0, Kind: coherence.Release}}}
	if cy := xFull.ExecutePlan(plan); cy != 0 {
		t.Errorf("cheap flush exposed %d cycles", cy)
	}
	// A dirty drain that outlasts the (shrunken) pipeline is exposed.
	for i := 0; i < 1024; i++ {
		line := mem.Addr(0x1000_0000 + i*64)
		m.Home(line, 0)
		m.L2[0].Fill(line, m.Mem.Store(line), true)
	}
	cy := x.ExecutePlan(plan)
	if cy == 0 {
		t.Error("large drain fully hidden")
	}
}

func TestLatencyFactorScalesExposure(t *testing.T) {
	g := smallCfg()
	g.CPLatencyUS = 0.05
	m := must(machine.New(g, mem.Range{Lo: 0x1000_0000, Hi: 0x1000_0000 + 8<<20}, stats.New()))
	x := New(m, coherence.NewBaseline(m), 7)
	fill := func() {
		for i := 0; i < 1024; i++ {
			line := mem.Addr(0x1000_0000 + i*64)
			m.Home(line, 0)
			m.L2[0].Fill(line, m.Mem.Store(line), true)
		}
	}
	fill()
	base := x.ExecutePlan(coherence.SyncPlan{
		Ops: []coherence.SyncOp{{Chiplet: 0, Kind: coherence.Release}},
	})
	fill()
	scaled := x.ExecutePlan(coherence.SyncPlan{
		Ops:           []coherence.SyncOp{{Chiplet: 0, Kind: coherence.Release}},
		LatencyFactor: 4,
	})
	if scaled <= base {
		t.Errorf("latency factor had no effect: %d vs %d", scaled, base)
	}
}

func TestComputeBoundKernelTime(t *testing.T) {
	x, _ := setup(t)
	l := mkLaunch(100000, 4096) // tiny memory, huge compute
	res := x.RunKernel(l, false)
	// 16 WGs over 4 chiplets = 4 WGs/chiplet over 4 CUs = 1 WG/CU.
	if res.ComputeCycles != 100000 {
		t.Errorf("compute cycles = %d", res.ComputeCycles)
	}
	if res.Cycles < 100000 {
		t.Errorf("kernel faster than its compute: %d", res.Cycles)
	}
	if res.Accesses == 0 {
		t.Error("no accesses simulated")
	}
}

func TestMemoryBoundKernelTime(t *testing.T) {
	x, _ := setup(t)
	l := mkLaunch(1, 512*1024) // 2 MB arrays, no compute
	res := x.RunKernel(l, false)
	if res.MemoryCycles <= res.ComputeCycles {
		t.Error("memory-bound kernel not memory-dominated")
	}
}

func TestExposeCPOnlyWhenRequested(t *testing.T) {
	x, _ := setup(t)
	l := mkLaunch(1000, 4096)
	hidden := x.RunKernel(l, false)
	if hidden.CPCycles != 0 {
		t.Error("CP cycles exposed despite enqueue-ahead")
	}
	exposed := x.RunKernel(l, true)
	if exposed.CPCycles == 0 {
		t.Error("first-kernel CP cycles not exposed")
	}
}

func TestL1InvalidatedEveryLaunch(t *testing.T) {
	x, m := setup(t)
	l := mkLaunch(10, 4096)
	x.RunKernel(l, false)
	// L1s hold lines now; a new launch must start from empty L1s.
	var before int
	for _, c := range m.L1 {
		for _, l1 := range c {
			before += l1.ValidLines()
		}
	}
	if before == 0 {
		t.Fatal("setup: L1s empty after kernel")
	}
	hits0 := m.Sheet.Get(stats.L1Hits)
	x.RunKernel(l, false)
	// First touch of every line in the new kernel must miss L1.
	rereadHits := m.Sheet.Get(stats.L1Hits) - hits0
	if rereadHits != 0 {
		t.Errorf("L1 hits across kernel boundary: %d", rereadHits)
	}
}

func TestFinalizeReportsStaleReads(t *testing.T) {
	x, m := setup(t)
	l := mkLaunch(10, 4096)
	x.RunKernel(l, false)
	x.Finalize()
	if m.Sheet.Get(stats.StaleReads) != m.Mem.StaleReads() {
		t.Error("finalize did not record stale reads")
	}
}

// must unwraps constructor errors in tests, where geometry is known-valid.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
