// Package gpu executes kernel launches on the simulated machine: it runs a
// launch's synchronization plan, streams the kernel's memory accesses
// through the coherence protocol, and converts the outcome into kernel
// duration with a compute/memory-overlap timing model.
//
// Per chiplet, a kernel's duration is the largest of:
//
//   - the busiest CU's ALU time,
//   - the busiest CU's memory time (summed access latency divided by the
//     memory-level parallelism its wavefronts sustain), and
//   - bandwidth occupancy lower bounds for the chiplet's crossbar port and
//     HBM partition.
//
// A kernel's duration is the maximum over its assigned chiplets, plus the
// exposed synchronization time its launch plan required.
package gpu

import (
	"repro/internal/coherence"
	"repro/internal/event"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/stats"
)

// Executor runs launches for one (machine, protocol) pair.
type Executor struct {
	M    *machine.Machine
	P    coherence.Protocol
	Seed uint64

	// Sched selects the local CPs' WG-to-CU assignment policy.
	Sched kernels.CUSchedule

	// Prof, when non-nil, receives phase marks around plan construction
	// (PhaseCCT), plan execution (PhaseSync), access-stream generation
	// (PhaseKernel), and the per-access memory-system walk (PhaseNoC).
	// Observational only; nil costs one pointer test per kernel.
	Prof event.Profiler

	// Obs, when non-nil, observes every launch boundary and the finalize
	// boundary with the synchronization plan the executor is about to run.
	// The consistency oracle attaches here; the hook sits after protocol
	// plan construction and before plan execution, so observers see exactly
	// what the CP decided (including any mutation-testing weakening).
	Obs Observer

	// latency is per-CU scratch, reused across kernels to avoid
	// per-launch allocation. opCycles, l2bank0, and l3bank0 are per-chiplet
	// scratch reused the same way.
	latency  []uint64
	opCycles []int
	l2bank0  []uint64
	l3bank0  []uint64
}

// New builds an executor.
func New(m *machine.Machine, p coherence.Protocol, seed uint64) *Executor {
	cus := m.Cfg.CUsPerChiplet
	n := m.Cfg.NumChiplets
	return &Executor{
		M: m, P: p, Seed: seed,
		latency:  make([]uint64, cus),
		opCycles: make([]int, n),
		l2bank0:  make([]uint64, n),
		l3bank0:  make([]uint64, n),
	}
}

// KernelResult is the timing outcome of one launch.
type KernelResult struct {
	// Cycles is the kernel's total duration including exposed
	// synchronization and CP time.
	Cycles uint64
	// SyncCycles is the exposed synchronization portion.
	SyncCycles uint64
	// CPCycles is exposed command-processor processing time (zero when
	// hidden behind enqueue-ahead).
	CPCycles uint64
	// ComputeCycles and MemoryCycles are the dominant chiplet's components.
	ComputeCycles uint64
	MemoryCycles  uint64
	// Accesses is the number of line-granularity accesses simulated.
	Accesses uint64
}

// ExecutePlan performs a synchronization plan's cache operations and
// returns the exposed cycles (operations on different chiplets overlap; the
// slowest chiplet determines the exposure, plus CP messaging).
func (x *Executor) ExecutePlan(plan coherence.SyncPlan) uint64 {
	m := x.M
	cfg := &m.Cfg
	if len(plan.Ops) == 0 {
		if plan.HostRoundTripCycles > 0 {
			m.Sheet.Add(stats.SyncCycles, uint64(plan.HostRoundTripCycles))
		}
		m.Trace.Plan(0, uint64(plan.HostRoundTripCycles))
		return uint64(plan.HostRoundTripCycles)
	}
	perChiplet := x.opCycles
	for i := range perChiplet {
		perChiplet[i] = 0
	}
	extraMessages := 0
	for _, op := range plan.Ops {
		cy, msgs := x.executeOp(op)
		perChiplet[op.Chiplet] += cy
		extraMessages += msgs
	}
	plan.Messages += extraMessages
	exposed := 0
	for _, cy := range perChiplet {
		if cy > exposed {
			exposed = cy
		}
	}
	// Request to local CPs, acks back, then the launch-enable message.
	exposed += 2*cfg.CPUnicastLatency + cfg.CPBroadcastLatency
	if plan.LatencyFactor > 1 {
		exposed *= plan.LatencyFactor
	}
	// The per-kernel CP launch pipeline (packet processing, queue
	// scheduling — CPLatencyUS) runs concurrently with the maintenance
	// operations, so only the portion of the drain that outlasts it is
	// exposed to the kernel's start.
	exposed -= cfg.CPLatencyCycles()
	if exposed < 0 {
		exposed = 0
	}
	// Off-device (driver) latency cannot overlap the on-device pipeline.
	exposed += plan.HostRoundTripCycles
	m.Sheet.Add(stats.CPMessages, uint64(plan.Messages))
	m.Sheet.Add(stats.SyncCycles, uint64(exposed))
	m.Trace.Plan(len(plan.Ops), uint64(exposed))
	return uint64(exposed)
}

// executeOp performs one synchronization operation under the CP watchdog and
// returns its cycles plus any extra CP messages (each retry costs a fresh
// request + ack pair). Without an injector this is exactly the direct cache
// operation. With one, the operation sits in a bounded retry loop: a dropped
// request means the local CP never acted, a dropped ack means it acted but
// the global CP cannot know — either way the watchdog times out, backs off
// exponentially (capped), and retransmits. After MaxAttempts the CP degrades
// gracefully: it issues the reliable baseline fallback — a full L2
// flush+invalidate of the chiplet — and tells the protocol to abandon its
// tracked beliefs about that chiplet (coherence.Degradable), so correctness
// is preserved and only elision quality is lost. The loop is bounded by
// MaxAttempts, so every run terminates under any fault schedule.
func (x *Executor) executeOp(op coherence.SyncOp) (cycles, extraMessages int) {
	m := x.M
	do := func() int {
		var cy int
		switch {
		case op.Kind == coherence.Release && op.Ranges.Empty():
			_, cy = m.FlushL2(op.Chiplet)
		case op.Kind == coherence.Release:
			_, cy = m.FlushL2Ranges(op.Chiplet, op.Ranges)
		case op.Ranges.Empty():
			_, cy = m.InvalidateL2(op.Chiplet)
		default:
			_, cy = m.InvalidateL2Ranges(op.Chiplet, op.Ranges)
		}
		return cy
	}
	inj := m.Faults
	if inj == nil {
		return do(), 0
	}
	timeout := inj.TimeoutCycles()
	for attempt := 1; ; attempt++ {
		if !inj.DropRequest(op.Chiplet) {
			cycles += do()
			if !inj.DropAck(op.Chiplet) {
				cycles += inj.AckDelay(op.Chiplet)
				return cycles, extraMessages
			}
		}
		cycles += timeout // the watchdog waited this long for the lost ack
		if attempt >= inj.MaxAttempts() {
			// Graceful degradation: reliable full flush+invalidate, then
			// abandon the protocol's beliefs about this chiplet.
			_, cy := m.InvalidateL2(op.Chiplet)
			cycles += cy
			extraMessages += 2
			if d, ok := x.P.(coherence.Degradable); ok {
				d.DegradeChiplet(op.Chiplet)
			}
			inj.NoteDegradation(op.Chiplet)
			return cycles, extraMessages
		}
		inj.NoteRetry(op.Chiplet, uint64(timeout))
		extraMessages += 2
		if timeout *= 2; timeout > inj.BackoffCapCycles() {
			timeout = inj.BackoffCapCycles()
		}
	}
}

// RunKernel executes one launch: L1 boundary invalidation, the protocol's
// synchronization plan, then the kernel's accesses. exposeCP makes the
// plan's CP processing latency visible (first kernel of a stream; later
// kernels overlap it with predecessor execution via enqueue-ahead).
func (x *Executor) RunKernel(l *coherence.Launch, exposeCP bool) KernelResult {
	m := x.M
	cfg := &m.Cfg
	k := l.Kernel

	// Kernel boundaries are where transient link-degradation windows open.
	m.Faults.OnKernelBoundary()

	// Implicit L1 synchronization at every kernel boundary, all protocols.
	for _, c := range l.Chiplets {
		m.InvalidateL1s(c)
	}

	if x.Prof != nil {
		prev := x.Prof.SetPhase(event.PhaseCCT)
		defer x.Prof.SetPhase(prev)
	}
	plan := x.P.PreLaunch(l)
	if x.Obs != nil {
		x.Obs.OnLaunch(l, plan)
	}
	var res KernelResult
	if x.Prof != nil {
		x.Prof.SetPhase(event.PhaseSync)
	}
	res.SyncCycles = x.ExecutePlan(plan)
	if exposeCP {
		res.CPCycles = uint64(plan.CPCycles)
	}
	m.Sheet.Inc(stats.KernelsLaunched)

	nparts := len(l.Chiplets)
	cus := cfg.CUsPerChiplet
	mlp := float64(cfg.BaseMLP) * k.MLP()
	l2bank0, l3bank0 := x.l2bank0, x.l3bank0
	for b := 0; b < cfg.NumChiplets; b++ {
		l2bank0[b] = m.L2BankBytes(b)
		l3bank0[b] = m.L3BankBytes(b)
	}
	var worst uint64
	for slot, c := range l.Chiplets {
		for i := range x.latency {
			x.latency[i] = 0
		}
		// Chiplet partitions are processed one after another, so deltas of
		// the global counters attribute traffic to this partition.
		port0 := m.Fabric.PortBytes(c)
		igpu0 := m.Fabric.InterGPUBytes()
		dram0 := totalDRAM(m)
		l2acc0 := m.Sheet.Get(stats.L2Accesses)
		l2miss0 := m.Sheet.Get(stats.L2Misses)
		l2l3f0 := m.Sheet.Get(stats.FlitsL2L3)

		chiplet := c
		access := func(a kernels.Access) {
			r := x.P.Access(chiplet, a.CU, a.Line, a.Write, a.Atomic)
			x.latency[a.CU] += uint64(r.Cycles)
			res.Accesses++
		}
		cb := access
		if x.Prof != nil {
			// Profiled variant: charge the protocol's memory-system walk to
			// PhaseNoC and the generator itself to PhaseKernel. Built only
			// when profiling, so the unprofiled hot path pays nothing.
			x.Prof.SetPhase(event.PhaseKernel)
			cb = func(a kernels.Access) {
				x.Prof.SetPhase(event.PhaseNoC)
				access(a)
				x.Prof.SetPhase(event.PhaseKernel)
			}
		}
		kernels.GenerateScheduled(k, l.Inst, x.Seed, slot, nparts, cus, cfg.LineSize, x.Sched, cb)

		// Compute per CU: WGs round-robin over CUs.
		wgLo, wgHi := kernels.Partition(k.WGs, nparts, slot)
		myWGs := wgHi - wgLo
		if myWGs <= 0 {
			continue
		}
		m.Sheet.Add(stats.LDSAccesses, uint64(myWGs)*uint64(k.LDSBytesPerWG/4))
		base := uint64(myWGs / cus)
		rem := myWGs % cus
		var chipletTime, cTime, mTime uint64
		for cu := 0; cu < cus && cu < myWGs; cu++ {
			wgs := base
			if cu < rem {
				wgs++
			}
			comp := wgs * uint64(k.ComputePerWG)
			memt := uint64(float64(x.latency[cu]) / mlp)
			t := comp
			if memt > t {
				t = memt
			}
			if t > chipletTime {
				chipletTime, cTime, mTime = t, comp, memt
			}
		}

		// Bandwidth occupancy floors: the partition can finish no faster
		// than its traffic drains through each resource it used.
		ls := uint64(cfg.LineSize)
		floor := func(bytes uint64, bw float64) uint64 {
			if bytes == 0 || bw <= 0 {
				return 0
			}
			return uint64(float64(bytes) / bw)
		}
		// L2 occupancy: every access streams a line through the CU-side
		// pipes; a miss additionally occupies the arrays for the fill
		// (half-line effective cost — fills use a dedicated port).
		l2bytes := (m.Sheet.Get(stats.L2Accesses)-l2acc0)*ls +
			(m.Sheet.Get(stats.L2Misses)-l2miss0)*ls/2
		occ := floor(l2bytes, cfg.L2BWBytesCy)
		if t := floor((m.Sheet.Get(stats.FlitsL2L3)-l2l3f0)*uint64(cfg.FlitSize),
			cfg.L3BWBytesCy); t > occ {
			occ = t
		}
		// A degraded link divides the crossbar port's share of bandwidth.
		if t := floor(m.Fabric.PortBytes(c)-port0,
			cfg.LinkBytesPerCycle()/float64(cfg.NumChiplets)/m.Faults.LinkFactor()); t > occ {
			occ = t
		}
		if cfg.NumGPUs > 1 {
			if t := floor(m.Fabric.InterGPUBytes()-igpu0,
				cfg.InterGPUBytesPerCycle()); t > occ {
				occ = t
			}
		}
		if t := floor(totalDRAM(m)-dram0,
			cfg.DRAMBWBytesCy/float64(nparts)); t > occ {
			occ = t
		}
		if occ > chipletTime {
			chipletTime, mTime = occ, occ
		}

		if chipletTime > worst {
			worst = chipletTime
			res.ComputeCycles = cTime
			res.MemoryCycles = mTime
		}
	}

	// Shared-bank serialization: the kernel can finish no faster than its
	// busiest L2 or L3 bank drains the traffic all partitions sent it —
	// the hot-bank bottleneck per-partition floors cannot see.
	for b := 0; b < cfg.NumChiplets; b++ {
		if t := uint64(float64(m.L2BankBytes(b)-l2bank0[b]) / cfg.L2BWBytesCy); t > worst {
			worst = t
			res.MemoryCycles = t
		}
		if t := uint64(float64(m.L3BankBytes(b)-l3bank0[b]) / cfg.L3BWBytesCy); t > worst {
			worst = t
			res.MemoryCycles = t
		}
	}

	res.Cycles = worst + res.SyncCycles + res.CPCycles
	m.Sheet.Add(stats.ComputeCycles, res.ComputeCycles)
	m.Sheet.Add(stats.MemoryCycles, res.MemoryCycles)
	return res
}

// totalDRAM sums HBM traffic across all partitions.
func totalDRAM(m *machine.Machine) uint64 {
	var n uint64
	for c := 0; c < m.Cfg.NumChiplets; c++ {
		n += m.Fabric.DRAMBytes(c)
	}
	return n
}

// Finalize runs the protocol's end-of-program releases and returns the
// exposed cycles.
func (x *Executor) Finalize() uint64 {
	if x.Prof != nil {
		prev := x.Prof.SetPhase(event.PhaseCCT)
		defer x.Prof.SetPhase(prev)
	}
	plan := x.P.Finalize()
	if x.Obs != nil {
		x.Obs.OnFinalize(plan)
	}
	if x.Prof != nil {
		x.Prof.SetPhase(event.PhaseSync)
	}
	cy := x.ExecutePlan(plan)
	x.M.Sheet.Set(stats.StaleReads, x.M.Mem.StaleReads())
	return cy
}

// Observer watches kernel and finalize boundaries. OnLaunch fires once per
// launch with the plan the protocol produced, before the executor runs it;
// OnFinalize fires once with the end-of-program release plan.
type Observer interface {
	OnLaunch(l *coherence.Launch, plan coherence.SyncPlan)
	OnFinalize(plan coherence.SyncPlan)
}
