package event

// Phase identifies a simulator component for host wall-time attribution.
// The engine and the components it drives mark the phase they are entering
// through a Profiler; a sampling profiler (internal/metrics.PhaseProfiler)
// then attributes host time to whichever phase was current at each sample.
//
// The constants deliberately live here rather than in the profiler package:
// simulation-critical code may mark phases (a marker is one atomic store)
// but must never read the wall clock itself — the cpelint determinism pass
// enforces that split.
type Phase uint8

const (
	// PhaseIdle is everything outside the event loop: workload
	// construction, machine assembly, report generation.
	PhaseIdle Phase = iota
	// PhaseCalendar is event-calendar bookkeeping: heap pushes and pops,
	// clock advancement, dispatch-loop overhead.
	PhaseCalendar
	// PhaseCP is the global command processor: stream readiness checks,
	// launch dispatch, per-kernel record keeping.
	PhaseCP
	// PhaseCCT is coherence decision making: the Chiplet Coherence Table
	// lookup (or the baseline/HMG equivalent) that turns a launch into a
	// synchronization plan.
	PhaseCCT
	// PhaseSync is synchronization plan execution: the cache flush and
	// invalidate operations the plan requires, including watchdog retries.
	PhaseSync
	// PhaseKernel is kernel execution: WG access-stream generation and the
	// compute/memory-overlap timing model.
	PhaseKernel
	// PhaseNoC is the per-access memory-system walk: L1/L2/L3 lookups,
	// crossbar and DRAM traffic accounting behind each simulated access.
	PhaseNoC

	// NumPhases bounds the Phase space for profiler arrays.
	NumPhases
)

var phaseNames = [NumPhases]string{
	PhaseIdle:     "idle",
	PhaseCalendar: "calendar",
	PhaseCP:       "cp",
	PhaseCCT:      "cct",
	PhaseSync:     "sync",
	PhaseKernel:   "kernel",
	PhaseNoC:      "noc",
}

func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// Profiler attributes host wall time to simulator phases. Implementations
// must make SetPhase safe for concurrent use with their own sampling and
// cheap enough to call on hot paths (one atomic store). The simulation core
// only ever marks phases through this interface; nil means profiling is off
// and every marker site reduces to a pointer test.
type Profiler interface {
	// SetPhase marks the component that is about to run and returns the
	// previously current phase, so callers can restore it when they return.
	SetPhase(p Phase) Phase
}
