package event

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
)

func TestEngineOrdering(t *testing.T) {
	e := New()
	var got []Time
	h := HandlerFunc(func(ev Event) { got = append(got, ev.When) })
	for _, when := range []Time{50, 10, 30, 20, 40} {
		e.Schedule(when, h, nil)
	}
	end := e.Run()
	if end != 50 {
		t.Errorf("final clock = %d", end)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Errorf("delivery out of order: %v", got)
	}
	if len(got) != 5 {
		t.Errorf("delivered %d events", len(got))
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(100, HandlerFunc(func(Event) { got = append(got, i) }), nil)
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", got)
		}
	}
}

func TestEngineCascade(t *testing.T) {
	e := New()
	count := 0
	var h HandlerFunc
	h = func(ev Event) {
		count++
		if count < 5 {
			e.ScheduleAfter(7, h, nil)
		}
	}
	e.Schedule(0, h, nil)
	end := e.Run()
	if count != 5 || end != 28 {
		t.Errorf("count=%d end=%d, want 5, 28", count, end)
	}
}

func TestEnginePayloadAndNow(t *testing.T) {
	e := New()
	e.Schedule(5, HandlerFunc(func(ev Event) {
		if ev.Payload.(string) != "x" {
			t.Error("payload lost")
		}
		if e.Now() != 5 {
			t.Errorf("Now = %d during handler", e.Now())
		}
	}), "x")
	e.Run()
}

func TestEnginePastScheduleError(t *testing.T) {
	e := New()
	delivered := false
	e.Schedule(10, HandlerFunc(func(Event) {
		if err := e.Schedule(5, HandlerFunc(func(Event) { delivered = true }), nil); !errors.Is(err, ErrPastEvent) {
			t.Errorf("Schedule(past) = %v, want ErrPastEvent", err)
		}
		if err := e.ScheduleAfter(1, HandlerFunc(func(Event) {}), nil); err != nil {
			t.Errorf("ScheduleAfter(+1) = %v, want nil", err)
		}
	}), nil)
	e.Run()
	if delivered {
		t.Error("a past-scheduled event was enqueued and delivered")
	}
}

func TestEngineStopAndStep(t *testing.T) {
	e := New()
	n := 0
	h := HandlerFunc(func(Event) {
		n++
		if n == 2 {
			e.Stop()
		}
	})
	for i := Time(1); i <= 5; i++ {
		e.Schedule(i, h, nil)
	}
	e.Run()
	if n != 2 {
		t.Errorf("Stop: ran %d events", n)
	}
	if e.Pending() != 3 {
		t.Errorf("pending = %d", e.Pending())
	}
	if !e.Step() || n != 3 {
		t.Error("Step did not deliver one event")
	}
	e.Reset()
	if e.Pending() != 0 || e.Now() != 0 || e.Step() {
		t.Error("Reset incomplete")
	}
}

func TestEngineStopLeavesCalendarAndRunResumes(t *testing.T) {
	e := New()
	var got []Time
	h := HandlerFunc(func(ev Event) {
		got = append(got, ev.When)
		if ev.When == 20 {
			e.Stop()
		}
	})
	for _, when := range []Time{10, 20, 30, 40} {
		e.Schedule(when, h, nil)
	}
	end := e.Run()
	if end != 20 {
		t.Errorf("first Run stopped at %d, want 20", end)
	}
	if e.Pending() != 2 {
		t.Fatalf("Stop drained the calendar: %d pending, want 2", e.Pending())
	}
	// Run resumes from the remaining calendar: the stopped flag is cleared
	// at entry and the undelivered events fire in order.
	end = e.Run()
	if end != 40 {
		t.Errorf("resumed Run ended at %d, want 40", end)
	}
	want := []Time{10, 20, 30, 40}
	if len(got) != len(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered %v, want %v", got, want)
		}
	}
}

func TestEngineResetAfterStop(t *testing.T) {
	e := New()
	e.Schedule(1, HandlerFunc(func(Event) { e.Stop() }), nil)
	e.Schedule(2, HandlerFunc(func(Event) {}), nil)
	e.Run()
	e.Reset()
	if e.Pending() != 0 || e.Now() != 0 {
		t.Fatal("Reset left state behind")
	}
	// After Reset the engine is indistinguishable from a fresh one: the
	// stopped flag is clear (Run delivers again) and the seq counter is
	// rewound (same-time events still tie-break in FIFO order from zero).
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(7, HandlerFunc(func(Event) { got = append(got, i) }), nil)
	}
	if end := e.Run(); end != 7 {
		t.Errorf("post-Reset Run ended at %d, want 7", end)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("post-Reset tie-break not FIFO: %v", got)
		}
	}
}

func TestEngineOnDeliver(t *testing.T) {
	e := New()
	var clocks []Time
	e.OnDeliver = func(t Time) { clocks = append(clocks, t) }
	h := HandlerFunc(func(ev Event) {
		if e.Now() != ev.When {
			t.Errorf("OnDeliver/handler clock mismatch at %d", ev.When)
		}
	})
	for _, when := range []Time{5, 15, 25} {
		e.Schedule(when, h, nil)
	}
	e.Run()
	e.Schedule(30, h, nil)
	e.Step()
	want := []Time{5, 15, 25, 30}
	if len(clocks) != len(want) {
		t.Fatalf("OnDeliver fired %d times, want %d", len(clocks), len(want))
	}
	for i := range want {
		if clocks[i] != want[i] {
			t.Fatalf("OnDeliver clocks %v, want %v", clocks, want)
		}
	}
}

// Property: any random schedule is delivered in nondecreasing time order and
// completely.
func TestEngineOrderProperty(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		e := New()
		n := rnd.Intn(200)
		var got []Time
		h := HandlerFunc(func(ev Event) { got = append(got, ev.When) })
		for i := 0; i < n; i++ {
			e.Schedule(Time(rnd.Intn(1000)), h, nil)
		}
		e.Run()
		if len(got) != n {
			t.Fatalf("delivered %d of %d", len(got), n)
		}
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				t.Fatalf("out of order at %d: %v < %v", i, got[i], got[i-1])
			}
		}
	}
}
