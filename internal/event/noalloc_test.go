package event

import "testing"

// The //cpelide:noalloc annotations on the engine's hot paths are enforced
// statically by the cpelint noalloc pass; these tests are the dynamic
// counterpart, pinning each annotated path to 0 allocs/op in steady state.
// Each workload runs unmeasured first until the pool, the overflow level,
// and every wheel bucket it can touch have grown to capacity — the measured
// window then sees only the recycled path, exactly what the annotation's
// baselined growth sites promise.

// warmRounds must cover at least one full wheel lap for the slowest-moving
// workload (the schedule+run test advances ~18 cycles/op against a
// 16384-cycle horizon, i.e. ~910 ops/lap) so every bucket reaches its
// high-water capacity before measurement starts.
const warmRounds = 2500

func TestScheduleRunNoAllocsWheel(t *testing.T) {
	e := New()
	h := HandlerFunc(func(Event) {})
	work := func() {
		for i := Time(0); i < 16; i++ {
			if err := e.ScheduleAfter(i%7*3, h, nil); err != nil {
				t.Fatal(err)
			}
		}
		e.Run()
	}
	for i := 0; i < warmRounds; i++ {
		work()
	}
	if allocs := testing.AllocsPerRun(200, work); allocs != 0 {
		t.Errorf("wheel schedule+run: %v allocs/op, want 0", allocs)
	}
	if e.PoolOutstanding() != 0 {
		t.Fatalf("pool leak: %d outstanding", e.PoolOutstanding())
	}
}

func TestScheduleRunNoAllocsOverflow(t *testing.T) {
	// Horizon-crossing schedules exercise place's overflow level and pop's
	// rebase, which must also recycle in place once warmed.
	e := New()
	h := HandlerFunc(func(Event) {})
	work := func() {
		for i := Time(0); i < 8; i++ {
			if err := e.Schedule(e.Now()+wheelHorizon+i*100, h, nil); err != nil {
				t.Fatal(err)
			}
		}
		e.Run()
	}
	for i := 0; i < warmRounds; i++ {
		work()
	}
	if allocs := testing.AllocsPerRun(200, work); allocs != 0 {
		t.Errorf("overflow schedule+run: %v allocs/op, want 0", allocs)
	}
}

func TestWheelPrimitivesNoAllocs(t *testing.T) {
	e := New()
	h := HandlerFunc(func(Event) {})
	work := func() {
		for i := Time(0); i < 8; i++ {
			if err := e.Schedule(e.Now()+i*17%200, h, nil); err != nil {
				t.Fatal(err)
			}
		}
		for e.Pending() > 0 {
			ev := e.pop()
			e.now = ev.When
			e.put(ev)
		}
	}
	for i := 0; i < warmRounds; i++ {
		work()
	}
	if allocs := testing.AllocsPerRun(200, work); allocs != 0 {
		t.Errorf("push/pop/get/put: %v allocs/op, want 0", allocs)
	}
	if e.PoolOutstanding() != 0 {
		t.Fatalf("pool leak: %d outstanding", e.PoolOutstanding())
	}
}
