// Package event provides the discrete-event simulation engine that sequences
// kernel launches, synchronization operations, and completions across
// chiplets and streams.
//
// The engine is a classic calendar: handlers schedule events at absolute
// cycle times; Run pops them in time order and invokes their handlers, which
// may schedule further events. Ties are broken by insertion order so
// simulations are deterministic.
package event

import (
	"container/heap"
	"errors"
)

// ErrPastEvent reports an attempt to schedule an event before the current
// clock: a causality bug in the caller. It is returned (not panicked) so
// embedding simulations can surface it as a run error instead of crashing
// a worker.
var ErrPastEvent = errors.New("event: scheduled in the past")

// Time is an absolute simulation time in GPU core cycles.
type Time uint64

// Handler consumes an event when the simulation clock reaches its time.
type Handler interface {
	// Handle processes the event. It runs exactly once, at the event's
	// scheduled time, with the engine clock already advanced.
	Handle(e Event)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(e Event)

// Handle calls f(e).
func (f HandlerFunc) Handle(e Event) { f(e) }

// Event is one scheduled occurrence.
type Event struct {
	When    Time
	Handler Handler
	Payload any

	seq uint64 // tie-break: FIFO among events at the same time
}

// queue implements heap.Interface ordered by (When, seq).
type queue []*Event

func (q queue) Len() int { return len(q) }
func (q queue) Less(i, j int) bool {
	if q[i].When != q[j].When {
		return q[i].When < q[j].When
	}
	return q[i].seq < q[j].seq
}
func (q queue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *queue) Push(x any)   { *q = append(*q, x.(*Event)) }
func (q *queue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine owns the simulation clock and the pending-event calendar.
// The zero value is ready to use.
type Engine struct {
	now     Time
	pending queue
	nextSeq uint64
	stopped bool

	// OnDeliver, when non-nil, is invoked with the (already advanced) clock
	// before each event's handler runs. The trace recorder uses it as its
	// clock source; observers must not schedule or deliver events.
	OnDeliver func(Time)

	// Prof, when non-nil, receives phase marks around the dispatch loop:
	// PhaseCalendar while the engine pops and bookkeeps, whatever phases the
	// handlers mark while they run, and the caller's phase restored when Run
	// returns. Purely observational — the engine never reads time from it.
	Prof Profiler
}

// New returns an Engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events not yet delivered.
func (e *Engine) Pending() int { return len(e.pending) }

// Schedule enqueues an event for handler h at absolute time t with the given
// payload. Scheduling in the past (t < Now) returns ErrPastEvent and enqueues
// nothing: it indicates a causality bug in the caller, which should stop the
// simulation and surface the error.
func (e *Engine) Schedule(t Time, h Handler, payload any) error {
	if t < e.now {
		return ErrPastEvent
	}
	ev := &Event{When: t, Handler: h, Payload: payload, seq: e.nextSeq}
	e.nextSeq++
	heap.Push(&e.pending, ev)
	return nil
}

// ScheduleAfter enqueues an event delta cycles after the current time.
func (e *Engine) ScheduleAfter(delta Time, h Handler, payload any) error {
	return e.Schedule(e.now+delta, h, payload)
}

// Stop makes Run return after the current event's handler completes.
func (e *Engine) Stop() { e.stopped = true }

// Run delivers events in time order until the calendar drains or Stop is
// called, and returns the final clock value.
func (e *Engine) Run() Time {
	e.stopped = false
	if e.Prof != nil {
		prev := e.Prof.SetPhase(PhaseCalendar)
		defer e.Prof.SetPhase(prev)
	}
	for len(e.pending) > 0 && !e.stopped {
		ev := heap.Pop(&e.pending).(*Event)
		e.now = ev.When
		if e.OnDeliver != nil {
			e.OnDeliver(e.now)
		}
		ev.Handler.Handle(*ev)
		if e.Prof != nil {
			// Handlers may have marked their own phases; the loop is back in
			// calendar bookkeeping until the next delivery.
			e.Prof.SetPhase(PhaseCalendar)
		}
	}
	return e.now
}

// Step delivers exactly one event, if any, and reports whether one was
// delivered.
func (e *Engine) Step() bool {
	if len(e.pending) == 0 {
		return false
	}
	if e.Prof != nil {
		prev := e.Prof.SetPhase(PhaseCalendar)
		defer e.Prof.SetPhase(prev)
	}
	ev := heap.Pop(&e.pending).(*Event)
	e.now = ev.When
	if e.OnDeliver != nil {
		e.OnDeliver(e.now)
	}
	ev.Handler.Handle(*ev)
	return true
}

// Reset drops all pending events and rewinds the clock to zero.
func (e *Engine) Reset() {
	e.pending = nil
	e.now = 0
	e.nextSeq = 0
	e.stopped = false
}
