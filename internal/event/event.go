// Package event provides the discrete-event simulation engine that sequences
// kernel launches, synchronization operations, and completions across
// chiplets and streams.
//
// The engine is a classic calendar: handlers schedule events at absolute
// cycle times; Run pops them in time order and invokes their handlers, which
// may schedule further events. Ties are broken by insertion order so
// simulations are deterministic.
//
// Two calendar implementations exist behind the same Engine API. The default
// is a bucketed timer wheel: near-future events hash into one of 256 buckets
// by (When - base) >> bucketShift, and events beyond the wheel's horizon wait
// in an overflow level that is re-bucketed when the wheel advances past its
// horizon. The original binary heap is kept behind CalendarHeap so the
// differential equivalence tests can prove the two produce byte-identical
// simulations.
//
// Event nodes are pooled: the engine owns a free list, Schedule takes a node
// from it, and the node returns to the list after the handler runs. Handlers
// receive the event by value, so they cannot retain the pooled node; the
// cpelint eventsafety pass additionally flags handlers that take the address
// of their event parameter.
package event

import (
	"container/heap"
	"errors"
	"math/bits"
)

// ErrPastEvent reports an attempt to schedule an event before the current
// clock: a causality bug in the caller. It is returned (not panicked) so
// embedding simulations can surface it as a run error instead of crashing
// a worker.
var ErrPastEvent = errors.New("event: scheduled in the past")

// Time is an absolute simulation time in GPU core cycles.
type Time uint64

// Handler consumes an event when the simulation clock reaches its time.
type Handler interface {
	// Handle processes the event. It runs exactly once, at the event's
	// scheduled time, with the engine clock already advanced. The event is
	// passed by value and must not outlive the call by address: the node it
	// was copied from returns to the engine's pool when Handle returns.
	Handle(e Event)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(e Event)

// Handle calls f(e).
func (f HandlerFunc) Handle(e Event) { f(e) }

// Event is one scheduled occurrence.
type Event struct {
	When    Time
	Handler Handler
	Payload any

	seq uint64 // tie-break: FIFO among events at the same time
}

// CalendarKind selects the Engine's pending-event calendar implementation.
type CalendarKind uint8

const (
	// CalendarWheel is the default: a bucketed timer wheel with an overflow
	// level, re-bucketed on horizon advance.
	CalendarWheel CalendarKind = iota
	// CalendarHeap is the original container/heap calendar, kept so the
	// differential equivalence tests can compare the two implementations.
	CalendarHeap
)

// String returns the calendar's name as used in test and bench labels.
func (k CalendarKind) String() string {
	if k == CalendarHeap {
		return "heap"
	}
	return "wheel"
}

// queue implements heap.Interface ordered by (When, seq).
type queue []*Event

func (q queue) Len() int { return len(q) }
func (q queue) Less(i, j int) bool {
	if q[i].When != q[j].When {
		return q[i].When < q[j].When
	}
	return q[i].seq < q[j].seq
}
func (q queue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *queue) Push(x any)   { *q = append(*q, x.(*Event)) }
func (q *queue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Timer-wheel geometry: 256 buckets of 64 cycles each give a 16384-cycle
// horizon. Events beyond the horizon go to the overflow level; when the wheel
// drains, the base jumps directly to the earliest overflow event and the
// overflow is re-bucketed, so advancing costs one overflow scan per jump
// regardless of how far the clock moves.
const (
	wheelBuckets = 256
	bucketShift  = 6
	wheelHorizon = Time(wheelBuckets) << bucketShift
)

// wheelBucket holds the events of one time slice. Events append unsorted (in
// seq order); the bucket is sorted by (When, seq) lazily, when it becomes the
// drain target, and re-sorted if a handler schedules into it mid-drain.
type wheelBucket struct {
	ev    []*Event
	head  int  // ev[:head] already delivered (slots nil)
	dirty bool // ev[head:] may be out of (When, seq) order
}

// wheel is the default calendar. Invariant: every overflow event's When is at
// least base+wheelHorizon, and every bucketed event's When is in
// [base, base+wheelHorizon), so the wheel always holds the global minimum
// when it is non-empty. Externally base <= now always holds (rebase can move
// base past now only inside pop, which immediately returns the event the new
// base was derived from), so Schedule's t >= now guard implies t >= base.
type wheel struct {
	base     Time
	buckets  [wheelBuckets]wheelBucket
	occupied [wheelBuckets / 64]uint64
	overflow []*Event
	count    int
}

//cpelide:noalloc
func eventLess(a, b *Event) bool {
	if a.When != b.When {
		return a.When < b.When
	}
	return a.seq < b.seq
}

// sortBucket insertion-sorts ev by (When, seq). Buckets are small and nearly
// sorted (pushes arrive in seq order), so this beats sort.Slice and allocates
// nothing.
//
//cpelide:noalloc
func sortBucket(ev []*Event) {
	for i := 1; i < len(ev); i++ {
		e := ev[i]
		j := i - 1
		for j >= 0 && eventLess(e, ev[j]) {
			ev[j+1] = ev[j]
			j--
		}
		ev[j+1] = e
	}
}

// push files one event into the calendar.
//
//cpelide:noalloc amortized bucket growth is baselined inside place
func (w *wheel) push(ev *Event) {
	w.count++
	w.place(ev)
}

// place files ev into its bucket or the overflow level (count not touched).
//
//cpelide:noalloc
func (w *wheel) place(ev *Event) {
	if ev.When-w.base >= wheelHorizon {
		//cpelint:ignore noalloc overflow level grows amortized; steady state reuses its backing array
		w.overflow = append(w.overflow, ev)
		return
	}
	b := int((ev.When - w.base) >> bucketShift)
	bk := &w.buckets[b]
	if n := len(bk.ev); n > bk.head && ev.When < bk.ev[n-1].When {
		bk.dirty = true
	}
	//cpelint:ignore noalloc bucket storage grows amortized and is reused across wheel rotations
	bk.ev = append(bk.ev, ev)
	w.occupied[b>>6] |= 1 << (b & 63)
}

// firstOccupied returns the lowest occupied bucket index, or -1. Buckets
// below the pending minimum are always empty (events deliver in time order
// and Schedule rejects the past), so scanning from zero is correct.
//
//cpelide:noalloc
func (w *wheel) firstOccupied() int {
	for wi, word := range w.occupied {
		if word != 0 {
			return wi<<6 + bits.TrailingZeros64(word)
		}
	}
	return -1
}

// rebase jumps the wheel to the earliest overflow event and re-buckets the
// overflow level. Called only when the wheel is empty and overflow is not.
// Re-bucketing reuses the overflow backing array in place.
//
//cpelide:noalloc
func (w *wheel) rebase() {
	min := w.overflow[0].When
	for _, ev := range w.overflow[1:] {
		if ev.When < min {
			min = ev.When
		}
	}
	w.base = min &^ (1<<bucketShift - 1)
	keep := w.overflow[:0]
	for _, ev := range w.overflow {
		if ev.When-w.base < wheelHorizon {
			w.place(ev)
		} else {
			keep = append(keep, ev)
		}
	}
	for i := len(keep); i < len(w.overflow); i++ {
		w.overflow[i] = nil
	}
	w.overflow = keep
}

// pop removes and returns the earliest pending event, or nil.
//
//cpelide:noalloc
func (w *wheel) pop() *Event {
	if w.count == 0 {
		return nil
	}
	for {
		b := w.firstOccupied()
		if b < 0 {
			w.rebase()
			continue
		}
		bk := &w.buckets[b]
		if bk.dirty {
			sortBucket(bk.ev[bk.head:])
			bk.dirty = false
		}
		ev := bk.ev[bk.head]
		bk.ev[bk.head] = nil
		bk.head++
		if bk.head == len(bk.ev) {
			bk.ev = bk.ev[:0]
			bk.head = 0
			w.occupied[b>>6] &^= 1 << (b & 63)
		}
		w.count--
		return ev
	}
}

// reset recycles every pending event through fn and empties the wheel.
func (w *wheel) reset(fn func(*Event)) {
	for b := range w.buckets {
		bk := &w.buckets[b]
		for i := bk.head; i < len(bk.ev); i++ {
			fn(bk.ev[i])
			bk.ev[i] = nil
		}
		bk.ev = bk.ev[:0]
		bk.head = 0
		bk.dirty = false
	}
	for i := range w.occupied {
		w.occupied[i] = 0
	}
	for i, ev := range w.overflow {
		fn(ev)
		w.overflow[i] = nil
	}
	w.overflow = w.overflow[:0]
	w.base = 0
	w.count = 0
}

// Engine owns the simulation clock and the pending-event calendar.
// The zero value is ready to use (with the timer-wheel calendar).
type Engine struct {
	now     Time
	nextSeq uint64
	stopped bool

	useHeap bool
	hq      queue
	wheel   wheel

	// free is the engine-owned event pool. Schedule takes a node from it and
	// the node returns after its handler runs; outstanding counts nodes
	// currently scheduled or in delivery, so a drained engine reports zero.
	free        []*Event
	outstanding int

	// OnDeliver, when non-nil, is invoked with the (already advanced) clock
	// before each event's handler runs. The trace recorder uses it as its
	// clock source; observers must not schedule or deliver events.
	OnDeliver func(Time)

	// Prof, when non-nil, receives phase marks around the dispatch loop:
	// PhaseCalendar while the engine pops and bookkeeps, whatever phases the
	// handlers mark while they run, and the caller's phase restored when Run
	// returns. Purely observational — the engine never reads time from it.
	Prof Profiler
}

// New returns an Engine with the clock at zero and the default timer-wheel
// calendar.
func New() *Engine { return &Engine{} }

// NewWithCalendar returns an Engine using the given calendar implementation.
// Simulations are byte-identical across calendars; CalendarHeap exists for
// the differential equivalence tests and A/B benchmarking.
func NewWithCalendar(k CalendarKind) *Engine {
	return &Engine{useHeap: k == CalendarHeap}
}

// Calendar reports which calendar implementation the engine uses.
func (e *Engine) Calendar() CalendarKind {
	if e.useHeap {
		return CalendarHeap
	}
	return CalendarWheel
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events not yet delivered.
func (e *Engine) Pending() int {
	if e.useHeap {
		return len(e.hq)
	}
	return e.wheel.count
}

// PoolOutstanding returns the number of pool-owned event nodes currently
// scheduled or in delivery. A drained engine reports zero; a nonzero value
// after Run returns with an empty calendar indicates a leak.
func (e *Engine) PoolOutstanding() int { return e.outstanding }

// PoolFree returns the number of idle nodes in the engine's free list.
func (e *Engine) PoolFree() int { return len(e.free) }

// get takes an event node from the pool, growing it on demand.
//
//cpelide:noalloc pool growth is baselined below; steady state recycles nodes
func (e *Engine) get() *Event {
	e.outstanding++
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	//cpelint:ignore noalloc pool growth: one node per high-water increase, zero steady-state
	return &Event{}
}

// put returns a delivered (or dropped) node to the pool. References are
// cleared so a pooled node never pins a handler or payload.
//
//cpelide:noalloc free-list growth is baselined below
func (e *Engine) put(ev *Event) {
	ev.Handler = nil
	ev.Payload = nil
	//cpelint:ignore noalloc free list grows to the pool high-water mark, then stabilizes
	e.free = append(e.free, ev)
	e.outstanding--
}

// push hands one node to the active calendar.
//
//cpelide:noalloc heap calendar is baselined below; the wheel path is clean
func (e *Engine) push(ev *Event) {
	if e.useHeap {
		//cpelint:ignore noalloc heap calendar is the A/B reference, not the default hot path
		heap.Push(&e.hq, ev)
		return
	}
	e.wheel.push(ev)
}

// pop takes the earliest node from the active calendar.
//
//cpelide:noalloc heap calendar is baselined below; the wheel path is clean
func (e *Engine) pop() *Event {
	if e.useHeap {
		if len(e.hq) == 0 {
			return nil
		}
		//cpelint:ignore noalloc heap calendar is the A/B reference, not the default hot path
		return heap.Pop(&e.hq).(*Event)
	}
	return e.wheel.pop()
}

// Schedule enqueues an event for handler h at absolute time t with the given
// payload. Scheduling in the past (t < Now) returns ErrPastEvent and enqueues
// nothing: it indicates a causality bug in the caller, which should stop the
// simulation and surface the error.
//
//cpelide:noalloc
func (e *Engine) Schedule(t Time, h Handler, payload any) error {
	if t < e.now {
		return ErrPastEvent
	}
	ev := e.get()
	ev.When, ev.Handler, ev.Payload, ev.seq = t, h, payload, e.nextSeq
	e.nextSeq++
	e.push(ev)
	return nil
}

// ScheduleAfter enqueues an event delta cycles after the current time.
//
//cpelide:noalloc
func (e *Engine) ScheduleAfter(delta Time, h Handler, payload any) error {
	return e.Schedule(e.now+delta, h, payload)
}

// Stop makes Run return after the current event's handler completes.
func (e *Engine) Stop() { e.stopped = true }

// Run delivers events in time order until the calendar drains or Stop is
// called, and returns the final clock value.
func (e *Engine) Run() Time {
	e.stopped = false
	if e.Prof != nil {
		prev := e.Prof.SetPhase(PhaseCalendar)
		defer e.Prof.SetPhase(prev)
	}
	for e.Pending() > 0 && !e.stopped {
		ev := e.pop()
		e.now = ev.When
		if e.OnDeliver != nil {
			e.OnDeliver(e.now)
		}
		ev.Handler.Handle(*ev)
		e.put(ev)
		if e.Prof != nil {
			// Handlers may have marked their own phases; the loop is back in
			// calendar bookkeeping until the next delivery.
			e.Prof.SetPhase(PhaseCalendar)
		}
	}
	return e.now
}

// Step delivers exactly one event, if any, and reports whether one was
// delivered.
func (e *Engine) Step() bool {
	if e.Pending() == 0 {
		return false
	}
	if e.Prof != nil {
		prev := e.Prof.SetPhase(PhaseCalendar)
		defer e.Prof.SetPhase(prev)
	}
	ev := e.pop()
	e.now = ev.When
	if e.OnDeliver != nil {
		e.OnDeliver(e.now)
	}
	ev.Handler.Handle(*ev)
	e.put(ev)
	return true
}

// Reset drops all pending events (their nodes return to the pool) and
// rewinds the clock to zero.
func (e *Engine) Reset() {
	if e.useHeap {
		for _, ev := range e.hq {
			e.put(ev)
		}
		e.hq = nil
	} else {
		e.wheel.reset(e.put)
	}
	e.now = 0
	e.nextSeq = 0
	e.stopped = false
}
