package experiments

import (
	"repro"
)

// Extension studies for the alternatives Section VI discusses qualitatively:
// driver-managed synchronization, page placement policies, automated
// annotations, WG scheduling, and kernel fusion.

// DriverManaged quantifies moving CPElide's decision logic to the GPU
// driver: identical elision, plus a host round trip per kernel launch (the
// paper: "prior work has shown this adds significant latency, hurting
// performance ... Conversely, CPElide is tightly integrated with the GPU at
// the global CP").
func DriverManaged(p Params) (*Result, error) {
	res := &Result{
		Title:   "Extension: driver-managed synchronization (speedup vs CP-resident CPElide)",
		Series:  []string{"driver"},
		Summary: map[string]float64{},
	}
	cfg := cpelide.DefaultConfig(4)
	m, err := runMatrix(p, []variant{
		{key: "cp", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolCPElide}},
		{key: "drv", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolCPElide, DriverManaged: true}},
	})
	if err != nil {
		return nil, err
	}
	for _, name := range p.names() {
		res.Rows = append(res.Rows, Row{
			Workload: name,
			Class:    classOf(name),
			Values:   map[string]float64{"driver": m[name]["drv"].Speedup(m[name]["cp"])},
		})
	}
	summarize(res, "driver")
	return res, nil
}

// PagePlacement compares the paper's first-touch policy against interleaved
// and single-chiplet placement under CPElide (the paper: "sometimes first
// touch is ineffective and different placement policies can skew
// performance").
func PagePlacement(p Params) (*Result, error) {
	res := &Result{
		Title:   "Extension: page placement policies (speedup vs first touch, CPElide)",
		Series:  []string{"interleaved", "single"},
		Summary: map[string]float64{},
	}
	cfg := cpelide.DefaultConfig(4)
	m, err := runMatrix(p, []variant{
		{key: "ft", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolCPElide}},
		{key: "il", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolCPElide, Placement: cpelide.PlacementInterleaved}},
		{key: "sg", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolCPElide, Placement: cpelide.PlacementSingle}},
	})
	if err != nil {
		return nil, err
	}
	for _, name := range p.names() {
		ft := m[name]["ft"]
		res.Rows = append(res.Rows, Row{
			Workload: name,
			Class:    classOf(name),
			Values: map[string]float64{
				"interleaved": m[name]["il"].Speedup(ft),
				"single":      m[name]["sg"].Speedup(ft),
			},
		})
	}
	summarize(res, "interleaved", "single")
	return res, nil
}

// InferredAnnotations compares profile-derived (record-and-replay) range
// annotations against the static hipSetAccessModeRange metadata. Inferred
// ranges are exact, so irregular workloads whose static annotations must
// conservatively declare whole structures can synchronize less.
func InferredAnnotations(p Params) (*Result, error) {
	res := &Result{
		Title:   "Extension: profile-inferred annotations (speedup vs static ranges, CPElide)",
		Series:  []string{"inferred"},
		Summary: map[string]float64{},
	}
	cfg := cpelide.DefaultConfig(4)
	m, err := runMatrix(p, []variant{
		{key: "static", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolCPElide}},
		{key: "inf", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolCPElide, InferAnnotations: true}},
	})
	if err != nil {
		return nil, err
	}
	for _, name := range p.names() {
		res.Rows = append(res.Rows, Row{
			Workload: name,
			Class:    classOf(name),
			Values:   map[string]float64{"inferred": m[name]["inf"].Speedup(m[name]["static"])},
		})
	}
	summarize(res, "inferred")
	return res, nil
}

// Scheduling compares the round-robin WG-to-CU assignment against chunked
// (LADM-style locality-centric) assignment under CPElide.
func Scheduling(p Params) (*Result, error) {
	res := &Result{
		Title:   "Extension: chunked WG-to-CU scheduling (speedup vs round-robin, CPElide)",
		Series:  []string{"chunked"},
		Summary: map[string]float64{},
	}
	cfg := cpelide.DefaultConfig(4)
	m, err := runMatrix(p, []variant{
		{key: "rr", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolCPElide}},
		{key: "ch", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolCPElide, Scheduler: cpelide.ChunkedCU}},
	})
	if err != nil {
		return nil, err
	}
	for _, name := range p.names() {
		res.Rows = append(res.Rows, Row{
			Workload: name,
			Class:    classOf(name),
			Values:   map[string]float64{"chunked": m[name]["ch"].Speedup(m[name]["rr"])},
		})
	}
	summarize(res, "chunked")
	return res, nil
}

// KernelFusion compares software kernel fusion on the baseline protocol
// against CPElide without fusion (Section VI: fusion avoids some boundary
// synchronization but is limited by pressure and safety, "and the
// application still requires implicit synchronization").
func KernelFusion(p Params) (*Result, error) {
	res := &Result{
		Title:   "Extension: kernel fusion vs CPElide (speedups over unfused Baseline)",
		Series:  []string{"Base+fusion", "CPElide", "fused-kernels"},
		Summary: map[string]float64{},
	}
	cfg := cpelide.DefaultConfig(4)
	m, err := runMatrix(p, []variant{
		{key: "base", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolBaseline}},
		{key: "elide", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolCPElide}},
		{key: "fused", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolBaseline},
			fusion: &farmFusionDefault},
	})
	if err != nil {
		return nil, err
	}
	for _, name := range p.names() {
		base, elide, fused := m[name]["base"], m[name]["elide"], m[name]["fused"]
		res.Rows = append(res.Rows, Row{
			Workload: name,
			Class:    classOf(name),
			Values: map[string]float64{
				"Base+fusion":   fused.Speedup(base),
				"CPElide":       elide.Speedup(base),
				"fused-kernels": float64(base.Kernels - fused.Kernels),
			},
		})
	}
	summarize(res, "Base+fusion", "CPElide")
	return res, nil
}

// RemoteBankComparison evaluates the paper's design alternative (a) — a
// NUCA-style shared L2 whose remote banks serve every remote access — next
// to CPElide, both as speedups over the baseline (alternative (b)). It
// shows the design space the paper positions CPElide inside: (a) gives up
// locality to avoid synchronization, (b) gives up reuse to stay simple,
// CPElide keeps both.
func RemoteBankComparison(p Params) (*Result, error) {
	res := &Result{
		Title:   "Extension: NUCA remote-bank L2 (alternative (a)) vs CPElide, speedups over Baseline",
		Series:  []string{"RemoteBank", "CPElide"},
		Summary: map[string]float64{},
	}
	cfg := cpelide.DefaultConfig(4)
	m, err := runMatrix(p, []variant{
		{key: "base", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolBaseline}},
		{key: "rb", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolRemoteBank}},
		{key: "elide", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolCPElide}},
	})
	if err != nil {
		return nil, err
	}
	for _, name := range p.names() {
		base := m[name]["base"]
		res.Rows = append(res.Rows, Row{
			Workload: name,
			Class:    classOf(name),
			Values: map[string]float64{
				"RemoteBank": m[name]["rb"].Speedup(base),
				"CPElide":    m[name]["elide"].Speedup(base),
			},
		})
	}
	summarize(res, "RemoteBank", "CPElide")
	return res, nil
}

// MGPU evaluates the Section VI claim that CPElide also helps multi-GPU
// systems built from MCM-GPUs: an 8-chiplet system as one package versus
// two 4-chiplet GPUs joined by the inter-GPU interconnect. Speedups are
// each protocol's gain over the baseline on the same topology.
func MGPU(p Params) (*Result, error) {
	res := &Result{
		Title:   "Extension: MGPU (2 GPUs x 4 chiplets) vs single 8-chiplet MCM-GPU",
		Series:  []string{"1gpu-CPElide", "2gpu-CPElide", "2gpu-HMG"},
		Summary: map[string]float64{},
	}
	single := cpelide.DefaultConfig(8)
	dual := cpelide.MGPUConfig(2, 4)
	m, err := runMatrix(p, []variant{
		{key: "b1", cfg: single, opt: cpelide.Options{Protocol: cpelide.ProtocolBaseline}},
		{key: "e1", cfg: single, opt: cpelide.Options{Protocol: cpelide.ProtocolCPElide}},
		{key: "b2", cfg: dual, opt: cpelide.Options{Protocol: cpelide.ProtocolBaseline}},
		{key: "e2", cfg: dual, opt: cpelide.Options{Protocol: cpelide.ProtocolCPElide}},
		{key: "h2", cfg: dual, opt: cpelide.Options{Protocol: cpelide.ProtocolHMG}},
	})
	if err != nil {
		return nil, err
	}
	for _, name := range p.names() {
		res.Rows = append(res.Rows, Row{
			Workload: name,
			Class:    classOf(name),
			Values: map[string]float64{
				"1gpu-CPElide": m[name]["e1"].Speedup(m[name]["b1"]),
				"2gpu-CPElide": m[name]["e2"].Speedup(m[name]["b2"]),
				"2gpu-HMG":     m[name]["h2"].Speedup(m[name]["b2"]),
			},
		})
	}
	summarize(res, "1gpu-CPElide", "2gpu-CPElide", "2gpu-HMG")
	return res, nil
}
