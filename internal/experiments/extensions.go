package experiments

import (
	"repro"
	"repro/internal/kernels"
	"repro/internal/workloads"
)

// Extension studies for the alternatives Section VI discusses qualitatively:
// driver-managed synchronization, page placement policies, automated
// annotations, WG scheduling, and kernel fusion.

// DriverManaged quantifies moving CPElide's decision logic to the GPU
// driver: identical elision, plus a host round trip per kernel launch (the
// paper: "prior work has shown this adds significant latency, hurting
// performance ... Conversely, CPElide is tightly integrated with the GPU at
// the global CP").
func DriverManaged(p Params) (*Result, error) {
	res := &Result{
		Title:   "Extension: driver-managed synchronization (speedup vs CP-resident CPElide)",
		Series:  []string{"driver"},
		Summary: map[string]float64{},
	}
	cfg := cpelide.DefaultConfig(4)
	for _, name := range p.names() {
		cpRes, err := runOne(name, cfg, p.wp(), cpelide.Options{Protocol: cpelide.ProtocolCPElide})
		if err != nil {
			return nil, err
		}
		drv, err := runOne(name, cfg, p.wp(), cpelide.Options{
			Protocol: cpelide.ProtocolCPElide, DriverManaged: true,
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{
			Workload: name,
			Class:    classOf(name),
			Values:   map[string]float64{"driver": drv.Speedup(cpRes)},
		})
	}
	summarize(res, "driver")
	return res, nil
}

// PagePlacement compares the paper's first-touch policy against interleaved
// and single-chiplet placement under CPElide (the paper: "sometimes first
// touch is ineffective and different placement policies can skew
// performance").
func PagePlacement(p Params) (*Result, error) {
	res := &Result{
		Title:   "Extension: page placement policies (speedup vs first touch, CPElide)",
		Series:  []string{"interleaved", "single"},
		Summary: map[string]float64{},
	}
	cfg := cpelide.DefaultConfig(4)
	for _, name := range p.names() {
		ft, err := runOne(name, cfg, p.wp(), cpelide.Options{Protocol: cpelide.ProtocolCPElide})
		if err != nil {
			return nil, err
		}
		il, err := runOne(name, cfg, p.wp(), cpelide.Options{
			Protocol: cpelide.ProtocolCPElide, Placement: cpelide.PlacementInterleaved,
		})
		if err != nil {
			return nil, err
		}
		sg, err := runOne(name, cfg, p.wp(), cpelide.Options{
			Protocol: cpelide.ProtocolCPElide, Placement: cpelide.PlacementSingle,
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{
			Workload: name,
			Class:    classOf(name),
			Values: map[string]float64{
				"interleaved": il.Speedup(ft),
				"single":      sg.Speedup(ft),
			},
		})
	}
	summarize(res, "interleaved", "single")
	return res, nil
}

// InferredAnnotations compares profile-derived (record-and-replay) range
// annotations against the static hipSetAccessModeRange metadata. Inferred
// ranges are exact, so irregular workloads whose static annotations must
// conservatively declare whole structures can synchronize less.
func InferredAnnotations(p Params) (*Result, error) {
	res := &Result{
		Title:   "Extension: profile-inferred annotations (speedup vs static ranges, CPElide)",
		Series:  []string{"inferred"},
		Summary: map[string]float64{},
	}
	cfg := cpelide.DefaultConfig(4)
	for _, name := range p.names() {
		static, err := runOne(name, cfg, p.wp(), cpelide.Options{Protocol: cpelide.ProtocolCPElide})
		if err != nil {
			return nil, err
		}
		inf, err := runOne(name, cfg, p.wp(), cpelide.Options{
			Protocol: cpelide.ProtocolCPElide, InferAnnotations: true,
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{
			Workload: name,
			Class:    classOf(name),
			Values:   map[string]float64{"inferred": inf.Speedup(static)},
		})
	}
	summarize(res, "inferred")
	return res, nil
}

// Scheduling compares the round-robin WG-to-CU assignment against chunked
// (LADM-style locality-centric) assignment under CPElide.
func Scheduling(p Params) (*Result, error) {
	res := &Result{
		Title:   "Extension: chunked WG-to-CU scheduling (speedup vs round-robin, CPElide)",
		Series:  []string{"chunked"},
		Summary: map[string]float64{},
	}
	cfg := cpelide.DefaultConfig(4)
	for _, name := range p.names() {
		rr, err := runOne(name, cfg, p.wp(), cpelide.Options{Protocol: cpelide.ProtocolCPElide})
		if err != nil {
			return nil, err
		}
		ch, err := runOne(name, cfg, p.wp(), cpelide.Options{
			Protocol: cpelide.ProtocolCPElide, Scheduler: cpelide.ChunkedCU,
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{
			Workload: name,
			Class:    classOf(name),
			Values:   map[string]float64{"chunked": ch.Speedup(rr)},
		})
	}
	summarize(res, "chunked")
	return res, nil
}

// KernelFusion compares software kernel fusion on the baseline protocol
// against CPElide without fusion (Section VI: fusion avoids some boundary
// synchronization but is limited by pressure and safety, "and the
// application still requires implicit synchronization").
func KernelFusion(p Params) (*Result, error) {
	res := &Result{
		Title:   "Extension: kernel fusion vs CPElide (speedups over unfused Baseline)",
		Series:  []string{"Base+fusion", "CPElide", "fused-kernels"},
		Summary: map[string]float64{},
	}
	cfg := cpelide.DefaultConfig(4)
	for _, name := range p.names() {
		alloc := cpelide.NewAllocator(cfg.PageSize)
		w, err := workloads.Build(name, alloc, p.wp())
		if err != nil {
			return nil, err
		}
		base, err := cpelide.Run(cfg, w, cpelide.Options{Protocol: cpelide.ProtocolBaseline})
		if err != nil {
			return nil, err
		}
		elide, err := cpelide.Run(cfg, w, cpelide.Options{Protocol: cpelide.ProtocolCPElide})
		if err != nil {
			return nil, err
		}
		fusedW := kernels.FuseAdjacent(w, kernels.FusionConfig{})
		fused, err := cpelide.Run(cfg, fusedW, cpelide.Options{Protocol: cpelide.ProtocolBaseline})
		if err != nil {
			return nil, err
		}
		if base.StaleReads+elide.StaleReads+fused.StaleReads != 0 {
			return nil, errStale(name)
		}
		res.Rows = append(res.Rows, Row{
			Workload: name,
			Class:    classOf(name),
			Values: map[string]float64{
				"Base+fusion":   fused.Speedup(base),
				"CPElide":       elide.Speedup(base),
				"fused-kernels": float64(len(w.Sequence) - len(fusedW.Sequence)),
			},
		})
	}
	summarize(res, "Base+fusion", "CPElide")
	return res, nil
}

// RemoteBankComparison evaluates the paper's design alternative (a) — a
// NUCA-style shared L2 whose remote banks serve every remote access — next
// to CPElide, both as speedups over the baseline (alternative (b)). It
// shows the design space the paper positions CPElide inside: (a) gives up
// locality to avoid synchronization, (b) gives up reuse to stay simple,
// CPElide keeps both.
func RemoteBankComparison(p Params) (*Result, error) {
	res := &Result{
		Title:   "Extension: NUCA remote-bank L2 (alternative (a)) vs CPElide, speedups over Baseline",
		Series:  []string{"RemoteBank", "CPElide"},
		Summary: map[string]float64{},
	}
	cfg := cpelide.DefaultConfig(4)
	for _, name := range p.names() {
		base, err := runOne(name, cfg, p.wp(), cpelide.Options{Protocol: cpelide.ProtocolBaseline})
		if err != nil {
			return nil, err
		}
		rb, err := runOne(name, cfg, p.wp(), cpelide.Options{Protocol: cpelide.ProtocolRemoteBank})
		if err != nil {
			return nil, err
		}
		elide, err := runOne(name, cfg, p.wp(), cpelide.Options{Protocol: cpelide.ProtocolCPElide})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{
			Workload: name,
			Class:    classOf(name),
			Values: map[string]float64{
				"RemoteBank": rb.Speedup(base),
				"CPElide":    elide.Speedup(base),
			},
		})
	}
	summarize(res, "RemoteBank", "CPElide")
	return res, nil
}

// MGPU evaluates the Section VI claim that CPElide also helps multi-GPU
// systems built from MCM-GPUs: an 8-chiplet system as one package versus
// two 4-chiplet GPUs joined by the inter-GPU interconnect. Speedups are
// each protocol's gain over the baseline on the same topology.
func MGPU(p Params) (*Result, error) {
	res := &Result{
		Title:   "Extension: MGPU (2 GPUs x 4 chiplets) vs single 8-chiplet MCM-GPU",
		Series:  []string{"1gpu-CPElide", "2gpu-CPElide", "2gpu-HMG"},
		Summary: map[string]float64{},
	}
	single := cpelide.DefaultConfig(8)
	dual := cpelide.MGPUConfig(2, 4)
	for _, name := range p.names() {
		b1, err := runOne(name, single, p.wp(), cpelide.Options{Protocol: cpelide.ProtocolBaseline})
		if err != nil {
			return nil, err
		}
		e1, err := runOne(name, single, p.wp(), cpelide.Options{Protocol: cpelide.ProtocolCPElide})
		if err != nil {
			return nil, err
		}
		b2, err := runOne(name, dual, p.wp(), cpelide.Options{Protocol: cpelide.ProtocolBaseline})
		if err != nil {
			return nil, err
		}
		e2, err := runOne(name, dual, p.wp(), cpelide.Options{Protocol: cpelide.ProtocolCPElide})
		if err != nil {
			return nil, err
		}
		h2, err := runOne(name, dual, p.wp(), cpelide.Options{Protocol: cpelide.ProtocolHMG})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{
			Workload: name,
			Class:    classOf(name),
			Values: map[string]float64{
				"1gpu-CPElide": e1.Speedup(b1),
				"2gpu-CPElide": e2.Speedup(b2),
				"2gpu-HMG":     h2.Speedup(b2),
			},
		})
	}
	summarize(res, "1gpu-CPElide", "2gpu-CPElide", "2gpu-HMG")
	return res, nil
}

type staleErr string

func (e staleErr) Error() string { return "experiments: stale reads in " + string(e) }

func errStale(name string) error { return staleErr(name) }
