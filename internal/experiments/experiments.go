// Package experiments regenerates the paper's evaluation: Figure 2 (the
// monolithic-GPU comparison), Figure 8 (performance across 2/4/6/7
// chiplets), Figure 9 (memory-subsystem energy), Figure 10 (interconnect
// traffic), Table II (workload inventory and reuse classification), the
// Section VI chiplet-scaling and multi-stream studies, and the ablations
// DESIGN.md calls out.
//
// The package lives below the public facade so both the paper-figures
// command and the benchmark suite can drive identical experiment code.
// Every experiment fans its simulation points out across an internal/farm
// worker pool (see farm.go in this package), so regeneration parallelizes
// across cores and repeated points are served from the farm's
// content-addressed cache.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro"
	"repro/internal/farm"
	"repro/internal/kernels"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Params tunes experiment cost. The zero value runs the paper's full inputs.
type Params struct {
	// Scale multiplies workload footprints (tests use < 1).
	Scale float64
	// Iters overrides iterative workloads' iteration counts.
	Iters int
	// Workloads restricts the benchmark set (nil = all 24).
	Workloads []string
	// Farm selects the execution engine (nil uses the process-wide shared
	// farm with one worker per CPU).
	Farm *farm.Farm
}

func (p Params) names() []string {
	if len(p.Workloads) > 0 {
		return p.Workloads
	}
	return workloads.Names()
}

func (p Params) wp() workloads.Params {
	return workloads.Params{Scale: p.Scale, Iters: p.Iters}
}

// Row is one benchmark's values in an experiment, keyed by series name.
type Row struct {
	Workload string
	Class    kernels.ReuseClass
	Values   map[string]float64
}

// Result is one experiment's full output.
type Result struct {
	Title   string
	Series  []string // column order
	Rows    []Row
	Summary map[string]float64
}

// geomean returns the geometric mean of vs (1.0 for empty input).
func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 1
	}
	sum := 0.0
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Title)
	fmt.Fprintf(&b, "%-16s %-8s", "workload", "class")
	for _, s := range r.Series {
		fmt.Fprintf(&b, " %12s", s)
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		class := "high"
		if row.Class == kernels.LowReuse {
			class = "low"
		}
		fmt.Fprintf(&b, "%-16s %-8s", row.Workload, class)
		for _, s := range r.Series {
			fmt.Fprintf(&b, " %12.3f", row.Values[s])
		}
		b.WriteByte('\n')
	}
	if len(r.Summary) > 0 {
		keys := make([]string, 0, len(r.Summary))
		for k := range r.Summary {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%-25s %12.3f\n", k, r.Summary[k])
		}
	}
	return b.String()
}

// classOf returns the registered reuse class of a benchmark.
func classOf(name string) kernels.ReuseClass {
	if s, ok := workloads.Get(name); ok {
		return s.Class
	}
	return kernels.LowReuse
}

// summarize adds geometric means over all rows, the moderate-to-high rows,
// and the low-reuse rows for the given series.
func summarize(res *Result, series ...string) {
	for _, s := range series {
		var all, high, low []float64
		for _, row := range res.Rows {
			v := row.Values[s]
			all = append(all, v)
			if row.Class == kernels.ModerateHighReuse {
				high = append(high, v)
			} else {
				low = append(low, v)
			}
		}
		res.Summary["geomean("+s+")"] = geomean(all)
		res.Summary["geomean-high("+s+")"] = geomean(high)
		res.Summary["geomean-low("+s+")"] = geomean(low)
	}
}

// Figure2 reproduces the motivation figure: performance loss of the
// 4-chiplet baseline versus the equivalent (infeasible) monolithic GPU,
// reported as slowdown (monolithic time = 1.0; the paper reports an average
// loss of ~54%, prior work 29-45%).
func Figure2(p Params) (*Result, error) {
	res := &Result{
		Title:   "Figure 2: 4-chiplet baseline slowdown vs equivalent monolithic GPU",
		Series:  []string{"slowdown"},
		Summary: map[string]float64{},
	}
	m, err := runMatrix(p, []variant{
		{key: "mono", cfg: cpelide.MonolithicConfig(4), opt: cpelide.Options{Protocol: cpelide.ProtocolBaseline}},
		{key: "chip", cfg: cpelide.DefaultConfig(4), opt: cpelide.Options{Protocol: cpelide.ProtocolBaseline}},
	})
	if err != nil {
		return nil, err
	}
	for _, name := range p.names() {
		r := m[name]
		res.Rows = append(res.Rows, Row{
			Workload: name,
			Class:    classOf(name),
			Values:   map[string]float64{"slowdown": float64(r["chip"].Cycles) / float64(r["mono"].Cycles)},
		})
	}
	summarize(res, "slowdown")
	return res, nil
}

// Figure8 reproduces the main performance figure: CPElide's and HMG's
// speedups over the baseline for each chiplet count.
func Figure8(p Params, chiplets ...int) (map[int]*Result, error) {
	if len(chiplets) == 0 {
		chiplets = []int{2, 4, 6, 7}
	}
	out := make(map[int]*Result, len(chiplets))
	for _, n := range chiplets {
		res := &Result{
			Title:   fmt.Sprintf("Figure 8: speedup over Baseline, %d chiplets", n),
			Series:  []string{"CPElide", "HMG"},
			Summary: map[string]float64{},
		}
		m, err := runMatrix(p, protocolVariants(cpelide.DefaultConfig(n)))
		if err != nil {
			return nil, err
		}
		for _, name := range p.names() {
			r := m[name]
			res.Rows = append(res.Rows, Row{
				Workload: name,
				Class:    classOf(name),
				Values: map[string]float64{
					"CPElide": r["elide"].Speedup(r["base"]),
					"HMG":     r["hmg"].Speedup(r["base"]),
				},
			})
		}
		summarize(res, "CPElide", "HMG")
		out[n] = res
	}
	return out, nil
}

// protocolVariants is the Baseline/CPElide/HMG column set most figures
// compare on one machine configuration.
func protocolVariants(cfg cpelide.Config) []variant {
	return []variant{
		{key: "base", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolBaseline}},
		{key: "elide", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolCPElide}},
		{key: "hmg", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolHMG}},
	}
}

// Figure9 reproduces the 4-chiplet memory-subsystem energy figure: each
// protocol's energy normalized to the baseline, with the component
// breakdown (L1, LDS, L2, NoC, DRAM).
func Figure9(p Params) (*Result, error) {
	res := &Result{
		Title: "Figure 9: 4-chiplet memory-subsystem energy, normalized to Baseline",
		Series: []string{
			"CPElide", "HMG",
			"C.L1", "C.LDS", "C.L2", "C.NoC", "C.DRAM",
			"H.NoC", "H.DRAM",
		},
		Summary: map[string]float64{},
	}
	m, err := runMatrix(p, protocolVariants(cpelide.DefaultConfig(4)))
	if err != nil {
		return nil, err
	}
	for _, name := range p.names() {
		base, elide, hmg := m[name]["base"], m[name]["elide"], m[name]["hmg"]
		bt := base.Energy.Total()
		row := Row{Workload: name, Class: classOf(name), Values: map[string]float64{
			"CPElide": elide.Energy.Total() / bt,
			"HMG":     hmg.Energy.Total() / bt,
			"C.L1":    ratioOrZero(elide.Energy.L1, base.Energy.L1),
			"C.LDS":   ratioOrZero(elide.Energy.LDS, base.Energy.LDS),
			"C.L2":    ratioOrZero(elide.Energy.L2, base.Energy.L2),
			"C.NoC":   ratioOrZero(elide.Energy.NoC, base.Energy.NoC),
			"C.DRAM":  ratioOrZero(elide.Energy.DRAM, base.Energy.DRAM),
			"H.NoC":   ratioOrZero(hmg.Energy.NoC, base.Energy.NoC),
			"H.DRAM":  ratioOrZero(hmg.Energy.DRAM, base.Energy.DRAM),
		}}
		res.Rows = append(res.Rows, row)
	}
	summarize(res, "CPElide", "HMG")
	return res, nil
}

func ratioOrZero(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Figure10 reproduces the 4-chiplet interconnect-traffic figure: total
// flits normalized to the baseline plus the class breakdown (L1-L2, L2-L3,
// remote) as fractions of the baseline total.
func Figure10(p Params) (*Result, error) {
	res := &Result{
		Title: "Figure 10: 4-chiplet interconnect traffic (flits), normalized to Baseline",
		Series: []string{
			"CPElide", "HMG",
			"C.l1l2", "C.l2l3", "C.remote",
			"H.l1l2", "H.l2l3", "H.remote",
		},
		Summary: map[string]float64{},
	}
	m, err := runMatrix(p, protocolVariants(cpelide.DefaultConfig(4)))
	if err != nil {
		return nil, err
	}
	for _, name := range p.names() {
		base, elide, hmg := m[name]["base"], m[name]["elide"], m[name]["hmg"]
		bt := float64(base.TotalFlits())
		c1, c2, c3 := elide.Flits()
		h1, h2, h3 := hmg.Flits()
		res.Rows = append(res.Rows, Row{
			Workload: name,
			Class:    classOf(name),
			Values: map[string]float64{
				"CPElide":  float64(elide.TotalFlits()) / bt,
				"HMG":      float64(hmg.TotalFlits()) / bt,
				"C.l1l2":   float64(c1) / bt,
				"C.l2l3":   float64(c2) / bt,
				"C.remote": float64(c3) / bt,
				"H.l1l2":   float64(h1) / bt,
				"H.l2l3":   float64(h2) / bt,
				"H.remote": float64(h3) / bt,
			},
		})
	}
	summarize(res, "CPElide", "HMG")
	return res, nil
}

// TableII reproduces the workload inventory with the paper's reuse metric:
// the L2 miss-rate reduction obtained when inter-kernel reuse is preserved
// (CPElide) versus destroyed (baseline flush+invalidate each boundary).
func TableII(p Params) (*Result, error) {
	res := &Result{
		Title:   "Table II: benchmarks and measured inter-kernel reuse (L2 miss-rate reduction)",
		Series:  []string{"missrate-base", "missrate-elide", "reduction"},
		Summary: map[string]float64{},
	}
	cfg := cpelide.DefaultConfig(4)
	m, err := runMatrix(p, []variant{
		{key: "base", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolBaseline}},
		{key: "elide", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolCPElide}},
	})
	if err != nil {
		return nil, err
	}
	for _, name := range p.names() {
		mb := missRate(m[name]["base"])
		me := missRate(m[name]["elide"])
		res.Rows = append(res.Rows, Row{
			Workload: name,
			Class:    classOf(name),
			Values: map[string]float64{
				"missrate-base":  mb,
				"missrate-elide": me,
				"reduction":      mb - me,
			},
		})
	}
	return res, nil
}

func missRate(r *cpelide.Report) float64 {
	acc := r.Sheet.Get(stats.L2Accesses)
	if acc == 0 {
		return 0
	}
	return float64(r.Sheet.Get(stats.L2Misses)) / float64(acc)
}

// ScalingStudy reproduces the Section VI projection: CPElide on 4 chiplets
// with 2 and 4 serialized sets of boundary synchronization latency, mimicking
// 8- and 16-chiplet systems (the paper reports 1% and 2% average slowdown).
func ScalingStudy(p Params) (*Result, error) {
	res := &Result{
		Title:   "Section VI scaling study: slowdown from extra serialized sync sets (CPElide, 4 chiplets)",
		Series:  []string{"8-chiplet-mimic", "16-chiplet-mimic"},
		Summary: map[string]float64{},
	}
	cfg := cpelide.DefaultConfig(4)
	m, err := runMatrix(p, []variant{
		{key: "ref", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolCPElide}},
		{key: "s8", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolCPElide, SyncLatencySets: 2}},
		{key: "s16", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolCPElide, SyncLatencySets: 4}},
	})
	if err != nil {
		return nil, err
	}
	for _, name := range p.names() {
		r := m[name]
		res.Rows = append(res.Rows, Row{
			Workload: name,
			Class:    classOf(name),
			Values: map[string]float64{
				"8-chiplet-mimic":  float64(r["s8"].Cycles) / float64(r["ref"].Cycles),
				"16-chiplet-mimic": float64(r["s16"].Cycles) / float64(r["ref"].Cycles),
			},
		})
	}
	summarize(res, "8-chiplet-mimic", "16-chiplet-mimic")
	return res, nil
}

// MultiStream reproduces the Section VI multi-stream study: two concurrent
// streams of the same benchmark, each bound to half the chiplets (the
// hipSetDevice binding), comparing CPElide against HMG and the baseline.
// The paper reports CPElide outperforming HMG by ~12% on average.
func MultiStream(p Params) (*Result, error) {
	res := &Result{
		Title:   "Section VI multi-stream study: 2 concurrent streams, 4 chiplets (speedup vs Baseline)",
		Series:  []string{"CPElide", "HMG"},
		Summary: map[string]float64{},
	}
	cfg := cpelide.DefaultConfig(4)
	twoStreams := func(name string) []farm.StreamJob {
		return []farm.StreamJob{
			{Workload: name, Chiplets: []int{0, 1}},
			{Workload: name, Chiplets: []int{2, 3}, Rename: "#2"},
		}
	}
	m, err := runMatrix(p, []variant{
		{key: "base", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolBaseline}, streams: twoStreams},
		{key: "elide", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolCPElide}, streams: twoStreams},
		{key: "hmg", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolHMG}, streams: twoStreams},
	})
	if err != nil {
		return nil, err
	}
	for _, name := range p.names() {
		r := m[name]
		res.Rows = append(res.Rows, Row{
			Workload: name,
			Class:    classOf(name),
			Values: map[string]float64{
				"CPElide": r["elide"].Speedup(r["base"]),
				"HMG":     r["hmg"].Speedup(r["base"]),
			},
		})
	}
	summarize(res, "CPElide", "HMG")
	return res, nil
}
