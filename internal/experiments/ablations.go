package experiments

import (
	"fmt"

	"repro"
	"repro/internal/stats"
)

// HMGWriteBack reproduces the Section IV-C ablation: HMG's write-back L2
// variant versus its write-through configuration (the paper measured the
// write-back variant 13% worse geomean, which is why the evaluation uses
// write-through).
func HMGWriteBack(p Params) (*Result, error) {
	res := &Result{
		Title:   "Ablation: HMG write-back L2 variant (speedup vs write-through HMG)",
		Series:  []string{"WB-vs-WT"},
		Summary: map[string]float64{},
	}
	cfg := cpelide.DefaultConfig(4)
	m, err := runMatrix(p, []variant{
		{key: "wt", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolHMG}},
		{key: "wb", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolHMGWriteBack}},
	})
	if err != nil {
		return nil, err
	}
	for _, name := range p.names() {
		res.Rows = append(res.Rows, Row{
			Workload: name,
			Class:    classOf(name),
			Values:   map[string]float64{"WB-vs-WT": m[name]["wb"].Speedup(m[name]["wt"])},
		})
	}
	summarize(res, "WB-vs-WT")
	return res, nil
}

// RangeOps measures the Section VI fine-grained hardware range-flush
// extension: operations target only the tracked address ranges instead of
// whole L2s.
func RangeOps(p Params) (*Result, error) {
	res := &Result{
		Title:   "Ablation: fine-grained range-based flush/invalidate (speedup vs default CPElide)",
		Series:  []string{"range-ops"},
		Summary: map[string]float64{},
	}
	cfg := cpelide.DefaultConfig(4)
	m, err := runMatrix(p, []variant{
		{key: "def", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolCPElide}},
		{key: "rng", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolCPElide, CPElideRangeOps: true}},
	})
	if err != nil {
		return nil, err
	}
	for _, name := range p.names() {
		res.Rows = append(res.Rows, Row{
			Workload: name,
			Class:    classOf(name),
			Values:   map[string]float64{"range-ops": m[name]["rng"].Speedup(m[name]["def"])},
		})
	}
	summarize(res, "range-ops")
	return res, nil
}

// AnnotationGranularity measures hipSetAccessMode-only annotations (modes
// without address ranges) against the full hipSetAccessModeRange metadata.
func AnnotationGranularity(p Params) (*Result, error) {
	res := &Result{
		Title:   "Ablation: hipSetAccessMode only (no ranges) vs hipSetAccessModeRange (speedup)",
		Series:  []string{"mode-only"},
		Summary: map[string]float64{},
	}
	cfg := cpelide.DefaultConfig(4)
	m, err := runMatrix(p, []variant{
		{key: "full", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolCPElide}},
		{key: "mode", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolCPElide, NoRangeInfo: true}},
	})
	if err != nil {
		return nil, err
	}
	for _, name := range p.names() {
		res.Rows = append(res.Rows, Row{
			Workload: name,
			Class:    classOf(name),
			Values:   map[string]float64{"mode-only": m[name]["mode"].Speedup(m[name]["full"])},
		})
	}
	summarize(res, "mode-only")
	return res, nil
}

// TableSize sweeps the Chiplet Coherence Table capacity. The paper sizes it
// at 64 entries (8 data structures x 8 kernels) and reports its workloads
// peak at 11 entries without overflowing.
func TableSize(p Params, entries ...int) (*Result, error) {
	if len(entries) == 0 {
		entries = []int{4, 8, 16, 64}
	}
	series := make([]string, len(entries))
	vars := []variant{{key: "ref", cfg: cpelide.DefaultConfig(4), opt: cpelide.Options{Protocol: cpelide.ProtocolCPElide}}}
	for i, e := range entries {
		series[i] = fmt.Sprintf("entries=%d", e)
		vars = append(vars, variant{
			key: series[i],
			cfg: cpelide.DefaultConfig(4),
			opt: cpelide.Options{Protocol: cpelide.ProtocolCPElide, CPElideTableEntries: e},
		})
	}
	res := &Result{
		Title:   "Ablation: Chiplet Coherence Table capacity (speedup vs 64 entries)",
		Series:  append(series, "peak-use"),
		Summary: map[string]float64{},
	}
	m, err := runMatrix(p, vars)
	if err != nil {
		return nil, err
	}
	for _, name := range p.names() {
		ref := m[name]["ref"]
		row := Row{Workload: name, Class: classOf(name), Values: map[string]float64{
			"peak-use": float64(ref.Sheet.Get(stats.TablePeakUse)),
		}}
		for _, s := range series {
			row.Values[s] = m[name][s].Speedup(ref)
		}
		res.Rows = append(res.Rows, row)
	}
	summarize(res, series...)
	return res, nil
}

// DirGranularity compares HMG's 4-lines-per-directory-entry configuration
// against 1 line per entry (precision vs reach), the design choice the
// paper blames for HMG's extra invalidations.
func DirGranularity(p Params) (*Result, error) {
	res := &Result{
		Title:   "Ablation: HMG directory granularity, 1 line/entry vs 4 (speedup)",
		Series:  []string{"1-line-entries", "dir-evictions-4", "dir-evictions-1"},
		Summary: map[string]float64{},
	}
	cfg := cpelide.DefaultConfig(4)
	m, err := runMatrix(p, []variant{
		{key: "four", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolHMG}},
		{key: "one", cfg: cfg, opt: cpelide.Options{Protocol: cpelide.ProtocolHMG, HMGDirLinesPerEntry: 1}},
	})
	if err != nil {
		return nil, err
	}
	for _, name := range p.names() {
		four, one := m[name]["four"], m[name]["one"]
		res.Rows = append(res.Rows, Row{
			Workload: name,
			Class:    classOf(name),
			Values: map[string]float64{
				"1-line-entries":  one.Speedup(four),
				"dir-evictions-4": float64(four.Sheet.Get(stats.DirEvictions)),
				"dir-evictions-1": float64(one.Sheet.Get(stats.DirEvictions)),
			},
		})
	}
	summarize(res, "1-line-entries")
	return res, nil
}
