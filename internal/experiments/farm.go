package experiments

import (
	"context"
	"fmt"
	"sync"

	"repro"
	"repro/internal/farm"
	"repro/internal/workloads"
)

// The experiment harness fans its (workload x configuration x protocol)
// points out across the shared farm instead of looping serially: every
// figure builds a job matrix, submits it in one batch, and assembles rows
// from the reports. The farm's content-addressed cache means points shared
// between figures (e.g. the 4-chiplet Baseline run appears in Figures 8,
// 9, 10 and Table II) simulate exactly once per process.

var (
	sharedOnce sync.Once
	sharedFarm *farm.Farm
)

// Shared returns the process-wide default farm (all CPUs, default cache).
// It is never closed; experiment commands that want their own pool size or
// instrumentation pass a Farm via Params.
func Shared() *farm.Farm {
	sharedOnce.Do(func() { sharedFarm = farm.New(farm.Options{}) })
	return sharedFarm
}

// engine returns the farm experiments in p should run on.
func (p Params) engine() *farm.Farm {
	if p.Farm != nil {
		return p.Farm
	}
	return Shared()
}

// farmFusionDefault requests default-policy adjacent-kernel fusion for a
// variant (zero limits mean the fusion pass's built-in defaults).
var farmFusionDefault = farm.FusionSpec{}

// variant is one configuration column of an experiment matrix.
type variant struct {
	key string
	cfg cpelide.Config
	opt cpelide.Options
	// streams, when non-nil, builds the multi-stream binding for a
	// benchmark (nil runs it as a single stream across all chiplets).
	streams func(name string) []farm.StreamJob
	// fusion, when non-nil, fuses the built workload's adjacent kernels.
	fusion *farm.FusionSpec
}

// runMatrix executes one farm job per (benchmark, variant) pair — all
// concurrently, bounded by the farm's worker pool — and returns the
// reports indexed by workload then variant key. Every report is checked
// for stale reads (functional coherence violations) before it is returned.
func runMatrix(p Params, vars []variant) (map[string]map[string]*cpelide.Report, error) {
	names := p.names()
	jobs := make([]farm.Job, 0, len(names)*len(vars))
	for _, name := range names {
		for _, v := range vars {
			j := farm.Job{Params: p.wp(), Config: v.cfg, Options: v.opt, Fusion: v.fusion}
			if v.streams != nil {
				j.Streams = v.streams(name)
			} else {
				j.Workload = name
			}
			jobs = append(jobs, j)
		}
	}
	reps, err := p.engine().Do(context.Background(), jobs)
	if err != nil {
		return nil, err
	}
	out := make(map[string]map[string]*cpelide.Report, len(names))
	i := 0
	for _, name := range names {
		row := make(map[string]*cpelide.Report, len(vars))
		for _, v := range vars {
			rep := reps[i]
			i++
			if rep.StaleReads != 0 {
				return nil, fmt.Errorf("experiments: %s/%s: %d stale reads (coherence violation)",
					name, rep.Protocol, rep.StaleReads)
			}
			row[v.key] = rep
		}
		out[name] = row
	}
	return out, nil
}

// runOne builds and runs a single benchmark through the farm (kept for
// targeted tests and one-off comparisons outside a matrix).
func runOne(name string, cfg cpelide.Config, wp workloads.Params, opt cpelide.Options) (*cpelide.Report, error) {
	rep, err := Shared().Submit(context.Background(), farm.Job{
		Workload: name, Params: wp, Config: cfg, Options: opt,
	})
	if err != nil {
		return nil, err
	}
	if rep.StaleReads != 0 {
		return nil, fmt.Errorf("experiments: %s/%s: %d stale reads (coherence violation)",
			name, rep.Protocol, rep.StaleReads)
	}
	return rep, nil
}
