package experiments

import (
	"strings"
	"testing"

	"repro"
	"repro/internal/kernels"
	"repro/internal/workloads"
)

// quick returns parameters that keep experiment tests fast while still
// running real benchmarks end to end.
func quick(names ...string) Params {
	if len(names) == 0 {
		names = []string{"square", "hotspot3D", "btree"}
	}
	return Params{Scale: 0.1, Workloads: names}
}

func TestFigure2ShowsChipletSlowdown(t *testing.T) {
	res, err := Figure2(quick("square", "hotspot3D"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Values["slowdown"] < 1.0 {
			t.Errorf("%s: 4-chiplet baseline faster than monolithic (%.3f)",
				row.Workload, row.Values["slowdown"])
		}
	}
	if res.Summary["geomean(slowdown)"] <= 1.0 {
		t.Error("no average slowdown from chiplet indirection")
	}
}

func TestFigure8OrderingOnStreaming(t *testing.T) {
	// Larger footprint + more iterations so the one-time CP overhead
	// amortizes the way it does at the paper's full inputs.
	results, err := Figure8(Params{Scale: 0.25, Iters: 40, Workloads: []string{"square"}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	res := results[4]
	v := res.Rows[0].Values
	// The paper's headline ordering for streaming workloads:
	// CPElide > Baseline and CPElide > HMG.
	if v["CPElide"] <= 1.0 {
		t.Errorf("CPElide speedup %.3f <= 1", v["CPElide"])
	}
	if v["CPElide"] <= v["HMG"] {
		t.Errorf("CPElide (%.3f) not ahead of HMG (%.3f) on streaming", v["CPElide"], v["HMG"])
	}
}

func TestFigure9And10Normalization(t *testing.T) {
	p := quick("square")
	e, err := Figure9(p)
	if err != nil {
		t.Fatal(err)
	}
	if e.Rows[0].Values["CPElide"] >= 1.0 {
		t.Errorf("CPElide energy %.3f not below baseline", e.Rows[0].Values["CPElide"])
	}
	// L1 and LDS energy are unaffected by the protocols (Section V-B).
	if l1 := e.Rows[0].Values["C.L1"]; l1 < 0.99 || l1 > 1.01 {
		t.Errorf("CPElide changed L1 energy: %.3f", l1)
	}

	f, err := Figure10(p)
	if err != nil {
		t.Fatal(err)
	}
	v := f.Rows[0].Values
	if v["CPElide"] >= 1.0 {
		t.Errorf("CPElide traffic %.3f not below baseline", v["CPElide"])
	}
	// Component fractions must sum to the total.
	sum := v["C.l1l2"] + v["C.l2l3"] + v["C.remote"]
	if diff := sum - v["CPElide"]; diff > 0.01 || diff < -0.01 {
		t.Errorf("flit components (%.3f) do not sum to total (%.3f)", sum, v["CPElide"])
	}
}

func TestTableIIReuseMetric(t *testing.T) {
	res, err := TableII(quick("square", "pathfinder"))
	if err != nil {
		t.Fatal(err)
	}
	var squareRed, pathRed float64
	for _, row := range res.Rows {
		switch row.Workload {
		case "square":
			squareRed = row.Values["reduction"]
		case "pathfinder":
			pathRed = row.Values["reduction"]
		}
	}
	// The high-reuse workload must show much larger miss-rate reduction
	// than the low-reuse one — Table II's classification criterion.
	if squareRed <= pathRed {
		t.Errorf("reuse metric inverted: square %.3f vs pathfinder %.3f", squareRed, pathRed)
	}
	if squareRed < 0.15 {
		t.Errorf("square reuse reduction %.3f below the paper's >15%% bar", squareRed)
	}
}

func TestScalingStudySmallOverhead(t *testing.T) {
	res, err := ScalingStudy(quick("square", "hotspot3D"))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		s8, s16 := row.Values["8-chiplet-mimic"], row.Values["16-chiplet-mimic"]
		if s8 < 0.999 || s16 < s8-0.001 {
			t.Errorf("%s: scaling slowdowns out of order: %.3f, %.3f", row.Workload, s8, s16)
		}
		// At this reduced scale the serialized latency is a much larger
		// fraction of kernel time than at the paper's inputs, so the
		// bound is loose; EXPERIMENTS.md records the full-scale ~1-2%.
		if s16 > 1.5 {
			t.Errorf("%s: 16-chiplet mimic slowdown %.3f out of range", row.Workload, s16)
		}
	}
}

func TestMultiStreamRuns(t *testing.T) {
	res, err := MultiStream(quick("square"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0].Values["CPElide"] <= 1.0 {
		t.Errorf("multi-stream CPElide speedup %.3f", res.Rows[0].Values["CPElide"])
	}
}

func TestAblationsRun(t *testing.T) {
	p := quick("square", "btree")
	if res, err := HMGWriteBack(p); err != nil || len(res.Rows) != 2 {
		t.Fatalf("HMGWriteBack: %v", err)
	}
	res, err := RangeOps(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Values["range-ops"] < 0.9 {
			t.Errorf("%s: range ops regressed badly: %.3f", row.Workload, row.Values["range-ops"])
		}
	}
	if _, err := AnnotationGranularity(p); err != nil {
		t.Fatal(err)
	}
	ts, err := TableSize(p, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Rows) != 2 {
		t.Error("table-size rows missing")
	}
	if _, err := DirGranularity(p); err != nil {
		t.Fatal(err)
	}
}

func TestResultString(t *testing.T) {
	res := &Result{
		Title:  "t",
		Series: []string{"a"},
		Rows: []Row{{
			Workload: "w", Class: kernels.LowReuse,
			Values: map[string]float64{"a": 1.5},
		}},
		Summary: map[string]float64{"geomean(a)": 1.5},
	}
	out := res.String()
	for _, want := range []string{"== t ==", "w", "1.500", "geomean(a)"} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q:\n%s", want, out)
		}
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); g < 3.99 || g > 4.01 {
		t.Errorf("geomean = %v", g)
	}
	if geomean(nil) != 1 {
		t.Error("empty geomean should be 1")
	}
	if geomean([]float64{1, 0}) != 0 {
		t.Error("zero value should collapse geomean")
	}
}

func TestExtensionStudies(t *testing.T) {
	p := quick("square", "sssp")
	drv, err := DriverManaged(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range drv.Rows {
		if row.Values["driver"] >= 1.0 {
			t.Errorf("%s: driver-managed sync should cost, got %.3f", row.Workload, row.Values["driver"])
		}
	}
	pl, err := PagePlacement(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range pl.Rows {
		if row.Workload == "square" && row.Values["single"] >= 1.0 {
			t.Errorf("single-chiplet placement should hurt square: %.3f", row.Values["single"])
		}
	}
	inf, err := InferredAnnotations(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range inf.Rows {
		if row.Values["inferred"] < 0.9 {
			t.Errorf("%s: inferred annotations regressed: %.3f", row.Workload, row.Values["inferred"])
		}
	}
	if _, err := Scheduling(p); err != nil {
		t.Fatal(err)
	}
	fus, err := KernelFusion(quick("square", "babelstream"))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range fus.Rows {
		if row.Workload == "babelstream" && row.Values["fused-kernels"] == 0 {
			t.Error("fusion found nothing to fuse in babelstream")
		}
	}
}

func TestMGPUStudy(t *testing.T) {
	// Larger inputs so the one-time CP exposure amortizes as it does at
	// the paper's scales.
	res, err := MGPU(Params{Scale: 0.25, Iters: 40, Workloads: []string{"square", "hotspot3D"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Values["2gpu-CPElide"] <= 1.0 {
			t.Errorf("%s: CPElide did not help the MGPU topology (%.3f)",
				row.Workload, row.Values["2gpu-CPElide"])
		}
	}
}

// TestRemoteBankHotBank: alternative (a) serializes on hot home banks. With
// every page homed on one chiplet, the NUCA design funnels all four
// chiplets' traffic into a single L2 bank, while CPElide (with the same
// degenerate placement) at least spreads the L3-side service. CPElide must
// win; on perfectly partitioned data the two designs are legitimately
// comparable (see EXPERIMENTS.md).
func TestRemoteBankHotBank(t *testing.T) {
	cfg := cpelide.DefaultConfig(4)
	wp := workloads.Params{Scale: 0.25, Iters: 30}
	run := func(p cpelide.Protocol) *cpelide.Report {
		rep, err := runOne("square", cfg, wp, cpelide.Options{
			Protocol: p, Placement: cpelide.PlacementSingle,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rb := run(cpelide.ProtocolRemoteBank)
	ce := run(cpelide.ProtocolCPElide)
	if ce.Cycles >= rb.Cycles {
		t.Errorf("hot-bank: CPElide %d cycles not faster than RemoteBank %d",
			ce.Cycles, rb.Cycles)
	}
}
