// Package noc accounts for on-chip and inter-chiplet network traffic.
//
// Figure 10 of the paper breaks interconnect traffic into three flit
// classes: L1-to-L2 (intra-chiplet), L2-to-L3 (a chiplet's L2 talking to its
// local L3 bank), and remote (anything crossing the inter-chiplet crossbar).
// Fabric keeps those counters plus per-chiplet crossbar-port and HBM byte
// totals, which the timing model turns into bandwidth-occupancy lower bounds.
package noc

import (
	"errors"
	"fmt"

	"repro/internal/faults"
	"repro/internal/stats"
)

// Fabric models the GPU's interconnect as an accounting fabric: transfers
// are attributed to flit classes and to the ports they occupy. Latency is
// handled by the timing model; Fabric provides the byte volumes.
type Fabric struct {
	flitSize int
	sheet    *stats.Sheet
	gpuOf    func(chiplet int) int
	faults   *faults.Injector

	portBytes []uint64 // per chiplet: bytes crossing that chiplet's crossbar port
	dramBytes []uint64 // per chiplet: bytes to/from the chiplet's HBM partition

	interGPUBytes uint64 // bytes crossing the inter-GPU interconnect
}

// ErrConfig reports an invalid fabric configuration; New returns it instead
// of panicking so embedding simulations surface it as a run error.
var ErrConfig = errors.New("noc: invalid config")

// New builds a Fabric for n chiplets, recording flits into sheet. gpuOf maps
// a chiplet to its GPU package (nil = all chiplets on one package).
func New(n, flitSize int, sheet *stats.Sheet, gpuOf func(int) int) (*Fabric, error) {
	if flitSize <= 0 {
		return nil, fmt.Errorf("%w: flit size %d must be positive", ErrConfig, flitSize)
	}
	if gpuOf == nil {
		gpuOf = func(int) int { return 0 }
	}
	return &Fabric{
		flitSize:  flitSize,
		sheet:     sheet,
		gpuOf:     gpuOf,
		portBytes: make([]uint64, n),
		dramBytes: make([]uint64, n),
	}, nil
}

// SetFaults installs a fault injector so remote transfers occurring inside a
// link-degradation window are classed separately.
func (f *Fabric) SetFaults(inj *faults.Injector) { f.faults = inj }

func (f *Fabric) flits(bytes int) uint64 {
	return uint64((bytes + f.flitSize - 1) / f.flitSize)
}

// L1L2 records an intra-chiplet transfer between a CU's L1 and the chiplet
// L2.
func (f *Fabric) L1L2(bytes int) {
	f.sheet.Add(stats.FlitsL1L2, f.flits(bytes))
}

// L2L3 records a transfer between chiplet from's L2 and the L3 bank homed at
// chiplet home. When the bank is remote the transfer crosses the crossbar
// and is classed as remote traffic; otherwise it is L2-to-L3 traffic.
func (f *Fabric) L2L3(from, home, bytes int) {
	if from == home {
		f.sheet.Add(stats.FlitsL2L3, f.flits(bytes))
		return
	}
	f.Remote(from, home, bytes)
}

// Remote records a transfer crossing the crossbar between two chiplets'
// ports. Both ports are occupied by the transfer, and transfers between
// chiplets on different GPU packages additionally occupy the inter-GPU
// interconnect.
func (f *Fabric) Remote(from, to, bytes int) {
	f.sheet.Add(stats.FlitsRemote, f.flits(bytes))
	if f.faults.LinkDegraded() {
		f.sheet.Add(stats.FlitsRemoteDegraded, f.flits(bytes))
	}
	f.portBytes[from] += uint64(bytes)
	if to != from {
		f.portBytes[to] += uint64(bytes)
	}
	if f.gpuOf(from) != f.gpuOf(to) {
		f.sheet.Add(stats.FlitsInterGPU, f.flits(bytes))
		f.interGPUBytes += uint64(bytes)
	}
}

// InterGPUBytes returns cumulative inter-GPU link bytes.
func (f *Fabric) InterGPUBytes() uint64 { return f.interGPUBytes }

// DRAM records a transfer between the L3 bank and HBM partition of a
// chiplet.
func (f *Fabric) DRAM(chiplet, bytes int) {
	f.dramBytes[chiplet] += uint64(bytes)
}

// PortBytes returns cumulative crossbar bytes through chiplet's port.
func (f *Fabric) PortBytes(chiplet int) uint64 { return f.portBytes[chiplet] }

// DRAMBytes returns cumulative HBM bytes for chiplet's partition.
func (f *Fabric) DRAMBytes(chiplet int) uint64 { return f.dramBytes[chiplet] }

// Chiplets returns the number of ports.
func (f *Fabric) Chiplets() int { return len(f.portBytes) }

// Reset zeroes the port and DRAM byte totals (the stats sheet is owned by
// the caller).
func (f *Fabric) Reset() {
	for i := range f.portBytes {
		f.portBytes[i] = 0
		f.dramBytes[i] = 0
	}
	f.interGPUBytes = 0
}
