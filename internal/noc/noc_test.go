package noc

import (
	"testing"

	"repro/internal/stats"
)

func TestFlitClasses(t *testing.T) {
	sheet := stats.New()
	f := must(New(4, 16, sheet, nil))
	f.L1L2(72) // ceil(72/16) = 5 flits
	if got := sheet.Get(stats.FlitsL1L2); got != 5 {
		t.Errorf("L1L2 flits = %d, want 5", got)
	}
	f.L2L3(1, 1, 64) // local bank: L2-L3 class
	if got := sheet.Get(stats.FlitsL2L3); got != 4 {
		t.Errorf("L2L3 flits = %d, want 4", got)
	}
	f.L2L3(1, 2, 64) // remote bank: remote class, not L2-L3
	if got := sheet.Get(stats.FlitsL2L3); got != 4 {
		t.Errorf("remote-bank transfer counted as L2L3")
	}
	if got := sheet.Get(stats.FlitsRemote); got != 4 {
		t.Errorf("remote flits = %d, want 4", got)
	}
}

func TestPortAccounting(t *testing.T) {
	f := must(New(4, 16, stats.New(), nil))
	f.Remote(0, 2, 128)
	if f.PortBytes(0) != 128 || f.PortBytes(2) != 128 {
		t.Error("both endpoints' ports should be occupied")
	}
	if f.PortBytes(1) != 0 {
		t.Error("uninvolved port occupied")
	}
	f.Remote(3, 3, 64) // degenerate same-port transfer counted once
	if f.PortBytes(3) != 64 {
		t.Errorf("same-port transfer = %d", f.PortBytes(3))
	}
}

func TestDRAMAccountingAndReset(t *testing.T) {
	f := must(New(2, 16, stats.New(), nil))
	f.DRAM(1, 256)
	f.DRAM(1, 64)
	if f.DRAMBytes(1) != 320 || f.DRAMBytes(0) != 0 {
		t.Error("DRAM accounting wrong")
	}
	if f.Chiplets() != 2 {
		t.Errorf("Chiplets = %d", f.Chiplets())
	}
	f.Reset()
	if f.DRAMBytes(1) != 0 || f.PortBytes(1) != 0 {
		t.Error("Reset incomplete")
	}
}

func TestInterGPUAccounting(t *testing.T) {
	sheet := stats.New()
	// Chiplets 0,1 on GPU 0; chiplets 2,3 on GPU 1.
	f := must(New(4, 16, sheet, func(c int) int { return c / 2 }))
	f.Remote(0, 1, 64) // same package
	if f.InterGPUBytes() != 0 {
		t.Error("same-package transfer counted as inter-GPU")
	}
	f.Remote(0, 3, 64) // crosses packages
	if f.InterGPUBytes() != 64 {
		t.Errorf("inter-GPU bytes = %d", f.InterGPUBytes())
	}
	if sheet.Get(stats.FlitsInterGPU) != 4 {
		t.Errorf("inter-GPU flits = %d", sheet.Get(stats.FlitsInterGPU))
	}
	// Inter-GPU flits are a subset of remote flits.
	if sheet.Get(stats.FlitsRemote) != 8 {
		t.Errorf("remote flits = %d", sheet.Get(stats.FlitsRemote))
	}
	f.Reset()
	if f.InterGPUBytes() != 0 {
		t.Error("Reset missed inter-GPU bytes")
	}
}

// must unwraps constructor errors in tests, where geometry is known-valid.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
