// Package trace records a simulation's timeline: kernel spans per stream,
// chiplet-targeted synchronization operations with line counts, per-launch
// synchronization-plan exposure, inter-chiplet transfer volumes, and the
// command processor's elision audit log (which implicit acquires/releases
// were issued vs. elided at each kernel boundary, and the coherence-table
// state that justified the decision).
//
// The Recorder is allocation-conscious: events are fixed-size structs stored
// in a flat slice, kernel names are the interned strings of the static
// kernel descriptors, and an optional ring-buffer mode bounds memory on
// long sweeps by keeping only the most recent events. All methods are
// nil-safe no-ops on a nil *Recorder, mirroring the stats.Sheet convention,
// so instrumented hot paths pay a single nil check when tracing is off.
//
// The Recorder is single-threaded, like the simulator that feeds it.
package trace

// Kind classifies a recorded event.
type Kind uint8

const (
	// KindKernel is a kernel execution span on a stream track.
	KindKernel Kind = iota
	// KindSync is a cache-maintenance operation (flush or invalidate) on a
	// chiplet track.
	KindSync
	// KindPlan is one launch's synchronization-plan exposure (the cycles a
	// kernel's start waited on cache maintenance and CP messaging).
	KindPlan
	// KindXfer is the inter-chiplet transfer volume (remote flits) a kernel
	// generated, recorded at kernel completion.
	KindXfer
	// KindJob is one experiment-farm job's lifetime on a worker track
	// (queued -> running -> done/cached/error). Unlike the simulation
	// kinds, its timestamps are wall-clock microseconds since the farm
	// started, so Perfetto shows farm occupancy alongside simulation
	// events on its own process row.
	KindJob
	// KindFault is one injected fault or watchdog reaction (drop, delay,
	// link-degradation window, table parity error, retry, degradation),
	// recorded by the fault injector at the simulation clock where it fired.
	KindFault
	// KindOracle is one memory-model violation flagged by the golden-model
	// consistency oracle (internal/oracle): a load that could legally have
	// observed a stale value given the synchronization the CP issued.
	KindOracle
)

func (k Kind) String() string {
	switch k {
	case KindKernel:
		return "kernel"
	case KindSync:
		return "sync"
	case KindPlan:
		return "plan"
	case KindXfer:
		return "xfer"
	case KindJob:
		return "job"
	case KindFault:
		return "fault"
	case KindOracle:
		return "oracle"
	}
	return "unknown"
}

// OpKind distinguishes the two cache-maintenance operations without
// importing the coherence package (which sits above this one).
type OpKind uint8

const (
	// Release is a dirty-data flush to the ordering point.
	Release OpKind = iota
	// Acquire is an invalidation (dirty lines written back first).
	Acquire
)

func (k OpKind) String() string {
	if k == Release {
		return "release"
	}
	return "acquire"
}

// Event is one fixed-size timeline record. Field meaning varies by Kind:
//
//	KindKernel: Stream/Name/Inst set; Ts..Ts+Dur is the kernel span;
//	            Lines unused; Cycles is the exposed synchronization portion.
//	KindSync:   Chiplet/Op set; Ts is the launch boundary; Dur = op cycles;
//	            Lines is the number of lines written back or invalidated.
//	KindPlan:   Stream/Inst set; Dur = exposed cycles; Lines = op count.
//	KindXfer:   Stream/Inst set; Lines = remote flits during the kernel.
//	KindJob:    Chiplet = farm worker (-1 for cache hits); Name is the job
//	            label with its terminal state; Ts = enqueue time (wall us),
//	            Ts+Dur = completion, Cycles = absolute execution start.
//	KindFault:  Chiplet = affected chiplet (-1 = machine-wide); Name is the
//	            fault kind; Ts = injection clock; Cycles = magnitude (delay
//	            or window length in cycles, 0 for drops and parity errors).
type Event struct {
	Kind    Kind
	Op      OpKind
	Stream  int32
	Chiplet int32
	Inst    int32
	Name    string
	Ts      uint64
	Dur     uint64
	Lines   uint64
	Cycles  uint64
}

// ChipletDecision records what one kernel boundary did on one chiplet.
type ChipletDecision struct {
	Chiplet       int
	ReleaseIssued bool
	AcquireIssued bool
}

// Audit is the elision audit record of one kernel boundary: the operations
// the Chiplet Coherence Table issued per chiplet, the per-launch elision
// counter increments (matching the stats.Sheet accounting exactly), and the
// pre-launch table state that justified the decisions.
type Audit struct {
	Ts     uint64
	Kernel string
	Inst   int
	Stream int

	Decisions []ChipletDecision

	// Per-launch increments, identical to what the protocol added to the
	// sync.{acquires,releases}{,_elided} counters for this boundary.
	AcquiresIssued uint64
	ReleasesIssued uint64
	AcquiresElided uint64
	ReleasesElided uint64

	// Table is the pre-launch Chiplet Coherence Table snapshot.
	Table string
}

// Recorder accumulates events and audit records. Use New to build one; a
// nil *Recorder is a valid no-op sink.
type Recorder struct {
	limit int // >0 bounds events and audits to the most recent limit each

	now uint64

	events  []Event
	head    int // ring start when len(events) == limit
	dropped uint64

	audits       []Audit
	auditHead    int
	auditDropped uint64
}

// New returns a Recorder. limit > 0 enables ring-buffer mode: only the most
// recent limit events (and limit audit records) are retained, so unbounded
// sweeps stay bounded. limit <= 0 retains everything.
func New(limit int) *Recorder {
	r := &Recorder{limit: limit}
	if limit > 0 {
		r.events = make([]Event, 0, limit)
	}
	return r
}

// Enabled reports whether r records anything; callers building expensive
// event payloads (snapshots, audit records) should check it first.
func (r *Recorder) Enabled() bool { return r != nil }

// SetNow advances the recorder's clock; the event engine drives this as it
// delivers events, so emissions deep in the machine need no time plumbing.
func (r *Recorder) SetNow(t uint64) {
	if r == nil {
		return
	}
	r.now = t
}

// Now returns the recorder's current clock value.
func (r *Recorder) Now() uint64 {
	if r == nil {
		return 0
	}
	return r.now
}

// push appends e, overwriting the oldest event in ring-buffer mode.
func (r *Recorder) push(e Event) {
	if r.limit > 0 && len(r.events) == r.limit {
		r.events[r.head] = e
		r.head = (r.head + 1) % r.limit
		r.dropped++
		return
	}
	r.events = append(r.events, e)
}

// Kernel records one kernel execution span: stream-track [start, start+dur),
// with the exposed synchronization portion in cycles.
func (r *Recorder) Kernel(stream int, name string, inst int, start, dur, syncCycles uint64) {
	if r == nil {
		return
	}
	r.push(Event{
		Kind: KindKernel, Stream: int32(stream), Inst: int32(inst),
		Name: name, Ts: start, Dur: dur, Cycles: syncCycles,
	})
}

// Sync records a cache-maintenance operation on a chiplet at the current
// clock: a Release (flush, lines written back) or Acquire (invalidate,
// lines dropped) taking cycles.
func (r *Recorder) Sync(chiplet int, op OpKind, lines, cycles uint64) {
	if r == nil {
		return
	}
	r.push(Event{
		Kind: KindSync, Op: op, Chiplet: int32(chiplet),
		Ts: r.now, Dur: cycles, Lines: lines, Cycles: cycles,
	})
}

// Plan records one launch plan's exposure: ops operations whose maintenance
// and CP messaging exposed the given cycles before the kernel could start.
func (r *Recorder) Plan(ops int, exposed uint64) {
	if r == nil {
		return
	}
	r.push(Event{Kind: KindPlan, Ts: r.now, Dur: exposed, Lines: uint64(ops)})
}

// Transfer records the inter-chiplet traffic (remote flits) a kernel
// generated, stamped at the kernel's launch time.
func (r *Recorder) Transfer(stream, inst int, flits uint64) {
	if r == nil {
		return
	}
	r.push(Event{Kind: KindXfer, Stream: int32(stream), Inst: int32(inst), Ts: r.now, Lines: flits})
}

// Job records one experiment-farm job span: the worker that ran it (-1 for
// cache hits, which never occupy a worker), a display name that includes
// the terminal state, and the enqueue/execution-start/completion times in
// wall-clock microseconds since the farm started. The farm serializes
// calls; the Recorder itself stays single-threaded.
func (r *Recorder) Job(worker int, name string, queued, start, end uint64) {
	if r == nil {
		return
	}
	if start < queued {
		start = queued
	}
	if end < start {
		end = start
	}
	r.push(Event{
		Kind: KindJob, Chiplet: int32(worker), Name: name,
		Ts: queued, Dur: end - queued, Cycles: start,
	})
}

// Fault records one injected fault or watchdog reaction at the current
// clock: name identifies the fault kind (req-drop, ack-drop, ack-delay,
// link-degrade, table-parity, watchdog-retry, watchdog-degrade), chiplet the
// affected chiplet (-1 for machine-wide faults), and cycles its magnitude.
func (r *Recorder) Fault(chiplet int, name string, cycles uint64) {
	if r == nil {
		return
	}
	r.push(Event{
		Kind: KindFault, Chiplet: int32(chiplet), Name: name,
		Ts: r.now, Cycles: cycles,
	})
}

// Oracle records one memory-model violation from the consistency oracle:
// rule names the violated rule, chiplet the accessor that could observe
// stale data (-1 for end-of-program checks), and line the affected address.
func (r *Recorder) Oracle(chiplet int, rule string, line uint64) {
	if r == nil {
		return
	}
	r.push(Event{
		Kind: KindOracle, Chiplet: int32(chiplet), Name: rule,
		Ts: r.now, Lines: line,
	})
}

// AuditKernel records one kernel boundary's elision audit entry.
func (r *Recorder) AuditKernel(a Audit) {
	if r == nil {
		return
	}
	if r.limit > 0 && len(r.audits) == r.limit {
		r.audits[r.auditHead] = a
		r.auditHead = (r.auditHead + 1) % r.limit
		r.auditDropped++
		return
	}
	r.audits = append(r.audits, a)
}

// Events returns the retained events in chronological (recording) order.
// The returned slice is freshly allocated.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.head:]...)
	out = append(out, r.events[:r.head]...)
	return out
}

// Audits returns the retained audit records in recording order.
func (r *Recorder) Audits() []Audit {
	if r == nil {
		return nil
	}
	out := make([]Audit, 0, len(r.audits))
	out = append(out, r.audits[r.auditHead:]...)
	out = append(out, r.audits[:r.auditHead]...)
	return out
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Dropped returns how many events ring-buffer mode discarded.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Reset discards all recorded events and audit records and rewinds the
// clock, keeping the configured limit.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.now = 0
	r.events = r.events[:0]
	r.head = 0
	r.dropped = 0
	r.audits = nil
	r.auditHead = 0
	r.auditDropped = 0
}
