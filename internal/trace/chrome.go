package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Track (pid) assignment in the exported trace: one process row per
// component class, with one thread track per stream or chiplet.
const (
	pidStreams  = 1
	pidChiplets = 2
	pidCP       = 3
	pidFarm     = 4
)

// chromeEvent is one entry of the Chrome trace-event format ("JSON Array
// Format"), loadable by Perfetto and chrome://tracing. Timestamps are in
// microseconds by convention; we export GPU core cycles directly, which
// preserves every relative relationship the viewer cares about.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// WriteChromeJSON exports the recorded timeline as Chrome trace-event JSON:
// one track per stream (kernel spans and transfer counters), one per chiplet
// (flush/invalidate operations), and a CP track (per-launch synchronization
// exposure). Events are emitted in nondecreasing timestamp order.
func (r *Recorder) WriteChromeJSON(w io.Writer) error {
	events := r.Events()
	sort.SliceStable(events, func(i, j int) bool { return events[i].Ts < events[j].Ts })

	out := chromeTrace{
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{"clock": "gpu-core-cycles", "source": "cpelide simulator"},
		TraceEvents:     make([]chromeEvent, 0, len(events)+8),
	}

	// Metadata: name the process rows and every thread track seen.
	meta := func(pid, tid int, key, label string) {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: key, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": label},
		})
	}
	meta(pidStreams, 0, "process_name", "streams")
	meta(pidChiplets, 0, "process_name", "chiplets")
	meta(pidCP, 0, "process_name", "command processor")
	streams := map[int32]bool{}
	chiplets := map[int32]bool{}
	workers := map[int32]bool{}
	haveFaults := false
	for _, e := range events {
		switch e.Kind {
		case KindKernel, KindXfer:
			streams[e.Stream] = true
		case KindSync:
			chiplets[e.Chiplet] = true
		case KindJob:
			workers[e.Chiplet] = true
		case KindFault:
			haveFaults = true
		case KindPlan, KindOracle:
			// Rendered on fixed CP tracks; no per-event metadata to collect.
		}
	}
	for _, s := range sortedKeys(streams) {
		meta(pidStreams, int(s), "thread_name", fmt.Sprintf("stream %d", s))
	}
	for _, c := range sortedKeys(chiplets) {
		meta(pidChiplets, int(c), "thread_name", fmt.Sprintf("chiplet %d", c))
	}
	meta(pidCP, 0, "thread_name", "sync plans")
	if haveFaults {
		meta(pidCP, 1, "thread_name", "faults")
	}
	if len(workers) > 0 {
		meta(pidFarm, 0, "process_name", "experiment farm")
		for _, w := range sortedKeys(workers) {
			if w < 0 {
				meta(pidFarm, int(w), "thread_name", "cache hits")
				continue
			}
			meta(pidFarm, int(w), "thread_name", fmt.Sprintf("worker %d", w))
		}
	}

	for _, e := range events {
		switch e.Kind {
		case KindKernel:
			dur := e.Dur
			if dur == 0 {
				dur = 1 // zero-width spans are invisible in viewers
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: e.Name, Cat: "kernel", Ph: "X",
				Ts: e.Ts, Dur: dur, Pid: pidStreams, Tid: int(e.Stream),
				Args: map[string]any{"inst": e.Inst, "sync_cycles": e.Cycles},
			})
		case KindSync:
			dur := e.Dur
			if dur == 0 {
				dur = 1
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: e.Op.String(), Cat: "sync", Ph: "X",
				Ts: e.Ts, Dur: dur, Pid: pidChiplets, Tid: int(e.Chiplet),
				Args: map[string]any{"lines": e.Lines, "cycles": e.Cycles},
			})
		case KindPlan:
			if e.Dur == 0 {
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: "plan", Cat: "sync", Ph: "i", S: "t",
					Ts: e.Ts, Pid: pidCP, Tid: 0,
					Args: map[string]any{"ops": e.Lines},
				})
				continue
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "plan", Cat: "sync", Ph: "X",
				Ts: e.Ts, Dur: e.Dur, Pid: pidCP, Tid: 0,
				Args: map[string]any{"ops": e.Lines, "exposed_cycles": e.Dur},
			})
		case KindXfer:
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "remote flits", Cat: "noc", Ph: "C",
				Ts: e.Ts, Pid: pidStreams, Tid: int(e.Stream),
				Args: map[string]any{"flits": e.Lines},
			})
		case KindFault:
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: e.Name, Cat: "fault", Ph: "i", S: "t",
				Ts: e.Ts, Pid: pidCP, Tid: 1,
				Args: map[string]any{"chiplet": e.Chiplet, "cycles": e.Cycles},
			})
		case KindJob:
			// Split the record into its queue-wait and execution phases so
			// Perfetto shows backlog versus occupancy per worker.
			end := e.Ts + e.Dur
			if wait := e.Cycles - e.Ts; wait > 0 {
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: "queued", Cat: "farm", Ph: "X",
					Ts: e.Ts, Dur: wait, Pid: pidFarm, Tid: int(e.Chiplet),
					Args: map[string]any{"job": e.Name},
				})
			}
			dur := end - e.Cycles
			if dur == 0 {
				dur = 1
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: e.Name, Cat: "farm", Ph: "X",
				Ts: e.Cycles, Dur: dur, Pid: pidFarm, Tid: int(e.Chiplet),
			})
		case KindOracle:
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: e.Name, Cat: "oracle", Ph: "i", S: "t",
				Ts: e.Ts, Pid: pidCP, Tid: 1,
				Args: map[string]any{"chiplet": e.Chiplet},
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteChromeFile writes the Chrome trace to path.
func (r *Recorder) WriteChromeFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteChromeJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func sortedKeys(m map[int32]bool) []int32 {
	out := make([]int32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
