package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	// None of these may panic, and all queries must return zero values.
	r.SetNow(10)
	r.Kernel(0, "k", 0, 0, 5, 1)
	r.Sync(1, Release, 10, 20)
	r.Plan(2, 30)
	r.Transfer(0, 0, 40)
	r.AuditKernel(Audit{Kernel: "k"})
	r.Reset()
	if r.Enabled() {
		t.Error("nil recorder reports Enabled")
	}
	if r.Now() != 0 || r.Len() != 0 || r.Dropped() != 0 {
		t.Error("nil recorder returned nonzero state")
	}
	if r.Events() != nil || r.Audits() != nil {
		t.Error("nil recorder returned events")
	}
	var buf bytes.Buffer
	if err := r.WriteChromeJSON(&buf); err != nil {
		t.Fatalf("nil WriteChromeJSON: %v", err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("nil recorder trace not valid JSON: %v", err)
	}
}

func TestRingBufferKeepsMostRecent(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.SetNow(uint64(i * 100))
		r.Sync(i, Acquire, uint64(i), 1)
	}
	if r.Len() != 4 {
		t.Fatalf("ring holds %d events, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("Events() returned %d", len(evs))
	}
	for i, e := range evs {
		wantChiplet := int32(6 + i) // events 6..9 survive, in order
		if e.Chiplet != wantChiplet || e.Ts != uint64(6+i)*100 {
			t.Errorf("event %d = chiplet %d ts %d, want chiplet %d ts %d",
				i, e.Chiplet, e.Ts, wantChiplet, uint64(6+i)*100)
		}
	}
}

func TestRingBufferAudits(t *testing.T) {
	r := New(3)
	for i := 0; i < 7; i++ {
		r.AuditKernel(Audit{Inst: i})
	}
	audits := r.Audits()
	if len(audits) != 3 {
		t.Fatalf("audits retained %d, want 3", len(audits))
	}
	for i, a := range audits {
		if a.Inst != 4+i {
			t.Errorf("audit %d inst %d, want %d", i, a.Inst, 4+i)
		}
	}
}

func TestUnboundedRetainsEverything(t *testing.T) {
	r := New(0)
	for i := 0; i < 1000; i++ {
		r.Kernel(0, "k", i, uint64(i), 1, 0)
	}
	if r.Len() != 1000 || r.Dropped() != 0 {
		t.Fatalf("unbounded recorder: len %d dropped %d", r.Len(), r.Dropped())
	}
}

func TestResetClears(t *testing.T) {
	r := New(2)
	r.SetNow(50)
	r.Sync(0, Release, 1, 2)
	r.Sync(1, Release, 1, 2)
	r.Sync(2, Release, 1, 2) // wraps
	r.AuditKernel(Audit{})
	r.Reset()
	if r.Len() != 0 || r.Now() != 0 || r.Dropped() != 0 || len(r.Audits()) != 0 {
		t.Error("Reset incomplete")
	}
	// Ring mode still works after Reset.
	r.Sync(7, Acquire, 3, 4)
	evs := r.Events()
	if len(evs) != 1 || evs[0].Chiplet != 7 {
		t.Errorf("post-Reset recording broken: %+v", evs)
	}
}

func TestChromeJSONValidAndMonotone(t *testing.T) {
	r := New(0)
	// Deliberately record with out-of-order stamps across tracks: the
	// exporter must still emit nondecreasing timestamps.
	r.SetNow(500)
	r.Sync(1, Acquire, 64, 12)
	r.Kernel(0, "alpha", 0, 0, 400, 10)
	r.SetNow(900)
	r.Plan(2, 33)
	r.Kernel(0, "beta", 1, 500, 400, 0)
	r.Transfer(0, 1, 1234)
	r.SetNow(100)
	r.Sync(0, Release, 8, 9)

	var buf bytes.Buffer
	if err := r.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   uint64         `json:"ts"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if parsed.DisplayTimeUnit == "" {
		t.Error("missing displayTimeUnit")
	}
	var last uint64
	var kernels, syncs int
	for _, e := range parsed.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if e.Ts < last {
			t.Fatalf("timestamps not monotone: %d after %d", e.Ts, last)
		}
		last = e.Ts
		switch e.Name {
		case "alpha", "beta":
			kernels++
		case "release", "acquire":
			syncs++
		}
	}
	if kernels != 2 {
		t.Errorf("kernel spans exported: %d, want 2", kernels)
	}
	if syncs != 2 {
		t.Errorf("sync ops exported: %d, want 2", syncs)
	}
}

func TestKindAndOpStrings(t *testing.T) {
	if KindKernel.String() != "kernel" || KindSync.String() != "sync" ||
		KindPlan.String() != "plan" || KindXfer.String() != "xfer" {
		t.Error("Kind strings wrong")
	}
	if Release.String() != "release" || Acquire.String() != "acquire" {
		t.Error("OpKind strings wrong")
	}
}

func TestJobSpansAndChromeFarmRows(t *testing.T) {
	r := New(0)
	r.Job(0, "square/CPElide/4c [done]", 100, 150, 400)
	r.Job(-1, "square/CPElide/4c [cached]", 500, 500, 500)
	r.Job(2, "btree/HMG/4c [error]", 90, 200, 150) // end < start: clamped

	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("recorded %d events, want 3", len(evs))
	}
	if evs[0].Kind != KindJob || evs[0].Ts != 100 || evs[0].Cycles != 150 || evs[0].Dur != 300 {
		t.Errorf("job span mis-recorded: %+v", evs[0])
	}
	if evs[2].Dur != 110 { // end clamped up to start (200) minus queued (90)
		t.Errorf("non-monotone job stamps not clamped: %+v", evs[2])
	}
	if KindJob.String() != "job" {
		t.Error("KindJob string wrong")
	}

	var buf bytes.Buffer
	if err := r.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var farmProcess, workerRows, queuedSpans, runSpans int
	for _, e := range parsed.TraceEvents {
		if e.Ph == "M" {
			if e.Name == "process_name" && e.Args["name"] == "experiment farm" {
				farmProcess++
			}
			if e.Name == "thread_name" && e.Pid == 4 {
				workerRows++
			}
			continue
		}
		if e.Pid != 4 {
			continue
		}
		if e.Name == "queued" {
			queuedSpans++
		} else {
			runSpans++
		}
	}
	if farmProcess != 1 {
		t.Error("missing experiment farm process row")
	}
	if workerRows < 3 { // worker 0, worker 2, cache hits
		t.Errorf("farm thread rows exported: %d, want >= 3", workerRows)
	}
	// The cached job has zero queue wait, so only the two executed jobs
	// get a "queued" span; all three get an execution span.
	if queuedSpans != 2 || runSpans != 3 {
		t.Errorf("farm spans exported: %d queued + %d run, want 2 + 3", queuedSpans, runSpans)
	}
}
