// Package hip is a small HIP-like runtime mirroring the programming
// interface the paper adds to ROCm (Listings 1 and 2): device memory
// allocation, kernel declaration, per-kernel access-mode annotations
// (hipSetAccessMode), optional per-chiplet address ranges
// (hipSetAccessModeRange), stream-to-chiplet binding (hipSetDevice), and
// kernel launches (hipLaunchKernelGGL). It assembles the stream
// specifications the simulated GPU's command processors consume.
//
// Example (the paper's Listing 1):
//
//	rt := hip.NewRuntime(4096)
//	a := rt.Malloc("A", n, 4)
//	c := rt.Malloc("C", n, 4)
//	square := rt.Kernel("square", 480, hip.KernelConfig{ComputePerWG: 130})
//	rt.SetAccessMode(square, c, hip.ReadWrite, hip.Linear)
//	rt.SetAccessMode(square, a, hip.Read, hip.Linear)
//	s := rt.Stream()
//	for i := 0; i < iters; i++ {
//		rt.LaunchKernelGGL(s, square)
//	}
//	specs := rt.Streams()
package hip

import (
	"fmt"

	"repro/internal/cp"
	"repro/internal/kernels"
	"repro/internal/mem"
)

// Re-exported annotation constants, so callers need only this package.
const (
	// Read is the paper's 'R' access-mode label.
	Read = kernels.Read
	// ReadWrite is the paper's 'R/W' access-mode label.
	ReadWrite = kernels.ReadWrite

	Linear    = kernels.Linear
	Strided   = kernels.Strided
	Stencil   = kernels.Stencil
	Broadcast = kernels.Broadcast
	Indirect  = kernels.Indirect
)

// Buffer is a device allocation (hipMalloc result).
type Buffer = kernels.DataStructure

// Stream is an in-order queue of kernel launches, optionally bound to a
// chiplet subset with SetDevice.
type Stream struct {
	id       int
	chiplets []int
	seq      []*kernels.Kernel
	rt       *Runtime
}

// KernelConfig carries the per-kernel execution parameters that real HIP
// encodes in the launch configuration and kernel object metadata.
type KernelConfig struct {
	ComputePerWG  uint32
	LDSBytesPerWG int
	MLPFactor     float64
}

// Runtime accumulates allocations, kernels, annotations, and launches.
type Runtime struct {
	alloc   *kernels.Allocator
	streams []*Stream
	seed    uint64
	err     error
}

// NewRuntime creates a runtime allocating page-aligned buffers of the given
// page size from the simulator heap base.
func NewRuntime(pageSize int) *Runtime {
	return &Runtime{alloc: kernels.NewAllocator(0x1000_0000, pageSize), seed: 0x41D}
}

// SetSeed fixes the seed used for data-dependent access patterns.
func (rt *Runtime) SetSeed(seed uint64) { rt.seed = seed }

// Err returns the first error recorded by any runtime call (calls after an
// error are no-ops, so call sites can chain without per-call checks, like
// HIP's sticky error model).
func (rt *Runtime) Err() error { return rt.err }

func (rt *Runtime) fail(format string, args ...any) {
	if rt.err == nil {
		rt.err = fmt.Errorf("hip: "+format, args...)
	}
}

// Malloc allocates a device buffer of elems elements of elemSize bytes.
func (rt *Runtime) Malloc(name string, elems, elemSize int) *Buffer {
	if elems <= 0 || elemSize <= 0 {
		rt.fail("Malloc(%s): non-positive size", name)
		return &Buffer{Name: name, Bytes: 1, ElemSize: 1}
	}
	return rt.alloc.Alloc(name, elems, elemSize)
}

// Kernel declares a kernel with its grid size in work-groups.
func (rt *Runtime) Kernel(name string, wgs int, cfg KernelConfig) *kernels.Kernel {
	return &kernels.Kernel{
		Name:          name,
		WGs:           wgs,
		ComputePerWG:  cfg.ComputePerWG,
		LDSBytesPerWG: cfg.LDSBytesPerWG,
		MLPFactor:     cfg.MLPFactor,
	}
}

// ArgOption refines an access-mode annotation.
type ArgOption func(*kernels.Arg)

// WithHalo sets the stencil halo width in cache lines.
func WithHalo(lines int) ArgOption {
	return func(a *kernels.Arg) { a.HaloLines = lines }
}

// WithStride sets the line stride for strided arguments.
func WithStride(stride int) ArgOption {
	return func(a *kernels.Arg) { a.Stride = stride }
}

// WithGather tunes indirect arguments: touches per index line and the hot
// fraction of the structure they land in.
func WithGather(touchesPerLine int, hotFraction float64) ArgOption {
	return func(a *kernels.Arg) {
		a.TouchesPerLine = touchesPerLine
		a.HotFraction = hotFraction
	}
}

// WithWorklist sets the per-WG gather work for indirect arguments driven by
// an external worklist.
func WithWorklist(linesPerWG int) ArgOption {
	return func(a *kernels.Arg) { a.WorkLinesPerWG = linesPerWG }
}

// WithReadModifyWrite marks a ReadWrite argument as load-then-store.
func WithReadModifyWrite() ArgOption {
	return func(a *kernels.Arg) { a.ReadModifyWrite = true }
}

// SetAccessMode is the paper's hipSetAccessMode: it declares buffer d's
// access mode for kernel k (Listing 1), plus the access pattern the
// simulator needs to generate the kernel's traffic. Argument order follows
// call order.
func (rt *Runtime) SetAccessMode(k *kernels.Kernel, d *Buffer, mode kernels.AccessMode, pattern kernels.Pattern, opts ...ArgOption) {
	if rt.err != nil {
		return
	}
	arg := kernels.Arg{DS: d, Mode: mode, Pattern: pattern}
	for _, o := range opts {
		o(&arg)
	}
	if pattern == Indirect && mode == ReadWrite {
		arg.ReadModifyWrite = true // scatter updates are atomic RMW
	}
	k.Args = append(k.Args, arg)
}

// SetAccessModeRange is the paper's hipSetAccessModeRange (Listing 2): like
// SetAccessMode, and the per-chiplet address ranges are derived from the
// kernel's static partitioning when the stream launches (the runtime owns
// the range computation, mirroring how the paper's ROCm extension populates
// kernel packets).
func (rt *Runtime) SetAccessModeRange(k *kernels.Kernel, d *Buffer, mode kernels.AccessMode, pattern kernels.Pattern, opts ...ArgOption) {
	rt.SetAccessMode(k, d, mode, pattern, opts...)
}

// Stream creates a new stream bound to all chiplets.
func (rt *Runtime) Stream() *Stream {
	s := &Stream{id: len(rt.streams), rt: rt}
	rt.streams = append(rt.streams, s)
	return s
}

// SetDevice binds the stream to a chiplet subset (the paper binds stream i
// to chiplet(s) j with hipSetDevice).
func (rt *Runtime) SetDevice(s *Stream, chiplets ...int) {
	if len(s.seq) > 0 {
		rt.fail("SetDevice after launches on stream %d", s.id)
		return
	}
	s.chiplets = append([]int(nil), chiplets...)
}

// LaunchKernelGGL enqueues a dynamic instance of k on stream s.
func (rt *Runtime) LaunchKernelGGL(s *Stream, k *kernels.Kernel) {
	if rt.err != nil {
		return
	}
	if err := k.Validate(); err != nil {
		rt.fail("launch %s: %v", k.Name, err)
		return
	}
	s.seq = append(s.seq, k)
}

// Streams finalizes the program into the command processors' stream
// specifications. The returned error is the runtime's sticky error, if any.
func (rt *Runtime) Streams() ([]cp.StreamSpec, error) {
	if rt.err != nil {
		return nil, rt.err
	}
	var specs []cp.StreamSpec
	for _, s := range rt.streams {
		if len(s.seq) == 0 {
			continue
		}
		w := &kernels.Workload{
			Name:     fmt.Sprintf("stream%d", s.id),
			Sequence: s.seq,
			Seed:     rt.seed ^ uint64(s.id),
		}
		w.Structures = structuresOf(s.seq)
		if err := w.Validate(); err != nil {
			return nil, err
		}
		specs = append(specs, cp.StreamSpec{Workload: w, Chiplets: s.chiplets})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("hip: no kernels launched")
	}
	return specs, nil
}

// Bounds returns the allocated address span, for sizing the machine.
func (rt *Runtime) Bounds() mem.Range {
	return mem.Range{Lo: 0x1000_0000, Hi: rt.alloc.Used()}
}

func structuresOf(seq []*kernels.Kernel) []*kernels.DataStructure {
	seen := map[*kernels.DataStructure]bool{}
	var out []*kernels.DataStructure
	for _, k := range seq {
		for _, a := range k.Args {
			if !seen[a.DS] {
				seen[a.DS] = true
				out = append(out, a.DS)
			}
		}
	}
	return out
}
