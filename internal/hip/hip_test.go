package hip

import (
	"testing"

	"repro/internal/kernels"
)

func TestListing1Flow(t *testing.T) {
	rt := NewRuntime(4096)
	a := rt.Malloc("A_d", 1024, 4)
	c := rt.Malloc("C_d", 1024, 4)
	sq := rt.Kernel("square", 16, KernelConfig{ComputePerWG: 100})
	rt.SetAccessMode(sq, c, ReadWrite, Linear)
	rt.SetAccessMode(sq, a, Read, Linear)
	s := rt.Stream()
	for i := 0; i < 3; i++ {
		rt.LaunchKernelGGL(s, sq)
	}
	specs, err := rt.Streams()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || len(specs[0].Workload.Sequence) != 3 {
		t.Fatalf("specs shape wrong: %+v", specs)
	}
	w := specs[0].Workload
	if len(w.Structures) != 2 {
		t.Errorf("structures = %d", len(w.Structures))
	}
	if w.Sequence[0].Args[0].Mode != kernels.ReadWrite {
		t.Error("annotation order lost")
	}
	if rt.Bounds().Size() < 2*4096 {
		t.Error("bounds too small")
	}
}

func TestArgOptions(t *testing.T) {
	rt := NewRuntime(4096)
	d := rt.Malloc("d", 4096, 4)
	k := rt.Kernel("k", 8, KernelConfig{})
	rt.SetAccessMode(k, d, Read, Stencil, WithHalo(3))
	rt.SetAccessMode(k, d, Read, Strided, WithStride(4))
	rt.SetAccessMode(k, d, Read, Indirect, WithGather(5, 0.5), WithWorklist(7))
	rt.SetAccessMode(k, d, ReadWrite, Linear, WithReadModifyWrite())
	args := k.Args
	if args[0].HaloLines != 3 || args[1].Stride != 4 {
		t.Error("halo/stride options lost")
	}
	if args[2].TouchesPerLine != 5 || args[2].HotFraction != 0.5 || args[2].WorkLinesPerWG != 7 {
		t.Error("gather options lost")
	}
	if !args[3].ReadModifyWrite {
		t.Error("RMW option lost")
	}
}

func TestIndirectWriteForcedAtomic(t *testing.T) {
	rt := NewRuntime(4096)
	d := rt.Malloc("d", 4096, 4)
	k := rt.Kernel("k", 8, KernelConfig{})
	rt.SetAccessMode(k, d, ReadWrite, Indirect)
	if !k.Args[0].ReadModifyWrite {
		t.Error("indirect R/W not forced to RMW scatter")
	}
	rt.LaunchKernelGGL(rt.Stream(), k)
	if _, err := rt.Streams(); err != nil {
		t.Errorf("valid scatter kernel rejected: %v", err)
	}
}

func TestStickyErrors(t *testing.T) {
	rt := NewRuntime(4096)
	rt.Malloc("bad", 0, 4)
	if rt.Err() == nil {
		t.Fatal("zero-size malloc accepted")
	}
	if _, err := rt.Streams(); err == nil {
		t.Error("Streams ignored sticky error")
	}

	rt2 := NewRuntime(4096)
	d := rt2.Malloc("d", 64, 4)
	k := rt2.Kernel("k", 0, KernelConfig{}) // invalid WGs
	rt2.SetAccessMode(k, d, Read, Linear)
	rt2.LaunchKernelGGL(rt2.Stream(), k)
	if rt2.Err() == nil {
		t.Error("invalid kernel launch accepted")
	}

	rt3 := NewRuntime(4096)
	d3 := rt3.Malloc("d", 64, 4)
	k3 := rt3.Kernel("k", 4, KernelConfig{})
	rt3.SetAccessMode(k3, d3, Read, Linear)
	s := rt3.Stream()
	rt3.LaunchKernelGGL(s, k3)
	rt3.SetDevice(s, 0) // too late
	if rt3.Err() == nil {
		t.Error("SetDevice after launches accepted")
	}
}

func TestStreamsBindingAndEmpty(t *testing.T) {
	rt := NewRuntime(4096)
	if _, err := rt.Streams(); err == nil {
		t.Error("empty program accepted")
	}
	d := rt.Malloc("d", 4096, 4)
	k := rt.Kernel("k", 4, KernelConfig{})
	rt.SetAccessMode(k, d, Read, Linear)
	s0 := rt.Stream()
	rt.SetDevice(s0, 0, 1)
	rt.LaunchKernelGGL(s0, k)
	_ = rt.Stream() // empty stream is skipped
	specs, err := rt.Streams()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || len(specs[0].Chiplets) != 2 {
		t.Fatalf("binding lost: %+v", specs)
	}
}
