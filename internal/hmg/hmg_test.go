package hmg

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/stats"
)

func smallCfg() config.GPU {
	g := config.Default(4)
	g.CUsPerChiplet = 4
	g.L1SizeBytes = 1 << 10
	g.L2SizeBytes = 64 << 10
	g.L3SizeBytes = 128 << 10
	return g
}

func newHMG(t *testing.T, opts Options) (*Protocol, *machine.Machine) {
	t.Helper()
	m := must(machine.New(smallCfg(), mem.Range{Lo: 0x1000_0000, Hi: 0x1000_0000 + 16<<20}, stats.New()))
	return must(New(m, opts)), m
}

func place(m *machine.Machine) (local, remote mem.Addr) {
	local = 0x1000_0000
	remote = 0x1000_0000 + 0x1000
	m.Pages.PlaceRange(mem.Range{Lo: local, Hi: local + 0x1000}, 0)
	m.Pages.PlaceRange(mem.Range{Lo: remote, Hi: remote + 0x1000}, 1)
	return
}

// --- directory unit tests -------------------------------------------------

func TestDirectoryAddAndEvict(t *testing.T) {
	d := must(newDirectory(8, 2, 4, 64)) // 4 sets x 2 ways, 256 B groups
	g := d.group(0x1000_0040)
	if g != 0x1000_0000 {
		t.Errorf("group = %#x", g)
	}
	if _, ev := d.addSharer(g, 1); ev {
		t.Error("first insert evicted")
	}
	d.addSharer(g, 3)
	if d.sharers(g) != 0b1010 {
		t.Errorf("sharers = %b", d.sharers(g))
	}
	// Fill the set: groups mapping to the same set are 4*256 B apart.
	g2 := g + 4*256
	g3 := g + 8*256
	d.addSharer(g2, 0)
	evicted, was := d.addSharer(g3, 2)
	if !was || evicted.tag != g {
		t.Errorf("eviction = %+v (was %v), want LRU group %#x", evicted, was, g)
	}
}

func TestDirectoryClearOthers(t *testing.T) {
	d := must(newDirectory(8, 2, 4, 64))
	g := d.group(0)
	d.addSharer(g, 0)
	d.addSharer(g, 1)
	d.addSharer(g, 2)
	removed := d.clearOthers(g, 1)
	if removed != 0b101 {
		t.Errorf("removed = %b", removed)
	}
	if d.sharers(g) != 0b010 {
		t.Errorf("kept = %b", d.sharers(g))
	}
	if d.clearOthers(g, 1) != 0 {
		t.Error("second clear removed something")
	}
	// Removing the keeper's own bit invalidates the entry.
	if removed := d.clearOthers(g, 3); removed != 0b010 {
		t.Errorf("clearOthers(3) removed %b", removed)
	}
	if d.lookup(g) != nil {
		t.Error("empty entry not invalidated")
	}
	if d.groupRange(g).Size() != 256 {
		t.Error("group range size wrong")
	}
}

// --- protocol tests -------------------------------------------------------

func TestHMGCachesRemoteReads(t *testing.T) {
	p, m := newHMG(t, Options{})
	_, remote := place(m)
	r1 := p.Access(0, 0, remote, false, false)
	if r1.Level != coherence.LevelL3 {
		t.Errorf("cold remote read level = %v", r1.Level)
	}
	if m.L2[0].ValidLines() == 0 {
		t.Fatal("HMG must cache remote reads at the requester")
	}
	if m.L2[1].ValidLines() == 0 {
		t.Fatal("home L2 not filled")
	}
	if p.dirs[1].sharers(p.dirs[1].group(remote))&1 == 0 {
		t.Error("requester not registered as sharer at the home directory")
	}
	// Invalidate L1 to prove the L2 serves the repeat.
	m.InvalidateL1s(0)
	r2 := p.Access(0, 0, remote, false, false)
	if r2.Level != coherence.LevelL2 {
		t.Errorf("repeat remote read level = %v, want local L2", r2.Level)
	}
}

func TestHMGWriteThroughStore(t *testing.T) {
	p, m := newHMG(t, Options{})
	local, _ := place(m)
	p.Access(0, 0, local, true, false)
	if m.L2[0].DirtyLines() != 0 {
		t.Error("write-through L2 holds dirty lines")
	}
	if m.Mem.Committed(local) != 1 {
		t.Error("store not written through to memory")
	}
	if m.Sheet.Get(stats.DRAMWrites) != 1 {
		t.Error("write-through DRAM write not counted")
	}
}

func TestHMGStoreInvalidatesSharers(t *testing.T) {
	p, m := newHMG(t, Options{})
	_, remote := place(m)
	// Chiplet 0 and 2 cache the remote line.
	p.Access(0, 0, remote, false, false)
	p.Access(2, 0, remote, false, false)
	if m.L2[0].ValidLines() == 0 || m.L2[2].ValidLines() == 0 {
		t.Fatal("setup failed")
	}
	// Chiplet 3 writes it: both cached copies must be invalidated.
	p.Access(3, 0, remote, true, false)
	if _, _, hit := m.L2[0].Peek(remote); hit {
		t.Error("sharer 0 not invalidated")
	}
	if _, _, hit := m.L2[2].Peek(remote); hit {
		t.Error("sharer 2 not invalidated")
	}
	if m.Sheet.Get(stats.DirInvals) == 0 {
		t.Error("invalidation not counted")
	}
	// No stale read afterwards.
	m.InvalidateL1s(0)
	p.Access(0, 1, remote, false, false)
	if m.Mem.StaleReads() != 0 {
		t.Error("stale read after sharer invalidation")
	}
}

func TestHMGNoKernelBoundarySync(t *testing.T) {
	p, _ := newHMG(t, Options{})
	if plan := p.PreLaunch(&coherence.Launch{}); len(plan.Ops) != 0 {
		t.Error("HMG issued boundary ops")
	}
	if plan := p.Finalize(); len(plan.Ops) != 0 {
		t.Error("write-through HMG issued finalize ops")
	}
}

func TestHMGDirectoryEvictionInvalidates(t *testing.T) {
	p, m := newHMG(t, Options{DirEntries: 4, DirAssoc: 2, LinesPerEntry: 4})
	// Stream many distinct remote groups through chiplet 0 to overflow
	// chiplet 1's tiny directory.
	base := mem.Addr(0x1000_0000 + 0x1000)
	m.Pages.PlaceRange(mem.Range{Lo: base, Hi: base + 0x10000}, 1)
	for i := 0; i < 32; i++ {
		p.Access(0, 0, base+mem.Addr(i)*256, false, false)
	}
	if m.Sheet.Get(stats.DirEvictions) == 0 {
		t.Error("tiny directory never evicted")
	}
	if m.Sheet.Get(stats.DirInvals) == 0 {
		t.Error("directory evictions produced no invalidations")
	}
}

func TestHMGWriteBackVariant(t *testing.T) {
	p, m := newHMG(t, Options{WriteBack: true})
	local, _ := place(m)
	p.Access(0, 0, local, true, false)
	if m.L2[0].DirtyLines() == 0 {
		t.Error("write-back store left no dirty line at home")
	}
	if m.Mem.Committed(local) != 0 {
		t.Error("write-back store committed immediately")
	}
	if p.Name() != "HMG-WB" {
		t.Errorf("name = %s", p.Name())
	}
	if plan := p.Finalize(); len(plan.Ops) != 4 {
		t.Error("write-back finalize must flush all chiplets")
	}
	// Remote reads of the dirty home line see the newest data.
	p.Access(2, 0, local, false, false)
	if m.Mem.StaleReads() != 0 {
		t.Error("write-back remote read stale")
	}
}

func TestHMGAtomicAtHome(t *testing.T) {
	p, m := newHMG(t, Options{})
	_, remote := place(m)
	p.Access(0, 0, remote, false, false) // cache + share
	p.Access(2, 0, remote, true, true)   // atomic RMW by chiplet 2
	if m.Mem.Committed(remote) != 1 {
		t.Error("atomic not committed")
	}
	if _, _, hit := m.L2[0].Peek(remote); hit {
		t.Error("atomic write left a stale sharer copy")
	}
	m.InvalidateL1s(0)
	p.Access(0, 0, remote, false, false)
	if m.Mem.StaleReads() != 0 {
		t.Error("stale read after atomic")
	}
}

func TestHMGDefaultSizing(t *testing.T) {
	p, _ := newHMG(t, Options{})
	if p.dirs[0].entries() != 12*1024 {
		t.Errorf("directory entries = %d, want 12K (paper sizing)", p.dirs[0].entries())
	}
	if p.Name() != "HMG" {
		t.Errorf("name = %s", p.Name())
	}
}

// must unwraps constructor errors in tests, where geometry is known-valid.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
