// Package hmg implements HMG (Ren et al., HPCA 2020), the state-of-the-art
// hierarchical multi-GPU / multi-chiplet coherence protocol the paper
// compares against, in its MCM-GPU variant: write-through per-chiplet L2s, a
// home node that always holds each line's most up-to-date value, remote
// reads cached at the requester, and a per-chiplet coherence directory whose
// entries each cover four cache lines (the paper's 12K-entry sizing).
package hmg

import (
	"errors"
	"fmt"

	"repro/internal/mem"
)

// ErrConfig reports an invalid HMG configuration; constructors return it
// instead of panicking so embedding simulations surface it as a run error.
var ErrConfig = errors.New("hmg: invalid config")

// dirEntry tracks which chiplets may cache lines of one aligned line group.
type dirEntry struct {
	tag     mem.Addr // group base address
	sharers uint16   // bit per chiplet
	valid   bool
}

// directory is one chiplet's (home-side) sharer directory: set-associative,
// LRU-replaced, entries covering LinesPerEntry-aligned groups.
type directory struct {
	groupShift uint
	numSets    uint64
	assoc      int
	sets       []dirEntry
}

// newDirectory builds a directory of `entries` total entries with the given
// associativity, covering groups of linesPerEntry lines of lineSize bytes.
// A group span that is not a power of two <= 16 MiB returns an error
// wrapping ErrConfig.
func newDirectory(entries, assoc, linesPerEntry, lineSize int) (*directory, error) {
	if entries%assoc != 0 {
		entries -= entries % assoc
	}
	span := lineSize * linesPerEntry
	shift := uint(0)
	for 1<<shift != span {
		shift++
		if shift > 24 {
			return nil, fmt.Errorf("%w: linesPerEntry*lineSize = %d is not a power of two <= 16 MiB", ErrConfig, span)
		}
	}
	return &directory{
		groupShift: shift,
		numSets:    uint64(entries / assoc),
		assoc:      assoc,
		sets:       make([]dirEntry, entries),
	}, nil
}

// group returns the directory group base address containing line.
func (d *directory) group(line mem.Addr) mem.Addr {
	return line &^ (1<<d.groupShift - 1)
}

// groupRange returns the address range covered by group g.
func (d *directory) groupRange(g mem.Addr) mem.Range {
	return mem.Range{Lo: g, Hi: g + 1<<d.groupShift}
}

func (d *directory) set(g mem.Addr) []dirEntry {
	s := (uint64(g) >> d.groupShift) % d.numSets * uint64(d.assoc)
	return d.sets[s : s+uint64(d.assoc)]
}

// lookup finds the entry for group g without allocating.
func (d *directory) lookup(g mem.Addr) *dirEntry {
	set := d.set(g)
	for i := range set {
		if set[i].valid && set[i].tag == g {
			return &set[i]
		}
	}
	return nil
}

// addSharer records that chiplet caches a line of g's group, allocating an
// entry if needed. When the set is full an LRU entry is evicted and
// returned: its sharers must be invalidated by the caller (directory
// inclusion), which is the eviction churn the paper blames for HMG's losses
// on low-reuse workloads.
func (d *directory) addSharer(g mem.Addr, chiplet int) (evicted dirEntry, wasEvicted bool) {
	set := d.set(g)
	for i := range set {
		if set[i].valid && set[i].tag == g {
			set[i].sharers |= 1 << chiplet
			promote(set, i)
			return dirEntry{}, false
		}
	}
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = len(set) - 1
		evicted = set[victim]
		wasEvicted = true
	}
	set[victim] = dirEntry{tag: g, sharers: 1 << chiplet, valid: true}
	promote(set, victim)
	return evicted, wasEvicted
}

// sharers returns the sharer mask of g's group (0 when untracked).
func (d *directory) sharers(g mem.Addr) uint16 {
	if e := d.lookup(g); e != nil {
		return e.sharers
	}
	return 0
}

// clearOthers removes all sharer bits of g's group except keep's, returning
// the removed mask. The caller invalidates the removed sharers' copies.
func (d *directory) clearOthers(g mem.Addr, keep int) uint16 {
	e := d.lookup(g)
	if e == nil {
		return 0
	}
	removed := e.sharers &^ (1 << keep)
	e.sharers &= 1 << keep
	if e.sharers == 0 {
		e.valid = false
	}
	return removed
}

// promote moves set[i] to MRU position.
func promote(set []dirEntry, i int) {
	if i == 0 {
		return
	}
	e := set[i]
	copy(set[1:i+1], set[:i])
	set[0] = e
}

// entries returns the directory capacity in entries.
func (d *directory) entries() int { return len(d.sets) }
