package hmg

import (
	"repro/internal/coherence"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/stats"
)

const reqBytes = 8

// Options selects HMG variants.
type Options struct {
	// WriteBack switches the L2s from write-through (the paper's chosen
	// HMG configuration) to write-back (the ablation variant the paper
	// found 13% worse geomean).
	WriteBack bool
	// DirEntries is the per-chiplet directory capacity (default 12K, the
	// largest size HMG studied, as in Section IV-C).
	DirEntries int
	// LinesPerEntry is the number of cache lines a directory entry covers
	// (default 4, as in the paper; 1 for the precision ablation).
	LinesPerEntry int
	// DirAssoc is the directory associativity (default 8).
	DirAssoc int
}

func (o Options) withDefaults() Options {
	if o.DirEntries <= 0 {
		o.DirEntries = 12 * 1024
	}
	if o.LinesPerEntry <= 0 {
		o.LinesPerEntry = 4
	}
	if o.DirAssoc <= 0 {
		o.DirAssoc = 8
	}
	return o
}

// Protocol is HMG over the simulated machine. Unlike the baseline it never
// flushes or invalidates L2s at kernel boundaries: hierarchical sharer
// tracking keeps the L2s coherent. The costs are per-store write-through
// traffic, home-node caching of remote data (evicting local lines), and
// directory-eviction invalidations.
type Protocol struct {
	m    *machine.Machine
	opts Options
	dirs []*directory // home-side directory per chiplet
}

// New builds HMG over machine m. An invalid directory geometry returns an
// error wrapping ErrConfig.
func New(m *machine.Machine, opts Options) (*Protocol, error) {
	opts = opts.withDefaults()
	p := &Protocol{m: m, opts: opts}
	for c := 0; c < m.Cfg.NumChiplets; c++ {
		d, err := newDirectory(
			opts.DirEntries, opts.DirAssoc, opts.LinesPerEntry, m.Cfg.LineSize)
		if err != nil {
			return nil, err
		}
		p.dirs = append(p.dirs, d)
	}
	return p, nil
}

// Name implements coherence.Protocol.
func (p *Protocol) Name() string {
	if p.opts.WriteBack {
		return "HMG-WB"
	}
	return "HMG"
}

// PreLaunch performs no L2 synchronization: HMG's directories keep the L2s
// coherent across kernel boundaries. (L1 invalidation is performed by the
// executor for every protocol.)
func (p *Protocol) PreLaunch(l *coherence.Launch) coherence.SyncPlan {
	return coherence.SyncPlan{CPCycles: p.m.Cfg.CPLatencyCycles()}
}

// Access implements the HMG access path.
func (p *Protocol) Access(chiplet, cu int, line mem.Addr, write, atomic bool) coherence.AccessResult {
	if atomic {
		return p.atomicAccess(chiplet, line, write)
	}
	if write {
		return p.store(chiplet, cu, line)
	}
	return p.load(chiplet, cu, line)
}

func (p *Protocol) load(chiplet, cu int, line mem.Addr) coherence.AccessResult {
	m := p.m
	cfg := &m.Cfg
	if ver, hit := m.L1Read(chiplet, cu, line); hit {
		m.Mem.Observe(line, ver)
		return coherence.AccessResult{Cycles: cfg.L1Latency, Level: coherence.LevelL1}
	}
	m.Sheet.Inc(stats.L2Accesses)
	if ver, hit := m.L2[chiplet].Read(line); hit {
		m.Sheet.Inc(stats.L2Hits)
		m.BookL2(chiplet, cfg.LineSize)
		m.Mem.Observe(line, ver)
		m.L1Fill(chiplet, cu, line, ver)
		return coherence.AccessResult{Cycles: cfg.L2LocalLatency, Level: coherence.LevelL2}
	}
	m.Sheet.Inc(stats.L2Misses)
	home := m.Home(line, chiplet)

	if home == chiplet {
		ver, cy := m.L3Read(line, chiplet, home)
		m.Mem.Observe(line, ver)
		m.BookL2(chiplet, cfg.LineSize+cfg.LineSize/2)
		p.fillL2(chiplet, line, ver, false)
		m.L1Fill(chiplet, cu, line, ver)
		return coherence.AccessResult{Cycles: cy, Level: coherence.LevelL3}
	}

	// Remote line: forward to the home node's L2, which always holds the
	// most up-to-date value when present.
	m.Fabric.Remote(chiplet, home, reqBytes+cfg.LineSize)
	var ver uint32
	var cy int
	level := coherence.LevelL2Remote
	if v, hit := m.L2[home].Read(line); hit {
		m.Sheet.Inc(stats.L2RemoteHits)
		ver, cy = v, m.RemoteLatency(chiplet, home)
	} else {
		ver0, extra := m.L3Read(line, home, home) // home-side L3 bank access
		ver = ver0
		// Cumulative: the NUMA hop plus however far past the home L3 the
		// line was (extra already includes the home bank's latency).
		cy = m.RemoteLatency(chiplet, home) + extra - cfg.L3Latency
		level = coherence.LevelL3
		p.fillL2(home, line, ver, false)
	}
	m.Mem.Observe(line, ver)
	m.BookL2(home, cfg.LineSize)
	m.BookL2(chiplet, cfg.LineSize/2) // requester-side fill
	// HMG caches the remote read at the requester and registers it as a
	// sharer at the home directory.
	p.fillL2(chiplet, line, ver, false)
	m.L1Fill(chiplet, cu, line, ver)
	cy += p.registerSharer(home, line, chiplet)
	return coherence.AccessResult{Cycles: cy, Level: level}
}

func (p *Protocol) store(chiplet, cu int, line mem.Addr) coherence.AccessResult {
	m := p.m
	cfg := &m.Cfg
	ver := m.Mem.Store(line)
	m.L1WriteThrough(chiplet, cu, line, ver)
	m.Sheet.Inc(stats.L2Accesses)
	home := m.Home(line, chiplet)

	// Invalidate other chiplets' cached copies of the line's group before
	// the store is visible (the directory keeps sharers precise).
	blocking := p.invalidateSharers(home, line, chiplet)

	if p.opts.WriteBack {
		return p.storeWriteBack(chiplet, line, ver, home, blocking)
	}

	// Write-through: the sender and home L2s retain valid copies; the data
	// goes through to memory.
	m.Sheet.Inc(stats.L2WriteThru)
	m.BookL2(chiplet, cfg.LineSize)
	if home != chiplet {
		m.BookL2(home, cfg.LineSize)
	}
	m.Mem.Commit(line, ver)
	m.Sheet.Inc(stats.DRAMWrites)
	// Per-store write-through trickles line-sized writes into HBM, paying
	// turnaround/row penalties a batched writeback drain avoids: 1.25x
	// effective occupancy.
	m.Fabric.DRAM(home, cfg.LineSize*5/4)
	m.Fabric.L2L3(home, home, reqBytes+cfg.LineSize)
	p.fillL2(chiplet, line, ver, false)
	if home == chiplet {
		m.Sheet.Inc(stats.L2Hits)
		return coherence.AccessResult{Cycles: cfg.L2LocalLatency, Level: coherence.LevelL2}
	}
	m.Fabric.Remote(chiplet, home, reqBytes+cfg.LineSize)
	p.fillL2(home, line, ver, false)
	cy := m.RemoteLatency(chiplet, home) + p.registerSharer(home, line, chiplet)
	return coherence.AccessResult{Cycles: cy, Level: coherence.LevelL2Remote}
}

// storeWriteBack is the ablation variant: stores land dirty in the home
// node's L2 instead of writing through to memory. Because write-back stores
// need exclusivity before completing, sharer invalidations block the store
// (write-through posts them), which is where the variant loses the paper's
// 13% geomean.
func (p *Protocol) storeWriteBack(chiplet int, line mem.Addr, ver uint32, home, blockingInvals int) coherence.AccessResult {
	m := p.m
	cfg := &m.Cfg
	cy := blockingInvals * cfg.CPUnicastLatency
	p.fillL2(chiplet, line, ver, home == chiplet) // sender copy; dirty only at home
	if home == chiplet {
		m.Sheet.Inc(stats.L2Hits)
		p.fillL2(home, line, ver, true)
		return coherence.AccessResult{Cycles: cfg.L2LocalLatency + cy, Level: coherence.LevelL2}
	}
	m.Fabric.Remote(chiplet, home, reqBytes+cfg.LineSize)
	p.fillL2(home, line, ver, true)
	cy += p.registerSharer(home, line, chiplet)
	return coherence.AccessResult{Cycles: m.RemoteLatency(chiplet, home) + cy, Level: coherence.LevelL2Remote}
}

// atomicAccess performs a read-modify-write at the line's home L2, HMG's
// per-line ordering point.
func (p *Protocol) atomicAccess(chiplet int, line mem.Addr, write bool) coherence.AccessResult {
	m := p.m
	cfg := &m.Cfg
	home := m.Home(line, chiplet)
	cy := cfg.L2LocalLatency
	if home != chiplet {
		cy = m.RemoteLatency(chiplet, home)
		m.Fabric.Remote(chiplet, home, reqBytes+cfg.LineSize)
	}
	m.Sheet.Inc(stats.L2Accesses)
	ver, hit := m.L2[home].Read(line)
	if hit {
		m.Sheet.Inc(stats.L2Hits)
	} else {
		m.Sheet.Inc(stats.L2Misses)
		v, extra := m.L3Read(line, home, home)
		ver, cy = v, cy+extra-cfg.L3Latency
	}
	m.Mem.Observe(line, ver)
	if write {
		p.invalidateSharers(home, line, home)
		nv := m.Mem.Store(line)
		if p.opts.WriteBack {
			p.fillL2(home, line, nv, true)
		} else {
			m.Mem.Commit(line, nv)
			m.Sheet.Inc(stats.DRAMWrites)
			m.Fabric.DRAM(home, cfg.LineSize*5/4)
			p.fillL2(home, line, nv, false)
		}
	}
	return coherence.AccessResult{Cycles: cy, Level: coherence.LevelL2Remote}
}

// fillL2 installs a line in chiplet's L2. Write-through mode never holds
// dirty lines, so evictions are silent; in write-back mode dirty victims are
// written back to their home.
func (p *Protocol) fillL2(chiplet int, line mem.Addr, ver uint32, dirty bool) {
	if ev := p.m.L2[chiplet].Fill(line, ver, dirty); ev.Evicted && ev.Dirty {
		p.m.CommitWriteback(ev.Line, ev.Ver, chiplet)
	}
}

// registerSharer records chiplet as a sharer of line's group at home's
// directory, handling directory-eviction invalidations (inclusion). It
// returns the cycles the triggering fill stalls: an inclusive directory
// cannot complete the new registration until the displaced entry's sharers
// have acknowledged their invalidations.
func (p *Protocol) registerSharer(home int, line mem.Addr, chiplet int) int {
	d := p.dirs[home]
	evicted, was := d.addSharer(d.group(line), chiplet)
	if !was {
		return 0
	}
	p.m.Sheet.Inc(stats.DirEvictions)
	n := p.invalidateMask(home, evicted.tag, evicted.sharers)
	return p.m.Cfg.CPUnicastLatency * (1 + n)
}

// invalidateSharers invalidates every sharer of line's group except keep and
// returns the number of blocking invalidations sent.
func (p *Protocol) invalidateSharers(home int, line mem.Addr, keep int) int {
	d := p.dirs[home]
	g := d.group(line)
	removed := d.clearOthers(g, keep)
	if removed == 0 {
		return 0
	}
	return p.invalidateMask(home, g, removed)
}

// invalidateMask drops every line of group g from the L2s in mask, counting
// invalidation messages and traffic. It returns the number of targets.
func (p *Protocol) invalidateMask(home int, g mem.Addr, mask uint16) int {
	m := p.m
	d := p.dirs[home]
	rs := mem.NewRangeSet(d.groupRange(g))
	n := 0
	for c := 0; c < m.Cfg.NumChiplets; c++ {
		if mask&(1<<c) == 0 {
			continue
		}
		n++
		m.Sheet.Inc(stats.DirInvals)
		if c != home {
			// Invalidation + per-line acknowledgments for the whole group.
			m.Fabric.Remote(home, c, reqBytes*(1+int(1)<<(d.groupShift-6)))
		}
		// Dirty copies can exist only in the write-back variant and only
		// at the home, which is never in the mask; drops are safe.
		m.L2[c].InvalidateRanges(rs)
	}
	return n
}

// Finalize flushes any dirty home-L2 data (write-back variant only; the
// write-through configuration has already committed everything).
func (p *Protocol) Finalize() coherence.SyncPlan {
	if !p.opts.WriteBack {
		return coherence.SyncPlan{}
	}
	var plan coherence.SyncPlan
	for c := 0; c < p.m.Cfg.NumChiplets; c++ {
		plan.Ops = append(plan.Ops, coherence.SyncOp{Chiplet: c, Kind: coherence.Release})
	}
	return plan
}
