package hmg

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/mem"
)

// --- HMG-WB parity with the directory state -------------------------------
//
// The write-back ablation is the least-exercised protocol path; these
// table-driven scenarios pin its invariants against the internal directory
// and L2 state rather than end-to-end counters:
//
//   - dirty data lives only in the line's HOME L2 (the sender keeps a clean
//     copy), so one flush point per line exists;
//   - every non-home chiplet holding an L2 copy is registered as a sharer
//     in the home directory (the directory may over-approximate after
//     silent L2 evictions, never under-approximate);
//   - a store clears all other sharers, in directory and L2s both;
//   - the finalize plan's releases commit every dirty line, leaving
//     committed == latest for the host.

// step is one access in a scenario: chiplet accesses the page homed on
// homeChiplet (0 = the "local" page, 1 = the "remote" page).
type step struct {
	chiplet int
	page    int // 0 or 1; see place()
	write   bool
	atomic  bool
}

func TestWriteBackDirtyOnlyAtHome(t *testing.T) {
	scenarios := []struct {
		name  string
		steps []step
	}{
		{"local store", []step{{chiplet: 0, page: 0, write: true}}},
		{"remote store", []step{{chiplet: 2, page: 0, write: true}}},
		{"remote store then reads", []step{
			{chiplet: 2, page: 0, write: true},
			{chiplet: 1, page: 0},
			{chiplet: 3, page: 0},
		}},
		{"two pages two writers", []step{
			{chiplet: 3, page: 0, write: true},
			{chiplet: 0, page: 1, write: true},
		}},
		{"atomic lands dirty at home", []step{
			{chiplet: 2, page: 0, write: true, atomic: true},
		}},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			p, m, addrs := wbSetup(t)
			for _, s := range sc.steps {
				p.Access(s.chiplet, 0, addrs[s.page], s.write, s.atomic)
			}
			for _, a := range addrs {
				home := m.Pages.HomeIfPlaced(a)
				for c := 0; c < m.Cfg.NumChiplets; c++ {
					_, dirty, hit := m.L2[c].Peek(a)
					if dirty && c != home {
						t.Errorf("line %#x dirty in non-home L2 %d (home %d)", a, c, home)
					}
					_ = hit
				}
			}
		})
	}
}

func TestWriteBackDirectoryMirrorsSharers(t *testing.T) {
	scenarios := []struct {
		name  string
		steps []step
	}{
		{"single remote reader", []step{{chiplet: 2, page: 0}}},
		{"three remote readers", []step{
			{chiplet: 1, page: 0}, {chiplet: 2, page: 0}, {chiplet: 3, page: 0},
		}},
		{"remote writer registers too", []step{{chiplet: 2, page: 0, write: true}}},
		{"mixed pages", []step{
			{chiplet: 1, page: 0}, {chiplet: 0, page: 1}, {chiplet: 2, page: 1},
		}},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			p, m, addrs := wbSetup(t)
			for _, s := range sc.steps {
				p.Access(s.chiplet, 0, addrs[s.page], s.write, s.atomic)
			}
			for _, a := range addrs {
				home := m.Pages.HomeIfPlaced(a)
				mask := p.dirs[home].sharers(p.dirs[home].group(a))
				for c := 0; c < m.Cfg.NumChiplets; c++ {
					if c == home {
						continue // the home is not tracked as its own sharer
					}
					if _, _, hit := m.L2[c].Peek(a); hit && mask&(1<<c) == 0 {
						t.Errorf("chiplet %d caches %#x but is not in home %d's sharer mask %04b",
							c, a, home, mask)
					}
				}
			}
		})
	}
}

func TestWriteBackStoreClearsOtherSharers(t *testing.T) {
	p, m, addrs := wbSetup(t)
	line := addrs[0]
	home := m.Pages.HomeIfPlaced(line)
	// Chiplets 1, 2, 3 read the line homed on 0; then chiplet 2 writes it.
	for _, c := range []int{1, 2, 3} {
		p.Access(c, 0, line, false, false)
	}
	p.Access(2, 0, line, true, false)
	mask := p.dirs[home].sharers(p.dirs[home].group(line))
	if mask&^(1<<2) != 0 {
		t.Errorf("sharer mask after store = %04b, want only chiplet 2", mask)
	}
	for _, c := range []int{1, 3} {
		if _, _, hit := m.L2[c].Peek(line); hit {
			t.Errorf("old sharer %d still caches the line after the store", c)
		}
	}
	// And the readers see the new value (blocking invalidations worked).
	for _, c := range []int{1, 3} {
		m.InvalidateL1s(c)
		p.Access(c, 0, line, false, false)
	}
	if m.Mem.StaleReads() != 0 {
		t.Errorf("%d stale reads after sharer invalidation", m.Mem.StaleReads())
	}
}

func TestWriteBackFinalizeCommitsEverything(t *testing.T) {
	p, m, addrs := wbSetup(t)
	// Dirty several lines across both pages from several writers.
	for i, c := range []int{0, 1, 2, 3, 0, 2} {
		a := addrs[i%2] + mem.Addr(i*m.Cfg.LineSize)
		p.Access(c, 0, a, true, i%3 == 0)
	}
	plan := p.Finalize()
	if len(plan.Ops) != m.Cfg.NumChiplets {
		t.Fatalf("finalize ops = %d, want one release per chiplet", len(plan.Ops))
	}
	// Execute the plan the way the executor would: flush each chiplet.
	for _, op := range plan.Ops {
		m.FlushL2(op.Chiplet)
	}
	for _, base := range addrs {
		for off := 0; off < 6; off++ {
			a := base + mem.Addr(off*m.Cfg.LineSize)
			if m.Mem.Committed(a) != m.Mem.Latest(a) {
				t.Errorf("line %#x: committed v%d != latest v%d after finalize",
					a, m.Mem.Committed(a), m.Mem.Latest(a))
			}
		}
	}
}

// wbSetup builds a write-back HMG over the small machine with two pages
// homed on chiplets 0 and 1; addrs[i] is page i's base line.
func wbSetup(t *testing.T) (*Protocol, *machine.Machine, [2]mem.Addr) {
	t.Helper()
	p, m := newHMG(t, Options{WriteBack: true})
	local, remote := place(m)
	return p, m, [2]mem.Addr{local, remote}
}
