// Package mem models the memory subsystem of the simulated multi-chiplet
// GPU: virtual address ranges, first-touch NUMA page placement, versioned
// backing storage, and set-associative caches with write-back or
// write-through policies.
//
// Every cache line carries the version number of the data it holds. A global
// Memory tracks, per line, the latest version written anywhere and the
// version committed to the inter-chiplet ordering point (the L3/HBM). The
// difference lets the simulator detect stale reads functionally: if a read
// ever observes a version older than the latest, the coherence policy under
// test elided a synchronization operation it must not have.
package mem

import (
	"fmt"
	"sort"
)

// Addr is a byte address in the simulated GPU's virtual address space.
type Addr = uint64

// Range is a half-open address interval [Lo, Hi).
type Range struct {
	Lo, Hi Addr
}

// Size returns the number of bytes in r.
func (r Range) Size() uint64 {
	if r.Hi <= r.Lo {
		return 0
	}
	return r.Hi - r.Lo
}

// Empty reports whether r covers no bytes.
func (r Range) Empty() bool { return r.Hi <= r.Lo }

// Contains reports whether a lies in r.
func (r Range) Contains(a Addr) bool { return a >= r.Lo && a < r.Hi }

// Overlaps reports whether r and o share at least one byte.
func (r Range) Overlaps(o Range) bool {
	return !r.Empty() && !o.Empty() && r.Lo < o.Hi && o.Lo < r.Hi
}

// Intersect returns the overlap of r and o (possibly empty).
func (r Range) Intersect(o Range) Range {
	lo, hi := r.Lo, r.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	if hi < lo {
		hi = lo
	}
	return Range{lo, hi}
}

// Union returns the smallest range covering both r and o. The gap between
// them, if any, is included; callers that need exact coverage should keep a
// RangeSet instead.
func (r Range) Union(o Range) Range {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	lo, hi := r.Lo, r.Hi
	if o.Lo < lo {
		lo = o.Lo
	}
	if o.Hi > hi {
		hi = o.Hi
	}
	return Range{lo, hi}
}

// Adjacent reports whether r and o touch or overlap, i.e. their union is
// contiguous.
func (r Range) Adjacent(o Range) bool {
	return !r.Empty() && !o.Empty() && r.Lo <= o.Hi && o.Lo <= r.Hi
}

func (r Range) String() string {
	return fmt.Sprintf("[%#x,%#x)", r.Lo, r.Hi)
}

// RangeSet is a normalized set of disjoint, sorted, non-adjacent ranges.
// The zero value is an empty set.
type RangeSet struct {
	rs []Range
}

// NewRangeSet builds a set from arbitrary ranges, normalizing them.
func NewRangeSet(ranges ...Range) RangeSet {
	var s RangeSet
	for _, r := range ranges {
		s.Add(r)
	}
	return s
}

// Add inserts r, merging with any overlapping or adjacent members.
func (s *RangeSet) Add(r Range) {
	if r.Empty() {
		return
	}
	i := sort.Search(len(s.rs), func(i int) bool { return s.rs[i].Hi >= r.Lo })
	j := i
	merged := r
	for j < len(s.rs) && s.rs[j].Lo <= merged.Hi {
		merged = merged.Union(s.rs[j])
		j++
	}
	out := make([]Range, 0, len(s.rs)-(j-i)+1)
	out = append(out, s.rs[:i]...)
	out = append(out, merged)
	out = append(out, s.rs[j:]...)
	s.rs = out
}

// AddSet inserts every range of o.
func (s *RangeSet) AddSet(o RangeSet) {
	for _, r := range o.rs {
		s.Add(r)
	}
}

// Ranges returns the normalized members in ascending order. The returned
// slice is shared; callers must not mutate it.
func (s RangeSet) Ranges() []Range { return s.rs }

// Len returns the number of disjoint ranges.
func (s RangeSet) Len() int { return len(s.rs) }

// Empty reports whether the set covers no bytes.
func (s RangeSet) Empty() bool { return len(s.rs) == 0 }

// Size returns the total bytes covered.
func (s RangeSet) Size() uint64 {
	var n uint64
	for _, r := range s.rs {
		n += r.Size()
	}
	return n
}

// Contains reports whether a lies in any member range.
func (s RangeSet) Contains(a Addr) bool {
	i := sort.Search(len(s.rs), func(i int) bool { return s.rs[i].Hi > a })
	return i < len(s.rs) && s.rs[i].Contains(a)
}

// Overlaps reports whether any member overlaps r.
func (s RangeSet) Overlaps(r Range) bool {
	i := sort.Search(len(s.rs), func(i int) bool { return s.rs[i].Hi > r.Lo })
	return i < len(s.rs) && s.rs[i].Overlaps(r)
}

// OverlapsSet reports whether the two sets share at least one byte.
func (s RangeSet) OverlapsSet(o RangeSet) bool {
	for _, r := range o.rs {
		if s.Overlaps(r) {
			return true
		}
	}
	return false
}

// Bounds returns the smallest single range covering the set.
func (s RangeSet) Bounds() Range {
	if len(s.rs) == 0 {
		return Range{}
	}
	return Range{s.rs[0].Lo, s.rs[len(s.rs)-1].Hi}
}

// Clone returns an independent copy.
func (s RangeSet) Clone() RangeSet {
	c := RangeSet{rs: make([]Range, len(s.rs))}
	copy(c.rs, s.rs)
	return c
}

func (s RangeSet) String() string {
	out := ""
	for i, r := range s.rs {
		if i > 0 {
			out += " "
		}
		out += r.String()
	}
	return "{" + out + "}"
}
