// Package mem models the memory subsystem of the simulated multi-chiplet
// GPU: virtual address ranges, first-touch NUMA page placement, versioned
// backing storage, and set-associative caches with write-back or
// write-through policies.
//
// Every cache line carries the version number of the data it holds. A global
// Memory tracks, per line, the latest version written anywhere and the
// version committed to the inter-chiplet ordering point (the L3/HBM). The
// difference lets the simulator detect stale reads functionally: if a read
// ever observes a version older than the latest, the coherence policy under
// test elided a synchronization operation it must not have.
package mem

import (
	"fmt"
	"sort"
)

// Addr is a byte address in the simulated GPU's virtual address space.
//
// It is a defined type (not an alias for uint64) so the cpelint unitsafety
// pass has real type information to check: arithmetic mixing Addr with
// event.Time — two unsigned domains that must never meet — needs an explicit
// conversion, and the pass flags any conversion chain that launders one into
// the other.
type Addr uint64

// Range is a half-open address interval [Lo, Hi).
type Range struct {
	Lo, Hi Addr
}

// Size returns the number of bytes in r.
//
//cpelide:noalloc
func (r Range) Size() uint64 {
	if r.Hi <= r.Lo {
		return 0
	}
	return uint64(r.Hi - r.Lo)
}

// Empty reports whether r covers no bytes.
//
//cpelide:noalloc
func (r Range) Empty() bool { return r.Hi <= r.Lo }

// Contains reports whether a lies in r.
//
//cpelide:noalloc
func (r Range) Contains(a Addr) bool { return a >= r.Lo && a < r.Hi }

// Overlaps reports whether r and o share at least one byte.
//
//cpelide:noalloc
func (r Range) Overlaps(o Range) bool {
	return !r.Empty() && !o.Empty() && r.Lo < o.Hi && o.Lo < r.Hi
}

// Intersect returns the overlap of r and o (possibly empty).
//
//cpelide:noalloc
func (r Range) Intersect(o Range) Range {
	lo, hi := r.Lo, r.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	if hi < lo {
		hi = lo
	}
	return Range{lo, hi}
}

// Union returns the smallest range covering both r and o. The gap between
// them, if any, is included; callers that need exact coverage should keep a
// RangeSet instead.
//
//cpelide:noalloc
func (r Range) Union(o Range) Range {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	lo, hi := r.Lo, r.Hi
	if o.Lo < lo {
		lo = o.Lo
	}
	if o.Hi > hi {
		hi = o.Hi
	}
	return Range{lo, hi}
}

// Adjacent reports whether r and o touch or overlap, i.e. their union is
// contiguous.
//
//cpelide:noalloc
func (r Range) Adjacent(o Range) bool {
	return !r.Empty() && !o.Empty() && r.Lo <= o.Hi && o.Lo <= r.Hi
}

func (r Range) String() string {
	return fmt.Sprintf("[%#x,%#x)", r.Lo, r.Hi)
}

// inlineRanges is the small-set capacity stored directly in a RangeSet.
// Kernel-argument annotations are overwhelmingly 1-2 ranges per chiplet, so
// the inline array removes the per-set slice allocation the CP's bookkeeping
// would otherwise pay on every launch.
const inlineRanges = 4

// RangeSet is a normalized set of disjoint, sorted, non-adjacent ranges.
// The zero value is an empty set.
//
// Small sets (up to inlineRanges members) live in an inline array, so
// copying a RangeSet value copies them outright. Larger sets spill to a
// slice; mutating methods then edit that slice in place, so two RangeSet
// values must not share a spill slice across mutation — use Clone when a
// stored set and a live set could both be mutated.
type RangeSet struct {
	inline [inlineRanges]Range
	spill  []Range // non-nil: authoritative storage, inline unused
	n      int32   // member count while inline
}

// NewRangeSet builds a set from arbitrary ranges, normalizing them.
func NewRangeSet(ranges ...Range) RangeSet {
	var s RangeSet
	for _, r := range ranges {
		s.Add(r)
	}
	return s
}

// Len returns the number of disjoint ranges.
//
//cpelide:noalloc
func (s RangeSet) Len() int {
	if s.spill != nil {
		return len(s.spill)
	}
	return int(s.n)
}

// At returns the i-th range in ascending order. Together with Len it is the
// allocation-free way to iterate a set.
//
//cpelide:noalloc
func (s *RangeSet) At(i int) Range {
	if s.spill != nil {
		return s.spill[i]
	}
	return s.inline[i]
}

// Equal reports whether s and o contain exactly the same ranges.
//
//cpelide:noalloc
func (s *RangeSet) Equal(o RangeSet) bool {
	n := s.Len()
	if n != o.Len() {
		return false
	}
	for i := 0; i < n; i++ {
		if s.At(i) != o.At(i) {
			return false
		}
	}
	return true
}

// view returns the members as a slice aliasing the receiver's storage.
//
//cpelide:noalloc
func (s *RangeSet) view() []Range {
	if s.spill != nil {
		return s.spill
	}
	return s.inline[:s.n]
}

// setTo replaces the members with out (sorted, disjoint, non-adjacent),
// reusing the existing spill slice when it has capacity.
//
//cpelide:noalloc spill growth is baselined below
func (s *RangeSet) setTo(out []Range) {
	if s.spill == nil && len(out) <= inlineRanges {
		s.n = int32(copy(s.inline[:], out))
		return
	}
	if cap(s.spill) >= len(out) {
		s.spill = s.spill[:len(out)]
		copy(s.spill, out)
		return
	}
	//cpelint:ignore noalloc spill replacement when capacity is exceeded; amortized by 2x growth
	s.spill = make([]Range, len(out))
	copy(s.spill, out)
	s.n = 0
}

// Add inserts r, merging with any overlapping or adjacent members. The edit
// is in place: an insert shifts the tail right (growing storage only when
// needed), a merge collapses the overlapped window with a copy-within.
//
//cpelide:noalloc inline-to-spill transition and spill growth are baselined below
func (s *RangeSet) Add(r Range) {
	if r.Empty() {
		return
	}
	rs := s.view()
	n := len(rs)
	// First member that could merge with r: linear for the inline array,
	// binary for a spilled slice.
	var i int
	if s.spill == nil {
		for i < n && rs[i].Hi < r.Lo {
			i++
		}
	} else {
		i = sort.Search(n, func(k int) bool { return rs[k].Hi >= r.Lo })
	}
	j := i
	merged := r
	for j < n && rs[j].Lo <= merged.Hi {
		merged = merged.Union(rs[j])
		j++
	}
	if i < j {
		// Collapse the merged window [i, j) into one slot.
		rs[i] = merged
		copy(rs[i+1:], rs[j:])
		s.truncate(n - (j - i) + 1)
		return
	}
	// Pure insert at i.
	if s.spill == nil {
		if n < inlineRanges {
			copy(s.inline[i+1:n+1], s.inline[i:n])
			s.inline[i] = merged
			s.n++
			return
		}
		//cpelint:ignore noalloc one-time inline-to-spill transition past 4 ranges
		sp := make([]Range, n+1, 2*inlineRanges)
		copy(sp, s.inline[:i])
		sp[i] = merged
		copy(sp[i+1:], s.inline[i:])
		s.spill = sp
		s.n = 0
		return
	}
	//cpelint:ignore noalloc amortized spill growth; steady state inserts in place
	s.spill = append(s.spill, Range{})
	copy(s.spill[i+1:], s.spill[i:])
	s.spill[i] = merged
}

// truncate shortens the member count to n after an in-place collapse.
//
//cpelide:noalloc
func (s *RangeSet) truncate(n int) {
	if s.spill != nil {
		s.spill = s.spill[:n]
		return
	}
	s.n = int32(n)
}

// AddSet inserts every range of o with a single linear merge-walk over the
// two sorted sets (the old per-range Add was O(len(s)) per insertion).
//
//cpelide:noalloc large-set scratch fallback is baselined below
func (s *RangeSet) AddSet(o RangeSet) {
	on := o.Len()
	if on == 0 {
		return
	}
	sn := s.Len()
	if sn == 0 {
		s.setTo(o.view())
		return
	}
	if on == 1 {
		s.Add(o.At(0))
		return
	}
	var stack [2 * inlineRanges]Range
	out := stack[:0]
	if sn+on > len(stack) {
		//cpelint:ignore noalloc scratch fallback for sets beyond 8 ranges; typical sets stay on the stack
		out = make([]Range, 0, sn+on)
	}
	sv, ov := s.view(), o.view()
	i, j := 0, 0
	for i < sn || j < on {
		var r Range
		if j >= on || (i < sn && sv[i].Lo <= ov[j].Lo) {
			r = sv[i]
			i++
		} else {
			r = ov[j]
			j++
		}
		if k := len(out) - 1; k >= 0 && r.Lo <= out[k].Hi {
			if r.Hi > out[k].Hi {
				out[k].Hi = r.Hi
			}
			continue
		}
		out = append(out, r)
	}
	s.setTo(out)
}

// IntersectSet reduces s to the bytes covered by both s and o, with a linear
// merge-walk over the two sorted sets.
//
//cpelide:noalloc large-set scratch fallback is baselined below
func (s *RangeSet) IntersectSet(o RangeSet) {
	sn, on := s.Len(), o.Len()
	if sn == 0 {
		return
	}
	if on == 0 {
		s.truncate(0)
		return
	}
	var stack [2 * inlineRanges]Range
	out := stack[:0]
	if sn+on > len(stack) {
		//cpelint:ignore noalloc scratch fallback for sets beyond 8 ranges; typical sets stay on the stack
		out = make([]Range, 0, sn+on)
	}
	sv, ov := s.view(), o.view()
	i, j := 0, 0
	for i < sn && j < on {
		if x := sv[i].Intersect(ov[j]); !x.Empty() {
			out = append(out, x)
		}
		if sv[i].Hi <= ov[j].Hi {
			i++
		} else {
			j++
		}
	}
	s.setTo(out)
}

// Ranges returns the normalized members in ascending order. The returned
// slice is shared with (or copied from) the set's storage; callers must not
// mutate it. Hot paths should iterate with Len and At instead, which never
// allocate.
func (s RangeSet) Ranges() []Range {
	if s.spill != nil {
		return s.spill
	}
	return s.inline[:s.n]
}

// Empty reports whether the set covers no bytes.
func (s RangeSet) Empty() bool { return s.Len() == 0 }

// Size returns the total bytes covered.
func (s RangeSet) Size() uint64 {
	var n uint64
	for _, r := range s.view() {
		n += r.Size()
	}
	return n
}

// Contains reports whether a lies in any member range.
//
//cpelide:noalloc
func (s RangeSet) Contains(a Addr) bool {
	rs := s.view()
	if s.spill != nil {
		i := sort.Search(len(rs), func(i int) bool { return rs[i].Hi > a })
		return i < len(rs) && rs[i].Contains(a)
	}
	for _, r := range rs {
		if r.Contains(a) {
			return true
		}
	}
	return false
}

// Overlaps reports whether any member overlaps r.
//
//cpelide:noalloc
func (s RangeSet) Overlaps(r Range) bool {
	rs := s.view()
	if s.spill != nil {
		i := sort.Search(len(rs), func(i int) bool { return rs[i].Hi > r.Lo })
		return i < len(rs) && rs[i].Overlaps(r)
	}
	for _, m := range rs {
		if m.Overlaps(r) {
			return true
		}
	}
	return false
}

// OverlapsSet reports whether the two sets share at least one byte, with a
// linear walk over the two sorted sets.
//
//cpelide:noalloc
func (s RangeSet) OverlapsSet(o RangeSet) bool {
	sv, ov := s.view(), o.view()
	i, j := 0, 0
	for i < len(sv) && j < len(ov) {
		if sv[i].Overlaps(ov[j]) {
			return true
		}
		if sv[i].Hi <= ov[j].Hi {
			i++
		} else {
			j++
		}
	}
	return false
}

// Bounds returns the smallest single range covering the set.
//
//cpelide:noalloc
func (s RangeSet) Bounds() Range {
	rs := s.view()
	if len(rs) == 0 {
		return Range{}
	}
	return Range{rs[0].Lo, rs[len(rs)-1].Hi}
}

// Clone returns an independent copy.
func (s RangeSet) Clone() RangeSet {
	if s.spill == nil {
		return s // the inline array is copied by value
	}
	c := RangeSet{spill: make([]Range, len(s.spill))}
	copy(c.spill, s.spill)
	return c
}

func (s RangeSet) String() string {
	out := ""
	for i, r := range s.view() {
		if i > 0 {
			out += " "
		}
		out += r.String()
	}
	return "{" + out + "}"
}
