package mem

import "errors"

// ErrGeometry reports an invalid cache, memory, or page-table geometry
// (non-power-of-two line or page size, size not a multiple of the set
// geometry). Constructors return it instead of panicking so embedding
// simulations surface a bad configuration as a run error (DESIGN §12).
var ErrGeometry = errors.New("mem: invalid geometry")

// log2 returns log2(v) when v is a power of two with exponent <= max.
func log2(v int, max uint) (uint, error) {
	for shift := uint(0); shift <= max; shift++ {
		if 1<<shift == v {
			return shift, nil
		}
	}
	return 0, ErrGeometry
}
