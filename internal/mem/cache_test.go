package mem

import (
	"math/rand"
	"testing"
)

// tiny returns a 4-set, 2-way cache with 64 B lines (512 B total).
func tiny() *Cache { return must(NewCache("t", 512, 2, 64)) }

func TestCacheGeometry(t *testing.T) {
	c := must(NewCache("l2", 8<<20, 32, 64))
	if c.Sets() != 4096 || c.Assoc() != 32 || c.Lines() != 131072 {
		t.Errorf("geometry: sets=%d assoc=%d lines=%d", c.Sets(), c.Assoc(), c.Lines())
	}
	// Non-power-of-two set count (16 MB / 6 chiplets style).
	odd := must(NewCache("bank", 192*64*3, 3, 64))
	if odd.Sets() != 192 {
		t.Errorf("odd sets = %d, want 192", odd.Sets())
	}
	odd.Fill(0, 1, false)
	if _, hit := odd.Read(0); !hit {
		t.Error("fill+read miss on non-pow2 cache")
	}
}

func TestCacheReadFillWrite(t *testing.T) {
	c := tiny()
	if _, hit := c.Read(0); hit {
		t.Error("cold read hit")
	}
	c.Fill(0, 7, false)
	if ver, hit := c.Read(0); !hit || ver != 7 {
		t.Errorf("read after fill: ver=%d hit=%v", ver, hit)
	}
	if c.DirtyLines() != 0 {
		t.Error("clean fill counted dirty")
	}
	if !c.Write(0, 8) {
		t.Error("write to present line reported miss")
	}
	if c.DirtyLines() != 1 {
		t.Errorf("dirty lines = %d, want 1", c.DirtyLines())
	}
	if ver, _ := c.Read(0); ver != 8 {
		t.Errorf("ver after write = %d", ver)
	}
	if c.Write(64, 1) {
		t.Error("write miss reported hit")
	}
	if !c.UpdateClean(0, 9) || c.DirtyLines() != 0 {
		t.Error("UpdateClean did not clean the line")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := tiny() // 4 sets x 2 ways; lines 0, 256, 512... map to set 0
	set0 := func(i int) Addr { return Addr(i * 4 * 64) }
	c.Fill(set0(0), 1, false)
	c.Fill(set0(1), 2, true)
	c.Read(set0(0)) // promote 0: LRU is now set0(1)
	ev := c.Fill(set0(2), 3, false)
	if !ev.Evicted || ev.Line != set0(1) || !ev.Dirty || ev.Ver != 2 {
		t.Errorf("eviction = %+v, want dirty line %#x", ev, set0(1))
	}
	if _, hit := c.Read(set0(0)); !hit {
		t.Error("MRU line evicted")
	}
	if c.DirtyLines() != 0 {
		t.Errorf("dirty count after evicting dirty line = %d", c.DirtyLines())
	}
}

func TestCacheFillExisting(t *testing.T) {
	c := tiny()
	c.Fill(0, 1, true)
	ev := c.Fill(0, 2, false)
	if ev.Evicted {
		t.Error("refill of existing line evicted")
	}
	if ver, dirty, _ := c.Peek(0); ver != 2 || dirty {
		t.Errorf("refill: ver=%d dirty=%v", ver, dirty)
	}
	if c.ValidLines() != 1 {
		t.Errorf("valid lines = %d", c.ValidLines())
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := tiny()
	c.Fill(0, 1, true)
	c.Fill(64, 2, false)
	wasDirty, present := c.Invalidate(0)
	if !wasDirty || !present {
		t.Error("Invalidate(0) should report dirty present line")
	}
	if _, p := c.Invalidate(0); p {
		t.Error("double invalidate reported present")
	}
	if n := c.InvalidateAll(); n != 1 {
		t.Errorf("InvalidateAll = %d, want 1", n)
	}
	if c.ValidLines() != 0 || c.DirtyLines() != 0 {
		t.Error("counts nonzero after InvalidateAll")
	}
}

func TestCacheFlush(t *testing.T) {
	c := tiny()
	c.Fill(0, 3, true)
	c.Fill(64, 4, false)
	c.Fill(128, 5, true)
	var committed []Addr
	n := c.FlushAll(func(line Addr, ver uint32) { committed = append(committed, line) })
	if n != 2 || len(committed) != 2 {
		t.Errorf("flushed %d lines", n)
	}
	if c.DirtyLines() != 0 {
		t.Error("dirty after flush")
	}
	// Clean copies retained.
	if _, hit := c.Read(0); !hit {
		t.Error("flush dropped the line")
	}
}

func TestCacheRangeOpsMatchFullWalk(t *testing.T) {
	// The small-range fast path must behave exactly like the full walk.
	rnd := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		a := must(NewCache("a", 64*64*4, 4, 64))
		b := must(NewCache("b", 64*64*4, 4, 64))
		for i := 0; i < 300; i++ {
			line := Addr(rnd.Intn(2048)) * 64
			dirty := rnd.Intn(2) == 0
			a.Fill(line, uint32(i), dirty)
			b.Fill(line, uint32(i), dirty)
		}
		lo := Addr(rnd.Intn(1024)) * 64
		small := NewRangeSet(Range{lo, lo + 4*64}) // forces per-line probes
		big := NewRangeSet(Range{0, 2048 * 64})    // forces full walk

		var fa, fb int
		fa = a.FlushRanges(small, func(Addr, uint32) {})
		fb = b.FlushRanges(small, func(Addr, uint32) {})
		if fa != fb {
			t.Fatalf("flush small mismatch %d vs %d", fa, fb)
		}
		if na, nb := a.InvalidateRanges(small), b.InvalidateRanges(small); na != nb {
			t.Fatalf("invalidate small mismatch %d vs %d", na, nb)
		}
		if na, nb := a.InvalidateRanges(big), b.InvalidateRanges(big); na != nb {
			t.Fatalf("invalidate big mismatch %d vs %d", na, nb)
		}
		if a.ValidLines() != 0 || b.ValidLines() != 0 {
			t.Fatal("full-range invalidate left lines")
		}
	}
}

func TestCacheValidInRanges(t *testing.T) {
	c := tiny()
	c.Fill(0, 1, false)
	c.Fill(64, 1, false)
	c.Fill(128, 1, false)
	if n := c.ValidInRanges(NewRangeSet(Range{0, 128})); n != 2 {
		t.Errorf("ValidInRanges = %d, want 2", n)
	}
}

// Property: after arbitrary operation sequences, the valid/dirty counters
// match a brute-force scan, and the cache never exceeds its capacity.
func TestCacheCountersInvariant(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	c := must(NewCache("p", 8*64*2, 2, 64))
	lines := func() (valid, dirty int) {
		for _, w := range c.sets {
			if w.epoch == c.epoch {
				valid++
				if w.dirty {
					dirty++
				}
			}
		}
		return
	}
	for i := 0; i < 5000; i++ {
		line := Addr(rnd.Intn(64)) * 64
		switch rnd.Intn(6) {
		case 0:
			c.Read(line)
		case 1:
			c.Fill(line, uint32(i), rnd.Intn(2) == 0)
		case 2:
			c.Write(line, uint32(i))
		case 3:
			c.Invalidate(line)
		case 4:
			c.FlushRanges(NewRangeSet(Range{line, line + 256}), func(Addr, uint32) {})
		case 5:
			c.UpdateClean(line, uint32(i))
		}
		v, d := lines()
		if v != c.ValidLines() || d != c.DirtyLines() {
			t.Fatalf("iter %d: counters valid=%d/%d dirty=%d/%d",
				i, c.ValidLines(), v, c.DirtyLines(), d)
		}
		if v > c.Lines() {
			t.Fatalf("capacity exceeded")
		}
	}
}

// Property: dirty data is never silently lost — every dirty line is either
// still dirty in the cache or was passed to a commit callback.
func TestCacheNoSilentDirtyLoss(t *testing.T) {
	rnd := rand.New(rand.NewSource(99))
	c := must(NewCache("d", 4*64*2, 2, 64))
	latest := map[Addr]uint32{}    // newest dirty version written
	committed := map[Addr]uint32{} // newest version committed
	commit := func(line Addr, ver uint32) {
		if committed[line] < ver {
			committed[line] = ver
		}
	}
	for i := 1; i < 3000; i++ {
		line := Addr(rnd.Intn(32)) * 64
		switch rnd.Intn(4) {
		case 0:
			if ev := c.Fill(line, uint32(i), true); ev.Evicted && ev.Dirty {
				commit(ev.Line, ev.Ver)
			}
			latest[line] = uint32(i)
		case 1:
			if c.Write(line, uint32(i)) {
				latest[line] = uint32(i)
			}
		case 2:
			c.FlushAll(commit)
		case 3:
			c.FlushRanges(NewRangeSet(Range{line, line + 512}), commit)
		}
	}
	c.FlushAll(commit)
	for line, ver := range latest {
		if committed[line] < ver {
			t.Fatalf("line %#x: newest dirty version %d never committed (have %d)",
				line, ver, committed[line])
		}
	}
}

// must unwraps constructor errors in tests, where geometry is known-valid.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
