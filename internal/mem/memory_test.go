package mem

import "testing"

func TestPageTableFirstTouch(t *testing.T) {
	p := must(NewPageTable(0x1000, 64<<10, 4096))
	if p.Pages() != 16 {
		t.Fatalf("pages = %d, want 16", p.Pages())
	}
	if h := p.Home(0x1000, 2); h != 2 {
		t.Errorf("first touch home = %d, want 2", h)
	}
	if h := p.Home(0x1FFF, 3); h != 2 {
		t.Errorf("same page re-homed: %d", h)
	}
	if h := p.Home(0x2000, 3); h != 3 {
		t.Errorf("next page home = %d, want 3", h)
	}
	if h := p.HomeIfPlaced(0x3000); h != -1 {
		t.Errorf("untouched page home = %d, want -1", h)
	}
}

func TestPageTablePlaceRange(t *testing.T) {
	p := must(NewPageTable(0, 64<<10, 4096))
	n := p.PlaceRange(Range{Lo: 0x1000, Hi: 0x3000}, 1)
	if n != 2 {
		t.Errorf("placed %d pages, want 2", n)
	}
	// Already placed pages are skipped.
	if n := p.PlaceRange(Range{Lo: 0x1000, Hi: 0x4000}, 2); n != 1 {
		t.Errorf("re-place placed %d, want 1", n)
	}
	if p.HomeIfPlaced(0x1000) != 1 || p.HomeIfPlaced(0x3000) != 2 {
		t.Error("placement homes wrong")
	}
	if p.PlaceRange(Range{}, 0) != 0 {
		t.Error("empty range placed pages")
	}
	p.Reset()
	if p.HomeIfPlaced(0x1000) != -1 {
		t.Error("Reset did not clear")
	}
}

func TestPageTablePartialLastPage(t *testing.T) {
	p := must(NewPageTable(0, 10000, 4096)) // 3 pages, last partial
	if p.Pages() != 3 {
		t.Fatalf("pages = %d", p.Pages())
	}
	p.PlaceRange(Range{Lo: 8192, Hi: 10000}, 1)
	if p.HomeIfPlaced(9000) != 1 {
		t.Error("partial last page not placed")
	}
}

func TestMemoryVersions(t *testing.T) {
	m := must(NewMemory(0, 1<<16, 64))
	line := Addr(0x40)
	if v := m.Store(line); v != 1 {
		t.Errorf("first store ver = %d", v)
	}
	if v := m.Store(line); v != 2 {
		t.Errorf("second store ver = %d", v)
	}
	if m.Committed(line) != 0 {
		t.Error("committed advanced without Commit")
	}
	m.Commit(line, 1)
	if m.Committed(line) != 1 {
		t.Error("commit(1) lost")
	}
	m.Commit(line, 0) // older commit must not regress
	if m.Committed(line) != 1 {
		t.Error("older commit regressed version")
	}
	if m.Latest(line) != 2 {
		t.Errorf("latest = %d", m.Latest(line))
	}
}

func TestMemoryStalenessChecker(t *testing.T) {
	m := must(NewMemory(0, 1<<16, 64))
	line := Addr(0x80)
	if !m.Observe(line, 0) {
		t.Error("fresh zero observation flagged stale")
	}
	m.Store(line)
	if m.Observe(line, 0) {
		t.Error("stale observation not flagged")
	}
	if m.StaleReads() != 1 || m.LastStaleLine() != line {
		t.Errorf("stale accounting: %d, %#x", m.StaleReads(), m.LastStaleLine())
	}
	if !m.Observe(line, 1) {
		t.Error("current observation flagged stale")
	}
	m.Reset()
	if m.StaleReads() != 0 || m.Latest(line) != 0 {
		t.Error("Reset incomplete")
	}
}

func TestMemoryImageHash(t *testing.T) {
	a := must(NewMemory(0, 1<<12, 64))
	b := must(NewMemory(0, 1<<12, 64))
	if a.ImageHash() != b.ImageHash() {
		t.Fatal("empty images differ")
	}
	a.Commit(0x40, a.Store(0x40))
	if a.ImageHash() == b.ImageHash() {
		t.Fatal("store did not change image hash")
	}
	b.Commit(0x40, b.Store(0x40))
	if a.ImageHash() != b.ImageHash() {
		t.Fatal("identical histories hash differently")
	}
	// An uncommitted store must diverge from a committed one: the hash
	// covers both version arrays, so unreleased dirty data is visible.
	a.Store(0x80)
	b.Commit(0x80, b.Store(0x80))
	if a.ImageHash() == b.ImageHash() {
		t.Fatal("dirty vs committed images hash identically")
	}
}

func TestMemoryLineOf(t *testing.T) {
	m := must(NewMemory(0, 1<<12, 64))
	if m.LineOf(0x7F) != 0x40 {
		t.Errorf("LineOf(0x7F) = %#x", m.LineOf(0x7F))
	}
	if m.LineShift() != 6 {
		t.Errorf("LineShift = %d", m.LineShift())
	}
	if m.Lines() != 64 {
		t.Errorf("Lines = %d", m.Lines())
	}
}
