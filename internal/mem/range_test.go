package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRangeBasics(t *testing.T) {
	r := Range{Lo: 100, Hi: 200}
	if r.Size() != 100 {
		t.Errorf("Size = %d, want 100", r.Size())
	}
	if r.Empty() {
		t.Error("non-empty range reported Empty")
	}
	if (Range{Lo: 5, Hi: 5}).Size() != 0 || !(Range{Lo: 5, Hi: 5}).Empty() {
		t.Error("empty range mis-reported")
	}
	if (Range{Lo: 9, Hi: 5}).Size() != 0 {
		t.Error("inverted range should have zero size")
	}
	if !r.Contains(100) || r.Contains(200) || r.Contains(99) {
		t.Error("Contains: half-open semantics violated")
	}
}

func TestRangeOverlapIntersectUnion(t *testing.T) {
	cases := []struct {
		a, b     Range
		overlaps bool
		inter    Range
	}{
		{Range{0, 10}, Range{5, 15}, true, Range{5, 10}},
		{Range{0, 10}, Range{10, 20}, false, Range{10, 10}},
		{Range{0, 10}, Range{20, 30}, false, Range{20, 20}},
		{Range{5, 6}, Range{0, 100}, true, Range{5, 6}},
		{Range{0, 0}, Range{0, 10}, false, Range{0, 0}},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.overlaps {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", c.a, c.b, got, c.overlaps)
		}
		if got := c.b.Overlaps(c.a); got != c.overlaps {
			t.Errorf("Overlaps not symmetric for %v, %v", c.a, c.b)
		}
		got := c.a.Intersect(c.b)
		if got.Size() != c.inter.Size() || (!got.Empty() && got != c.inter) {
			t.Errorf("%v.Intersect(%v) = %v, want %v", c.a, c.b, got, c.inter)
		}
	}
	u := Range{0, 10}.Union(Range{20, 30})
	if u != (Range{0, 30}) {
		t.Errorf("Union = %v, want [0,30)", u)
	}
	if got := (Range{}).Union(Range{5, 7}); got != (Range{5, 7}) {
		t.Errorf("Union with empty = %v", got)
	}
}

func TestRangeAdjacent(t *testing.T) {
	if !(Range{0, 10}).Adjacent(Range{10, 20}) {
		t.Error("touching ranges should be adjacent")
	}
	if (Range{0, 10}).Adjacent(Range{11, 20}) {
		t.Error("gapped ranges should not be adjacent")
	}
}

func TestRangeSetNormalization(t *testing.T) {
	s := NewRangeSet(Range{20, 30}, Range{0, 10}, Range{10, 15}, Range{25, 40})
	rs := s.Ranges()
	if len(rs) != 2 {
		t.Fatalf("got %d ranges (%v), want 2", len(rs), s)
	}
	if rs[0] != (Range{0, 15}) || rs[1] != (Range{20, 40}) {
		t.Errorf("normalized = %v", s)
	}
	if s.Size() != 15+20 {
		t.Errorf("Size = %d, want 35", s.Size())
	}
	if !s.Contains(14) || s.Contains(17) || !s.Contains(39) || s.Contains(40) {
		t.Error("Contains inconsistent with members")
	}
}

func TestRangeSetOverlaps(t *testing.T) {
	s := NewRangeSet(Range{0, 10}, Range{20, 30})
	if !s.Overlaps(Range{9, 12}) || s.Overlaps(Range{10, 20}) || !s.Overlaps(Range{25, 26}) {
		t.Error("Overlaps wrong")
	}
	o := NewRangeSet(Range{15, 21})
	if !s.OverlapsSet(o) {
		t.Error("OverlapsSet missed overlap at 20")
	}
	if s.OverlapsSet(NewRangeSet(Range{10, 20})) {
		t.Error("OverlapsSet false positive in gap")
	}
	if (RangeSet{}).OverlapsSet(s) || s.OverlapsSet(RangeSet{}) {
		t.Error("empty set overlaps nothing")
	}
}

func TestRangeSetBoundsClone(t *testing.T) {
	s := NewRangeSet(Range{5, 10}, Range{50, 60})
	if s.Bounds() != (Range{5, 60}) {
		t.Errorf("Bounds = %v", s.Bounds())
	}
	c := s.Clone()
	c.Add(Range{100, 200})
	if s.Len() != 2 || c.Len() != 3 {
		t.Error("Clone not independent")
	}
}

// Property: a RangeSet built from arbitrary ranges is normalized (sorted,
// disjoint, non-adjacent) and agrees with a brute-force membership bitmap.
func TestRangeSetProperty(t *testing.T) {
	const universe = 512
	f := func(raw []uint16) bool {
		var s RangeSet
		member := make([]bool, universe)
		for i := 0; i+1 < len(raw); i += 2 {
			lo := Addr(raw[i] % universe)
			hi := Addr(raw[i+1] % universe)
			if hi < lo {
				lo, hi = hi, lo
			}
			s.Add(Range{lo, hi})
			for a := lo; a < hi; a++ {
				member[a] = true
			}
		}
		// Normalization.
		rs := s.Ranges()
		for i, r := range rs {
			if r.Empty() {
				return false
			}
			if i > 0 && rs[i-1].Hi >= r.Lo {
				return false
			}
		}
		// Membership.
		for a := 0; a < universe; a++ {
			if s.Contains(Addr(a)) != member[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: OverlapsSet is symmetric and agrees with pairwise Range overlap.
func TestRangeSetOverlapsSetProperty(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	mk := func() RangeSet {
		var s RangeSet
		for i := 0; i < rnd.Intn(6); i++ {
			lo := Addr(rnd.Intn(1000))
			s.Add(Range{lo, lo + Addr(rnd.Intn(50))})
		}
		return s
	}
	for i := 0; i < 500; i++ {
		a, b := mk(), mk()
		want := false
		for _, ra := range a.Ranges() {
			for _, rb := range b.Ranges() {
				if ra.Overlaps(rb) {
					want = true
				}
			}
		}
		if a.OverlapsSet(b) != want || b.OverlapsSet(a) != want {
			t.Fatalf("OverlapsSet mismatch: %v vs %v (want %v)", a, b, want)
		}
	}
}
