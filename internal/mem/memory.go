package mem

import "fmt"

// Memory is the versioned backing store behind all caches. It tracks two
// version numbers per cache line:
//
//   - latest: incremented by every store, wherever it lands. This is the
//     value a correctly synchronized reader must observe.
//   - committed: the version visible at the inter-chiplet ordering point
//     (L3/HBM). Write-through stores and L2 dirty-line flushes advance it.
//
// A read that misses all caches observes committed. A read that hits a cache
// observes the cached line's version. Comparing the observation against
// latest implements the functional staleness checker described in DESIGN.md:
// any mismatch means the coherence policy under test elided a flush or an
// invalidation that correctness required.
type Memory struct {
	base      Addr
	lineShift uint
	latest    []uint32
	committed []uint32

	staleReads uint64
	lastStale  Addr
}

// NewMemory covers [base, base+size) with lines of lineSize bytes. A line
// size that is not a power of two <= 64 KiB returns an error wrapping
// ErrGeometry.
func NewMemory(base Addr, size uint64, lineSize int) (*Memory, error) {
	shift, err := log2(lineSize, 16)
	if err != nil {
		return nil, fmt.Errorf("%w: memory line size %d is not a power of two <= 64 KiB", ErrGeometry, lineSize)
	}
	n := (size + uint64(lineSize) - 1) >> shift
	return &Memory{
		base:      base,
		lineShift: shift,
		latest:    make([]uint32, n),
		committed: make([]uint32, n),
	}, nil
}

// LineShift returns log2 of the line size.
func (m *Memory) LineShift() uint { return m.lineShift }

// LineOf returns the line address (byte address of the line's first byte)
// containing addr.
func (m *Memory) LineOf(addr Addr) Addr {
	return addr &^ (1<<m.lineShift - 1)
}

func (m *Memory) index(line Addr) int {
	return int((line - m.base) >> m.lineShift)
}

// Store records a new store to line and returns the new latest version.
func (m *Memory) Store(line Addr) uint32 {
	i := m.index(line)
	m.latest[i]++
	return m.latest[i]
}

// Commit advances the committed version of line to at least ver, modeling
// the line reaching the ordering point (write-through or dirty writeback).
func (m *Memory) Commit(line Addr, ver uint32) {
	i := m.index(line)
	if m.committed[i] < ver {
		m.committed[i] = ver
	}
}

// Committed returns the version visible at the ordering point.
func (m *Memory) Committed(line Addr) uint32 { return m.committed[m.index(line)] }

// Latest returns the newest version written anywhere.
func (m *Memory) Latest(line Addr) uint32 { return m.latest[m.index(line)] }

// Observe checks a read observation: a reader saw version ver for line. It
// records a staleness violation when ver is older than the latest version.
func (m *Memory) Observe(line Addr, ver uint32) bool {
	i := m.index(line)
	if ver < m.latest[i] {
		m.staleReads++
		m.lastStale = line
		return false
	}
	return true
}

// StaleReads returns the number of staleness violations observed so far.
// It must be zero for every correct coherence policy.
func (m *Memory) StaleReads() uint64 { return m.staleReads }

// LastStaleLine returns the line address of the most recent violation, for
// diagnostics.
func (m *Memory) LastStaleLine() Addr { return m.lastStale }

// Lines returns the number of lines covered.
func (m *Memory) Lines() int { return len(m.latest) }

// ImageHash returns an FNV-1a digest of the full version image (latest and
// committed, in line order). Two runs of the same workload under different
// but correct protocols produce identical images: per-line store counts are
// protocol-independent, and a correct finalize commits everything — so any
// digest divergence means a protocol lost, reordered, or failed to write
// back an update. The crosscheck campaign compares this across protocols.
func (m *Memory) ImageHash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint32) {
		for s := 0; s < 32; s += 8 {
			h ^= uint64(v>>s) & 0xff
			h *= prime
		}
	}
	for _, v := range m.latest {
		mix(v)
	}
	for _, v := range m.committed {
		mix(v)
	}
	return h
}

// Reset clears all versions and violations.
func (m *Memory) Reset() {
	for i := range m.latest {
		m.latest[i] = 0
		m.committed[i] = 0
	}
	m.staleReads = 0
	m.lastStale = 0
}
