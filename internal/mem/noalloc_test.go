package mem

import "testing"

// Dynamic counterparts to the //cpelide:noalloc annotations in range.go and
// cache.go: each annotated hot path must run at 0 allocs/op once its storage
// has reached steady state (spill slices and cache arrays pre-grown).

func TestRangeSetInlineOpsNoAllocs(t *testing.T) {
	allocs := testing.AllocsPerRun(200, func() {
		var s RangeSet
		s.Add(Range{0x1000, 0x2000})
		s.Add(Range{0x4000, 0x5000})
		s.Add(Range{0x2000, 0x3000}) // merges with the first
		if s.Len() != 2 {
			t.Fatalf("len = %d, want 2", s.Len())
		}
		total := uint64(0)
		for i := 0; i < s.Len(); i++ {
			total += s.At(i).Size()
		}
		if total != 0x3000 {
			t.Fatalf("size = %#x, want 0x3000", total)
		}
		if !s.Contains(0x1800) || s.Contains(0x3800) {
			t.Fatal("membership wrong")
		}
	})
	if allocs != 0 {
		t.Errorf("inline RangeSet ops: %v allocs/op, want 0", allocs)
	}
}

func TestRangeSetSpilledOpsNoAllocs(t *testing.T) {
	// Build a spilled set (more than inlineRanges members), then verify the
	// mutating walks reuse the spill storage.
	var s RangeSet
	for i := 0; i < 16; i++ {
		s.Add(Range{Addr(i * 0x1000), Addr(i*0x1000 + 0x100)})
	}
	if s.spill == nil {
		t.Fatal("set did not spill")
	}
	var small RangeSet
	small.Add(Range{0x100000, 0x100040}) // beyond every member of s
	allocs := testing.AllocsPerRun(200, func() {
		s.Add(Range{0x3000, 0x3080}) // merges into an existing member
		if !s.Overlaps(Range{0x3000, 0x3001}) {
			t.Fatal("overlap lost")
		}
		if !s.Contains(0x3040) || s.Contains(0x100020) {
			t.Fatal("membership wrong")
		}
		if s.OverlapsSet(small) {
			t.Fatal("phantom overlap")
		}
	})
	if allocs != 0 {
		t.Errorf("spilled RangeSet ops: %v allocs/op, want 0", allocs)
	}
}

func TestRangeSetAddSetNoAllocs(t *testing.T) {
	var a, b RangeSet
	a.Add(Range{0x0, 0x100})
	a.Add(Range{0x1000, 0x1100})
	b.Add(Range{0x2000, 0x2100})
	b.Add(Range{0x3000, 0x3100})
	allocs := testing.AllocsPerRun(200, func() {
		s := a // inline sets copy by value
		s.AddSet(b)
		if s.Len() != 4 {
			t.Fatalf("len = %d, want 4", s.Len())
		}
		s.IntersectSet(a) // small sets use the stack scratch
		if !s.Equal(a) {
			t.Fatal("intersection wrong")
		}
	})
	if allocs != 0 {
		t.Errorf("AddSet/IntersectSet on inline sets: %v allocs/op, want 0", allocs)
	}
}

func TestCacheOpsNoAllocs(t *testing.T) {
	c, err := NewCache("l1", 4096, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 32; i++ {
			line := Addr(i * 64)
			c.Fill(line, uint32(i), i%2 == 0)
			if _, hit := c.Read(line); !hit {
				t.Fatal("fill then read missed")
			}
			c.Write(line, uint32(i)+1)
			c.UpdateClean(line, uint32(i)+2)
			if _, _, hit := c.Peek(line); !hit {
				t.Fatal("peek missed")
			}
		}
		for i := 0; i < 32; i++ {
			c.Invalidate(Addr(i * 64))
		}
		c.InvalidateAll()
	})
	if allocs != 0 {
		t.Errorf("cache lookup path: %v allocs/op, want 0", allocs)
	}
}
