package mem

import "fmt"

// Cache is a set-associative, LRU-replaced cache model holding line
// addresses and the data versions they carry. It is policy-free: the
// coherence protocol composes Read/Write/Fill/Flush/Invalidate primitives
// into write-back, write-through, and forwarding behaviors.
//
// Within each set, ways are kept in LRU order: index 0 is the most recently
// used line and the last valid index is the eviction victim.
type Cache struct {
	name      string
	lineShift uint
	numSets   uint64
	assoc     int
	setsPow2  bool
	sets      []way // numSets * assoc, flattened

	validLines int
	dirtyLines int
}

type way struct {
	tag   Addr // line address (low bits zero); tagValid encodes validity
	ver   uint32
	valid bool
	dirty bool
}

// EvictInfo describes a line displaced by a Fill.
type EvictInfo struct {
	Evicted bool
	Line    Addr
	Ver     uint32
	Dirty   bool
}

// NewCache builds a cache of size bytes with the given associativity and
// line size. size must be a multiple of assoc*lineSize. Geometry violations
// return an error wrapping ErrGeometry.
func NewCache(name string, size, assoc, lineSize int) (*Cache, error) {
	if size <= 0 || assoc <= 0 || lineSize <= 0 {
		return nil, fmt.Errorf("%w: cache %s dimensions must be positive (size=%d assoc=%d lineSize=%d)",
			ErrGeometry, name, size, assoc, lineSize)
	}
	if size%(assoc*lineSize) != 0 {
		return nil, fmt.Errorf("%w: cache %s size %d is not a multiple of assoc*lineSize (%d*%d)",
			ErrGeometry, name, size, assoc, lineSize)
	}
	shift, err := log2(lineSize, 16)
	if err != nil {
		return nil, fmt.Errorf("%w: cache %s line size %d is not a power of two <= 64 KiB",
			ErrGeometry, name, lineSize)
	}
	numSets := uint64(size / (assoc * lineSize))
	return &Cache{
		name:      name,
		lineShift: shift,
		numSets:   numSets,
		assoc:     assoc,
		setsPow2:  numSets&(numSets-1) == 0,
		sets:      make([]way, numSets*uint64(assoc)),
	}, nil
}

// Name returns the cache's diagnostic name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return int(c.numSets) }

// Assoc returns the associativity.
func (c *Cache) Assoc() int { return c.assoc }

// Lines returns the total line capacity.
func (c *Cache) Lines() int { return int(c.numSets) * c.assoc }

// ValidLines returns the number of valid lines currently cached.
func (c *Cache) ValidLines() int { return c.validLines }

// DirtyLines returns the number of dirty lines currently cached.
func (c *Cache) DirtyLines() int { return c.dirtyLines }

func (c *Cache) setIndex(line Addr) uint64 {
	idx := uint64(line) >> c.lineShift
	if c.setsPow2 {
		return idx & (c.numSets - 1)
	}
	return idx % c.numSets
}

// set returns the ways of the set holding line.
func (c *Cache) set(line Addr) []way {
	s := c.setIndex(line) * uint64(c.assoc)
	return c.sets[s : s+uint64(c.assoc)]
}

// moveToFront promotes ways[i] to MRU position.
func moveToFront(ways []way, i int) {
	if i == 0 {
		return
	}
	w := ways[i]
	copy(ways[1:i+1], ways[:i])
	ways[0] = w
}

// Read looks up line. On a hit it returns the cached version, promotes the
// line to MRU, and reports hit=true. It never allocates.
func (c *Cache) Read(line Addr) (ver uint32, hit bool) {
	ways := c.set(line)
	for i := range ways {
		if ways[i].valid && ways[i].tag == line {
			moveToFront(ways, i)
			return ways[0].ver, true
		}
	}
	return 0, false
}

// Peek reports whether line is cached, without disturbing LRU order.
func (c *Cache) Peek(line Addr) (ver uint32, dirty, hit bool) {
	ways := c.set(line)
	for i := range ways {
		if ways[i].valid && ways[i].tag == line {
			return ways[i].ver, ways[i].dirty, true
		}
	}
	return 0, false, false
}

// Write updates line in place with the new version, marking it dirty
// (write-back semantics), and reports whether the line was present. On a
// miss it does nothing; the caller decides whether to write-allocate via
// Fill.
func (c *Cache) Write(line Addr, ver uint32) bool {
	ways := c.set(line)
	for i := range ways {
		if ways[i].valid && ways[i].tag == line {
			if !ways[i].dirty {
				c.dirtyLines++
			}
			moveToFront(ways, i)
			ways[0].ver = ver
			ways[0].dirty = true
			return true
		}
	}
	return false
}

// UpdateClean refreshes line's version without marking it dirty, modeling a
// write-through store updating a cached copy whose data has already been
// committed below. It reports whether the line was present.
func (c *Cache) UpdateClean(line Addr, ver uint32) bool {
	ways := c.set(line)
	for i := range ways {
		if ways[i].valid && ways[i].tag == line {
			moveToFront(ways, i)
			if ways[0].dirty {
				ways[0].dirty = false
				c.dirtyLines--
			}
			ways[0].ver = ver
			return true
		}
	}
	return false
}

// Fill installs line with the given version and dirty state, evicting the
// LRU way if the set is full. Filling a line already present updates it in
// place instead.
func (c *Cache) Fill(line Addr, ver uint32, dirty bool) EvictInfo {
	ways := c.set(line)
	// Already present: update in place.
	for i := range ways {
		if ways[i].valid && ways[i].tag == line {
			moveToFront(ways, i)
			if dirty && !ways[0].dirty {
				c.dirtyLines++
			}
			if !dirty && ways[0].dirty {
				c.dirtyLines--
			}
			ways[0].ver = ver
			ways[0].dirty = dirty
			return EvictInfo{}
		}
	}
	// Prefer an invalid way.
	victim := -1
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
	}
	var ev EvictInfo
	if victim < 0 {
		victim = len(ways) - 1
		w := ways[victim]
		ev = EvictInfo{Evicted: true, Line: w.tag, Ver: w.ver, Dirty: w.dirty}
		if w.dirty {
			c.dirtyLines--
		}
		c.validLines--
	}
	ways[victim] = way{tag: line, ver: ver, valid: true, dirty: dirty}
	c.validLines++
	if dirty {
		c.dirtyLines++
	}
	moveToFront(ways, victim)
	return ev
}

// Invalidate drops line if present and reports whether it was cached and
// whether it was dirty (the dirty data is discarded).
func (c *Cache) Invalidate(line Addr) (wasDirty, wasPresent bool) {
	ways := c.set(line)
	for i := range ways {
		if ways[i].valid && ways[i].tag == line {
			wasDirty = ways[i].dirty
			if wasDirty {
				c.dirtyLines--
			}
			c.validLines--
			ways[i] = way{}
			return wasDirty, true
		}
	}
	return false, false
}

// InvalidateAll drops every line and returns the number invalidated.
// Dirty data is discarded; callers needing write-back must FlushAll first.
func (c *Cache) InvalidateAll() int {
	n := c.validLines
	for i := range c.sets {
		c.sets[i] = way{}
	}
	c.validLines = 0
	c.dirtyLines = 0
	return n
}

// InvalidateRanges drops every valid line whose address lies in rs and
// returns the number invalidated. Small ranges are handled with per-line
// set probes; large ones with a full tag walk.
func (c *Cache) InvalidateRanges(rs RangeSet) int {
	if c.rangeSmall(rs) {
		n := 0
		c.eachLine(rs, func(line Addr) {
			if _, present := c.Invalidate(line); present {
				n++
			}
		})
		return n
	}
	n := 0
	for i := range c.sets {
		w := &c.sets[i]
		if w.valid && rs.Contains(w.tag) {
			if w.dirty {
				c.dirtyLines--
			}
			c.validLines--
			*w = way{}
			n++
		}
	}
	return n
}

// rangeSmall reports whether probing rs line by line beats walking every
// tag in the cache.
func (c *Cache) rangeSmall(rs RangeSet) bool {
	lines := rs.Size() >> c.lineShift
	return lines < uint64(len(c.sets))/uint64(c.assoc)
}

// eachLine invokes f for every line-aligned address in rs.
func (c *Cache) eachLine(rs RangeSet, f func(Addr)) {
	step := Addr(1) << c.lineShift
	for _, r := range rs.Ranges() {
		for line := r.Lo &^ (step - 1); line < r.Hi; line += step {
			f(line)
		}
	}
}

// FlushAll writes back every dirty line through commit and marks it clean,
// returning the number of lines written back. Clean and invalid lines are
// untouched; the cache retains clean copies, matching the baseline protocol
// in which a flushed line transitions to a shared/valid state.
func (c *Cache) FlushAll(commit func(line Addr, ver uint32)) int {
	n := 0
	for i := range c.sets {
		w := &c.sets[i]
		if w.valid && w.dirty {
			commit(w.tag, w.ver)
			w.dirty = false
			c.dirtyLines--
			n++
		}
	}
	return n
}

// FlushRanges writes back dirty lines whose addresses lie in rs, marking
// them clean, and returns the number written back.
func (c *Cache) FlushRanges(rs RangeSet, commit func(line Addr, ver uint32)) int {
	if c.rangeSmall(rs) {
		n := 0
		c.eachLine(rs, func(line Addr) {
			ways := c.set(line)
			for i := range ways {
				if ways[i].valid && ways[i].tag == line && ways[i].dirty {
					commit(line, ways[i].ver)
					ways[i].dirty = false
					c.dirtyLines--
					n++
				}
			}
		})
		return n
	}
	n := 0
	for i := range c.sets {
		w := &c.sets[i]
		if w.valid && w.dirty && rs.Contains(w.tag) {
			commit(w.tag, w.ver)
			w.dirty = false
			c.dirtyLines--
			n++
		}
	}
	return n
}

// ValidInRanges counts valid lines whose addresses lie in rs.
func (c *Cache) ValidInRanges(rs RangeSet) int {
	n := 0
	for i := range c.sets {
		if c.sets[i].valid && rs.Contains(c.sets[i].tag) {
			n++
		}
	}
	return n
}

// Reset invalidates everything (alias of InvalidateAll, kept for symmetry
// with other components).
func (c *Cache) Reset() { c.InvalidateAll() }
