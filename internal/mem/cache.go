package mem

import "fmt"

// Cache is a set-associative, LRU-replaced cache model holding line
// addresses and the data versions they carry. It is policy-free: the
// coherence protocol composes Read/Write/Fill/Flush/Invalidate primitives
// into write-back, write-through, and forwarding behaviors.
//
// Within each set, ways are kept in LRU order: index 0 is the most recently
// used line and the last valid index is the eviction victim.
//
// Two representation choices make the whole-cache maintenance operations the
// protocols issue at every kernel boundary cheap:
//
//   - Validity is an epoch: a way is valid iff its epoch equals the cache's.
//     InvalidateAll is then O(1) — bump the epoch — instead of a memclr of
//     the whole way array (the epoch is 16 bits; on wrap the array really is
//     cleared once).
//   - A per-set dirty bitmap records which sets may hold dirty lines, so
//     FlushAll and large FlushRanges walk only those sets (in ascending set
//     order, preserving the exact commit order of the full walk) instead of
//     every tag in the cache.
type Cache struct {
	name      string
	lineShift uint
	numSets   uint64
	assoc     int
	setsPow2  bool
	sets      []way // numSets * assoc, flattened
	epoch     uint16

	// dirtySets has one bit per set, set when a way in the set becomes
	// dirty. Bits are cleared when a flush walk cleans the set; a stale set
	// bit (all its dirty lines invalidated or cleaned individually) only
	// costs that walk one wasted scan. For caches of up to
	// 64*len(dirtyInline) sets (every per-CU L1) it aliases dirtyInline,
	// avoiding a second allocation per cache; Cache is never copied by
	// value, so the self-reference is safe.
	dirtySets   []uint64
	dirtyInline [4]uint64

	validLines int
	dirtyLines int
}

type way struct {
	tag   Addr   // line address (low bits zero)
	ver   uint32 // data version carried by the line
	epoch uint16 // valid iff equal to the cache's epoch (0 is never current)
	dirty bool
}

// EvictInfo describes a line displaced by a Fill.
type EvictInfo struct {
	Evicted bool
	Line    Addr
	Ver     uint32
	Dirty   bool
}

// NewCache builds a cache of size bytes with the given associativity and
// line size. size must be a multiple of assoc*lineSize. Geometry violations
// return an error wrapping ErrGeometry.
func NewCache(name string, size, assoc, lineSize int) (*Cache, error) {
	if size <= 0 || assoc <= 0 || lineSize <= 0 {
		return nil, fmt.Errorf("%w: cache %s dimensions must be positive (size=%d assoc=%d lineSize=%d)",
			ErrGeometry, name, size, assoc, lineSize)
	}
	if size%(assoc*lineSize) != 0 {
		return nil, fmt.Errorf("%w: cache %s size %d is not a multiple of assoc*lineSize (%d*%d)",
			ErrGeometry, name, size, assoc, lineSize)
	}
	shift, err := log2(lineSize, 16)
	if err != nil {
		return nil, fmt.Errorf("%w: cache %s line size %d is not a power of two <= 64 KiB",
			ErrGeometry, name, lineSize)
	}
	numSets := uint64(size / (assoc * lineSize))
	c := &Cache{
		name:      name,
		lineShift: shift,
		numSets:   numSets,
		assoc:     assoc,
		setsPow2:  numSets&(numSets-1) == 0,
		sets:      make([]way, numSets*uint64(assoc)),
		epoch:     1,
	}
	if words := (numSets + 63) / 64; words <= uint64(len(c.dirtyInline)) {
		c.dirtySets = c.dirtyInline[:words]
	} else {
		c.dirtySets = make([]uint64, words)
	}
	return c, nil
}

// NewCacheArray builds count caches of identical geometry sharing a single
// way-array allocation. Machines build hundreds of per-CU L1s; allocating
// them individually costs two allocations per cache, which dominates
// machine-construction allocation counts. The returned slice never moves,
// so taking the address of an element is safe.
func NewCacheArray(name string, count, size, assoc, lineSize int) ([]Cache, error) {
	if count <= 0 {
		return nil, fmt.Errorf("%w: cache %s array count %d must be positive", ErrGeometry, name, count)
	}
	proto, err := NewCache(name, size, assoc, lineSize)
	if err != nil {
		return nil, err
	}
	lines := proto.numSets * uint64(proto.assoc)
	backing := make([]way, lines*uint64(count))
	words := (proto.numSets + 63) / 64
	arr := make([]Cache, count)
	for i := range arr {
		arr[i] = *proto
		arr[i].sets = backing[uint64(i)*lines : uint64(i+1)*lines : uint64(i+1)*lines]
		if words <= uint64(len(arr[i].dirtyInline)) {
			arr[i].dirtySets = arr[i].dirtyInline[:words]
		} else {
			arr[i].dirtySets = make([]uint64, words)
		}
	}
	return arr, nil
}

// Name returns the cache's diagnostic name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return int(c.numSets) }

// Assoc returns the associativity.
func (c *Cache) Assoc() int { return c.assoc }

// Lines returns the total line capacity.
func (c *Cache) Lines() int { return int(c.numSets) * c.assoc }

// ValidLines returns the number of valid lines currently cached.
func (c *Cache) ValidLines() int { return c.validLines }

// DirtyLines returns the number of dirty lines currently cached.
func (c *Cache) DirtyLines() int { return c.dirtyLines }

//cpelide:noalloc
func (c *Cache) setIndex(line Addr) uint64 {
	idx := uint64(line) >> c.lineShift
	if c.setsPow2 {
		return idx & (c.numSets - 1)
	}
	return idx % c.numSets
}

// set returns the ways of the set holding line.
//
//cpelide:noalloc
func (c *Cache) set(line Addr) []way {
	s := c.setIndex(line) * uint64(c.assoc)
	return c.sets[s : s+uint64(c.assoc)]
}

// setWithIndex returns the ways of the set holding line plus the set index,
// for callers that also maintain the dirty bitmap.
//
//cpelide:noalloc
func (c *Cache) setWithIndex(line Addr) ([]way, uint64) {
	si := c.setIndex(line)
	s := si * uint64(c.assoc)
	return c.sets[s : s+uint64(c.assoc)], si
}

//cpelide:noalloc
func (c *Cache) markDirtySet(si uint64) {
	c.dirtySets[si>>6] |= 1 << (si & 63)
}

// moveToFront promotes ways[i] to MRU position.
//
//cpelide:noalloc
func moveToFront(ways []way, i int) {
	if i == 0 {
		return
	}
	w := ways[i]
	copy(ways[1:i+1], ways[:i])
	ways[0] = w
}

// Read looks up line. On a hit it returns the cached version, promotes the
// line to MRU, and reports hit=true. It never allocates.
//
//cpelide:noalloc
func (c *Cache) Read(line Addr) (ver uint32, hit bool) {
	ways := c.set(line)
	for i := range ways {
		if ways[i].epoch == c.epoch && ways[i].tag == line {
			moveToFront(ways, i)
			return ways[0].ver, true
		}
	}
	return 0, false
}

// Peek reports whether line is cached, without disturbing LRU order.
//
//cpelide:noalloc
func (c *Cache) Peek(line Addr) (ver uint32, dirty, hit bool) {
	ways := c.set(line)
	for i := range ways {
		if ways[i].epoch == c.epoch && ways[i].tag == line {
			return ways[i].ver, ways[i].dirty, true
		}
	}
	return 0, false, false
}

// Write updates line in place with the new version, marking it dirty
// (write-back semantics), and reports whether the line was present. On a
// miss it does nothing; the caller decides whether to write-allocate via
// Fill.
//
//cpelide:noalloc
func (c *Cache) Write(line Addr, ver uint32) bool {
	ways, si := c.setWithIndex(line)
	for i := range ways {
		if ways[i].epoch == c.epoch && ways[i].tag == line {
			if !ways[i].dirty {
				c.dirtyLines++
				c.markDirtySet(si)
			}
			moveToFront(ways, i)
			ways[0].ver = ver
			ways[0].dirty = true
			return true
		}
	}
	return false
}

// UpdateClean refreshes line's version without marking it dirty, modeling a
// write-through store updating a cached copy whose data has already been
// committed below. It reports whether the line was present.
//
//cpelide:noalloc
func (c *Cache) UpdateClean(line Addr, ver uint32) bool {
	ways := c.set(line)
	for i := range ways {
		if ways[i].epoch == c.epoch && ways[i].tag == line {
			moveToFront(ways, i)
			if ways[0].dirty {
				ways[0].dirty = false
				c.dirtyLines--
			}
			ways[0].ver = ver
			return true
		}
	}
	return false
}

// Fill installs line with the given version and dirty state, evicting the
// LRU way if the set is full. Filling a line already present updates it in
// place instead.
//
//cpelide:noalloc
func (c *Cache) Fill(line Addr, ver uint32, dirty bool) EvictInfo {
	ways, si := c.setWithIndex(line)
	// Already present: update in place.
	for i := range ways {
		if ways[i].epoch == c.epoch && ways[i].tag == line {
			moveToFront(ways, i)
			if dirty && !ways[0].dirty {
				c.dirtyLines++
				c.markDirtySet(si)
			}
			if !dirty && ways[0].dirty {
				c.dirtyLines--
			}
			ways[0].ver = ver
			ways[0].dirty = dirty
			return EvictInfo{}
		}
	}
	// Prefer an invalid way.
	victim := -1
	for i := range ways {
		if ways[i].epoch != c.epoch {
			victim = i
			break
		}
	}
	var ev EvictInfo
	if victim < 0 {
		victim = len(ways) - 1
		w := ways[victim]
		ev = EvictInfo{Evicted: true, Line: w.tag, Ver: w.ver, Dirty: w.dirty}
		if w.dirty {
			c.dirtyLines--
		}
		c.validLines--
	}
	ways[victim] = way{tag: line, ver: ver, epoch: c.epoch, dirty: dirty}
	c.validLines++
	if dirty {
		c.dirtyLines++
		c.markDirtySet(si)
	}
	moveToFront(ways, victim)
	return ev
}

// Invalidate drops line if present and reports whether it was cached and
// whether it was dirty (the dirty data is discarded).
//
//cpelide:noalloc
func (c *Cache) Invalidate(line Addr) (wasDirty, wasPresent bool) {
	ways := c.set(line)
	for i := range ways {
		if ways[i].epoch == c.epoch && ways[i].tag == line {
			wasDirty = ways[i].dirty
			if wasDirty {
				c.dirtyLines--
			}
			c.validLines--
			ways[i] = way{}
			return wasDirty, true
		}
	}
	return false, false
}

// InvalidateAll drops every line and returns the number invalidated.
// Dirty data is discarded; callers needing write-back must FlushAll first.
// The work is O(1): validity is epoch-based, so bumping the epoch stales
// every way at once (the way array is physically cleared only when the
// 16-bit epoch wraps).
//
//cpelide:noalloc
func (c *Cache) InvalidateAll() int {
	n := c.validLines
	if c.epoch == ^uint16(0) {
		for i := range c.sets {
			c.sets[i] = way{}
		}
		c.epoch = 1
	} else {
		c.epoch++
	}
	for i := range c.dirtySets {
		c.dirtySets[i] = 0
	}
	c.validLines = 0
	c.dirtyLines = 0
	return n
}

// InvalidateRanges drops every valid line whose address lies in rs and
// returns the number invalidated. Small ranges are handled with per-line
// set probes; large ones with a full tag walk.
func (c *Cache) InvalidateRanges(rs RangeSet) int {
	if c.rangeSmall(rs) {
		n := 0
		c.eachLine(rs, func(line Addr) {
			if _, present := c.Invalidate(line); present {
				n++
			}
		})
		return n
	}
	n := 0
	for i := range c.sets {
		w := &c.sets[i]
		if w.epoch == c.epoch && rs.Contains(w.tag) {
			if w.dirty {
				c.dirtyLines--
			}
			c.validLines--
			*w = way{}
			n++
		}
	}
	return n
}

// rangeSmall reports whether probing rs line by line beats walking every
// tag in the cache.
func (c *Cache) rangeSmall(rs RangeSet) bool {
	lines := rs.Size() >> c.lineShift
	return lines < uint64(len(c.sets))/uint64(c.assoc)
}

// eachLine invokes f for every line-aligned address in rs.
func (c *Cache) eachLine(rs RangeSet, f func(Addr)) {
	step := Addr(1) << c.lineShift
	for i, n := 0, rs.Len(); i < n; i++ {
		r := rs.At(i)
		for line := r.Lo &^ (step - 1); line < r.Hi; line += step {
			f(line)
		}
	}
}

// flushSet writes back the dirty lines of set si through commit, in way
// order, and returns how many it cleaned.
func (c *Cache) flushSet(si uint64, commit func(line Addr, ver uint32)) int {
	n := 0
	base := si * uint64(c.assoc)
	ways := c.sets[base : base+uint64(c.assoc)]
	for i := range ways {
		w := &ways[i]
		if w.epoch == c.epoch && w.dirty {
			commit(w.tag, w.ver)
			w.dirty = false
			c.dirtyLines--
			n++
		}
	}
	return n
}

// FlushAll writes back every dirty line through commit and marks it clean,
// returning the number of lines written back. Clean and invalid lines are
// untouched; the cache retains clean copies, matching the baseline protocol
// in which a flushed line transitions to a shared/valid state. Only sets
// flagged in the dirty bitmap are walked, in ascending set order — the same
// commit order as a full tag walk.
func (c *Cache) FlushAll(commit func(line Addr, ver uint32)) int {
	if c.dirtyLines == 0 {
		return 0
	}
	n := 0
	for wi, word := range c.dirtySets {
		if word == 0 {
			continue
		}
		for b := uint64(0); word != 0; word >>= 1 {
			if word&1 != 0 {
				n += c.flushSet(uint64(wi)<<6+b, commit)
			}
			b++
		}
		c.dirtySets[wi] = 0
	}
	return n
}

// FlushRanges writes back dirty lines whose addresses lie in rs, marking
// them clean, and returns the number written back.
func (c *Cache) FlushRanges(rs RangeSet, commit func(line Addr, ver uint32)) int {
	if c.dirtyLines == 0 {
		return 0
	}
	if c.rangeSmall(rs) {
		n := 0
		c.eachLine(rs, func(line Addr) {
			ways := c.set(line)
			for i := range ways {
				if ways[i].epoch == c.epoch && ways[i].tag == line && ways[i].dirty {
					commit(line, ways[i].ver)
					ways[i].dirty = false
					c.dirtyLines--
					n++
				}
			}
		})
		return n
	}
	n := 0
	for wi, word := range c.dirtySets {
		for b := uint64(0); word != 0; word >>= 1 {
			if word&1 != 0 {
				si := uint64(wi)<<6 + b
				base := si * uint64(c.assoc)
				ways := c.sets[base : base+uint64(c.assoc)]
				remaining := false
				for i := range ways {
					w := &ways[i]
					if w.epoch != c.epoch || !w.dirty {
						continue
					}
					if rs.Contains(w.tag) {
						commit(w.tag, w.ver)
						w.dirty = false
						c.dirtyLines--
						n++
					} else {
						remaining = true
					}
				}
				if !remaining {
					c.dirtySets[wi] &^= 1 << b
				}
			}
			b++
		}
	}
	return n
}

// ValidInRanges counts valid lines whose addresses lie in rs.
func (c *Cache) ValidInRanges(rs RangeSet) int {
	n := 0
	for i := range c.sets {
		if c.sets[i].epoch == c.epoch && rs.Contains(c.sets[i].tag) {
			n++
		}
	}
	return n
}

// Reset invalidates everything (alias of InvalidateAll, kept for symmetry
// with other components).
func (c *Cache) Reset() { c.InvalidateAll() }
