package mem

import (
	"math/rand"
	"testing"
)

// modelSet is the naive reference implementation of RangeSet: one boolean
// per address over a small universe. Every RangeSet operation has an obvious
// one-line counterpart here, so disagreement is always a RangeSet bug.
type modelSet map[Addr]bool

func (m modelSet) add(r Range) {
	for p := r.Lo; p < r.Hi; p++ {
		m[p] = true
	}
}

func (m modelSet) addSet(o modelSet) {
	for p := range o {
		m[p] = true
	}
}

func (m modelSet) intersect(o modelSet) {
	for p := range m {
		if !o[p] {
			delete(m, p)
		}
	}
}

func (m modelSet) size() uint64 { return uint64(len(m)) }

func (m modelSet) overlaps(o modelSet) bool {
	for p := range m {
		if o[p] {
			return true
		}
	}
	return false
}

// checkAgainstModel compares a RangeSet with its model point by point over
// the universe, plus the aggregate queries.
func checkAgainstModel(t *testing.T, tag string, s *RangeSet, m modelSet, universe Addr) {
	t.Helper()
	for p := Addr(0); p < universe; p++ {
		if s.Contains(p) != m[p] {
			t.Fatalf("%s: Contains(%d) = %v, model %v (set %v)", tag, p, s.Contains(p), m[p], s)
		}
	}
	if s.Size() != m.size() {
		t.Fatalf("%s: Size = %d, model %d (set %v)", tag, s.Size(), m.size(), s)
	}
	if s.Empty() != (m.size() == 0) {
		t.Fatalf("%s: Empty = %v, model size %d", tag, s.Empty(), m.size())
	}
	// Stored representation invariants: sorted, disjoint, non-adjacent.
	for i := 1; i < s.Len(); i++ {
		prev, cur := s.At(i-1), s.At(i)
		if prev.Hi >= cur.Lo {
			t.Fatalf("%s: ranges %v, %v not disjoint-and-separated", tag, prev, cur)
		}
	}
}

// TestRangeSetModel drives random Add/AddSet/IntersectSet sequences over a
// small address universe against the map model. The universe is sized so
// sets regularly cross the inline/spill boundary in both directions
// (IntersectSet shrinks spilled sets back under the inline capacity).
func TestRangeSetModel(t *testing.T) {
	const universe = Addr(192)
	rnd := rand.New(rand.NewSource(20240807))
	for trial := 0; trial < 300; trial++ {
		var s RangeSet
		m := modelSet{}
		for op := 0; op < 30; op++ {
			switch rnd.Intn(5) {
			case 0, 1: // Add dominates: it is the hot operation
				lo := Addr(rnd.Intn(int(universe)))
				hi := lo + Addr(rnd.Intn(24))
				s.Add(Range{Lo: lo, Hi: hi})
				m.add(Range{Lo: lo, Hi: hi})
			case 2: // AddSet with a random small set
				var o RangeSet
				om := modelSet{}
				for i := rnd.Intn(6); i > 0; i-- {
					lo := Addr(rnd.Intn(int(universe)))
					hi := lo + Addr(rnd.Intn(16))
					o.Add(Range{Lo: lo, Hi: hi})
					om.add(Range{Lo: lo, Hi: hi})
				}
				s.AddSet(o)
				m.addSet(om)
			case 3: // IntersectSet against a mask
				var o RangeSet
				om := modelSet{}
				for i := 1 + rnd.Intn(5); i > 0; i-- {
					lo := Addr(rnd.Intn(int(universe)))
					hi := lo + Addr(rnd.Intn(48))
					o.Add(Range{Lo: lo, Hi: hi})
					om.add(Range{Lo: lo, Hi: hi})
				}
				s.IntersectSet(o)
				m.intersect(om)
			case 4: // Overlaps probes
				lo := Addr(rnd.Intn(int(universe)))
				hi := lo + Addr(rnd.Intn(32))
				r := Range{Lo: lo, Hi: hi}
				want := false
				for p := lo; p < hi; p++ {
					if m[p] {
						want = true
						break
					}
				}
				if s.Overlaps(r) != want {
					t.Fatalf("trial %d: Overlaps(%v) = %v, model %v", trial, r, s.Overlaps(r), want)
				}
			}
			checkAgainstModel(t, "after op", &s, m, universe)
		}

		// OverlapsSet against an independent random set.
		var o RangeSet
		om := modelSet{}
		for i := rnd.Intn(8); i > 0; i-- {
			lo := Addr(rnd.Intn(int(universe)))
			hi := lo + Addr(rnd.Intn(16))
			o.Add(Range{Lo: lo, Hi: hi})
			om.add(Range{Lo: lo, Hi: hi})
		}
		if got, want := s.OverlapsSet(o), m.overlaps(om); got != want {
			t.Fatalf("trial %d: OverlapsSet = %v, model %v", trial, got, want)
		}

		// Clone independence after the whole history.
		c := s.Clone()
		c.Add(Range{Lo: universe + 10, Hi: universe + 20})
		checkAgainstModel(t, "original after clone mutate", &s, m, universe)
	}
}
