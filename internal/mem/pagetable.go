package mem

import "fmt"

// PageTable implements first-touch NUMA page placement (Section IV-C1 of the
// paper): the first chiplet to access a page becomes its home node. The home
// determines which L3 bank and HBM partition serve the page and therefore
// whether an access crosses the inter-chiplet interconnect.
type PageTable struct {
	pageShift uint
	base      Addr
	homes     []int8 // -1 = untouched
}

// NewPageTable covers [base, base+size) with pages of pageSize bytes. A
// page size that is not a power of two <= 1 GiB returns an error wrapping
// ErrGeometry.
func NewPageTable(base Addr, size uint64, pageSize int) (*PageTable, error) {
	shift, err := log2(pageSize, 30)
	if err != nil {
		return nil, fmt.Errorf("%w: page size %d is not a power of two <= 1 GiB", ErrGeometry, pageSize)
	}
	n := (size + uint64(pageSize) - 1) >> shift
	homes := make([]int8, n)
	for i := range homes {
		homes[i] = -1
	}
	return &PageTable{pageShift: shift, base: base, homes: homes}, nil
}

// Home returns the home chiplet for addr, assigning chiplet as the home on
// first touch.
func (p *PageTable) Home(addr Addr, chiplet int) int {
	i := (addr - p.base) >> p.pageShift
	if h := p.homes[i]; h >= 0 {
		return int(h)
	}
	p.homes[i] = int8(chiplet)
	return chiplet
}

// HomeIfPlaced returns the home chiplet for addr, or -1 if the page has not
// been touched yet. It never places the page.
func (p *PageTable) HomeIfPlaced(addr Addr) int {
	return int(p.homes[(addr-p.base)>>p.pageShift])
}

// PlaceRange eagerly homes every page of r on the given chiplet, skipping
// pages already placed. It returns the number of pages newly placed.
// Workload setup uses this to model a warm-up pass that has already touched
// the data, which matches how iterative GPU benchmarks behave after their
// first kernel.
func (p *PageTable) PlaceRange(r Range, chiplet int) int {
	placed := 0
	if r.Empty() {
		return 0
	}
	for i := (r.Lo - p.base) >> p.pageShift; i <= (r.Hi-1-p.base)>>p.pageShift; i++ {
		if p.homes[i] < 0 {
			p.homes[i] = int8(chiplet)
			placed++
		}
	}
	return placed
}

// Pages returns the number of pages the table covers.
func (p *PageTable) Pages() int { return len(p.homes) }

// PageSize returns the placement granularity in bytes.
func (p *PageTable) PageSize() int { return 1 << p.pageShift }

// Reset clears all placements.
func (p *PageTable) Reset() {
	for i := range p.homes {
		p.homes[i] = -1
	}
}
