package mem

import (
	"encoding/binary"
	"testing"
)

// FuzzRangeSet drives RangeSet.Add with fuzzer-chosen range sequences and
// checks the structural invariants every consumer relies on: the stored
// ranges are sorted, pairwise disjoint and non-adjacent (maximally
// coalesced), Size matches the union's true cardinality, and membership
// queries agree with the inserted ranges.
func FuzzRangeSet(f *testing.F) {
	seed := func(vals ...uint64) []byte {
		var b []byte
		for _, v := range vals {
			b = binary.LittleEndian.AppendUint64(b, v)
		}
		return b
	}
	f.Add(seed(0, 64, 64, 128))            // adjacent: must coalesce
	f.Add(seed(0, 100, 50, 150, 200, 300)) // overlap + gap
	f.Add(seed(10, 10, 5, 3))              // empty and inverted ranges
	f.Add(seed(0, 1<<40, 1<<20, 1<<21))    // containment
	f.Add(seed(4096, 8192, 0, 4096, 2, 3)) // reverse-order adds
	// Merge-at-boundary: the new range exactly bridges two stored ones, so
	// an in-place Add must collapse a three-range window into one.
	f.Add(seed(0, 64, 128, 192, 64, 128))
	// Adjacent-coalesce across the inline->spill transition: five disjoint
	// ranges force the spill representation, then one range glues them all.
	f.Add(seed(0, 64, 128, 192, 256, 320, 384, 448, 512, 576, 64, 512))

	f.Fuzz(func(t *testing.T, data []byte) {
		var s RangeSet
		var added []Range
		for len(data) >= 16 {
			lo := Addr(binary.LittleEndian.Uint64(data) % (1 << 44))
			hi := Addr(binary.LittleEndian.Uint64(data[8:]) % (1 << 44))
			data = data[16:]
			r := Range{Lo: lo, Hi: hi}
			s.Add(r)
			if !r.Empty() {
				added = append(added, r)
			}
		}

		rs := s.Ranges()
		var total uint64
		for i, r := range rs {
			if r.Empty() {
				t.Fatalf("stored empty range %v", r)
			}
			total += r.Size()
			if i == 0 {
				continue
			}
			prev := rs[i-1]
			if prev.Lo > r.Lo {
				t.Fatalf("unsorted: %v before %v", prev, r)
			}
			if prev.Overlaps(r) {
				t.Fatalf("overlapping stored ranges: %v, %v", prev, r)
			}
			if prev.Adjacent(r) {
				t.Fatalf("uncoalesced adjacent ranges: %v, %v", prev, r)
			}
		}
		if s.Size() != total {
			t.Fatalf("Size() = %d, stored sum %d", s.Size(), total)
		}
		if s.Empty() != (len(added) == 0) {
			t.Fatalf("Empty() = %v with %d added ranges", s.Empty(), len(added))
		}

		// Every inserted range must be fully contained; endpoints just
		// outside the union's bounds must not be.
		for _, r := range added {
			if !s.Contains(r.Lo) || !s.Contains(r.Hi-1) {
				t.Fatalf("added range %v not contained in %v", r, s)
			}
			if !s.Overlaps(r) {
				t.Fatalf("added range %v does not overlap %v", r, s)
			}
		}
		if len(added) > 0 {
			b := s.Bounds()
			if b.Lo > 0 && s.Contains(b.Lo-1) {
				t.Fatalf("contains below bounds: %v", b)
			}
			if s.Contains(b.Hi) {
				t.Fatalf("contains at upper bound: %v", b)
			}
		}

		// Clone must be equal and independent.
		c := s.Clone()
		if c.Size() != s.Size() || c.Len() != s.Len() {
			t.Fatal("clone differs")
		}
		c.Add(Range{Lo: 1 << 50, Hi: 1<<50 + 64})
		if s.Contains(1 << 50) {
			t.Fatal("clone shares storage with original")
		}

		// Set algebra: split the inserted ranges into two sets and verify
		// AddSet/IntersectSet/OverlapsSet against direct membership over the
		// inserted ranges at every interesting point (all endpoints +/- 1).
		var a, b RangeSet
		for i, r := range added {
			if i%2 == 0 {
				a.Add(r)
			} else {
				b.Add(r)
			}
		}
		inA := func(p Addr) bool {
			for i, r := range added {
				if i%2 == 0 && r.Contains(p) {
					return true
				}
			}
			return false
		}
		inB := func(p Addr) bool {
			for i, r := range added {
				if i%2 == 1 && r.Contains(p) {
					return true
				}
			}
			return false
		}
		union := a.Clone()
		union.AddSet(b)
		inter := a.Clone()
		inter.IntersectSet(b)
		for _, r := range added {
			for _, p := range []Addr{r.Lo - 1, r.Lo, r.Hi - 1, r.Hi} {
				if got, want := union.Contains(p), inA(p) || inB(p); got != want {
					t.Fatalf("union.Contains(%#x) = %v, model %v", p, got, want)
				}
				if got, want := inter.Contains(p), inA(p) && inB(p); got != want {
					t.Fatalf("inter.Contains(%#x) = %v, model %v", p, got, want)
				}
			}
		}
		if union.Size() != s.Size() || union.Len() != s.Len() {
			t.Fatalf("a union b != all added: %v vs %v", union, s)
		}
		if a.OverlapsSet(b) != !inter.Empty() {
			t.Fatalf("OverlapsSet = %v but intersection = %v", a.OverlapsSet(b), inter)
		}
		// In-place AddSet must not corrupt its argument.
		if !b.Equal(bClone(added)) {
			t.Fatal("AddSet mutated its read-only argument")
		}
	})
}

// bClone rebuilds the odd-index set from scratch for aliasing checks.
func bClone(added []Range) RangeSet {
	var b RangeSet
	for i, r := range added {
		if i%2 == 1 {
			b.Add(r)
		}
	}
	return b
}
