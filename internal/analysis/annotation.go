package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoallocPrefix introduces a function invariant annotation:
//
//	//cpelide:noalloc [note]
//
// Placed in a function's doc comment, it declares that the function's
// steady-state execution performs no heap allocation. The noalloc analyzer
// checks the body statically (composite literals, make/new, append to
// escaping storage, string concatenation, interface boxing, closures, and
// calls to functions not themselves annotated), and the AllocsPerRun tests
// pin the same set of functions to 0 allocs/op dynamically. The optional
// note is free text for the reader; it does not change the check.
const NoallocPrefix = "//cpelide:noalloc"

// IsNoallocComment reports whether one comment line is a noalloc annotation.
func IsNoallocComment(text string) bool {
	rest, ok := strings.CutPrefix(text, NoallocPrefix)
	if !ok {
		return false
	}
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}

// HasNoalloc reports whether the function declaration carries a
// //cpelide:noalloc annotation in its doc comment.
func HasNoalloc(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if IsNoallocComment(c.Text) {
			return true
		}
	}
	return false
}

// NoallocFuncs collects the unit's annotated functions, keyed by their
// types.Object so call sites can be resolved against the set. The second
// return value lists annotation comments that are not attached to any
// function declaration — a misplaced annotation annotates nothing and the
// noalloc pass flags it.
func NoallocFuncs(files []*ast.File, info *types.Info) (map[types.Object]*ast.FuncDecl, []*ast.Comment) {
	annotated := map[types.Object]*ast.FuncDecl{}
	attached := map[*ast.Comment]bool{}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if IsNoallocComment(c.Text) {
					attached[c] = true
					if obj := info.Defs[fd.Name]; obj != nil {
						annotated[obj] = fd
					}
				}
			}
		}
	}
	var misplaced []*ast.Comment
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if IsNoallocComment(c.Text) && !attached[c] {
					misplaced = append(misplaced, c)
				}
			}
		}
	}
	return annotated, misplaced
}
