// Package analysistest runs cpelint analyzers over fixture packages and
// compares the reported diagnostics against expectations embedded in the
// fixture source — a dependency-free analogue of
// golang.org/x/tools/go/analysis/analysistest.
//
// Fixture layout mirrors x/tools: <testdata>/src/<pkgpath>/*.go. Imports in
// fixture files resolve against <testdata>/src first (so a fixture can
// provide stubs, such as a fake event package for the engine-aware rules),
// then against the standard library via the source importer, which needs no
// pre-built export data and therefore works offline.
//
// An expectation is a trailing comment of the form
//
//	// want `regexp` `regexp` ...
//
// Each backquoted regexp must match the message of one diagnostic reported
// on that line. Diagnostics with no matching expectation, and expectations
// with no matching diagnostic, fail the test. Fixtures run through
// analysis.RunUnit, so //cpelint:ignore directives suppress findings exactly
// as they do under the real driver, and unused directives surface as
// "ignores" diagnostics.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

// DefaultVersion is the language version fixtures are checked under unless
// RunVersion overrides it. It matches the module's declared version.
const DefaultVersion = "go1.22"

// Run loads the fixture package at <testdata>/src/<pkgpath>, applies the
// analyzers, and compares diagnostics against the fixture's expectations.
func Run(t *testing.T, testdata, pkgpath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	RunVersion(t, testdata, pkgpath, DefaultVersion, analyzers...)
}

// RunVersion is Run under an explicit language version, for passes whose
// behavior is version-dependent (pre-Go-1.22 loop-variable capture).
func RunVersion(t *testing.T, testdata, pkgpath, goVersion string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	loaderMu.Lock()
	u, err := loadFixture(testdata, pkgpath, goVersion)
	loaderMu.Unlock()
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
	}
	diags, err := analysis.RunUnit(u.fset, u.files, u.pkg, u.info, goVersion, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", pkgpath, err)
	}
	wants, err := collectWants(u.paths)
	if err != nil {
		t.Fatal(err)
	}
	matchWants(t, diags, wants)
}

// The loader shares one FileSet, one source importer, and a dependency cache
// across all Run calls in a test binary: source-importing the standard
// library is the expensive part, and it only needs to happen once.
var (
	loaderMu   sync.Mutex
	sharedFset = token.NewFileSet()
	stdOnce    sync.Once
	stdImp     types.Importer
	depCache   = map[string]*types.Package{}
)

type fixtureUnit struct {
	fset  *token.FileSet
	files []*ast.File
	paths []string // absolute source paths, parallel to files
	pkg   *types.Package
	info  *types.Info
}

// fixtureImporter resolves imports under the fixture source root first, then
// falls back to the standard library.
type fixtureImporter struct {
	srcRoot string
}

func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	dir := filepath.Join(im.srcRoot, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		if p, ok := depCache[dir]; ok {
			return p, nil
		}
		u, err := typecheck(im.srcRoot, dir, path, DefaultVersion, false)
		if err != nil {
			return nil, err
		}
		depCache[dir] = u.pkg
		return u.pkg, nil
	}
	stdOnce.Do(func() { stdImp = importer.ForCompiler(sharedFset, "source", nil) })
	return stdImp.Import(path)
}

func loadFixture(testdata, pkgpath, goVersion string) (*fixtureUnit, error) {
	src, err := filepath.Abs(filepath.Join(testdata, "src"))
	if err != nil {
		return nil, err
	}
	return typecheck(src, filepath.Join(src, filepath.FromSlash(pkgpath)), pkgpath, goVersion, true)
}

// typecheck parses and type-checks one fixture directory as a package.
// Dependency stubs are loaded without their _test.go files; the unit under
// test keeps them, since the test-file exemptions are themselves under test.
func typecheck(srcRoot, dir, pkgpath, goVersion string, withTests bool) (*fixtureUnit, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") {
			continue
		}
		if !withTests && strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	u := &fixtureUnit{fset: sharedFset}
	for _, n := range names {
		p := filepath.Join(dir, n)
		f, err := parser.ParseFile(sharedFset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		u.files = append(u.files, f)
		u.paths = append(u.paths, p)
	}
	conf := types.Config{
		Importer:  &fixtureImporter{srcRoot: srcRoot},
		GoVersion: goVersion,
	}
	u.info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	u.pkg, err = conf.Check(pkgpath, sharedFset, u.files, u.info)
	if err != nil {
		return nil, err
	}
	return u, nil
}

// A want is one expectation: a regexp that must match a diagnostic message
// on a specific fixture line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

const wantMarker = "// want "

func collectWants(paths []string) ([]*want, error) {
	var out []*want
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, wantMarker)
			if idx < 0 {
				continue
			}
			pats, err := parsePatterns(line[idx+len(wantMarker):])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", p, i+1, err)
			}
			for _, pat := range pats {
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", p, i+1, pat, err)
				}
				out = append(out, &want{file: p, line: i + 1, re: re, raw: pat})
			}
		}
	}
	return out, nil
}

// parsePatterns reads the backquoted regexps of one want clause.
func parsePatterns(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimLeft(s, " \t")
		if s == "" {
			break
		}
		if s[0] != '`' {
			return nil, fmt.Errorf("want patterns must be backquoted")
		}
		j := strings.IndexByte(s[1:], '`')
		if j < 0 {
			return nil, fmt.Errorf("unterminated want pattern")
		}
		out = append(out, s[1:1+j])
		s = s[j+2:]
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want clause")
	}
	return out, nil
}

// reporter is the subset of *testing.T the matcher needs; the harness's own
// tests substitute a recorder to prove mismatches are detected.
type reporter interface {
	Errorf(format string, args ...any)
}

func matchWants(t reporter, diags []analysis.UnitDiagnostic, wants []*want) {
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d.String())
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}
