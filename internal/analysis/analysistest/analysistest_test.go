package analysistest

import (
	"go/token"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

type recorder struct{ errs []string }

func (r *recorder) Errorf(format string, args ...any) {
	r.errs = append(r.errs, format)
}

func diag(file string, line int, msg string) analysis.UnitDiagnostic {
	return analysis.UnitDiagnostic{
		Analyzer: "determinism",
		Pos:      token.Position{Filename: file, Line: line},
		Message:  msg,
	}
}

func TestMatchWantsDetectsUnexpectedDiagnostic(t *testing.T) {
	var r recorder
	matchWants(&r, []analysis.UnitDiagnostic{diag("f.go", 3, "boom")}, nil)
	if len(r.errs) != 1 || !strings.Contains(r.errs[0], "unexpected diagnostic") {
		t.Fatalf("errs = %q, want one unexpected-diagnostic error", r.errs)
	}
}

func TestMatchWantsDetectsUnmatchedWant(t *testing.T) {
	var r recorder
	w, err := parsePatterns("`never fires`")
	if err != nil {
		t.Fatal(err)
	}
	wants := []*want{{file: "f.go", line: 3, re: mustCompile(t, w[0]), raw: w[0]}}
	matchWants(&r, nil, wants)
	if len(r.errs) != 1 || !strings.Contains(r.errs[0], "no diagnostic matching") {
		t.Fatalf("errs = %q, want one unmatched-want error", r.errs)
	}
}

func TestMatchWantsPairsDiagnosticsOneToOne(t *testing.T) {
	var r recorder
	wants := []*want{{file: "f.go", line: 3, re: mustCompile(t, "dup"), raw: "dup"}}
	diags := []analysis.UnitDiagnostic{diag("f.go", 3, "dup"), diag("f.go", 3, "dup")}
	matchWants(&r, diags, wants)
	if len(r.errs) != 1 {
		t.Fatalf("errs = %q, want exactly one (second diagnostic unmatched)", r.errs)
	}
}

func TestParsePatterns(t *testing.T) {
	got, err := parsePatterns("`one` `two words`")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "one" || got[1] != "two words" {
		t.Fatalf("patterns = %q", got)
	}
	for _, bad := range []string{"", "unquoted", "`open"} {
		if _, err := parsePatterns(bad); err == nil {
			t.Errorf("parsePatterns(%q) succeeded, want error", bad)
		}
	}
}

func mustCompile(t *testing.T, pat string) *regexp.Regexp {
	t.Helper()
	re, err := regexp.Compile(pat)
	if err != nil {
		t.Fatal(err)
	}
	return re
}
