package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// IgnorePrefix introduces a suppression directive:
//
//	//cpelint:ignore <pass> <reason>
//
// A well-formed directive names one analyzer of the suite and carries a
// non-empty reason, and suppresses that analyzer's diagnostics on the
// directive's own line (end-of-line comment) or on the line immediately
// below (standalone comment). Directives without a reason, naming an
// unknown pass, or suppressing nothing are diagnostics themselves — the
// escape hatch must document why it exists and must not outlive its
// finding.
const IgnorePrefix = "//cpelint:ignore"

// An IgnoreDirective is one parsed //cpelint:ignore comment.
type IgnoreDirective struct {
	Pos    token.Pos
	File   string
	Line   int
	Pass   string // analyzer name; may be unknown (ignores pass flags it)
	Reason string // may be empty (ignores pass flags it)
}

// WellFormed reports whether the directive names a known pass and carries a
// reason. Only well-formed directives suppress diagnostics: a malformed one
// must be fixed, not honored.
func (d IgnoreDirective) WellFormed() bool {
	return KnownPass(d.Pass) && d.Reason != ""
}

// ParseIgnore parses one comment's text as an ignore directive. The second
// result is false when the comment is not a directive at all.
func ParseIgnore(text string) (pass, reason string, ok bool) {
	rest, ok := strings.CutPrefix(text, IgnorePrefix)
	if !ok {
		return "", "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", "", false // e.g. //cpelint:ignorexyz
	}
	// An analysistest fixture may carry its own expectation after the
	// directive ("//cpelint:ignore errpanic reason // want `...`"); the
	// expectation is not part of the reason.
	if i := strings.Index(rest, "// want"); i >= 0 {
		rest = rest[:i]
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", true
	}
	return fields[0], strings.Join(fields[1:], " "), true
}

// CollectIgnores extracts every //cpelint:ignore directive from the unit's
// comments, well-formed or not.
func CollectIgnores(fset *token.FileSet, files []*ast.File) []IgnoreDirective {
	var out []IgnoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pass, reason, ok := ParseIgnore(c.Text)
				if !ok {
					continue
				}
				p := fset.Position(c.Pos())
				out = append(out, IgnoreDirective{
					Pos:    c.Pos(),
					File:   p.Filename,
					Line:   p.Line,
					Pass:   pass,
					Reason: reason,
				})
			}
		}
	}
	return out
}

// ApplyIgnores filters diags through the unit's directives. It returns the
// surviving diagnostics and the well-formed directives that suppressed
// nothing (the drivers report those as suppression-hygiene findings).
// Malformed directives never suppress and are never "unused" — the ignores
// analyzer already flags their form.
func ApplyIgnores(diags []UnitDiagnostic, ignores []IgnoreDirective) (kept []UnitDiagnostic, unused []IgnoreDirective) {
	used := make([]bool, len(ignores))
	for _, d := range diags {
		suppressed := false
		for i, ig := range ignores {
			if !ig.WellFormed() || ig.Pass != d.Analyzer || ig.File != d.Pos.Filename {
				continue
			}
			if d.Pos.Line == ig.Line || d.Pos.Line == ig.Line+1 {
				used[i] = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for i, ig := range ignores {
		if ig.WellFormed() && !used[i] {
			unused = append(unused, ig)
		}
	}
	return kept, unused
}
