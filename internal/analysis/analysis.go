// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary, just large enough to host the
// cpelint pass suite (cmd/cpelint).
//
// The x/tools module is deliberately not vendored: the simulator has no
// third-party dependencies, and the subset cpelint needs — an Analyzer with
// a Run function over one type-checked package, plus a diagnostic sink — is
// small. Drivers (cmd/cpelint for real packages, the analysistest package
// for fixtures) construct a Pass per compilation unit and collect the
// diagnostics each analyzer reports.
//
// The invariants the passes enforce, and why each one exists, are documented
// in DESIGN.md §12 ("Static invariants").
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// PassNames lists the analyzers of the cpelint suite, in report order. The
// ignores pass validates //cpelint:ignore directives against this list, and
// the suite registry asserts it stays in sync.
var PassNames = []string{
	"determinism", "eventsafety", "errpanic",
	"noalloc", "unitsafety", "ctxflow", "exhaustive",
	"ignores",
}

// KnownPass reports whether name is an analyzer of the suite.
func KnownPass(name string) bool {
	for _, n := range PassNames {
		if n == name {
			return true
		}
	}
	return false
}

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //cpelint:ignore directives. It must appear in PassNames.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// Run applies the analyzer to one compilation unit and reports
	// findings through pass.Report. It returns an error only for
	// analyzer-internal failures, never for findings.
	Run func(pass *Pass) error
}

// A Pass is one analyzer's view of one type-checked compilation unit.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// GoVersion is the effective language version of the unit
	// ("go1.22"); passes that enforce pre-1.22 semantics (loop-variable
	// capture) consult it.
	GoVersion string

	// Report delivers one finding to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, positioned within the pass's FileSet.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A UnitDiagnostic is a driver-side diagnostic annotated with the analyzer
// that produced it and its resolved source position.
type UnitDiagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d UnitDiagnostic) String() string {
	return d.Pos.String() + ": [" + d.Analyzer + "] " + d.Message
}

// RunUnit applies every analyzer to one compilation unit, then applies the
// unit's //cpelint:ignore directives: suppressed findings are dropped, and
// every well-formed directive that suppressed nothing becomes an "ignores"
// diagnostic itself (suppression hygiene — stale escape hatches rot into
// lies about what the code does).
func RunUnit(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, goVersion string, analyzers []*Analyzer) ([]UnitDiagnostic, error) {
	var diags []UnitDiagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			GoVersion: goVersion,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			diags = append(diags, UnitDiagnostic{
				Analyzer: name,
				Pos:      fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	ignores := CollectIgnores(fset, files)
	kept, unused := ApplyIgnores(diags, ignores)
	for _, ig := range unused {
		kept = append(kept, UnitDiagnostic{
			Analyzer: "ignores",
			Pos:      fset.Position(ig.Pos),
			Message:  "unused cpelint:ignore directive for pass " + strconv.Quote(ig.Pass) + ": nothing suppressed on this or the next line",
		})
	}
	return kept, nil
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// CalleeFunc resolves the static callee of call, or nil when the callee is
// not a declared function or method (builtins, function values, conversions).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether fn is the package-level function pkgPath.name
// (not a method).
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// IsEngineMethod reports whether fn is a method with the given name whose
// receiver is the event engine (a type named Engine declared in a package
// named event). The package is matched by name rather than import path so
// analysistest fixtures can provide a stub event package.
func IsEngineMethod(fn *types.Func, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Name() != "event" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Engine"
}

// LangVersionBefore reports whether goVersion (a "go1.N" string) is known to
// be strictly before "go1.minor". Unknown or unparsable versions report
// false: the driver feeds the module's declared language version, and when
// in doubt the passes assume current semantics rather than invent findings.
func LangVersionBefore(goVersion string, minor int) bool {
	s, ok := strings.CutPrefix(goVersion, "go1.")
	if !ok {
		return false
	}
	// Trim patch releases and release candidates: "go1.21.3", "go1.21rc1".
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			s = s[:i]
			break
		}
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return false
	}
	return n < minor
}
