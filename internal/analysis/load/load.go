// Package load turns `go list` output into type-checked compilation units
// for the cpelint driver — a dependency-free stand-in for
// golang.org/x/tools/go/packages.
//
// It shells out to `go list -e -export -deps -test -json`, which compiles
// (or reuses from the build cache) export data for every dependency, then
// parses each requested unit's sources and type-checks them with the
// standard library's gc importer reading that export data. Test variants
// are analyzed the way the go tool builds them: a package with in-package
// tests is analyzed once as "p [p.test]" (GoFiles + TestGoFiles, so every
// file is seen exactly once), and external _test packages are analyzed as
// their own unit with imports remapped through go list's ImportMap.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Unit is one type-checked compilation unit ready for analysis.
type Unit struct {
	ImportPath string // as listed, possibly "p [p.test]"
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	GoVersion  string // language version, "go1.22"
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	ForTest    string
	Incomplete bool
	Module     *struct{ GoVersion string }
	Error      *struct{ Err string }
}

// ErrLoad wraps failures to enumerate, parse, or type-check packages.
var ErrLoad = errors.New("cpelint: load")

// Packages loads and type-checks the units matched by patterns, resolved
// relative to dir (the module root). Standard-library packages and generated
// test mains are never returned.
func Packages(dir string, patterns []string) ([]*Unit, error) {
	args := []string{
		"list", "-e", "-export", "-deps", "-test",
		"-json=ImportPath,Name,Dir,Export,GoFiles,CgoFiles,Imports,ImportMap,Standard,DepOnly,ForTest,Incomplete,Module,Error",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("%w: go list: %v\n%s", ErrLoad, err, stderr.String())
	}

	exports := map[string]string{} // listed ImportPath (incl. bracketed variants) -> export file
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("%w: decoding go list output: %v", ErrLoad, err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		pkgs = append(pkgs, p)
	}

	// A package with in-package tests appears both plain and as
	// "p [p.test]"; analyze only the test-expanded variant so each file is
	// seen once.
	expanded := map[string]bool{}
	for _, p := range pkgs {
		if p.ForTest != "" && p.Name != "main" && !strings.HasSuffix(p.Name, "_test") &&
			strings.HasSuffix(p.ImportPath, "]") {
			expanded[p.ForTest] = true
		}
	}

	fset := token.NewFileSet()
	var units []*Unit
	var loadErrs []string
	for _, p := range pkgs {
		switch {
		case p.Standard || p.DepOnly:
			continue
		case strings.HasSuffix(p.ImportPath, ".test"):
			continue // generated test main
		case expanded[p.ImportPath]:
			continue // superseded by its "p [p.test]" variant
		}
		if p.Error != nil {
			loadErrs = append(loadErrs, p.ImportPath+": "+p.Error.Err)
			continue
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		if len(p.CgoFiles) > 0 {
			// No cgo in this module; refuse rather than analyze a partial
			// package silently.
			loadErrs = append(loadErrs, p.ImportPath+": cgo packages are not supported by cpelint")
			continue
		}
		u, err := check(fset, p, exports)
		if err != nil {
			loadErrs = append(loadErrs, err.Error())
			continue
		}
		units = append(units, u)
	}
	if len(loadErrs) > 0 {
		return nil, fmt.Errorf("%w:\n  %s", ErrLoad, strings.Join(loadErrs, "\n  "))
	}
	return units, nil
}

// check parses and type-checks one unit against the collected export data.
func check(fset *token.FileSet, p *listPkg, exports map[string]string) (*Unit, error) {
	var files []*ast.File
	for _, gf := range p.GoFiles {
		if !filepath.IsAbs(gf) {
			gf = filepath.Join(p.Dir, gf)
		}
		f, err := parser.ParseFile(fset, gf, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := p.ImportMap[path]; ok {
			path = mapped
		}
		ef, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(ef)
	}
	goVersion := "go1.22"
	if p.Module != nil && p.Module.GoVersion != "" {
		goVersion = "go" + p.Module.GoVersion
	}
	var typeErrs []string
	conf := types.Config{
		// A fresh importer per unit: the gc importer caches by import
		// path, and test variants remap the same path to different export
		// data.
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		GoVersion: goVersion,
		Error: func(err error) {
			if len(typeErrs) < 10 {
				typeErrs = append(typeErrs, err.Error())
			}
		},
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	importPath := p.ImportPath
	if i := strings.IndexByte(importPath, ' '); i > 0 {
		importPath = importPath[:i] // "p [p.test]" type-checks as path p
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("%s: type errors:\n    %s", p.ImportPath, strings.Join(typeErrs, "\n    "))
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
	}
	return &Unit{
		ImportPath: p.ImportPath,
		Dir:        p.Dir,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
		GoVersion:  goVersion,
	}, nil
}
