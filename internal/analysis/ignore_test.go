package analysis

import (
	"go/token"
	"testing"
)

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		text         string
		pass, reason string
		ok           bool
	}{
		{"//cpelint:ignore errpanic demo code", "errpanic", "demo code", true},
		{"//cpelint:ignore errpanic", "errpanic", "", true},
		{"//cpelint:ignore", "", "", true},
		{"//cpelint:ignore determinism multi word reason", "determinism", "multi word reason", true},
		{"//cpelint:ignore errpanic reason // want `x`", "errpanic", "reason", true},
		{"//cpelint:ignorexyz foo", "", "", false},
		{"// plain comment", "", "", false},
	}
	for _, c := range cases {
		pass, reason, ok := ParseIgnore(c.text)
		if pass != c.pass || reason != c.reason || ok != c.ok {
			t.Errorf("ParseIgnore(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.text, pass, reason, ok, c.pass, c.reason, c.ok)
		}
	}
}

func TestApplyIgnores(t *testing.T) {
	d := func(pass, file string, line int) UnitDiagnostic {
		return UnitDiagnostic{Analyzer: pass, Pos: token.Position{Filename: file, Line: line}}
	}
	ig := func(pass, reason, file string, line int) IgnoreDirective {
		return IgnoreDirective{File: file, Line: line, Pass: pass, Reason: reason}
	}

	// Suppresses on the directive's own line and the line below, same pass
	// and file only.
	diags := []UnitDiagnostic{
		d("errpanic", "a.go", 10),    // same line as directive
		d("errpanic", "a.go", 11),    // line below directive
		d("errpanic", "a.go", 12),    // out of range
		d("determinism", "a.go", 10), // wrong pass
		d("errpanic", "b.go", 10),    // wrong file
	}
	kept, unused := ApplyIgnores(diags, []IgnoreDirective{ig("errpanic", "reason", "a.go", 10)})
	if len(kept) != 3 {
		t.Errorf("kept = %v, want 3 surviving diagnostics", kept)
	}
	if len(unused) != 0 {
		t.Errorf("unused = %v, want none (directive suppressed two findings)", unused)
	}

	// A malformed directive (no reason) never suppresses and is never
	// reported as unused — the ignores pass flags its form instead.
	kept, unused = ApplyIgnores(diags[:1], []IgnoreDirective{ig("errpanic", "", "a.go", 10)})
	if len(kept) != 1 || len(unused) != 0 {
		t.Errorf("malformed directive: kept %d unused %d, want 1 and 0", len(kept), len(unused))
	}

	// A well-formed directive that suppresses nothing is unused.
	_, unused = ApplyIgnores(nil, []IgnoreDirective{ig("errpanic", "stale", "a.go", 10)})
	if len(unused) != 1 {
		t.Errorf("unused = %v, want the stale directive", unused)
	}
}

func TestLangVersionBefore(t *testing.T) {
	cases := []struct {
		v     string
		minor int
		want  bool
	}{
		{"go1.21", 22, true},
		{"go1.21.3", 22, true},
		{"go1.21rc1", 22, true},
		{"go1.22", 22, false},
		{"go1.23", 22, false},
		{"", 22, false},
		{"weird", 22, false},
	}
	for _, c := range cases {
		if got := LangVersionBefore(c.v, c.minor); got != c.want {
			t.Errorf("LangVersionBefore(%q, %d) = %v, want %v", c.v, c.minor, got, c.want)
		}
	}
}

func TestKnownPass(t *testing.T) {
	for _, n := range PassNames {
		if !KnownPass(n) {
			t.Errorf("KnownPass(%q) = false", n)
		}
	}
	if KnownPass("nosuchpass") {
		t.Error(`KnownPass("nosuchpass") = true`)
	}
}
