package suite_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

func TestRegistryMirrorsPassNames(t *testing.T) {
	if err := suite.Validate(); err != nil {
		t.Fatal(err)
	}
	as := suite.Analyzers()
	if len(as) != len(analysis.PassNames) {
		t.Fatalf("suite has %d analyzers, PassNames has %d", len(as), len(analysis.PassNames))
	}
	for i, a := range as {
		if a.Name != analysis.PassNames[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, analysis.PassNames[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing Doc or Run", a.Name)
		}
	}
}
