// Package suite registers the cpelint analyzers in their canonical order.
// cmd/cpelint and the analysistest harness both consume this list, so a new
// pass added here is automatically enforced by CI and testable by fixtures.
package suite

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/ctxflow"
	"repro/internal/analysis/passes/determinism"
	"repro/internal/analysis/passes/errpanic"
	"repro/internal/analysis/passes/eventsafety"
	"repro/internal/analysis/passes/exhaustive"
	"repro/internal/analysis/passes/ignores"
	"repro/internal/analysis/passes/noalloc"
	"repro/internal/analysis/passes/unitsafety"
)

// Analyzers returns the cpelint pass suite.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		eventsafety.Analyzer,
		errpanic.Analyzer,
		noalloc.Analyzer,
		unitsafety.Analyzer,
		ctxflow.Analyzer,
		exhaustive.Analyzer,
		ignores.Analyzer,
	}
}

// Validate checks that the registry mirrors analysis.PassNames — the list
// //cpelint:ignore directives are validated against. A mismatch would make
// the directive checker accept (or reject) the wrong pass names, so drivers
// call this once at startup.
func Validate() error {
	as := Analyzers()
	if len(as) != len(analysis.PassNames) {
		return fmt.Errorf("cpelint suite: %d analyzers registered but %d pass names declared", len(as), len(analysis.PassNames))
	}
	for i, a := range as {
		if a.Name != analysis.PassNames[i] {
			return fmt.Errorf("cpelint suite: analyzer %d is %q, pass name list says %q", i, a.Name, analysis.PassNames[i])
		}
	}
	return nil
}
