// Package notsim is not simulation-critical (its base name is not in
// determinism.SimCritical): the farm and server legitimately read the wall
// clock for timeouts and jitter, so nothing here is a finding.
package notsim

import (
	"math/rand"
	"time"
)

// Jitter returns a random backoff, as the farm's retry loop does.
func Jitter() time.Duration { return time.Duration(rand.Intn(50)) * time.Millisecond }

// Now reads the wall clock.
func Now() time.Time { return time.Now() }
