// Package gen exercises //cpelint:ignore suppression against a real
// determinism finding: the directive absorbs the diagnostic on the next
// line, and because it suppressed something it is not an unused directive.
package gen

import "time"

// BuildStamp may read the wall clock: it is advisory metadata that never
// feeds a simulation result.
func BuildStamp() time.Time {
	//cpelint:ignore determinism advisory metadata, never feeds results
	return time.Now()
}

// Unstamped shows the finding the directive above would have produced.
func Unstamped() time.Time {
	return time.Now() // want `time\.Now in simulation-critical package gen`
}
