package cp

import (
	"testing"
	"time"
)

func TestWallClockAllowed(t *testing.T) {
	_ = time.Now() // test files are exempt from the determinism pass
}
