// Package cp is a simulation-critical fixture (its base name is in
// determinism.SimCritical): every determinism rule fires somewhere below,
// next to the idioms the pass must accept.
package cp

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"event"
)

func clocks() time.Time {
	t := time.Now()   // want `time\.Now in simulation-critical package cp`
	_ = time.Since(t) // want `time\.Since in simulation-critical package cp`
	return t
}

func randoms() int {
	r := rand.New(rand.NewSource(7)) // seeded constructors are fine
	_ = r.Intn(8)                    // methods on an explicit *rand.Rand are fine
	return rand.Intn(8)              // want `global rand\.Intn in simulation-critical package cp`
}

func orderedFromMap(m map[string]int, w *strings.Builder, e *event.Engine) []string {
	var bad []string
	var s string
	for k := range m {
		bad = append(bad, k)      // want `append to "bad" inside map iteration without a later sort`
		s += k                    // want `string concatenation onto "s" inside map iteration`
		fmt.Println(k)            // want `fmt\.Println inside map iteration`
		w.WriteString(k)          // want `Builder\.WriteString inside map iteration`
		_ = e.Schedule(1, nil, k) // want `event\.Engine\.Schedule inside map iteration`
	}

	// The sorted-keys idiom: append inside the range, sort before use.
	var good []string
	for k := range m {
		good = append(good, k)
	}
	sort.Strings(good)

	// Loop-local accumulation cannot leak iteration order.
	for k, v := range m {
		kv := []string{k}
		kv = append(kv, fmt.Sprint(v))
		_ = kv
	}
	_ = s
	return append(bad, good...)
}
