// Package determinism implements the cpelint pass that keeps the simulation
// core replayable: byte-identical Report.ImageHash across runs (DESIGN §11),
// content-addressed farm cache keys (DESIGN §9), and seeded fault streams
// (DESIGN §10) all assume that nothing in a run depends on wall-clock time,
// an unseeded random source, or Go's randomized map iteration order.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"

	"repro/internal/analysis"
)

// Analyzer is the determinism pass.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, unseeded rand, and order-dependent map iteration " +
		"in simulation-critical packages",
	Run: run,
}

// SimCritical names the packages (by base name) whose code must be
// deterministic: everything a simulation result, report, or cache key is
// computed from. The experiment farm (internal/farm) and the HTTP server
// legitimately read the wall clock for timeouts and jitter and are excluded;
// they must never feed wall-clock values back into a simulation.
var SimCritical = map[string]bool{
	// The ISSUE 5 core set: the event engine and everything it drives.
	"event": true, "gpu": true, "cp": true, "core": true, "coherence": true,
	"hmg": true, "mem": true, "oracle": true, "gen": true, "faults": true,
	"noc": true, "stats": true,
	// The rest of the result path: workload construction, machine assembly,
	// figure harnesses, trace artifacts, and the CLI entry points that write
	// ordered reports.
	"kernels": true, "workloads": true, "machine": true, "config": true,
	"energy": true, "hip": true, "trace": true, "experiments": true,
	"repro": true, "sweep": true, "crosscheck": true, "paper-figures": true,
	"inspect": true, "cpelide-sim": true,
}

// rand constructors that are fine: they produce a source from an explicit
// seed (the seed expression is checked separately — time.Now inside it is
// caught by the wall-clock rule).
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if !SimCritical[path.Base(pass.Pkg.Path())] {
		return nil
	}
	for _, f := range pass.Files {
		// Test files are exempt: reproducibility claims are made about
		// library code, and tests already pin their own seeds.
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFuncBody(pass, n.Body)
				}
				return true
			case *ast.CallExpr:
				checkCall(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkCall flags wall-clock reads and global (unseeded) rand calls.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(),
				"time.%s in simulation-critical package %s: simulated time must come from the event engine clock, never the wall clock",
				fn.Name(), pass.Pkg.Name())
		}
	case "math/rand", "math/rand/v2":
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			return // methods on an explicitly-constructed *rand.Rand are fine
		}
		if randConstructors[fn.Name()] {
			return
		}
		pass.Reportf(call.Pos(),
			"global rand.%s in simulation-critical package %s: use a seeded source (rand.New(rand.NewSource(seed))) so runs replay",
			fn.Name(), pass.Pkg.Name())
	}
}

// checkFuncBody finds range-over-map statements whose body leaks the
// iteration order into an ordered artifact: a slice append (unless the slice
// is sorted later in the same function), ordered text output, a hash, or the
// event calendar.
func checkFuncBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, body, rng)
		return true
	})
}

func checkMapRangeBody(pass *analysis.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkOrderedAssign(pass, funcBody, rng, n)
		case *ast.CallExpr:
			checkOrderedCall(pass, rng, n)
		}
		return true
	})
}

// checkOrderedAssign flags `s = append(s, ...)` and `s += ...` (string
// accumulation) where s outlives the loop, unless s is sorted afterwards in
// the same function.
func checkOrderedAssign(pass *analysis.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt, as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN:
		obj := outerObj(pass, rng, as.Lhs[0])
		if obj == nil {
			return
		}
		if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
			pass.Reportf(as.Pos(),
				"string concatenation onto %q inside map iteration: the result depends on Go's randomized map order; iterate sorted keys instead",
				obj.Name())
		}
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass.TypesInfo, call) || i >= len(as.Lhs) {
				continue
			}
			obj := outerObj(pass, rng, as.Lhs[i])
			if obj == nil {
				continue
			}
			if sortedInFunc(pass, funcBody, obj, rng.End()) {
				continue // the sorted-keys idiom: append then sort
			}
			pass.Reportf(as.Pos(),
				"append to %q inside map iteration without a later sort: the slice order depends on Go's randomized map order; sort it (or the keys) before use",
				obj.Name())
		}
	}
}

// checkOrderedCall flags calls inside a map-range body that emit ordered or
// hashed output, or schedule events, in iteration order.
func checkOrderedCall(pass *analysis.Pass, rng *ast.RangeStmt, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	switch {
	case fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && !isMethod &&
		(hasPrefix(fn.Name(), "Fprint") || hasPrefix(fn.Name(), "Print")):
		pass.Reportf(call.Pos(),
			"fmt.%s inside map iteration writes output in Go's randomized map order; iterate sorted keys instead",
			fn.Name())
	case isMethod && writerMethods[fn.Name()]:
		pass.Reportf(call.Pos(),
			"%s.%s inside map iteration feeds bytes in Go's randomized map order (ordered artifacts and hashes — ImageHash, farm cache keys — must not depend on it); iterate sorted keys instead",
			recvTypeName(sig), fn.Name())
	case analysis.IsEngineMethod(fn, "Schedule") || analysis.IsEngineMethod(fn, "ScheduleAfter"):
		pass.Reportf(call.Pos(),
			"event.Engine.%s inside map iteration: same-cycle events tie-break by insertion order, so scheduling from a map range makes delivery order run-dependent; iterate sorted keys instead",
			fn.Name())
	}
}

// writerMethods are method names that append bytes to an ordered sink:
// io.Writer implementations, strings.Builder/bytes.Buffer, and hash.Hash
// (whose Write is how content reaches ImageHash-style digests).
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// outerObj resolves e to a named variable declared outside the range
// statement, or nil: mutations of loop-local state cannot leak iteration
// order.
func outerObj(pass *analysis.Pass, rng *ast.RangeStmt, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil || obj.Pos() == token.NoPos {
		return nil
	}
	if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
		return nil
	}
	return obj
}

// sortedInFunc reports whether obj is passed to a sort.* or slices.Sort*
// call somewhere after the range statement in the same function body — the
// append-keys-then-sort idiom that makes map iteration order irrelevant.
func sortedInFunc(pass *analysis.Pass, funcBody *ast.BlockStmt, obj types.Object, after token.Pos) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			argFound := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					argFound = true
				}
				return !argFound
			})
			if argFound {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
