package determinism_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/determinism"
	"repro/internal/analysis/passes/ignores"
)

func TestSimCriticalPackage(t *testing.T) {
	analysistest.Run(t, "testdata", "cp", determinism.Analyzer)
}

func TestNonCriticalPackageExempt(t *testing.T) {
	analysistest.Run(t, "testdata", "notsim", determinism.Analyzer)
}

func TestIgnoreDirectiveSuppresses(t *testing.T) {
	analysistest.Run(t, "testdata", "gen", determinism.Analyzer, ignores.Analyzer)
}
