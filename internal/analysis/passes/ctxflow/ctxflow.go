// Package ctxflow implements the cpelint pass that enforces context hygiene
// in the distributed layers (packages farm, cluster, and server). ROADMAP
// item 5 (componentized parallel engine) will multiply goroutines; the two
// failure modes this pass exists to stop both manifest as goroutine leaks
// that no unit test catches:
//
//   - context laundering: a function that already receives a ctx calls
//     context.Background() or context.TODO(), minting a fresh root that
//     severs the caller's cancellation and deadline. Such a function must
//     derive from the ctx it holds (context.WithTimeout(ctx, ...)). Minting
//     a root is legitimate only in functions with no ctx parameter — the
//     coordinator's background reroute/replay goroutines own their own
//     lifetimes and are not flagged.
//
//   - unstoppable service loops: a `for { select { ... } }` loop with no
//     cancellation case spins until process exit. Every such select must
//     have at least one case receiving from a channel of element type
//     struct{} — which covers both ctx.Done() and the close-a-quit-channel
//     idiom (chan struct{}) the farm and coordinator use.
//
// Test files are exempt: tests mint context.Background() at the top level by
// design and their loops are bounded by test timeouts.
package ctxflow

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "in the farm/cluster/server packages, functions holding a context.Context must not mint " +
		"fresh roots via context.Background/TODO, and for{select} loops must include a " +
		"cancellation case (ctx.Done() or a struct{} quit channel)",
	Run: run,
}

// scopedPkgs are the package names the pass applies to: the layers that spawn
// goroutines and hold contexts. Matched by name so fixtures can use short
// package paths.
var scopedPkgs = map[string]bool{
	"farm":    true,
	"cluster": true,
	"server":  true,
}

func run(pass *analysis.Pass) error {
	if !scopedPkgs[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		if len(f.Decls) > 0 && analysis.IsTestFile(pass.Fset, f.Decls[0].Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Name.Name, fd.Type, fd.Body)
		}
	}
	return nil
}

// checkFunc checks one function body against both rules, recursing into
// nested function literals with their own parameter lists (a goroutine
// closure without a ctx parameter may mint its own root).
func checkFunc(pass *analysis.Pass, name string, ft *ast.FuncType, body *ast.BlockStmt) {
	holdsCtx := hasCtxParam(pass, ft)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkFunc(pass, name+" (closure)", n.Type, n.Body)
			return false
		case *ast.CallExpr:
			if holdsCtx {
				checkRootMint(pass, name, n)
			}
		case *ast.ForStmt:
			checkSelectLoop(pass, name, n)
		}
		return true
	})
}

// hasCtxParam reports whether the function's own parameters include a
// context.Context.
func hasCtxParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isContextType(pass.TypesInfo.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkRootMint flags context.Background()/context.TODO() inside a function
// that already holds a ctx parameter.
func checkRootMint(pass *analysis.Pass, name string, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	if analysis.IsPkgFunc(fn, "context", "Background") || analysis.IsPkgFunc(fn, "context", "TODO") {
		pass.Reportf(call.Pos(),
			"context.%s() in %s severs the caller's cancellation: the function already has a ctx parameter, derive from it",
			fn.Name(), name)
	}
}

// checkSelectLoop flags an unconditional for loop whose body is built around
// a select with no cancellation case.
func checkSelectLoop(pass *analysis.Pass, name string, loop *ast.ForStmt) {
	if loop.Cond != nil || loop.Init != nil || loop.Post != nil {
		return
	}
	for _, stmt := range loop.Body.List {
		sel, ok := stmt.(*ast.SelectStmt)
		if !ok {
			continue
		}
		if !hasCancelCase(pass, sel) {
			pass.Reportf(sel.Pos(),
				"for-select loop in %s has no cancellation case; add a ctx.Done() or quit-channel receive", name)
		}
	}
}

// hasCancelCase reports whether any select case receives from a channel of
// element type struct{} — the shape of both ctx.Done() and a quit channel.
func hasCancelCase(pass *analysis.Pass, sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		var recv ast.Expr
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			recv = comm.X
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				recv = comm.Rhs[0]
			}
		}
		ue, ok := ast.Unparen(recv).(*ast.UnaryExpr)
		if !ok {
			continue
		}
		t := pass.TypesInfo.TypeOf(ue.X)
		if t == nil {
			continue
		}
		ch, ok := t.Underlying().(*types.Chan)
		if !ok {
			continue
		}
		if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
			return true
		}
	}
	return false
}
