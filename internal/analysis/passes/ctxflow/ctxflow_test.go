package ctxflow_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/ctxflow"
)

func TestScopedPackage(t *testing.T) {
	analysistest.Run(t, "testdata", "farm", ctxflow.Analyzer)
}

func TestOutOfScopePackageExempt(t *testing.T) {
	analysistest.Run(t, "testdata", "sim", ctxflow.Analyzer)
}
