// Package sim is outside the ctxflow scope (not farm/cluster/server): the
// same shapes report nothing.
package sim

import "context"

func Run(ctx context.Context) error {
	c := context.Background() // out of scope: no finding
	_ = c
	return ctx.Err()
}

func Spin(ticks chan int) {
	for {
		select { // out of scope: no finding
		case t := <-ticks:
			_ = t
		}
	}
}
