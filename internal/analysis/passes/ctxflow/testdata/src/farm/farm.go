// Package farm exercises the ctxflow pass inside a scoped package: context
// laundering and unstoppable select loops, plus the idioms that must stay
// silent.
package farm

import (
	"context"
	"time"
)

type Farm struct {
	quit  chan struct{}
	tasks chan int
}

// Submit holds a ctx: minting a fresh root severs the caller's deadline.
func (f *Farm) Submit(ctx context.Context, job int) error {
	c, cancel := context.WithTimeout(context.Background(), time.Second) // want `context.Background\(\) in Submit severs the caller's cancellation`
	defer cancel()
	_ = c
	d, cancel2 := context.WithTimeout(ctx, time.Second) // deriving from ctx: the fix
	defer cancel2()
	return d.Err()
}

// Launch has no ctx parameter; it owns its lifetime and may mint a root.
func (f *Farm) Launch(job int) error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return ctx.Err()
}

// reap is a goroutine body: its closure has no ctx parameter, so the root
// minted inside is the closure's own business even though reap holds a ctx.
func (f *Farm) reap(ctx context.Context) {
	go func() {
		c := context.Background()
		_ = c
	}()
	_ = ctx
}

// worker loops forever with a quit-channel case: allowed.
func (f *Farm) worker() {
	for {
		select {
		case t := <-f.tasks:
			_ = t
		case <-f.quit:
			return
		}
	}
}

// spin loops forever with no way to stop it.
func (f *Farm) spin(ticks chan time.Time) {
	for {
		select { // want `for-select loop in spin has no cancellation case`
		case t := <-ticks:
			_ = t
		}
	}
}

// poll loops over a select with a ctx.Done() case: allowed.
func (f *Farm) poll(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case t := <-f.tasks:
			_ = t
		}
	}
}

// drain is a bounded loop (it has a condition), not a service loop: exempt.
func (f *Farm) drain(n int) {
	for i := 0; i < n; i++ {
		select {
		case t := <-f.tasks:
			_ = t
		default:
		}
	}
}
