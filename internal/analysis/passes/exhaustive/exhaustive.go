// Package exhaustive implements the cpelint pass that keeps switches over
// the simulator's enum-like constant blocks total. The CPElide elision
// argument is a case analysis — every protocol kind, calendar kind, fault
// kind, and journal record type must be handled somewhere — and a switch
// that silently falls through for a newly added constant turns an
// incomplete analysis into a silent wrong answer instead of a loud one.
//
// A switch whose tag has a defined type from this module with two or more
// package-level constants of that exact type must either:
//
//   - list every declared constant value among its cases (aliases with the
//     same value count as covered together), or
//   - carry a default clause with a non-empty body — an explicit "this
//     value is unexpected" path (return an error, panic, count a stat).
//     An empty default is flagged too: it documents nothing and swallows
//     the new constant just as silently as no default.
//
// Sentinel constants whose name starts with "num" (stats.numCounters, the
// dense-array-size idiom) are not part of the enum and need no case. Test
// files are exempt: a test switching on two of five kinds is asserting those
// two, not analyzing all five.
package exhaustive

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the exhaustive pass.
var Analyzer = &analysis.Analyzer{
	Name: "exhaustive",
	Doc: "switches over enum-like const blocks (protocol, calendar kind, fault kind, journal record " +
		"type, ...) must cover every declared constant or carry a non-empty default clause",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if len(f.Decls) > 0 && analysis.IsTestFile(pass.Fset, f.Decls[0].Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if ok && sw.Tag != nil {
				checkSwitch(pass, sw)
			}
			return true
		})
	}
	return nil
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	t := pass.TypesInfo.TypeOf(sw.Tag)
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !inModule(pass, obj.Pkg()) {
		return
	}
	enum := enumConsts(named)
	if len(enum) < 2 {
		return
	}
	covered := map[string]bool{}
	var deflt *ast.CaseClause
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			deflt = cc
			continue
		}
		for _, e := range cc.List {
			if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}
	if deflt != nil {
		if len(deflt.Body) == 0 {
			pass.Reportf(deflt.Pos(),
				"switch over %s has an empty default: handle the unexpected value explicitly (error, panic, or counter)",
				obj.Name())
		}
		return
	}
	var missing []string
	seen := map[string]bool{}
	for _, c := range enum {
		v := c.Val().ExactString()
		if covered[v] || seen[v] {
			continue
		}
		seen[v] = true
		missing = append(missing, c.Name())
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Pos(),
		"switch over %s is not exhaustive: missing %s (cover them or add a default that rejects unexpected values)",
		obj.Name(), strings.Join(missing, ", "))
}

// inModule reports whether pkg is part of the module under analysis: the
// unit's own package, or any package under the repro module path. Fixtures
// place cross-package enum stubs under a "repro/" path for the same reason.
func inModule(pass *analysis.Pass, pkg *types.Package) bool {
	return pkg == pass.Pkg || pkg.Path() == pass.Pkg.Path() ||
		strings.HasPrefix(pkg.Path(), "repro/")
}

// enumConsts returns the package-level constants declared with exactly the
// named type, excluding "num"-prefixed array-size sentinels.
func enumConsts(named *types.Named) []*types.Const {
	scope := named.Obj().Pkg().Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if strings.HasPrefix(c.Name(), "num") {
			continue
		}
		out = append(out, c)
	}
	return out
}
