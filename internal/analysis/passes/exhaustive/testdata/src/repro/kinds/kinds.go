// Package kinds is a fixture stub: an enum defined in another module package,
// imported by the unit under test.
package kinds

// Fault is an injected failure class.
type Fault int

const (
	FaultNone Fault = iota
	FaultCrash
	FaultPartition
	numFaults // sentinel: not part of the enum
)
