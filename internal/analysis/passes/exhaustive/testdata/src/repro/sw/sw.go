// Package sw exercises the exhaustive pass: partial switches over local and
// imported enums, empty defaults, and the total switches that stay silent.
package sw

import (
	"errors"

	"repro/kinds"
)

// Protocol is a same-package enum.
type Protocol int

const (
	Baseline Protocol = iota
	Elide
	Writeback
	// Aliased shares Elide's value: covering either name covers both.
	Aliased = Elide
)

func partial(p Protocol) string {
	switch p { // want `switch over Protocol is not exhaustive: missing Writeback`
	case Baseline:
		return "baseline"
	case Elide:
		return "elide"
	}
	return ""
}

func total(p Protocol) string {
	switch p {
	case Baseline:
		return "baseline"
	case Aliased: // alias name covers the Elide value
		return "elide"
	case Writeback:
		return "writeback"
	}
	return ""
}

func defaulted(p Protocol) (string, error) {
	switch p {
	case Baseline:
		return "baseline", nil
	default:
		return "", errors.New("unexpected protocol")
	}
}

func emptyDefault(p Protocol) string {
	switch p {
	case Baseline:
		return "baseline"
	default: // want `switch over Protocol has an empty default`
	}
	return ""
}

func imported(f kinds.Fault) string {
	switch f { // want `switch over Fault is not exhaustive: missing FaultPartition`
	case kinds.FaultNone:
		return "none"
	case kinds.FaultCrash:
		return "crash"
	}
	return ""
}

// importedTotal covers the enum without naming numFaults: sentinels are
// excluded from the requirement.
func importedTotal(f kinds.Fault) string {
	switch f {
	case kinds.FaultNone, kinds.FaultCrash, kinds.FaultPartition:
		return "known"
	}
	return ""
}

// notEnum has one constant only: not enum-like, never checked.
type notEnum int

const only notEnum = 0

func single(x notEnum) bool {
	switch x {
	case only:
		return true
	}
	return false
}

// untypedSwitch tags a plain int: out of scope.
func untypedSwitch(n int) bool {
	switch n {
	case 1:
		return true
	}
	return false
}
