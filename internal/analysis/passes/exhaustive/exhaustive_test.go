package exhaustive_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/exhaustive"
)

func TestSwitches(t *testing.T) {
	analysistest.Run(t, "testdata", "repro/sw", exhaustive.Analyzer)
}
