// Package units exercises the unitsafety pass: unit-laundering conversions
// and dimensionally invalid arithmetic, plus the span math that must stay
// silent.
package units

import (
	"event"
	"mem"
)

func launder(t event.Time, a mem.Addr) {
	_ = event.Time(a)         // want `conversion from mem.Addr to event.Time mixes units`
	_ = mem.Addr(t)           // want `conversion from event.Time to mem.Addr mixes units`
	_ = event.Time(uint64(a)) // want `conversion chain launders mem.Addr into event.Time through uint64`
	_ = mem.Addr(uint64(t))   // want `conversion chain launders event.Time into mem.Addr through uint64`
}

func legitimate(t event.Time, a mem.Addr, bytes uint64, n int) {
	_ = mem.Addr(bytes)      // plain count to unit: the blessed idiom
	_ = event.Time(n)        // plain count to unit
	_ = uint64(a)            // unit down to count
	_ = a + mem.Addr(bytes)  // base + offset
	_ = uint64(a - 0x1000)   // span math
	_ = t + event.Time(n)*10 // scaled count added to a timestamp
}

func dimensional(t, u event.Time, a, b mem.Addr) {
	_ = a * b // want `mem.Addr \* mem.Addr is dimensionally invalid`
	_ = t / u // want `event.Time / event.Time is dimensionally invalid`
	_ = a % b // want `mem.Addr % mem.Addr is dimensionally invalid`
	_ = a - b // difference of addresses is a span: allowed
	_ = t + u // sums stay silent (merging timestamps is the caller's business)
	_ = a * 2 // constant scale factor: allowed
	_ = 4 * t // constant scale factor: allowed
}
