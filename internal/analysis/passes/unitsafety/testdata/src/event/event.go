// Package event is a fixture stub: just the unit type.
package event

// Time is a simulated-cycle timestamp.
type Time uint64
