// Package mem is a fixture stub: just the unit type.
package mem

// Addr is a simulated byte address.
type Addr uint64
