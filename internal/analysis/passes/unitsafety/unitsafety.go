// Package unitsafety implements the cpelint pass that keeps the simulator's
// unsigned-integer domains apart. Simulated time (event.Time) and simulated
// addresses (mem.Addr) are both uint64 under the hood, and before mem.Addr
// became a defined type a cycle count could silently flow into address
// arithmetic (or vice versa) through any uint64 expression. The type
// promotion makes direct mixing a compile error; this pass closes the two
// holes the type system leaves open:
//
//   - unit laundering: converting one unit type directly to another
//     (event.Time(addr)), or through an intermediate plain-integer
//     conversion (event.Time(uint64(addr))). A value that genuinely changes
//     domain must go through a named variable or function whose meaning is
//     the conversion — never an inline cast chain.
//
//   - dimensionally invalid arithmetic: multiplying, dividing, or taking the
//     remainder of two values of the same unit type (Addr*Addr has units of
//     bytes², Time%Time of cycles²). Scaling is always unit × plain count;
//     the count operand must be converted down, not the unit operand
//     re-blessed.
//
// Differences and sums of one unit type (Hi-Lo span math, base+offset) are
// legitimate and stay silent. Unit types are matched by package name + type
// name so fixtures can stub the event and mem packages.
package unitsafety

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the unitsafety pass.
var Analyzer = &analysis.Analyzer{
	Name: "unitsafety",
	Doc: "flag conversions that launder one unit type (event.Time, mem.Addr) into another, " +
		"and dimensionally invalid arithmetic (unit*unit, unit/unit, unit%unit)",
	Run: run,
}

// unitTypes are the defined types that carry a physical dimension, keyed by
// declaring-package name then type name.
var unitTypes = map[string]map[string]bool{
	"event": {"Time": true},
	"mem":   {"Addr": true},
}

// unitName returns the qualified unit name ("event.Time") when t is one of
// the unit types, or "".
func unitName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	if unitTypes[obj.Pkg().Name()][obj.Name()] {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return ""
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkConversion(pass, n)
			case *ast.BinaryExpr:
				checkArith(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkConversion flags T(x) where T and x are different unit types, looking
// through one intermediate plain-integer conversion so
// event.Time(uint64(addr)) cannot launder the cast.
func checkConversion(pass *analysis.Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	dst := unitName(tv.Type)
	if dst == "" {
		return
	}
	arg := ast.Unparen(call.Args[0])
	src := unitName(typeOf(pass, arg))
	via := ""
	if src == "" {
		// One level of laundering: T(basic(x)) where x is a unit type.
		if inner, ok := arg.(*ast.CallExpr); ok && len(inner.Args) == 1 {
			if itv, ok := pass.TypesInfo.Types[inner.Fun]; ok && itv.IsType() {
				if b, ok := itv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
					src = unitName(typeOf(pass, ast.Unparen(inner.Args[0])))
					via = b.Name()
				}
			}
		}
	}
	if src == "" || src == dst {
		return
	}
	if via != "" {
		pass.Reportf(call.Pos(),
			"conversion chain launders %s into %s through %s; units must not cross via inline casts", src, dst, via)
		return
	}
	pass.Reportf(call.Pos(), "conversion from %s to %s mixes units; these domains must never meet", src, dst)
}

// checkArith flags unit*unit, unit/unit, and unit%unit: the result would be
// dimensionally meaningless (bytes², a dimensionless ratio re-blessed as a
// unit value). Sums and differences of one unit are legitimate span math.
func checkArith(pass *analysis.Pass, bin *ast.BinaryExpr) {
	switch bin.Op {
	case token.MUL, token.QUO, token.REM:
	default:
		return
	}
	lu := unitName(typeOf(pass, bin.X))
	ru := unitName(typeOf(pass, bin.Y))
	if lu == "" || lu != ru {
		return
	}
	// A constant operand is a scale factor that happens to inherit the unit
	// type from context (addr * 2); only flag value-value arithmetic.
	if isConst(pass, bin.X) || isConst(pass, bin.Y) {
		return
	}
	pass.Reportf(bin.Pos(),
		"%s %s %s is dimensionally invalid; convert one operand to a plain count first", lu, bin.Op, lu)
}

func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return types.Typ[types.Invalid]
	}
	return t
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}
