package unitsafety_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/unitsafety"
)

func TestUnits(t *testing.T) {
	analysistest.Run(t, "testdata", "units", unitsafety.Analyzer)
}
