package eventsafety_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/eventsafety"
)

func TestDelayExpressions(t *testing.T) {
	analysistest.Run(t, "testdata", "sched", eventsafety.Analyzer)
}

func TestLoopCapturePre122(t *testing.T) {
	analysistest.RunVersion(t, "testdata", "loop", "go1.21", eventsafety.Analyzer)
}

func TestLoopCaptureSafeAt122(t *testing.T) {
	analysistest.Run(t, "testdata", "loop122", eventsafety.Analyzer)
}

func TestEventRetention(t *testing.T) {
	analysistest.Run(t, "testdata", "retain", eventsafety.Analyzer)
}
