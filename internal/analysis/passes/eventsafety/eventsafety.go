// Package eventsafety implements the cpelint pass that guards the event
// engine's scheduling API. event.Time is an unsigned cycle count, so a
// delay computed by subtraction can underflow to ~1.8e19 cycles (an event
// that never fires) and a signed value converted at the call site can smuggle
// a negative delay in the same way. Handlers scheduled from loops must also
// not capture loop variables under pre-Go-1.22 semantics, where every
// iteration shares one variable and the handlers all observe its final value.
package eventsafety

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the eventsafety pass.
var Analyzer = &analysis.Analyzer{
	Name: "eventsafety",
	Doc: "flag delay expressions that can underflow or go negative when passed to " +
		"event.Engine.Schedule/ScheduleAfter, handler closures capturing loop " +
		"variables under pre-Go-1.22 semantics, and handlers taking the address " +
		"of their delivered event (the engine pools and recycles events)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	pre122 := analysis.LangVersionBefore(pass.GoVersion, 22)
	for _, f := range pass.Files {
		var loops []ast.Node // enclosing for/range statements, innermost last
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loops = append(loops, n)
				if f, ok := n.(*ast.ForStmt); ok {
					walkChildren(f, walk)
				} else {
					walkChildren(n, walk)
				}
				loops = loops[:len(loops)-1]
				return false
			case *ast.CallExpr:
				checkScheduleCall(pass, n, loops, pre122)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkEventRetention(pass, n.Type, n.Body)
				}
			case *ast.FuncLit:
				checkEventRetention(pass, n.Type, n.Body)
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil
}

// checkEventRetention flags handlers that take the address of their
// event.Event parameter. Handle receives the event by value precisely so the
// engine can recycle the delivered node into its pool the moment the handler
// returns; &e invites storing a pointer that outlives the delivery, and the
// copy's Payload may alias state the next delivery reuses. Handlers should
// copy the fields they need instead.
func checkEventRetention(pass *analysis.Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	if ft.Params == nil {
		return
	}
	eventParams := map[types.Object]bool{}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj != nil && isEventStruct(obj.Type()) {
				eventParams[obj] = true
			}
		}
	}
	if len(eventParams) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		u, ok := n.(*ast.UnaryExpr)
		if !ok || u.Op != token.AND {
			return true
		}
		id, ok := u.X.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil && eventParams[obj] {
			pass.Reportf(u.Pos(),
				"handler takes the address of its event parameter %q: the engine recycles delivered events into a pool when the handler returns, so a retained pointer observes a future delivery; copy the fields you need instead",
				id.Name)
			eventParams[obj] = false // one report per parameter
		}
		return true
	})
}

// isEventStruct reports whether t is the event engine's Event type, matched
// (like IsEngineMethod) by package and type name so fixture stubs qualify.
func isEventStruct(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Event" && obj.Pkg() != nil && obj.Pkg().Name() == "event"
}

func walkChildren(n ast.Node, walk func(ast.Node) bool) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c == nil {
			return true
		}
		return walk(c)
	})
}

func checkScheduleCall(pass *analysis.Pass, call *ast.CallExpr, loops []ast.Node, pre122 bool) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	isAfter := analysis.IsEngineMethod(fn, "ScheduleAfter")
	if !isAfter && !analysis.IsEngineMethod(fn, "Schedule") {
		return
	}
	if len(call.Args) >= 1 {
		checkDelayExpr(pass, call.Args[0], isAfter)
	}
	if pre122 && len(loops) > 0 {
		for _, arg := range call.Args[1:] {
			checkLoopCapture(pass, arg, loops)
		}
	}
}

// checkDelayExpr walks the time argument looking for expressions that can
// wrap around the unsigned event.Time domain.
func checkDelayExpr(pass *analysis.Pass, arg ast.Expr, isDelta bool) {
	ast.Inspect(arg, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			// a - b on unsigned operands: underflow schedules the event
			// ~585 million years out instead of failing.
			if n.Op == token.SUB && isUnsigned(pass.TypesInfo.TypeOf(n)) &&
				!isNonNegativeConst(pass.TypesInfo, n) {
				pass.Reportf(n.Pos(),
					"unsigned subtraction in a %s time argument can underflow event.Time; compute the delay with a saturating helper or schedule at an absolute time",
					scheduleName(isDelta))
			}
		case *ast.CallExpr:
			// event.Time(x) where x is signed and not provably non-negative:
			// a negative delay converts to a huge unsigned one. Only delta
			// arguments are checked — absolute times are routinely built
			// from signed config values that have already been validated.
			if !isDelta || len(n.Args) != 1 {
				return true
			}
			tv, ok := pass.TypesInfo.Types[n.Fun]
			if !ok || !tv.IsType() || !isUnsigned(tv.Type) {
				return true
			}
			opT := pass.TypesInfo.TypeOf(n.Args[0])
			if opT == nil || !isSigned(opT) || isNonNegativeConst(pass.TypesInfo, n.Args[0]) {
				return true
			}
			pass.Reportf(n.Pos(),
				"signed value converted to event.Time in a ScheduleAfter delay: a negative value becomes a ~1.8e19-cycle delay; guard or saturate before converting")
		}
		return true
	})
}

func scheduleName(isDelta bool) string {
	if isDelta {
		return "ScheduleAfter"
	}
	return "Schedule"
}

// checkLoopCapture flags handler arguments (function literals, possibly
// wrapped in a conversion such as event.HandlerFunc(...)) that reference a
// variable declared by an enclosing for or range statement.
func checkLoopCapture(pass *analysis.Pass, arg ast.Expr, loops []ast.Node) {
	vars := map[types.Object]bool{}
	for _, l := range loops {
		collectLoopVars(pass, l, vars)
	}
	if len(vars) == 0 {
		return
	}
	ast.Inspect(arg, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(b ast.Node) bool {
			id, ok := b.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := pass.TypesInfo.Uses[id]; obj != nil && vars[obj] {
				pass.Reportf(id.Pos(),
					"handler closure captures loop variable %q: before Go 1.22 every iteration shares one variable, so all scheduled handlers observe its final value; copy it to a local first",
					id.Name)
				vars[obj] = false // one report per variable per closure chain
			}
			return true
		})
		return false // do not descend into nested literals twice
	})
}

func collectLoopVars(pass *analysis.Pass, loop ast.Node, out map[types.Object]bool) {
	addIdent := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	switch l := loop.(type) {
	case *ast.RangeStmt:
		if l.Key != nil {
			addIdent(l.Key)
		}
		if l.Value != nil {
			addIdent(l.Value)
		}
	case *ast.ForStmt:
		if init, ok := l.Init.(*ast.AssignStmt); ok {
			for _, lhs := range init.Lhs {
				addIdent(lhs)
			}
		}
	}
}

func isUnsigned(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsUnsigned != 0
}

func isSigned(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0 && b.Info()&types.IsUnsigned == 0
}

// isNonNegativeConst reports whether e is a compile-time constant >= 0.
func isNonNegativeConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	if tv.Value.Kind() != constant.Int {
		return false
	}
	return constant.Sign(tv.Value) >= 0
}
