// Package loop122 is the loop fixture under go1.22 semantics: range and for
// loops declare a fresh variable per iteration, so capturing one in a
// handler closure is safe and must not be flagged.
package loop122

import "event"

func fanout(e *event.Engine, ks []int) {
	for _, k := range ks {
		_ = e.Schedule(1, event.HandlerFunc(func(ev event.Event) {
			_ = k
		}), nil)
	}

	for i := 0; i < len(ks); i++ {
		_ = e.ScheduleAfter(1, event.HandlerFunc(func(ev event.Event) {
			_ = i
		}), nil)
	}
}
