// Package sched exercises the eventsafety delay rules: unsigned subtraction
// that can underflow event.Time, and signed values converted at a
// ScheduleAfter call site.
package sched

import "event"

func delays(e *event.Engine, now, deadline event.Time, delta int) {
	_ = e.ScheduleAfter(deadline-now, nil, nil) // want `unsigned subtraction in a ScheduleAfter time argument`
	_ = e.Schedule(now-1, nil, nil)             // want `unsigned subtraction in a Schedule time argument`

	_ = e.ScheduleAfter(event.Time(delta), nil, nil) // want `signed value converted to event\.Time in a ScheduleAfter delay`

	// Absolute times are routinely built from validated signed config
	// values; only delta arguments are checked.
	_ = e.Schedule(event.Time(delta), nil, nil)

	// Provably non-negative constants and addition are safe.
	_ = e.ScheduleAfter(event.Time(4), nil, nil)
	_ = e.ScheduleAfter(deadline+1, nil, nil)
}
