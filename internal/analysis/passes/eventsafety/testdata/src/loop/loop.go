// Package loop exercises the pre-Go-1.22 loop-variable capture rule: the
// test checks this fixture under GoVersion go1.21, where every iteration
// shares one variable. Package loop122 holds the same code checked under
// go1.22, where per-iteration variables make it safe.
package loop

import "event"

func fanout(e *event.Engine, ks []int) {
	for _, k := range ks {
		_ = e.Schedule(1, event.HandlerFunc(func(ev event.Event) {
			_ = k // want `handler closure captures loop variable "k"`
		}), nil)
	}

	for i := 0; i < len(ks); i++ {
		_ = e.ScheduleAfter(1, event.HandlerFunc(func(ev event.Event) {
			_ = i // want `handler closure captures loop variable "i"`
		}), nil)
	}

	// Copying to a local before capture is the classic fix.
	for _, k := range ks {
		k := k
		_ = e.Schedule(1, event.HandlerFunc(func(ev event.Event) { _ = k }), nil)
	}
}
