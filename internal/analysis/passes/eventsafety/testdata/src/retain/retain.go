// Package retain exercises the eventsafety retention rule: handlers must
// not take the address of their delivered event, because the engine pools
// and recycles events the moment Handle returns.
package retain

import "event"

var stash *event.Event

type sink struct {
	last *event.Event
}

// HandleMethod is a Handler-shaped method retaining its event.
func (s *sink) Handle(e event.Event) {
	s.last = &e // want `handler takes the address of its event parameter "e"`
}

func literals(eng *event.Engine) {
	_ = eng.Schedule(1, event.HandlerFunc(func(ev event.Event) {
		stash = &ev // want `handler takes the address of its event parameter "ev"`
	}), nil)

	// Copying fields out is the supported pattern.
	_ = eng.Schedule(2, event.HandlerFunc(func(ev event.Event) {
		payload := ev.Payload
		_ = payload
	}), nil)

	// Addresses of other values are fine, including locals copied from the
	// event.
	_ = eng.Schedule(3, event.HandlerFunc(func(ev event.Event) {
		copied := ev
		_ = &copied
	}), nil)
}

// nested closures see the enclosing handler's parameter.
func nested(eng *event.Engine) {
	_ = eng.Schedule(4, event.HandlerFunc(func(ev event.Event) {
		fn := func() {
			stash = &ev // want `handler takes the address of its event parameter "ev"`
		}
		fn()
	}), nil)
}
