// Package event is a fixture stub of the simulator's event engine: cpelint
// matches Engine methods by package and type name, so the stub exercises the
// engine-aware rules without importing the real engine.
package event

// Time is the simulated clock, in cycles.
type Time uint64

// Event pairs a firing time with its payload.
type Event struct {
	T       Time
	Payload any
}

// Handler consumes a fired event.
type Handler interface {
	Handle(e Event)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(e Event)

// Handle implements Handler.
func (f HandlerFunc) Handle(e Event) { f(e) }

// Engine is the stub scheduler.
type Engine struct{}

// Schedule enqueues h at absolute time t.
func (e *Engine) Schedule(t Time, h Handler, payload any) error { return nil }

// ScheduleAfter enqueues h delta cycles from now.
func (e *Engine) ScheduleAfter(delta Time, h Handler, payload any) error { return nil }
