// Package ignores implements the cpelint suppression-hygiene pass: every
// //cpelint:ignore directive must name a real pass and carry a reason, so an
// escape hatch always documents why the invariant does not apply. The
// companion check — a well-formed directive that suppresses nothing is
// itself a finding — lives in the driver (analysis.RunUnit), because only
// the driver sees which diagnostics a directive absorbed.
package ignores

import (
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the ignores (suppression hygiene) pass.
var Analyzer = &analysis.Analyzer{
	Name: "ignores",
	Doc:  "require //cpelint:ignore directives to name a known pass and carry a reason; unused directives are findings",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, ig := range analysis.CollectIgnores(pass.Fset, pass.Files) {
		switch {
		case ig.Pass == "":
			pass.Reportf(ig.Pos,
				"malformed cpelint:ignore directive: want %q", analysis.IgnorePrefix+" <pass> <reason>")
		case !analysis.KnownPass(ig.Pass):
			pass.Reportf(ig.Pos,
				"cpelint:ignore names unknown pass %s (known: %s)",
				strconv.Quote(ig.Pass), strings.Join(analysis.PassNames, ", "))
		case ig.Reason == "":
			pass.Reportf(ig.Pos,
				"cpelint:ignore %s is missing a reason: the escape hatch must document why the invariant does not apply here",
				ig.Pass)
		}
	}
	return nil
}
