package ignores_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/ignores"
)

func TestSuppressionHygiene(t *testing.T) {
	analysistest.Run(t, "testdata", "hygiene", ignores.Analyzer)
}
