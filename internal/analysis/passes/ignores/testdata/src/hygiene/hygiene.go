// Package hygiene exercises the suppression-hygiene rules: a directive must
// name a known pass, carry a reason, and actually suppress something.
package hygiene

//cpelint:ignore // want `malformed cpelint:ignore directive`

//cpelint:ignore nosuchpass stale // want `cpelint:ignore names unknown pass "nosuchpass"`

//cpelint:ignore errpanic // want `cpelint:ignore errpanic is missing a reason`

//cpelint:ignore determinism this suppresses nothing // want `unused cpelint:ignore directive for pass "determinism"`

// Noop keeps the package non-empty.
func Noop() {}
