// Package hot exercises the noalloc pass: annotated bodies with every
// allocation shape it flags, plus near-miss negatives that must stay silent.
package hot

import (
	"math/bits"
	"sort"
)

type Range struct{ Lo, Hi uint64 }

type Set struct {
	inline [4]Range
	spill  []Range
	n      int
}

var global []Range

// sink is an annotated helper so annotated callers may call it.
//
//cpelide:noalloc
func sink(r Range) uint64 { return r.Hi - r.Lo }

// helper is NOT annotated; calls to it from annotated bodies are findings.
func helper(r Range) uint64 { return r.Hi - r.Lo }

//cpelide:noalloc
func compositeLits() {
	_ = []Range{{0, 1}}    // want `slice literal in noalloc function compositeLits allocates`
	_ = map[uint64]Range{} // want `map literal in noalloc function compositeLits allocates`
	_ = &Range{0, 1}       // want `address of composite literal in noalloc function compositeLits`
	r := Range{0, 1}       // value struct literal: stack, allowed
	_ = sink(r)
}

//cpelide:noalloc
func builtins(n int) {
	_ = make([]Range, n) // want `make in noalloc function builtins allocates`
	_ = new(Range)       // want `new in noalloc function builtins allocates`
}

//cpelide:noalloc
func appendEscaping(s *Set, r Range) {
	s.spill = append(s.spill, r) // want `append in noalloc function appendEscaping grows an escaping slice`
	global = append(global, r)   // want `append in noalloc function appendEscaping grows an escaping slice`
}

//cpelide:noalloc
func appendLocalScratch(s *Set, r Range) int {
	var stack [8]Range
	out := stack[:0]
	out = append(out, r) // local scratch: allowed
	return len(out)
}

//cpelide:noalloc
func stringConcat(name string) string {
	const pre = "a" + "b" // constant-folded: allowed
	_ = pre
	return "set:" + name // want `string concatenation in noalloc function stringConcat allocates`
}

//cpelide:noalloc
func conversions(b []byte, s string) {
	_ = string(b) // want `slice-to-string conversion in noalloc function conversions allocates`
	_ = []byte(s) // want `string-to-slice conversion in noalloc function conversions allocates`
}

//cpelide:noalloc
func boxing(r Range, p *Range) {
	var x any
	x = r // want `interface boxing in noalloc function boxing`
	x = p // pointer-shaped: allowed
	_ = x
	_ = any(r) // want `conversion to interface in noalloc function boxing boxes`
}

//cpelide:noalloc
func boxingReturn(r Range) any {
	return r // want `interface boxing in noalloc function boxingReturn`
}

//cpelide:noalloc
func closures(n int) int {
	f := func() int { return n } // want `closure in noalloc function closures allocates`
	return f()                   // want `dynamic call in noalloc function closures`
}

//cpelide:noalloc
func sortSearchAllowed(s *Set, lo uint64) int {
	// A func literal passed directly to sort.Search does not escape.
	return sort.Search(len(s.spill), func(k int) bool { return s.spill[k].Hi >= lo })
}

//cpelide:noalloc
func methodValue(s *Set) func(int) Range {
	return s.at // want `method value s.at in noalloc function methodValue allocates`
}

//cpelide:noalloc
func (s *Set) at(i int) Range { return s.spill[i] }

//cpelide:noalloc
func calls(r Range) uint64 {
	a := sink(r)                        // annotated callee: allowed
	b := helper(r)                      // want `call to helper in noalloc function calls`
	c := uint64(bits.LeadingZeros64(a)) // allowlisted stdlib: allowed
	return a + b + c
}

//cpelide:noalloc
func dynamicCall(f func() int) int {
	return f() // want `dynamic call in noalloc function dynamicCall cannot be verified`
}

//cpelide:noalloc
func goStmt() {
	go func() {}() // want `go statement in noalloc function goStmt allocates` `closure in noalloc function goStmt allocates` `dynamic call in noalloc function goStmt`
}

// notAnnotated may allocate freely: none of this is flagged.
func notAnnotated(n int) []Range {
	out := make([]Range, 0, n)
	return append(out, Range{0, uint64(n)})
}

//cpelide:noalloc
func ignoredGrowth(s *Set, r Range) {
	//cpelint:ignore noalloc amortized spill growth is 0 allocs/op steady-state
	s.spill = append(s.spill, r)
}
