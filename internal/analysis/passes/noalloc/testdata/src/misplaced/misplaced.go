// Package misplaced holds a noalloc annotation that annotates nothing.
package misplaced

//cpelide:noalloc // want `misplaced //cpelide:noalloc annotation`

func plain() int { return 1 }
