// Package noalloc implements the cpelint pass behind the //cpelide:noalloc
// function annotation. The simulator's hot paths — timer-wheel insert/pop,
// the engine's event pool, RangeSet algebra, cache lookups, stats counters —
// were hand-optimized to zero steady-state allocations (DESIGN §16), and the
// BENCH_core gate fails on allocation regressions; this pass makes the same
// invariant a compile-time property, so a regression is reported at the line
// that introduces it rather than as an opaque allocs/op delta.
//
// Inside an annotated body the pass flags every construct that the compiler
// lowers to a heap allocation (or that it cannot prove stack-bound without
// escape analysis, which a per-unit checker does not have):
//
//   - slice and map composite literals, and &T{...} pointer literals
//   - make, new, and go statements
//   - append whose result escapes (assigned to a field, element, or
//     package-level variable, returned, or passed on) — append into a local
//     slice is the preallocated-scratch idiom and is allowed
//   - non-constant string concatenation and []byte/string conversions
//   - interface boxing of non-pointer-shaped values (assignments, returns,
//     conversions, and arguments to checked calls)
//   - closures and bound method values
//   - calls to functions that are not themselves annotated //cpelide:noalloc
//     (a short allowlist covers provably non-allocating stdlib helpers)
//
// Amortized growth of engine-owned storage (an event pool refilling, a
// RangeSet spilling past its inline array) is a deliberate exception: those
// sites carry a //cpelint:ignore noalloc directive with a reason, and the
// documented baseline in DESIGN §17 enumerates every one.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the noalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc: "check //cpelide:noalloc-annotated functions statically: no composite-literal/make/new " +
		"allocation, no append to escaping slices, no string concat, no interface boxing, no " +
		"closures, and no calls to non-annotated functions",
	Run: run,
}

// allowPkgs are packages whose exported functions never allocate: pure
// integer/float computation with value arguments and results.
var allowPkgs = map[string]bool{
	"math/bits": true,
	"math":      true,
}

// noescapeFuncs are stdlib functions whose function-typed parameter does not
// escape, so a closure passed directly to them stays on the stack. The hot
// RangeSet lookups use sort.Search exactly this way.
var noescapeFuncs = map[string]bool{
	"sort.Search": true,
}

func run(pass *analysis.Pass) error {
	annotated, misplaced := analysis.NoallocFuncs(pass.Files, pass.TypesInfo)
	for _, c := range misplaced {
		pass.Reportf(c.Pos(),
			"misplaced %s annotation: it must appear in a function declaration's doc comment", analysis.NoallocPrefix)
	}
	for _, fd := range annotated {
		if fd.Body == nil {
			continue
		}
		(&checker{pass: pass, annotated: annotated}).check(fd)
	}
	return nil
}

type checker struct {
	pass      *analysis.Pass
	annotated map[types.Object]*ast.FuncDecl

	// localAppends marks append calls whose result lands in a function-local
	// variable (allowed: the preallocated-scratch idiom); callFuns marks
	// expressions in call position (so method *values* can be told apart
	// from method calls); stackClosures marks function literals passed
	// directly to a noescape-listed callee.
	localAppends  map[*ast.CallExpr]bool
	callFuns      map[ast.Expr]bool
	stackClosures map[*ast.FuncLit]bool
}

func (c *checker) check(fd *ast.FuncDecl) {
	c.localAppends = map[*ast.CallExpr]bool{}
	c.callFuns = map[ast.Expr]bool{}
	c.stackClosures = map[*ast.FuncLit]bool{}
	c.prepass(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			c.pass.Reportf(n.Pos(), "go statement in noalloc function %s allocates a goroutine stack", fd.Name.Name)
		case *ast.CompositeLit:
			c.compositeLit(fd, n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.pass.Reportf(n.Pos(),
						"address of composite literal in noalloc function %s is a heap allocation", fd.Name.Name)
					return false // the inner literal is the same allocation
				}
			}
		case *ast.CallExpr:
			c.call(fd, n)
		case *ast.BinaryExpr:
			c.stringConcat(fd, n)
		case *ast.FuncLit:
			if !c.stackClosures[n] {
				c.pass.Reportf(n.Pos(),
					"closure in noalloc function %s allocates (captured variables move to the heap)", fd.Name.Name)
			}
		case *ast.SelectorExpr:
			c.methodValue(fd, n)
		case *ast.AssignStmt:
			c.assignBoxing(fd, n)
		case *ast.ReturnStmt:
			c.returnBoxing(fd, n)
		}
		return true
	})
}

// prepass classifies append destinations, call positions, and stack-safe
// closures before the main walk.
func (c *checker) prepass(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltin(c.pass.TypesInfo, call, "append") {
					continue
				}
				if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok {
					if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil {
						if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Pkg() != nil && insideBody(body, obj) {
							c.localAppends[call] = true
						}
					}
				}
			}
		case *ast.CallExpr:
			c.callFuns[ast.Unparen(n.Fun)] = true
			if fn := analysis.CalleeFunc(c.pass.TypesInfo, n); fn != nil && fn.Pkg() != nil &&
				noescapeFuncs[fn.Pkg().Path()+"."+fn.Name()] {
				for _, arg := range n.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						c.stackClosures[lit] = true
					}
				}
			}
		}
		return true
	})
}

// insideBody reports whether obj is declared within body — i.e. a true local,
// not a parameter-shadowing package variable.
func insideBody(body *ast.BlockStmt, obj types.Object) bool {
	return obj.Pos() >= body.Pos() && obj.Pos() < body.End()
}

func (c *checker) compositeLit(fd *ast.FuncDecl, lit *ast.CompositeLit) {
	t := c.pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.pass.Reportf(lit.Pos(), "slice literal in noalloc function %s allocates its backing array", fd.Name.Name)
	case *types.Map:
		c.pass.Reportf(lit.Pos(), "map literal in noalloc function %s allocates", fd.Name.Name)
	}
}

func (c *checker) call(fd *ast.FuncDecl, call *ast.CallExpr) {
	info := c.pass.TypesInfo
	// Conversions: T(x) where T is a type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		c.conversion(fd, call, tv.Type)
		return
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				c.pass.Reportf(call.Pos(), "%s in noalloc function %s allocates", b.Name(), fd.Name.Name)
			case "append":
				if !c.localAppends[call] {
					c.pass.Reportf(call.Pos(),
						"append in noalloc function %s grows an escaping slice (the result does not land in a local variable)", fd.Name.Name)
				}
			case "print", "println":
				c.pass.Reportf(call.Pos(), "%s in noalloc function %s may allocate; remove debug output", b.Name(), fd.Name.Name)
			}
			return
		}
	}
	fn := analysis.CalleeFunc(info, call)
	if fn == nil {
		c.pass.Reportf(call.Pos(),
			"dynamic call in noalloc function %s cannot be verified allocation-free; call a //cpelide:noalloc function directly", fd.Name.Name)
		return
	}
	switch {
	case c.annotated[fn] != nil:
		c.argBoxing(fd, call, fn)
	case fn.Pkg() != nil && allowPkgs[fn.Pkg().Path()]:
	case fn.Pkg() != nil && noescapeFuncs[fn.Pkg().Path()+"."+fn.Name()]:
	default:
		c.pass.Reportf(call.Pos(),
			"call to %s in noalloc function %s: the callee is not annotated //cpelide:noalloc and may allocate", fn.Name(), fd.Name.Name)
	}
}

func (c *checker) conversion(fd *ast.FuncDecl, call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	argT := c.pass.TypesInfo.TypeOf(call.Args[0])
	if argT == nil {
		return
	}
	switch ut := target.Underlying().(type) {
	case *types.Interface:
		if boxes(argT) && !isNil(c.pass.TypesInfo, call.Args[0]) {
			c.pass.Reportf(call.Pos(),
				"conversion to interface in noalloc function %s boxes a %s value on the heap", fd.Name.Name, argT.String())
		}
	case *types.Slice:
		if b, ok := argT.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
			c.pass.Reportf(call.Pos(), "string-to-slice conversion in noalloc function %s allocates", fd.Name.Name)
		}
	case *types.Basic:
		if ut.Info()&types.IsString != 0 {
			if _, ok := argT.Underlying().(*types.Slice); ok {
				c.pass.Reportf(call.Pos(), "slice-to-string conversion in noalloc function %s allocates", fd.Name.Name)
			}
		}
	}
}

func (c *checker) stringConcat(fd *ast.FuncDecl, bin *ast.BinaryExpr) {
	if bin.Op != token.ADD {
		return
	}
	t := c.pass.TypesInfo.TypeOf(bin)
	b, ok := t.(*types.Basic)
	if !ok && t != nil {
		b, _ = t.Underlying().(*types.Basic)
	}
	if b == nil || b.Info()&types.IsString == 0 {
		return
	}
	if tv, ok := c.pass.TypesInfo.Types[bin]; ok && tv.Value != nil {
		return // constant-folded at compile time
	}
	c.pass.Reportf(bin.Pos(), "string concatenation in noalloc function %s allocates", fd.Name.Name)
}

// methodValue flags x.M used as a value: binding the receiver allocates a
// closure. (A plain package-function value is a static pointer and is fine.)
func (c *checker) methodValue(fd *ast.FuncDecl, sel *ast.SelectorExpr) {
	if c.callFuns[sel] {
		return
	}
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return
	}
	c.pass.Reportf(sel.Pos(),
		"method value %s.%s in noalloc function %s allocates a bound closure", exprString(sel.X), sel.Sel.Name, fd.Name.Name)
}

func (c *checker) assignBoxing(fd *ast.FuncDecl, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Rhs {
		lt := c.pass.TypesInfo.TypeOf(as.Lhs[i])
		c.boxingAt(fd, lt, as.Rhs[i])
	}
}

func (c *checker) returnBoxing(fd *ast.FuncDecl, ret *ast.ReturnStmt) {
	sig, ok := c.pass.TypesInfo.TypeOf(fd.Name).(*types.Signature)
	if !ok || sig.Results() == nil || len(ret.Results) != sig.Results().Len() {
		return
	}
	for i, res := range ret.Results {
		c.boxingAt(fd, sig.Results().At(i).Type(), res)
	}
}

// argBoxing checks the arguments of a call to an annotated (hence allowed)
// function for interface boxing at the call site.
func (c *checker) argBoxing(fd *ast.FuncDecl, call *ast.CallExpr, fn *types.Func) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Variadic() {
		return
	}
	params := sig.Params()
	if params.Len() != len(call.Args) {
		return
	}
	for i, arg := range call.Args {
		c.boxingAt(fd, params.At(i).Type(), arg)
	}
}

// boxingAt reports e when assigning it to a destination of type dst would box
// a non-pointer-shaped concrete value into an interface.
func (c *checker) boxingAt(fd *ast.FuncDecl, dst types.Type, e ast.Expr) {
	if dst == nil {
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	t := c.pass.TypesInfo.TypeOf(e)
	if t == nil || isNil(c.pass.TypesInfo, e) || !boxes(t) {
		return
	}
	c.pass.Reportf(e.Pos(),
		"interface boxing in noalloc function %s: a %s value is copied to the heap; pass a pointer or restructure", fd.Name.Name, t.String())
}

// boxes reports whether storing a value of type t in an interface requires a
// heap allocation. Pointer-shaped types (pointers, channels, maps, funcs,
// unsafe pointers) are stored directly; interfaces re-box without allocating.
func boxes(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() != types.UnsafePointer && b.Kind() != types.UntypedNil
	}
	return true
}

func isNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	}
	return "expr"
}
