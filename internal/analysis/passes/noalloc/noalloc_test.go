package noalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/ignores"
	"repro/internal/analysis/passes/noalloc"
)

func TestAnnotatedHotPaths(t *testing.T) {
	analysistest.Run(t, "testdata", "hot", noalloc.Analyzer, ignores.Analyzer)
}

func TestMisplacedAnnotation(t *testing.T) {
	analysistest.Run(t, "testdata", "misplaced", noalloc.Analyzer)
}
