// Command x is a fixture entry point: package main may exit or panic after
// reporting, so nothing here is a finding.
package main

import (
	"log"
	"os"
)

func main() {
	if len(os.Args) > 1 {
		log.Fatal("mains may exit")
	}
	if len(os.Args) > 2 {
		os.Exit(1)
	}
	panic("mains may panic")
}
