// Package lib is internal library code: terminating calls are findings, and
// the sentinel-error convention is the accepted shape.
package lib

import (
	"errors"
	"fmt"
	"log"
	"os"
)

// ErrBad is the package's sentinel, the shape the pass steers toward.
var ErrBad = errors.New("lib: bad")

// Do returns a wrapped sentinel on failure — the accepted idiom.
func Do(ok bool) error {
	if !ok {
		return fmt.Errorf("%w: not ok", ErrBad)
	}
	return nil
}

func crash(ok bool) {
	if !ok {
		panic("boom") // want `panic in library code`
	}
}

func logs() {
	log.Fatal("x")        // want `log\.Fatal in library code`
	log.Fatalf("x %d", 1) // want `log\.Fatalf in library code`
	log.Panicln("x")      // want `log\.Panicln in library code`
	log.Printf("fine")    // non-terminating logging is allowed
	os.Exit(2)            // want `os\.Exit in library code`
}
