package lib

import "testing"

func TestPanicAllowed(t *testing.T) {
	defer func() { _ = recover() }()
	panic("test files are exempt: a test may panic to abort")
}
