package errpanic_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/errpanic"
)

func TestLibraryCode(t *testing.T) {
	analysistest.Run(t, "testdata", "lib", errpanic.Analyzer)
}

func TestMainPackageExempt(t *testing.T) {
	analysistest.Run(t, "testdata", "cmd/x", errpanic.Analyzer)
}
