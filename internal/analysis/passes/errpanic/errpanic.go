// Package errpanic implements the cpelint pass that enforces the
// errors-not-panics convention established in the robustness PR (DESIGN §10):
// library code under internal/ returns sentinel-wrapped errors
// (ErrJobTimeout-style) instead of panicking, so the experiment farm, the
// HTTP server, and embedding simulations surface failures as run errors
// rather than dead workers. Test files and package-main entry points are
// exempt: a test may panic to abort, and a main may os.Exit after printing.
package errpanic

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the errpanic pass.
var Analyzer = &analysis.Analyzer{
	Name: "errpanic",
	Doc: "forbid panic, log.Fatal*, log.Panic*, and os.Exit in library code; " +
		"return sentinel-wrapped errors instead",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil // cmd/ entry points may exit; the lint guards libraries
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					pass.Reportf(call.Pos(),
						"panic in library code: return an error (sentinel conventions, DESIGN §10/§12) so callers degrade instead of crashing")
					return true
				}
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "log" &&
				(strings.HasPrefix(fn.Name(), "Fatal") || strings.HasPrefix(fn.Name(), "Panic")):
				pass.Reportf(call.Pos(),
					"log.%s in library code terminates or panics the process: return an error instead", fn.Name())
			case analysis.IsPkgFunc(fn, "os", "Exit"):
				pass.Reportf(call.Pos(),
					"os.Exit in library code kills the process (and skips deferred cleanup): return an error instead")
			}
			return true
		})
	}
	return nil
}
