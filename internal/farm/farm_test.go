package farm

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// matrix is the ISSUE's equality fixture: >= 3 workloads x 3 protocols.
func matrix() []Job {
	var jobs []Job
	for _, name := range []string{"square", "pathfinder", "btree"} {
		for _, proto := range []cpelide.Protocol{
			cpelide.ProtocolBaseline, cpelide.ProtocolCPElide, cpelide.ProtocolHMG,
		} {
			jobs = append(jobs, Job{
				Workload: name,
				Params:   workloads.Params{Scale: 0.1},
				Config:   cpelide.DefaultConfig(4),
				Options:  cpelide.Options{Protocol: proto},
			})
		}
	}
	return jobs
}

func marshal(t *testing.T, rep *cpelide.Report) string {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestParallelMatchesSerialMatchesCached is the determinism contract: the
// same job matrix run on one worker, on many workers, and from the cache
// yields byte-identical reports.
func TestParallelMatchesSerialMatchesCached(t *testing.T) {
	jobs := matrix()

	serialFarm := New(Options{Workers: 1})
	defer serialFarm.Close()
	serial, err := serialFarm.Do(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}

	parFarm := New(Options{Workers: 8})
	defer parFarm.Close()
	par, err := parFarm.Do(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := parFarm.Do(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}

	for i := range jobs {
		s := marshal(t, serial[i])
		if p := marshal(t, par[i]); p != s {
			t.Errorf("%s: parallel report differs from serial", jobs[i].Name())
		}
		if c := marshal(t, cached[i]); c != s {
			t.Errorf("%s: cached report differs from serial", jobs[i].Name())
		}
	}

	c := parFarm.Counters()
	if c.Runs != uint64(len(jobs)) {
		t.Fatalf("parallel farm ran %d simulations, want %d (second batch must be all hits)", c.Runs, len(jobs))
	}
	if c.CacheHits != uint64(len(jobs)) {
		t.Fatalf("second batch produced %d cache hits, want %d", c.CacheHits, len(jobs))
	}
}

// TestSingleFlight launches identical submissions concurrently while the
// (hooked) execution blocks: exactly one computes, the rest piggyback.
func TestSingleFlight(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	execHook = func(ctx context.Context, j Job) (*cpelide.Report, error) {
		started <- struct{}{}
		<-release
		return &cpelide.Report{Workload: j.Workload, Cycles: 42}, nil
	}
	defer func() { execHook = nil }()

	f := New(Options{Workers: 4})
	defer f.Close()

	const n = 8
	job := baseJob()
	var wg sync.WaitGroup
	wg.Add(n)
	reps := make([]*cpelide.Report, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			rep, err := f.Submit(context.Background(), job)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			reps[i] = rep
		}(i)
	}
	<-started // the leader reached the hook; everyone else must now dedup
	close(release)
	wg.Wait()

	c := f.Counters()
	if c.Runs != 1 {
		t.Fatalf("%d identical submissions executed %d times, want 1", n, c.Runs)
	}
	if c.CacheMisses != 1 || c.DedupWaits+c.CacheHits != n-1 {
		t.Fatalf("counter split misses=%d dedup=%d hits=%d, want 1 leader and %d followers",
			c.CacheMisses, c.DedupWaits, c.CacheHits, n-1)
	}
	for i, rep := range reps {
		if rep == nil || rep.Cycles != 42 {
			t.Fatalf("submission %d got report %+v", i, rep)
		}
	}
}

// TestLRUEviction bounds the cache at two entries and pushes three distinct
// jobs through it.
func TestLRUEviction(t *testing.T) {
	execHook = func(ctx context.Context, j Job) (*cpelide.Report, error) {
		return &cpelide.Report{Workload: j.Workload}, nil
	}
	defer func() { execHook = nil }()

	f := New(Options{Workers: 1, CacheEntries: 2})
	defer f.Close()

	jobFor := func(i int) Job {
		j := baseJob()
		j.Params.Iters = i + 1
		return j
	}
	for i := 0; i < 3; i++ {
		if _, err := f.Submit(context.Background(), jobFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if c := f.Counters(); c.Evictions != 1 || f.CacheLen() != 2 {
		t.Fatalf("evictions=%d cacheLen=%d, want 1 and 2", c.Evictions, f.CacheLen())
	}
	// Job 0 was evicted (oldest); resubmitting must simulate again.
	if _, err := f.Submit(context.Background(), jobFor(0)); err != nil {
		t.Fatal(err)
	}
	if c := f.Counters(); c.Runs != 4 {
		t.Fatalf("evicted job did not re-run: runs=%d, want 4", c.Runs)
	}
	// Job 2 is still resident.
	if _, err := f.Submit(context.Background(), jobFor(2)); err != nil {
		t.Fatal(err)
	}
	if c := f.Counters(); c.CacheHits != 1 {
		t.Fatalf("resident job missed: hits=%d, want 1", c.CacheHits)
	}
}

// TestPanicIsolation turns a worker panic into a submission error and
// leaves the pool serviceable.
func TestPanicIsolation(t *testing.T) {
	execHook = func(ctx context.Context, j Job) (*cpelide.Report, error) {
		if j.Params.Iters == 13 {
			panic("unlucky job")
		}
		return &cpelide.Report{Workload: j.Workload}, nil
	}
	defer func() { execHook = nil }()

	f := New(Options{Workers: 1})
	defer f.Close()

	bad := baseJob()
	bad.Params.Iters = 13
	if _, err := f.Submit(context.Background(), bad); err == nil {
		t.Fatal("panicking job returned no error")
	} else if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("error %q does not mention the panic", err)
	}
	if c := f.Counters(); c.Panics != 1 || c.Errors != 1 {
		t.Fatalf("panics=%d errors=%d, want 1 and 1", c.Panics, c.Errors)
	}
	// Pool survives: a good job still runs, and the failed key was not cached.
	if _, err := f.Submit(context.Background(), baseJob()); err != nil {
		t.Fatalf("pool unusable after panic: %v", err)
	}
	if _, err := f.Submit(context.Background(), bad); err == nil {
		t.Fatal("failed job was memoized")
	}
}

// TestSubmitCanceled covers both cancellation paths: a context canceled
// before submission and one canceled mid-flight.
func TestSubmitCanceled(t *testing.T) {
	release := make(chan struct{})
	execHook = func(ctx context.Context, j Job) (*cpelide.Report, error) {
		select {
		case <-release:
			return &cpelide.Report{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	defer func() { execHook = nil }()

	f := New(Options{Workers: 1})
	defer f.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.Submit(ctx, baseJob()); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled submit: got %v, want context.Canceled", err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := f.Submit(ctx2, baseJob())
		done <- err
	}()
	cancel2()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight cancel: got %v, want context.Canceled", err)
	}
	close(release)
}

func TestSubmitAfterClose(t *testing.T) {
	f := New(Options{Workers: 1})
	f.Close()
	f.Close() // idempotent
	if _, err := f.Submit(context.Background(), baseJob()); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: got %v, want ErrClosed", err)
	}
}

// TestStatsMirror checks the farm levels land in the shared stats sheet.
func TestStatsMirror(t *testing.T) {
	execHook = func(ctx context.Context, j Job) (*cpelide.Report, error) {
		return &cpelide.Report{}, nil
	}
	defer func() { execHook = nil }()

	sheet := stats.New()
	f := New(Options{Workers: 1, Stats: sheet})
	defer f.Close()

	job := baseJob()
	for i := 0; i < 3; i++ {
		if _, err := f.Submit(context.Background(), job); err != nil {
			t.Fatal(err)
		}
	}
	if got := sheet.Get(stats.FarmJobs); got != 3 {
		t.Fatalf("sheet farm.jobs=%d, want 3", got)
	}
	if got := sheet.Get(stats.FarmRuns); got != 1 {
		t.Fatalf("sheet farm.runs=%d, want 1", got)
	}
	if got := sheet.Get(stats.FarmCacheHits); got != 2 {
		t.Fatalf("sheet farm.cache_hits=%d, want 2", got)
	}
}

// TestTraceSpans checks every submission leaves a farm span with a
// terminal state in the recorder.
func TestTraceSpans(t *testing.T) {
	execHook = func(ctx context.Context, j Job) (*cpelide.Report, error) {
		return &cpelide.Report{}, nil
	}
	defer func() { execHook = nil }()

	rec := trace.New(0)
	f := New(Options{Workers: 1, Trace: rec})
	defer f.Close()

	job := baseJob()
	for i := 0; i < 2; i++ {
		if _, err := f.Submit(context.Background(), job); err != nil {
			t.Fatal(err)
		}
	}
	var doneSpans, cachedSpans int
	for _, e := range rec.Events() {
		if e.Kind != trace.KindJob {
			continue
		}
		switch {
		case strings.Contains(e.Name, "[done]"):
			doneSpans++
			if e.Chiplet < 0 {
				t.Errorf("executed span has no worker: %+v", e)
			}
		case strings.Contains(e.Name, "[cached]"):
			cachedSpans++
			if e.Chiplet != -1 {
				t.Errorf("cache hit span should use worker -1: %+v", e)
			}
		}
	}
	if doneSpans != 1 || cachedSpans != 1 {
		t.Fatalf("trace has %d done and %d cached job spans, want 1 and 1", doneSpans, cachedSpans)
	}
}

// TestDoOrderAndError checks Do returns reports in job order and surfaces
// the first real failure.
func TestDoOrderAndError(t *testing.T) {
	execHook = func(ctx context.Context, j Job) (*cpelide.Report, error) {
		if j.Workload == "bfs" {
			return nil, errors.New("boom")
		}
		return &cpelide.Report{Workload: j.Workload}, nil
	}
	defer func() { execHook = nil }()

	f := New(Options{Workers: 2})
	defer f.Close()

	jobs := []Job{baseJob(), baseJob(), baseJob()}
	jobs[1].Workload = "btree"
	jobs[2].Workload = "pathfinder"
	reps, err := f.Do(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"square", "btree", "pathfinder"} {
		if reps[i].Workload != want {
			t.Fatalf("reps[%d].Workload=%q, want %q", i, reps[i].Workload, want)
		}
	}

	bad := append([]Job{}, jobs...)
	bad[1].Workload = "bfs"
	if _, err := f.Do(context.Background(), bad); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("Do error = %v, want the job failure", err)
	}
}
