package farm

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// matrix is the ISSUE's equality fixture: >= 3 workloads x 3 protocols.
func matrix() []Job {
	var jobs []Job
	for _, name := range []string{"square", "pathfinder", "btree"} {
		for _, proto := range []cpelide.Protocol{
			cpelide.ProtocolBaseline, cpelide.ProtocolCPElide, cpelide.ProtocolHMG,
		} {
			jobs = append(jobs, Job{
				Workload: name,
				Params:   workloads.Params{Scale: 0.1},
				Config:   cpelide.DefaultConfig(4),
				Options:  cpelide.Options{Protocol: proto},
			})
		}
	}
	return jobs
}

func marshal(t *testing.T, rep *cpelide.Report) string {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestParallelMatchesSerialMatchesCached is the determinism contract: the
// same job matrix run on one worker, on many workers, and from the cache
// yields byte-identical reports.
func TestParallelMatchesSerialMatchesCached(t *testing.T) {
	jobs := matrix()

	serialFarm := New(Options{Workers: 1})
	defer serialFarm.Close()
	serial, err := serialFarm.Do(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}

	parFarm := New(Options{Workers: 8})
	defer parFarm.Close()
	par, err := parFarm.Do(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := parFarm.Do(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}

	for i := range jobs {
		s := marshal(t, serial[i])
		if p := marshal(t, par[i]); p != s {
			t.Errorf("%s: parallel report differs from serial", jobs[i].Name())
		}
		if c := marshal(t, cached[i]); c != s {
			t.Errorf("%s: cached report differs from serial", jobs[i].Name())
		}
	}

	c := parFarm.Counters()
	if c.Runs != uint64(len(jobs)) {
		t.Fatalf("parallel farm ran %d simulations, want %d (second batch must be all hits)", c.Runs, len(jobs))
	}
	if c.CacheHits != uint64(len(jobs)) {
		t.Fatalf("second batch produced %d cache hits, want %d", c.CacheHits, len(jobs))
	}
}

// TestSingleFlight launches identical submissions concurrently while the
// (hooked) execution blocks: exactly one computes, the rest piggyback.
func TestSingleFlight(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	execHook = func(ctx context.Context, j Job) (*cpelide.Report, error) {
		started <- struct{}{}
		<-release
		return &cpelide.Report{Workload: j.Workload, Cycles: 42}, nil
	}
	defer func() { execHook = nil }()

	f := New(Options{Workers: 4})
	defer f.Close()

	const n = 8
	job := baseJob()
	var wg sync.WaitGroup
	wg.Add(n)
	reps := make([]*cpelide.Report, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			rep, err := f.Submit(context.Background(), job)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			reps[i] = rep
		}(i)
	}
	<-started // the leader reached the hook; everyone else must now dedup
	close(release)
	wg.Wait()

	c := f.Counters()
	if c.Runs != 1 {
		t.Fatalf("%d identical submissions executed %d times, want 1", n, c.Runs)
	}
	if c.CacheMisses != 1 || c.DedupWaits+c.CacheHits != n-1 {
		t.Fatalf("counter split misses=%d dedup=%d hits=%d, want 1 leader and %d followers",
			c.CacheMisses, c.DedupWaits, c.CacheHits, n-1)
	}
	for i, rep := range reps {
		if rep == nil || rep.Cycles != 42 {
			t.Fatalf("submission %d got report %+v", i, rep)
		}
	}
}

// TestLRUEviction bounds the cache at two entries and pushes three distinct
// jobs through it.
func TestLRUEviction(t *testing.T) {
	execHook = func(ctx context.Context, j Job) (*cpelide.Report, error) {
		return &cpelide.Report{Workload: j.Workload}, nil
	}
	defer func() { execHook = nil }()

	f := New(Options{Workers: 1, CacheEntries: 2})
	defer f.Close()

	jobFor := func(i int) Job {
		j := baseJob()
		j.Params.Iters = i + 1
		return j
	}
	for i := 0; i < 3; i++ {
		if _, err := f.Submit(context.Background(), jobFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if c := f.Counters(); c.Evictions != 1 || f.CacheLen() != 2 {
		t.Fatalf("evictions=%d cacheLen=%d, want 1 and 2", c.Evictions, f.CacheLen())
	}
	// Job 0 was evicted (oldest); resubmitting must simulate again.
	if _, err := f.Submit(context.Background(), jobFor(0)); err != nil {
		t.Fatal(err)
	}
	if c := f.Counters(); c.Runs != 4 {
		t.Fatalf("evicted job did not re-run: runs=%d, want 4", c.Runs)
	}
	// Job 2 is still resident.
	if _, err := f.Submit(context.Background(), jobFor(2)); err != nil {
		t.Fatal(err)
	}
	if c := f.Counters(); c.CacheHits != 1 {
		t.Fatalf("resident job missed: hits=%d, want 1", c.CacheHits)
	}
}

// TestPanicIsolation turns a worker panic into a submission error and
// leaves the pool serviceable.
func TestPanicIsolation(t *testing.T) {
	execHook = func(ctx context.Context, j Job) (*cpelide.Report, error) {
		if j.Params.Iters == 13 {
			panic("unlucky job")
		}
		return &cpelide.Report{Workload: j.Workload}, nil
	}
	defer func() { execHook = nil }()

	f := New(Options{Workers: 1})
	defer f.Close()

	bad := baseJob()
	bad.Params.Iters = 13
	if _, err := f.Submit(context.Background(), bad); err == nil {
		t.Fatal("panicking job returned no error")
	} else if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("error %q does not mention the panic", err)
	}
	if c := f.Counters(); c.Panics != 1 || c.Errors != 1 {
		t.Fatalf("panics=%d errors=%d, want 1 and 1", c.Panics, c.Errors)
	}
	// Pool survives: a good job still runs, and the failed key was not cached.
	if _, err := f.Submit(context.Background(), baseJob()); err != nil {
		t.Fatalf("pool unusable after panic: %v", err)
	}
	if _, err := f.Submit(context.Background(), bad); err == nil {
		t.Fatal("failed job was memoized")
	}
}

// TestSubmitCanceled covers both cancellation paths: a context canceled
// before submission and one canceled mid-flight.
func TestSubmitCanceled(t *testing.T) {
	release := make(chan struct{})
	execHook = func(ctx context.Context, j Job) (*cpelide.Report, error) {
		select {
		case <-release:
			return &cpelide.Report{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	defer func() { execHook = nil }()

	f := New(Options{Workers: 1})
	defer f.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.Submit(ctx, baseJob()); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled submit: got %v, want context.Canceled", err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := f.Submit(ctx2, baseJob())
		done <- err
	}()
	cancel2()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight cancel: got %v, want context.Canceled", err)
	}
	close(release)
}

func TestSubmitAfterClose(t *testing.T) {
	f := New(Options{Workers: 1})
	f.Close()
	f.Close() // idempotent
	if _, err := f.Submit(context.Background(), baseJob()); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: got %v, want ErrClosed", err)
	}
}

// TestStatsMirror checks the farm levels land in the shared stats sheet.
func TestStatsMirror(t *testing.T) {
	execHook = func(ctx context.Context, j Job) (*cpelide.Report, error) {
		return &cpelide.Report{}, nil
	}
	defer func() { execHook = nil }()

	sheet := stats.New()
	f := New(Options{Workers: 1, Stats: sheet})
	defer f.Close()

	job := baseJob()
	for i := 0; i < 3; i++ {
		if _, err := f.Submit(context.Background(), job); err != nil {
			t.Fatal(err)
		}
	}
	if got := sheet.Get(stats.FarmJobs); got != 3 {
		t.Fatalf("sheet farm.jobs=%d, want 3", got)
	}
	if got := sheet.Get(stats.FarmRuns); got != 1 {
		t.Fatalf("sheet farm.runs=%d, want 1", got)
	}
	if got := sheet.Get(stats.FarmCacheHits); got != 2 {
		t.Fatalf("sheet farm.cache_hits=%d, want 2", got)
	}
}

// TestTraceSpans checks every submission leaves a farm span with a
// terminal state in the recorder.
func TestTraceSpans(t *testing.T) {
	execHook = func(ctx context.Context, j Job) (*cpelide.Report, error) {
		return &cpelide.Report{}, nil
	}
	defer func() { execHook = nil }()

	rec := trace.New(0)
	f := New(Options{Workers: 1, Trace: rec})
	defer f.Close()

	job := baseJob()
	for i := 0; i < 2; i++ {
		if _, err := f.Submit(context.Background(), job); err != nil {
			t.Fatal(err)
		}
	}
	var doneSpans, cachedSpans int
	for _, e := range rec.Events() {
		if e.Kind != trace.KindJob {
			continue
		}
		switch {
		case strings.Contains(e.Name, "[done]"):
			doneSpans++
			if e.Chiplet < 0 {
				t.Errorf("executed span has no worker: %+v", e)
			}
		case strings.Contains(e.Name, "[cached]"):
			cachedSpans++
			if e.Chiplet != -1 {
				t.Errorf("cache hit span should use worker -1: %+v", e)
			}
		}
	}
	if doneSpans != 1 || cachedSpans != 1 {
		t.Fatalf("trace has %d done and %d cached job spans, want 1 and 1", doneSpans, cachedSpans)
	}
}

// TestLRUEvictionRacesSingleFlight churns a one-slot cache while an
// identical job is in flight: the duplicate submission must piggyback on
// the live flight (evictions never force a recompute of in-flight work),
// and the contested result must still land in the cache afterwards.
func TestLRUEvictionRacesSingleFlight(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	execHook = func(ctx context.Context, j Job) (*cpelide.Report, error) {
		if j.Params.Iters == 0 { // the contested job; churn jobs set Iters
			started <- struct{}{}
			<-release
		}
		return &cpelide.Report{Workload: j.Workload, Cycles: uint64(j.Params.Iters)}, nil
	}
	defer func() { execHook = nil }()

	f := New(Options{Workers: 2, CacheEntries: 1})
	defer f.Close()

	waitFor := func(what string, cond func(Counters) bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond(f.Counters()) {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s (counters %+v)", what, f.Counters())
			}
			time.Sleep(time.Millisecond)
		}
	}

	contested := baseJob()
	leaderDone := make(chan *cpelide.Report, 1)
	go func() {
		rep, err := f.Submit(context.Background(), contested)
		if err != nil {
			t.Error(err)
		}
		leaderDone <- rep
	}()
	<-started // the leader is executing and will block until released

	// Churn the one-slot cache so every insertion evicts the previous
	// resident while the contested flight is still live.
	for i := 1; i <= 3; i++ {
		j := baseJob()
		j.Params.Iters = i
		if _, err := f.Submit(context.Background(), j); err != nil {
			t.Fatal(err)
		}
	}

	// A duplicate of the contested job must dedup onto the live flight,
	// not become a second leader (its key is long gone from the cache).
	dupDone := make(chan *cpelide.Report, 1)
	go func() {
		rep, err := f.Submit(context.Background(), contested)
		if err != nil {
			t.Error(err)
		}
		dupDone <- rep
	}()
	waitFor("dedup registration", func(c Counters) bool { return c.DedupWaits == 1 })
	close(release)

	lrep, drep := <-leaderDone, <-dupDone
	if lrep != drep {
		t.Fatal("duplicate submission did not share the leader's report")
	}
	c := f.Counters()
	if c.Runs != 4 {
		t.Fatalf("runs=%d, want 4 (3 churn + 1 contested; the duplicate must not recompute)", c.Runs)
	}
	if c.Evictions != 3 {
		t.Fatalf("evictions=%d, want 3 (churn twice + contested result displacing the last churn job)", c.Evictions)
	}
	// The contested result was cached on completion despite the churn.
	if _, err := f.Submit(context.Background(), contested); err != nil {
		t.Fatal(err)
	}
	if got := f.Counters().CacheHits; got != 1 {
		t.Fatalf("post-flight resubmit hits=%d, want 1 (result must be resident)", got)
	}
	if n := inflightLen(f); n != 0 {
		t.Fatalf("inflight map holds %d entries after all flights resolved, want 0", n)
	}

	// Re-admission after eviction: push the contested result out of the
	// one-slot cache, then resubmit it. The key is gone from both cache and
	// inflight, so this must start a brand-new flight (not dedup against a
	// stale entry) and the fresh result must be re-admitted to the cache.
	evictor := baseJob()
	evictor.Params.Iters = 4
	if _, err := f.Submit(context.Background(), evictor); err != nil {
		t.Fatal(err)
	}
	rep2, err := f.Submit(context.Background(), contested)
	if err != nil {
		t.Fatal(err)
	}
	if rep2 == lrep {
		t.Fatal("post-eviction resubmit returned the old flight's report; want a recompute")
	}
	c = f.Counters()
	if c.Runs != 6 {
		t.Fatalf("runs=%d, want 6 (evictor + re-admitted contested job both execute)", c.Runs)
	}
	if c.DedupWaits != 1 {
		t.Fatalf("dedup waits=%d, want 1 (re-admission must not count as a dedup)", c.DedupWaits)
	}
	if _, err := f.Submit(context.Background(), contested); err != nil {
		t.Fatal(err)
	}
	if got := f.Counters().CacheHits; got != 2 {
		t.Fatalf("hits=%d, want 2 (re-admitted result must be resident again)", got)
	}

	// Canceled submissions must not leak flights either: cancel a queued
	// job before it runs and verify the inflight map drains.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	canceled := baseJob()
	canceled.Params.Iters = 99
	if _, err := f.Submit(ctx, canceled); err == nil {
		t.Fatal("submit with canceled context succeeded")
	}
	if n := inflightLen(f); n != 0 {
		t.Fatalf("inflight map holds %d entries after cancel/evict scenarios, want 0", n)
	}
}

// inflightLen reads the single-flight registry size under the farm lock.
func inflightLen(f *Farm) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.inflight)
}

// TestRetryAfterTransientFailure checks panicking attempts are re-run with
// backoff up to the retry budget, while deterministic errors fail fast.
func TestRetryAfterTransientFailure(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	execHook = func(ctx context.Context, j Job) (*cpelide.Report, error) {
		if j.Workload == "bfs" {
			return nil, errors.New("deterministic failure")
		}
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		if n < 3 {
			panic("transient fault")
		}
		return &cpelide.Report{Cycles: 7}, nil
	}
	defer func() { execHook = nil }()

	f := New(Options{Workers: 1, Retries: 3, RetryBaseDelay: time.Millisecond})
	defer f.Close()

	rep, err := f.Submit(context.Background(), baseJob())
	if err != nil {
		t.Fatalf("job failed despite retry budget: %v", err)
	}
	if rep.Cycles != 7 {
		t.Fatalf("got report %+v, want the third attempt's result", rep)
	}
	c := f.Counters()
	if c.Retries != 2 || c.Panics != 2 {
		t.Fatalf("retries=%d panics=%d, want 2 and 2", c.Retries, c.Panics)
	}
	if c.Runs != 1 || c.Errors != 0 {
		t.Fatalf("runs=%d errors=%d, want 1 and 0 (the job eventually succeeded)", c.Runs, c.Errors)
	}

	// A deterministic error consumes no retries.
	bad := baseJob()
	bad.Workload = "bfs"
	if _, err := f.Submit(context.Background(), bad); err == nil {
		t.Fatal("deterministic failure succeeded")
	}
	if got := f.Counters().Retries; got != 2 {
		t.Fatalf("deterministic failure was retried: retries=%d, want still 2", got)
	}
}

// TestJobTimeout covers the per-attempt deadline: without retries the
// submitter sees ErrJobTimeout; with a retry budget a slow first attempt is
// re-run and can succeed.
func TestJobTimeout(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	execHook = func(ctx context.Context, j Job) (*cpelide.Report, error) {
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		if n == 1 || j.Params.Iters == 13 { // first attempt (and the hopeless job) hang
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return &cpelide.Report{Cycles: 9}, nil
	}
	defer func() { execHook = nil }()

	f := New(Options{Workers: 1, JobTimeout: 20 * time.Millisecond, Retries: 1, RetryBaseDelay: time.Millisecond})
	defer f.Close()

	rep, err := f.Submit(context.Background(), baseJob())
	if err != nil {
		t.Fatalf("slow first attempt was not retried: %v", err)
	}
	if rep.Cycles != 9 {
		t.Fatalf("got report %+v, want the retry's result", rep)
	}
	c := f.Counters()
	if c.Timeouts != 1 || c.Retries != 1 {
		t.Fatalf("timeouts=%d retries=%d, want 1 and 1", c.Timeouts, c.Retries)
	}

	// A job that hangs on every attempt exhausts the budget and surfaces
	// ErrJobTimeout to the submitter.
	hopeless := baseJob()
	hopeless.Params.Iters = 13
	if _, err := f.Submit(context.Background(), hopeless); !errors.Is(err, ErrJobTimeout) {
		t.Fatalf("got %v, want ErrJobTimeout", err)
	}
	if c := f.Counters(); c.Timeouts != 3 || c.Errors != 1 {
		t.Fatalf("timeouts=%d errors=%d, want 3 and 1", c.Timeouts, c.Errors)
	}
}

// TestDoOrderAndError checks Do returns reports in job order and surfaces
// the first real failure.
func TestDoOrderAndError(t *testing.T) {
	execHook = func(ctx context.Context, j Job) (*cpelide.Report, error) {
		if j.Workload == "bfs" {
			return nil, errors.New("boom")
		}
		return &cpelide.Report{Workload: j.Workload}, nil
	}
	defer func() { execHook = nil }()

	f := New(Options{Workers: 2})
	defer f.Close()

	jobs := []Job{baseJob(), baseJob(), baseJob()}
	jobs[1].Workload = "btree"
	jobs[2].Workload = "pathfinder"
	reps, err := f.Do(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"square", "btree", "pathfinder"} {
		if reps[i].Workload != want {
			t.Fatalf("reps[%d].Workload=%q, want %q", i, reps[i].Workload, want)
		}
	}

	bad := append([]Job{}, jobs...)
	bad[1].Workload = "bfs"
	if _, err := f.Do(context.Background(), bad); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("Do error = %v, want the job failure", err)
	}
}
