package farm

import (
	"container/list"

	"repro"
)

// lruCache is a bounded most-recently-used result cache keyed by canonical
// job hash. It is not goroutine-safe; the Farm guards it with its mutex.
type lruCache struct {
	cap int // <= 0 disables caching entirely
	ll  *list.List
	m   map[string]*list.Element
}

type lruEntry struct {
	key string
	rep *cpelide.Report
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

func (c *lruCache) get(key string) (*cpelide.Report, bool) {
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).rep, true
}

// add inserts or refreshes key and reports whether an older entry was
// evicted to stay within capacity.
func (c *lruCache) add(key string, rep *cpelide.Report) bool {
	if c.cap <= 0 {
		return false
	}
	if el, ok := c.m[key]; ok {
		el.Value.(*lruEntry).rep = rep
		c.ll.MoveToFront(el)
		return false
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key: key, rep: rep})
	if c.ll.Len() <= c.cap {
		return false
	}
	oldest := c.ll.Back()
	c.ll.Remove(oldest)
	delete(c.m, oldest.Value.(*lruEntry).key)
	return true
}

func (c *lruCache) len() int { return c.ll.Len() }
