package farm

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"repro"
	"repro/internal/config"
	"repro/internal/faults"
	"repro/internal/workloads"
)

// StreamJob binds one workload to a chiplet set inside a multi-stream job.
type StreamJob struct {
	// Workload is a registered benchmark name (workloads.Names).
	Workload string `json:"workload"`
	// Chiplets binds the stream; nil binds it to all chiplets.
	Chiplets []int `json:"chiplets,omitempty"`
	// Rename is appended to the built workload's name so two streams of
	// the same benchmark stay distinguishable in reports.
	Rename string `json:"rename,omitempty"`
}

// FusionSpec applies software kernel fusion (kernels.FuseAdjacent) to the
// built workload before the run. Zero limits use the fusion defaults.
type FusionSpec struct {
	MaxArgs     int `json:"max_args,omitempty"`
	MaxLDSBytes int `json:"max_lds_bytes,omitempty"`
}

// Job is one deterministic simulation request: a workload (or multi-stream
// binding), its construction parameters, the machine, and the run options.
// Jobs are content-addressed — Key canonicalizes every field that affects
// the Report, so identical requests hit the cache and equivalent spellings
// (Scale 0 vs 1, single-workload vs one-stream form, protocol-irrelevant
// knobs) collapse to the same key.
type Job struct {
	// Workload is the single-stream shorthand: the benchmark runs as one
	// stream across all chiplets. Mutually exclusive with Streams.
	Workload string
	// Streams is the multi-stream form (Section VI study); all streams
	// allocate from one shared allocator in order, like RunStreams callers.
	Streams []StreamJob
	// Params tunes workload construction (footprint scale, iterations).
	Params workloads.Params
	// Config is the simulated machine.
	Config cpelide.Config
	// Options tunes the run. Options.Trace is ignored: a cached Report is
	// shared across submitters, so per-run tracing through the farm would
	// be lost on hits; the farm records its own job spans instead.
	Options cpelide.Options
	// Fusion, when non-nil, fuses adjacent kernels of the built workload
	// (single-stream jobs only).
	Fusion *FusionSpec
}

// streams returns the canonical stream list of the job.
func (j Job) streams() ([]StreamJob, error) {
	if j.Workload != "" && len(j.Streams) > 0 {
		return nil, errors.New("farm: job sets both Workload and Streams")
	}
	if j.Workload != "" {
		return []StreamJob{{Workload: j.Workload}}, nil
	}
	if len(j.Streams) == 0 {
		return nil, errors.New("farm: job names no workload")
	}
	if j.Fusion != nil {
		return nil, errors.New("farm: Fusion applies to single-stream jobs only")
	}
	return j.Streams, nil
}

// Name returns a short display label for logs and trace spans.
func (j Job) Name() string {
	label := j.Workload
	if label == "" {
		for i, s := range j.Streams {
			if i > 0 {
				label += "+"
			}
			label += s.Workload
		}
	}
	if j.Fusion != nil {
		label += "+fused"
	}
	return fmt.Sprintf("%s/%s/%dc", label, j.Options.Protocol, j.Config.NumChiplets)
}

// keyPayload is the canonical form that gets hashed. Bump Version whenever
// the canonicalization rules change so stale persisted keys cannot alias.
type keyPayload struct {
	Version int
	Streams []StreamJob
	Params  workloads.Params
	Config  config.GPU
	Options optionsKey
	Fusion  *FusionSpec
}

// optionsKey mirrors every cpelide.Options field that can influence a
// Report, spelled out explicitly so a new Options field cannot silently
// join the key with the wrong semantics (TestOptionsKeyCoversOptions
// enforces the mirror stays complete).
type optionsKey struct {
	Protocol            int
	NoRangeInfo         bool
	CPElideRangeOps     bool
	CPElideTableEntries int
	HMGDirLinesPerEntry int
	HMGDirEntries       int
	DriverManaged       bool
	Placement           uint8
	InferAnnotations    bool
	Scheduler           uint8
	SyncLatencySets     int
	PerKernelStats      bool
	Mutate              uint8
	Faults              *faults.Config
}

// canonOptions normalizes o into its key form. Protocol-specific knobs that
// the selected protocol never reads are zeroed, so e.g. a table-size sweep
// reuses one cached Baseline run across every point.
func canonOptions(o cpelide.Options) optionsKey {
	k := optionsKey{
		Protocol:         int(o.Protocol),
		NoRangeInfo:      o.NoRangeInfo,
		DriverManaged:    o.DriverManaged,
		Placement:        uint8(o.Placement),
		InferAnnotations: o.InferAnnotations,
		Scheduler:        uint8(o.Scheduler),
		SyncLatencySets:  o.SyncLatencySets,
		PerKernelStats:   o.PerKernelStats,
		Mutate:           uint8(o.Mutate),
	}
	if k.SyncLatencySets <= 1 {
		k.SyncLatencySets = 0 // 0 and 1 both mean "no extra serialized sets"
	}
	if o.Protocol == cpelide.ProtocolCPElide {
		k.CPElideRangeOps = o.CPElideRangeOps
		k.CPElideTableEntries = o.CPElideTableEntries
	}
	if o.Protocol == cpelide.ProtocolHMG || o.Protocol == cpelide.ProtocolHMGWriteBack {
		k.HMGDirLinesPerEntry = o.HMGDirLinesPerEntry
		k.HMGDirEntries = o.HMGDirEntries
	}
	if o.Faults.Enabled() {
		c := o.Faults.Canonical()
		k.Faults = &c
	}
	return k
}

// canonParams normalizes the workload parameters: every Scale the builders
// treat as "unscaled" (<= 0 or exactly 1) maps to 1, and non-positive
// iteration overrides map to 0 (keep the workload default).
func canonParams(p workloads.Params) workloads.Params {
	if p.Scale <= 0 || p.Scale == 1 {
		p.Scale = 1
	}
	if p.Iters <= 0 {
		p.Iters = 0
	}
	return p
}

// Key returns the job's canonical content hash: 64 hex characters of
// SHA-256 over the canonical JSON payload. Two jobs with the same key
// produce byte-identical Reports.
func (j Job) Key() (string, error) {
	ss, err := j.streams()
	if err != nil {
		return "", err
	}
	payload := keyPayload{
		Version: 1,
		Streams: ss,
		Params:  canonParams(j.Params),
		Config:  j.Config,
		Options: canonOptions(j.Options),
		Fusion:  j.Fusion,
	}
	b, err := json.Marshal(payload)
	if err != nil {
		return "", fmt.Errorf("farm: canonicalize job: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
