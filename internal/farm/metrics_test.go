package farm

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro"
	"repro/internal/metrics"
)

// TestFarmMetrics drives a small job mix through an instrumented farm —
// a miss, a cache hit, and a fault-injected run — and checks the /metrics
// series: lifecycle counters, simulation roll-ups, fault counters, the job
// latency histogram, and the scrape-time gauges.
func TestFarmMetrics(t *testing.T) {
	execHook = func(ctx context.Context, j Job) (*cpelide.Report, error) {
		rep := &cpelide.Report{Workload: j.Workload, Cycles: 1000, Kernels: 7, Accesses: 5000}
		if j.Options.Faults != nil {
			rep.Faults = &cpelide.FaultCounters{ReqDrops: 3, AckDrops: 1, Retries: 4, Degradations: 1}
		}
		return rep, nil
	}
	defer func() { execHook = nil }()

	reg := metrics.NewRegistry()
	f := New(Options{Workers: 2, Metrics: reg})
	defer f.Close()

	ctx := context.Background()
	job := Job{Workload: "square", Config: cpelide.DefaultConfig(4)}
	if _, err := f.Submit(ctx, job); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(ctx, job); err != nil { // cache hit
		t.Fatal(err)
	}
	faulted := job
	faulted.Options.Faults = &cpelide.FaultConfig{ReqDropRate: 0.1}
	if _, err := f.Submit(ctx, faulted); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"farm_jobs_total 3",
		"farm_cache_hits_total 1",
		"farm_cache_misses_total 2",
		"farm_runs_total 2",
		"farm_errors_total 0",
		"farm_workers 2",
		"farm_inflight_jobs 0",
		"farm_cache_entries 2",
		"farm_job_duration_us_count 2",
		"sim_kernels_total 14",
		"sim_accesses_total 10000",
		"sim_cycles_total 2000",
		"sim_stale_reads_total 0",
		"fault_req_drops_total 3",
		"fault_ack_drops_total 1",
		"cp_watchdog_retries_total 4",
		"cp_watchdog_degradations_total 1",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing series %q in exposition:\n%s", want, out)
		}
	}
}

// TestFarmMetricsNilRegistry proves the nil-registry path stays a no-op:
// the farm runs normally with zero metric plumbing configured.
func TestFarmMetricsNilRegistry(t *testing.T) {
	execHook = func(ctx context.Context, j Job) (*cpelide.Report, error) {
		return &cpelide.Report{Workload: j.Workload}, nil
	}
	defer func() { execHook = nil }()
	f := New(Options{Workers: 1})
	defer f.Close()
	if _, err := f.Submit(context.Background(), Job{Workload: "square", Config: cpelide.DefaultConfig(4)}); err != nil {
		t.Fatal(err)
	}
	if f.Counters().Runs != 1 {
		t.Error("run not counted")
	}
}
