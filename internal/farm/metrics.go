package farm

import (
	"repro"
	"repro/internal/metrics"
)

// farmMetrics is the farm's production-metrics surface: lifecycle counters
// mirroring Counters, a per-job latency histogram, and post-run roll-ups of
// what the simulations themselves did (kernels, accesses, stale reads, and
// the fault injector's tallies). Everything is registered up front so the
// /metrics series set is stable from the first scrape; with a nil registry
// every metric is a detached no-op, so instrumentation sites need no guards.
type farmMetrics struct {
	jobs, hits, misses, dedup       *metrics.Counter
	runs, errs, panics              *metrics.Counter
	evictions, retries, timeouts    *metrics.Counter
	storeHits, storePuts, storeErrs *metrics.Counter
	jobUS                           *metrics.Histogram

	simKernels, simAccesses, simCycles, simStale *metrics.Counter

	faultReqDrops, faultAckDrops, faultAckDelays *metrics.Counter
	faultLinkWindows, faultParity                *metrics.Counter
	watchdogRetries, watchdogDegradations        *metrics.Counter
}

// newFarmMetrics registers the farm's series in r (nil-safe) and wires the
// live gauges: queue depth and cache occupancy are computed at scrape time
// from the farm's own state, so they can never drift from reality.
func newFarmMetrics(f *Farm, r *metrics.Registry) *farmMetrics {
	m := &farmMetrics{
		jobs:      r.Counter("farm_jobs_total", "Submissions, including cache hits and dedup waits."),
		hits:      r.Counter("farm_cache_hits_total", "Submissions served from the result cache."),
		misses:    r.Counter("farm_cache_misses_total", "Submissions that became flight leaders."),
		dedup:     r.Counter("farm_dedup_waits_total", "Submissions that piggybacked on an identical in-flight job."),
		runs:      r.Counter("farm_runs_total", "Simulations executed to completion."),
		errs:      r.Counter("farm_errors_total", "Failed executions, including canceled ones."),
		panics:    r.Counter("farm_panics_total", "Worker panics (a subset of errors)."),
		evictions: r.Counter("farm_cache_evictions_total", "Cache entries dropped by the LRU bound."),
		retries:   r.Counter("farm_retries_total", "Re-executed attempts after transient failures."),
		timeouts:  r.Counter("farm_timeouts_total", "Attempts that hit the per-attempt job timeout."),
		storeHits: r.Counter("farm_store_hits_total", "Flights resolved from the persistent result store instead of simulating."),
		storePuts: r.Counter("farm_store_puts_total", "Completed runs written back to the persistent result store."),
		storeErrs: r.Counter("farm_store_errors_total", "Failed persistent-store reads and writes (jobs still succeed)."),
		jobUS:     r.Histogram("farm_job_duration_us", "Per-job wall time from queue to resolution, microseconds."),

		simKernels:  r.Counter("sim_kernels_total", "Dynamic kernels executed across all completed runs."),
		simAccesses: r.Counter("sim_accesses_total", "Line-granularity accesses simulated across all completed runs."),
		simCycles:   r.Counter("sim_cycles_total", "Simulated GPU cycles across all completed runs."),
		simStale:    r.Counter("sim_stale_reads_total", "Functional coherence violations observed (must stay zero)."),

		faultReqDrops:        r.Counter("fault_req_drops_total", "Injected synchronization-request drops."),
		faultAckDrops:        r.Counter("fault_ack_drops_total", "Injected completion-ack drops."),
		faultAckDelays:       r.Counter("fault_ack_delays_total", "Injected completion-ack delays."),
		faultLinkWindows:     r.Counter("fault_link_windows_total", "Transient link-degradation windows opened."),
		faultParity:          r.Counter("fault_parity_errors_total", "Coherence-table parity errors injected."),
		watchdogRetries:      r.Counter("cp_watchdog_retries_total", "CP watchdog retransmissions after lost acks."),
		watchdogDegradations: r.Counter("cp_watchdog_degradations_total", "Graceful degradations to the baseline full synchronization."),
	}
	r.GaugeFunc("farm_inflight_jobs", "Unresolved flights: queued or running simulations.", func() int64 {
		f.mu.Lock()
		n := len(f.inflight)
		f.mu.Unlock()
		return int64(n)
	})
	r.GaugeFunc("farm_cache_entries", "Memoized reports currently held.", func() int64 {
		f.mu.Lock()
		n := f.cache.len()
		f.mu.Unlock()
		return int64(n)
	})
	r.Gauge("farm_workers", "Worker-pool concurrency bound.").Set(int64(f.workers))
	return m
}

// observeReport folds one completed simulation's outcome into the roll-up
// counters. Called once per executed run (cache hits and dedup waiters share
// the leader's report and are not re-counted).
func (m *farmMetrics) observeReport(rep *cpelide.Report) {
	m.simKernels.Add(rep.Kernels)
	m.simAccesses.Add(rep.Accesses)
	m.simCycles.Add(rep.Cycles)
	m.simStale.Add(rep.StaleReads)
	if fc := rep.Faults; fc != nil {
		m.faultReqDrops.Add(fc.ReqDrops)
		m.faultAckDrops.Add(fc.AckDrops)
		m.faultAckDelays.Add(fc.AckDelays)
		m.faultLinkWindows.Add(fc.LinkWindows)
		m.faultParity.Add(fc.ParityErrors)
		m.watchdogRetries.Add(fc.Retries)
		m.watchdogDegradations.Add(fc.Degradations)
	}
}
