package farm

import (
	"repro"
)

// Store is a persistent, content-addressed result store layered underneath
// the in-memory LRU (internal/cluster/diskstore is the on-disk
// implementation). The farm consults it after an LRU miss before running a
// simulation, and writes every freshly computed report back, so results
// survive process restarts and — when workers share one store — node churn.
//
// Contract: Get returns (nil, false, nil) for a never-stored key; an
// unreadable or corrupt entry is (nil, false, err) so the farm can count it
// and recompute. Put must be atomic with respect to concurrent readers in
// any process. Reports passed to Put are shared and must not be mutated.
type Store interface {
	Get(key string) (*cpelide.Report, bool, error)
	Put(key string, rep *cpelide.Report) error
}

// Warm preloads the in-memory result cache from the store, most useful at
// worker startup with keys from diskstore.RecentKeys. It returns how many
// reports were loaded. Keys that miss or fail to load are skipped (failures
// land in the StoreErrors counter); keys already resident stay put.
func (f *Farm) Warm(keys []string) int {
	if f.store == nil {
		return 0
	}
	loaded := 0
	for _, key := range keys {
		f.mu.Lock()
		_, resident := f.cache.get(key)
		f.mu.Unlock()
		if resident {
			continue
		}
		rep, ok, err := f.store.Get(key)
		if err != nil {
			f.mu.Lock()
			f.c.StoreErrors++
			f.m.storeErrs.Inc()
			f.mirrorLocked()
			f.mu.Unlock()
			continue
		}
		if !ok {
			continue
		}
		f.mu.Lock()
		if f.cache.add(key, rep) {
			f.c.Evictions++
			f.m.evictions.Inc()
		}
		f.mirrorLocked()
		f.mu.Unlock()
		loaded++
	}
	return loaded
}
