// Package farm is the experiment-execution engine: a bounded worker pool
// that runs cpelide simulations concurrently, fronted by a content-
// addressed result cache with single-flight deduplication.
//
// Every cpelide.Run is deterministic and independent, so a (workload,
// params, config, options) tuple fully determines its Report. The farm
// exploits that twice: identical jobs submitted concurrently compute once
// (single flight), and completed results are memoized in an LRU keyed by
// the canonical job hash (Job.Key), so regenerating a figure suite — or
// serving it over HTTP — never repeats a simulation. A Report is
// byte-identical whether it was computed serially, by N workers, or served
// from the cache; cached Reports are shared and must be treated as
// read-only.
//
// The pool is bounded (default runtime.NumCPU() workers), submission is
// context-aware (a canceled submitter stops waiting, and a canceled
// leader's simulation halts at the next kernel boundary via
// cpelide.RunStreamsContext), and worker panics are isolated into errors.
// Hit/miss/run counters are kept internally, optionally mirrored into a
// stats.Sheet, and each job's queued -> running -> done lifetime can be
// emitted into a trace.Recorder for Perfetto.
package farm

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"time"

	"repro"
	"repro/internal/kernels"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// DefaultCacheEntries bounds the result cache when Options.CacheEntries is
// zero. Reports are small (a counter sheet plus histograms), so a few
// thousand fit comfortably in memory.
const DefaultCacheEntries = 4096

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("farm: closed")

// ErrJobTimeout marks a job attempt that exceeded Options.JobTimeout while
// its submitter was still waiting. Wrapped, so test with errors.Is.
var ErrJobTimeout = errors.New("farm: job attempt timed out")

// ErrPanic marks a job whose execution panicked. Wrapped, so test with
// errors.Is.
var ErrPanic = errors.New("farm: job panicked")

// DefaultRetryDelay is the backoff base when Options.RetryBaseDelay is zero.
const DefaultRetryDelay = 10 * time.Millisecond

// Options configures a Farm.
type Options struct {
	// Workers bounds concurrent simulations; <= 0 uses runtime.NumCPU().
	Workers int
	// CacheEntries bounds the result cache: 0 uses DefaultCacheEntries,
	// negative disables caching (single-flight dedup still applies).
	CacheEntries int
	// Stats, when non-nil, receives the farm counters (stats.Farm*) as
	// absolute levels after every state change.
	Stats *stats.Sheet
	// Trace, when non-nil, records one span per job (queued -> running ->
	// done/cached/error) in wall-clock microseconds since the farm started.
	Trace *trace.Recorder
	// JobTimeout bounds each execution attempt; the simulation halts at the
	// next kernel boundary once the deadline passes and the attempt fails
	// with ErrJobTimeout. Zero means no per-attempt deadline.
	JobTimeout time.Duration
	// Retries is how many extra attempts a transiently failed job gets
	// (a timed-out attempt or a worker panic, never a canceled submitter).
	// Zero means fail on the first error.
	Retries int
	// RetryBaseDelay is the base of the full-jitter exponential backoff
	// between attempts; zero uses DefaultRetryDelay.
	RetryBaseDelay time.Duration
	// Metrics, when non-nil, receives the farm's production metrics:
	// lifecycle counters, queue-depth and cache gauges, a per-job latency
	// histogram, and post-run roll-ups of simulation and fault-injection
	// activity. Nil disables the instrumentation at no cost.
	Metrics *metrics.Registry
	// Store, when non-nil, is a persistent result store layered under the
	// LRU: flight leaders consult it before simulating, and completed runs
	// are written back, so results survive restarts and are shared between
	// workers pointed at the same store.
	Store Store
}

// Counters is a snapshot of the farm's activity tallies.
type Counters struct {
	// Jobs counts Submit calls (including cache hits and dedup waits).
	Jobs uint64 `json:"jobs"`
	// CacheHits counts submissions served from the result cache.
	CacheHits uint64 `json:"cache_hits"`
	// CacheMisses counts submissions that became flight leaders.
	CacheMisses uint64 `json:"cache_misses"`
	// DedupWaits counts submissions that piggybacked on an identical
	// in-flight job instead of computing.
	DedupWaits uint64 `json:"dedup_waits"`
	// Runs counts simulations that actually executed to completion.
	Runs uint64 `json:"runs"`
	// Errors counts failed executions (including canceled ones).
	Errors uint64 `json:"errors"`
	// Panics counts worker panics (a subset of Errors).
	Panics uint64 `json:"panics"`
	// Evictions counts cache entries dropped by the LRU bound.
	Evictions uint64 `json:"evictions"`
	// Retries counts re-executed attempts after transient failures.
	Retries uint64 `json:"retries"`
	// Timeouts counts attempts that hit the per-attempt JobTimeout.
	Timeouts uint64 `json:"timeouts"`
	// StoreHits counts flights resolved from the persistent store instead
	// of a fresh simulation (Options.Store only).
	StoreHits uint64 `json:"store_hits"`
	// StorePuts counts completed runs written back to the persistent store.
	StorePuts uint64 `json:"store_puts"`
	// StoreErrors counts failed store reads and writes (the job itself
	// still succeeds; the store is an accelerator, never a dependency).
	StoreErrors uint64 `json:"store_errors"`
}

// Farm runs jobs on a bounded worker pool behind a content-addressed cache.
type Farm struct {
	workers int
	tasks   chan *task
	quit    chan struct{}
	wg      sync.WaitGroup

	mu       sync.Mutex
	cache    *lruCache
	inflight map[string]*flight
	c        Counters
	closed   bool

	sheet *stats.Sheet
	rec   *trace.Recorder
	m     *farmMetrics
	store Store
	epoch time.Time

	jobTimeout time.Duration
	retries    int
	retryBase  time.Duration
}

// flight is one in-progress computation; every submitter of the same key
// waits on done.
type flight struct {
	key      string
	job      Job
	queuedUS uint64
	done     chan struct{}
	rep      *cpelide.Report
	err      error
	resolved bool
}

type task struct {
	ctx context.Context
	fl  *flight
}

// execHook replaces job execution in tests (package-internal).
var execHook func(context.Context, Job) (*cpelide.Report, error)

// New starts a farm with o.Workers worker goroutines. Call Close when done.
func New(o Options) *Farm {
	w := o.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	entries := o.CacheEntries
	if entries == 0 {
		entries = DefaultCacheEntries
	}
	f := &Farm{
		workers:  w,
		tasks:    make(chan *task),
		quit:     make(chan struct{}),
		cache:    newLRU(entries),
		inflight: make(map[string]*flight),
		sheet:    o.Stats,
		rec:      o.Trace,
		store:    o.Store,
		epoch:    time.Now(),

		jobTimeout: o.JobTimeout,
		retries:    o.Retries,
		retryBase:  o.RetryBaseDelay,
	}
	f.m = newFarmMetrics(f, o.Metrics)
	f.wg.Add(w)
	for i := 0; i < w; i++ {
		go f.worker(i)
	}
	return f
}

// Workers returns the pool's concurrency bound.
func (f *Farm) Workers() int { return f.workers }

// Close stops the workers after any running jobs finish. Submissions that
// have not reached a worker resolve with ErrClosed. Close is idempotent.
func (f *Farm) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	f.mu.Unlock()
	close(f.quit)
	f.wg.Wait()
}

// Counters returns a snapshot of the activity tallies.
func (f *Farm) Counters() Counters {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.c
}

// CacheLen returns the number of memoized results.
func (f *Farm) CacheLen() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cache.len()
}

// Submit executes job (or returns its memoized Report) and blocks until
// the result is available, an identical in-flight job completes, or ctx is
// canceled. The returned Report may be shared with other submitters and
// must be treated as read-only.
func (f *Farm) Submit(ctx context.Context, job Job) (*cpelide.Report, error) {
	key, err := job.Key()
	if err != nil {
		return nil, err
	}

	f.mu.Lock()
	f.c.Jobs++
	f.m.jobs.Inc()
	if rep, ok := f.cache.get(key); ok {
		f.c.CacheHits++
		f.m.hits.Inc()
		f.mirrorLocked()
		now := f.sinceUS()
		f.mu.Unlock()
		f.traceJob(-1, job.Name()+" [cached]", now, now, now)
		return rep, nil
	}
	if fl, ok := f.inflight[key]; ok {
		f.c.DedupWaits++
		f.m.dedup.Inc()
		f.mirrorLocked()
		f.mu.Unlock()
		select {
		case <-fl.done:
			return fl.rep, fl.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if f.closed {
		f.mu.Unlock()
		return nil, ErrClosed
	}
	f.c.CacheMisses++
	f.m.misses.Inc()
	fl := &flight{key: key, job: job, queuedUS: f.sinceUS(), done: make(chan struct{})}
	f.inflight[key] = fl
	f.mirrorLocked()
	f.mu.Unlock()

	t := &task{ctx: ctx, fl: fl}
	select {
	case f.tasks <- t:
	case <-ctx.Done():
		f.finish(fl, nil, ctx.Err(), srcAbort)
		f.traceJob(-1, job.Name()+" [canceled]", fl.queuedUS, f.sinceUS(), f.sinceUS())
	case <-f.quit:
		f.finish(fl, nil, ErrClosed, srcAbort)
	}
	<-fl.done
	return fl.rep, fl.err
}

// Do submits every job concurrently (the pool still bounds parallelism)
// and returns the reports in job order. The first error cancels the rest.
func (f *Farm) Do(ctx context.Context, jobs []Job) ([]*cpelide.Report, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	reps := make([]*cpelide.Report, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	wg.Add(len(jobs))
	for i := range jobs {
		go func(i int) {
			defer wg.Done()
			rep, err := f.Submit(ctx, jobs[i])
			reps[i], errs[i] = rep, err
			if err != nil {
				cancel()
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return reps, nil
}

func (f *Farm) worker(id int) {
	defer f.wg.Done()
	for {
		select {
		case t := <-f.tasks:
			f.run(id, t)
		case <-f.quit:
			return
		}
	}
}

// run executes one task on worker id with panic isolation. A flight leader
// consults the persistent store first — a hit resolves the flight without
// simulating — and writes freshly computed reports back.
func (f *Farm) run(id int, t *task) {
	startUS := f.sinceUS()
	if err := t.ctx.Err(); err != nil {
		f.finish(t.fl, nil, err, srcAbort)
		f.traceJob(id, t.fl.job.Name()+" [canceled]", t.fl.queuedUS, startUS, f.sinceUS())
		return
	}
	if rep, ok := f.storeGet(t.fl.key); ok {
		f.finish(t.fl, rep, nil, srcStore)
		f.traceJob(id, t.fl.job.Name()+" [store]", t.fl.queuedUS, startUS, f.sinceUS())
		return
	}
	rep, err := f.executeWithRetry(t.ctx, t.fl.job)
	state := "done"
	if err != nil {
		state = "error"
	} else {
		f.storePut(t.fl.key, rep)
	}
	f.finish(t.fl, rep, err, srcRun)
	f.traceJob(id, t.fl.job.Name()+" ["+state+"]", t.fl.queuedUS, startUS, f.sinceUS())
}

// storeGet consults the persistent store; read failures are counted and
// treated as misses so a damaged store degrades to recomputation.
func (f *Farm) storeGet(key string) (*cpelide.Report, bool) {
	if f.store == nil {
		return nil, false
	}
	rep, ok, err := f.store.Get(key)
	if err != nil {
		f.mu.Lock()
		f.c.StoreErrors++
		f.m.storeErrs.Inc()
		f.mirrorLocked()
		f.mu.Unlock()
		return nil, false
	}
	return rep, ok
}

// storePut writes a freshly computed report back to the persistent store;
// failures are counted but never fail the job.
func (f *Farm) storePut(key string, rep *cpelide.Report) {
	if f.store == nil {
		return
	}
	err := f.store.Put(key, rep) // disk I/O stays outside the farm lock
	f.mu.Lock()
	if err != nil {
		f.c.StoreErrors++
		f.m.storeErrs.Inc()
	} else {
		f.c.StorePuts++
		f.m.storePuts.Inc()
	}
	f.mirrorLocked()
	f.mu.Unlock()
}

// executeWithRetry runs j, re-attempting transient failures (per-attempt
// timeouts and worker panics) up to f.retries extra times with full-jitter
// exponential backoff. A canceled submitter or a deterministic simulation
// error fails immediately.
func (f *Farm) executeWithRetry(ctx context.Context, j Job) (*cpelide.Report, error) {
	rep, err := f.attempt(ctx, j)
	for r := 0; r < f.retries && f.transient(ctx, err); r++ {
		select {
		case <-time.After(f.retryDelay(r)):
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-f.quit:
			return nil, ErrClosed
		}
		f.mu.Lock()
		f.c.Retries++
		f.m.retries.Inc()
		f.mirrorLocked()
		f.mu.Unlock()
		rep, err = f.attempt(ctx, j)
	}
	return rep, err
}

// attempt runs j once under the per-attempt deadline, translating an
// attempt-local deadline expiry (the submitter is still waiting) into
// ErrJobTimeout.
func (f *Farm) attempt(parent context.Context, j Job) (*cpelide.Report, error) {
	ctx := parent
	if f.jobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(parent, f.jobTimeout)
		defer cancel()
	}
	rep, err := f.execute(ctx, j)
	if err != nil && errors.Is(ctx.Err(), context.DeadlineExceeded) && parent.Err() == nil {
		f.mu.Lock()
		f.c.Timeouts++
		f.m.timeouts.Inc()
		f.mirrorLocked()
		f.mu.Unlock()
		return nil, fmt.Errorf("farm: job %s after %v: %w", j.Name(), f.jobTimeout, ErrJobTimeout)
	}
	return rep, err
}

// transient reports whether err is worth another attempt: an attempt-local
// timeout or a panic, while the submitter itself is still waiting.
func (f *Farm) transient(ctx context.Context, err error) bool {
	if err == nil || ctx.Err() != nil {
		return false
	}
	return errors.Is(err, ErrJobTimeout) || errors.Is(err, ErrPanic)
}

// retryDelay draws a full-jitter backoff delay for the given retry index:
// uniform in [0, base<<attempt], capped at one second. Jitter decorrelates
// retry storms when many jobs fail together.
func (f *Farm) retryDelay(attempt int) time.Duration {
	base := f.retryBase
	if base <= 0 {
		base = DefaultRetryDelay
	}
	ceil := base << uint(attempt)
	if ceil > time.Second {
		ceil = time.Second
	}
	return time.Duration(rand.Int64N(int64(ceil) + 1))
}

// execute builds the job's workload(s) and runs the simulation, converting
// panics into errors so one bad job cannot take down the pool.
func (f *Farm) execute(ctx context.Context, j Job) (rep *cpelide.Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("farm: job %s: %w: %v", j.Name(), ErrPanic, p)
			f.mu.Lock()
			f.c.Panics++
			f.m.panics.Inc()
			f.mu.Unlock()
		}
	}()
	if execHook != nil {
		return execHook(ctx, j)
	}
	ss, err := j.streams()
	if err != nil {
		return nil, err
	}
	opt := j.Options
	opt.Trace = nil    // see Job.Options: per-run tracing cannot cross the cache
	opt.Profiler = nil // wall-clock attribution cannot cross the cache either
	alloc := cpelide.NewAllocator(j.Config.PageSize)
	specs := make([]cpelide.StreamSpec, 0, len(ss))
	for _, s := range ss {
		w, err := workloads.Build(s.Workload, alloc, j.Params)
		if err != nil {
			return nil, err
		}
		if s.Rename != "" {
			w.Name += s.Rename
		}
		if j.Fusion != nil {
			w = kernels.FuseAdjacent(w, kernels.FusionConfig{
				MaxArgs:     j.Fusion.MaxArgs,
				MaxLDSBytes: j.Fusion.MaxLDSBytes,
			})
		}
		specs = append(specs, cpelide.StreamSpec{Workload: w, Chiplets: s.Chiplets})
	}
	return cpelide.RunStreamsContext(ctx, j.Config, specs, opt)
}

// resolveSrc says how a flight got its result, which decides the counter
// and caching treatment in finish.
type resolveSrc uint8

const (
	srcAbort resolveSrc = iota // canceled or closed before running; never cached
	srcRun                     // freshly simulated
	srcStore                   // loaded from the persistent store
)

// finish resolves a flight exactly once: memoize a successful result,
// update the counters, and release every waiter. Successful results are
// cached whether simulated or store-loaded; only simulations count as Runs
// and feed the per-run metric roll-ups.
func (f *Farm) finish(fl *flight, rep *cpelide.Report, err error, src resolveSrc) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if fl.resolved {
		return
	}
	fl.resolved = true
	fl.rep, fl.err = rep, err
	f.m.jobUS.Observe(f.sinceUS() - fl.queuedUS)
	switch {
	case err != nil:
		f.c.Errors++
		f.m.errs.Inc()
	case src == srcRun:
		f.c.Runs++
		f.m.runs.Inc()
		f.m.observeReport(rep)
	case src == srcStore:
		f.c.StoreHits++
		f.m.storeHits.Inc()
	}
	if err == nil && src != srcAbort && f.cache.add(fl.key, rep) {
		f.c.Evictions++
		f.m.evictions.Inc()
	}
	if f.inflight[fl.key] == fl {
		delete(f.inflight, fl.key)
	}
	f.mirrorLocked()
	close(fl.done)
}

// mirrorLocked copies the counters into the optional stats sheet as
// absolute levels (the Farm* counters carry max semantics). Caller holds mu.
func (f *Farm) mirrorLocked() {
	if f.sheet == nil {
		return
	}
	f.sheet.Set(stats.FarmJobs, f.c.Jobs)
	f.sheet.Set(stats.FarmCacheHits, f.c.CacheHits)
	f.sheet.Set(stats.FarmCacheMisses, f.c.CacheMisses)
	f.sheet.Set(stats.FarmDedupWaits, f.c.DedupWaits)
	f.sheet.Set(stats.FarmRuns, f.c.Runs)
	f.sheet.Set(stats.FarmErrors, f.c.Errors)
	f.sheet.Set(stats.FarmPanics, f.c.Panics)
	f.sheet.Set(stats.FarmEvictions, f.c.Evictions)
	f.sheet.Set(stats.FarmRetries, f.c.Retries)
	f.sheet.Set(stats.FarmTimeouts, f.c.Timeouts)
	f.sheet.Set(stats.FarmStoreHits, f.c.StoreHits)
	f.sheet.Set(stats.FarmStorePuts, f.c.StorePuts)
	f.sheet.Set(stats.FarmStoreErrors, f.c.StoreErrors)
}

// sinceUS returns wall-clock microseconds since the farm started.
func (f *Farm) sinceUS() uint64 {
	return uint64(time.Since(f.epoch).Microseconds())
}

// traceJob serializes span emission; the Recorder itself is single-threaded.
func (f *Farm) traceJob(worker int, name string, queued, start, end uint64) {
	if f.rec == nil {
		return
	}
	f.mu.Lock()
	f.rec.Job(worker, name, queued, start, end)
	f.mu.Unlock()
}
