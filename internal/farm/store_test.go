package farm

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro"
	"repro/internal/cluster/diskstore"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// memStore is an in-memory Store for tests, with optional injected failures.
type memStore struct {
	mu     sync.Mutex
	m      map[string]*cpelide.Report
	getErr error
	putErr error
	gets   int
	puts   int
}

func newMemStore() *memStore { return &memStore{m: make(map[string]*cpelide.Report)} }

func (s *memStore) Get(key string) (*cpelide.Report, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	if s.getErr != nil {
		return nil, false, s.getErr
	}
	rep, ok := s.m[key]
	return rep, ok, nil
}

func (s *memStore) Put(key string, rep *cpelide.Report) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	if s.putErr != nil {
		return s.putErr
	}
	s.m[key] = rep
	return nil
}

// TestStoreHitSkipsRun: a flight whose key is already in the persistent store
// resolves without simulating, lands in the LRU, and counts as a store hit.
func TestStoreHitSkipsRun(t *testing.T) {
	job := baseJob()
	key := mustKey(t, job)
	st := newMemStore()
	st.m[key] = &cpelide.Report{Workload: "square", Cycles: 42}

	execHook = func(ctx context.Context, j Job) (*cpelide.Report, error) {
		t.Error("execHook called despite store hit")
		return nil, errors.New("must not run")
	}
	defer func() { execHook = nil }()

	sheet := stats.New()
	f := New(Options{Workers: 1, Store: st, Stats: sheet})
	defer f.Close()

	rep, err := f.Submit(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles != 42 {
		t.Fatalf("got Cycles=%d, want the stored report", rep.Cycles)
	}
	c := f.Counters()
	if c.StoreHits != 1 || c.Runs != 0 || c.StorePuts != 0 {
		t.Fatalf("counters = %+v, want StoreHits=1 Runs=0 StorePuts=0", c)
	}
	if sheet.Get(stats.FarmStoreHits) != 1 {
		t.Fatalf("stats mirror: FarmStoreHits=%d, want 1", sheet.Get(stats.FarmStoreHits))
	}

	// The hit populated the LRU: a re-submit is a cache hit, not another
	// store read.
	gets := st.gets
	if _, err := f.Submit(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	c = f.Counters()
	if c.CacheHits != 1 || st.gets != gets {
		t.Fatalf("re-submit: CacheHits=%d storeGets=%d->%d, want a pure LRU hit", c.CacheHits, gets, st.gets)
	}
}

// TestRunWritesThrough: a fresh simulation is written back to the store.
func TestRunWritesThrough(t *testing.T) {
	job := baseJob()
	key := mustKey(t, job)
	st := newMemStore()

	execHook = func(ctx context.Context, j Job) (*cpelide.Report, error) {
		return &cpelide.Report{Workload: j.Workload, Cycles: 7}, nil
	}
	defer func() { execHook = nil }()

	f := New(Options{Workers: 1, Store: st})
	defer f.Close()

	if _, err := f.Submit(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	c := f.Counters()
	if c.Runs != 1 || c.StorePuts != 1 || c.StoreHits != 0 {
		t.Fatalf("counters = %+v, want Runs=1 StorePuts=1", c)
	}
	if got, ok := st.m[key]; !ok || got.Cycles != 7 {
		t.Fatalf("store after run: ok=%v rep=%+v, want the fresh report under %s", ok, got, key)
	}
}

// TestStoreErrorsDoNotFailJobs: a broken store degrades to a pass-through —
// the job still runs and succeeds, with both failures counted.
func TestStoreErrorsDoNotFailJobs(t *testing.T) {
	st := newMemStore()
	st.getErr = errors.New("disk on fire")
	st.putErr = errors.New("disk still on fire")

	execHook = func(ctx context.Context, j Job) (*cpelide.Report, error) {
		return &cpelide.Report{Workload: j.Workload, Cycles: 9}, nil
	}
	defer func() { execHook = nil }()

	sheet := stats.New()
	f := New(Options{Workers: 1, Store: st, Stats: sheet})
	defer f.Close()

	rep, err := f.Submit(context.Background(), baseJob())
	if err != nil || rep.Cycles != 9 {
		t.Fatalf("submit with broken store: rep=%+v err=%v", rep, err)
	}
	c := f.Counters()
	if c.StoreErrors != 2 || c.Runs != 1 || c.StoreHits != 0 || c.StorePuts != 0 {
		t.Fatalf("counters = %+v, want StoreErrors=2 (one read, one write) Runs=1", c)
	}
	if sheet.Get(stats.FarmStoreErrors) != 2 {
		t.Fatalf("stats mirror: FarmStoreErrors=%d, want 2", sheet.Get(stats.FarmStoreErrors))
	}
}

// TestWarm preloads the LRU from the store: hits load, misses and failures
// skip, resident keys are left alone.
func TestWarm(t *testing.T) {
	st := newMemStore()
	jobs := make([]Job, 3)
	keys := make([]string, 3)
	for i := range jobs {
		jobs[i] = baseJob()
		jobs[i].Params = workloads.Params{Scale: 0.5, Iters: i + 1}
		keys[i] = mustKey(t, jobs[i])
		st.m[keys[i]] = &cpelide.Report{Workload: "square", Cycles: uint64(100 + i)}
	}

	execHook = func(ctx context.Context, j Job) (*cpelide.Report, error) {
		t.Errorf("execHook called for %s after warm-start", j.Name())
		return nil, errors.New("must not run")
	}
	defer func() { execHook = nil }()

	f := New(Options{Workers: 1, Store: st})
	defer f.Close()

	missing := "0000000000000000000000000000000000000000000000000000000000000000"
	if n := f.Warm(append([]string{missing}, keys...)); n != 3 {
		t.Fatalf("Warm loaded %d, want 3", n)
	}
	if f.CacheLen() != 3 {
		t.Fatalf("cache holds %d entries after warm, want 3", f.CacheLen())
	}
	// Warming again is a no-op: everything is resident.
	gets := st.gets
	if n := f.Warm(keys); n != 0 {
		t.Fatalf("second Warm loaded %d, want 0", n)
	}
	if st.gets != gets {
		t.Fatalf("second Warm touched the store (%d -> %d gets)", gets, st.gets)
	}

	for i, job := range jobs {
		rep, err := f.Submit(context.Background(), job)
		if err != nil || rep.Cycles != uint64(100+i) {
			t.Fatalf("job %d after warm: rep=%+v err=%v", i, rep, err)
		}
	}
	c := f.Counters()
	if c.CacheHits != 3 || c.Runs != 0 {
		t.Fatalf("counters = %+v, want 3 pure cache hits", c)
	}

	// A farm without a store warms to nothing.
	f2 := New(Options{Workers: 1})
	defer f2.Close()
	if n := f2.Warm(keys); n != 0 {
		t.Fatalf("storeless Warm loaded %d, want 0", n)
	}
}

// TestDiskstoreBackedFarm is the restart story end to end: one farm computes
// and persists, a second farm over the same directory serves from disk
// without re-simulating.
func TestDiskstoreBackedFarm(t *testing.T) {
	dir := t.TempDir()
	st1, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	job := baseJob()
	job.Params = workloads.Params{Scale: 0.05}

	f1 := New(Options{Workers: 2, Store: st1})
	rep1, err := f1.Submit(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if c := f1.Counters(); c.Runs != 1 || c.StorePuts != 1 {
		t.Fatalf("first farm counters = %+v, want Runs=1 StorePuts=1", c)
	}
	f1.Close()

	st2, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	f2 := New(Options{Workers: 2, Store: st2})
	defer f2.Close()
	rep2, err := f2.Submit(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	c := f2.Counters()
	if c.StoreHits != 1 || c.Runs != 0 {
		t.Fatalf("restarted farm counters = %+v, want StoreHits=1 Runs=0", c)
	}
	if marshal(t, rep1) != marshal(t, rep2) {
		t.Fatal("report from disk differs from the freshly computed one")
	}

	// Warm-start path: a third farm preloads from RecentKeys and serves the
	// job as a plain LRU hit.
	st3, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := st3.RecentKeys(0)
	if err != nil {
		t.Fatal(err)
	}
	f3 := New(Options{Workers: 2, Store: st3})
	defer f3.Close()
	if n := f3.Warm(keys); n != 1 {
		t.Fatalf("Warm loaded %d, want 1", n)
	}
	if _, err := f3.Submit(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	if c := f3.Counters(); c.CacheHits != 1 || c.StoreHits != 0 || c.Runs != 0 {
		t.Fatalf("warmed farm counters = %+v, want CacheHits=1", c)
	}
}
