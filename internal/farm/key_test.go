package farm

import (
	"reflect"
	"testing"

	"repro"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func baseJob() Job {
	return Job{
		Workload: "square",
		Params:   workloads.Params{Scale: 0.5},
		Config:   cpelide.DefaultConfig(4),
		Options:  cpelide.Options{Protocol: cpelide.ProtocolCPElide},
	}
}

func mustKey(t *testing.T, j Job) string {
	t.Helper()
	k, err := j.Key()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestKeyDeterministic(t *testing.T) {
	a, b := mustKey(t, baseJob()), mustKey(t, baseJob())
	if a != b {
		t.Fatalf("identical jobs hashed differently: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("key %q is not a sha256 hex digest", a)
	}
}

// TestKeyDiscriminates flips every class of report-relevant field and
// demands a fresh key each time.
func TestKeyDiscriminates(t *testing.T) {
	ref := mustKey(t, baseJob())
	muts := map[string]func(*Job){
		"workload":      func(j *Job) { j.Workload = "btree" },
		"protocol":      func(j *Job) { j.Options.Protocol = cpelide.ProtocolHMG },
		"table-entries": func(j *Job) { j.Options.CPElideTableEntries = 8 },
		"range-ops":     func(j *Job) { j.Options.CPElideRangeOps = true },
		"no-range-info": func(j *Job) { j.Options.NoRangeInfo = true },
		"driver":        func(j *Job) { j.Options.DriverManaged = true },
		"placement":     func(j *Job) { j.Options.Placement = cpelide.PlacementInterleaved },
		"scheduler":     func(j *Job) { j.Options.Scheduler = cpelide.ChunkedCU },
		"infer":         func(j *Job) { j.Options.InferAnnotations = true },
		"sync-sets":     func(j *Job) { j.Options.SyncLatencySets = 2 },
		"per-kernel":    func(j *Job) { j.Options.PerKernelStats = true },
		"faults":        func(j *Job) { j.Options.Faults = &cpelide.FaultConfig{AckDropRate: 0.1} },
		"fault-seed":    func(j *Job) { j.Options.Faults = &cpelide.FaultConfig{AckDropRate: 0.1, Seed: 7} },
		"scale":         func(j *Job) { j.Params.Scale = 0.25 },
		"iters":         func(j *Job) { j.Params.Iters = 3 },
		"chiplets":      func(j *Job) { j.Config = cpelide.DefaultConfig(8) },
		"l2-size":       func(j *Job) { j.Config.L2SizeBytes *= 2 },
		"fusion":        func(j *Job) { j.Fusion = &FusionSpec{} },
		"fusion-limits": func(j *Job) { j.Fusion = &FusionSpec{MaxArgs: 2} },
		"streams": func(j *Job) {
			j.Workload = ""
			j.Streams = []StreamJob{{Workload: "square", Chiplets: []int{0, 1}}}
		},
	}
	seen := map[string]string{"": ref}
	for name, mut := range muts {
		j := baseJob()
		mut(&j)
		k := mustKey(t, j)
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %q collides with %q (key %s)", name, prev, k)
		}
		seen[k] = name
	}
}

// TestKeyNormalizes checks that equivalent spellings of the same simulation
// collapse to one key.
func TestKeyNormalizes(t *testing.T) {
	t.Run("scale zero is scale one", func(t *testing.T) {
		a, b := baseJob(), baseJob()
		a.Params.Scale = 0
		b.Params.Scale = 1
		if mustKey(t, a) != mustKey(t, b) {
			t.Fatal("Scale 0 and Scale 1 should alias (both mean unscaled)")
		}
	})
	t.Run("negative iters keep default", func(t *testing.T) {
		a, b := baseJob(), baseJob()
		a.Params.Iters = -5
		if mustKey(t, a) != mustKey(t, b) {
			t.Fatal("Iters<=0 should alias to the workload default")
		}
	})
	t.Run("baseline ignores protocol knobs", func(t *testing.T) {
		a, b := baseJob(), baseJob()
		a.Options = cpelide.Options{Protocol: cpelide.ProtocolBaseline}
		b.Options = cpelide.Options{
			Protocol:            cpelide.ProtocolBaseline,
			CPElideTableEntries: 16,
			CPElideRangeOps:     true,
			HMGDirLinesPerEntry: 1,
			HMGDirEntries:       512,
		}
		if mustKey(t, a) != mustKey(t, b) {
			t.Fatal("Baseline never reads CPElide/HMG knobs; keys must match")
		}
	})
	t.Run("cpelide ignores hmg knobs", func(t *testing.T) {
		a, b := baseJob(), baseJob()
		b.Options.HMGDirLinesPerEntry = 1
		if mustKey(t, a) != mustKey(t, b) {
			t.Fatal("CPElide never reads HMG knobs; keys must match")
		}
	})
	t.Run("trace is observational", func(t *testing.T) {
		a, b := baseJob(), baseJob()
		b.Options.Trace = trace.New(0)
		if mustKey(t, a) != mustKey(t, b) {
			t.Fatal("Options.Trace must not enter the key")
		}
	})
	t.Run("workload is one-stream shorthand", func(t *testing.T) {
		a, b := baseJob(), baseJob()
		b.Workload = ""
		b.Streams = []StreamJob{{Workload: a.Workload}}
		if mustKey(t, a) != mustKey(t, b) {
			t.Fatal("single Workload and its one-stream spelling must alias")
		}
	})
	t.Run("disabled faults alias nil", func(t *testing.T) {
		a, b := baseJob(), baseJob()
		b.Options.Faults = &cpelide.FaultConfig{Seed: 99} // all rates zero: inert
		if mustKey(t, a) != mustKey(t, b) {
			t.Fatal("a fault config with every rate zero injects nothing; keys must match")
		}
	})
	t.Run("fault defaults are canonical", func(t *testing.T) {
		a, b := baseJob(), baseJob()
		a.Options.Faults = &cpelide.FaultConfig{AckDropRate: 0.1}
		b.Options.Faults = &cpelide.FaultConfig{AckDropRate: 0.1}
		*b.Options.Faults = b.Options.Faults.Canonical()
		if mustKey(t, a) != mustKey(t, b) {
			t.Fatal("a fault config and its Canonical() form must alias")
		}
	})
	t.Run("sync sets 0 and 1 alias", func(t *testing.T) {
		a, b := baseJob(), baseJob()
		a.Options.SyncLatencySets = 0
		b.Options.SyncLatencySets = 1
		if mustKey(t, a) != mustKey(t, b) {
			t.Fatal("SyncLatencySets 0 and 1 both mean one serialized set")
		}
	})
}

func TestKeyErrors(t *testing.T) {
	for name, j := range map[string]Job{
		"both forms": {Workload: "square", Streams: []StreamJob{{Workload: "btree"}}},
		"no work":    {},
		"fusion with streams": {
			Streams: []StreamJob{{Workload: "square"}},
			Fusion:  &FusionSpec{},
		},
	} {
		if _, err := j.Key(); err == nil {
			t.Errorf("%s: Key() accepted an invalid job", name)
		}
	}
}

// TestOptionsKeyCoversOptions pins optionsKey to cpelide.Options by field
// name: a new Options field must either join optionsKey (and canonOptions)
// or be explicitly listed here as report-irrelevant.
func TestOptionsKeyCoversOptions(t *testing.T) {
	irrelevant := map[string]bool{
		"Trace":    true, // observational only; cached Reports are shared
		"Oracle":   true, // observer pointer, single-use; callers read it directly
		"Profiler": true, // wall-clock attribution, nulled before execution
		"Calendar": true, // host-side calendar choice; reports are byte-identical (TestCalendarEquivalence*)
	}
	opt := reflect.TypeOf(cpelide.Options{})
	key := reflect.TypeOf(optionsKey{})
	for i := 0; i < opt.NumField(); i++ {
		name := opt.Field(i).Name
		if irrelevant[name] {
			continue
		}
		if _, ok := key.FieldByName(name); !ok {
			t.Errorf("cpelide.Options.%s is not mirrored in optionsKey: add it to the key or mark it irrelevant", name)
		}
	}
	for i := 0; i < key.NumField(); i++ {
		name := key.Field(i).Name
		if _, ok := opt.FieldByName(name); !ok {
			t.Errorf("optionsKey.%s has no cpelide.Options counterpart (stale field?)", name)
		}
	}
}
