package farm

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro"
	"repro/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/key_vectors.json from the current hash function")

const keyVectorsPath = "testdata/key_vectors.json"

// keyVector is one committed content-hash fixture: the job spelled as JSON
// plus the key the hash function produced when the vector was recorded.
type keyVector struct {
	Name string          `json:"name"`
	Job  json.RawMessage `json:"job"`
	Key  string          `json:"key"`
}

// goldenJobs spans every class of key-relevant field: protocols, protocol
// knobs, multi-stream bindings, fusion, fault injection, and machine shape.
// Adding a case here (then running `go test ./internal/farm -run Golden
// -update`) extends the committed vector set.
func goldenJobs() []struct {
	Name string
	Job  Job
} {
	return []struct {
		Name string
		Job  Job
	}{
		{"base-cpelide", baseJob()},
		{"baseline-8c", Job{
			Workload: "pathfinder",
			Params:   workloads.Params{Scale: 1},
			Config:   cpelide.DefaultConfig(8),
			Options:  cpelide.Options{Protocol: cpelide.ProtocolBaseline},
		}},
		{"hmg-fine-dir", Job{
			Workload: "btree",
			Params:   workloads.Params{Scale: 0.25},
			Config:   cpelide.DefaultConfig(4),
			Options: cpelide.Options{
				Protocol:            cpelide.ProtocolHMG,
				HMGDirLinesPerEntry: 1,
				HMGDirEntries:       512,
			},
		}},
		{"multi-stream", Job{
			Streams: []StreamJob{
				{Workload: "square", Chiplets: []int{0, 1}},
				{Workload: "btree", Chiplets: []int{2, 3}, Rename: "btree-b"},
			},
			Params:  workloads.Params{Scale: 0.5},
			Config:  cpelide.DefaultConfig(4),
			Options: cpelide.Options{Protocol: cpelide.ProtocolCPElide},
		}},
		{"fused", Job{
			Workload: "square",
			Params:   workloads.Params{Scale: 0.5},
			Config:   cpelide.DefaultConfig(4),
			Options:  cpelide.Options{Protocol: cpelide.ProtocolCPElide},
			Fusion:   &FusionSpec{MaxArgs: 2},
		}},
		{"faulty", Job{
			Workload: "square",
			Params:   workloads.Params{Scale: 0.5},
			Config:   cpelide.DefaultConfig(4),
			Options: cpelide.Options{
				Protocol: cpelide.ProtocolCPElide,
				Faults:   &cpelide.FaultConfig{AckDropRate: 0.1, Seed: 7},
			},
		}},
		{"sweep-point", Job{
			Workload: "pathfinder",
			Params:   workloads.Params{Scale: 0.25, Iters: 3},
			Config:   cpelide.DefaultConfig(4),
			Options: cpelide.Options{
				Protocol:        cpelide.ProtocolCPElide,
				DriverManaged:   true,
				Placement:       cpelide.PlacementInterleaved,
				Scheduler:       cpelide.ChunkedCU,
				SyncLatencySets: 2,
			},
		}},
	}
}

// TestGoldenKeyVectors pins Job.Key to the committed vectors. A mismatch
// means the content-hash changed: every persisted diskstore entry and every
// cross-node routing decision keyed on the old hash is invalidated. That is
// sometimes intentional (canonicalization change) — then bump
// keyPayload.Version, rerun with -update, and say so in the changelog — but
// it must never happen by accident.
func TestGoldenKeyVectors(t *testing.T) {
	jobs := goldenJobs()

	if *updateGolden {
		vecs := make([]keyVector, 0, len(jobs))
		for _, g := range jobs {
			blob, err := json.Marshal(g.Job)
			if err != nil {
				t.Fatalf("%s: marshal job: %v", g.Name, err)
			}
			vecs = append(vecs, keyVector{Name: g.Name, Job: blob, Key: mustKey(t, g.Job)})
		}
		out, err := json.MarshalIndent(vecs, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(keyVectorsPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(keyVectorsPath, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d vectors", keyVectorsPath, len(vecs))
	}

	raw, err := os.ReadFile(keyVectorsPath)
	if err != nil {
		t.Fatalf("read vectors (run with -update to generate): %v", err)
	}
	var vecs []keyVector
	if err := json.Unmarshal(raw, &vecs); err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]keyVector, len(vecs))
	for _, v := range vecs {
		byName[v.Name] = v
	}

	for _, g := range jobs {
		v, ok := byName[g.Name]
		if !ok {
			t.Errorf("%s: no committed vector (run with -update)", g.Name)
			continue
		}
		// The code-constructed job must still hash to the recorded key.
		if got := mustKey(t, g.Job); got != v.Key {
			t.Errorf("%s: key drifted\n got  %s\n want %s", g.Name, got, v.Key)
		}
		// The JSON spelling stored in the file must round-trip to the same
		// key, proving decode → Key is as stable as the in-memory path.
		var decoded Job
		if err := json.Unmarshal(v.Job, &decoded); err != nil {
			t.Errorf("%s: decode stored job: %v", g.Name, err)
			continue
		}
		if got := mustKey(t, decoded); got != v.Key {
			t.Errorf("%s: stored-JSON job hashes to %s, vector says %s", g.Name, got, v.Key)
		}
	}
	if len(vecs) != len(jobs) {
		t.Errorf("vector file has %d entries, goldenJobs has %d (stale file? rerun -update)", len(vecs), len(jobs))
	}
}

// TestKeyStableUnderJSONSpelling decodes the same job from JSON documents
// that reorder fields, omit defaults, and vary member case, and demands one
// key. Clients (coordinator, loadgen, curl users) serialize jobs however
// their encoder pleases; content addressing must not care.
func TestKeyStableUnderJSONSpelling(t *testing.T) {
	ref := mustKey(t, baseJob())

	base, err := json.Marshal(baseJob())
	if err != nil {
		t.Fatal(err)
	}
	spellings := map[string]string{
		"canonical": string(base),
		"reordered": `{
			"Options": {"Protocol": 1},
			"Config": ` + mustMarshal(t, cpelide.DefaultConfig(4)) + `,
			"Params": {"Iters": 0, "Scale": 0.5},
			"Workload": "square"
		}`,
		"defaults-omitted": `{
			"Workload": "square",
			"Params": {"Scale": 0.5},
			"Config": ` + mustMarshal(t, cpelide.DefaultConfig(4)) + `,
			"Options": {"Protocol": 1}
		}`,
		"lowercase-members": `{
			"workload": "square",
			"params": {"scale": 0.5},
			"config": ` + mustMarshal(t, cpelide.DefaultConfig(4)) + `,
			"options": {"protocol": 1}
		}`,
	}
	for name, doc := range spellings {
		var j Job
		if err := json.Unmarshal([]byte(doc), &j); err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if got := mustKey(t, j); got != ref {
			t.Errorf("%s: key %s differs from canonical %s", name, got, ref)
		}
	}
}

func mustMarshal(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
