// Package gen generates seeded random kernel-DAG workloads for the
// differential crosscheck campaign (cmd/crosscheck): multi-stream kernel
// sequences with deliberately injected RAW/WAR/WAW inter-kernel dependence
// chains, randomized access-mode annotations, grid shapes, chiplet bindings
// and page-placement policies.
//
// The grammar mirrors the studied benchmarks' structure (DESIGN.md §11):
//
//   - a case is 1..MaxStreams streams, each a workload with its own
//     structures carved from one shared allocator (so streams are disjoint,
//     as the multi-stream API requires);
//   - a structure is either a scatter target (written only by atomic
//     indirect read-modify-writes) or a normal array (written through the
//     write-back path) — never both, matching the simulator's
//     data-race-freedom assumption;
//   - each kernel references 1..4 distinct structures; reads draw from
//     {linear, stencil+halo, gather, broadcast}, writes from {linear,
//     linear RMW, atomic scatter};
//   - inter-kernel hazard edges are injected explicitly: each kernel
//     prefers structures its predecessors touched, re-accessing them with a
//     mode that forms a RAW, WAR or WAW edge, so generated DAGs exercise
//     exactly the dependence shapes the CP's elision logic must order.
//
// Generation is deterministic in the seed; the same seed reproduces the
// same case byte-for-byte on every run and platform.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/cp"
	"repro/internal/kernels"
	"repro/internal/mem"
)

// HeapBase mirrors the public API's allocation base (cpelide.HeapBase,
// restated here because the root package sits above this one).
const HeapBase mem.Addr = 0x1000_0000

const pageSize = 4096

// Config bounds the generated cases.
type Config struct {
	// Chiplets is the machine's chiplet count (for chiplet-binding draws).
	// Default 4.
	Chiplets int
	// MaxKernels bounds each stream's dynamic kernel count. Default 10.
	MaxKernels int
	// MaxStructs bounds each stream's structure count. Default 5.
	MaxStructs int
	// MaxStreams bounds the stream count. Default 3.
	MaxStreams int
}

func (c Config) withDefaults() Config {
	if c.Chiplets <= 0 {
		c.Chiplets = 4
	}
	if c.MaxKernels <= 0 {
		c.MaxKernels = 10
	}
	if c.MaxStructs <= 0 {
		c.MaxStructs = 5
	}
	if c.MaxStreams <= 0 {
		c.MaxStreams = 3
	}
	return c
}

// EdgeStats counts the inter-kernel dependence edges a case contains,
// classified per hazard kind at structure granularity.
type EdgeStats struct {
	RAW int `json:"raw"` // read after write
	WAR int `json:"war"` // write after read
	WAW int `json:"waw"` // write after write
}

// Total returns the total number of hazard edges.
func (e EdgeStats) Total() int { return e.RAW + e.WAR + e.WAW }

// Case is one generated crosscheck input.
type Case struct {
	Seed      uint64
	Name      string
	Specs     []cp.StreamSpec
	Placement cp.PagePlacement
	Edges     EdgeStats
}

type genStruct struct {
	ds      *kernels.DataStructure
	scatter bool
	read    bool // read by an earlier kernel of its stream
	written bool // written by an earlier kernel of its stream
}

// Generate builds the case for seed under cfg's bounds.
func Generate(seed uint64, cfg Config) *Case {
	cfg = cfg.withDefaults()
	rnd := rand.New(rand.NewSource(int64(seed)))
	alloc := kernels.NewAllocator(HeapBase, pageSize)

	c := &Case{
		Seed: seed,
		Name: fmt.Sprintf("dag-%d", seed),
	}
	switch rnd.Intn(3) {
	case 0:
		c.Placement = cp.PlacementFirstTouch
	case 1:
		c.Placement = cp.PlacementInterleaved
	default:
		c.Placement = cp.PlacementSingle
	}

	nStreams := 1 + rnd.Intn(cfg.MaxStreams)
	// Chiplet bindings: a single stream spans the whole GPU; multiple
	// streams either all share it (maximum interleaving) or split it into
	// disjoint contiguous sets (the paper's multi-stream study shape).
	var bindings [][]int
	if nStreams > 1 && rnd.Intn(2) == 0 && cfg.Chiplets >= nStreams {
		per := cfg.Chiplets / nStreams
		next := 0
		for s := 0; s < nStreams; s++ {
			n := per
			if s == nStreams-1 {
				n = cfg.Chiplets - next
			}
			set := make([]int, n)
			for i := range set {
				set[i] = next + i
			}
			bindings = append(bindings, set)
			next += n
		}
	} else {
		bindings = make([][]int, nStreams) // nil = all chiplets
	}

	for s := 0; s < nStreams; s++ {
		w := c.genStream(rnd, cfg, alloc, s)
		c.Specs = append(c.Specs, cp.StreamSpec{Workload: w, Chiplets: bindings[s]})
	}
	return c
}

// genStream builds one stream's workload, injecting hazard edges and
// tallying them into c.Edges.
func (c *Case) genStream(rnd *rand.Rand, cfg Config, alloc *kernels.Allocator, stream int) *kernels.Workload {
	nStructs := 2 + rnd.Intn(cfg.MaxStructs-1)
	structs := make([]*genStruct, nStructs)
	for i := range structs {
		bytes := (1 + rnd.Intn(16)) * pageSize
		structs[i] = &genStruct{
			ds:      alloc.Alloc(fmt.Sprintf("s%d.%d", stream, i), bytes/4, 4),
			scatter: rnd.Intn(4) == 0,
		}
	}

	w := &kernels.Workload{
		Name: fmt.Sprintf("%s.s%d", c.Name, stream),
		Seed: c.Seed*2654435761 + uint64(stream) + 1,
	}
	for _, s := range structs {
		w.Structures = append(w.Structures, s.ds)
	}

	nKernels := 1 + rnd.Intn(cfg.MaxKernels)
	for ki := 0; ki < nKernels; ki++ {
		k := &kernels.Kernel{
			Name:         fmt.Sprintf("%s.k%d", w.Name, ki),
			WGs:          4 + rnd.Intn(128),
			ComputePerWG: uint32(rnd.Intn(2000)),
			MLPFactor:    0.5 + rnd.Float64()*2,
		}
		nArgs := 1 + rnd.Intn(4)
		used := map[*genStruct]bool{}
		for a := 0; a < nArgs; a++ {
			s := c.pickStruct(rnd, structs)
			// One argument per structure per kernel: a kernel both writing
			// a structure and reading it across partition boundaries would
			// be an intra-kernel data race, which DRF programs exclude.
			if used[s] {
				continue
			}
			used[s] = true
			arg := c.genArg(rnd, s)
			k.Args = append(k.Args, arg)

			// Tally the hazard edge this access closes, then update the
			// structure's history.
			writes := arg.Mode == kernels.ReadWrite
			reads := arg.Mode == kernels.Read || arg.ReadModifyWrite
			if reads && s.written {
				c.Edges.RAW++
			}
			if writes && s.read {
				c.Edges.WAR++
			}
			if writes && s.written {
				c.Edges.WAW++
			}
			s.read = s.read || reads
			s.written = s.written || writes
		}
		w.Sequence = append(w.Sequence, k)
	}
	return w
}

// pickStruct biases toward structures with history, so later kernels close
// hazard edges instead of touching fresh arrays.
func (c *Case) pickStruct(rnd *rand.Rand, structs []*genStruct) *genStruct {
	if rnd.Intn(4) != 0 { // 3/4 of draws prefer a structure with history
		var touched []*genStruct
		for _, s := range structs {
			if s.read || s.written {
				touched = append(touched, s)
			}
		}
		if len(touched) > 0 {
			return touched[rnd.Intn(len(touched))]
		}
	}
	return structs[rnd.Intn(len(structs))]
}

// genArg draws an access annotation legal for s (scatter targets only take
// atomic RMW scatters or linear reads, matching kernels.Validate and the
// DRF invariant).
func (c *Case) genArg(rnd *rand.Rand, s *genStruct) kernels.Arg {
	arg := kernels.Arg{DS: s.ds}
	if s.scatter {
		if rnd.Intn(2) == 0 {
			arg.Mode = kernels.ReadWrite
			arg.Pattern = kernels.Indirect
			arg.ReadModifyWrite = true
			arg.WorkLinesPerWG = 1 + rnd.Intn(16)
		} else {
			arg.Mode = kernels.Read
			arg.Pattern = kernels.Linear
		}
		return arg
	}
	switch rnd.Intn(6) {
	case 0:
		arg.Mode = kernels.Read
		arg.Pattern = kernels.Linear
	case 1:
		arg.Mode = kernels.Read
		arg.Pattern = kernels.Stencil
		arg.HaloLines = 1 + rnd.Intn(4)
	case 2:
		arg.Mode = kernels.Read
		arg.Pattern = kernels.Indirect
		arg.TouchesPerLine = 1 + rnd.Intn(3)
		arg.HotFraction = rnd.Float64()
		arg.WorkLinesPerWG = 1 + rnd.Intn(16)
	case 3:
		arg.Mode = kernels.Read
		arg.Pattern = kernels.Broadcast
	default: // two weights: writes are what make hazards
		arg.Mode = kernels.ReadWrite
		arg.Pattern = kernels.Linear
		arg.ReadModifyWrite = rnd.Intn(2) == 0
	}
	return arg
}
