package gen

import (
	"reflect"
	"testing"

	"repro/internal/kernels"
	"repro/internal/mem"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, Config{})
	b := Generate(42, Config{})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed generated different cases")
	}
	c := Generate(43, Config{})
	if reflect.DeepEqual(a.Edges, c.Edges) && len(a.Specs) == len(c.Specs) &&
		a.Specs[0].Workload.Name == c.Specs[0].Workload.Name {
		t.Fatal("different seeds generated identical cases")
	}
}

func TestGeneratedWorkloadsValidate(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		c := Generate(seed, Config{})
		if len(c.Specs) == 0 {
			t.Fatalf("seed %d: no streams", seed)
		}
		for _, spec := range c.Specs {
			if err := spec.Workload.Validate(); err != nil {
				t.Fatalf("seed %d: invalid workload: %v", seed, err)
			}
		}
	}
}

func TestGeneratedStreamsAreDisjoint(t *testing.T) {
	for seed := uint64(0); seed < 100; seed++ {
		c := Generate(seed, Config{})
		var bounds []mem.Range
		for _, spec := range c.Specs {
			bounds = append(bounds, spec.Workload.Bounds())
		}
		for i := range bounds {
			for j := i + 1; j < len(bounds); j++ {
				if bounds[i].Overlaps(bounds[j]) {
					t.Fatalf("seed %d: streams %d and %d share allocations (%+v, %+v)",
						seed, i, j, bounds[i], bounds[j])
				}
			}
		}
	}
}

func TestGeneratedCasesContainHazardEdges(t *testing.T) {
	// Individually a tiny case can be hazard-free; across a pool the edge
	// injection must produce all three kinds in quantity.
	var total EdgeStats
	for seed := uint64(0); seed < 100; seed++ {
		e := Generate(seed, Config{}).Edges
		total.RAW += e.RAW
		total.WAR += e.WAR
		total.WAW += e.WAW
	}
	if total.RAW < 50 || total.WAR < 50 || total.WAW < 50 {
		t.Fatalf("hazard edges too sparse over 100 cases: %+v", total)
	}
}

func TestScatterInvariantHolds(t *testing.T) {
	// A structure written atomically must never also be written through the
	// write-back path (and vice versa) anywhere in the case.
	for seed := uint64(0); seed < 200; seed++ {
		c := Generate(seed, Config{})
		scatter := map[*kernels.DataStructure]bool{}
		wb := map[*kernels.DataStructure]bool{}
		for _, spec := range c.Specs {
			for _, k := range spec.Workload.Sequence {
				for _, a := range k.Args {
					if a.Mode != kernels.ReadWrite {
						continue
					}
					if a.Pattern == kernels.Indirect {
						scatter[a.DS] = true
					} else {
						wb[a.DS] = true
					}
				}
			}
		}
		for ds := range scatter {
			if wb[ds] {
				t.Fatalf("seed %d: structure %s is both scatter target and write-back target", seed, ds.Name)
			}
		}
	}
}

func TestChipletBindingsWithinRange(t *testing.T) {
	for seed := uint64(0); seed < 100; seed++ {
		c := Generate(seed, Config{Chiplets: 4})
		seenBound := map[int]bool{}
		for _, spec := range c.Specs {
			for _, ch := range spec.Chiplets {
				if ch < 0 || ch >= 4 {
					t.Fatalf("seed %d: chiplet %d out of range", seed, ch)
				}
				if seenBound[ch] {
					t.Fatalf("seed %d: chiplet %d bound to two streams", seed, ch)
				}
				seenBound[ch] = true
			}
		}
	}
}
