package machine

import (
	"testing"

	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/stats"
)

func smallCfg() config.GPU {
	g := config.Default(4)
	g.CUsPerChiplet = 4
	g.L1SizeBytes = 1 << 10
	g.L2SizeBytes = 64 << 10
	g.L3SizeBytes = 128 << 10
	return g
}

func newM(t *testing.T) *Machine {
	t.Helper()
	return must(New(smallCfg(), mem.Range{Lo: 0x1000_0000, Hi: 0x1000_0000 + 8<<20}, stats.New()))
}

func TestMachineShape(t *testing.T) {
	m := newM(t)
	if len(m.L2) != 4 || len(m.L3) != 4 || len(m.L1) != 4 || len(m.L1[0]) != 4 {
		t.Fatal("machine shape wrong")
	}
	if m.LineSize() != 64 {
		t.Error("line size")
	}
}

func TestHomeFirstTouch(t *testing.T) {
	m := newM(t)
	a := mem.Addr(0x1000_0000)
	if m.Home(a, 2) != 2 || m.Home(a, 3) != 2 {
		t.Error("first touch not sticky")
	}
}

func TestL3ReadFillAndDRAM(t *testing.T) {
	m := newM(t)
	line := mem.Addr(0x1000_0040)
	_, cy := m.L3Read(line, 1, 1)
	if cy != m.Cfg.L3Latency+m.Cfg.DRAMLatency {
		t.Errorf("cold L3 read latency = %d", cy)
	}
	if m.Sheet.Get(stats.DRAMReads) != 1 {
		t.Error("DRAM read not counted")
	}
	_, cy = m.L3Read(line, 1, 1)
	if cy != m.Cfg.L3Latency {
		t.Errorf("warm L3 read latency = %d", cy)
	}
	// Remote access pays the NUMA hop.
	_, cy = m.L3Read(line, 0, 1)
	if cy != m.Cfg.L2RemoteLatency {
		t.Errorf("remote L3 hit latency = %d, want %d", cy, m.Cfg.L2RemoteLatency)
	}
}

func TestL3WriteCommits(t *testing.T) {
	m := newM(t)
	line := mem.Addr(0x1000_0080)
	v := m.Mem.Store(line)
	cy := m.L3Write(line, v, 0, 2)
	if cy != m.Cfg.L2RemoteLatency {
		t.Errorf("remote write-through latency = %d", cy)
	}
	if m.Mem.Committed(line) != v {
		t.Error("write-through did not commit")
	}
}

func TestFlushAndInvalidateL2(t *testing.T) {
	m := newM(t)
	line := mem.Addr(0x1000_0000)
	m.Home(line, 1)
	v := m.Mem.Store(line)
	m.L2[1].Fill(line, v, true)

	lines, cy := m.FlushL2(1)
	if lines != 1 || cy <= 0 {
		t.Errorf("flush = %d lines, %d cycles", lines, cy)
	}
	if m.Mem.Committed(line) != v {
		t.Error("flush did not commit dirty data")
	}
	if m.L2[1].ValidLines() != 1 {
		t.Error("flush dropped the clean copy")
	}

	v2 := m.Mem.Store(line)
	m.L2[1].Write(line, v2)
	inv, _ := m.InvalidateL2(1)
	if inv != 1 {
		t.Errorf("invalidated %d lines", inv)
	}
	if m.Mem.Committed(line) != v2 {
		t.Error("invalidate discarded dirty data instead of flushing first")
	}
	if m.L2[1].ValidLines() != 0 {
		t.Error("invalidate left lines")
	}
}

func TestRangeMaintenanceOps(t *testing.T) {
	m := newM(t)
	a, b := mem.Addr(0x1000_0000), mem.Addr(0x1040_0000)
	m.Home(a, 0)
	m.Home(b, 0)
	m.L2[0].Fill(a, m.Mem.Store(a), true)
	m.L2[0].Fill(b, m.Mem.Store(b), true)
	rs := mem.NewRangeSet(mem.Range{Lo: a, Hi: a + 64})
	if lines, _ := m.FlushL2Ranges(0, rs); lines != 1 {
		t.Errorf("range flush hit %d lines", lines)
	}
	if m.L2[0].DirtyLines() != 1 {
		t.Error("range flush touched out-of-range line")
	}
	if lines, _ := m.InvalidateL2Ranges(0, rs); lines != 1 {
		t.Error("range invalidate wrong")
	}
	if m.Mem.Committed(b) != 0 {
		t.Error("range ops leaked to other lines")
	}
}

func TestL1PathsAndBoundaryInvalidate(t *testing.T) {
	m := newM(t)
	line := mem.Addr(0x1000_0000)
	if _, hit := m.L1Read(0, 1, line); hit {
		t.Error("cold L1 hit")
	}
	m.L1Fill(0, 1, line, 3)
	if ver, hit := m.L1Read(0, 1, line); !hit || ver != 3 {
		t.Error("L1 fill/read broken")
	}
	m.L1WriteThrough(0, 1, line, 4)
	if ver, _ := m.L1Read(0, 1, line); ver != 4 {
		t.Error("write-through did not refresh L1 copy")
	}
	if n := m.InvalidateL1s(0); n != 1 {
		t.Errorf("invalidated %d L1 lines", n)
	}
	if _, hit := m.L1Read(0, 1, line); hit {
		t.Error("L1 line survived boundary invalidation")
	}
}

func TestCommitWritebackSpillsL3Victims(t *testing.T) {
	g := smallCfg()
	g.L3SizeBytes = 4 * 64 * 16 * 4 // 4 sets/bank, tiny
	m := must(New(g, mem.Range{Lo: 0x1000_0000, Hi: 0x1000_0000 + 8<<20}, stats.New()))
	// Overflow one L3 bank with dirty writebacks.
	for i := 0; i < 600; i++ {
		line := mem.Addr(0x1000_0000 + i*64)
		m.Home(line, 0)
		m.CommitWriteback(line, m.Mem.Store(line), 0)
	}
	if m.Sheet.Get(stats.DRAMWrites) == 0 {
		t.Error("L3 overflow never spilled to DRAM")
	}
}

func TestReset(t *testing.T) {
	m := newM(t)
	line := mem.Addr(0x1000_0000)
	m.Home(line, 1)
	m.L2[1].Fill(line, m.Mem.Store(line), true)
	m.Reset()
	if m.L2[1].ValidLines() != 0 || m.Mem.Latest(line) != 0 || m.Pages.HomeIfPlaced(line) != -1 {
		t.Error("Reset incomplete")
	}
}

func TestCrossGPULatencyAndTraffic(t *testing.T) {
	g := smallCfg()
	g.NumChiplets = 4
	g.NumGPUs = 2 // chiplets {0,1} on GPU0, {2,3} on GPU1
	m := must(New(g, mem.Range{Lo: 0x1000_0000, Hi: 0x1000_0000 + 8<<20}, stats.New()))

	if m.RemoteLatency(0, 1) != g.L2RemoteLatency {
		t.Error("on-package remote latency wrong")
	}
	if m.RemoteLatency(0, 2) != g.CrossGPULatency {
		t.Error("cross-GPU latency wrong")
	}

	line := mem.Addr(0x1000_0000)
	m.Home(line, 3) // homed on GPU1
	m.L3[3].Fill(line, 0, false)
	_, cy := m.L3Read(line, 0, 3) // accessed from GPU0
	if cy != g.CrossGPULatency {
		t.Errorf("cross-GPU L3 hit latency = %d, want %d", cy, g.CrossGPULatency)
	}
	if m.Sheet.Get(stats.FlitsInterGPU) == 0 {
		t.Error("cross-GPU transfer not counted on the inter-GPU link")
	}
	if m.Fabric.InterGPUBytes() == 0 {
		t.Error("inter-GPU byte accounting missing")
	}
	// Same-GPU remote transfers stay off the inter-GPU link.
	ig := m.Sheet.Get(stats.FlitsInterGPU)
	m.L3Read(line+0x100000, 2, 3)
	if m.Sheet.Get(stats.FlitsInterGPU) != ig {
		t.Error("same-GPU transfer leaked onto the inter-GPU link")
	}
}

// must unwraps constructor errors in tests, where geometry is known-valid.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
