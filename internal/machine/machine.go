// Package machine assembles the simulated multi-chiplet GPU's memory system:
// per-CU L1s, per-chiplet L2s, the banked shared L3, HBM partitions, the
// first-touch page table, and the interconnect fabric. Coherence protocols
// compose its primitives into access paths and synchronization operations.
package machine

import (
	"repro/internal/config"
	"repro/internal/faults"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/stats"
	"repro/internal/trace"
)

// reqBytes is the size of a request/ack message on the interconnect; line
// transfers add the line size.
const reqBytes = 8

// Machine is the physical model. All caches carry data versions so the
// staleness checker in mem.Memory can validate every read.
type Machine struct {
	Cfg    config.GPU
	Sheet  *stats.Sheet
	Mem    *mem.Memory
	Pages  *mem.PageTable
	Fabric *noc.Fabric

	// Trace, when non-nil, receives timeline events (maintenance operations
	// with line counts here; kernel spans and audits from the layers above).
	// Tracing never touches Sheet, so enabling it changes no counter.
	Trace *trace.Recorder

	// Faults, when non-nil, injects link and CP faults; every consulting
	// path is a nil-safe no-op when injection is off, so a machine without
	// an injector behaves byte-identically to one that never heard of it.
	Faults *faults.Injector

	L1 [][]*mem.Cache // [chiplet][cu]
	L2 []*mem.Cache   // [chiplet]
	L3 []*mem.Cache   // [chiplet] banks of the shared LLC

	// l2BankBytes tracks service bytes per L2 bank: requests arriving at a
	// bank occupy its arrays regardless of which chiplet sent them, which
	// is what makes hot banks a bottleneck for NUCA-style designs.
	l2BankBytes []uint64
	// l3BankBytes tracks service bytes per L3 bank likewise.
	l3BankBytes []uint64
}

// New builds a machine covering the address span of bounds. An invalid
// configuration or cache geometry returns an error (config validation
// errors, or mem.ErrGeometry / noc.ErrConfig wrapped) instead of panicking,
// so a bad sweep point surfaces as a run error rather than a dead worker.
func New(cfg config.GPU, bounds mem.Range, sheet *stats.Sheet) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.NumChiplets
	memory, err := mem.NewMemory(bounds.Lo, bounds.Size(), cfg.LineSize)
	if err != nil {
		return nil, err
	}
	pages, err := mem.NewPageTable(bounds.Lo, bounds.Size(), cfg.PageSize)
	if err != nil {
		return nil, err
	}
	fabric, err := noc.New(n, cfg.FlitSize, sheet, cfg.GPUOf)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		Cfg:    cfg,
		Sheet:  sheet,
		Mem:    memory,
		Pages:  pages,
		Fabric: fabric,
		L1:     make([][]*mem.Cache, n),
		L2:     make([]*mem.Cache, n),
		L3:     make([]*mem.Cache, n),
	}
	m.l2BankBytes = make([]uint64, n)
	m.l3BankBytes = make([]uint64, n)
	// All per-CU L1s share one backing allocation: building n*CUs caches
	// individually would dominate machine-construction allocation counts.
	l1s, err := mem.NewCacheArray("L1", n*cfg.CUsPerChiplet, cfg.L1SizeBytes, cfg.L1Assoc, cfg.LineSize)
	if err != nil {
		return nil, err
	}
	for c := 0; c < n; c++ {
		m.L1[c] = make([]*mem.Cache, cfg.CUsPerChiplet)
		for cu := 0; cu < cfg.CUsPerChiplet; cu++ {
			m.L1[c][cu] = &l1s[c*cfg.CUsPerChiplet+cu]
		}
		if m.L2[c], err = mem.NewCache("L2", cfg.L2SizeBytes, cfg.L2Assoc, cfg.LineSize); err != nil {
			return nil, err
		}
		bank := cfg.L3SizeBytes / n
		bank -= bank % (cfg.L3Assoc * cfg.LineSize)
		if m.L3[c], err = mem.NewCache("L3", bank, cfg.L3Assoc, cfg.LineSize); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Home returns the home chiplet of line, first-touch placing its page on
// the accessing chiplet if untouched.
func (m *Machine) Home(line mem.Addr, accessor int) int {
	if m.Cfg.NumChiplets == 1 {
		return 0
	}
	return m.Pages.Home(line, accessor)
}

// LineSize returns the cache line size in bytes.
func (m *Machine) LineSize() int { return m.Cfg.LineSize }

// BookL2 records that bank served bytes of L2 array traffic (probes, line
// reads, fills); the timing model turns the per-bank totals into occupancy
// floors.
func (m *Machine) BookL2(bank, bytes int) {
	m.l2BankBytes[bank] += uint64(bytes)
}

// L2BankBytes returns cumulative service bytes at a bank.
func (m *Machine) L2BankBytes(bank int) uint64 { return m.l2BankBytes[bank] }

// L3BankBytes returns cumulative service bytes at an L3 bank.
func (m *Machine) L3BankBytes(bank int) uint64 { return m.l3BankBytes[bank] }

// SetFaults installs a fault injector on the machine and its fabric.
func (m *Machine) SetFaults(inj *faults.Injector) {
	m.Faults = inj
	m.Fabric.SetFaults(inj)
}

// RemoteLatency returns the cumulative latency of a request from chiplet
// `from` served at chiplet `to`: the on-package remote latency, or the
// inter-GPU latency when the chiplets sit on different GPU packages. An
// active link-degradation window multiplies it.
func (m *Machine) RemoteLatency(from, to int) int {
	lat := m.Cfg.L2RemoteLatency
	if m.Cfg.GPUOf(from) != m.Cfg.GPUOf(to) {
		lat = m.Cfg.CrossGPULatency
	}
	if m.Faults.LinkDegraded() {
		lat = int(float64(lat) * m.Faults.LinkFactor())
	}
	return lat
}

// ---------------------------------------------------------------------------
// L3 bank + HBM: the inter-chiplet ordering point.
// ---------------------------------------------------------------------------

// L3Read serves a read at line's home L3 bank on behalf of chiplet from.
// It returns the committed version and the latency past the L2 level,
// accounting L3/DRAM stats and traffic. The L3 bank is filled on a miss.
func (m *Machine) L3Read(line mem.Addr, from, home int) (ver uint32, cycles int) {
	cfg := &m.Cfg
	m.Sheet.Inc(stats.L3Accesses)
	m.l3BankBytes[home] += uint64(cfg.LineSize)
	ver = m.Mem.Committed(line)
	if _, hit := m.L3[home].Read(line); hit {
		m.Sheet.Inc(stats.L3Hits)
		cycles = cfg.L3Latency
	} else {
		m.Sheet.Inc(stats.L3Misses)
		m.Sheet.Inc(stats.DRAMReads)
		m.Fabric.DRAM(home, cfg.LineSize)
		m.l3Fill(line, home, false)
		cycles = cfg.L3Latency + cfg.DRAMLatency
	}
	if from == home {
		m.Fabric.L2L3(from, home, reqBytes+cfg.LineSize)
	} else {
		m.Fabric.Remote(from, home, reqBytes+cfg.LineSize)
		cycles += m.RemoteLatency(from, home) - cfg.L3Latency // NUMA indirection penalty
	}
	return ver, cycles
}

// L3Write commits a store of version ver to line's home L3 bank on behalf of
// chiplet from (a write-through past the L2s). It returns the store's
// acceptance latency.
func (m *Machine) L3Write(line mem.Addr, ver uint32, from, home int) (cycles int) {
	cfg := &m.Cfg
	m.Sheet.Inc(stats.L3Accesses)
	m.l3BankBytes[home] += uint64(cfg.LineSize)
	m.Mem.Commit(line, ver)
	m.l3Fill(line, home, true)
	if from == home {
		m.Fabric.L2L3(from, home, reqBytes+cfg.LineSize)
		return cfg.L3Latency
	}
	m.Fabric.Remote(from, home, reqBytes+cfg.LineSize)
	return m.RemoteLatency(from, home)
}

// l3Fill installs line into its home bank, spilling an evicted dirty victim
// to the bank's HBM partition.
func (m *Machine) l3Fill(line mem.Addr, home int, dirty bool) {
	if ev := m.L3[home].Fill(line, 0, dirty); ev.Evicted && ev.Dirty {
		m.Sheet.Inc(stats.L3Writebacks)
		m.Sheet.Inc(stats.DRAMWrites)
		m.Fabric.DRAM(home, m.Cfg.LineSize)
	}
}

// CommitWriteback writes an evicted or flushed dirty L2 line back to its
// home L3 bank, accounting traffic from chiplet from.
func (m *Machine) CommitWriteback(line mem.Addr, ver uint32, from int) {
	home := m.Home(line, from)
	m.Mem.Commit(line, ver)
	m.Sheet.Inc(stats.L2Writebacks)
	m.l3Fill(line, home, true)
	m.Fabric.L2L3(from, home, reqBytes+m.Cfg.LineSize)
}

// ---------------------------------------------------------------------------
// L1 level.
// ---------------------------------------------------------------------------

// L1Read looks up line in (chiplet, cu)'s L1. On a miss the caller fetches
// from the L2 level and fills via L1Fill.
func (m *Machine) L1Read(chiplet, cu int, line mem.Addr) (ver uint32, hit bool) {
	m.Sheet.Inc(stats.L1Accesses)
	ver, hit = m.L1[chiplet][cu].Read(line)
	if hit {
		m.Sheet.Inc(stats.L1Hits)
	} else {
		m.Sheet.Inc(stats.L1Misses)
		m.Fabric.L1L2(reqBytes + m.Cfg.LineSize)
	}
	return ver, hit
}

// L1Fill installs a clean line into (chiplet, cu)'s L1.
func (m *Machine) L1Fill(chiplet, cu int, line mem.Addr, ver uint32) {
	m.L1[chiplet][cu].Fill(line, ver, false)
}

// L1WriteThrough models a store passing through the write-through,
// write-no-allocate L1: a cached copy is refreshed, and the store occupies
// the L1-L2 link.
func (m *Machine) L1WriteThrough(chiplet, cu int, line mem.Addr, ver uint32) {
	m.Sheet.Inc(stats.L1Accesses)
	m.L1[chiplet][cu].UpdateClean(line, ver)
	m.Fabric.L1L2(reqBytes + m.Cfg.LineSize)
}

// InvalidateL1s drops all L1 contents on a chiplet (the per-kernel-boundary
// L1 invalidation that every protocol, including CPElide, retains).
func (m *Machine) InvalidateL1s(chiplet int) int {
	n := 0
	for _, c := range m.L1[chiplet] {
		n += c.InvalidateAll()
	}
	return n
}

// ---------------------------------------------------------------------------
// L2 synchronization operations.
// ---------------------------------------------------------------------------

// FlushL2 writes back every dirty line of chiplet's L2 (a release). Clean
// copies are retained. It returns the number of lines written back and the
// walk+writeback cycles the operation occupies.
func (m *Machine) FlushL2(chiplet int) (lines, cycles int) {
	c := m.L2[chiplet]
	walked := c.Lines()
	lines = c.FlushAll(func(line mem.Addr, ver uint32) {
		m.CommitWriteback(line, ver, chiplet)
	})
	m.Sheet.Inc(stats.L2FlushOps)
	cycles = m.maintenanceCycles(walked, lines)
	m.Trace.Sync(chiplet, trace.Release, uint64(lines), uint64(cycles))
	return lines, cycles
}

// FlushL2Ranges writes back dirty lines within rs (the fine-grained
// hardware range-flush extension of Section VI).
func (m *Machine) FlushL2Ranges(chiplet int, rs mem.RangeSet) (lines, cycles int) {
	c := m.L2[chiplet]
	walked := c.Lines()
	lines = c.FlushRanges(rs, func(line mem.Addr, ver uint32) {
		m.CommitWriteback(line, ver, chiplet)
	})
	m.Sheet.Inc(stats.L2FlushOps)
	cycles = m.maintenanceCycles(walked, lines)
	m.Trace.Sync(chiplet, trace.Release, uint64(lines), uint64(cycles))
	return lines, cycles
}

// InvalidateL2 drops every line of chiplet's L2 (an acquire). Dirty lines
// are written back first — a write-back cache cannot discard dirty data —
// so an acquire on a chiplet with dirty lines implies a flush.
func (m *Machine) InvalidateL2(chiplet int) (lines, cycles int) {
	c := m.L2[chiplet]
	walked := c.Lines()
	wb := c.FlushAll(func(line mem.Addr, ver uint32) {
		m.CommitWriteback(line, ver, chiplet)
	})
	lines = c.InvalidateAll()
	m.Sheet.Add(stats.L2Invalidates, uint64(lines))
	m.Sheet.Inc(stats.L2InvOps)
	cycles = m.maintenanceCycles(walked, wb)
	m.Trace.Sync(chiplet, trace.Acquire, uint64(lines), uint64(cycles))
	return lines, cycles
}

// InvalidateL2Ranges drops lines within rs, writing dirty ones back first.
func (m *Machine) InvalidateL2Ranges(chiplet int, rs mem.RangeSet) (lines, cycles int) {
	c := m.L2[chiplet]
	walked := c.Lines()
	wb := c.FlushRanges(rs, func(line mem.Addr, ver uint32) {
		m.CommitWriteback(line, ver, chiplet)
	})
	lines = c.InvalidateRanges(rs)
	m.Sheet.Add(stats.L2Invalidates, uint64(lines))
	m.Sheet.Inc(stats.L2InvOps)
	cycles = m.maintenanceCycles(walked, wb)
	m.Trace.Sync(chiplet, trace.Acquire, uint64(lines), uint64(cycles))
	return lines, cycles
}

// maintenanceCycles costs a cache-maintenance operation: a tag walk plus
// writeback occupancy on the L2-L3 path for each written-back line.
func (m *Machine) maintenanceCycles(walkedLines, writebacks int) int {
	cfg := &m.Cfg
	walk := walkedLines / cfg.CacheWalkLinesPerCycle
	wb := 0
	if writebacks > 0 {
		bytes := float64(writebacks * (reqBytes + cfg.LineSize))
		wb = int(bytes/cfg.L3BWBytesCy) + cfg.L3Latency
	}
	return walk + wb
}

// Reset restores the machine to power-on state: cold caches, no page
// placements, zeroed versions. The stats sheet is left to the owner.
func (m *Machine) Reset() {
	m.Mem.Reset()
	m.Pages.Reset()
	m.Fabric.Reset()
	for i := range m.l2BankBytes {
		m.l2BankBytes[i] = 0
		m.l3BankBytes[i] = 0
	}
	for c := range m.L2 {
		m.L2[c].Reset()
		m.L3[c].Reset()
		for _, l1 := range m.L1[c] {
			l1.Reset()
		}
	}
}
