// Package metrics is a zero-dependency production-observability subsystem:
// typed counters, gauges, and histograms in a named registry, exported in
// Prometheus text exposition format.
//
// The package sits deliberately outside the simulation core. Simulation
// results must be deterministic (the cpelint determinism pass forbids
// wall-clock reads in simulation-critical packages), so nothing here ever
// feeds a value back into a run: the farm, the HTTP server, and the CLI
// drivers record what happened, and /metrics reports it. Exposition output
// is byte-stable for a given registry state — series are emitted in sorted
// order with deterministic formatting — so scraping the same state twice
// yields identical bytes, which keeps the repo's determinism claims
// testable at the observability layer too.
//
// Histograms reuse internal/stats.Histogram's log2 bucket layout (bucket i
// holds values of bit length i), so a metrics histogram costs a fixed 65
// counters and no per-observation allocation, exactly like the simulator's
// own latency histograms; Prometheus `_bucket` lines are derived from
// stats.Histogram.CumulativeBuckets.
//
// Metric names may carry a Prometheus label set inline: the full series
// name `farm_jobs_total` or `http_requests_total{code="200"}` is the
// registry key, and HELP/TYPE headers are emitted once per family (the name
// up to the first '{').
package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; methods on a nil *Counter are no-ops so instrumentation can be wired
// unconditionally and enabled by registry injection.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value is ready to
// use; methods on a nil *Gauge are no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set overwrites the gauge.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a concurrency-safe log2-bucketed histogram (the
// stats.Histogram layout behind a mutex). Values are unitless uint64s; by
// convention the unit is part of the metric name (_us, _cycles, _bytes).
// Methods on a nil *Histogram are no-ops.
type Histogram struct {
	mu sync.Mutex
	h  *stats.Histogram
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.h.Observe(v)
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Count()
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Sum()
}

// Quantile returns an upper bound on the q-quantile (see stats.Histogram).
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Quantile(q)
}

// metricKind tags a registry entry.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	}
	return "gauge"
}

// entry is one registered series.
type entry struct {
	name string // full series name, labels included
	kind metricKind

	counter   *Counter
	gauge     *Gauge
	gaugeFn   func() int64
	histogram *Histogram
}

// Registry is a named collection of metrics. Registration is idempotent:
// asking for an existing name of the same kind returns the existing metric,
// so independent components can share series without coordination. Asking
// for an existing name with a different kind returns a detached (working
// but never exported) metric rather than corrupting the exposition — a
// programming error surfaced by TestRegistryKindMismatch rather than a
// panic, per the errors-not-panics policy.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
	help    map[string]string // family name -> help text
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		entries: make(map[string]*entry),
		help:    make(map[string]string),
	}
}

// family returns the metric family of a series name: the name up to the
// first '{' (label sets share one family).
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// sanitizeName maps name onto the Prometheus metric-name alphabet:
// [a-zA-Z_:][a-zA-Z0-9_:]*, with an optional trailing {label="value",...}
// block left untouched. Invalid characters become '_'.
func sanitizeName(name string) string {
	base, labels := name, ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		base, labels = name[:i], name[i:]
	}
	var b strings.Builder
	for i, r := range base {
		valid := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if valid {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		b.WriteByte('_')
	}
	return b.String() + labels
}

// lookup returns the entry for name, creating it with mk when absent.
// Returns nil when an entry of a different kind already owns the name.
func (r *Registry) lookup(name, help string, kind metricKind, mk func(*entry)) *entry {
	if r == nil {
		return nil
	}
	name = sanitizeName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			return nil
		}
		return e
	}
	e := &entry{name: name, kind: kind}
	mk(e)
	r.entries[name] = e
	if f := family(name); help != "" && r.help[f] == "" {
		r.help[f] = help
	}
	return e
}

// Counter returns the registered counter named name, creating it if needed.
// Safe on a nil registry (returns a detached, nil-safe counter).
func (r *Registry) Counter(name, help string) *Counter {
	e := r.lookup(name, help, kindCounter, func(e *entry) { e.counter = &Counter{} })
	if e == nil {
		return &Counter{}
	}
	return e.counter
}

// Gauge returns the registered gauge named name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	e := r.lookup(name, help, kindGauge, func(e *entry) { e.gauge = &Gauge{} })
	if e == nil {
		return &Gauge{}
	}
	return e.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at exposition
// time (queue depths, cache occupancy). Re-registering a name replaces the
// function. fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	e := r.lookup(name, help, kindGaugeFunc, func(e *entry) {})
	if e != nil {
		r.mu.Lock()
		e.gaugeFn = fn
		r.mu.Unlock()
	}
}

// Histogram returns the registered histogram named name, creating it if
// needed. name should carry its unit as a suffix (_us, _cycles, _bytes).
func (r *Registry) Histogram(name, help string) *Histogram {
	e := r.lookup(name, help, kindHistogram, func(e *entry) {
		e.histogram = &Histogram{h: stats.NewHistogram(family(e.name))}
	})
	if e == nil {
		return &Histogram{h: stats.NewHistogram(family(name))}
	}
	return e.histogram
}

// WritePrometheus writes every registered series in Prometheus text
// exposition format (version 0.0.4). Output is byte-stable: families sort
// lexically, series within a family sort lexically, and HELP/TYPE headers
// are emitted once per family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	// Snapshot entries under the lock; value reads happen outside so a slow
	// writer cannot stall instrumentation.
	snap := make([]*entry, len(names))
	for i, n := range names {
		snap[i] = r.entries[n]
	}
	help := make(map[string]string, len(r.help))
	for f, h := range r.help {
		help[f] = h
	}
	r.mu.Unlock()

	var b strings.Builder
	seenFamily := ""
	for _, e := range snap {
		f := family(e.name)
		if f != seenFamily {
			seenFamily = f
			if h := help[f]; h != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", f, strings.ReplaceAll(h, "\n", " "))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", f, e.kind)
		}
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s %d\n", e.name, e.counter.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%s %d\n", e.name, e.gauge.Value())
		case kindGaugeFunc:
			var v int64
			if e.gaugeFn != nil {
				v = e.gaugeFn()
			}
			fmt.Fprintf(&b, "%s %d\n", e.name, v)
		case kindHistogram:
			writeHistogram(&b, e)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram's cumulative _bucket lines plus
// _sum and _count. Bucket upper bounds are the log2 layout's 2^i - 1
// edges, truncated after the bucket that reaches the total count, then a
// +Inf catch-all — so the line set depends only on the recorded data.
func writeHistogram(b *strings.Builder, e *entry) {
	h := e.histogram
	h.mu.Lock()
	buckets := h.h.CumulativeBuckets()
	count := h.h.Count()
	sum := h.h.Sum()
	h.mu.Unlock()
	base, labels := e.name, ""
	if i := strings.IndexByte(e.name, '{'); i >= 0 {
		base, labels = e.name[:i], strings.TrimSuffix(e.name[i+1:], "}")
	}
	le := func(bound string) string {
		if labels == "" {
			return fmt.Sprintf(`{le=%q}`, bound)
		}
		return fmt.Sprintf(`{%s,le=%q}`, labels, bound)
	}
	for _, bk := range buckets {
		fmt.Fprintf(b, "%s_bucket%s %d\n", base, le(fmt.Sprint(bk.UpperBound)), bk.Count)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", base, le("+Inf"), count)
	fmt.Fprintf(b, "%s_sum%s %d\n", base, labels2(labels), sum)
	fmt.Fprintf(b, "%s_count%s %d\n", base, labels2(labels), count)
}

func labels2(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
