package metrics

import (
	"strings"
	"testing"
)

func TestParseValue(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("jobs_total", "Jobs.").Add(7)
	reg.Counter(`routed_total{node="w1"}`, "Routed.").Add(3)
	reg.Gauge("depth", "Depth.").Set(-2)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	exp := b.String()

	for _, tc := range []struct {
		series string
		want   float64
		ok     bool
	}{
		{"jobs_total", 7, true},
		{`routed_total{node="w1"}`, 3, true},
		{"depth", -2, true},
		{"jobs", 0, false},             // prefix, not a full match
		{"jobs_total_extra", 0, false}, // absent
	} {
		got, ok := ParseValue(exp, tc.series)
		if ok != tc.ok || got != tc.want {
			t.Errorf("ParseValue(%q) = %v, %v; want %v, %v", tc.series, got, ok, tc.want, tc.ok)
		}
	}
	if _, ok := ParseValue("", "jobs_total"); ok {
		t.Error("ParseValue on empty exposition returned ok")
	}
}
