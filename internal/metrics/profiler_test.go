package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/event"
)

func TestPhaseProfilerNilSafety(t *testing.T) {
	var p *PhaseProfiler
	if ph := p.SetPhase(event.PhaseKernel); ph != event.PhaseIdle {
		t.Errorf("nil SetPhase = %v", ph)
	}
	p.Start()
	p.Stop()
	if p.Profile() != nil {
		t.Error("nil Profile nonzero")
	}
	var prof *PhaseProfile
	if !strings.Contains(prof.String(), "none") {
		t.Errorf("nil profile string = %q", prof.String())
	}
}

func TestPhaseProfilerAttribution(t *testing.T) {
	p := NewPhaseProfiler(100 * time.Microsecond)
	p.Start()
	p.SetPhase(event.PhaseKernel)
	time.Sleep(30 * time.Millisecond)
	prev := p.SetPhase(event.PhaseIdle)
	p.Stop()
	if prev != event.PhaseKernel {
		t.Errorf("SetPhase returned %v, want kernel", prev)
	}
	prof := p.Profile()
	if prof.Samples == 0 {
		t.Fatal("no samples after 30ms at 100µs interval")
	}
	var kernel PhaseSamples
	for _, ps := range prof.Phases {
		if ps.Phase == "kernel" {
			kernel = ps
		}
	}
	if kernel.Fraction < 0.5 {
		t.Errorf("kernel phase only %.2f of samples, want the majority: %+v",
			kernel.Fraction, prof.Phases)
	}
	if prof.WallNS == 0 || prof.Switches != 2 {
		t.Errorf("wall=%d switches=%d", prof.WallNS, prof.Switches)
	}
	// Fixed shape: every phase is present exactly once, in enum order.
	if len(prof.Phases) != int(event.NumPhases) {
		t.Fatalf("got %d phases, want %d", len(prof.Phases), event.NumPhases)
	}
	for i, ps := range prof.Phases {
		if ps.Phase != event.Phase(i).String() {
			t.Errorf("phase %d = %q, want %q", i, ps.Phase, event.Phase(i))
		}
	}
	// Idempotent lifecycle: double Stop and late Start are safe.
	p.Stop()
	out := prof.String()
	if !strings.Contains(out, "kernel") || !strings.Contains(out, "phase profile:") {
		t.Errorf("table missing content:\n%s", out)
	}
}

func TestPhaseProfilerStartStopIdempotent(t *testing.T) {
	p := NewPhaseProfiler(0)
	p.Stop() // never started: no-op
	p.Start()
	p.Start() // double start: no-op
	p.Stop()
	p.Stop() // double stop: no-op
	if p.Profile() == nil {
		t.Error("profile nil after lifecycle")
	}
}

// TestPhaseProfilerConcurrentSetPhase exercises marker stores racing the
// sampler; run under -race in CI.
func TestPhaseProfilerConcurrentSetPhase(t *testing.T) {
	p := NewPhaseProfiler(50 * time.Microsecond)
	p.Start()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				p.SetPhase(event.Phase(uint8(i+g) % uint8(event.NumPhases)))
			}
		}(g)
	}
	wg.Wait()
	p.Stop()
	if p.Profile().Switches != 8*10000 {
		t.Errorf("switches = %d", p.Profile().Switches)
	}
}

func TestPhaseProfileJSONShape(t *testing.T) {
	p := NewPhaseProfiler(time.Millisecond)
	p.Start()
	time.Sleep(5 * time.Millisecond)
	p.Stop()
	b, err := json.Marshal(p.Profile())
	if err != nil {
		t.Fatal(err)
	}
	var back PhaseProfile
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Phases) != int(event.NumPhases) {
		t.Errorf("round trip lost phases: %d", len(back.Phases))
	}
}
