package metrics

import (
	"strconv"
	"strings"
)

// ParseValue extracts one series' value from a Prometheus text exposition,
// as produced by WritePrometheus. The series name must match exactly,
// including any label set (e.g. `http_requests_total{code="202"}`). It
// returns false when the series is absent. Tests and the cluster harness
// use it to assert on scraped metrics without a Prometheus dependency.
func ParseValue(exposition, series string) (float64, bool) {
	for _, line := range strings.Split(exposition, "\n") {
		if line == "" || line[0] == '#' {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 || line[:sp] != series {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}
