package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter nonzero")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Error("nil gauge nonzero")
	}
	var h *Histogram
	h.Observe(9)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram nonzero")
	}
	var r *Registry
	r.Counter("x", "").Inc() // detached but usable
	r.Gauge("x", "").Set(1)
	r.Histogram("x", "").Observe(1)
	r.GaugeFunc("x", "", func() int64 { return 1 })
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Errorf("nil registry write: %v", err)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("jobs_total", "jobs")
	b := r.Counter("jobs_total", "ignored second help")
	if a != b {
		t.Error("same-name counter not shared")
	}
	a.Add(2)
	if b.Value() != 2 {
		t.Error("shared counter diverged")
	}
	if g1, g2 := r.Gauge("depth", ""), r.Gauge("depth", ""); g1 != g2 {
		t.Error("same-name gauge not shared")
	}
	if h1, h2 := r.Histogram("lat_us", ""), r.Histogram("lat_us", ""); h1 != h2 {
		t.Error("same-name histogram not shared")
	}
}

func TestRegistryKindMismatch(t *testing.T) {
	r := NewRegistry()
	r.Counter("thing", "a counter").Add(7)
	// Asking for the same name as a different kind must not corrupt the
	// registry: the caller gets a working detached metric and the original
	// series is unchanged.
	g := r.Gauge("thing", "now a gauge?")
	g.Set(99)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "thing 7") {
		t.Errorf("counter series lost:\n%s", out)
	}
	if strings.Contains(out, "99") {
		t.Errorf("mismatched gauge leaked into exposition:\n%s", out)
	}
}

func TestNameSanitization(t *testing.T) {
	r := NewRegistry()
	r.Counter("farm/job latency-total", "").Inc()
	r.Counter(`bad{proto="cpelide"}`, "").Inc()
	r.Counter("0leading", "").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"farm_job_latency_total 1",
		`bad{proto="cpelide"} 1`,
		"_leading 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestExpositionFormat pins the Prometheus text format: HELP/TYPE once per
// family, labeled series grouped under one family header, histogram
// cumulative buckets with a +Inf catch-all plus _sum and _count.
func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("farm_jobs_total", "Jobs submitted.").Add(3)
	r.Counter(`http_requests_total{code="200"}`, "HTTP requests by status.").Add(5)
	r.Counter(`http_requests_total{code="429"}`, "").Add(1)
	r.Gauge("farm_queue_depth", "Pending jobs.").Set(2)
	r.GaugeFunc("farm_workers", "Worker goroutines.", func() int64 { return 8 })
	h := r.Histogram("job_duration_us", "Per-job latency.")
	h.Observe(0)
	h.Observe(3)
	h.Observe(10)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := `# HELP farm_jobs_total Jobs submitted.
# TYPE farm_jobs_total counter
farm_jobs_total 3
# HELP farm_queue_depth Pending jobs.
# TYPE farm_queue_depth gauge
farm_queue_depth 2
# HELP farm_workers Worker goroutines.
# TYPE farm_workers gauge
farm_workers 8
# HELP http_requests_total HTTP requests by status.
# TYPE http_requests_total counter
http_requests_total{code="200"} 5
http_requests_total{code="429"} 1
# HELP job_duration_us Per-job latency.
# TYPE job_duration_us histogram
job_duration_us_bucket{le="0"} 1
job_duration_us_bucket{le="1"} 1
job_duration_us_bucket{le="3"} 2
job_duration_us_bucket{le="7"} 2
job_duration_us_bucket{le="15"} 3
job_duration_us_bucket{le="+Inf"} 3
job_duration_us_sum 13
job_duration_us_count 3
`
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExpositionByteStable proves /metrics output is deterministic: the
// same registry state serializes to identical bytes on repeated scrapes,
// and registration order does not matter.
func TestExpositionByteStable(t *testing.T) {
	build := func(names []string) *Registry {
		r := NewRegistry()
		for _, n := range names {
			// Help is per family (first writer wins), so labeled series of
			// one family share the family's help text.
			r.Counter(n, "help for "+family(n)).Add(uint64(len(n)))
		}
		h := r.Histogram("lat_us", "latency")
		for i := uint64(1); i < 100; i++ {
			h.Observe(i * i)
		}
		r.Gauge("depth", "queue depth").Set(4)
		return r
	}
	names := []string{"b_total", "a_total", `c_total{p="x"}`, `c_total{p="a"}`, "z_total"}
	rev := []string{"z_total", `c_total{p="a"}`, `c_total{p="x"}`, "a_total", "b_total"}

	r1, r2 := build(names), build(rev)
	var o1, o2, o3 bytes.Buffer
	if err := r1.WritePrometheus(&o1); err != nil {
		t.Fatal(err)
	}
	if err := r1.WritePrometheus(&o2); err != nil {
		t.Fatal(err)
	}
	if err := r2.WritePrometheus(&o3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(o1.Bytes(), o2.Bytes()) {
		t.Error("repeated scrape of identical state differs")
	}
	if !bytes.Equal(o1.Bytes(), o3.Bytes()) {
		t.Errorf("registration order leaked into exposition:\n--- a ---\n%s--- b ---\n%s", o1.String(), o3.String())
	}
	// Sorted: families appear in lexical order (inside a histogram family
	// the fixed bucket/sum/count convention rules instead).
	var prevFam string
	for _, line := range strings.Split(o1.String(), "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		fam := strings.Fields(line)[2]
		if prevFam != "" && fam < prevFam {
			t.Errorf("family out of order: %q after %q", fam, prevFam)
		}
		prevFam = fam
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines —
// registration, increments, observations, and scrapes all interleaved —
// and checks the totals. Run under -race in CI.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 1000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("shared_total", "shared").Inc()
				r.Gauge("level", "").Add(1)
				r.Histogram("obs_us", "").Observe(uint64(i))
				if i%100 == 0 {
					var sink bytes.Buffer
					_ = r.WritePrometheus(&sink)
				}
			}
		}(g)
	}
	wg.Wait()
	if v := r.Counter("shared_total", "").Value(); v != goroutines*perG {
		t.Errorf("counter = %d, want %d", v, goroutines*perG)
	}
	if v := r.Gauge("level", "").Value(); v != goroutines*perG {
		t.Errorf("gauge = %d, want %d", v, goroutines*perG)
	}
	if n := r.Histogram("obs_us", "").Count(); n != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", n, goroutines*perG)
	}
}
