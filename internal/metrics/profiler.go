package metrics

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/event"
)

// DefaultSampleInterval is the phase profiler's sampling period when the
// caller passes zero. 500µs keeps the sampler's own cost (one atomic load
// and one array increment per tick) far below 0.1% of a core while still
// collecting ~2000 samples per second of simulation.
const DefaultSampleInterval = 500 * time.Microsecond

// PhaseProfiler attributes host wall time to simulator phases by sampling.
//
// Instrumented simulation code marks the component it is entering with
// SetPhase — a single atomic store, so the marker overhead is fixed and
// tiny even on per-access hot paths — and a background goroutine samples
// the current phase at a fixed interval. The resulting per-phase sample
// counts estimate where the simulator actually spends its host time, which
// is exactly what hot-path optimization work needs to start from.
//
// The profiler is wall-clock based and therefore deliberately excluded from
// every determinism artifact: Report JSON comparisons strip the Profile
// field, and the simulation core never reads anything back from it. A
// profiler is single-use: Start it, run one simulation, Stop it, read
// Profile.
type PhaseProfiler struct {
	cur      atomic.Int32
	samples  [event.NumPhases]atomic.Uint64
	switches atomic.Uint64

	interval time.Duration

	mu      sync.Mutex
	started time.Time
	wall    time.Duration
	stop    chan struct{}
	done    chan struct{}
}

// NewPhaseProfiler returns a profiler sampling at the given interval
// (DefaultSampleInterval when interval <= 0). The profiler starts in
// PhaseIdle and does not sample until Start.
func NewPhaseProfiler(interval time.Duration) *PhaseProfiler {
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	return &PhaseProfiler{interval: interval}
}

// SetPhase marks the currently running component and returns the previous
// phase. Safe for concurrent use; one atomic swap.
func (p *PhaseProfiler) SetPhase(ph event.Phase) event.Phase {
	if p == nil {
		return event.PhaseIdle
	}
	p.switches.Add(1)
	return event.Phase(p.cur.Swap(int32(ph)))
}

// Start launches the sampling goroutine. Starting an already-started
// profiler is a no-op.
func (p *PhaseProfiler) Start() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stop != nil {
		return
	}
	p.started = time.Now()
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go p.sample(p.stop, p.done)
}

// Stop halts sampling and freezes the profile. Stopping a never-started or
// already-stopped profiler is a no-op.
func (p *PhaseProfiler) Stop() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stop == nil {
		return
	}
	close(p.stop)
	<-p.done
	p.wall += time.Since(p.started)
	p.stop, p.done = nil, nil
}

// sample is the profiler's background loop: every interval it charges one
// tick to whichever phase is current.
func (p *PhaseProfiler) sample(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	tick := time.NewTicker(p.interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			p.samples[p.cur.Load()].Add(1)
		}
	}
}

// Profile snapshots the attribution so far. Call after Stop for a stable
// result.
func (p *PhaseProfiler) Profile() *PhaseProfile {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	wall := p.wall
	if p.stop != nil {
		wall += time.Since(p.started)
	}
	p.mu.Unlock()
	prof := &PhaseProfile{
		WallNS:     uint64(wall.Nanoseconds()),
		IntervalNS: uint64(p.interval.Nanoseconds()),
		Switches:   p.switches.Load(),
	}
	var total uint64
	for i := range p.samples {
		total += p.samples[i].Load()
	}
	prof.Samples = total
	prof.Phases = make([]PhaseSamples, event.NumPhases)
	for i := range p.samples {
		n := p.samples[i].Load()
		ps := PhaseSamples{Phase: event.Phase(i).String(), Samples: n}
		if total > 0 {
			ps.Fraction = float64(n) / float64(total)
		}
		prof.Phases[i] = ps
	}
	return prof
}

// PhaseSamples is one phase's share of a profile.
type PhaseSamples struct {
	Phase    string  `json:"phase"`
	Samples  uint64  `json:"samples"`
	Fraction float64 `json:"fraction"`
}

// PhaseProfile is a finished wall-time attribution: per-phase sample counts
// in a fixed phase order (every phase is present, including zero-sample
// ones, so the JSON shape is stable). All values are host wall-clock
// measurements and are excluded from determinism comparisons.
type PhaseProfile struct {
	// WallNS is total profiled wall time in nanoseconds.
	WallNS uint64 `json:"wall_ns"`
	// IntervalNS is the sampling period in nanoseconds.
	IntervalNS uint64 `json:"interval_ns"`
	// Samples is the total number of samples taken.
	Samples uint64 `json:"samples"`
	// Switches counts SetPhase calls — a deterministic structural measure
	// of how often the simulator crossed a phase boundary.
	Switches uint64 `json:"switches"`
	// Phases lists every phase's samples in event.Phase order.
	Phases []PhaseSamples `json:"phases"`
}

// String renders the profile as an aligned table, largest share first.
func (p *PhaseProfile) String() string {
	if p == nil {
		return "phase profile: none\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "phase profile: %.1fms wall, %d samples @ %dµs, %d phase switches\n",
		float64(p.WallNS)/1e6, p.Samples, p.IntervalNS/1000, p.Switches)
	ordered := make([]PhaseSamples, len(p.Phases))
	copy(ordered, p.Phases)
	// Stable two-key sort: share descending, then phase name so equal
	// shares render deterministically.
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0; j-- {
			a, c := ordered[j-1], ordered[j]
			if c.Samples > a.Samples || (c.Samples == a.Samples && c.Phase < a.Phase) {
				ordered[j-1], ordered[j] = c, a
			} else {
				break
			}
		}
	}
	for _, ps := range ordered {
		bar := ""
		if p.Samples > 0 {
			bar = strings.Repeat("#", int(1+ps.Samples*39/p.Samples))
		}
		fmt.Fprintf(&b, "  %-10s %6.1f%% %10d %s\n", ps.Phase, 100*ps.Fraction, ps.Samples, bar)
	}
	return b.String()
}
