package energy

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestBreakdownFromSheet(t *testing.T) {
	s := stats.New()
	s.Add(stats.L1Accesses, 100)
	s.Add(stats.LDSAccesses, 50)
	s.Add(stats.L2Accesses, 10)
	s.Add(stats.FlitsL1L2, 4)
	s.Add(stats.FlitsRemote, 2)
	s.Add(stats.L3Accesses, 3)
	s.Add(stats.DRAMReads, 1)
	s.Add(stats.DRAMWrites, 1)

	b := FromSheet(s)
	if b.L1 != 100*L1AccessPJ {
		t.Errorf("L1 = %v", b.L1)
	}
	if b.LDS != 50*LDSAccessPJ {
		t.Errorf("LDS = %v", b.LDS)
	}
	if b.DRAM != 2*DRAMLinePJ {
		t.Errorf("DRAM = %v", b.DRAM)
	}
	wantNoC := 4.0*NoCFlitPJ + 2.0*RemoteFlitPJ + 3.0*L3AccessPJ
	if b.NoC != wantNoC {
		t.Errorf("NoC = %v, want %v", b.NoC, wantNoC)
	}
	if b.Total() != b.L1+b.LDS+b.L2+b.NoC+b.DRAM {
		t.Error("Total inconsistent")
	}
}

func TestRatio(t *testing.T) {
	a := Breakdown{L1: 50}
	b := Breakdown{L1: 100}
	if Ratio(a, b) != 0.5 {
		t.Errorf("Ratio = %v", Ratio(a, b))
	}
	if Ratio(a, Breakdown{}) != 0 {
		t.Error("Ratio with zero base should be 0")
	}
}

func TestString(t *testing.T) {
	if got := (Breakdown{}).String(); got != "energy: 0" {
		t.Errorf("zero String = %q", got)
	}
	out := (Breakdown{L1: 1, DRAM: 3}).String()
	if !strings.Contains(out, "DRAM") {
		t.Errorf("String = %q", out)
	}
}

// TestRelativeMagnitudes pins the ordering the Figure 9 analysis relies on:
// DRAM transfers cost far more than SRAM accesses, and crossing the
// inter-chiplet crossbar costs more than an on-chiplet hop.
func TestRelativeMagnitudes(t *testing.T) {
	if DRAMLinePJ < 10*L2AccessPJ {
		t.Error("DRAM should dominate L2 per access")
	}
	if RemoteFlitPJ <= NoCFlitPJ {
		t.Error("crossbar crossing should exceed on-chiplet hop")
	}
	if L1AccessPJ >= L2AccessPJ {
		t.Error("L1 should be cheaper than L2")
	}
}
