// Package energy converts simulation counters into the memory-subsystem
// energy breakdown of Figure 9: L1 instruction+data caches, LDS, L2, NoC,
// and DRAM. The per-access energies follow the prior-work models the paper
// leverages (per-access SRAM energies scaling with capacity, interconnect
// energy per flit, and DRAM row energy dominating), scaled for the
// multi-chiplet hierarchy. Only relative magnitudes matter for reproducing
// the figure, since CPElide only impacts the memory subsystem.
package energy

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// Per-event energies in picojoules.
const (
	L1AccessPJ   = 10   // 16 KiB SRAM access
	LDSAccessPJ  = 6    // scratchpad word access
	L2AccessPJ   = 55   // 8 MiB SRAM access
	L3AccessPJ   = 90   // 16 MiB LLC access
	NoCFlitPJ    = 26   // on-package hop per 16 B flit
	RemoteFlitPJ = 64   // inter-chiplet crossbar crossing per flit
	DRAMLinePJ   = 1300 // HBM 64 B transfer
)

// Breakdown is the Figure 9 decomposition, in picojoules.
type Breakdown struct {
	L1   float64
	LDS  float64
	L2   float64
	NoC  float64
	DRAM float64
}

// Total returns the summed energy.
func (b Breakdown) Total() float64 { return b.L1 + b.LDS + b.L2 + b.NoC + b.DRAM }

// FromSheet computes the breakdown from a run's counters. L3 accesses are
// folded into the NoC+DRAM side of the hierarchy the way the paper's figure
// groups "NoC" (network + shared LLC) against per-chiplet components.
func FromSheet(s *stats.Sheet) Breakdown {
	var b Breakdown
	b.L1 = float64(s.Get(stats.L1Accesses)) * L1AccessPJ
	b.LDS = float64(s.Get(stats.LDSAccesses)) * LDSAccessPJ
	b.L2 = float64(s.Get(stats.L2Accesses)+s.Get(stats.L2Writebacks)+s.Get(stats.L2Invalidates)/8) * L2AccessPJ
	b.NoC = float64(s.Get(stats.FlitsL1L2))*NoCFlitPJ +
		float64(s.Get(stats.FlitsL2L3))*NoCFlitPJ +
		float64(s.Get(stats.FlitsRemote))*RemoteFlitPJ +
		float64(s.Get(stats.L3Accesses))*L3AccessPJ
	b.DRAM = float64(s.Get(stats.DRAMReads)+s.Get(stats.DRAMWrites)) * DRAMLinePJ
	return b
}

// Ratio returns b's total relative to base's total (1.0 = equal).
func Ratio(b, base Breakdown) float64 {
	t := base.Total()
	if t == 0 {
		return 0
	}
	return b.Total() / t
}

// String renders the breakdown with component percentages.
func (b Breakdown) String() string {
	t := b.Total()
	if t == 0 {
		return "energy: 0"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "total %.3g pJ [", t)
	fmt.Fprintf(&sb, "L1 %.1f%% LDS %.1f%% L2 %.1f%% NoC %.1f%% DRAM %.1f%%]",
		100*b.L1/t, 100*b.LDS/t, 100*b.L2/t, 100*b.NoC/t, 100*b.DRAM/t)
	return sb.String()
}
