package server

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/farm"
	"repro/internal/metrics"
)

// newInstrumentedServer builds a server with a live registry and a logger
// capturing into buf (pass nil to discard).
func newInstrumentedServer(t *testing.T, buf io.Writer) (*Server, *httptest.Server, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	eng := farm.New(farm.Options{Workers: 2, Metrics: reg})
	t.Cleanup(eng.Close)
	s := New(eng, 8)
	if buf == nil {
		buf = io.Discard
	}
	s.Instrument(reg, slog.New(slog.NewTextHandler(buf, nil)))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Drain)
	return s, ts, reg
}

// TestRequestIDHeader pins the correlation contract: every response carries
// an X-Request-ID — success, error, and 404 paths alike — a client-supplied
// ID is echoed back, and the ID appears in the structured log.
func TestRequestIDHeader(t *testing.T) {
	var logBuf strings.Builder
	_, ts, _ := newInstrumentedServer(t, &logBuf)

	for _, path := range []string{"/healthz", "/v1/stats", "/v1/jobs/nope", "/no-such-route"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if id := resp.Header.Get("X-Request-ID"); id == "" {
			t.Errorf("%s: no X-Request-ID on a %d response", path, resp.StatusCode)
		}
	}

	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "corr-abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "corr-abc-123" {
		t.Errorf("client-supplied ID not echoed: got %q", got)
	}
	if !strings.Contains(logBuf.String(), "request_id=corr-abc-123") {
		t.Errorf("request ID missing from structured log:\n%s", logBuf.String())
	}
}

// TestMetricsEndpoint submits a job, waits for it, and checks /metrics for
// valid Prometheus exposition covering the farm, server, and HTTP series.
func TestMetricsEndpoint(t *testing.T) {
	_, ts, _ := newInstrumentedServer(t, nil)

	code, sr := post(t, ts, `{"workload": "square", "scale": 0.1, "protocol": "cpelide"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: got %d, want 202", code)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st StatusResponse
		get(t, ts, "/v1/jobs/"+sr.ID, &st)
		if st.Status == "done" {
			break
		}
		if st.Status == "error" || time.Now().After(deadline) {
			t.Fatalf("job did not finish: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: got %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE farm_jobs_total counter",
		"farm_runs_total 1",
		"farm_workers 2",
		"farm_inflight_jobs 0",
		"# TYPE farm_job_duration_us histogram",
		"farm_job_duration_us_count 1",
		"sim_kernels_total ",
		"fault_req_drops_total 0",
		"cp_watchdog_degradations_total 0",
		"server_queue_cap 8",
		"server_queue_depth 0",
		`http_requests_total{code="202"} 1`,
		"# TYPE http_request_duration_us histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in /metrics output:\n%s", want, out)
		}
	}
}
