package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/farm"
)

// decodeErr decodes an expected-error response against the uniform schema,
// failing if any field of the contract is missing.
func decodeErr(t *testing.T, resp *http.Response) ErrorResponse {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("error response Content-Type = %q, want application/json", ct)
	}
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("error body is not the JSON schema: %v", err)
	}
	if e.Error == "" || e.Code == "" || e.RequestID == "" {
		t.Errorf("incomplete error body: %+v", e)
	}
	if e.RequestID != resp.Header.Get("X-Request-ID") {
		t.Errorf("request_id %q does not match header %q", e.RequestID, resp.Header.Get("X-Request-ID"))
	}
	return e
}

// TestErrorSchema pins the stable JSON error contract on every error path
// the API can produce, including the catch-all 404.
func TestErrorSchema(t *testing.T) {
	eng := farm.New(farm.Options{Workers: 1})
	defer eng.Close()
	s := New(eng, 4)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain()

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
		code   string
	}{
		{"malformed body", "POST", "/v1/jobs", "{not json", http.StatusBadRequest, ErrCodeBadRequest},
		{"unknown protocol", "POST", "/v1/jobs", `{"workload":"square","protocol":"quantum"}`, http.StatusBadRequest, ErrCodeBadRequest},
		{"unknown job", "GET", "/v1/jobs/" + strings.Repeat("0", 64), "", http.StatusNotFound, ErrCodeNotFound},
		{"unknown job result", "GET", "/v1/jobs/" + strings.Repeat("0", 64) + "/result", "", http.StatusNotFound, ErrCodeNotFound},
		{"unknown figure", "GET", "/v1/figures/fig99", "", http.StatusNotFound, ErrCodeNotFound},
		{"bad figure param", "GET", "/v1/figures/fig2?scale=potato", "", http.StatusBadRequest, ErrCodeBadRequest},
		{"unrouted path", "GET", "/v2/nothing/here", "", http.StatusNotFound, ErrCodeNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.status)
			}
			if e := decodeErr(t, resp); e.Code != tc.code {
				t.Errorf("code = %q, want %q", e.Code, tc.code)
			}
		})
	}
}

// TestHealthzReflectsDraining: the probe flips from 200 to a schema-conformant
// 503 once the server starts draining, so routers stop sending work here.
func TestHealthzReflectsDraining(t *testing.T) {
	eng := farm.New(farm.Options{Workers: 1})
	defer eng.Close()
	s := New(eng, 4)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while serving: %d, want 200", resp.StatusCode)
	}

	s.Drain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", resp.StatusCode)
	}
	if e := decodeErr(t, resp); e.Code != ErrCodeDraining {
		t.Errorf("code = %q, want %q", e.Code, ErrCodeDraining)
	}

	// Submissions during the drain are refused with the same code.
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"workload":"square","scale":0.05}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", resp.StatusCode)
	}
	if e := decodeErr(t, resp); e.Code != ErrCodeDraining {
		t.Errorf("code = %q, want %q", e.Code, ErrCodeDraining)
	}
}
