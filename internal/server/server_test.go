package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/farm"
)

func post(t *testing.T, ts *httptest.Server, body string) (int, StatusResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr StatusResponse
	_ = json.NewDecoder(resp.Body).Decode(&sr)
	return resp.StatusCode, sr
}

func get(t *testing.T, ts *httptest.Server, path string, v any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		_ = json.NewDecoder(resp.Body).Decode(v)
	}
	return resp.StatusCode
}

// TestSubmitPollResult drives the happy path: submit, poll to completion,
// fetch the report, and confirm a resubmission is answered from the
// registry while the farm's cache kept the simulation count at one.
func TestSubmitPollResult(t *testing.T) {
	eng := farm.New(farm.Options{Workers: 2})
	defer eng.Close()
	s := New(eng, 8)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain()

	body := `{"workload": "square", "scale": 0.1, "protocol": "cpelide"}`
	code, sr := post(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: got %d, want 202", code)
	}
	if len(sr.ID) != 64 {
		t.Fatalf("submit: id %q is not a content hash", sr.ID)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		var st StatusResponse
		if code := get(t, ts, "/v1/jobs/"+sr.ID, &st); code != http.StatusOK {
			t.Fatalf("status: got %d, want 200", code)
		}
		if st.Status == "done" {
			break
		}
		if st.Status == "error" {
			t.Fatalf("job failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", st.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}

	var rep struct {
		Workload string `json:"Workload"`
		Protocol string `json:"Protocol"`
		Cycles   uint64 `json:"Cycles"`
	}
	if code := get(t, ts, "/v1/jobs/"+sr.ID+"/result", &rep); code != http.StatusOK {
		t.Fatalf("result: got %d, want 200", code)
	}
	if rep.Workload != "square" || rep.Protocol != "CPElide" || rep.Cycles == 0 {
		t.Fatalf("result: unexpected report %+v", rep)
	}

	// Identical resubmission: same content-addressed ID, already terminal.
	code, sr2 := post(t, ts, body)
	if code != http.StatusOK || sr2.ID != sr.ID || sr2.Status != "done" {
		t.Fatalf("resubmit: got %d %+v, want 200 done %s", code, sr2, sr.ID)
	}
	if c := eng.Counters(); c.Runs != 1 {
		t.Fatalf("farm ran %d simulations, want 1", c.Runs)
	}

	if code := get(t, ts, "/v1/jobs/nope", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job: got %d, want 404", code)
	}
	if code := get(t, ts, "/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz: got %d, want 200", code)
	}
}

// TestBurstBackpressureAndDrain floods a 1-worker, 1-slot-queue server with
// distinct jobs: the server must answer every request with 202/429 only
// (no hangs, no other codes), every accepted job must reach a terminal
// state, Drain must return, and post-drain submissions must get 503.
func TestBurstBackpressureAndDrain(t *testing.T) {
	eng := farm.New(farm.Options{Workers: 1})
	defer eng.Close()
	s := New(eng, 1)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the single dispatcher with a full-size run (~hundreds of ms)
	// so the burst below races against a genuinely busy server.
	code, first := post(t, ts, `{"workload": "square"}`)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: got %d, want 202", code)
	}

	const burst = 24
	codes := make([]int, burst)
	ids := make([]string, burst)
	var wg sync.WaitGroup
	wg.Add(burst)
	for i := 0; i < burst; i++ {
		go func(i int) {
			defer wg.Done()
			// Distinct tiny jobs (iters varies the content hash).
			body := fmt.Sprintf(`{"workload": "square", "scale": 0.05, "iters": %d}`, i+1)
			c, sr := post(t, ts, body)
			codes[i], ids[i] = c, sr.ID
		}(i)
	}
	wg.Wait()

	accepted := []string{first.ID}
	var rejected int
	for i, c := range codes {
		switch c {
		case http.StatusAccepted:
			accepted = append(accepted, ids[i])
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Fatalf("burst request %d: got %d, want 202 or 429", i, c)
		}
	}
	if rejected == 0 {
		t.Fatalf("burst of %d against a 1-slot queue shed no load", burst)
	}
	t.Logf("burst: %d accepted, %d rejected", len(accepted), rejected)

	// Drain must complete and leave every accepted job terminal.
	done := make(chan struct{})
	go func() { s.Drain(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("Drain did not return")
	}
	for _, id := range accepted {
		var st StatusResponse
		if code := get(t, ts, "/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("status %s: got %d, want 200", id, code)
		}
		if st.Status != "done" {
			t.Fatalf("job %s ended as %q: %s", id, st.Status, st.Error)
		}
	}

	if code, _ := post(t, ts, `{"workload": "square", "scale": 0.05, "iters": 99}`); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: got %d, want 503", code)
	}
}

// TestBackpressureRetryAfter pins the 429 contract: a shed submission
// carries a Retry-After hint so well-behaved clients back off instead of
// hammering a saturated server, and a queued job's result poll carries the
// same hint on its 202.
func TestBackpressureRetryAfter(t *testing.T) {
	eng := farm.New(farm.Options{Workers: 1})
	defer eng.Close()
	s := New(eng, 1)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain()

	postRaw := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Occupy the single dispatcher with a full-size run and wait until it is
	// actually running, so the queue fill below is deterministic.
	code, first := post(t, ts, `{"workload": "square"}`)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: got %d, want 202", code)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st StatusResponse
		get(t, ts, "/v1/jobs/"+first.ID, &st)
		if st.Status == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first job never started running (status %q)", st.Status)
		}
		time.Sleep(time.Millisecond)
	}

	// Fill the 1-slot queue, then overflow it.
	code, queued := post(t, ts, `{"workload": "square", "scale": 0.05, "iters": 1}`)
	if code != http.StatusAccepted {
		t.Fatalf("queue-filling submit: got %d, want 202", code)
	}

	resp := postRaw(`{"workload": "square", "scale": 0.05, "iters": 2}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: got %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("429 Retry-After = %q, want %q", ra, "1")
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
		t.Fatalf("429 body should explain the shed (%q, %v)", body.Error, err)
	}

	// A not-yet-terminal job's result poll also hints when to come back.
	rr, err := http.Get(ts.URL + "/v1/jobs/" + queued.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Body.Close()
	if rr.StatusCode != http.StatusAccepted {
		t.Fatalf("queued result poll: got %d, want 202", rr.StatusCode)
	}
	if ra := rr.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("202 Retry-After = %q, want %q", ra, "1")
	}
}

// TestSubmitFaultSpec checks the HTTP surface accepts fault campaigns and
// rejects malformed specs.
func TestSubmitFaultSpec(t *testing.T) {
	eng := farm.New(farm.Options{Workers: 1})
	defer eng.Close()
	s := New(eng, 4)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain()

	if code, _ := post(t, ts, `{"workload": "square", "faults": "wat=1"}`); code != http.StatusBadRequest {
		t.Fatalf("bad fault spec: got %d, want 400", code)
	}

	body := `{"workload": "square", "scale": 0.05, "protocol": "cpelide", "faults": "drop=0.05,parity=0.01", "fault_seed": 7}`
	code, sr := post(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("fault-campaign submit: got %d, want 202", code)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st StatusResponse
		get(t, ts, "/v1/jobs/"+sr.ID, &st)
		if st.Status == "done" {
			break
		}
		if st.Status == "error" {
			t.Fatalf("fault-campaign job failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("fault-campaign job stuck in %q", st.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	var rep struct {
		StaleReads uint64 `json:"StaleReads"`
		Faults     *struct {
			ReqDrops uint64 `json:"req_drops"`
			AckDrops uint64 `json:"ack_drops"`
		} `json:"Faults"`
	}
	if code := get(t, ts, "/v1/jobs/"+sr.ID+"/result", &rep); code != http.StatusOK {
		t.Fatalf("result: got %d, want 200", code)
	}
	if rep.Faults == nil {
		t.Fatal("fault-campaign report carries no fault counters")
	}
	if rep.StaleReads != 0 {
		t.Fatalf("fault campaign produced %d stale reads; degradation must preserve correctness", rep.StaleReads)
	}

	// A different seed is a different job (content-addressed).
	code, sr2 := post(t, ts, `{"workload": "square", "scale": 0.05, "protocol": "cpelide", "faults": "drop=0.05,parity=0.01", "fault_seed": 8}`)
	if code != http.StatusAccepted || sr2.ID == sr.ID {
		t.Fatalf("distinct fault seed: got %d id=%s, want 202 with a fresh id", code, sr2.ID)
	}
}

// TestFigureAndStatsEndpoints exercises the synchronous figure endpoint and
// the stats snapshot.
func TestFigureAndStatsEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("figure endpoint runs full experiment matrices")
	}
	eng := farm.New(farm.Options{Workers: 2})
	defer eng.Close()
	s := New(eng, 8)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain()

	var res struct {
		Title string `json:"Title"`
		Rows  []struct {
			Workload string `json:"Workload"`
		} `json:"Rows"`
	}
	if code := get(t, ts, "/v1/figures/fig9?scale=0.1&workloads=square,btree", &res); code != http.StatusOK {
		t.Fatalf("figure: got %d, want 200", code)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("figure: got %d rows, want 2", len(res.Rows))
	}

	if code := get(t, ts, "/v1/figures/nope", nil); code != http.StatusNotFound {
		t.Fatalf("unknown figure: got %d, want 404", code)
	}

	var st StatsResponse
	if code := get(t, ts, "/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: got %d, want 200", code)
	}
	if st.Farm.Runs == 0 || st.Workers != 2 {
		t.Fatalf("stats: unexpected snapshot %+v", st)
	}

	// Same figure again: every point is already memoized.
	before := eng.Counters().Runs
	if code := get(t, ts, "/v1/figures/fig9?scale=0.1&workloads=square,btree", nil); code != http.StatusOK {
		t.Fatalf("figure rerun: got %d, want 200", code)
	}
	if after := eng.Counters().Runs; after != before {
		t.Fatalf("figure rerun re-simulated: %d -> %d runs", before, after)
	}
}
