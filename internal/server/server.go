// Package server exposes the experiment farm over HTTP/JSON: submit
// simulation jobs, poll their status, fetch full reports, and regenerate
// whole paper figures, all backed by the farm's worker pool and
// content-addressed result cache. Job IDs are the canonical content hash of
// the request, so resubmitting an identical job returns the same ID and —
// once it has run anywhere in the process — its cached report.
//
// cmd/cpelide-server wraps this package as a standalone binary; in a cluster
// the same server runs as a worker behind cmd/cpelide-coordinator, which
// routes jobs here by their content hash.
//
// Every non-2xx response uses one JSON shape, ErrorResponse: a human-readable
// message, a stable machine-readable code (the ErrCode* constants), and the
// request's correlation ID.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/farm"
	"repro/internal/metrics"
)

// JobRequest is the POST /v1/jobs body. Either workload (single stream
// across all chiplets) or streams (explicit chiplet bindings) names what to
// run; everything else tunes the machine and protocol.
type JobRequest struct {
	Workload string           `json:"workload,omitempty"`
	Streams  []farm.StreamJob `json:"streams,omitempty"`

	Chiplets int     `json:"chiplets,omitempty"` // default 4
	Scale    float64 `json:"scale,omitempty"`
	Iters    int     `json:"iters,omitempty"`

	Protocol         string `json:"protocol,omitempty"` // baseline | cpelide | hmg | hmg-wb | remotebank
	NoRangeInfo      bool   `json:"no_range_info,omitempty"`
	RangeOps         bool   `json:"range_ops,omitempty"`
	TableEntries     int    `json:"table_entries,omitempty"`
	DirLinesPerEntry int    `json:"dir_lines_per_entry,omitempty"`
	DirEntries       int    `json:"dir_entries,omitempty"`
	DriverManaged    bool   `json:"driver_managed,omitempty"`
	SyncLatencySets  int    `json:"sync_latency_sets,omitempty"`
	PerKernelStats   bool   `json:"per_kernel_stats,omitempty"`

	// Faults is a fault-injection spec (cpelide.ParseFaultSpec syntax,
	// e.g. "drop=0.1,parity=0.01"); FaultSeed seeds its schedule.
	Faults    string `json:"faults,omitempty"`
	FaultSeed uint64 `json:"fault_seed,omitempty"`
}

func parseProtocol(s string) (cpelide.Protocol, error) {
	switch strings.ToLower(s) {
	case "", "baseline", "base":
		return cpelide.ProtocolBaseline, nil
	case "cpelide", "elide":
		return cpelide.ProtocolCPElide, nil
	case "hmg":
		return cpelide.ProtocolHMG, nil
	case "hmg-wb", "hmgwb", "hmg-writeback":
		return cpelide.ProtocolHMGWriteBack, nil
	case "remotebank", "remote-bank":
		return cpelide.ProtocolRemoteBank, nil
	}
	return 0, fmt.Errorf("unknown protocol %q", s)
}

// Job converts the request into a farm job. The cluster coordinator uses
// it to compute a submission's content hash for routing without running
// anything.
func (r JobRequest) Job() (farm.Job, error) {
	proto, err := parseProtocol(r.Protocol)
	if err != nil {
		return farm.Job{}, err
	}
	chiplets := r.Chiplets
	if chiplets == 0 {
		chiplets = 4
	}
	j := farm.Job{
		Workload: r.Workload,
		Streams:  r.Streams,
		Config:   cpelide.DefaultConfig(chiplets),
	}
	j.Params.Scale = r.Scale
	j.Params.Iters = r.Iters
	j.Options = cpelide.Options{
		Protocol:            proto,
		NoRangeInfo:         r.NoRangeInfo,
		CPElideRangeOps:     r.RangeOps,
		CPElideTableEntries: r.TableEntries,
		HMGDirLinesPerEntry: r.DirLinesPerEntry,
		HMGDirEntries:       r.DirEntries,
		DriverManaged:       r.DriverManaged,
		SyncLatencySets:     r.SyncLatencySets,
		PerKernelStats:      r.PerKernelStats,
	}
	if r.Faults != "" {
		fc, err := cpelide.ParseFaultSpec(r.Faults)
		if err != nil {
			return farm.Job{}, err
		}
		fc.Seed = r.FaultSeed
		j.Options.Faults = fc
	}
	return j, nil
}

// serverJob tracks one accepted submission through the farm.
type serverJob struct {
	id  string
	job farm.Job

	mu     sync.Mutex
	status string // queued | running | done | error
	rep    *cpelide.Report
	errMsg string
}

func (s *serverJob) set(status string, rep *cpelide.Report, errMsg string) {
	s.mu.Lock()
	s.status, s.rep, s.errMsg = status, rep, errMsg
	s.mu.Unlock()
}

func (s *serverJob) snapshot() (status string, rep *cpelide.Report, errMsg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.status, s.rep, s.errMsg
}

// server owns the farm, a bounded submission queue, and the job registry.
type Server struct {
	farm     *farm.Farm
	queueCap int

	// reg and log are the observability surface: a nil registry makes every
	// metric a detached no-op and a nil logger discards, so tests that only
	// exercise the job API need no wiring.
	reg *metrics.Registry
	log *slog.Logger

	mu       sync.Mutex
	queue    chan *serverJob
	jobs     map[string]*serverJob
	draining bool

	wg sync.WaitGroup // dispatcher goroutines
}

// New starts a server whose submission queue holds queueCap pending
// jobs and whose dispatchers feed the given farm. Call Drain to stop.
func New(f *farm.Farm, queueCap int) *Server {
	if queueCap <= 0 {
		queueCap = 64
	}
	s := &Server{
		farm:     f,
		queueCap: queueCap,
		queue:    make(chan *serverJob, queueCap),
		jobs:     make(map[string]*serverJob),
	}
	n := f.Workers()
	s.wg.Add(n)
	for i := 0; i < n; i++ {
		go s.dispatch()
	}
	return s
}

// instrument attaches the observability surface: the metrics registry
// (server gauges; the HTTP middleware and /metrics mount read it too) and
// the structured logger. Call before Handler(); both may be nil.
func (s *Server) Instrument(reg *metrics.Registry, logger *slog.Logger) {
	s.reg = reg
	s.log = logger
	reg.GaugeFunc("server_queue_depth", "Jobs waiting for a dispatcher.", func() int64 {
		return int64(len(s.queue))
	})
	reg.GaugeFunc("server_jobs_known", "Job IDs tracked since startup.", func() int64 {
		s.mu.Lock()
		n := len(s.jobs)
		s.mu.Unlock()
		return int64(n)
	})
	reg.Gauge("server_queue_cap", "Submission queue capacity.").Set(int64(s.queueCap))
}

// logger returns the structured logger, discarding when none was attached.
func (s *Server) logger() *slog.Logger {
	if s.log == nil {
		return slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return s.log
}

// dispatch feeds queued jobs into the farm until the queue is closed. The
// farm's own pool bounds simulation parallelism; one dispatcher per worker
// keeps it saturated while cache hits return immediately.
func (s *Server) dispatch() {
	defer s.wg.Done()
	for sj := range s.queue {
		sj.set("running", nil, "")
		start := time.Now()
		rep, err := s.farm.Submit(context.Background(), sj.job)
		if err != nil {
			sj.set("error", nil, err.Error())
			s.logger().Error("job failed", "job_id", sj.id, "job", sj.job.Name(),
				"dur_us", time.Since(start).Microseconds(), "err", err)
			continue
		}
		sj.set("done", rep, "")
		s.logger().Info("job done", "job_id", sj.id, "job", sj.job.Name(),
			"dur_us", time.Since(start).Microseconds(), "cycles", rep.Cycles)
	}
}

// Drain stops accepting submissions, waits for every queued job to finish,
// and returns. The farm itself is left to the caller to Close.
func (s *Server) Drain() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}

// figures maps the figure-endpoint names onto the experiment suite (fig8
// takes a chiplet count and is handled separately).
var figures = map[string]func(experiments.Params) (*experiments.Result, error){
	"fig2":        experiments.Figure2,
	"fig9":        experiments.Figure9,
	"fig10":       experiments.Figure10,
	"table2":      experiments.TableII,
	"scaling":     experiments.ScalingStudy,
	"multistream": experiments.MultiStream,
}

func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/figures/{name}", s.handleFigure)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("GET /healthz", s.handleHealth)
	// Everything unmatched gets the JSON error schema, never net/http's
	// text/plain 404 page.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, http.StatusNotFound, ErrCodeNotFound, "no such endpoint %s %s", r.Method, r.URL.Path)
	})
	return s.middleware(mux)
}

// requestSeq breaks ties when the random source fails; IDs only need to be
// unique within the process's log stream.
var requestSeq atomic.Uint64

// newRequestID draws a 16-hex-digit correlation ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%d", requestSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// statusWriter captures the response code for logging and metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// middleware tags every response with an X-Request-ID (honoring one the
// client sent, so IDs correlate across services), logs the request with it,
// and feeds the HTTP metrics. Applied to every route, errors included.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		durUS := time.Since(start).Microseconds()
		s.reg.Counter(fmt.Sprintf("http_requests_total{code=%q}", strconv.Itoa(sw.code)),
			"HTTP responses by status code.").Inc()
		s.reg.Histogram("http_request_duration_us", "HTTP request latency, microseconds.").
			Observe(uint64(durUS))
		s.logger().Info("request", "request_id", id, "method", r.Method,
			"path", r.URL.Path, "status", sw.code, "dur_us", durUS)
	})
}

type StatusResponse struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Stable machine-readable error codes. Clients switch on Code; messages and
// HTTP statuses may be reworded, codes may not.
const (
	ErrCodeBadRequest = "bad_request" // malformed body, unknown field values
	ErrCodeNotFound   = "not_found"   // unknown job, figure, or endpoint
	ErrCodeQueueFull  = "queue_full"  // submission shed; retry after backoff
	ErrCodeDraining   = "draining"    // shutting down; resubmit elsewhere
	ErrCodeJobFailed  = "job_failed"  // the simulation itself errored
	ErrCodeInternal   = "internal"    // anything else server-side
)

// ErrorResponse is the uniform JSON error body for every non-2xx response.
type ErrorResponse struct {
	Error     string `json:"error"`
	Code      string `json:"code"`
	RequestID string `json:"request_id"`
}

// writeErr emits the uniform error schema. The request ID comes off the
// response header, where the middleware put it before the handler ran.
func writeErr(w http.ResponseWriter, status int, code string, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{
		Error:     fmt.Sprintf(format, args...),
		Code:      code,
		RequestID: w.Header().Get("X-Request-ID"),
	})
}

// handleSubmit accepts a job (202), reports an already-known job's state
// (200), sheds load when the queue is full (429), or rejects during
// shutdown (503).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, "bad request body: %v", err)
		return
	}
	job, err := req.Job()
	if err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, "%v", err)
		return
	}
	id, err := job.Key()
	if err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	if sj, ok := s.jobs[id]; ok {
		s.mu.Unlock()
		status, _, errMsg := sj.snapshot()
		writeJSON(w, http.StatusOK, StatusResponse{ID: id, Status: status, Error: errMsg})
		return
	}
	if s.draining {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, ErrCodeDraining, "server is draining")
		return
	}
	sj := &serverJob{id: id, job: job, status: "queued"}
	select {
	case s.queue <- sj:
		s.jobs[id] = sj
		s.mu.Unlock()
		s.logger().Info("job accepted", "job_id", id, "job", job.Name())
		writeJSON(w, http.StatusAccepted, StatusResponse{ID: id, Status: "queued"})
	default:
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, ErrCodeQueueFull, "queue full (%d pending)", s.queueCap)
	}
}

func (s *Server) lookup(id string) (*serverJob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sj, ok := s.jobs[id]
	return sj, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sj, ok := s.lookup(id)
	if !ok {
		writeErr(w, http.StatusNotFound, ErrCodeNotFound, "unknown job %q", id)
		return
	}
	status, _, errMsg := sj.snapshot()
	writeJSON(w, http.StatusOK, StatusResponse{ID: id, Status: status, Error: errMsg})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sj, ok := s.lookup(id)
	if !ok {
		writeErr(w, http.StatusNotFound, ErrCodeNotFound, "unknown job %q", id)
		return
	}
	status, rep, errMsg := sj.snapshot()
	switch status {
	case "done":
		writeJSON(w, http.StatusOK, rep)
	case "error":
		writeErr(w, http.StatusInternalServerError, ErrCodeJobFailed, "job failed: %s", errMsg)
	default:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusAccepted, StatusResponse{ID: id, Status: status})
	}
}

// handleFigure regenerates one paper figure synchronously through the farm;
// repeated calls are near-free thanks to the result cache. Query params:
// scale, iters, workloads (comma-separated), and chiplets (fig8 only).
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	p := experiments.Params{Farm: s.farm}
	q := r.URL.Query()
	if v := q.Get("scale"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, "bad scale %q", v)
			return
		}
		p.Scale = f
	}
	if v := q.Get("iters"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, "bad iters %q", v)
			return
		}
		p.Iters = n
	}
	if v := q.Get("workloads"); v != "" {
		p.Workloads = strings.Split(v, ",")
	}

	if name == "fig8" {
		n := 4
		if v := q.Get("chiplets"); v != "" {
			var err error
			if n, err = strconv.Atoi(v); err != nil {
				writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, "bad chiplets %q", v)
				return
			}
		}
		results, err := experiments.Figure8(p, n)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, ErrCodeInternal, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, results[n])
		return
	}
	fn, ok := figures[name]
	if !ok {
		writeErr(w, http.StatusNotFound, ErrCodeNotFound, "unknown figure %q (have fig2, fig8, fig9, fig10, table2, scaling, multistream)", name)
		return
	}
	res, err := fn(p)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, ErrCodeInternal, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

type StatsResponse struct {
	Farm      farm.Counters `json:"farm"`
	CacheLen  int           `json:"cache_len"`
	QueueLen  int           `json:"queue_len"`
	QueueCap  int           `json:"queue_cap"`
	Workers   int           `json:"workers"`
	JobsKnown int           `json:"jobs_known"`
	Draining  bool          `json:"draining"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	resp := StatsResponse{
		Farm:      s.farm.Counters(),
		CacheLen:  s.farm.CacheLen(),
		QueueLen:  len(s.queue),
		QueueCap:  s.queueCap,
		Workers:   s.farm.Workers(),
		JobsKnown: len(s.jobs),
		Draining:  s.draining,
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// handleHealth is the liveness and readiness probe: 200 while serving, 503
// once draining so load balancers and the cluster coordinator stop routing
// jobs here before the listener actually goes away.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeErr(w, http.StatusServiceUnavailable, ErrCodeDraining, "server is draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// WriteJSON and WriteError expose the response helpers to sibling services
// (the cluster coordinator) so every process in a deployment speaks the same
// response and error schema.
func WriteJSON(w http.ResponseWriter, status int, v any) { writeJSON(w, status, v) }

// WriteError emits the uniform error schema (see ErrorResponse).
func WriteError(w http.ResponseWriter, status int, code string, format string, args ...any) {
	writeErr(w, status, code, format, args...)
}
