package core

import (
	"repro/internal/coherence"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Protocol is CPElide as a pluggable coherence policy: the baseline
// VIPER-chiplet access path (CPElide changes no coherence protocol and no
// cache structure), with the Chiplet Coherence Table deciding which
// chiplet-targeted acquires and releases — if any — each kernel launch
// performs.
type Protocol struct {
	*coherence.Baseline
	Table *Table

	// viewsBuf and rsArena back the per-launch ArgView slices handed to the
	// table. They are valid only for the duration of one PreLaunch call: the
	// table copies (never aliases) everything it keeps, so both are reused
	// at the next boundary without allocating.
	viewsBuf []ArgView
	rsArena  []mem.RangeSet
}

// Options tunes CPElide variants for the ablation studies.
type Options struct {
	// RangeOps enables the fine-grained hardware range-flush extension
	// (Section VI): operations invalidate/flush only the tracked address
	// ranges instead of the whole L2.
	RangeOps bool
	// TableEntries overrides the Chiplet Coherence Table capacity
	// (default: the machine configuration's 8 structures x 8 kernels).
	TableEntries int
}

// New builds CPElide over machine m with default options.
func New(m *machine.Machine) (*Protocol, error) { return NewWithOptions(m, Options{}) }

// NewWithOptions builds CPElide over machine m.
func NewWithOptions(m *machine.Machine, o Options) (*Protocol, error) {
	entries := m.Cfg.TableEntries()
	if o.TableEntries > 0 {
		entries = o.TableEntries
	}
	t, err := NewTable(Config{
		Chiplets:          m.Cfg.NumChiplets,
		MaxDataStructures: m.Cfg.TableMaxDataStructures,
		MaxEntries:        entries,
		RangeOps:          o.RangeOps,
	})
	if err != nil {
		return nil, err
	}
	return &Protocol{
		Baseline: coherence.NewBaseline(m),
		Table:    t,
	}, nil
}

// Name implements coherence.Protocol.
func (p *Protocol) Name() string { return "CPElide" }

// PreLaunch consults the Chiplet Coherence Table and converts its decisions
// into synchronization operations. The elision statistics compare against
// the baseline's 2*N ops (one flush and one invalidate per chiplet) per
// kernel boundary.
func (p *Protocol) PreLaunch(l *coherence.Launch) coherence.SyncPlan {
	m := p.M
	cfg := &m.Cfg
	if cfg.IsMonolithic() {
		return coherence.SyncPlan{CPCycles: cfg.CPLatencyCycles()}
	}

	views := p.argViews(l)
	var preState string
	if m.Trace.Enabled() {
		// Snapshot the table before the launch mutates it: the audit log
		// must show the state that justified the decisions.
		preState = p.Table.String()
	}
	// A detected table parity error means no tracked state can be trusted:
	// reset first (emitting the baseline full flush+invalidate boundary) so
	// OnKernelLaunch records this kernel's accesses into the fresh table.
	var ops []Op
	if m.Faults.TableParity() {
		ops = p.Table.ParityReset()
		m.Sheet.Inc(stats.TableParityResets)
		ops = append(ops, p.Table.OnKernelLaunch(views)...)
	} else {
		ops = p.Table.OnKernelLaunch(views)
	}

	plan := coherence.SyncPlan{
		CPCycles: cfg.CPLatencyCycles() + cfg.CPElideOverheadCycles(),
	}
	planOps := p.TakeOps()
	releases, acquires := 0, 0
	for _, op := range ops {
		kind := coherence.Acquire
		if op.Flush {
			kind = coherence.Release
			releases++
		} else {
			acquires++
		}
		planOps = append(planOps, coherence.SyncOp{
			Chiplet: op.Chiplet,
			Kind:    kind,
			Ranges:  op.Ranges,
		})
	}
	p.KeepOps(planOps)
	plan.Ops = planOps
	// One request + one ack per op, plus a launch-enable per target chiplet.
	plan.Messages = 2*len(ops) + len(l.Chiplets)

	m.Sheet.Add(stats.ReleasesIssued, uint64(releases))
	m.Sheet.Add(stats.AcquiresIssued, uint64(acquires))
	n := uint64(cfg.NumChiplets)
	m.Sheet.Add(stats.ReleasesElided, n-minu(uint64(releases), n))
	m.Sheet.Add(stats.AcquiresElided, n-minu(uint64(acquires), n))
	m.Sheet.Max(stats.TablePeakUse, uint64(p.Table.PeakEntries))
	m.Sheet.Set(stats.TableCoarsening, uint64(p.Table.Coarsenings))

	if m.Trace.Enabled() {
		audit := trace.Audit{
			Ts:     m.Trace.Now(),
			Kernel: l.Kernel.Name,
			Inst:   l.Inst,
			Stream: l.Stream,
			// The elision increments mirror the sheet accounting above
			// exactly, so summing the audit log reproduces the counters.
			AcquiresIssued: uint64(acquires),
			ReleasesIssued: uint64(releases),
			AcquiresElided: n - minu(uint64(acquires), n),
			ReleasesElided: n - minu(uint64(releases), n),
			Table:          preState,
		}
		decisions := make([]trace.ChipletDecision, cfg.NumChiplets)
		for c := range decisions {
			decisions[c].Chiplet = c
		}
		for _, op := range ops {
			if op.Flush {
				decisions[op.Chiplet].ReleaseIssued = true
			} else {
				decisions[op.Chiplet].AcquireIssued = true
			}
		}
		audit.Decisions = decisions
		m.Trace.AuditKernel(audit)
	}
	return plan
}

func minu(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// argViews converts a launch's argument metadata into the table's input:
// per-argument, per-machine-chiplet declared ranges plus the cacheable
// subset (locally homed pages — the protocol never caches remote lines, and
// the global CP makes the placement decisions, so it knows the homes).
func (p *Protocol) argViews(l *coherence.Launch) []ArgView {
	n := p.M.Cfg.NumChiplets
	views := p.viewsBuf[:0]
	p.rsArena = p.rsArena[:0]
	// grab carves n zeroed RangeSets out of the arena. Appending fresh zero
	// values (rather than reslicing) keeps reused capacity clean.
	grab := func() []mem.RangeSet {
		start := len(p.rsArena)
		for i := 0; i < n; i++ {
			p.rsArena = append(p.rsArena, mem.RangeSet{})
		}
		return p.rsArena[start : start+n : start+n]
	}
	for ai, a := range l.Kernel.Args {
		v := ArgView{
			Base:      a.DS.Base,
			Full:      a.DS.Range(),
			Mode:      a.Mode,
			Ranges:    grab(),
			Cacheable: grab(),
		}
		atomicScatter := a.Pattern == kernels.Indirect && a.Mode == kernels.ReadWrite
		for slot, c := range l.Chiplets {
			v.Ranges[c] = l.ArgRanges[ai][slot]
			if atomicScatter {
				// Atomic scatter updates execute at the home ordering
				// point and never allocate in the requester's L2, and the
				// CP sees the atomic opcodes in the kernel object — so the
				// table need not track these accesses as cacheable. Their
				// writes still stale other chiplets' copies (Ranges).
				continue
			}
			v.Cacheable[c] = p.homedSubset(c, l.ArgRanges[ai][slot])
		}
		views = append(views, v)
	}
	p.viewsBuf = views
	return views
}

// homedSubset returns the pages of rs homed on chiplet c. Unplaced pages
// are included conservatively (they could be first-touched by c).
func (p *Protocol) homedSubset(c int, rs mem.RangeSet) mem.RangeSet {
	pages := p.M.Pages
	ps := mem.Addr(pages.PageSize())
	var out mem.RangeSet
	for ri, rn := 0, rs.Len(); ri < rn; ri++ {
		r := rs.At(ri)
		runStart := mem.Addr(0)
		inRun := false
		for lo := r.Lo &^ (ps - 1); lo < r.Hi; lo += ps {
			h := pages.HomeIfPlaced(lo)
			mine := h == c || h < 0
			if mine && !inRun {
				runStart, inRun = lo, true
			}
			if !mine && inRun {
				out.Add(mem.Range{Lo: runStart, Hi: lo}.Intersect(r))
				inRun = false
			}
		}
		if inRun {
			out.Add(mem.Range{Lo: runStart, Hi: r.Hi}.Intersect(r))
		}
	}
	return out
}

// DegradeChiplet implements coherence.Degradable: after the CP watchdog
// falls back to the reliable full flush+invalidate on chiplet c, the table's
// belief about c is conservatively abandoned (all-Dirty over full extents).
func (p *Protocol) DegradeChiplet(c int) {
	p.Table.DegradeChiplet(c)
	p.M.Sheet.Inc(stats.TableDegradations)
}

// ConservativeReset implements coherence.Degradable for whole-run
// interruptions (context cancel mid-plan): every chiplet's tracked state is
// degraded, so a hypothetical resume could only over-synchronize.
func (p *Protocol) ConservativeReset() {
	for c := 0; c < p.M.Cfg.NumChiplets; c++ {
		p.DegradeChiplet(c)
	}
}

// Finalize flushes the chiplets the table still tracks as Dirty — the only
// end-of-program releases CPElide needs.
func (p *Protocol) Finalize() coherence.SyncPlan {
	if p.M.Cfg.IsMonolithic() {
		return p.Baseline.Finalize()
	}
	var plan coherence.SyncPlan
	ops := p.TakeOps()
	for _, op := range p.Table.FinalizeOps() {
		ops = append(ops, coherence.SyncOp{
			Chiplet: op.Chiplet,
			Kind:    coherence.Release,
			Ranges:  op.Ranges,
		})
	}
	p.KeepOps(ops)
	plan.Ops = ops
	return plan
}
