package core

import (
	"testing"

	"repro/internal/kernels"
	"repro/internal/mem"
)

// rangeTable returns a table in fine-grained range-operation mode.
func rangeTable() *Table {
	return mustTable(Config{Chiplets: nChiplets, RangeOps: true})
}

// TestRangeOpsSelectiveStateTransitions: in range mode a flush or
// invalidation only affects table rows whose tracked ranges the operation
// covers — unlike whole-cache mode, where every row on the chiplet
// transitions.
func TestRangeOpsSelectiveStateTransitions(t *testing.T) {
	tb := rangeTable()
	wholeA := mem.Range{Lo: base0, Hi: base0 + 0x100000}
	baseB := base0 + 0x1000000
	wholeB := mem.Range{Lo: baseB, Hi: baseB + 0x100000}

	// Chiplet 0 dirties two structures.
	tb.OnKernelLaunch([]ArgView{
		view(base0, 0x100000, kernels.ReadWrite, map[int]mem.Range{0: wholeA}),
		view(baseB, 0x100000, kernels.ReadWrite, map[int]mem.Range{0: wholeB}),
	})
	// Chiplet 1 consumes only structure A: the range-based release must
	// clean A on chiplet 0 and leave B dirty.
	ops := tb.OnKernelLaunch([]ArgView{
		view(base0, 0x100000, kernels.Read, map[int]mem.Range{1: wholeA}),
	})
	if len(ops) != 1 || !ops[0].Flush || ops[0].Ranges.Empty() {
		t.Fatalf("ops = %+v", ops)
	}
	if ops[0].Ranges.Overlaps(wholeB) {
		t.Error("range op covers the unrelated structure")
	}
	if tb.StateOf(base0, 0) != Valid {
		t.Errorf("flushed structure state = %v", tb.StateOf(base0, 0))
	}
	if tb.StateOf(baseB, 0) != Dirty {
		t.Errorf("unrelated structure transitioned: %v (whole-cache semantics leaked)",
			tb.StateOf(baseB, 0))
	}
}

// TestRangeOpsAcquireCoversTrackedRanges: a deferred acquire in range mode
// invalidates exactly the stale chiplet's tracked ranges.
func TestRangeOpsAcquireCoversTrackedRanges(t *testing.T) {
	tb := rangeTable()
	whole := mem.Range{Lo: base0, Hi: base0 + 0x100000}
	half := mem.Range{Lo: base0, Hi: base0 + 0x80000}
	tb.OnKernelLaunch([]ArgView{view(base0, 0x100000, kernels.Read, map[int]mem.Range{0: half})})
	tb.OnKernelLaunch([]ArgView{view(base0, 0x100000, kernels.ReadWrite, map[int]mem.Range{1: whole})})
	if tb.StateOf(base0, 0) != Stale {
		t.Fatalf("state = %v", tb.StateOf(base0, 0))
	}
	ops := tb.OnKernelLaunch([]ArgView{view(base0, 0x100000, kernels.Read, map[int]mem.Range{0: half})})
	var acquire *Op
	for i := range ops {
		if !ops[i].Flush && ops[i].Chiplet == 0 {
			acquire = &ops[i]
		}
	}
	if acquire == nil {
		t.Fatalf("no acquire for chiplet 0: %+v", ops)
	}
	if !acquire.Ranges.Overlaps(half) {
		t.Error("acquire ranges miss the stale tracked range")
	}
}

func TestMergeStateConservativeOrder(t *testing.T) {
	cases := []struct{ a, b, want State }{
		{Dirty, Stale, Dirty},
		{Stale, Dirty, Dirty},
		{Stale, Valid, Stale},
		{Valid, NotPresent, Valid},
		{NotPresent, NotPresent, NotPresent},
		{Dirty, Dirty, Dirty},
	}
	for _, c := range cases {
		if got := mergeState(c.a, c.b); got != c.want {
			t.Errorf("mergeState(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestLookupMergesOverlappingRows: a coarsened argument spanning two
// existing rows collapses them into one conservative row.
func TestLookupMergesOverlappingRows(t *testing.T) {
	tb := newTestTable()
	r0 := mem.Range{Lo: base0, Hi: base0 + 0x1000}
	b1 := base0 + 0x1000
	r1 := mem.Range{Lo: b1, Hi: b1 + 0x1000}
	tb.OnKernelLaunch([]ArgView{view(base0, 0x1000, kernels.ReadWrite, map[int]mem.Range{0: r0})})
	tb.OnKernelLaunch([]ArgView{view(b1, 0x1000, kernels.Read, map[int]mem.Range{1: r1})})
	if tb.Len() != 2 {
		t.Fatalf("setup rows = %d", tb.Len())
	}
	// An argument spanning both structures (as coarsening would produce).
	span := view(base0, 0x2000, kernels.Read, map[int]mem.Range{2: {Lo: base0, Hi: base0 + 0x2000}})
	ops := tb.OnKernelLaunch([]ArgView{span})
	if tb.Len() != 1 {
		t.Fatalf("rows after merge = %d, want 1", tb.Len())
	}
	// The merged row preserved chiplet 0's Dirty (and the consumer on
	// chiplet 2 triggered its release).
	var flushed0 bool
	for _, op := range ops {
		if op.Flush && op.Chiplet == 0 {
			flushed0 = true
		}
	}
	if !flushed0 {
		t.Errorf("merged row lost the dirty state: ops %+v", ops)
	}
}

func TestRangeOfAndUnknownBase(t *testing.T) {
	tb := newTestTable()
	r := mem.Range{Lo: base0, Hi: base0 + 0x1000}
	tb.OnKernelLaunch([]ArgView{view(base0, 0x1000, kernels.Read, map[int]mem.Range{2: r})})
	if got := tb.RangeOf(base0, 2); !got.Overlaps(r) {
		t.Errorf("RangeOf = %v", got)
	}
	if !tb.RangeOf(base0, 0).Empty() {
		t.Error("non-accessing chiplet has tracked ranges")
	}
	if tb.StateOf(0xDEAD000, 1) != NotPresent {
		t.Error("unknown base not NotPresent")
	}
	if !tb.RangeOf(0xDEAD000, 1).Empty() {
		t.Error("unknown base has ranges")
	}
}

// TestFinalizeRangeMode covers FinalizeOps in range-op mode.
func TestFinalizeRangeMode(t *testing.T) {
	tb := rangeTable()
	whole := mem.Range{Lo: base0, Hi: base0 + 0x1000}
	tb.OnKernelLaunch([]ArgView{view(base0, 0x1000, kernels.ReadWrite, map[int]mem.Range{3: whole})})
	ops := tb.FinalizeOps()
	if len(ops) != 1 || !ops[0].Flush || ops[0].Chiplet != 3 {
		t.Fatalf("finalize ops = %+v", ops)
	}
}

// TestNoRangeInfoDegradesGracefully: whole-structure declarations (the
// hipSetAccessMode-only ablation) still produce correct, if conservative,
// operations: disjoint writers appear to conflict and must synchronize.
func TestNoRangeInfoDegradesGracefully(t *testing.T) {
	tb := newTestTable()
	whole := mem.Range{Lo: base0, Hi: base0 + 0x100000}
	all := map[int]mem.Range{0: whole, 1: whole, 2: whole, 3: whole}
	tb.OnKernelLaunch([]ArgView{view(base0, 0x100000, kernels.ReadWrite, all)})
	ops := tb.OnKernelLaunch([]ArgView{view(base0, 0x100000, kernels.ReadWrite, all)})
	if len(ops) == 0 {
		t.Error("mode-only overlapping writers produced no synchronization")
	}
}
