// Package core implements CPElide, the paper's contribution: a Chiplet
// Coherence Table housed in the global command processor that tracks, per
// data structure and per chiplet, whether a chiplet's L2 may hold Valid,
// Dirty, or Stale copies — and uses that to generate lazy, chiplet-targeted
// implicit acquires (L2 invalidations) and releases (L2 flushes) at kernel
// launches, eliding the conservative GPU-wide synchronization the baseline
// performs at every kernel boundary.
package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/kernels"
	"repro/internal/mem"
)

// State is the per-chiplet tracking state of a data structure in the
// Chiplet Coherence Table (2 bits per chiplet in the chiplet vector).
type State uint8

const (
	// NotPresent (00): the structure is guaranteed absent from the
	// chiplet's L2.
	NotPresent State = iota
	// Valid (01): the chiplet may hold clean, up-to-date copies.
	Valid
	// Dirty (10): the chiplet may hold modified copies that have not
	// reached the ordering point.
	Dirty
	// Stale (11): the chiplet may hold copies that are no longer the most
	// up-to-date values; they must be invalidated before the chiplet
	// accesses the structure again.
	Stale
)

func (s State) String() string {
	switch s {
	case NotPresent:
		return "NotPresent"
	case Valid:
		return "Valid"
	case Dirty:
		return "Dirty"
	case Stale:
		return "Stale"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// ArgView is one kernel argument as the global CP sees it at launch: the
// data structure's identity, the kernel's declared access mode, and the
// per-chiplet address ranges the partitioned WGs will touch (from
// hipSetAccessModeRange, or the full structure per assigned chiplet when
// only hipSetAccessMode was used).
type ArgView struct {
	Base mem.Addr
	Full mem.Range
	Mode kernels.AccessMode
	// Ranges is indexed by machine chiplet ID; an empty set means the
	// chiplet does not access the structure in this kernel. These are the
	// declared (touched) ranges: writes anywhere in them can stale other
	// chiplets' copies.
	Ranges []mem.RangeSet
	// Cacheable is what each chiplet's L2 can actually retain of Ranges:
	// the protocol never caches remotely homed lines, and the global CP
	// knows page placement, so the table tracks only locally homed ranges.
	// Nil means Ranges (everything assumed cacheable).
	Cacheable []mem.RangeSet
}

func (a *ArgView) accesses(c int) bool { return !a.Ranges[c].Empty() }

func (a *ArgView) cacheable(c int) mem.RangeSet {
	if a.Cacheable == nil {
		return a.Ranges[c]
	}
	return a.Cacheable[c]
}

// Op is a chiplet-targeted synchronization operation the table decides on.
type Op struct {
	Chiplet int
	// Flush writes the chiplet's dirty L2 data back (a release); otherwise
	// the op invalidates (an acquire). A chiplet needing both gets two ops.
	Flush bool
	// Ranges is non-empty only in fine-grained range mode (the Section VI
	// hardware range-flush extension); empty means the whole L2.
	Ranges mem.RangeSet
}

// entry is one Chiplet Coherence Table row: 4 bytes base address, 28 bytes
// of address ranges, 1 access-mode bit, and a 2n-bit chiplet vector in the
// paper's accounting.
type entry struct {
	base    mem.Addr
	full    mem.Range
	mode    kernels.AccessMode // most recent conservative mode, diagnostic
	ranges  []mem.RangeSet     // per chiplet: lines possibly cached there
	states  []State            // per chiplet
	lastUse int                // launch sequence of last touch (LRU eviction)
}

func (e *entry) allNotPresent() bool {
	for _, s := range e.states {
		if s != NotPresent {
			return false
		}
	}
	return true
}

// Config sizes and configures a Table.
type Config struct {
	Chiplets int
	// MaxDataStructures is the per-kernel tracking limit; kernels with
	// more arguments are coarsened (Section III-B). Default 8.
	MaxDataStructures int
	// MaxEntries is the table capacity. Default MaxDataStructures * 8.
	MaxEntries int
	// RangeOps makes the emitted operations carry address ranges instead
	// of covering the whole cache (the fine-grained hardware range-flush
	// extension). Default off, as in the paper's main evaluation.
	RangeOps bool
}

func (c Config) withDefaults() Config {
	if c.MaxDataStructures <= 0 {
		c.MaxDataStructures = 8
	}
	if c.MaxEntries <= 0 {
		c.MaxEntries = c.MaxDataStructures * 8
	}
	return c
}

// Table is the Chiplet Coherence Table. It is a pure state machine: it never
// touches caches itself but tells the caller which chiplets to flush or
// invalidate before each kernel launch. All methods are single-threaded,
// like the global CP that owns the table.
type Table struct {
	cfg     Config
	entries []*entry // insertion order; scanned linearly (<= 64 rows)
	seq     int

	// Statistics.
	Coarsenings  int
	Evictions    int
	PeakEntries  int
	FlushesIssue int
	InvalsIssue  int
	ParityResets int // parity errors that forced a full table reset
	Degradations int // watchdog give-ups that conservatively marked a chiplet
}

// ErrNoChiplets reports a Table configured without any chiplet to track.
var ErrNoChiplets = errors.New("core: table needs at least one chiplet")

// NewTable builds an empty table for cfg.Chiplets chiplets.
func NewTable(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	if cfg.Chiplets < 1 {
		return nil, ErrNoChiplets
	}
	return &Table{cfg: cfg}, nil
}

// Len returns the current number of entries.
func (t *Table) Len() int { return len(t.entries) }

// StateOf returns the tracked state of the structure based at base on
// chiplet c, or NotPresent if untracked.
func (t *Table) StateOf(base mem.Addr, c int) State {
	for _, e := range t.entries {
		if e.base == base {
			return e.states[c]
		}
	}
	return NotPresent
}

// RangeOf returns the tracked range set of the structure based at base on
// chiplet c.
func (t *Table) RangeOf(base mem.Addr, c int) mem.RangeSet {
	for _, e := range t.entries {
		if e.base == base {
			return e.ranges[c].Clone()
		}
	}
	return mem.RangeSet{}
}

// OnKernelLaunch runs the table's launch-time algorithm for a kernel
// described by args and returns the synchronization operations that must
// complete before the kernel's WGs dispatch. Flush ops precede invalidate
// ops for the same chiplet.
func (t *Table) OnKernelLaunch(args []ArgView) []Op {
	t.seq++
	args = t.dedupe(args)
	if len(args) > t.cfg.MaxDataStructures {
		args = t.coarsen(args)
	}

	n := t.cfg.Chiplets
	flush := make([]bool, n)
	inval := make([]bool, n)
	var flushRanges, invalRanges []mem.RangeSet
	if t.cfg.RangeOps {
		flushRanges = make([]mem.RangeSet, n)
		invalRanges = make([]mem.RangeSet, n)
	}
	addFlush := func(c int, rs mem.RangeSet) {
		flush[c] = true
		if t.cfg.RangeOps {
			flushRanges[c].AddSet(rs)
		}
	}
	addInval := func(c int, rs mem.RangeSet) {
		inval[c] = true
		if t.cfg.RangeOps {
			invalRanges[c].AddSet(rs)
		}
	}

	// Phase A: detect conflicts between the launching kernel's accesses
	// and the tracked states, using pre-launch states throughout.
	type pending struct {
		e   *entry
		arg *ArgView
	}
	var updates []pending
	for i := range args {
		arg := &args[i]
		e := t.lookup(arg)
		if e != nil {
			// Mark the row as in-use this launch so capacity eviction in
			// Phase C never victimizes a row that is still pending update.
			e.lastUse = t.seq
		}
		for c := 0; c < n; c++ {
			if !arg.accesses(c) {
				continue
			}
			if e != nil {
				for o := 0; o < n; o++ {
					if o == c || e.states[o] == NotPresent {
						continue
					}
					if !arg.Ranges[c].OverlapsSet(e.ranges[o]) {
						continue
					}
					// Lazy release: another chiplet holds the structure
					// Dirty and this kernel (on chiplet c) is about to
					// access it.
					if e.states[o] == Dirty {
						addFlush(o, e.ranges[o])
					}
					// Same-launch conflict: chiplet o also runs this kernel
					// — and caches lines of the structure while doing so —
					// while chiplet c's writes will overwrite lines o may
					// have cached. o's copies are stale the moment the
					// kernel runs, and the post-kernel chiplet vector can
					// only say Dirty (o fills too), so the acquire cannot
					// be deferred. When o's accesses allocate nothing
					// (atomic scatters execute at the ordering point), the
					// acquire stays lazy: the vector records Stale and the
					// invalidation waits for o's next caching access.
					if arg.Mode == kernels.ReadWrite && arg.accesses(o) &&
						!arg.cacheable(o).Empty() {
						addInval(o, e.ranges[o])
					}
				}
				// Lazy acquire: this chiplet's copies are stale.
				if e.states[c] == Stale {
					addInval(c, e.ranges[c])
				}
			}
		}
		updates = append(updates, pending{e: e, arg: arg})
	}

	// Phase A': Valid/flushed copies on non-accessing chiplets become
	// Stale when the kernel writes overlapping ranges elsewhere. (State
	// transition only — no operation; the acquire is deferred until that
	// chiplet next accesses the structure.) Applied after op generation so
	// every decision above used pre-launch states.
	for i := range args {
		arg := &args[i]
		e := t.lookup(arg)
		if e == nil || arg.Mode != kernels.ReadWrite {
			continue
		}
		for c := 0; c < n; c++ {
			if !arg.accesses(c) {
				continue
			}
			for o := 0; o < n; o++ {
				if o == c || !arg.Ranges[c].OverlapsSet(e.ranges[o]) {
					continue
				}
				if e.states[o] == Valid || e.states[o] == Dirty {
					e.states[o] = Stale
				}
			}
		}
	}

	// Phase B: apply the cache-wide side effects of the chosen operations
	// to every table entry. A whole-L2 flush cleans every structure on
	// that chiplet (Dirty -> Valid); an invalidation empties it
	// (-> NotPresent, with dirty data written back by the machine first).
	if !t.cfg.RangeOps {
		for c := 0; c < n; c++ {
			switch {
			case inval[c]:
				for _, e := range t.entries {
					e.states[c] = NotPresent
					e.ranges[c] = mem.RangeSet{}
				}
			case flush[c]:
				for _, e := range t.entries {
					if e.states[c] == Dirty {
						e.states[c] = Valid
					}
				}
			}
		}
	} else {
		for c := 0; c < n; c++ {
			if inval[c] {
				for _, e := range t.entries {
					if !e.ranges[c].Empty() && invalRanges[c].OverlapsSet(e.ranges[c]) {
						e.states[c] = NotPresent
						e.ranges[c] = mem.RangeSet{}
					}
				}
			}
			if flush[c] {
				for _, e := range t.entries {
					if e.states[c] == Dirty && flushRanges[c].OverlapsSet(e.ranges[c]) {
						e.states[c] = Valid
					}
				}
			}
		}
	}

	// Phase C: record the launching kernel's own accesses.
	for _, u := range updates {
		e := u.e
		if e == nil {
			e = t.insert(u.arg, addFlush, addInval)
		}
		e.lastUse = t.seq
		e.mode = u.arg.Mode
		e.full = e.full.Union(u.arg.Full)
		for c := 0; c < n; c++ {
			if !u.arg.accesses(c) {
				continue
			}
			cacheable := u.arg.cacheable(c)
			e.ranges[c].AddSet(cacheable)
			switch {
			case u.arg.Mode == kernels.ReadWrite && !cacheable.Empty():
				e.states[c] = Dirty
			case u.arg.Mode == kernels.ReadWrite:
				// Atomic scatter: the chiplet writes at the ordering point
				// without allocating, so its L2 holds no new dirty data —
				// but any copies it cached earlier are now behind the
				// atomics. Valid degrades to Stale (the deferred acquire);
				// Dirty stays Dirty so a future consumer still triggers
				// the release of genuinely dirty lines.
				if e.states[c] == Valid {
					e.states[c] = Stale
				}
			case e.states[c] == NotPresent || e.states[c] == Stale:
				// A Stale chiplet was just invalidated (Phase A/B), so the
				// fresh reads make it Valid; Dirty stays Dirty (the
				// "stay in Dirty" release elision), Valid stays Valid.
				e.states[c] = Valid
			}
		}
	}

	// Drop rows whose chiplet vector is NotPresent everywhere.
	t.removeEmpty()
	if len(t.entries) > t.PeakEntries {
		t.PeakEntries = len(t.entries)
	}

	return t.buildOps(flush, inval, flushRanges, invalRanges)
}

// buildOps materializes the op list, flushes first.
func (t *Table) buildOps(flush, inval []bool, flushRanges, invalRanges []mem.RangeSet) []Op {
	var ops []Op
	for c := range flush {
		if flush[c] && !inval[c] {
			// An invalidation subsumes the flush: the machine writes dirty
			// lines back before dropping them.
			op := Op{Chiplet: c, Flush: true}
			if t.cfg.RangeOps {
				op.Ranges = flushRanges[c]
			}
			ops = append(ops, op)
			t.FlushesIssue++
		}
	}
	for c := range inval {
		if inval[c] {
			op := Op{Chiplet: c}
			if t.cfg.RangeOps {
				rs := invalRanges[c].Clone()
				if flush[c] {
					rs.AddSet(flushRanges[c])
				}
				op.Ranges = rs
			}
			ops = append(ops, op)
			t.InvalsIssue++
			if flush[c] {
				t.FlushesIssue++
			}
		}
	}
	return ops
}

// lookup finds the entry tracking arg's structure. Entries overlapping the
// argument (possible after coarsening) are merged first so each structure
// has a single row.
func (t *Table) lookup(arg *ArgView) *entry {
	var found []*entry
	for _, e := range t.entries {
		if e.full.Overlaps(arg.Full) {
			found = append(found, e)
		}
	}
	switch len(found) {
	case 0:
		return nil
	case 1:
		return found[0]
	}
	// Merge overlapping rows conservatively (most severe state wins).
	dst := found[0]
	for _, e := range found[1:] {
		dst.full = dst.full.Union(e.full)
		if e.mode == kernels.ReadWrite {
			dst.mode = kernels.ReadWrite
		}
		for c := range dst.states {
			dst.states[c] = mergeState(dst.states[c], e.states[c])
			dst.ranges[c].AddSet(e.ranges[c])
		}
		if e.lastUse > dst.lastUse {
			dst.lastUse = e.lastUse
		}
		t.remove(e)
	}
	return dst
}

// mergeState combines two tracked states conservatively. Dirty dominates
// (unflushed data must not be lost), then Stale, then Valid.
func mergeState(a, b State) State {
	rank := func(s State) int {
		switch s {
		case Dirty:
			return 3
		case Stale:
			return 2
		case Valid:
			return 1
		case NotPresent:
			return 0
		}
		return 0
	}
	if rank(a) >= rank(b) {
		return a
	}
	return b
}

// insert adds a row for arg, evicting the LRU row if the table is full. An
// evicted row's chiplets are synchronized conservatively — every copy the
// victim tracked is invalidated (the machine writes Dirty lines back before
// dropping them, so the invalidation subsumes the flush) — because once the
// row is gone the table can no longer order future accesses against it. A
// flush alone would not do: the victim's clean copies would outlive the row,
// and a later remote write could stale them with no row left to trigger the
// deferred acquire. The requested operations flow through the same
// addFlush/addInval accumulators as Phases A and B, so buildOps emits and
// accounts them exactly once, deduplicated against the boundary's other ops.
func (t *Table) insert(arg *ArgView, addFlush, addInval func(int, mem.RangeSet)) *entry {
	for len(t.entries) >= t.cfg.MaxEntries {
		var victim *entry
		for _, e := range t.entries {
			if e.lastUse == t.seq {
				continue // row still pending update this launch
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			// Every row belongs to the current launch (only possible with
			// tiny test configurations); tolerate a transient overflow.
			break
		}
		for c, s := range victim.states {
			switch s {
			case Dirty:
				addFlush(c, victim.ranges[c])
				addInval(c, victim.ranges[c])
			case Valid, Stale:
				addInval(c, victim.ranges[c])
			case NotPresent:
				// No copy tracked on this chiplet; nothing to synchronize.
			}
		}
		t.remove(victim)
		t.Evictions++
	}
	n := t.cfg.Chiplets
	e := &entry{
		base:   arg.Base,
		full:   arg.Full,
		mode:   arg.Mode,
		ranges: make([]mem.RangeSet, n),
		states: make([]State, n),
	}
	t.entries = append(t.entries, e)
	return e
}

func (t *Table) remove(victim *entry) {
	for i, e := range t.entries {
		if e == victim {
			t.entries = append(t.entries[:i], t.entries[i+1:]...)
			return
		}
	}
}

func (t *Table) removeEmpty() {
	out := t.entries[:0]
	for _, e := range t.entries {
		if !e.allNotPresent() {
			out = append(out, e)
		}
	}
	t.entries = out
}

// dedupe merges argument views that alias the same structure (same base),
// taking the conservative mode and the union of ranges.
func (t *Table) dedupe(args []ArgView) []ArgView {
	out := args[:0]
	byBase := map[mem.Addr]int{}
	for _, a := range args {
		if i, ok := byBase[a.Base]; ok {
			dst := &out[i]
			if a.Mode == kernels.ReadWrite {
				dst.Mode = kernels.ReadWrite
			}
			dst.Full = dst.Full.Union(a.Full)
			for c := range dst.Ranges {
				// The view's sets are value copies of the launch's long-lived
				// annotation sets; clone before merging in place so the merge
				// never writes through a shared spill slice.
				dst.Ranges[c] = dst.Ranges[c].Clone()
				dst.Ranges[c].AddSet(a.Ranges[c])
				if dst.Cacheable != nil && a.Cacheable != nil {
					dst.Cacheable[c] = dst.Cacheable[c].Clone()
					dst.Cacheable[c].AddSet(a.Cacheable[c])
				} else if dst.Cacheable != nil {
					// Partner assumes everything cacheable; widen.
					dst.Cacheable = nil
				}
			}
			continue
		}
		byBase[a.Base] = len(out)
		out = append(out, a)
	}
	return out
}

// coarsen reduces the argument list to the per-kernel tracking limit by
// repeatedly combining the pair of structures closest to each other in
// memory (contiguous structures are distance zero), exactly as Section
// III-B describes. The combined view covers both structures, every chiplet
// either accessed, and the more conservative mode — which may synchronize
// more than necessary but never less.
func (t *Table) coarsen(args []ArgView) []ArgView {
	t.Coarsenings++
	sort.Slice(args, func(i, j int) bool { return args[i].Full.Lo < args[j].Full.Lo })
	for len(args) > t.cfg.MaxDataStructures {
		// Find the adjacent (in address order) pair with the smallest gap.
		best, bestGap := 0, ^uint64(0)
		for i := 0; i+1 < len(args); i++ {
			gap := uint64(0)
			if args[i+1].Full.Lo > args[i].Full.Hi {
				gap = uint64(args[i+1].Full.Lo - args[i].Full.Hi)
			}
			if gap < bestGap {
				best, bestGap = i, gap
			}
		}
		a, b := &args[best], &args[best+1]
		merged := ArgView{
			Base: a.Base,
			Full: a.Full.Union(b.Full),
			Mode: a.Mode,
		}
		if b.Mode == kernels.ReadWrite {
			merged.Mode = kernels.ReadWrite
		}
		merged.Ranges = make([]mem.RangeSet, len(a.Ranges))
		for c := range merged.Ranges {
			merged.Ranges[c] = a.Ranges[c].Clone()
			merged.Ranges[c].AddSet(b.Ranges[c])
		}
		if a.Cacheable != nil && b.Cacheable != nil {
			merged.Cacheable = make([]mem.RangeSet, len(a.Cacheable))
			for c := range merged.Cacheable {
				merged.Cacheable[c] = a.Cacheable[c].Clone()
				merged.Cacheable[c].AddSet(b.Cacheable[c])
			}
		}
		args[best] = merged
		args = append(args[:best+1], args[best+2:]...)
	}
	return args
}

// FinalizeOps returns the releases needed to push all outstanding dirty
// data to the ordering point at program end, and clears the table.
func (t *Table) FinalizeOps() []Op {
	n := t.cfg.Chiplets
	need := make([]bool, n)
	for _, e := range t.entries {
		for c, s := range e.states {
			if s == Dirty {
				need[c] = true
			}
		}
	}
	var ops []Op
	for c := 0; c < n; c++ {
		if need[c] {
			ops = append(ops, Op{Chiplet: c, Flush: true})
			t.FlushesIssue++
		}
	}
	t.entries = nil
	return ops
}

// DegradeChiplet conservatively abandons the table's belief about chiplet
// c's L2 after the CP watchdog gave up on a targeted synchronization there:
// the reliable fallback (a full flush+invalidate, performed by the caller)
// leaves c's cache empty, but the launching kernel is about to refill it,
// and the table has already recorded those fills. Every tracked row with any
// presence on c is therefore marked Dirty over the structure's full extent —
// the most conservative state: a future consumer forces a release of c, and
// writes elsewhere turn it Stale so c re-acquires before reusing the data.
// Elision quality for c degrades to baseline until the marks wash out;
// correctness only ever gains synchronization.
func (t *Table) DegradeChiplet(c int) {
	if c < 0 || c >= t.cfg.Chiplets {
		return
	}
	for _, e := range t.entries {
		if e.states[c] == NotPresent {
			continue
		}
		e.states[c] = Dirty
		e.ranges[c] = mem.NewRangeSet(e.full)
	}
	t.Degradations++
}

// ConservativeReset abandons the table's beliefs about every chiplet, as
// DegradeChiplet does for one. Used when a run is interrupted mid-plan (a
// context cancel between a kernel's synchronization operations): some ops of
// the boundary may have executed and some not, so no tracked state can be
// trusted to mean "already synchronized".
func (t *Table) ConservativeReset() {
	for c := 0; c < t.cfg.Chiplets; c++ {
		t.DegradeChiplet(c)
	}
}

// ParityReset handles a detected SRAM parity error: no table state can be
// trusted, so it returns exactly the baseline boundary — a full L2 flush and
// invalidate on every chiplet — and empties the table. Call it BEFORE
// OnKernelLaunch for the boundary so the launching kernel's accesses are
// recorded into the fresh table.
func (t *Table) ParityReset() []Op {
	ops := make([]Op, 0, 2*t.cfg.Chiplets)
	for c := 0; c < t.cfg.Chiplets; c++ {
		ops = append(ops, Op{Chiplet: c, Flush: true}, Op{Chiplet: c})
		t.FlushesIssue++
		t.InvalsIssue++
	}
	t.entries = nil
	t.ParityResets++
	return ops
}

// String renders the table for diagnostics.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ChipletCoherenceTable(%d/%d entries)\n", len(t.entries), t.cfg.MaxEntries)
	for _, e := range t.entries {
		fmt.Fprintf(&b, "  %#x %s mode=%s", e.base, e.full, e.mode)
		for c, s := range e.states {
			fmt.Fprintf(&b, " c%d=%s", c, s)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
