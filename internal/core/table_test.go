package core

import (
	"math/rand"
	"testing"

	"repro/internal/kernels"
	"repro/internal/mem"
)

const nChiplets = 4

func newTestTable() *Table {
	return mustTable(Config{Chiplets: nChiplets})
}

// mustTable builds a table for cfg, panicking on a config error (test
// configurations are static and known-good).
func mustTable(cfg Config) *Table {
	tb, err := NewTable(cfg)
	if err != nil {
		panic(err)
	}
	return tb
}

// view builds an ArgView for a structure of size bytes at base, accessed by
// the given chiplets over the given ranges (cacheable = declared).
func view(base mem.Addr, size uint64, mode kernels.AccessMode, ranges map[int]mem.Range) ArgView {
	v := ArgView{
		Base:   base,
		Full:   mem.Range{Lo: base, Hi: base + mem.Addr(size)},
		Mode:   mode,
		Ranges: make([]mem.RangeSet, nChiplets),
	}
	for c, r := range ranges {
		v.Ranges[c] = mem.NewRangeSet(r)
	}
	return v
}

// slices partitions [base, base+size) across all chiplets.
func slices(base mem.Addr, size uint64) map[int]mem.Range {
	m := map[int]mem.Range{}
	per := size / nChiplets
	for c := 0; c < nChiplets; c++ {
		lo := base + mem.Addr(uint64(c)*per)
		m[c] = mem.Range{Lo: lo, Hi: lo + mem.Addr(per)}
	}
	return m
}

func countOps(ops []Op) (flushes, invals int) {
	for _, op := range ops {
		if op.Flush {
			flushes++
		} else {
			invals++
		}
	}
	return
}

const base0 mem.Addr = 0x1000_0000

func TestFirstAccessGeneratesNoOps(t *testing.T) {
	tb := newTestTable()
	ops := tb.OnKernelLaunch([]ArgView{view(base0, 4096*4, kernels.Read, slices(base0, 4096*4))})
	if len(ops) != 0 {
		t.Fatalf("first access produced %d ops", len(ops))
	}
	for c := 0; c < nChiplets; c++ {
		if tb.StateOf(base0, c) != Valid {
			t.Errorf("chiplet %d state = %v, want Valid", c, tb.StateOf(base0, c))
		}
	}
}

// TestStayInDirtyElision: a chiplet re-accessing its own dirty partition
// must trigger no synchronization (the paper's "stay in Dirty" rule).
func TestStayInDirtyElision(t *testing.T) {
	tb := newTestTable()
	w := view(base0, 1<<20, kernels.ReadWrite, slices(base0, 1<<20))
	for i := 0; i < 5; i++ {
		if ops := tb.OnKernelLaunch([]ArgView{w}); len(ops) != 0 {
			t.Fatalf("iteration %d produced %d ops", i, len(ops))
		}
	}
	if tb.StateOf(base0, 2) != Dirty {
		t.Errorf("state = %v, want Dirty", tb.StateOf(base0, 2))
	}
	if tb.FlushesIssue != 0 || tb.InvalsIssue != 0 {
		t.Error("elision counters nonzero")
	}
}

// TestLazyReleaseOnConsumer: data dirty on chiplet 0 read by chiplet 1
// triggers a release (flush) of chiplet 0 at the consumer's launch.
func TestLazyReleaseOnConsumer(t *testing.T) {
	tb := newTestTable()
	whole := mem.Range{Lo: base0, Hi: base0 + 1<<20}
	tb.OnKernelLaunch([]ArgView{view(base0, 1<<20, kernels.ReadWrite, map[int]mem.Range{0: whole})})
	if tb.StateOf(base0, 0) != Dirty {
		t.Fatal("producer not Dirty")
	}
	ops := tb.OnKernelLaunch([]ArgView{view(base0, 1<<20, kernels.Read, map[int]mem.Range{1: whole})})
	fl, inv := countOps(ops)
	if fl != 1 || inv != 0 {
		t.Fatalf("ops = %d flushes, %d invals; want 1, 0", fl, inv)
	}
	if ops[0].Chiplet != 0 {
		t.Errorf("flush targeted chiplet %d", ops[0].Chiplet)
	}
	// After the flush the producer retains clean (Valid) copies; the
	// reader becomes Valid too.
	if tb.StateOf(base0, 0) != Valid || tb.StateOf(base0, 1) != Valid {
		t.Errorf("states after release: c0=%v c1=%v",
			tb.StateOf(base0, 0), tb.StateOf(base0, 1))
	}
}

// TestValidToStaleToAcquire: a remote write marks a valid chiplet Stale
// without an immediate operation; the acquire is deferred until that
// chiplet accesses the structure again.
func TestValidToStaleToAcquire(t *testing.T) {
	tb := newTestTable()
	whole := mem.Range{Lo: base0, Hi: base0 + 1<<20}
	// Chiplet 0 reads: Valid.
	tb.OnKernelLaunch([]ArgView{view(base0, 1<<20, kernels.Read, map[int]mem.Range{0: whole})})
	// Chiplet 1 writes the same range: no op for chiplet 0 yet (lazy).
	ops := tb.OnKernelLaunch([]ArgView{view(base0, 1<<20, kernels.ReadWrite, map[int]mem.Range{1: whole})})
	if len(ops) != 0 {
		t.Fatalf("remote write produced %d immediate ops", len(ops))
	}
	if tb.StateOf(base0, 0) != Stale {
		t.Fatalf("chiplet 0 state = %v, want Stale", tb.StateOf(base0, 0))
	}
	// Chiplet 0 reads again: acquire for chiplet 0, plus release of the
	// writer chiplet 1 (its data is dirty and about to be consumed).
	ops = tb.OnKernelLaunch([]ArgView{view(base0, 1<<20, kernels.Read, map[int]mem.Range{0: whole})})
	var sawInval0, sawFlush1 bool
	for _, op := range ops {
		if !op.Flush && op.Chiplet == 0 {
			sawInval0 = true
		}
		if op.Flush && op.Chiplet == 1 {
			sawFlush1 = true
		}
	}
	if !sawInval0 || !sawFlush1 {
		t.Fatalf("ops = %+v; want acquire(0) and release(1)", ops)
	}
}

// TestDisjointPartitionsNeverConflict: per-chiplet partitioned writes with
// disjoint ranges run the whole schedule without synchronization.
func TestDisjointPartitionsNeverConflict(t *testing.T) {
	tb := newTestTable()
	in := view(base0, 1<<20, kernels.Read, slices(base0, 1<<20))
	out := view(base0+1<<20, 1<<20, kernels.ReadWrite, slices(base0+1<<20, 1<<20))
	for i := 0; i < 6; i++ {
		if ops := tb.OnKernelLaunch([]ArgView{in, out}); len(ops) != 0 {
			t.Fatalf("iteration %d produced ops: %+v", i, ops)
		}
	}
}

// TestSameLaunchConflictAcquires: when every chiplet both caches and writes
// overlapping ranges in the same kernel (mode-only annotations), the
// acquire cannot be deferred.
func TestSameLaunchConflictAcquires(t *testing.T) {
	tb := newTestTable()
	whole := mem.Range{Lo: base0, Hi: base0 + 1<<20}
	all := map[int]mem.Range{0: whole, 1: whole, 2: whole, 3: whole}
	// First launch: nothing tracked yet, no ops.
	if ops := tb.OnKernelLaunch([]ArgView{view(base0, 1<<20, kernels.ReadWrite, all)}); len(ops) != 0 {
		t.Fatalf("first launch ops: %+v", ops)
	}
	// Second launch: everyone's tracked copies conflict with everyone's
	// writes; all four chiplets must be invalidated now.
	ops := tb.OnKernelLaunch([]ArgView{view(base0, 1<<20, kernels.ReadWrite, all)})
	_, inv := countOps(ops)
	if inv != nChiplets {
		t.Fatalf("invals = %d, want %d (ops %+v)", inv, nChiplets, ops)
	}
}

// TestAtomicScatterDefersAcquire: atomic scatter args (empty cacheable set)
// never trigger same-launch acquires; the staleness is recorded and the
// acquire waits for the next caching access.
func TestAtomicScatterDefersAcquire(t *testing.T) {
	tb := newTestTable()
	whole := mem.Range{Lo: base0, Hi: base0 + 1<<20}
	all := map[int]mem.Range{0: whole, 1: whole, 2: whole, 3: whole}

	// Kernel A reads the structure linearly (fills caches): Valid.
	tb.OnKernelLaunch([]ArgView{view(base0, 1<<20, kernels.Read, slices(base0, 1<<20))})

	// Kernel B scatters atomically: declared R/W everywhere, cacheable
	// empty. No immediate ops; previously-Valid chiplets degrade to Stale.
	scatter := view(base0, 1<<20, kernels.ReadWrite, all)
	scatter.Cacheable = make([]mem.RangeSet, nChiplets)
	if ops := tb.OnKernelLaunch([]ArgView{scatter}); len(ops) != 0 {
		t.Fatalf("atomic scatter produced immediate ops: %+v", ops)
	}
	for c := 0; c < nChiplets; c++ {
		if tb.StateOf(base0, c) != Stale {
			t.Fatalf("chiplet %d = %v, want Stale", c, tb.StateOf(base0, c))
		}
	}

	// Kernel C reads linearly again: every reader must acquire first.
	ops := tb.OnKernelLaunch([]ArgView{view(base0, 1<<20, kernels.Read, slices(base0, 1<<20))})
	_, inv := countOps(ops)
	if inv != nChiplets {
		t.Fatalf("deferred acquires = %d, want %d", inv, nChiplets)
	}
}

// TestReadSharingStaysValid: concurrent readers on all chiplets never
// synchronize ("stay in Valid on remote accesses").
func TestReadSharingStaysValid(t *testing.T) {
	tb := newTestTable()
	whole := mem.Range{Lo: base0, Hi: base0 + 1<<20}
	all := map[int]mem.Range{0: whole, 1: whole, 2: whole, 3: whole}
	for i := 0; i < 4; i++ {
		if ops := tb.OnKernelLaunch([]ArgView{view(base0, 1<<20, kernels.Read, all)}); len(ops) != 0 {
			t.Fatalf("read sharing produced ops: %+v", ops)
		}
	}
	if tb.StateOf(base0, 3) != Valid {
		t.Error("reader not Valid")
	}
}

func TestDedupeMergesAliasedArgs(t *testing.T) {
	tb := newTestTable()
	whole := mem.Range{Lo: base0, Hi: base0 + 1<<20}
	r := view(base0, 1<<20, kernels.Read, map[int]mem.Range{0: whole})
	w := view(base0, 1<<20, kernels.ReadWrite, map[int]mem.Range{0: whole})
	tb.OnKernelLaunch([]ArgView{r, w})
	if tb.Len() != 1 {
		t.Fatalf("aliased args created %d entries", tb.Len())
	}
	if tb.StateOf(base0, 0) != Dirty {
		t.Errorf("merged mode not conservative: %v", tb.StateOf(base0, 0))
	}
}

func TestCoarseningMergesNearestStructures(t *testing.T) {
	tb := newTestTable()
	var args []ArgView
	for i := 0; i < 12; i++ {
		b := base0 + mem.Addr(i)*0x10000
		args = append(args, view(b, 0x8000, kernels.Read, slices(b, 0x8000)))
	}
	tb.OnKernelLaunch(args)
	if tb.Coarsenings != 1 {
		t.Errorf("coarsenings = %d", tb.Coarsenings)
	}
	if tb.Len() > 8 {
		t.Errorf("post-coarsening entries = %d, want <= 8", tb.Len())
	}
}

// TestCoarsenedConservativeMode: coarsening a read-only and a written
// structure must track the combination as written.
func TestCoarsenedConservativeMode(t *testing.T) {
	tb := mustTable(Config{Chiplets: nChiplets, MaxDataStructures: 2})
	whole := func(b mem.Addr) map[int]mem.Range {
		return map[int]mem.Range{0: {Lo: b, Hi: b + 0x1000}}
	}
	args := []ArgView{
		view(base0, 0x1000, kernels.Read, whole(base0)),
		view(base0+0x1000, 0x1000, kernels.ReadWrite, whole(base0+0x1000)),
		view(base0+0x2000, 0x1000, kernels.Read, whole(base0+0x2000)),
	}
	tb.OnKernelLaunch(args)
	// A later consumer on another chiplet overlapping the read-only part
	// must still see a flush: the merged row is conservatively R/W.
	ops := tb.OnKernelLaunch([]ArgView{view(base0, 0x3000, kernels.Read,
		map[int]mem.Range{1: {Lo: base0, Hi: base0 + 0x3000}})})
	if fl, _ := countOps(ops); fl != 1 {
		t.Fatalf("coarsened dirty row not flushed: %+v", ops)
	}
}

// TestCapacityEvictionSynchronizesVictim: evicting a Dirty row must write
// its data back AND drop the chiplet's copies — a flush alone would leave
// clean untracked lines in that L2, which a later remote write could stale
// with no table row left to trigger the deferred acquire. The machine's
// invalidation writes dirty lines back before dropping them, so a single
// invalidate op (counted as both a flush and an inval) does the job.
func TestCapacityEvictionSynchronizesVictim(t *testing.T) {
	tb := mustTable(Config{Chiplets: nChiplets, MaxDataStructures: 8, MaxEntries: 2})
	r0 := mem.Range{Lo: base0, Hi: base0 + 0x1000}
	tb.OnKernelLaunch([]ArgView{view(base0, 0x1000, kernels.ReadWrite, map[int]mem.Range{0: r0})})
	b1 := base0 + 0x100000
	tb.OnKernelLaunch([]ArgView{view(b1, 0x1000, kernels.Read,
		map[int]mem.Range{1: {Lo: b1, Hi: b1 + 0x1000}})})
	preFlush, preInval := tb.FlushesIssue, tb.InvalsIssue
	// Third structure forces eviction of the LRU row (the dirty one).
	b2 := base0 + 0x200000
	ops := tb.OnKernelLaunch([]ArgView{view(b2, 0x1000, kernels.Read,
		map[int]mem.Range{2: {Lo: b2, Hi: b2 + 0x1000}})})
	var synced0 bool
	for _, op := range ops {
		if op.Chiplet == 0 && !op.Flush {
			synced0 = true // invalidate subsumes the flush
		}
	}
	if !synced0 {
		t.Fatalf("evicted dirty row not invalidated: %+v", ops)
	}
	if tb.FlushesIssue != preFlush+1 || tb.InvalsIssue != preInval+1 {
		t.Errorf("eviction accounting: flushes %d->%d invals %d->%d, want one each",
			preFlush, tb.FlushesIssue, preInval, tb.InvalsIssue)
	}
	if tb.Evictions != 1 {
		t.Errorf("evictions = %d", tb.Evictions)
	}
	if tb.Len() > 2 {
		t.Errorf("capacity exceeded: %d", tb.Len())
	}
}

// TestCapacityEvictionDropsValidCopies is the regression test for the
// retained-copy hazard: evicting a Valid row must produce exactly one
// invalidate op for the holder (not two, and not a bare flush), so no
// chiplet retains copies the table no longer tracks.
func TestCapacityEvictionDropsValidCopies(t *testing.T) {
	tb := mustTable(Config{Chiplets: nChiplets, MaxDataStructures: 8, MaxEntries: 2})
	r0 := mem.Range{Lo: base0, Hi: base0 + 0x1000}
	tb.OnKernelLaunch([]ArgView{view(base0, 0x1000, kernels.Read, map[int]mem.Range{0: r0})})
	b1 := base0 + 0x100000
	tb.OnKernelLaunch([]ArgView{view(b1, 0x1000, kernels.Read,
		map[int]mem.Range{1: {Lo: b1, Hi: b1 + 0x1000}})})
	preInval := tb.InvalsIssue
	b2 := base0 + 0x200000
	ops := tb.OnKernelLaunch([]ArgView{view(b2, 0x1000, kernels.Read,
		map[int]mem.Range{2: {Lo: b2, Hi: b2 + 0x1000}})})
	var invals0 int
	for _, op := range ops {
		if op.Chiplet == 0 {
			if op.Flush {
				t.Fatalf("clean victim flushed: %+v", op)
			}
			invals0++
		}
	}
	if invals0 != 1 {
		t.Fatalf("victim invalidate ops = %d, want exactly 1 (ops %+v)", invals0, ops)
	}
	if tb.InvalsIssue != preInval+1 {
		t.Errorf("invals counted %d times, want once", tb.InvalsIssue-preInval)
	}
}

func TestRangeOpsCarryRanges(t *testing.T) {
	tb := mustTable(Config{Chiplets: nChiplets, RangeOps: true})
	whole := mem.Range{Lo: base0, Hi: base0 + 1<<20}
	tb.OnKernelLaunch([]ArgView{view(base0, 1<<20, kernels.ReadWrite, map[int]mem.Range{0: whole})})
	ops := tb.OnKernelLaunch([]ArgView{view(base0, 1<<20, kernels.Read, map[int]mem.Range{1: whole})})
	if len(ops) != 1 || ops[0].Ranges.Empty() {
		t.Fatalf("range ops missing ranges: %+v", ops)
	}
	if !ops[0].Ranges.Overlaps(whole) {
		t.Error("op ranges do not cover the structure")
	}
}

func TestFinalizeFlushesDirtyAndClears(t *testing.T) {
	tb := newTestTable()
	tb.OnKernelLaunch([]ArgView{view(base0, 1<<20, kernels.ReadWrite, slices(base0, 1<<20))})
	ops := tb.FinalizeOps()
	fl, inv := countOps(ops)
	if fl != nChiplets || inv != 0 {
		t.Fatalf("finalize ops = %d flushes %d invals", fl, inv)
	}
	if tb.Len() != 0 {
		t.Error("finalize did not clear the table")
	}
}

func TestEntryRemovedWhenAllNotPresent(t *testing.T) {
	tb := newTestTable()
	whole := mem.Range{Lo: base0, Hi: base0 + 1<<20}
	// Chiplet 0 writes S; chiplet 1 writes S (same-launch pattern over two
	// launches): the second launch invalidates chiplet 0 lazily.
	tb.OnKernelLaunch([]ArgView{view(base0, 1<<20, kernels.ReadWrite, map[int]mem.Range{0: whole})})
	// Another structure's kernel whose whole-cache ops wipe chiplet 0.
	b1 := base0 + 0x200000
	tb.OnKernelLaunch([]ArgView{view(b1, 0x1000, kernels.ReadWrite,
		map[int]mem.Range{0: {Lo: b1, Hi: b1 + 0x1000}})})
	tb.OnKernelLaunch([]ArgView{view(b1, 0x1000, kernels.Read,
		map[int]mem.Range{1: {Lo: b1, Hi: b1 + 0x1000}})})
	// The flush of chiplet 0 (for b1) cleaned structure base0 too:
	// Dirty -> Valid, entry retained.
	if tb.StateOf(base0, 0) != Valid {
		t.Fatalf("whole-cache flush side effect missing: %v", tb.StateOf(base0, 0))
	}
}

// TestRandomScheduleInvariants drives the table with random launches and
// checks structural invariants. Functional coherence is covered end to end
// by the simulator's version checker; here we pin table-local properties.
func TestRandomScheduleInvariants(t *testing.T) {
	rnd := rand.New(rand.NewSource(12345))
	tb := mustTable(Config{Chiplets: nChiplets, MaxDataStructures: 4, MaxEntries: 8})
	bases := []mem.Addr{0x1000_0000, 0x1100_0000, 0x1200_0000, 0x1300_0000,
		0x1400_0000, 0x1500_0000, 0x1600_0000, 0x1700_0000, 0x1800_0000, 0x1900_0000}
	for i := 0; i < 2000; i++ {
		var args []ArgView
		for a := 0; a < 1+rnd.Intn(4); a++ {
			b := bases[rnd.Intn(len(bases))]
			mode := kernels.Read
			if rnd.Intn(2) == 0 {
				mode = kernels.ReadWrite
			}
			ranges := map[int]mem.Range{}
			for c := 0; c < nChiplets; c++ {
				if rnd.Intn(2) == 0 {
					lo := b + mem.Addr(rnd.Intn(8))*0x1000
					ranges[c] = mem.Range{Lo: lo, Hi: lo + mem.Addr(1+rnd.Intn(8))*0x1000}
				}
			}
			if len(ranges) == 0 {
				ranges[rnd.Intn(nChiplets)] = mem.Range{Lo: b, Hi: b + 0x1000}
			}
			args = append(args, view(b, 0x10000, mode, ranges))
		}
		ops := tb.OnKernelLaunch(args)
		for _, op := range ops {
			if op.Chiplet < 0 || op.Chiplet >= nChiplets {
				t.Fatalf("op targets invalid chiplet %d", op.Chiplet)
			}
		}
		if tb.Len() > 8+4 {
			t.Fatalf("table grew past capacity slack: %d", tb.Len())
		}
	}
	if tb.PeakEntries == 0 {
		t.Error("peak never recorded")
	}
	tb.FinalizeOps()
	if tb.Len() != 0 {
		t.Error("finalize left entries")
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		NotPresent: "NotPresent", Valid: "Valid", Dirty: "Dirty", Stale: "Stale",
	} {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q", s, s.String())
		}
	}
	tb := newTestTable()
	tb.OnKernelLaunch([]ArgView{view(base0, 0x1000, kernels.Read,
		map[int]mem.Range{0: {Lo: base0, Hi: base0 + 0x1000}})})
	if tb.String() == "" {
		t.Error("table String empty")
	}
}
