package oracle

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/kernels"
	"repro/internal/mem"
)

const (
	lineSize = 64
	pageSize = 4096
	nChip    = 4
	base     = mem.Addr(0x1000_0000)
)

// homeByPage homes each 4 KiB page round-robin across the chiplets,
// mirroring interleaved placement.
func homeByPage(a mem.Addr) int {
	return int((a - base) / pageSize % nChip)
}

// bound returns a BoundarySync oracle bound to the test machine shape.
func bound(t *testing.T) *Oracle {
	t.Helper()
	o := New(BoundarySync)
	if err := o.Bind(nChip, lineSize, homeByPage, nil); err != nil {
		t.Fatal(err)
	}
	return o
}

// page returns the byte range of the i-th page (homed on chiplet i%4).
func page(i int) mem.Range {
	lo := base + mem.Addr(i)*pageSize
	return mem.Range{Lo: lo, Hi: lo + pageSize}
}

// launch builds a single-arg launch: the kernel accesses r with the given
// mode/pattern/rmw from each chiplet in chs (all declaring the same range,
// like a whole-structure declaration scoped to one page).
func launch(inst int, chs []int, mode kernels.AccessMode, pat kernels.Pattern, rmw bool, r mem.Range) *coherence.Launch {
	k := &kernels.Kernel{
		Name: "k",
		Args: []kernels.Arg{{Mode: mode, Pattern: pat, ReadModifyWrite: rmw}},
		WGs:  nChip,
	}
	l := &coherence.Launch{Kernel: k, Inst: inst, Chiplets: chs}
	l.ArgRanges = make([][]mem.RangeSet, 1)
	l.ArgRanges[0] = make([]mem.RangeSet, len(chs))
	for slot := range chs {
		l.ArgRanges[0][slot] = mem.NewRangeSet(r)
	}
	return l
}

func plan(ops ...coherence.SyncOp) coherence.SyncPlan {
	return coherence.SyncPlan{Ops: ops}
}

func rel(c int) coherence.SyncOp { return coherence.SyncOp{Chiplet: c, Kind: coherence.Release} }
func acq(c int) coherence.SyncOp { return coherence.SyncOp{Chiplet: c, Kind: coherence.Acquire} }

func TestProducerConsumerWithReleaseIsClean(t *testing.T) {
	o := bound(t)
	// Chiplet 0 writes page 0 (homed on 0): dirty in its L2.
	o.OnLaunch(launch(0, []int{0}, kernels.ReadWrite, kernels.Linear, false, page(0)), plan())
	// Consumer on chiplet 1 after a release of chiplet 0: clean.
	o.OnLaunch(launch(1, []int{1}, kernels.Read, kernels.Linear, false, page(0)), plan(rel(0)))
	o.OnFinalize(plan())
	if err := o.Err(); err != nil {
		t.Fatalf("correct sequence flagged: %v", err)
	}
}

func TestMissingReleaseDetected(t *testing.T) {
	o := bound(t)
	o.OnLaunch(launch(0, []int{0}, kernels.ReadWrite, kernels.Linear, false, page(0)), plan())
	// Consumer with no release: every line read is an unreleased-dirty read.
	o.OnLaunch(launch(1, []int{1}, kernels.Read, kernels.Linear, false, page(0)), plan())
	if o.Violations() == 0 {
		t.Fatal("missing release not detected")
	}
	if o.ByRule()[RuleUnreleasedDirty] != pageSize/lineSize {
		t.Errorf("unreleased-dirty = %d, want %d", o.ByRule()[RuleUnreleasedDirty], pageSize/lineSize)
	}
	if len(o.Details()) == 0 || o.Details()[0].Rule != RuleUnreleasedDirty {
		t.Errorf("details = %+v", o.Details())
	}
}

func TestMissingAcquireDetected(t *testing.T) {
	o := bound(t)
	// Chiplet 0 reads page 0 (its home): retains L2 copies.
	o.OnLaunch(launch(0, []int{0}, kernels.Read, kernels.Linear, false, page(0)), plan())
	// Chiplet 1 writes page 0 remotely: write-through stales chiplet 0's
	// copies. No sync needed yet.
	o.OnLaunch(launch(1, []int{1}, kernels.ReadWrite, kernels.Linear, false, page(0)), plan())
	if o.Violations() != 0 {
		t.Fatalf("premature violation: %v", o.Err())
	}
	// Chiplet 0 reads again. Correct CP: acquire(0). Mutated: nothing.
	o.OnLaunch(launch(2, []int{0}, kernels.Read, kernels.Linear, false, page(0)), plan())
	if o.ByRule()[RuleStaleLocalCopy] == 0 {
		t.Fatal("missing acquire not detected")
	}

	// Same sequence with the acquire: clean.
	o2 := bound(t)
	o2.OnLaunch(launch(0, []int{0}, kernels.Read, kernels.Linear, false, page(0)), plan())
	o2.OnLaunch(launch(1, []int{1}, kernels.ReadWrite, kernels.Linear, false, page(0)), plan())
	o2.OnLaunch(launch(2, []int{0}, kernels.Read, kernels.Linear, false, page(0)), plan(acq(0)))
	o2.OnFinalize(plan())
	if err := o2.Err(); err != nil {
		t.Fatalf("acquired sequence flagged: %v", err)
	}
}

func TestWAWLostUpdateDetected(t *testing.T) {
	o := bound(t)
	o.OnLaunch(launch(0, []int{0}, kernels.ReadWrite, kernels.Linear, false, page(0)), plan())
	// Chiplet 1 overwrites page 0 remotely while chiplet 0's version is
	// still dirty: the home's eventual writeback could resurrect old data.
	o.OnLaunch(launch(1, []int{1}, kernels.ReadWrite, kernels.Linear, false, page(0)), plan())
	if o.ByRule()[RuleWAWLostUpdate] == 0 {
		t.Fatal("WAW lost update not detected")
	}
}

func TestAtomicPastDirtyDetected(t *testing.T) {
	o := bound(t)
	o.OnLaunch(launch(0, []int{0}, kernels.ReadWrite, kernels.Linear, false, page(0)), plan())
	// Atomics execute at the home L3 bank; the RMW read sees the committed
	// value, which is behind chiplet 0's dirty copy.
	o.OnLaunch(launch(1, []int{1}, kernels.ReadWrite, kernels.Indirect, true, page(0)), plan())
	if o.ByRule()[RuleAtomicPastDirty] == 0 {
		t.Fatal("atomic past dirty not detected")
	}

	// With the release first, the same atomic is clean, and a home read
	// after it must see the staled copy hazard only without an acquire.
	o2 := bound(t)
	o2.OnLaunch(launch(0, []int{0}, kernels.ReadWrite, kernels.Linear, false, page(0)), plan())
	o2.OnLaunch(launch(1, []int{1}, kernels.ReadWrite, kernels.Indirect, true, page(0)), plan(rel(0)))
	if o2.Violations() != 0 {
		t.Fatalf("released atomic flagged: %v", o2.Err())
	}
	o2.OnLaunch(launch(2, []int{0}, kernels.Read, kernels.Linear, false, page(0)), plan())
	if o2.ByRule()[RuleStaleLocalCopy] == 0 {
		t.Fatal("stale copy after atomic not detected")
	}
}

func TestUnreleasedAtExitDetected(t *testing.T) {
	o := bound(t)
	o.OnLaunch(launch(0, []int{0}, kernels.ReadWrite, kernels.Linear, false, page(0)), plan())
	o.OnFinalize(plan())
	if o.ByRule()[RuleUnreleasedAtExit] != pageSize/lineSize {
		t.Fatalf("unreleased-at-exit = %d, want %d", o.ByRule()[RuleUnreleasedAtExit], pageSize/lineSize)
	}

	o2 := bound(t)
	o2.OnLaunch(launch(0, []int{0}, kernels.ReadWrite, kernels.Linear, false, page(0)), plan())
	o2.OnFinalize(plan(rel(0)))
	if err := o2.Err(); err != nil {
		t.Fatalf("released exit flagged: %v", err)
	}
}

func TestRangedReleaseCoversOnlyItsRanges(t *testing.T) {
	o := bound(t)
	full := page(0)
	half := mem.Range{Lo: full.Lo, Hi: full.Lo + pageSize/2}
	o.OnLaunch(launch(0, []int{0}, kernels.ReadWrite, kernels.Linear, false, full), plan())
	// Ranged release covering only the first half: reads of the second half
	// are still unreleased-dirty.
	rangedRel := coherence.SyncOp{Chiplet: 0, Kind: coherence.Release, Ranges: mem.NewRangeSet(half)}
	o.OnLaunch(launch(1, []int{1}, kernels.Read, kernels.Linear, false, full), plan(rangedRel))
	want := uint64(pageSize / 2 / lineSize)
	if got := o.ByRule()[RuleUnreleasedDirty]; got != want {
		t.Fatalf("unreleased-dirty = %d, want %d (uncovered half only)", got, want)
	}
}

func TestHardwareCoherentModelIsVacuous(t *testing.T) {
	o := New(HardwareCoherent)
	if err := o.Bind(nChip, lineSize, homeByPage, nil); err != nil {
		t.Fatal(err)
	}
	// The boundary-sync poison sequence: write without release, read.
	o.OnLaunch(launch(0, []int{0}, kernels.ReadWrite, kernels.Linear, false, page(0)), plan())
	o.OnLaunch(launch(1, []int{1}, kernels.Read, kernels.Linear, false, page(0)), plan())
	o.OnFinalize(plan())
	if err := o.Err(); err != nil {
		t.Fatalf("hardware-coherent model flagged boundary hazard: %v", err)
	}
	if len(o.Boundaries()) != 3 {
		t.Errorf("boundaries journaled = %d, want 3 (2 launches + finalize)", len(o.Boundaries()))
	}
}

func TestOracleIsSingleUse(t *testing.T) {
	o := bound(t)
	if err := o.Bind(nChip, lineSize, homeByPage, nil); err == nil {
		t.Fatal("rebinding a bound oracle succeeded")
	}
}

func TestSubsetOf(t *testing.T) {
	baseline := bound(t)
	elided := bound(t)
	l := launch(0, []int{0, 1}, kernels.Read, kernels.Linear, false, page(0))
	baseline.OnLaunch(l, plan(rel(0), acq(0), rel(1), acq(1)))
	elided.OnLaunch(l, plan(rel(0)))
	if broken := elided.SubsetOf(baseline); len(broken) != 0 {
		t.Fatalf("subset violated: %+v", broken)
	}
	if broken := baseline.SubsetOf(elided); len(broken) == 0 {
		t.Fatal("superset accepted as subset")
	}

	// An op the reference never issued at that boundary breaks the subset.
	extra := bound(t)
	extra.OnLaunch(launch(1, []int{0}, kernels.Read, kernels.Linear, false, page(0)), plan(acq(2)))
	ref := bound(t)
	ref.OnLaunch(launch(1, []int{0}, kernels.Read, kernels.Linear, false, page(0)), plan(rel(0)))
	if broken := extra.SubsetOf(ref); len(broken) != 1 {
		t.Fatalf("foreign op not flagged: %+v", broken)
	}
}

func TestSummaryAndErr(t *testing.T) {
	o := bound(t)
	o.OnLaunch(launch(0, []int{0}, kernels.ReadWrite, kernels.Linear, false, page(0)), plan())
	o.OnLaunch(launch(1, []int{1}, kernels.Read, kernels.Linear, false, page(0)), plan())
	s := o.Summary()
	if s.Violations == 0 || s.Kernels != 2 || s.Model != "boundary-sync" {
		t.Fatalf("summary: %+v", s)
	}
	if o.Err() == nil {
		t.Fatal("Err nil despite violations")
	}
	clean := bound(t)
	clean.OnFinalize(plan())
	if clean.Err() != nil || clean.Summary().Violations != 0 {
		t.Fatal("clean run reported dirty")
	}
}
