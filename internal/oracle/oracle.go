// Package oracle is a protocol-independent golden model of the scoped GPU
// memory model the simulator implements. It consumes the launch/sync stream
// the command processor actually produced — kernel launches with their
// declared per-chiplet access ranges, plus the acquire/release operations the
// CP chose to issue — and decides, from the memory-model rules alone, whether
// any load could legally observe a stale value. It never looks at the cache
// simulation, so it is an independent check on the protocols rather than a
// restatement of them: if the CP elides an operation the happens-before order
// required, the oracle flags it even when cache capacity or eviction luck
// hides the staleness from the runtime version checker.
//
// The model follows the VIPER-chiplet invariants (DESIGN.md §3): only a
// line's home chiplet ever caches it in L2 (remote reads are served by the
// home L3 bank without local allocation; remote stores write through to the
// home, committing at the ordering point without updating the home's L2
// copy; atomics execute at the home L3 bank and bypass the L2s), and L1s are
// invalidated at every kernel boundary while data-race freedom excludes
// intra-kernel conflicts. Per tracked line that leaves exactly four facts:
// who wrote it last, whether that write is still dirty in the home's L2,
// whether the home may hold an L2 copy, and whether that copy is behind the
// newest committed value. An epoch is the interval between two CP sync
// decisions on a chiplet; the happens-before edges the oracle enforces are
// exactly release(writer's chiplet) followed by acquire(reader's chiplet)
// ordered through the L3.
//
// The oracle is deliberately stricter than the runtime checker in one way:
// a dirty line stays dirty until an explicit release or acquire covers it.
// The cache simulation may commit a dirty line early when capacity evicts it
// (mem.CommitWriteback), which can mask an elided release at runtime; the CP
// cannot rely on eviction luck, so the oracle does not either.
//
// Soundness of the declared-range granularity: the oracle reads the same
// per-chiplet declared ranges the Chiplet Coherence Table does, and both
// over-approximate actual caching the same way (a chiplet may cache any
// locally homed line of its declared range). The CCT's elision decisions are
// therefore checkable without false positives as long as the declarations
// partition non-atomic writes between chiplets — true for exact annotations
// (hipSetAccessModeRange and inferred annotations); the hipSetAccessMode
// ablation (NoRangeInfo) declares whole-structure writes on every chiplet
// and is rejected at Run time when an oracle is attached.
package oracle

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/coherence"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Model selects which memory-model rules apply to the protocol under check.
type Model uint8

const (
	// BoundarySync models Baseline and CPElide: L2 visibility between
	// chiplets exists only through explicit release/acquire pairs at kernel
	// boundaries, so every cross-chiplet dependence must be covered by the
	// CP's issued operations.
	BoundarySync Model = iota
	// HardwareCoherent models HMG, HMG-WB and RemoteBank: hardware keeps the
	// L2s coherent at access granularity (sharer directories or remote-bank
	// serving), so no boundary operation is ever required and the per-read
	// checks are vacuous. The oracle still journals every boundary's plan so
	// campaigns can compare sync footprints across protocols.
	HardwareCoherent
)

func (m Model) String() string {
	if m == HardwareCoherent {
		return "hardware-coherent"
	}
	return "boundary-sync"
}

// Violation rules the oracle can report.
const (
	// RuleStaleLocalCopy: a chiplet read a line it may still cache while a
	// newer committed write exists, and no acquire invalidated the copy — the
	// missing-acquire violation.
	RuleStaleLocalCopy = "stale-local-copy"
	// RuleUnreleasedDirty: a chiplet read a remotely homed line from the
	// ordering point while the home chiplet still holds a newer dirty
	// version — the missing-release violation.
	RuleUnreleasedDirty = "unreleased-dirty"
	// RuleWAWLostUpdate: a remote write-through committed while the home
	// still holds an older version dirty; the home's eventual writeback can
	// resurrect the old data. The version checker's monotonic commit hides
	// this at runtime, so only the oracle sees it.
	RuleWAWLostUpdate = "waw-lost-update"
	// RuleAtomicPastDirty: an atomic executed at the ordering point while
	// the home held a newer version dirty in its L2, so the RMW read part
	// observed a stale committed value.
	RuleAtomicPastDirty = "atomic-past-dirty"
	// RuleUnreleasedAtExit: dirty data survived the end-of-program release,
	// so the host would read stale memory.
	RuleUnreleasedAtExit = "unreleased-at-exit"
)

// Violation is one detected memory-model violation.
type Violation struct {
	Rule    string   `json:"rule"`
	Line    mem.Addr `json:"line"`
	Chiplet int      `json:"chiplet"` // the accessor that could see stale data
	Home    int      `json:"home"`
	Writer  int      `json:"writer"` // last writer of the line
	Kernel  string   `json:"kernel"`
	Stream  int      `json:"stream"`
	Inst    int      `json:"inst"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: line %#x (home c%d, last writer c%d) accessed by c%d in %s (stream %d inst %d)",
		v.Rule, v.Line, v.Home, v.Writer, v.Chiplet, v.Kernel, v.Stream, v.Inst)
}

// PlanOp is one executed synchronization operation, journaled per boundary.
type PlanOp struct {
	Chiplet int                `json:"chiplet"`
	Kind    coherence.SyncKind `json:"kind"`
	Ranged  bool               `json:"ranged,omitempty"`
}

// Boundary is the journal entry of one kernel boundary: the launch identity
// plus the operations the CP actually executed there. The finalize boundary
// uses Stream = -1, Inst = -1.
type Boundary struct {
	Stream int      `json:"stream"`
	Inst   int      `json:"inst"`
	Kernel string   `json:"kernel"`
	Ops    []PlanOp `json:"ops,omitempty"`
}

// Summary is the campaign-friendly digest of one run's verdict.
type Summary struct {
	Model      string            `json:"model"`
	Kernels    int               `json:"kernels"`
	Violations uint64            `json:"violations"`
	ByRule     map[string]uint64 `json:"by_rule,omitempty"`
	SyncOps    int               `json:"sync_ops"`
	// UnplacedSkips counts line checks skipped because the page had no home
	// yet (possible only for structures never pre-placed; zero in practice).
	UnplacedSkips uint64 `json:"unplaced_skips,omitempty"`
	// OverlapWrites counts lines whose non-atomic write was declared by more
	// than one chiplet in a single kernel — outside the oracle's precise
	// model (see package comment); the last declaring chiplet wins.
	OverlapWrites uint64 `json:"overlap_writes,omitempty"`
}

// lineState is the golden model's per-line knowledge. Only the home chiplet
// can cache a line in L2 under VIPER-chiplet, so one copy bit suffices.
type lineState struct {
	home   int16
	writer int16 // last writer chiplet, -1 if never written
	dirty  bool  // last write still uncommitted in the home's L2
	copy_  bool  // the home may hold an L2 copy
	stale  bool  // that copy is older than the committed value
}

const maxDetails = 32

// Oracle checks one run. Create with New, attach via Options.Oracle (the run
// binds it), and query after the run. An oracle is single-use: binding it to
// a second run is an error so stale verdicts can never be misread.
type Oracle struct {
	model    Model
	chiplets int
	lineSize mem.Addr
	home     func(mem.Addr) int
	rec      *trace.Recorder
	bound    bool
	done     bool

	lines  map[mem.Addr]*lineState
	byHome []map[mem.Addr]*lineState

	kernels    int
	syncOps    int
	total      uint64
	byRule     map[string]uint64
	details    []Violation
	boundaries []Boundary
	unplaced   uint64
	overlapW   uint64

	// wset is per-launch scratch marking lines already written this kernel,
	// used to detect multi-chiplet write declarations.
	wset map[mem.Addr]int
}

// New returns an oracle applying the given model's rules.
func New(model Model) *Oracle {
	return &Oracle{
		model:  model,
		byRule: map[string]uint64{},
		lines:  map[mem.Addr]*lineState{},
	}
}

// Model returns the rule set the oracle was built with.
func (o *Oracle) Model() Model { return o.model }

// Bind attaches the oracle to a run: the machine shape, a page-home query
// (never placing), and an optional trace recorder for violation events. The
// run harness calls this; it fails on reuse.
func (o *Oracle) Bind(chiplets, lineSize int, home func(mem.Addr) int, rec *trace.Recorder) error {
	if o.bound {
		return fmt.Errorf("oracle: already bound to a run (oracles are single-use)")
	}
	if chiplets < 1 {
		return fmt.Errorf("oracle: need at least one chiplet")
	}
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		return fmt.Errorf("oracle: line size %d is not a power of two", lineSize)
	}
	o.bound = true
	o.chiplets = chiplets
	o.lineSize = mem.Addr(lineSize)
	o.home = home
	o.rec = rec
	o.byHome = make([]map[mem.Addr]*lineState, chiplets)
	for c := range o.byHome {
		o.byHome[c] = map[mem.Addr]*lineState{}
	}
	o.wset = map[mem.Addr]int{}
	return nil
}

// OnLaunch implements gpu.Observer: it is called once per kernel launch with
// the synchronization plan the executor is about to run. The oracle applies
// the plan's happens-before effects, then checks every declared read against
// the pre-kernel state and applies the declared writes.
func (o *Oracle) OnLaunch(l *coherence.Launch, plan coherence.SyncPlan) {
	o.kernels++
	o.journal(l.Stream, l.Inst, l.Kernel.Name, plan)
	if o.model == HardwareCoherent {
		return
	}
	o.applyPlan(plan)

	// Reads first, all checked against pre-kernel write state: data-race
	// freedom guarantees no intra-kernel write/read conflicts, so the reads
	// of this kernel observe the epoch the plan established.
	for ai := range l.Kernel.Args {
		a := &l.Kernel.Args[ai]
		atomic := a.Pattern == kernels.Indirect && a.Mode == kernels.ReadWrite
		reads := a.Mode == kernels.Read || (a.Mode == kernels.ReadWrite && a.ReadModifyWrite && !atomic)
		if !reads {
			continue
		}
		for slot, c := range l.Chiplets {
			o.checkReads(c, l.ArgRanges[ai][slot], l)
		}
	}
	// Then writes and atomics.
	clear(o.wset)
	for ai := range l.Kernel.Args {
		a := &l.Kernel.Args[ai]
		if a.Mode != kernels.ReadWrite {
			continue
		}
		atomic := a.Pattern == kernels.Indirect
		for slot, c := range l.Chiplets {
			if atomic {
				o.applyAtomics(c, l.ArgRanges[ai][slot], l)
			} else {
				o.applyWrites(c, l.ArgRanges[ai][slot], l)
			}
		}
	}
}

// OnFinalize implements gpu.Observer: the end-of-program release plan. After
// applying it, any line still dirty is a violation — the host is about to
// read device memory.
func (o *Oracle) OnFinalize(plan coherence.SyncPlan) {
	o.journal(-1, -1, "(finalize)", plan)
	o.done = true
	if o.model == HardwareCoherent {
		return
	}
	o.applyPlan(plan)
	// Sort dirty lines by address so the violation list (and therefore the
	// JSON report) is identical across runs regardless of map iteration order.
	dirty := make([]mem.Addr, 0, len(o.lines))
	for line, st := range o.lines {
		if st.dirty {
			dirty = append(dirty, line)
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })
	for _, line := range dirty {
		st := o.lines[line]
		o.violate(Violation{
			Rule: RuleUnreleasedAtExit, Line: line,
			Chiplet: -1, Home: int(st.home), Writer: int(st.writer),
			Kernel: "(finalize)", Stream: -1, Inst: -1,
		})
	}
}

// journal records a boundary's executed operations.
func (o *Oracle) journal(stream, inst int, kernel string, plan coherence.SyncPlan) {
	b := Boundary{Stream: stream, Inst: inst, Kernel: kernel}
	for _, op := range plan.Ops {
		b.Ops = append(b.Ops, PlanOp{Chiplet: op.Chiplet, Kind: op.Kind, Ranged: !op.Ranges.Empty()})
	}
	o.syncOps += len(plan.Ops)
	o.boundaries = append(o.boundaries, b)
}

// applyPlan applies the happens-before effects of the executed operations:
// a release commits the chiplet's dirty lines to the ordering point; an
// acquire additionally drops the chiplet's copies (the machine writes dirty
// lines back before invalidating, so acquire subsumes release).
func (o *Oracle) applyPlan(plan coherence.SyncPlan) {
	for _, op := range plan.Ops {
		c := op.Chiplet
		if c < 0 || c >= o.chiplets {
			continue
		}
		apply := func(st *lineState) {
			st.dirty = false
			if op.Kind == coherence.Acquire {
				st.copy_ = false
				st.stale = false
			}
		}
		if op.Ranges.Empty() {
			// Whole-cache operation: every tracked line homed on c.
			for _, st := range o.byHome[c] {
				apply(st)
			}
			continue
		}
		for i, n := 0, op.Ranges.Len(); i < n; i++ {
			r := op.Ranges.At(i)
			for line := r.Lo &^ (o.lineSize - 1); line < r.Hi; line += o.lineSize {
				if st, ok := o.byHome[c][line]; ok {
					apply(st)
				}
			}
		}
	}
}

// eachLine walks the line addresses of a declared range set.
func (o *Oracle) eachLine(rs mem.RangeSet, fn func(mem.Addr)) {
	for i, n := 0, rs.Len(); i < n; i++ {
		r := rs.At(i)
		for line := r.Lo &^ (o.lineSize - 1); line < r.Hi; line += o.lineSize {
			fn(line)
		}
	}
}

// state returns the tracked state of line, creating it homed on h.
func (o *Oracle) state(line mem.Addr, h int) *lineState {
	if st, ok := o.lines[line]; ok {
		return st
	}
	st := &lineState{home: int16(h), writer: -1}
	o.lines[line] = st
	o.byHome[h][line] = st
	return st
}

// checkReads verifies chiplet r's declared reads of rs against the current
// epoch and records the caching effect: the home chiplet retains an L2 copy
// of every locally homed line it reads.
func (o *Oracle) checkReads(r int, rs mem.RangeSet, l *coherence.Launch) {
	o.eachLine(rs, func(line mem.Addr) {
		h := o.home(line)
		if h < 0 {
			o.unplaced++
			return
		}
		if r == h {
			st := o.state(line, h)
			if st.copy_ && st.stale {
				o.violate(Violation{
					Rule: RuleStaleLocalCopy, Line: line, Chiplet: r,
					Home: h, Writer: int(st.writer),
					Kernel: l.Kernel.Name, Stream: l.Stream, Inst: l.Inst,
				})
			}
			// The home now holds a copy of what it read: its own (possibly
			// dirty) L2 line, or a fresh fill from the ordering point.
			st.copy_ = true
			return
		}
		st, ok := o.lines[line]
		if !ok {
			return // never written, never cached: reads see the initial value
		}
		if st.dirty {
			o.violate(Violation{
				Rule: RuleUnreleasedDirty, Line: line, Chiplet: r,
				Home: h, Writer: int(st.writer),
				Kernel: l.Kernel.Name, Stream: l.Stream, Inst: l.Inst,
			})
		}
	})
}

// applyWrites checks and applies chiplet w's declared non-atomic writes:
// locally homed lines become dirty in w's L2; remotely homed lines write
// through and commit, staling any copy the home retains.
func (o *Oracle) applyWrites(w int, rs mem.RangeSet, l *coherence.Launch) {
	o.eachLine(rs, func(line mem.Addr) {
		h := o.home(line)
		if h < 0 {
			o.unplaced++
			return
		}
		if prev, dup := o.wset[line]; dup && prev != w {
			o.overlapW++
		}
		o.wset[line] = w
		st := o.state(line, h)
		if w == h {
			st.writer = int16(w)
			st.dirty = true
			st.copy_ = true
			st.stale = false
			return
		}
		if st.dirty {
			o.violate(Violation{
				Rule: RuleWAWLostUpdate, Line: line, Chiplet: w,
				Home: h, Writer: int(st.writer),
				Kernel: l.Kernel.Name, Stream: l.Stream, Inst: l.Inst,
			})
		}
		st.writer = int16(w)
		st.dirty = false
		if st.copy_ {
			st.stale = true
		}
	})
}

// applyAtomics checks and applies atomic scatter updates: they execute at
// the home L3 bank, committing immediately and bypassing every L2, so the
// home's retained copy (if any) falls behind.
func (o *Oracle) applyAtomics(c int, rs mem.RangeSet, l *coherence.Launch) {
	o.eachLine(rs, func(line mem.Addr) {
		h := o.home(line)
		if h < 0 {
			o.unplaced++
			return
		}
		st := o.state(line, h)
		if st.dirty {
			o.violate(Violation{
				Rule: RuleAtomicPastDirty, Line: line, Chiplet: c,
				Home: h, Writer: int(st.writer),
				Kernel: l.Kernel.Name, Stream: l.Stream, Inst: l.Inst,
			})
		}
		st.writer = int16(c)
		st.dirty = false
		if st.copy_ {
			st.stale = true
		}
	})
}

func (o *Oracle) violate(v Violation) {
	o.total++
	o.byRule[v.Rule]++
	if len(o.details) < maxDetails {
		o.details = append(o.details, v)
		o.rec.Oracle(v.Chiplet, v.Rule, uint64(v.Line))
	}
}

// Violations returns the total number of detected violations.
func (o *Oracle) Violations() uint64 { return o.total }

// ByRule returns violation counts per rule (shared map; do not mutate).
func (o *Oracle) ByRule() map[string]uint64 { return o.byRule }

// Details returns up to 32 individual violations for diagnostics.
func (o *Oracle) Details() []Violation { return o.details }

// Boundaries returns the per-boundary sync-operation journal, in execution
// order, ending with the finalize boundary once the run completed.
func (o *Oracle) Boundaries() []Boundary { return o.boundaries }

// Kernels returns the number of launches observed.
func (o *Oracle) Kernels() int { return o.kernels }

// Err returns nil when the oracle saw no violation, or an error summarizing
// what it caught.
func (o *Oracle) Err() error {
	if o.total == 0 {
		return nil
	}
	rules := make([]string, 0, len(o.byRule))
	for r := range o.byRule {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	parts := make([]string, 0, len(rules))
	for _, r := range rules {
		parts = append(parts, fmt.Sprintf("%s=%d", r, o.byRule[r]))
	}
	first := ""
	if len(o.details) > 0 {
		first = "; first: " + o.details[0].String()
	}
	return fmt.Errorf("oracle: %d memory-model violation(s): %s%s",
		o.total, strings.Join(parts, " "), first)
}

// Summary returns the campaign digest.
func (o *Oracle) Summary() *Summary {
	s := &Summary{
		Model:         o.model.String(),
		Kernels:       o.kernels,
		Violations:    o.total,
		SyncOps:       o.syncOps,
		UnplacedSkips: o.unplaced,
		OverlapWrites: o.overlapW,
	}
	if len(o.byRule) > 0 {
		s.ByRule = make(map[string]uint64, len(o.byRule))
		for k, v := range o.byRule {
			s.ByRule[k] = v
		}
	}
	return s
}

// SubsetOf verifies that o's per-boundary operations are a subset of ref's:
// for every kernel boundary (keyed by stream and dynamic instance), each
// (chiplet, kind) the checked run executed must also appear at the same
// boundary of the reference run, at least as often. It returns the
// boundaries that break the property. This is the CPElide-never-syncs-more-
// than-Baseline assertion; launch identity is stable across protocols even
// when multi-stream timing reorders execution.
func (o *Oracle) SubsetOf(ref *Oracle) []Boundary {
	type key struct{ stream, inst int }
	refOps := make(map[key]map[PlanOp]int, len(ref.boundaries))
	for _, b := range ref.boundaries {
		m := refOps[key{b.Stream, b.Inst}]
		if m == nil {
			m = map[PlanOp]int{}
			refOps[key{b.Stream, b.Inst}] = m
		}
		for _, op := range b.Ops {
			op.Ranged = false // compare (chiplet, kind) only
			m[op]++
		}
	}
	var broken []Boundary
	for _, b := range o.boundaries {
		avail := refOps[key{b.Stream, b.Inst}]
		used := map[PlanOp]int{}
		ok := true
		for _, op := range b.Ops {
			op.Ranged = false
			used[op]++
			if used[op] > avail[op] {
				ok = false
			}
		}
		if !ok {
			broken = append(broken, b)
		}
	}
	return broken
}
