package config

import "testing"

// TestTableIParameters pins the Table I machine description the paper
// simulates; changing any of these changes the reproduction.
func TestTableIParameters(t *testing.T) {
	g := Default(4)
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"clock MHz", g.ClockMHz, 1801},
		{"CUs/chiplet", g.CUsPerChiplet, 60},
		{"total CUs", g.TotalCUs(), 240},
		{"L1 size", g.L1SizeBytes, 16 << 10},
		{"L1 latency", g.L1Latency, 140},
		{"LDS size", g.LDSSizeBytes, 64 << 10},
		{"LDS latency", g.LDSLatency, 65},
		{"L2 size", g.L2SizeBytes, 8 << 20},
		{"L2 assoc", g.L2Assoc, 32},
		{"L2 local latency", g.L2LocalLatency, 269},
		{"L2 remote latency", g.L2RemoteLatency, 390},
		{"L3 size", g.L3SizeBytes, 16 << 20},
		{"L3 latency", g.L3Latency, 330},
		{"line size", g.LineSize, 64},
		{"table entries", g.TableEntries(), 64},
		{"page size", g.PageSize, 4 << 10},
		{"CP unicast", g.CPUnicastLatency, 65},
		{"CP broadcast", g.CPBroadcastLatency, 100},
		{"CP memory latency", g.CPMemLatency, 31},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	if g.InterChipletBWGBs != 768 {
		t.Errorf("inter-chiplet BW = %v GB/s, want 768", g.InterChipletBWGBs)
	}
	if g.CPLatencyUS != 2 || g.CPElideOverheadUS != 6 {
		t.Errorf("CP latencies = %v, %v us; want 2, 6", g.CPLatencyUS, g.CPElideOverheadUS)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	for _, n := range []int{1, 2, 6, 7} {
		if err := Default(n).Validate(); err != nil {
			t.Errorf("Default(%d): %v", n, err)
		}
	}
}

func TestDerivedQuantities(t *testing.T) {
	g := Default(4)
	// 768 GB/s at 1801 MHz = ~426 bytes/cycle.
	if bpc := g.LinkBytesPerCycle(); bpc < 425 || bpc > 428 {
		t.Errorf("LinkBytesPerCycle = %v", bpc)
	}
	if g.CPLatencyCycles() != 3602 {
		t.Errorf("CPLatencyCycles = %d", g.CPLatencyCycles())
	}
	if g.CPElideOverheadCycles() != 10806 {
		t.Errorf("CPElideOverheadCycles = %d", g.CPElideOverheadCycles())
	}
	if g.L3BankBytes() != 4<<20 {
		t.Errorf("L3BankBytes = %d", g.L3BankBytes())
	}
	if g.IsMonolithic() {
		t.Error("4-chiplet config reported monolithic")
	}
}

func TestMonolithicEquivalent(t *testing.T) {
	g := Monolithic(4)
	if !g.IsMonolithic() || g.NumChiplets != 1 {
		t.Error("monolithic shape wrong")
	}
	if g.CUsPerChiplet != 240 {
		t.Errorf("monolithic CUs = %d", g.CUsPerChiplet)
	}
	if g.L2SizeBytes != 32<<20 {
		t.Errorf("monolithic L2 = %d", g.L2SizeBytes)
	}
	d := Default(4)
	if g.L2BWBytesCy != 4*d.L2BWBytesCy {
		t.Error("monolithic L2 bandwidth not aggregated")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("monolithic invalid: %v", err)
	}
}

func TestValidateRejectsBrokenConfigs(t *testing.T) {
	mutations := []func(*GPU){
		func(g *GPU) { g.NumChiplets = 0 },
		func(g *GPU) { g.CUsPerChiplet = 0 },
		func(g *GPU) { g.LineSize = 48 },
		func(g *GPU) { g.PageSize = 32 },
		func(g *GPU) { g.L1SizeBytes = 64 },
		func(g *GPU) { g.L2SizeBytes = 64 },
		func(g *GPU) { g.L3SizeBytes = 64 },
		func(g *GPU) { g.ClockMHz = 0 },
		func(g *GPU) { g.InterChipletBWGBs = 0 },
		func(g *GPU) { g.TableMaxDataStructures = 0 },
		func(g *GPU) { g.BaseMLP = 0 },
		func(g *GPU) { g.L2BWBytesCy = 0 },
		func(g *GPU) { g.CacheWalkLinesPerCycle = 0 },
	}
	for i, mutate := range mutations {
		g := Default(4)
		mutate(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

func TestMGPUTopology(t *testing.T) {
	g := Default(8)
	g.NumGPUs = 2
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.ChipletsPerGPU() != 4 {
		t.Errorf("chiplets/GPU = %d", g.ChipletsPerGPU())
	}
	if g.GPUOf(3) != 0 || g.GPUOf(4) != 1 || g.GPUOf(7) != 1 {
		t.Error("GPUOf mapping wrong")
	}
	if g.InterGPUBytesPerCycle() <= 0 {
		t.Error("inter-GPU bandwidth conversion broken")
	}
	// NumGPUs must divide NumChiplets.
	bad := Default(6)
	bad.NumGPUs = 4
	if err := bad.Validate(); err == nil {
		t.Error("indivisible GPU grouping accepted")
	}
	bad2 := Default(8)
	bad2.NumGPUs = 2
	bad2.InterGPUBWGBs = 0
	if err := bad2.Validate(); err == nil {
		t.Error("MGPU without inter-GPU bandwidth accepted")
	}
	// Single-GPU configs ignore the grouping helpers gracefully.
	d := Default(4)
	if d.GPUOf(3) != 0 || d.ChipletsPerGPU() != 4 {
		t.Error("single-GPU helpers wrong")
	}
}
