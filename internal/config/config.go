// Package config describes the simulated machine.
//
// The defaults reproduce Table I of the CPElide paper (MICRO 2024): an
// AMD Radeon VII-derived multi-chiplet GPU with 60 CUs per chiplet, 8 MB of
// L2 per chiplet, a 16 MB shared L3 (the inter-chiplet ordering point), and
// a 768 GB/s inter-chiplet crossbar.
package config

import (
	"errors"
	"fmt"
)

// GPU holds every machine parameter the simulator consumes. All latencies
// are in GPU core cycles at ClockMHz unless noted.
type GPU struct {
	// Topology.
	NumChiplets   int // total chiplets: 1 (monolithic), 2, 4, 6, 7 in the paper
	CUsPerChiplet int // 60
	// NumGPUs groups the chiplets into separate GPU packages (an MGPU
	// system of MCM-GPUs, Section VI). 1 = the paper's single MCM-GPU.
	// Must divide NumChiplets. Chiplets on different GPUs communicate over
	// the inter-GPU interconnect instead of the on-package crossbar.
	NumGPUs int

	// Clocks.
	ClockMHz   int // 1801
	CPClockMHz int // 1500: command processors run at their own clock

	// L1 data cache, one per CU.
	L1SizeBytes int // 16 KiB
	L1Assoc     int // 16
	L1Latency   int // 140 cycles

	// LDS (scratchpad), one per CU.
	LDSSizeBytes int // 64 KiB
	LDSLatency   int // 65 cycles

	// L2, one per chiplet, shared by the chiplet's CUs.
	L2SizeBytes     int // 8 MiB
	L2Assoc         int // 32
	L2LocalLatency  int // 269 cycles
	L2RemoteLatency int // 390 cycles (access forwarded to another chiplet)

	// L3, the shared LLC; banked across chiplets by page home.
	L3SizeBytes int // 16 MiB total
	L3Assoc     int // 16
	L3Latency   int // 330 cycles

	// Memory.
	DRAMLatency   int     // additional cycles past L3 for an HBM access
	DRAMBWBytesCy float64 // aggregate effective HBM bandwidth in bytes per core cycle

	// Bandwidth of one chiplet's L2 (all banks) and of one L3 bank, in
	// bytes per core cycle; these bound kernel throughput when the access
	// stream exceeds what the SRAM arrays can stream.
	L2BWBytesCy float64
	L3BWBytesCy float64

	// Interconnect.
	LineSize          int     // 64 B
	FlitSize          int     // bytes per flit
	InterChipletBWGBs float64 // 768 GB/s aggregate crossbar bandwidth
	// Inter-GPU interconnect (MGPU systems): NVLink/xGMI-class.
	InterGPUBWGBs   float64 // 64 GB/s per direction
	CrossGPULatency int     // cumulative latency of a cross-GPU access

	// Command processors (Section IV-B).
	CPLatencyUS        float64 // 2 us baseline CP processing per kernel
	CPElideOverheadUS  float64 // 6 us table lookup + acquire/release generation
	CPUnicastLatency   int     // 65 cycles global<->local CP crossbar
	CPBroadcastLatency int     // 100 cycles
	CPMemLatency       int     // 31 CP-clock cycles to the CP's private memory
	// DriverRoundTripUS is the host round trip paid per kernel when
	// implicit synchronization is managed at the driver instead of the CP
	// (the Section VI alternative; prior work reports significant latency).
	DriverRoundTripUS float64

	// Cache maintenance: lines per cycle an L2 can walk during a flush or
	// invalidate (banked, pipelined walks).
	CacheWalkLinesPerCycle int

	// Memory-level parallelism cap: how many outstanding memory accesses a
	// CU's wavefronts overlap. Workloads scale this with their own factor.
	BaseMLP int

	// CPElide table sizing (Section III-A).
	TableMaxDataStructures int // 8 data structures per kernel
	TableKernelWindow      int // 8 kernels tracked -> 64 entries

	PageSize int // first-touch placement granularity, 4 KiB
}

// Default returns the Table I configuration with n chiplets.
// n == 1 yields the "equivalent monolithic GPU" used by Figure 2: the same
// total CU count and aggregate L2 capacity as a 4-chiplet system but with a
// single shared L2 as the ordering point.
func Default(n int) GPU {
	g := GPU{
		NumChiplets:   n,
		CUsPerChiplet: 60,
		NumGPUs:       1,

		ClockMHz:   1801,
		CPClockMHz: 1500,

		L1SizeBytes: 16 << 10,
		L1Assoc:     16,
		L1Latency:   140,

		LDSSizeBytes: 64 << 10,
		LDSLatency:   65,

		L2SizeBytes:     8 << 20,
		L2Assoc:         32,
		L2LocalLatency:  269,
		L2RemoteLatency: 390,

		L3SizeBytes: 16 << 20,
		L3Assoc:     16,
		L3Latency:   330,

		DRAMLatency:   170,
		DRAMBWBytesCy: 200, // ~360 GB/s effective HBM2 bandwidth at 1801 MHz

		L2BWBytesCy: 144, // ~260 GB/s per chiplet CU-side streaming rate
		L3BWBytesCy: 256, // ~460 GB/s per L3 bank

		LineSize:          64,
		FlitSize:          16,
		InterChipletBWGBs: 768,
		InterGPUBWGBs:     64,
		CrossGPULatency:   780, // ~2x the on-package remote latency

		CPLatencyUS:        2,
		CPElideOverheadUS:  6,
		CPUnicastLatency:   65,
		CPBroadcastLatency: 100,
		CPMemLatency:       31,
		DriverRoundTripUS:  4,

		CacheWalkLinesPerCycle: 1024,
		BaseMLP:                48,

		TableMaxDataStructures: 8,
		TableKernelWindow:      8,

		PageSize: 4 << 10,
	}
	return g
}

// Monolithic returns the infeasible-to-build monolithic GPU equivalent to an
// n-chiplet system (Figure 2): one die holding n*60 CUs and an n*8 MB shared
// L2, with no inter-chiplet indirection.
func Monolithic(equivalentChiplets int) GPU {
	g := Default(1)
	g.CUsPerChiplet = 60 * equivalentChiplets
	g.L2SizeBytes = (8 << 20) * equivalentChiplets
	g.L2BWBytesCy *= float64(equivalentChiplets)
	g.L3BWBytesCy *= float64(equivalentChiplets)
	return g
}

// TotalCUs returns the CU count across all chiplets.
func (g GPU) TotalCUs() int { return g.NumChiplets * g.CUsPerChiplet }

// ChipletsPerGPU returns the chiplet count of one GPU package.
func (g GPU) ChipletsPerGPU() int {
	if g.NumGPUs <= 1 {
		return g.NumChiplets
	}
	return g.NumChiplets / g.NumGPUs
}

// GPUOf returns the GPU package housing chiplet c.
func (g GPU) GPUOf(c int) int {
	if g.NumGPUs <= 1 {
		return 0
	}
	return c / g.ChipletsPerGPU()
}

// InterGPUBytesPerCycle converts the inter-GPU bandwidth into bytes per
// core cycle.
func (g GPU) InterGPUBytesPerCycle() float64 {
	return g.InterGPUBWGBs * 1e9 / (float64(g.ClockMHz) * 1e6)
}

// IsMonolithic reports whether the L2 is the GPU-wide ordering point, i.e.
// there is no inter-chiplet level above it. Kernel-boundary implicit
// synchronization then stops at the L1s, exactly like pre-chiplet GPUs.
func (g GPU) IsMonolithic() bool { return g.NumChiplets == 1 }

// L3BankBytes returns the per-chiplet slice of the shared L3.
func (g GPU) L3BankBytes() int { return g.L3SizeBytes / g.NumChiplets }

// LinkBytesPerCycle converts the aggregate inter-chiplet bandwidth into
// bytes per GPU core cycle.
func (g GPU) LinkBytesPerCycle() float64 {
	return g.InterChipletBWGBs * 1e9 / (float64(g.ClockMHz) * 1e6)
}

// CPLatencyCycles converts the CP processing latency to core cycles.
func (g GPU) CPLatencyCycles() int {
	return int(g.CPLatencyUS * float64(g.ClockMHz))
}

// CPElideOverheadCycles converts the CPElide table-processing overhead to
// core cycles.
func (g GPU) CPElideOverheadCycles() int {
	return int(g.CPElideOverheadUS * float64(g.ClockMHz))
}

// DriverRoundTripCycles converts the host round trip to core cycles.
func (g GPU) DriverRoundTripCycles() int {
	return int(g.DriverRoundTripUS * float64(g.ClockMHz))
}

// TableEntries returns the Chiplet Coherence Table capacity.
func (g GPU) TableEntries() int {
	return g.TableMaxDataStructures * g.TableKernelWindow
}

// Validate reports the first structural problem with the configuration.
func (g GPU) Validate() error {
	switch {
	case g.NumChiplets < 1:
		return errors.New("config: NumChiplets must be >= 1")
	case g.CUsPerChiplet < 1:
		return errors.New("config: CUsPerChiplet must be >= 1")
	case g.LineSize <= 0 || g.LineSize&(g.LineSize-1) != 0:
		return fmt.Errorf("config: LineSize %d must be a positive power of two", g.LineSize)
	case g.PageSize < g.LineSize || g.PageSize&(g.PageSize-1) != 0:
		return fmt.Errorf("config: PageSize %d must be a power of two >= LineSize", g.PageSize)
	case g.L1SizeBytes < g.LineSize*g.L1Assoc:
		return errors.New("config: L1 smaller than one set")
	case g.L2SizeBytes < g.LineSize*g.L2Assoc:
		return errors.New("config: L2 smaller than one set")
	case g.L3SizeBytes < g.NumChiplets*g.LineSize*g.L3Assoc:
		return errors.New("config: L3 bank smaller than one set")
	case g.ClockMHz <= 0 || g.CPClockMHz <= 0:
		return errors.New("config: clocks must be positive")
	case g.InterChipletBWGBs <= 0 && g.NumChiplets > 1:
		return errors.New("config: inter-chiplet bandwidth must be positive")
	case g.NumGPUs < 1 || g.NumChiplets%max(g.NumGPUs, 1) != 0:
		return fmt.Errorf("config: NumGPUs %d must divide NumChiplets %d", g.NumGPUs, g.NumChiplets)
	case g.NumGPUs > 1 && (g.InterGPUBWGBs <= 0 || g.CrossGPULatency <= 0):
		return errors.New("config: MGPU systems need inter-GPU bandwidth and latency")
	case g.TableMaxDataStructures <= 0 || g.TableKernelWindow <= 0:
		return errors.New("config: CPElide table dimensions must be positive")
	case g.BaseMLP <= 0:
		return errors.New("config: BaseMLP must be positive")
	case g.L2BWBytesCy <= 0 || g.L3BWBytesCy <= 0 || g.DRAMBWBytesCy <= 0:
		return errors.New("config: bandwidths must be positive")
	case g.CacheWalkLinesPerCycle <= 0:
		return errors.New("config: CacheWalkLinesPerCycle must be positive")
	}
	return nil
}
