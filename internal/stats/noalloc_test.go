package stats

import "testing"

// Dynamic counterpart to the //cpelide:noalloc annotations on the dense
// counter array: the per-access instrumentation path must never allocate.

func TestCounterOpsNoAllocs(t *testing.T) {
	s := New()
	allocs := testing.AllocsPerRun(200, func() {
		s.Inc(L1Hits)
		s.Add(L1Hits, 41)
		s.Max(L1Hits, 7)
		s.Set(L1Hits, 3)
		if s.Get(L1Hits) != 3 {
			t.Fatal("counter value wrong")
		}
		if !s.isTouched(L1Hits) {
			t.Fatal("touch lost")
		}
		_ = IsMax(L1Hits)
	})
	if allocs != 0 {
		t.Errorf("counter ops: %v allocs/op, want 0", allocs)
	}
}

func TestNilSheetOpsNoAllocs(t *testing.T) {
	var s *Sheet
	allocs := testing.AllocsPerRun(200, func() {
		s.Inc(L1Hits)
		s.Add(L1Hits, 1)
		s.Max(L1Hits, 1)
		s.Set(L1Hits, 1)
		if s.Get(L1Hits) != 0 {
			t.Fatal("nil sheet returned a value")
		}
	})
	if allocs != 0 {
		t.Errorf("nil-sheet ops: %v allocs/op, want 0", allocs)
	}
}
