package stats

import (
	"strings"
	"testing"
)

func TestHistogramNilSafety(t *testing.T) {
	var h *Histogram
	h.Observe(5) // must not panic
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 ||
		h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Name() != "" {
		t.Error("nil histogram returned nonzero state")
	}
	if !strings.Contains(h.String(), "empty") {
		t.Errorf("nil String = %q", h.String())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram("lat")
	for _, v := range []uint64{0, 1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 1106 {
		t.Errorf("count=%d sum=%d", h.Count(), h.Sum())
	}
	if h.Min() != 0 || h.Max() != 1000 {
		t.Errorf("min=%d max=%d", h.Min(), h.Max())
	}
	if h.Mean() != 1106.0/6 {
		t.Errorf("mean=%f", h.Mean())
	}
	if h.Name() != "lat" {
		t.Errorf("name=%q", h.Name())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram("q")
	for i := 0; i < 100; i++ {
		h.Observe(10) // all in bucket [8,15]
	}
	h.Observe(1 << 20)
	// p50 lands in the dense bucket: upper edge 15.
	if q := h.Quantile(0.5); q != 15 {
		t.Errorf("p50 = %d, want 15", q)
	}
	// p100 is the single large outlier, clamped to the observed max.
	if q := h.Quantile(1); q != 1<<20 {
		t.Errorf("p100 = %d, want %d", q, 1<<20)
	}
	// Out-of-range q values clamp rather than panic.
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Error("quantile clamping wrong")
	}
	// All-zero observations stay zero.
	z := NewHistogram("z")
	z.Observe(0)
	if z.Quantile(0.99) != 0 {
		t.Error("zero-only quantile nonzero")
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram("dur")
	h.Observe(4)
	h.Observe(5)
	h.Observe(900)
	out := h.String()
	if !strings.Contains(out, "dur:") || !strings.Contains(out, "n=3") {
		t.Errorf("summary line wrong: %q", out)
	}
	if !strings.Contains(out, "#") {
		t.Errorf("missing bar chart: %q", out)
	}
}
