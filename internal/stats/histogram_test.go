package stats

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestHistogramNilSafety(t *testing.T) {
	var h *Histogram
	h.Observe(5) // must not panic
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 ||
		h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Name() != "" {
		t.Error("nil histogram returned nonzero state")
	}
	if !strings.Contains(h.String(), "empty") {
		t.Errorf("nil String = %q", h.String())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram("lat")
	for _, v := range []uint64{0, 1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 1106 {
		t.Errorf("count=%d sum=%d", h.Count(), h.Sum())
	}
	if h.Min() != 0 || h.Max() != 1000 {
		t.Errorf("min=%d max=%d", h.Min(), h.Max())
	}
	if h.Mean() != 1106.0/6 {
		t.Errorf("mean=%f", h.Mean())
	}
	if h.Name() != "lat" {
		t.Errorf("name=%q", h.Name())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram("q")
	for i := 0; i < 100; i++ {
		h.Observe(10) // all in bucket [8,15]
	}
	h.Observe(1 << 20)
	// p50 lands in the dense bucket: upper edge 15.
	if q := h.Quantile(0.5); q != 15 {
		t.Errorf("p50 = %d, want 15", q)
	}
	// p100 is the single large outlier, clamped to the observed max.
	if q := h.Quantile(1); q != 1<<20 {
		t.Errorf("p100 = %d, want %d", q, 1<<20)
	}
	// Out-of-range q values clamp rather than panic.
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Error("quantile clamping wrong")
	}
	// All-zero observations stay zero.
	z := NewHistogram("z")
	z.Observe(0)
	if z.Quantile(0.99) != 0 {
		t.Error("zero-only quantile nonzero")
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	// Empty histogram: every quantile is zero.
	e := NewHistogram("empty")
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := e.Quantile(q); v != 0 {
			t.Errorf("empty Quantile(%v) = %d, want 0", q, v)
		}
	}
	// Single sample: every quantile is that sample's bucket, clamped to max.
	s := NewHistogram("single")
	s.Observe(42)
	for _, q := range []float64{0, 0.5, 1} {
		if v := s.Quantile(q); v != 42 {
			t.Errorf("single-sample Quantile(%v) = %d, want 42", q, v)
		}
	}
	// Quantile never exceeds the observed max even mid-bucket.
	m := NewHistogram("max")
	m.Observe(9) // bucket [8,15], upper edge 15 > max 9
	if v := m.Quantile(1); v != 9 {
		t.Errorf("Quantile(1) = %d, want clamp to max 9", v)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	// Nil and empty histograms have no buckets.
	var nilH *Histogram
	if b := nilH.CumulativeBuckets(); b != nil {
		t.Errorf("nil CumulativeBuckets = %v, want nil", b)
	}
	if b := NewHistogram("e").CumulativeBuckets(); b != nil {
		t.Errorf("empty CumulativeBuckets = %v, want nil", b)
	}

	h := NewHistogram("c")
	h.Observe(0)  // bucket 0, le 0
	h.Observe(1)  // bucket 1, le 1
	h.Observe(2)  // bucket 2, le 3
	h.Observe(3)  // bucket 2, le 3
	h.Observe(10) // bucket 4, le 15
	got := h.CumulativeBuckets()
	want := []Bucket{
		{UpperBound: 0, Count: 1},
		{UpperBound: 1, Count: 2},
		{UpperBound: 3, Count: 4},
		{UpperBound: 7, Count: 4},
		{UpperBound: 15, Count: 5},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d buckets %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Counts are monotone and the last equals the total count.
	for i := 1; i < len(got); i++ {
		if got[i].Count < got[i-1].Count {
			t.Errorf("bucket counts not cumulative at %d: %v", i, got)
		}
	}
	if got[len(got)-1].Count != h.Count() {
		t.Errorf("last bucket count %d != total %d", got[len(got)-1].Count, h.Count())
	}
	// A single zero-valued observation yields exactly one le=0 bucket.
	z := NewHistogram("z")
	z.Observe(0)
	if b := z.CumulativeBuckets(); len(b) != 1 || b[0] != (Bucket{0, 1}) {
		t.Errorf("zero-only buckets = %v", b)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram("dur")
	h.Observe(4)
	h.Observe(5)
	h.Observe(900)
	out := h.String()
	if !strings.Contains(out, "dur:") || !strings.Contains(out, "n=3") {
		t.Errorf("summary line wrong: %q", out)
	}
	if !strings.Contains(out, "#") {
		t.Errorf("missing bar chart: %q", out)
	}
}

// TestHistogramJSONRoundTrip: a histogram must survive marshal/unmarshal
// losslessly and re-marshal to identical bytes — the property the cluster's
// persistent result store relies on to serve byte-identical reports.
func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram("kernel duration (cycles)")
	for _, v := range []uint64{0, 1, 2, 3, 900, 1 << 40, 1<<63 + 5} {
		h.Observe(v)
	}
	first, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count() != h.Count() || back.Sum() != h.Sum() ||
		back.Min() != h.Min() || back.Max() != h.Max() ||
		back.Name() != h.Name() || back.Quantile(0.99) != h.Quantile(0.99) {
		t.Fatalf("round trip lost data: %+v vs %+v", back, *h)
	}
	second, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("re-marshal differs:\n%s\n%s", first, second)
	}

	var nilH *Histogram
	if b, err := json.Marshal(nilH); err != nil || string(b) != "null" {
		t.Fatalf("nil histogram marshaled to %q (%v)", b, err)
	}
	// Legacy artifacts serialized histograms as {} before the wire form
	// existed; they must decode as empty.
	var legacy Histogram
	if err := json.Unmarshal([]byte("{}"), &legacy); err != nil || legacy.Count() != 0 {
		t.Fatalf("legacy {} decode: %v count=%d", err, legacy.Count())
	}
	var bad Histogram
	if err := json.Unmarshal([]byte(`{"buckets":[[99,1]]}`), &bad); err == nil {
		t.Fatal("out-of-range bucket index accepted")
	}
}
