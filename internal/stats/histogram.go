package stats

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"strings"
)

// Histogram is a fixed-footprint log2-bucketed latency histogram: bucket i
// counts observations whose bit length is i (bucket 0 holds zeros), so the
// bucket for value v spans [2^(i-1), 2^i). Sixty-five buckets cover the full
// uint64 range with no per-observation allocation, which keeps per-kernel
// duration and sync-stall recording off the simulator's allocation profile.
// Methods on a nil *Histogram are no-ops, like Sheet.
type Histogram struct {
	name    string
	buckets [65]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// NewHistogram returns an empty histogram labeled name.
func NewHistogram(name string) *Histogram { return &Histogram{name: name} }

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bits.Len64(v)]++
}

// Name returns the histogram's label.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min returns the smallest observation (zero when empty).
func (h *Histogram) Min() uint64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the largest observation.
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean of the observations.
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1): the
// upper edge of the bucket holding the q*count-th observation. Exact to
// within the 2x bucket width.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.count-1))
	var seen uint64
	for i, n := range h.buckets {
		seen += n
		if n > 0 && seen > target {
			if i == 0 {
				return 0
			}
			hi := uint64(1)<<uint(i) - 1
			if hi > h.max {
				hi = h.max
			}
			return hi
		}
	}
	return h.max
}

// Bucket is one cumulative histogram bucket: Count observations had values
// less than or equal to UpperBound. The exposition layer (internal/metrics)
// turns these into Prometheus `_bucket{le="..."}` lines, whose counts are
// cumulative by definition.
type Bucket struct {
	UpperBound uint64
	Count      uint64
}

// CumulativeBuckets returns the histogram's buckets in cumulative form,
// truncated after the bucket that reaches the total count (so an empty or
// nil histogram returns nil, and the last returned bucket always has
// Count == Count()). Bucket i's upper bound is the largest value with bit
// length i: 0, 1, 3, 7, ..., 2^i - 1.
func (h *Histogram) CumulativeBuckets() []Bucket {
	if h == nil || h.count == 0 {
		return nil
	}
	out := make([]Bucket, 0, 8)
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		ub := uint64(0)
		if i > 0 {
			ub = 1<<uint(i) - 1
		}
		out = append(out, Bucket{UpperBound: ub, Count: cum})
		if cum == h.count {
			break
		}
	}
	return out
}

// histogramJSON is the wire form of a Histogram: the scalar summary plus
// the nonzero buckets as [index, count] pairs in ascending index order, so
// marshaling is deterministic and sparse histograms stay compact.
type histogramJSON struct {
	Name    string      `json:"name,omitempty"`
	Count   uint64      `json:"count"`
	Sum     uint64      `json:"sum"`
	Min     uint64      `json:"min"`
	Max     uint64      `json:"max"`
	Buckets [][2]uint64 `json:"buckets,omitempty"`
}

// MarshalJSON renders the histogram losslessly, so Reports survive the
// cluster's persistent result store (internal/cluster/diskstore) and HTTP
// serving with their latency distributions intact. Output is deterministic:
// buckets are emitted in ascending index order.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	if h == nil {
		return []byte("null"), nil
	}
	wire := histogramJSON{Name: h.name, Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	for i, n := range h.buckets {
		if n != 0 {
			wire.Buckets = append(wire.Buckets, [2]uint64{uint64(i), n})
		}
	}
	return json.Marshal(wire)
}

// UnmarshalJSON restores a histogram marshaled by MarshalJSON. Legacy
// artifacts serialized before histograms had a wire form decode as empty
// histograms, and out-of-range bucket indexes are an error rather than a
// truncation.
func (h *Histogram) UnmarshalJSON(b []byte) error {
	var wire histogramJSON
	if err := json.Unmarshal(b, &wire); err != nil {
		return err
	}
	*h = Histogram{name: wire.Name, count: wire.Count, sum: wire.Sum, min: wire.Min, max: wire.Max}
	for _, bk := range wire.Buckets {
		if bk[0] >= uint64(len(h.buckets)) {
			return fmt.Errorf("stats: histogram bucket index %d out of range", bk[0])
		}
		h.buckets[bk[0]] = bk[1]
	}
	return nil
}

// String renders the nonzero buckets as an aligned table with a bar chart.
func (h *Histogram) String() string {
	if h == nil || h.count == 0 {
		return fmt.Sprintf("%s: empty\n", h.Name())
	}
	var peak uint64
	for _, n := range h.buckets {
		if n > peak {
			peak = n
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: n=%d min=%d mean=%.0f p50=%d p99=%d max=%d\n",
		h.name, h.count, h.min, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.max)
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		lo, hi := uint64(0), uint64(0)
		if i > 0 {
			lo = 1 << uint(i-1)
			hi = uint64(1)<<uint(i) - 1
		}
		bar := strings.Repeat("#", int(1+n*39/peak))
		fmt.Fprintf(&b, "  [%12d, %12d] %10d %s\n", lo, hi, n, bar)
	}
	return b.String()
}
