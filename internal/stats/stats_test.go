package stats

import (
	"strings"
	"testing"
)

func TestSheetBasics(t *testing.T) {
	s := New()
	s.Inc(L2Hits)
	s.Add(L2Hits, 4)
	if s.Get(L2Hits) != 5 {
		t.Errorf("L2Hits = %d", s.Get(L2Hits))
	}
	if s.Get(L2Misses) != 0 {
		t.Error("unset counter nonzero")
	}
	s.Set(L2Misses, 9)
	if s.Get(L2Misses) != 9 {
		t.Error("Set lost")
	}
	s.Max(TablePeakUse, 3)
	s.Max(TablePeakUse, 2)
	if s.Get(TablePeakUse) != 3 {
		t.Error("Max regressed")
	}
}

func TestSheetNilSafety(t *testing.T) {
	var s *Sheet
	s.Inc(L2Hits) // must not panic
	s.Add(L2Hits, 2)
	s.Max(L2Hits, 2)
	s.Set(L2Hits, 2)
	s.Merge(New())
	s.Reset()
	if s.Get(L2Hits) != 0 || s.Counters() != nil {
		t.Error("nil sheet misbehaved")
	}
	if s.Clone() == nil {
		t.Error("nil Clone should return usable sheet")
	}
}

func TestSheetMergeCloneReset(t *testing.T) {
	a, b := New(), New()
	a.Add(L1Hits, 1)
	b.Add(L1Hits, 2)
	b.Add(DRAMReads, 5)
	a.Merge(b)
	if a.Get(L1Hits) != 3 || a.Get(DRAMReads) != 5 {
		t.Error("Merge wrong")
	}
	c := a.Clone()
	c.Inc(L1Hits)
	if a.Get(L1Hits) != 3 || c.Get(L1Hits) != 4 {
		t.Error("Clone shares state")
	}
	a.Reset()
	if len(a.Counters()) != 0 {
		t.Error("Reset left counters")
	}
}

func TestSheetCountersSortedAndString(t *testing.T) {
	s := New()
	s.Inc(L2Hits)
	s.Inc(DRAMReads)
	s.Inc(L1Hits)
	cs := s.Counters()
	for i := 1; i < len(cs); i++ {
		if cs[i-1] >= cs[i] {
			t.Fatalf("counters unsorted: %v", cs)
		}
	}
	out := s.String()
	if !strings.Contains(out, string(L2Hits)) {
		t.Errorf("String missing counter: %q", out)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("Ratio div by zero")
	}
	if Ratio(3, 4) != 0.75 {
		t.Error("Ratio wrong")
	}
}

func TestSheetJSONRoundTrip(t *testing.T) {
	s := New()
	s.Add(L2Hits, 7)
	s.Add(DRAMWrites, 3)
	b, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Sheet
	if err := back.UnmarshalJSON(b); err != nil {
		t.Fatal(err)
	}
	if back.Get(L2Hits) != 7 || back.Get(DRAMWrites) != 3 {
		t.Errorf("round trip lost counters: %s", back.String())
	}
	var nilSheet *Sheet
	if b, err := nilSheet.MarshalJSON(); err != nil || string(b) != "null" {
		t.Errorf("nil sheet JSON = %q, %v", b, err)
	}
}
