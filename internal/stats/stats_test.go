package stats

import (
	"strings"
	"testing"
)

func TestSheetBasics(t *testing.T) {
	s := New()
	s.Inc(L2Hits)
	s.Add(L2Hits, 4)
	if s.Get(L2Hits) != 5 {
		t.Errorf("L2Hits = %d", s.Get(L2Hits))
	}
	if s.Get(L2Misses) != 0 {
		t.Error("unset counter nonzero")
	}
	s.Set(L2Misses, 9)
	if s.Get(L2Misses) != 9 {
		t.Error("Set lost")
	}
	s.Max(TablePeakUse, 3)
	s.Max(TablePeakUse, 2)
	if s.Get(TablePeakUse) != 3 {
		t.Error("Max regressed")
	}
}

func TestSheetNilSafety(t *testing.T) {
	var s *Sheet
	s.Inc(L2Hits) // must not panic
	s.Add(L2Hits, 2)
	s.Max(L2Hits, 2)
	s.Set(L2Hits, 2)
	s.Merge(New())
	s.Reset()
	if s.Get(L2Hits) != 0 || s.Counters() != nil {
		t.Error("nil sheet misbehaved")
	}
	if s.Clone() == nil {
		t.Error("nil Clone should return usable sheet")
	}
}

func TestSheetMergeCloneReset(t *testing.T) {
	a, b := New(), New()
	a.Add(L1Hits, 1)
	b.Add(L1Hits, 2)
	b.Add(DRAMReads, 5)
	a.Merge(b)
	if a.Get(L1Hits) != 3 || a.Get(DRAMReads) != 5 {
		t.Error("Merge wrong")
	}
	c := a.Clone()
	c.Inc(L1Hits)
	if a.Get(L1Hits) != 3 || c.Get(L1Hits) != 4 {
		t.Error("Clone shares state")
	}
	a.Reset()
	if len(a.Counters()) != 0 {
		t.Error("Reset left counters")
	}
}

func TestSheetCountersSortedAndString(t *testing.T) {
	s := New()
	s.Inc(L2Hits)
	s.Inc(DRAMReads)
	s.Inc(L1Hits)
	cs := s.Counters()
	for i := 1; i < len(cs); i++ {
		if cs[i-1].String() >= cs[i].String() {
			t.Fatalf("counters unsorted by name: %v", cs)
		}
	}
	out := s.String()
	if !strings.Contains(out, L2Hits.String()) {
		t.Errorf("String missing counter: %q", out)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("Ratio div by zero")
	}
	if Ratio(3, 4) != 0.75 {
		t.Error("Ratio wrong")
	}
}

func TestMergeMaxSemantics(t *testing.T) {
	if !IsMax(TablePeakUse) || !IsMax(TotalCycles) || IsMax(L2Hits) {
		t.Fatal("IsMax registry wrong")
	}
	a, b := New(), New()
	a.Set(TablePeakUse, 10)
	a.Add(L2Hits, 5)
	b.Set(TablePeakUse, 7)
	b.Add(L2Hits, 3)
	a.Merge(b)
	if a.Get(TablePeakUse) != 10 {
		t.Errorf("Merge summed a max-semantics counter: peak = %d, want 10", a.Get(TablePeakUse))
	}
	if a.Get(L2Hits) != 8 {
		t.Errorf("Merge broke additive counters: L2Hits = %d, want 8", a.Get(L2Hits))
	}
	// Max wins in the other direction too.
	c := New()
	c.Set(TablePeakUse, 4)
	c.Merge(a)
	if c.Get(TablePeakUse) != 10 {
		t.Errorf("Merge max wrong way: %d", c.Get(TablePeakUse))
	}
}

func TestDeltaFrom(t *testing.T) {
	pre := New()
	pre.Add(L2Hits, 10)
	pre.Set(TablePeakUse, 3)
	cur := pre.Clone()
	cur.Add(L2Hits, 7)
	cur.Add(DRAMReads, 2)
	cur.Set(TablePeakUse, 5)
	d := cur.DeltaFrom(pre)
	if d.Get(L2Hits) != 7 {
		t.Errorf("additive delta = %d, want 7", d.Get(L2Hits))
	}
	if d.Get(DRAMReads) != 2 {
		t.Errorf("new-counter delta = %d, want 2", d.Get(DRAMReads))
	}
	if d.Get(TablePeakUse) != 5 {
		t.Errorf("max-semantics delta = %d, want absolute value 5", d.Get(TablePeakUse))
	}
	// Deltas recombine: pre-activity + each delta merged = current.
	recombined := pre.Clone()
	recombined.Merge(d)
	if !recombined.Equal(cur) {
		t.Errorf("recombined %s != current %s", recombined, cur)
	}
	// DeltaFrom(nil) is the full sheet.
	full := cur.DeltaFrom(nil)
	if !full.Equal(cur) {
		t.Error("DeltaFrom(nil) != sheet")
	}
}

func TestSheetEqual(t *testing.T) {
	a, b := New(), New()
	a.Add(L2Hits, 2)
	b.Add(L2Hits, 2)
	if !a.Equal(b) {
		t.Error("equal sheets reported unequal")
	}
	b.Add(DRAMReads, 1)
	if a.Equal(b) {
		t.Error("unequal sheets reported equal")
	}
	b.Set(DRAMReads, 0) // zero entries don't count
	if !a.Equal(b) {
		t.Error("zero-valued counter broke Equal")
	}
	var n *Sheet
	if !n.Equal(New()) || n.Equal(a) {
		t.Error("nil Equal wrong")
	}
}

func TestSheetJSONRoundTrip(t *testing.T) {
	s := New()
	s.Add(L2Hits, 7)
	s.Add(DRAMWrites, 3)
	b, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Sheet
	if err := back.UnmarshalJSON(b); err != nil {
		t.Fatal(err)
	}
	if back.Get(L2Hits) != 7 || back.Get(DRAMWrites) != 3 {
		t.Errorf("round trip lost counters: %s", back.String())
	}
	var nilSheet *Sheet
	if b, err := nilSheet.MarshalJSON(); err != nil || string(b) != "null" {
		t.Errorf("nil sheet JSON = %q, %v", b, err)
	}
}
