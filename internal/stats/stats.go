// Package stats collects simulation counters.
//
// Every component of the simulated machine (caches, links, DRAM, command
// processors) increments named counters in a Sheet. Sheets are cheap to
// merge, diff, and print, and the experiment harness turns them into the
// rows of the paper's figures.
package stats

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Counter identifies one statistic. Counters are grouped by component so the
// energy model and the figure harness can aggregate by subsystem.
type Counter string

// Cache and memory counters.
const (
	L1Hits        Counter = "l1.hits"
	L1Misses      Counter = "l1.misses"
	L1Accesses    Counter = "l1.accesses"
	L2Hits        Counter = "l2.hits"
	L2Misses      Counter = "l2.misses"
	L2Accesses    Counter = "l2.accesses"
	L2RemoteHits  Counter = "l2.remote_hits" // served by another chiplet's L2 (HMG home node)
	L2Writebacks  Counter = "l2.writebacks"
	L2WriteThru   Counter = "l2.write_through"
	L2Invalidates Counter = "l2.invalidated_lines"
	L2FlushOps    Counter = "l2.flush_ops"
	L2InvOps      Counter = "l2.invalidate_ops"
	L3Hits        Counter = "l3.hits"
	L3Misses      Counter = "l3.misses"
	L3Accesses    Counter = "l3.accesses"
	L3Writebacks  Counter = "l3.writebacks"
	DRAMReads     Counter = "dram.reads"
	DRAMWrites    Counter = "dram.writes"
	LDSAccesses   Counter = "lds.accesses"
)

// Network counters, measured in flits (Figure 10's three classes).
const (
	FlitsL1L2   Counter = "noc.flits.l1_l2"
	FlitsL2L3   Counter = "noc.flits.l2_l3"
	FlitsRemote Counter = "noc.flits.remote"
	// FlitsInterGPU counts remote flits that additionally crossed the
	// inter-GPU interconnect (MGPU systems; a subset of FlitsRemote).
	FlitsInterGPU Counter = "noc.flits.inter_gpu"
)

// Synchronization and command-processor counters.
const (
	AcquiresIssued  Counter = "sync.acquires"
	ReleasesIssued  Counter = "sync.releases"
	AcquiresElided  Counter = "sync.acquires_elided"
	ReleasesElided  Counter = "sync.releases_elided"
	SyncCycles      Counter = "sync.exposed_cycles"
	CPMessages      Counter = "cp.messages"
	KernelsLaunched Counter = "cp.kernels_launched"
	TableCoarsening Counter = "cp.table_coarsenings"
	TablePeakUse    Counter = "cp.table_peak_entries"
	DirEvictions    Counter = "hmg.directory_evictions"
	DirInvals       Counter = "hmg.directory_invalidations"
)

// Fault-injection and CP-watchdog counters (internal/faults). Additive
// per-run tallies of what the injector fired and how the watchdog reacted.
const (
	FaultReqDrops         Counter = "faults.req_drops"
	FaultAckDrops         Counter = "faults.ack_drops"
	FaultAckDelays        Counter = "faults.ack_delays"
	FaultDelayCycles      Counter = "faults.ack_delay_cycles"
	FaultLinkWindows      Counter = "faults.link_windows"
	FaultTableParity      Counter = "faults.table_parity"
	WatchdogRetries       Counter = "cp.watchdog_retries"
	WatchdogBackoffCycles Counter = "cp.watchdog_backoff_cycles"
	WatchdogDegradations  Counter = "cp.watchdog_degradations"
	TableParityResets     Counter = "cp.table_parity_resets"
	TableDegradations     Counter = "cp.table_degradations"
	FlitsRemoteDegraded   Counter = "noc.flits.remote_degraded"
)

// Experiment-farm counters (internal/farm). These are absolute levels
// mirrored from the farm's own atomic tallies, not additive per-run
// deltas, so they carry max semantics.
const (
	FarmJobs        Counter = "farm.jobs"
	FarmCacheHits   Counter = "farm.cache_hits"
	FarmCacheMisses Counter = "farm.cache_misses"
	FarmDedupWaits  Counter = "farm.dedup_waits"
	FarmRuns        Counter = "farm.runs"
	FarmErrors      Counter = "farm.errors"
	FarmPanics      Counter = "farm.panics"
	FarmEvictions   Counter = "farm.cache_evictions"
	FarmRetries     Counter = "farm.retries"
	FarmTimeouts    Counter = "farm.timeouts"
	FarmStoreHits   Counter = "farm.store_hits"
	FarmStorePuts   Counter = "farm.store_puts"
	FarmStoreErrors Counter = "farm.store_errors"
)

// Timing counters.
const (
	TotalCycles   Counter = "time.total_cycles"
	ComputeCycles Counter = "time.compute_cycles"
	MemoryCycles  Counter = "time.memory_cycles"
	StaleReads    Counter = "check.stale_reads" // functional checker violations; must be 0
)

// maxSemantics registers the counters that are levels or peaks rather than
// additive tallies: a running high-water mark (TablePeakUse), a cumulative
// value written with Set each launch (TableCoarsening), or an end-of-run
// absolute (TotalCycles, StaleReads). Combining two observations of such a
// counter must take the maximum — summing two peaks produces a bogus peak —
// and a windowed delta must report the current absolute value.
var maxSemantics = map[Counter]bool{
	TablePeakUse:    true,
	TableCoarsening: true,
	TotalCycles:     true,
	StaleReads:      true,
	FarmJobs:        true,
	FarmCacheHits:   true,
	FarmCacheMisses: true,
	FarmDedupWaits:  true,
	FarmRuns:        true,
	FarmErrors:      true,
	FarmPanics:      true,
	FarmEvictions:   true,
	FarmRetries:     true,
	FarmTimeouts:    true,
	FarmStoreHits:   true,
	FarmStorePuts:   true,
	FarmStoreErrors: true,
}

// IsMax reports whether counter c carries peak/level semantics: Merge takes
// the maximum for it, and DeltaFrom reports its absolute value.
func IsMax(c Counter) bool { return maxSemantics[c] }

// Sheet is a set of named counters. The zero value is ready to use after
// a call to make via New; methods on a nil Sheet are no-ops so components
// can be run without instrumentation.
type Sheet struct {
	v map[Counter]uint64
}

// New returns an empty Sheet.
func New() *Sheet { return &Sheet{v: make(map[Counter]uint64)} }

// Add increments counter c by n.
func (s *Sheet) Add(c Counter, n uint64) {
	if s == nil {
		return
	}
	s.v[c] += n
}

// Inc increments counter c by one.
func (s *Sheet) Inc(c Counter) { s.Add(c, 1) }

// Max raises counter c to n if n is larger than the current value.
func (s *Sheet) Max(c Counter, n uint64) {
	if s == nil {
		return
	}
	if s.v[c] < n {
		s.v[c] = n
	}
}

// Get returns the value of counter c (zero if never incremented).
func (s *Sheet) Get(c Counter) uint64 {
	if s == nil {
		return 0
	}
	return s.v[c]
}

// Set overwrites counter c with n.
func (s *Sheet) Set(c Counter, n uint64) {
	if s == nil {
		return
	}
	s.v[c] = n
}

// Merge combines every counter of o into s: additive counters sum, while
// peak/level counters (IsMax) take the maximum — merging two sheets must not
// add their table-occupancy peaks together.
func (s *Sheet) Merge(o *Sheet) {
	if s == nil || o == nil {
		return
	}
	for c, n := range o.v {
		if maxSemantics[c] {
			if s.v[c] < n {
				s.v[c] = n
			}
			continue
		}
		s.v[c] += n
	}
}

// DeltaFrom returns the counter activity since snapshot prev (typically a
// Clone taken at a kernel boundary): additive counters report the increase,
// peak/level counters (IsMax) report their current absolute value. Zero
// entries are omitted, so merging every windowed delta of a run (sums for
// additive counters, maxima for peak counters) reconstructs the run total.
func (s *Sheet) DeltaFrom(prev *Sheet) *Sheet {
	d := New()
	if s == nil {
		return d
	}
	for c, n := range s.v {
		if maxSemantics[c] {
			if n != 0 {
				d.v[c] = n
			}
			continue
		}
		if inc := n - prev.Get(c); inc != 0 {
			d.v[c] = inc
		}
	}
	return d
}

// Equal reports whether s and o hold identical nonzero counters.
func (s *Sheet) Equal(o *Sheet) bool {
	count := func(sh *Sheet) int {
		n := 0
		if sh != nil {
			for _, v := range sh.v {
				if v != 0 {
					n++
				}
			}
		}
		return n
	}
	if count(s) != count(o) {
		return false
	}
	if s == nil {
		return true
	}
	for c, n := range s.v {
		if n != 0 && o.Get(c) != n {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of s.
func (s *Sheet) Clone() *Sheet {
	c := New()
	if s != nil {
		for k, v := range s.v {
			c.v[k] = v
		}
	}
	return c
}

// Reset zeroes all counters.
func (s *Sheet) Reset() {
	if s == nil {
		return
	}
	for k := range s.v {
		delete(s.v, k)
	}
}

// Counters returns the set of counters with nonzero values, sorted by name.
func (s *Sheet) Counters() []Counter {
	if s == nil {
		return nil
	}
	out := make([]Counter, 0, len(s.v))
	for c := range s.v {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the sheet as an aligned table, one counter per line.
func (s *Sheet) String() string {
	var b strings.Builder
	for _, c := range s.Counters() {
		fmt.Fprintf(&b, "%-28s %12d\n", c, s.v[c])
	}
	return b.String()
}

// MarshalJSON renders the sheet as a flat JSON object of counters.
func (s *Sheet) MarshalJSON() ([]byte, error) {
	if s == nil {
		return []byte("null"), nil
	}
	return json.Marshal(s.v)
}

// UnmarshalJSON restores a sheet marshaled by MarshalJSON.
func (s *Sheet) UnmarshalJSON(b []byte) error {
	if s.v == nil {
		s.v = make(map[Counter]uint64)
	}
	return json.Unmarshal(b, &s.v)
}

// Ratio returns a/b as float64, or 0 when b is 0.
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
