// Package stats collects simulation counters.
//
// Every component of the simulated machine (caches, links, DRAM, command
// processors) increments named counters in a Sheet. Sheets are cheap to
// merge, diff, and print, and the experiment harness turns them into the
// rows of the paper's figures.
package stats

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Counter identifies one statistic: a dense index into the sheet's counter
// array. The access-path hot loops bump several counters per cache line, so
// a counter is an integer — Sheet.Add is an array increment — while the
// external name (used in JSON, traces, and figures) lives in a parallel
// name table. Counters are grouped by component so the energy model and the
// figure harness can aggregate by subsystem.
type Counter int32

// Cache and memory counters.
const (
	L1Hits Counter = iota
	L1Misses
	L1Accesses
	L2Hits
	L2Misses
	L2Accesses
	L2RemoteHits // served by another chiplet's L2 (HMG home node)
	L2Writebacks
	L2WriteThru
	L2Invalidates
	L2FlushOps
	L2InvOps
	L3Hits
	L3Misses
	L3Accesses
	L3Writebacks
	DRAMReads
	DRAMWrites
	LDSAccesses

	// Network counters, measured in flits (Figure 10's three classes).
	FlitsL1L2
	FlitsL2L3
	FlitsRemote
	// FlitsInterGPU counts remote flits that additionally crossed the
	// inter-GPU interconnect (MGPU systems; a subset of FlitsRemote).
	FlitsInterGPU

	// Synchronization and command-processor counters.
	AcquiresIssued
	ReleasesIssued
	AcquiresElided
	ReleasesElided
	SyncCycles
	CPMessages
	KernelsLaunched
	TableCoarsening
	TablePeakUse
	DirEvictions
	DirInvals

	// Fault-injection and CP-watchdog counters (internal/faults). Additive
	// per-run tallies of what the injector fired and how the watchdog
	// reacted.
	FaultReqDrops
	FaultAckDrops
	FaultAckDelays
	FaultDelayCycles
	FaultLinkWindows
	FaultTableParity
	WatchdogRetries
	WatchdogBackoffCycles
	WatchdogDegradations
	TableParityResets
	TableDegradations
	FlitsRemoteDegraded

	// Experiment-farm counters (internal/farm). These are absolute levels
	// mirrored from the farm's own atomic tallies, not additive per-run
	// deltas, so they carry max semantics.
	FarmJobs
	FarmCacheHits
	FarmCacheMisses
	FarmDedupWaits
	FarmRuns
	FarmErrors
	FarmPanics
	FarmEvictions
	FarmRetries
	FarmTimeouts
	FarmStoreHits
	FarmStorePuts
	FarmStoreErrors

	// Timing counters.
	TotalCycles
	ComputeCycles
	MemoryCycles
	StaleReads // functional checker violations; must be 0

	numCounters // sentinel: the dense array size
)

// counterNames maps each Counter to its external name. The names are the
// stable serialization format: JSON sheets, traces, and the figure harness
// all key on them, never on the integer values.
var counterNames = [numCounters]string{
	L1Hits:        "l1.hits",
	L1Misses:      "l1.misses",
	L1Accesses:    "l1.accesses",
	L2Hits:        "l2.hits",
	L2Misses:      "l2.misses",
	L2Accesses:    "l2.accesses",
	L2RemoteHits:  "l2.remote_hits",
	L2Writebacks:  "l2.writebacks",
	L2WriteThru:   "l2.write_through",
	L2Invalidates: "l2.invalidated_lines",
	L2FlushOps:    "l2.flush_ops",
	L2InvOps:      "l2.invalidate_ops",
	L3Hits:        "l3.hits",
	L3Misses:      "l3.misses",
	L3Accesses:    "l3.accesses",
	L3Writebacks:  "l3.writebacks",
	DRAMReads:     "dram.reads",
	DRAMWrites:    "dram.writes",
	LDSAccesses:   "lds.accesses",

	FlitsL1L2:     "noc.flits.l1_l2",
	FlitsL2L3:     "noc.flits.l2_l3",
	FlitsRemote:   "noc.flits.remote",
	FlitsInterGPU: "noc.flits.inter_gpu",

	AcquiresIssued:  "sync.acquires",
	ReleasesIssued:  "sync.releases",
	AcquiresElided:  "sync.acquires_elided",
	ReleasesElided:  "sync.releases_elided",
	SyncCycles:      "sync.exposed_cycles",
	CPMessages:      "cp.messages",
	KernelsLaunched: "cp.kernels_launched",
	TableCoarsening: "cp.table_coarsenings",
	TablePeakUse:    "cp.table_peak_entries",
	DirEvictions:    "hmg.directory_evictions",
	DirInvals:       "hmg.directory_invalidations",

	FaultReqDrops:         "faults.req_drops",
	FaultAckDrops:         "faults.ack_drops",
	FaultAckDelays:        "faults.ack_delays",
	FaultDelayCycles:      "faults.ack_delay_cycles",
	FaultLinkWindows:      "faults.link_windows",
	FaultTableParity:      "faults.table_parity",
	WatchdogRetries:       "cp.watchdog_retries",
	WatchdogBackoffCycles: "cp.watchdog_backoff_cycles",
	WatchdogDegradations:  "cp.watchdog_degradations",
	TableParityResets:     "cp.table_parity_resets",
	TableDegradations:     "cp.table_degradations",
	FlitsRemoteDegraded:   "noc.flits.remote_degraded",

	FarmJobs:        "farm.jobs",
	FarmCacheHits:   "farm.cache_hits",
	FarmCacheMisses: "farm.cache_misses",
	FarmDedupWaits:  "farm.dedup_waits",
	FarmRuns:        "farm.runs",
	FarmErrors:      "farm.errors",
	FarmPanics:      "farm.panics",
	FarmEvictions:   "farm.cache_evictions",
	FarmRetries:     "farm.retries",
	FarmTimeouts:    "farm.timeouts",
	FarmStoreHits:   "farm.store_hits",
	FarmStorePuts:   "farm.store_puts",
	FarmStoreErrors: "farm.store_errors",

	TotalCycles:   "time.total_cycles",
	ComputeCycles: "time.compute_cycles",
	MemoryCycles:  "time.memory_cycles",
	StaleReads:    "check.stale_reads",
}

// counterByName inverts counterNames for UnmarshalJSON and tooling.
var counterByName = func() map[string]Counter {
	m := make(map[string]Counter, numCounters)
	for c, name := range counterNames {
		m[name] = Counter(c)
	}
	return m
}()

// String returns the counter's external name.
func (c Counter) String() string {
	if c < 0 || c >= numCounters {
		return fmt.Sprintf("counter(%d)", int32(c))
	}
	return counterNames[c]
}

// CounterByName resolves an external counter name.
func CounterByName(name string) (Counter, bool) {
	c, ok := counterByName[name]
	return c, ok
}

// maxSemantics registers the counters that are levels or peaks rather than
// additive tallies: a running high-water mark (TablePeakUse), a cumulative
// value written with Set each launch (TableCoarsening), or an end-of-run
// absolute (TotalCycles, StaleReads). Combining two observations of such a
// counter must take the maximum — summing two peaks produces a bogus peak —
// and a windowed delta must report the current absolute value.
var maxSemantics = func() [numCounters]bool {
	var m [numCounters]bool
	for _, c := range []Counter{
		TablePeakUse, TableCoarsening, TotalCycles, StaleReads,
		FarmJobs, FarmCacheHits, FarmCacheMisses, FarmDedupWaits,
		FarmRuns, FarmErrors, FarmPanics, FarmEvictions, FarmRetries,
		FarmTimeouts, FarmStoreHits, FarmStorePuts, FarmStoreErrors,
	} {
		m[c] = true
	}
	return m
}()

// IsMax reports whether counter c carries peak/level semantics: Merge takes
// the maximum for it, and DeltaFrom reports its absolute value.
//
//cpelide:noalloc
func IsMax(c Counter) bool { return c >= 0 && c < numCounters && maxSemantics[c] }

const touchedWords = (int(numCounters) + 63) / 64

// Sheet is a set of named counters, stored as a dense array indexed by
// Counter with a touched bitset (a touched-but-zero counter still appears in
// JSON and Counters, matching the former map semantics). The zero value is
// ready to use; methods on a nil Sheet are no-ops so components can be run
// without instrumentation.
type Sheet struct {
	v       [numCounters]uint64
	touched [touchedWords]uint64

	// extra preserves counters unmarshaled from JSON whose names this build
	// does not know (e.g. a results file from a newer schema). Nil in every
	// sheet that never saw such a name.
	extra map[string]uint64
}

// New returns an empty Sheet.
func New() *Sheet { return &Sheet{} }

//cpelide:noalloc
func (s *Sheet) touch(c Counter) { s.touched[c>>6] |= 1 << (c & 63) }

//cpelide:noalloc
func (s *Sheet) isTouched(c Counter) bool { return s.touched[c>>6]&(1<<(c&63)) != 0 }

// Add increments counter c by n.
//
//cpelide:noalloc
func (s *Sheet) Add(c Counter, n uint64) {
	if s == nil || c < 0 || c >= numCounters {
		return
	}
	s.v[c] += n
	s.touch(c)
}

// Inc increments counter c by one.
//
//cpelide:noalloc
func (s *Sheet) Inc(c Counter) { s.Add(c, 1) }

// Max raises counter c to n if n is larger than the current value.
//
//cpelide:noalloc
func (s *Sheet) Max(c Counter, n uint64) {
	if s == nil || c < 0 || c >= numCounters {
		return
	}
	if s.v[c] < n {
		s.v[c] = n
		// Touch only on an actual raise, mirroring the former map semantics:
		// a Max that does not win leaves an absent counter absent.
		s.touch(c)
	}
}

// Get returns the value of counter c (zero if never incremented).
//
//cpelide:noalloc
func (s *Sheet) Get(c Counter) uint64 {
	if s == nil || c < 0 || c >= numCounters {
		return 0
	}
	return s.v[c]
}

// Set overwrites counter c with n.
//
//cpelide:noalloc
func (s *Sheet) Set(c Counter, n uint64) {
	if s == nil || c < 0 || c >= numCounters {
		return
	}
	s.v[c] = n
	s.touch(c)
}

// Merge combines every counter of o into s: additive counters sum, while
// peak/level counters (IsMax) take the maximum — merging two sheets must not
// add their table-occupancy peaks together.
func (s *Sheet) Merge(o *Sheet) {
	if s == nil || o == nil {
		return
	}
	for c := Counter(0); c < numCounters; c++ {
		if !o.isTouched(c) {
			continue
		}
		n := o.v[c]
		if maxSemantics[c] {
			if s.v[c] < n {
				s.v[c] = n
			}
		} else {
			s.v[c] += n
		}
		s.touch(c)
	}
	for name, n := range o.extra {
		s.addExtra(name, n)
	}
}

func (s *Sheet) addExtra(name string, n uint64) {
	if s.extra == nil {
		s.extra = make(map[string]uint64)
	}
	s.extra[name] += n
}

// DeltaFrom returns the counter activity since snapshot prev (typically a
// Clone taken at a kernel boundary): additive counters report the increase,
// peak/level counters (IsMax) report their current absolute value. Zero
// entries are omitted, so merging every windowed delta of a run (sums for
// additive counters, maxima for peak counters) reconstructs the run total.
func (s *Sheet) DeltaFrom(prev *Sheet) *Sheet {
	d := New()
	if s == nil {
		return d
	}
	for c := Counter(0); c < numCounters; c++ {
		if !s.isTouched(c) {
			continue
		}
		n := s.v[c]
		if maxSemantics[c] {
			if n != 0 {
				d.v[c] = n
				d.touch(c)
			}
			continue
		}
		if inc := n - prev.Get(c); inc != 0 {
			d.v[c] = inc
			d.touch(c)
		}
	}
	return d
}

// Equal reports whether s and o hold identical nonzero counters.
func (s *Sheet) Equal(o *Sheet) bool {
	for c := Counter(0); c < numCounters; c++ {
		if s.Get(c) != o.Get(c) {
			return false
		}
	}
	return extraEqual(s, o)
}

func extraEqual(s, o *Sheet) bool {
	get := func(sh *Sheet, name string) uint64 {
		if sh == nil {
			return 0
		}
		return sh.extra[name]
	}
	if s != nil {
		for name, n := range s.extra {
			if n != 0 && get(o, name) != n {
				return false
			}
		}
	}
	if o != nil {
		for name, n := range o.extra {
			if n != 0 && get(s, name) != n {
				return false
			}
		}
	}
	return true
}

// Clone returns a deep copy of s.
func (s *Sheet) Clone() *Sheet {
	c := New()
	if s != nil {
		*c = *s
		if s.extra != nil {
			c.extra = make(map[string]uint64, len(s.extra))
			for k, v := range s.extra {
				c.extra[k] = v
			}
		}
	}
	return c
}

// Reset zeroes all counters.
func (s *Sheet) Reset() {
	if s == nil {
		return
	}
	*s = Sheet{}
}

// Counters returns the touched counters, sorted by name.
func (s *Sheet) Counters() []Counter {
	if s == nil {
		return nil
	}
	var out []Counter
	for c := Counter(0); c < numCounters; c++ {
		if s.isTouched(c) {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return counterNames[out[i]] < counterNames[out[j]] })
	return out
}

// String renders the sheet as an aligned table, one counter per line.
func (s *Sheet) String() string {
	var b strings.Builder
	for _, c := range s.Counters() {
		fmt.Fprintf(&b, "%-28s %12d\n", c, s.v[c])
	}
	return b.String()
}

// MarshalJSON renders the sheet as a flat JSON object of counters, keyed by
// external name (encoding/json sorts the keys).
func (s *Sheet) MarshalJSON() ([]byte, error) {
	if s == nil {
		return []byte("null"), nil
	}
	m := make(map[string]uint64, numCounters)
	for c := Counter(0); c < numCounters; c++ {
		if s.isTouched(c) {
			m[counterNames[c]] = s.v[c]
		}
	}
	for name, n := range s.extra {
		m[name] = n
	}
	return json.Marshal(m)
}

// UnmarshalJSON restores a sheet marshaled by MarshalJSON. Names this build
// does not know are preserved verbatim (and re-emitted by MarshalJSON).
func (s *Sheet) UnmarshalJSON(b []byte) error {
	var m map[string]uint64
	if err := json.Unmarshal(b, &m); err != nil {
		return err
	}
	for name, n := range m {
		if c, ok := counterByName[name]; ok {
			s.v[c] = n
			s.touch(c)
			continue
		}
		if s.extra == nil {
			s.extra = make(map[string]uint64)
		}
		s.extra[name] = n
	}
	return nil
}

// Ratio returns a/b as float64, or 0 when b is 0.
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
