package kernels

import (
	"testing"

	"repro/internal/mem"
)

func TestAllocatorPageAlignment(t *testing.T) {
	a := NewAllocator(0x1000_0000, 4096)
	d1 := a.Alloc("x", 100, 4) // 400 bytes -> one page
	d2 := a.Alloc("y", 100, 4)
	if d1.Base%4096 != 0 || d2.Base%4096 != 0 {
		t.Error("allocations not page aligned")
	}
	if d2.Base != d1.Base+4096 {
		t.Errorf("second allocation at %#x", d2.Base)
	}
	if d1.Range().Overlaps(d2.Range()) {
		t.Error("allocations overlap")
	}
	if a.Used() != d2.Base+4096 {
		t.Errorf("Used = %#x", a.Used())
	}
	if d1.Elems() != 100 {
		t.Errorf("Elems = %d", d1.Elems())
	}
}

func mkDS(t *testing.T, elems, elemSize int) *DataStructure {
	t.Helper()
	return NewAllocator(0x1000_0000, 4096).Alloc("d", elems, elemSize)
}

func TestKernelValidate(t *testing.T) {
	d := mkDS(t, 1024, 4)
	good := &Kernel{
		Name: "k", WGs: 8,
		Args: []Arg{{DS: d, Mode: Read, Pattern: Linear}},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid kernel rejected: %v", err)
	}
	bad := []*Kernel{
		{Name: "", WGs: 8, Args: good.Args},
		{Name: "k", WGs: 0, Args: good.Args},
		{Name: "k", WGs: 8},
		{Name: "k", WGs: 8, Args: []Arg{{DS: nil, Mode: Read}}},
		{Name: "k", WGs: 8, Args: []Arg{{DS: d, Pattern: Strided, Stride: 0}}},
		{Name: "k", WGs: 8, Args: []Arg{{DS: d, Mode: ReadWrite, Pattern: Broadcast}}},
		{Name: "k", WGs: 8, Args: []Arg{{DS: d, Mode: ReadWrite, Pattern: Indirect}}},
	}
	for i, k := range bad {
		if err := k.Validate(); err == nil {
			t.Errorf("bad kernel %d accepted", i)
		}
	}
}

func TestPartitionCoversDisjointly(t *testing.T) {
	for _, wgs := range []int{1, 7, 480, 481} {
		for _, nparts := range []int{1, 2, 4, 6, 7} {
			prev := 0
			for p := 0; p < nparts; p++ {
				lo, hi := Partition(wgs, nparts, p)
				if lo != prev {
					t.Fatalf("wgs=%d nparts=%d: gap/overlap at part %d", wgs, nparts, p)
				}
				prev = hi
			}
			if prev != wgs {
				t.Fatalf("wgs=%d nparts=%d: cover ends at %d", wgs, nparts, prev)
			}
		}
	}
}

func TestPartitionByteRangesDisjointCover(t *testing.T) {
	d := mkDS(t, 100000, 4)
	const wgs, nparts = 480, 4
	var prev mem.Addr = d.Base
	for p := 0; p < nparts; p++ {
		r := PartitionByteRange(d, wgs, nparts, p, 64)
		if r.Lo != prev {
			t.Fatalf("partition %d starts at %#x, want %#x", p, r.Lo, prev)
		}
		if r.Lo%64 != 0 {
			t.Fatalf("partition %d not line-aligned", p)
		}
		prev = r.Hi
	}
	if prev < d.Base+mem.Addr(d.Bytes)-64 || prev > d.Base+mem.Addr(d.Bytes)+64 {
		t.Fatalf("cover ends at %#x, structure ends at %#x", prev, d.Base+mem.Addr(d.Bytes))
	}
}

// collect gathers all accesses a kernel generates for one chiplet slot.
func collect(k *Kernel, inst, part, nparts int) []Access {
	var out []Access
	Generate(k, inst, 99, part, nparts, 60, 64, func(a Access) { out = append(out, a) })
	return out
}

// TestGeneratedAccessesWithinDeclaredRanges is the contract between the
// generator and the CP metadata: every generated access must fall inside
// the ranges hipSetAccessModeRange declares for that chiplet.
func TestGeneratedAccessesWithinDeclaredRanges(t *testing.T) {
	alloc := NewAllocator(0x1000_0000, 4096)
	in := alloc.Alloc("in", 64*1024, 4)
	out := alloc.Alloc("out", 64*1024, 4)
	idx := alloc.Alloc("idx", 16*1024, 4)
	k := &Kernel{
		Name: "mix", WGs: 96,
		Args: []Arg{
			{DS: in, Mode: Read, Pattern: Stencil, HaloLines: 3},
			{DS: out, Mode: ReadWrite, Pattern: Linear},
			{DS: idx, Mode: Read, Pattern: Indirect, TouchesPerLine: 2},
		},
	}
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	const nparts = 4
	for part := 0; part < nparts; part++ {
		declared := make([]mem.RangeSet, len(k.Args))
		for ai := range k.Args {
			declared[ai] = ArgRanges(k, ai, part, nparts, 64)
		}
		for _, a := range collect(k, 0, part, nparts) {
			if !declared[a.Arg].Contains(a.Line) {
				t.Fatalf("part %d: access %#x (arg %d) outside declared %v",
					part, a.Line, a.Arg, declared[a.Arg])
			}
		}
	}
}

// TestNoCrossPartitionWriteSharing: distinct chiplet partitions must never
// write the same cache line (the page-aligned, line-sliced partitioning that
// prevents false sharing).
func TestNoCrossPartitionWriteSharing(t *testing.T) {
	alloc := NewAllocator(0x1000_0000, 4096)
	d := alloc.Alloc("d", 100000, 4) // deliberately not a multiple of WGs
	k := &Kernel{
		Name: "w", WGs: 96,
		Args: []Arg{{DS: d, Mode: ReadWrite, Pattern: Linear, ReadModifyWrite: true}},
	}
	writers := map[mem.Addr]int{}
	for part := 0; part < 4; part++ {
		for _, a := range collect(k, 0, part, 4) {
			if !a.Write {
				continue
			}
			if prev, ok := writers[a.Line]; ok && prev != part {
				t.Fatalf("line %#x written by partitions %d and %d", a.Line, prev, part)
			}
			writers[a.Line] = part
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	alloc := NewAllocator(0x1000_0000, 4096)
	d := alloc.Alloc("d", 32*1024, 4)
	k := &Kernel{
		Name: "g", WGs: 48,
		Args: []Arg{{DS: d, Mode: Read, Pattern: Indirect, TouchesPerLine: 3}},
	}
	a := collect(k, 2, 1, 4)
	b := collect(k, 2, 1, 4)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("access %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Different dynamic instance must reshuffle indirect targets.
	c := collect(k, 3, 1, 4)
	same := 0
	for i := range a {
		if a[i].Line == c[i].Line {
			same++
		}
	}
	if same == len(a) {
		t.Error("indirect pattern identical across kernel instances")
	}
}

func TestIndirectScatterIsAtomic(t *testing.T) {
	alloc := NewAllocator(0x1000_0000, 4096)
	d := alloc.Alloc("d", 32*1024, 4)
	k := &Kernel{
		Name: "s", WGs: 16,
		Args: []Arg{{DS: d, Mode: ReadWrite, Pattern: Indirect, ReadModifyWrite: true}},
	}
	accs := collect(k, 0, 0, 2)
	if len(accs) == 0 {
		t.Fatal("no accesses")
	}
	for _, a := range accs {
		if !a.Atomic || !a.Write {
			t.Fatalf("scatter access not atomic write: %+v", a)
		}
	}
}

func TestBroadcastSweepsWholeStructurePerChiplet(t *testing.T) {
	alloc := NewAllocator(0x1000_0000, 4096)
	d := alloc.Alloc("w", 16*1024, 4) // 64 KiB = 1024 lines
	k := &Kernel{
		Name: "b", WGs: 32,
		Args: []Arg{{DS: d, Mode: Read, Pattern: Broadcast, Sweeps: 2}},
	}
	accs := collect(k, 0, 1, 4)
	if len(accs) != 2048 {
		t.Fatalf("broadcast accesses = %d, want 2*1024", len(accs))
	}
	seen := map[mem.Addr]int{}
	for _, a := range accs {
		if a.Write {
			t.Fatal("broadcast generated a write")
		}
		seen[a.Line]++
	}
	if len(seen) != 1024 {
		t.Fatalf("broadcast covered %d distinct lines", len(seen))
	}
}

func TestStridedSkipsLines(t *testing.T) {
	alloc := NewAllocator(0x1000_0000, 4096)
	d := alloc.Alloc("d", 16*1024, 4) // 1024 lines
	k := &Kernel{
		Name: "st", WGs: 8,
		Args: []Arg{{DS: d, Mode: Read, Pattern: Strided, Stride: 4}},
	}
	accs := collect(k, 0, 0, 1)
	if len(accs) < 200 || len(accs) > 300 {
		t.Fatalf("strided accesses = %d, want ~256", len(accs))
	}
}

func TestWorkloadValidateAndFootprint(t *testing.T) {
	alloc := NewAllocator(0x1000_0000, 4096)
	d := alloc.Alloc("d", 1024, 4)
	k := &Kernel{Name: "k", WGs: 4, Args: []Arg{{DS: d, Mode: Read, Pattern: Linear}}}
	w := &Workload{Name: "w", Structures: []*DataStructure{d}, Sequence: []*Kernel{k, k}}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.FootprintBytes() != 4096 {
		t.Errorf("footprint = %d", w.FootprintBytes())
	}
	if w.Bounds() != d.Range() {
		t.Errorf("bounds = %v", w.Bounds())
	}
	if err := (&Workload{Name: "e"}).Validate(); err == nil {
		t.Error("empty workload accepted")
	}
}
