package kernels

import (
	"fmt"
	"strings"
)

// FusionConfig bounds the kernel-fusion transform the way real fusion is
// bounded by register and LDS pressure (Section VI: "kernel fusion can
// increase register and LDS pressure and may limit parallelism").
type FusionConfig struct {
	// MaxArgs caps the fused kernel's unique data structures (default 8).
	MaxArgs int
	// MaxLDSBytes caps the fused kernel's combined scratchpad (default
	// 64 KiB, one CU's LDS).
	MaxLDSBytes int
}

func (c FusionConfig) withDefaults() FusionConfig {
	if c.MaxArgs <= 0 {
		c.MaxArgs = 8
	}
	if c.MaxLDSBytes <= 0 {
		c.MaxLDSBytes = 64 << 10
	}
	return c
}

// FuseAdjacent applies software kernel fusion to a workload: consecutive
// kernels merge into one launch when it is safe and within pressure limits,
// eliminating the implicit synchronization between them — the software
// alternative to CPElide that Section VI discusses.
//
// Fusion is safe only when neither kernel reads, across partition
// boundaries, data the other writes: a fused halo read of a value produced
// in the same launch would be an intra-kernel race. Elementwise
// producer-consumer chains (linear patterns with matching partitioning)
// fuse; stencil/gather/broadcast consumers of freshly written data do not.
func FuseAdjacent(w *Workload, cfg FusionConfig) *Workload {
	cfg = cfg.withDefaults()
	out := &Workload{
		Name:       w.Name + "+fused",
		Class:      w.Class,
		Structures: w.Structures,
		Seed:       w.Seed,
	}
	fusedCache := map[[2]*Kernel]*Kernel{}
	i := 0
	for i < len(w.Sequence) {
		k := w.Sequence[i]
		if i+1 < len(w.Sequence) {
			next := w.Sequence[i+1]
			if canFuse(k, next, cfg) {
				key := [2]*Kernel{k, next}
				f, ok := fusedCache[key]
				if !ok {
					f = fuse(k, next)
					fusedCache[key] = f
				}
				out.Sequence = append(out.Sequence, f)
				i += 2
				continue
			}
		}
		out.Sequence = append(out.Sequence, k)
		i++
	}
	return out
}

// crossPartition reports whether the pattern can touch lines outside the
// WG's own partition slice.
func crossPartition(p Pattern) bool {
	return p == Stencil || p == Indirect || p == Broadcast
}

// canFuse checks the safety and pressure conditions for fusing a directly
// after b's predecessor.
func canFuse(a, b *Kernel, cfg FusionConfig) bool {
	// Pressure limits.
	if a.LDSBytesPerWG+b.LDSBytesPerWG > cfg.MaxLDSBytes {
		return false
	}
	unique := map[*DataStructure]bool{}
	for _, arg := range a.Args {
		unique[arg.DS] = true
	}
	for _, arg := range b.Args {
		unique[arg.DS] = true
	}
	if len(unique) > cfg.MaxArgs {
		return false
	}
	// Grids must agree for the "same thread consumes its own value"
	// elementwise fusion model.
	if a.WGs != b.WGs {
		return false
	}
	// Safety: nothing written by one kernel may be read across partitions
	// (or written again non-linearly) by the other.
	writes := func(k *Kernel) map[*DataStructure]bool {
		ws := map[*DataStructure]bool{}
		for _, arg := range k.Args {
			if arg.Mode == ReadWrite {
				ws[arg.DS] = true
			}
		}
		return ws
	}
	wa, wb := writes(a), writes(b)
	for _, arg := range a.Args {
		if wb[arg.DS] && crossPartition(arg.Pattern) {
			return false
		}
	}
	for _, arg := range b.Args {
		if wa[arg.DS] && crossPartition(arg.Pattern) {
			return false
		}
	}
	// Atomic scatters synchronize at kernel scope; fusing across them
	// changes visibility, so keep them as fusion barriers.
	for _, k := range []*Kernel{a, b} {
		for _, arg := range k.Args {
			if arg.Pattern == Indirect && arg.Mode == ReadWrite {
				return false
			}
		}
	}
	return true
}

// fuse merges two fusable kernels into one launch.
func fuse(a, b *Kernel) *Kernel {
	name := a.Name + "+" + b.Name
	if strings.Count(name, "+") > 3 {
		name = fmt.Sprintf("fused(%s...)", a.Name)
	}
	f := &Kernel{
		Name:          name,
		WGs:           a.WGs,
		ComputePerWG:  a.ComputePerWG + b.ComputePerWG,
		LDSBytesPerWG: a.LDSBytesPerWG + b.LDSBytesPerWG,
		MLPFactor:     (a.MLP() + b.MLP()) / 2,
	}
	f.Args = append(f.Args, a.Args...)
	f.Args = append(f.Args, b.Args...)
	return f
}
