package kernels

import "repro/internal/mem"

// Access is one line-granularity memory access emitted by the generator.
type Access struct {
	CU    int      // CU index within the chiplet
	Line  mem.Addr // line-aligned address
	Write bool
	// Atomic marks a scatter update performed as a read-modify-write at
	// the line's home ordering point (how GPUs implement cross-WG global
	// updates in graph workloads); it bypasses the requester's L2.
	Atomic bool
	Arg    int // index into Kernel.Args
}

// Sink consumes generated accesses in program order.
type Sink func(Access)

// CUSchedule selects how a chiplet's local CP assigns its WGs to CUs.
type CUSchedule uint8

const (
	// RoundRobinCU issues WGs round-robin across the chiplet's CUs, the
	// common WG-scheduler policy (Section II-B).
	RoundRobinCU CUSchedule = iota
	// ChunkedCU gives each CU a contiguous block of WGs (LADM-style
	// locality-centric assignment), improving per-CU L1 locality for
	// patterns with spatial overlap between adjacent WGs.
	ChunkedCU
)

// cuOf maps local WG index wg of myWGs onto one of cus CUs under the
// schedule.
func (s CUSchedule) cuOf(wg, myWGs, cus int) int {
	if s == ChunkedCU && myWGs > 0 {
		cu := wg * cus / myWGs
		if cu >= cus {
			cu = cus - 1
		}
		return cu
	}
	return wg % cus
}

// Partition returns the half-open WG interval [lo, hi) assigned to chiplet
// part of nparts under static kernel-wide partitioning.
func Partition(wgs, nparts, part int) (lo, hi int) {
	return wgs * part / nparts, wgs * (part + 1) / nparts
}

// lineSlice returns WG wg's cache-line interval [lo, hi) of a structure
// with n lines split across wgs work-groups. Slicing at line granularity
// (rather than elements) keeps adjacent WGs — and therefore chiplets — from
// write-sharing a line, mirroring the paper's page-aligned allocations that
// "reduce unintentional false sharing".
func lineSlice(n, wgs, wg int) (lo, hi int) {
	return n * wg / wgs, n * (wg + 1) / wgs
}

// dsLines returns the number of cache lines d occupies.
func dsLines(d *DataStructure, lineSize int) int {
	return int((d.Bytes + uint64(lineSize) - 1) / uint64(lineSize))
}

// PartitionByteRange returns the byte range of d that chiplet partition
// part of nparts covers when a grid of wgs WGs is statically partitioned:
// the union of the partition's per-WG line slices.
func PartitionByteRange(d *DataStructure, wgs, nparts, part, lineSize int) mem.Range {
	wgLo, wgHi := Partition(wgs, nparts, part)
	if wgLo >= wgHi {
		return mem.Range{}
	}
	total := dsLines(d, lineSize)
	loLine, _ := lineSlice(total, wgs, wgLo)
	_, hiLine := lineSlice(total, wgs, wgHi-1)
	return mem.Range{
		Lo: d.Base + mem.Addr(loLine*lineSize),
		Hi: d.Base + mem.Addr(hiLine*lineSize),
	}
}

// ArgRanges returns the address ranges chiplet partition part of nparts is
// declared to access for argument arg — the metadata the paper's
// hipSetAccessModeRange passes to the global CP. Broadcast and Indirect
// arguments conservatively declare the whole structure (for Indirect,
// software "must specify all regions that may be accessed by the kernel").
func ArgRanges(k *Kernel, arg, part, nparts, lineSize int) mem.RangeSet {
	a := &k.Args[arg]
	d := a.DS
	switch a.Pattern {
	case Broadcast, Indirect:
		return mem.NewRangeSet(d.Range())
	case Linear, Strided, Stencil:
		// Partitioned: fall through to the per-chiplet byte range below.
	}
	r := PartitionByteRange(d, k.WGs, nparts, part, lineSize)
	if r.Empty() {
		return mem.RangeSet{}
	}
	if a.Pattern == Stencil && a.HaloLines > 0 {
		halo := mem.Addr(a.HaloLines * lineSize)
		if r.Lo >= d.Base+halo {
			r.Lo -= halo
		} else {
			r.Lo = d.Base
		}
		if r.Hi+halo <= d.Base+mem.Addr(d.Bytes) {
			r.Hi += halo
		} else {
			r.Hi = d.Base + mem.Addr(d.Bytes)
		}
	}
	return mem.NewRangeSet(r)
}

// splitmix64 advances and scrambles a seed; used for deterministic
// per-(workload, kernel instance, WG) randomness in indirect patterns.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// rng is a xorshift64* stream for indirect-access generation.
type rng struct{ s uint64 }

func newRNG(seed uint64) rng {
	s := splitmix64(seed)
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	return rng{s: s}
}

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s * 0x2545f4914f6cdd1d
}

// Generate emits kernel k's memory accesses for the WGs that static
// partitioning assigns to chiplet part of nparts, distributing WGs
// round-robin over cus CUs. inst is the dynamic kernel index (it seeds
// indirect patterns) and seed is the workload seed. Accesses are emitted in
// WG order, matching the local CP's round-robin dispatch.
//
// The emitted trace is deterministic for a given (k, inst, seed, part,
// nparts, cus, lineSize).
func Generate(k *Kernel, inst int, seed uint64, part, nparts, cus, lineSize int, sink Sink) {
	GenerateScheduled(k, inst, seed, part, nparts, cus, lineSize, RoundRobinCU, sink)
}

// GenerateScheduled is Generate with an explicit WG-to-CU schedule.
func GenerateScheduled(k *Kernel, inst int, seed uint64, part, nparts, cus, lineSize int, sched CUSchedule, sink Sink) {
	shift := uint(0)
	for 1<<shift != lineSize {
		shift++
	}
	wgLo, wgHi := Partition(k.WGs, nparts, part)
	myWGs := wgHi - wgLo
	for wg := wgLo; wg < wgHi; wg++ {
		cu := sched.cuOf(wg-wgLo, myWGs, cus)
		for ai := range k.Args {
			a := &k.Args[ai]
			d := a.DS
			switch a.Pattern {
			case Broadcast:
				// Handled once per chiplet below, not per WG.
				continue
			case Indirect:
				genIndirect(k, a, ai, inst, seed, wg, cu, shift, sink)
				continue
			case Linear, Strided, Stencil:
				// Partitioned linear walk below.
			}
			lo, hi := lineSlice(dsLines(d, lineSize), k.WGs, wg)
			if lo >= hi {
				continue
			}
			loLine := d.Base + mem.Addr(lo*lineSize)
			hiLine := d.Base + mem.Addr((hi-1)*lineSize)
			stride := 1
			if a.Pattern == Strided && a.Stride > 1 {
				stride = a.Stride
			}
			// Stencil halo: read-only lines borrowed from the neighboring
			// slices on both sides.
			if a.Pattern == Stencil && a.HaloLines > 0 {
				for h := 1; h <= a.HaloLines; h++ {
					off := mem.Addr(h * lineSize)
					if loLine >= d.Base+off {
						sink(Access{CU: cu, Line: loLine - off, Write: false, Arg: ai})
					}
					if hiLine+off < d.Base+mem.Addr(d.Bytes) {
						sink(Access{CU: cu, Line: hiLine + off, Write: false, Arg: ai})
					}
				}
			}
			for line := loLine; line <= hiLine; line += mem.Addr(stride * lineSize) {
				switch {
				case a.Mode == Read:
					sink(Access{CU: cu, Line: line, Write: false, Arg: ai})
				case a.ReadModifyWrite:
					sink(Access{CU: cu, Line: line, Write: false, Arg: ai})
					sink(Access{CU: cu, Line: line, Write: true, Arg: ai})
				default:
					sink(Access{CU: cu, Line: line, Write: true, Arg: ai})
				}
			}
		}
	}

	// Broadcast arguments: Sweeps full read passes per chiplet, spread
	// round-robin over the CUs. This captures shared-weight behavior: the
	// first pass fills the chiplet L2, later passes (and later kernels, if
	// nothing invalidates the L2) hit.
	if wgLo < wgHi {
		for ai := range k.Args {
			a := &k.Args[ai]
			if a.Pattern != Broadcast {
				continue
			}
			d := a.DS
			lines := int((d.Bytes + uint64(lineSize) - 1) >> shift)
			for s := 0; s < a.sweeps(); s++ {
				for l := 0; l < lines; l++ {
					sink(Access{
						CU:    l % cus,
						Line:  d.Base + mem.Addr(l<<shift),
						Write: false,
						Arg:   ai,
					})
				}
			}
		}
	}
}

// genIndirect emits data-dependent gathers/scatters for one WG: for each
// line of the WG's share, touchesPerLine pseudo-random lines of the
// structure (optionally restricted to a hot fraction) are accessed.
func genIndirect(k *Kernel, a *Arg, ai, inst int, seed uint64, wg, cu int, shift uint, sink Sink) {
	d := a.DS
	lines := int(d.Bytes >> shift)
	if lines == 0 {
		return
	}
	hot := lines
	if a.HotFraction > 0 && a.HotFraction < 1 {
		hot = int(float64(lines) * a.HotFraction)
		if hot < 1 {
			hot = 1
		}
	}
	var idxLines int
	if a.WorkLinesPerWG > 0 {
		idxLines = a.WorkLinesPerWG
	} else {
		lo, hi := lineSlice(lines, k.WGs, wg)
		idxLines = hi - lo
	}
	if idxLines < 1 {
		idxLines = 1
	}
	r := newRNG(seed ^ uint64(inst)*0x9e3779b97f4a7c15 ^ uint64(wg)<<20 ^ uint64(ai)<<40)
	for i := 0; i < idxLines; i++ {
		for t := 0; t < a.touchesPerLine(); t++ {
			l := int(r.next() % uint64(hot))
			line := d.Base + mem.Addr(l<<shift)
			if a.Mode == Read {
				sink(Access{CU: cu, Line: line, Write: false, Arg: ai})
			} else {
				// Scatter updates execute as atomic read-modify-writes at
				// the home ordering point (enforced by Kernel.Validate).
				sink(Access{CU: cu, Line: line, Write: true, Atomic: true, Arg: ai})
			}
		}
	}
}
