package kernels

import "testing"

func fusionFixtures() (a, b, stencilConsumer, scatter *Kernel, x, y *DataStructure) {
	alloc := NewAllocator(0x1000_0000, 4096)
	x = alloc.Alloc("x", 16*1024, 4)
	y = alloc.Alloc("y", 16*1024, 4)
	a = &Kernel{
		Name: "produce", WGs: 64, ComputePerWG: 100, LDSBytesPerWG: 1024,
		Args: []Arg{
			{DS: x, Mode: Read, Pattern: Linear},
			{DS: y, Mode: ReadWrite, Pattern: Linear},
		},
	}
	b = &Kernel{
		Name: "consume", WGs: 64, ComputePerWG: 200, LDSBytesPerWG: 1024,
		Args: []Arg{
			{DS: y, Mode: Read, Pattern: Linear},
			{DS: x, Mode: ReadWrite, Pattern: Linear},
		},
	}
	stencilConsumer = &Kernel{
		Name: "halo", WGs: 64, ComputePerWG: 200,
		Args: []Arg{
			{DS: y, Mode: Read, Pattern: Stencil, HaloLines: 1},
			{DS: x, Mode: ReadWrite, Pattern: Linear},
		},
	}
	scatter = &Kernel{
		Name: "scatter", WGs: 64, ComputePerWG: 200,
		Args: []Arg{
			{DS: y, Mode: ReadWrite, Pattern: Indirect, ReadModifyWrite: true},
		},
	}
	return
}

func TestFuseElementwiseChain(t *testing.T) {
	a, b, _, _, x, y := fusionFixtures()
	w := &Workload{
		Name: "w", Structures: []*DataStructure{x, y},
		Sequence: []*Kernel{a, b, a, b},
	}
	f := FuseAdjacent(w, FusionConfig{})
	if len(f.Sequence) != 2 {
		t.Fatalf("fused sequence = %d kernels, want 2", len(f.Sequence))
	}
	fk := f.Sequence[0]
	if fk.ComputePerWG != 300 || fk.LDSBytesPerWG != 2048 {
		t.Errorf("fused resources: compute=%d lds=%d", fk.ComputePerWG, fk.LDSBytesPerWG)
	}
	if len(fk.Args) != 4 {
		t.Errorf("fused args = %d", len(fk.Args))
	}
	if err := f.Validate(); err != nil {
		t.Errorf("fused workload invalid: %v", err)
	}
	// Repeated pairs reuse the same fused kernel object.
	if f.Sequence[0] != f.Sequence[1] {
		t.Error("fusion did not cache identical pairs")
	}
}

func TestFusionRefusesCrossPartitionConsumers(t *testing.T) {
	a, _, stencilConsumer, scatter, x, y := fusionFixtures()
	w := &Workload{
		Name: "w", Structures: []*DataStructure{x, y},
		Sequence: []*Kernel{a, stencilConsumer},
	}
	if f := FuseAdjacent(w, FusionConfig{}); len(f.Sequence) != 2 {
		t.Error("fused a halo consumer of freshly written data (intra-kernel race)")
	}
	w2 := &Workload{
		Name: "w2", Structures: []*DataStructure{x, y},
		Sequence: []*Kernel{a, scatter},
	}
	if f := FuseAdjacent(w2, FusionConfig{}); len(f.Sequence) != 2 {
		t.Error("fused across an atomic scatter barrier")
	}
}

func TestFusionRespectsPressureLimits(t *testing.T) {
	a, b, _, _, x, y := fusionFixtures()
	w := &Workload{
		Name: "w", Structures: []*DataStructure{x, y},
		Sequence: []*Kernel{a, b},
	}
	if f := FuseAdjacent(w, FusionConfig{MaxLDSBytes: 1500}); len(f.Sequence) != 2 {
		t.Error("fused past the LDS pressure limit")
	}
	if f := FuseAdjacent(w, FusionConfig{MaxArgs: 1}); len(f.Sequence) != 2 {
		t.Error("fused past the register/argument pressure limit")
	}
	// Mismatched grids cannot fuse elementwise.
	b.WGs = 32
	if f := FuseAdjacent(w, FusionConfig{}); len(f.Sequence) != 2 {
		t.Error("fused kernels with different grids")
	}
}

func TestCUScheduleMappings(t *testing.T) {
	if RoundRobinCU.cuOf(5, 100, 4) != 1 {
		t.Error("round robin wrong")
	}
	// Chunked: first quarter of WGs on CU 0, last on CU 3.
	if ChunkedCU.cuOf(0, 100, 4) != 0 || ChunkedCU.cuOf(99, 100, 4) != 3 {
		t.Error("chunked boundaries wrong")
	}
	// All CUs used, monotone.
	prev := 0
	used := map[int]bool{}
	for wg := 0; wg < 100; wg++ {
		cu := ChunkedCU.cuOf(wg, 100, 4)
		if cu < prev {
			t.Fatal("chunked assignment not monotone")
		}
		prev = cu
		used[cu] = true
	}
	if len(used) != 4 {
		t.Errorf("chunked used %d CUs", len(used))
	}
}
